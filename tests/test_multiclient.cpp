// Multiple clients sharing one cloud -- the paper's usage model: "multiple
// clients can concurrently update different objects at the same time", each
// Arch-3 client with its own WAL queue.
#include <gtest/gtest.h>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/serialize.hpp"
#include "cloudprov/wal_backend.hpp"
#include "pass/observer.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace sim = provcloud::sim;
namespace util = provcloud::util;
namespace pass = provcloud::pass;

FlushUnit file_unit(const std::string& object, std::uint32_t version,
                    const std::string& data) {
  FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = PnodeKind::kFile;
  u.data = util::make_shared_bytes(data);
  u.records = {make_text_record("TYPE", "file"),
               make_text_record("NAME", object)};
  return u;
}

WalBackendConfig client_config(int n) {
  WalBackendConfig c;
  c.queue_name = "wal-client-" + std::to_string(n);
  c.commit_threshold = 1;
  return c;
}

TEST(MultiClientTest, WalClientsHaveIndependentQueues) {
  aws::CloudEnv env(81, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackend alice(services, client_config(1));
  WalBackend bob(services, client_config(2));

  alice.store(file_unit("alice/data", 1, "from alice"));
  bob.store(file_unit("bob/data", 1, "from bob"));
  alice.quiesce();
  bob.quiesce();
  env.clock().drain();

  auto a = alice.read("alice/data");
  auto b = bob.read("bob/data");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a->data, "from alice");
  EXPECT_EQ(*b->data, "from bob");
  // Either client can read the other's objects: the cloud is shared.
  auto cross = alice.read("bob/data");
  ASSERT_TRUE(cross.has_value());
  EXPECT_EQ(*cross->data, "from bob");
}

TEST(MultiClientTest, InterleavedStoresOnDisjointObjects) {
  aws::CloudEnv env(82, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackend alice(services, client_config(1));
  WalBackend bob(services, client_config(2));

  for (int i = 0; i < 10; ++i) {
    alice.store(file_unit("alice/f" + std::to_string(i), 1, "a"));
    bob.store(file_unit("bob/f" + std::to_string(i), 1, "b"));
  }
  alice.quiesce();
  bob.quiesce();
  env.clock().drain();

  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(alice.read("alice/f" + std::to_string(i)).has_value()) << i;
    EXPECT_TRUE(bob.read("bob/f" + std::to_string(i)).has_value()) << i;
  }
  EXPECT_EQ(alice.committed_count(), 10u);
  EXPECT_EQ(bob.committed_count(), 10u);
}

TEST(MultiClientTest, OneClientsCrashDoesNotAffectTheOther) {
  aws::CloudEnv env(83, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackend alice(services, client_config(1));
  WalBackend bob(services, client_config(2));

  env.failures().arm_crash("wal.store.before_commit");
  EXPECT_THROW(alice.store(file_unit("alice/doomed", 1, "x")),
               sim::CrashError);
  bob.store(file_unit("bob/fine", 1, "y"));
  alice.quiesce();
  bob.quiesce();
  env.clock().drain();

  EXPECT_FALSE(services.s3.peek(kDataBucket, "alice/doomed").has_value());
  ASSERT_TRUE(bob.read("bob/fine").has_value());
}

TEST(MultiClientTest, OverlappingTransactionsUseDistinctTempObjects) {
  // Txids count per client, so two clients with in-flight (uncommitted)
  // transactions both hold a "tx-1". Their temp S3 objects must not
  // collide, or one commit daemon promotes the other client's data.
  aws::CloudEnv env(87, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackendConfig a = client_config(1);
  WalBackendConfig b = client_config(2);
  // High threshold: stores only log; both clients' temps coexist until the
  // forced recover() below.
  a.commit_threshold = 100;
  b.commit_threshold = 100;
  WalBackend alice(services, a);
  WalBackend bob(services, b);

  alice.store(file_unit("alice/data", 1, "from alice"));
  bob.store(file_unit("bob/data", 1, "from bob"));
  alice.quiesce();
  bob.quiesce();
  env.clock().drain();

  auto got_a = alice.read("alice/data");
  auto got_b = bob.read("bob/data");
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(*got_a->data, "from alice");
  EXPECT_EQ(*got_b->data, "from bob");
}

TEST(MultiClientTest, LastWriterWinsOnSharedObject) {
  // The paper's usage model "precludes concurrent access to the same
  // object"; when it happens anyway, S3's documented semantics apply: "the
  // last PUT operation is retained". Verify the outcome is one of the two
  // consistent states, not a mix.
  aws::CloudEnv env(84, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto alice = make_sdb_backend(services);
  auto bob = make_sdb_backend(services);

  alice->store(file_unit("shared/data", 1, "alice version"));
  env.clock().advance_by(sim::kMillisecond);
  bob->store(file_unit("shared/data", 1, "bob version"));
  env.clock().drain();

  auto got = alice->read("shared/data");
  ASSERT_TRUE(got.has_value());
  // Whichever write won, the MD5 check must pass against its own pair...
  EXPECT_EQ(*got->data, "bob version");  // last writer
}

TEST(MultiClientTest, SharedMeterAggregatesAllClients) {
  aws::CloudEnv env(85, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackend alice(services, client_config(1));
  WalBackend bob(services, client_config(2));
  alice.store(file_unit("a", 1, "x"));
  bob.store(file_unit("b", 1, "y"));
  alice.quiesce();
  bob.quiesce();
  // Two clients, one bill.
  EXPECT_GE(env.meter().snapshot().calls("sqs", "SendMessage"), 8u);
  EXPECT_GE(env.meter().snapshot().calls("s3", "COPY"), 2u);
}

TEST(MultiClientTest, PassObserversPerClientProduceDisjointProvenance) {
  aws::CloudEnv env(86, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackend alice(services, client_config(1));
  WalBackend bob(services, client_config(2));

  // Per-client transient namespaces keep each client's process pnodes
  // distinct in the shared provenance domain.
  PassObserver alice_obs([&](const FlushUnit& u) { alice.store(u); },
                         "clients/alice/");
  PassObserver bob_obs([&](const FlushUnit& u) { bob.store(u); },
                       "clients/bob/");

  alice_obs.apply(ev_exec(1, "/bin/alice-tool"));
  alice_obs.apply(ev_write(1, "alice/out", "A"));
  alice_obs.apply(ev_close(1, "alice/out"));

  bob_obs.apply(ev_exec(1, "/bin/bob-tool"));  // same pid, different client
  bob_obs.apply(ev_write(1, "bob/out", "B"));
  bob_obs.apply(ev_close(1, "bob/out"));

  alice.quiesce();
  bob.quiesce();
  env.clock().drain();

  auto a = alice.get_provenance("alice/out", 1);
  ASSERT_TRUE(a.has_value());
  std::string producer;
  for (const auto& r : *a)
    if (r.is_xref() && r.attribute == pass::attr::kInput)
      producer = r.xref().object;
  EXPECT_EQ(producer.rfind("clients/alice/proc/", 0), 0u) << producer;
  // Bob's identically-numbered pid landed under his own namespace.
  EXPECT_TRUE(services.sdb.peek_item(kProvenanceDomain,
                                     "clients/bob/proc/1/1:1")
                  .has_value());
}

}  // namespace
