#include <gtest/gtest.h>

#include "pass/local_cache.hpp"

namespace {

using namespace provcloud::pass;

TEST(LocalCacheTest, AppendAccumulates) {
  LocalCache c;
  c.append_data("f", "abc");
  c.append_data("f", "def");
  EXPECT_EQ(c.data("f"), "abcdef");
}

TEST(LocalCacheTest, UnknownObjectIsEmpty) {
  LocalCache c;
  EXPECT_EQ(c.data("nothing"), "");
  EXPECT_TRUE(c.records("nothing", 1).empty());
}

TEST(LocalCacheTest, TruncateClearsData) {
  LocalCache c;
  c.append_data("f", "abc");
  c.truncate_data("f");
  EXPECT_EQ(c.data("f"), "");
  c.append_data("f", "x");
  EXPECT_EQ(c.data("f"), "x");
}

TEST(LocalCacheTest, RecordsKeyedByVersion) {
  LocalCache c;
  EXPECT_TRUE(c.add_record("f", 1, make_text_record("TYPE", "file")));
  EXPECT_TRUE(c.add_record("f", 2, make_text_record("TYPE", "file")));
  EXPECT_EQ(c.records("f", 1).size(), 1u);
  EXPECT_EQ(c.records("f", 2).size(), 1u);
  EXPECT_TRUE(c.records("f", 3).empty());
}

TEST(LocalCacheTest, DuplicateRecordsWithinVersionDropped) {
  LocalCache c;
  EXPECT_TRUE(c.add_record("f", 1, make_xref_record("INPUT", {"p", 1})));
  EXPECT_FALSE(c.add_record("f", 1, make_xref_record("INPUT", {"p", 1})));
  EXPECT_TRUE(c.add_record("f", 1, make_xref_record("INPUT", {"p", 2})));
  EXPECT_EQ(c.records("f", 1).size(), 2u);
}

TEST(LocalCacheTest, ClearRecordsIsPerVersion) {
  LocalCache c;
  c.add_record("f", 1, make_text_record("A", "1"));
  c.add_record("f", 2, make_text_record("A", "2"));
  c.clear_records("f", 1);
  EXPECT_TRUE(c.records("f", 1).empty());
  EXPECT_EQ(c.records("f", 2).size(), 1u);
}

TEST(LocalCacheTest, RemoveDropsEverything) {
  LocalCache c;
  c.append_data("f", "data");
  c.add_record("f", 1, make_text_record("A", "1"));
  c.add_record("f", 2, make_text_record("A", "2"));
  c.append_data("g", "keep");
  c.remove("f");
  EXPECT_EQ(c.data("f"), "");
  EXPECT_TRUE(c.records("f", 1).empty());
  EXPECT_TRUE(c.records("f", 2).empty());
  EXPECT_EQ(c.data("g"), "keep");
}

TEST(LocalCacheTest, CachedBytesAccounting) {
  LocalCache c;
  c.append_data("a", "12345");
  c.append_data("b", "123");
  EXPECT_EQ(c.cached_data_bytes(), 8u);
}

}  // namespace
