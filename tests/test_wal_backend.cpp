// Architecture 3 (S3 + SimpleDB + SQS): WAL logging, the commit daemon,
// idempotent replay across daemon crashes, the cleaner.
#include <gtest/gtest.h>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/serialize.hpp"
#include "cloudprov/wal_backend.hpp"
#include "util/md5.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace sim = provcloud::sim;
namespace util = provcloud::util;

FlushUnit file_unit(const std::string& object, std::uint32_t version,
                    const std::string& data,
                    std::vector<ProvenanceRecord> records = {}) {
  FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = PnodeKind::kFile;
  u.data = util::make_shared_bytes(data);
  if (records.empty())
    records = {make_text_record("TYPE", "file"),
               make_text_record("NAME", object)};
  u.records = std::move(records);
  return u;
}

WalBackendConfig low_threshold() {
  WalBackendConfig c;
  c.commit_threshold = 1;  // commit eagerly in unit tests
  return c;
}

class WalBackendTest : public ::testing::Test {
 protected:
  WalBackendTest()
      : env_(21, aws::ConsistencyConfig::strong()), services_(env_) {
    backend_ = std::make_unique<WalBackend>(services_, low_threshold());
  }
  aws::CloudEnv env_;
  CloudServices services_;
  std::unique_ptr<WalBackend> backend_;
};

TEST_F(WalBackendTest, StoreEventuallyLandsInS3AndSimpleDb) {
  backend_->store(file_unit("data/f", 1, "contents"));
  backend_->quiesce();
  auto obj = services_.s3.peek(kDataBucket, "data/f");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(*obj->data, "contents");
  EXPECT_EQ(obj->metadata.at(kNonceMetaKey), "1");
  auto item = services_.sdb.peek_item(kProvenanceDomain, "data/f:1");
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->at(kMd5Attribute).count(util::md5_with_nonce("contents", "1")),
            1u);
}

TEST_F(WalBackendTest, WalDrainsAndTempObjectsVanish) {
  for (int i = 0; i < 5; ++i)
    backend_->store(file_unit("f" + std::to_string(i), 1, "x"));
  backend_->quiesce();
  EXPECT_EQ(services_.sqs.exact_message_count("sqs://queue/wal-client-0"), 0u);
  for (const std::string& key : services_.s3.peek_keys(kDataBucket, kTempPrefix))
    ADD_FAILURE() << "temp object left behind: " << key;
  EXPECT_EQ(backend_->committed_count(), 5u);
}

TEST_F(WalBackendTest, ReadPathSameAsArchTwo) {
  backend_->store(file_unit("f", 1, "payload"));
  backend_->quiesce();
  auto got = backend_->read("f");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->verified);
  EXPECT_EQ(*got->data, "payload");
}

TEST_F(WalBackendTest, CopyStampsNonceViaMetadataReplace) {
  backend_->store(file_unit("f", 3, "x"));
  backend_->quiesce();
  auto obj = services_.s3.peek(kDataBucket, "f");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->metadata.at(kNonceMetaKey), "3");
  EXPECT_EQ(obj->metadata.at(kVersionMetaKey), "3");
  // The temp-creation marker must not leak onto the final object.
  EXPECT_EQ(obj->metadata.count("x-temp-created"), 0u);
}

TEST_F(WalBackendTest, ThresholdGatesThePump) {
  WalBackendConfig cfg;
  cfg.commit_threshold = 1000;  // never reached in this test
  aws::CloudEnv env(22, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackend lazy(services, cfg);
  lazy.store(file_unit("f", 1, "x"));
  // The log is durable but nothing has been committed yet.
  EXPECT_GT(services.sqs.exact_message_count("sqs://queue/wal-client-0"), 0u);
  EXPECT_FALSE(services.s3.peek(kDataBucket, "f").has_value());
  // Force the daemon (recover = forced pump).
  lazy.recover();
  EXPECT_TRUE(services.s3.peek(kDataBucket, "f").has_value());
}

TEST_F(WalBackendTest, LargeProvenanceChunksAcrossMessages) {
  std::vector<ProvenanceRecord> records;
  for (int i = 0; i < 60; ++i)
    records.push_back(
        make_text_record("ENV" + std::to_string(i), std::string(700, 'e')));
  const auto before = env_.meter().snapshot();
  backend_->store(file_unit("bigprov", 1, "x", std::move(records)));
  backend_->quiesce();
  const auto diff = env_.meter().snapshot().diff(before);
  // 60 * ~700B of provenance: > 5 chunks of <= 8 KB each, plus begin, data,
  // md5, commit.
  EXPECT_GE(diff.calls("sqs", "SendMessage"), 9u);
  auto prov = backend_->get_provenance("bigprov", 1);
  ASSERT_TRUE(prov.has_value());
  EXPECT_EQ(prov->size(), 60u);
}

// --- crash behaviour: log phase ---

class WalCrashTest : public ::testing::Test {
 protected:
  WalCrashTest()
      : env_(23, aws::ConsistencyConfig::strong()), services_(env_) {
    backend_ = std::make_unique<WalBackend>(services_, low_threshold());
  }
  aws::CloudEnv env_;
  CloudServices services_;
  std::unique_ptr<WalBackend> backend_;
};

TEST_F(WalCrashTest, CrashBeforeCommitRecordIgnoresTransaction) {
  env_.failures().arm_crash("wal.store.before_commit");
  EXPECT_THROW(backend_->store(file_unit("f", 1, "x")), sim::CrashError);
  backend_->quiesce();
  // "If the client crashes before it can log all the information to the WAL
  // queue ... the commit daemon ignores these records."
  EXPECT_FALSE(services_.s3.peek(kDataBucket, "f").has_value());
  EXPECT_FALSE(services_.sdb.peek_item(kProvenanceDomain, "f:1").has_value());
}

TEST_F(WalCrashTest, CrashMidLogIgnoresTransaction) {
  env_.failures().arm_crash("wal.store.mid_records", 1);
  EXPECT_THROW(backend_->store(file_unit("f", 1, "x")), sim::CrashError);
  backend_->quiesce();
  EXPECT_FALSE(services_.s3.peek(kDataBucket, "f").has_value());
}

TEST_F(WalCrashTest, CrashAfterCommitRecordCompletesViaDaemon) {
  env_.failures().arm_crash("wal.store.after_commit");
  EXPECT_THROW(backend_->store(file_unit("f", 1, "x")), sim::CrashError);
  // The client died after sealing the log; the daemon finishes the job.
  backend_->quiesce();
  EXPECT_TRUE(services_.s3.peek(kDataBucket, "f").has_value());
  EXPECT_TRUE(services_.sdb.peek_item(kProvenanceDomain, "f:1").has_value());
}

TEST_F(WalCrashTest, UncommittedTempObjectCleanedAfterTtl) {
  env_.failures().arm_crash("wal.store.before_commit");
  EXPECT_THROW(backend_->store(file_unit("f", 1, "x")), sim::CrashError);
  backend_->quiesce();
  EXPECT_FALSE(services_.s3.peek_keys(kDataBucket, kTempPrefix).empty());
  // Before the TTL the cleaner must leave it alone.
  backend_->clean_temp_objects();
  EXPECT_FALSE(services_.s3.peek_keys(kDataBucket, kTempPrefix).empty());
  // After 4 days it goes.
  env_.clock().advance_by(4 * sim::kDay + sim::kHour);
  backend_->clean_temp_objects();
  EXPECT_TRUE(services_.s3.peek_keys(kDataBucket, kTempPrefix).empty());
}

// --- crash behaviour: commit daemon (idempotent replay) ---

struct DaemonCrashCase {
  const char* point;
};

class WalDaemonCrashTest : public ::testing::TestWithParam<DaemonCrashCase> {};

TEST_P(WalDaemonCrashTest, ReplayAfterDaemonCrashIsIdempotent) {
  aws::CloudEnv env(31, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackendConfig cfg;
  cfg.commit_threshold = 1;
  WalBackend backend(services, cfg);

  env.failures().arm_crash(GetParam().point);
  try {
    backend.store(file_unit("f", 1, "idempotent-payload"));
  } catch (const sim::CrashError&) {
    // daemon (or log phase) died; restart follows
  }
  // Restart: recovery + normal pumping until stable.
  backend.recover();
  backend.quiesce();
  env.clock().drain();
  backend.recover();

  auto obj = services.s3.peek(kDataBucket, "f");
  ASSERT_TRUE(obj.has_value()) << GetParam().point;
  EXPECT_EQ(*obj->data, "idempotent-payload");
  auto item = services.sdb.peek_item(kProvenanceDomain, "f:1");
  ASSERT_TRUE(item.has_value()) << GetParam().point;
  // Replay must not duplicate provenance (set semantics).
  EXPECT_EQ(item->at("TYPE").size(), 1u);
  EXPECT_EQ(item->at(kMd5Attribute).size(), 1u);
  EXPECT_EQ(item->at(kMd5Attribute).count(
                util::md5_with_nonce("idempotent-payload", "1")),
            1u);
}

INSTANTIATE_TEST_SUITE_P(
    Points, WalDaemonCrashTest,
    ::testing::Values(DaemonCrashCase{"commitd.after_receive"},
                      DaemonCrashCase{"commitd.after_copy"},
                      DaemonCrashCase{"commitd.after_sdb"},
                      DaemonCrashCase{"commitd.mid_message_delete"},
                      DaemonCrashCase{"commitd.before_temp_delete"}));

// --- sampling SQS: the daemon must cope with partial receives ---

TEST(WalSamplingTest, CommitsDespiteSamplingReceives) {
  aws::ConsistencyConfig c = aws::ConsistencyConfig::strong();
  c.sqs_sample_fraction = 0.25;  // each receive sees 2 of 8 shards
  aws::CloudEnv env(41, c);
  CloudServices services(env);
  WalBackendConfig cfg;
  cfg.commit_threshold = 1;
  WalBackend backend(services, cfg);
  for (int i = 0; i < 8; ++i)
    backend.store(file_unit("f" + std::to_string(i), 1, "x"));
  backend.quiesce();
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(
        services.s3.peek(kDataBucket, "f" + std::to_string(i)).has_value())
        << i;
  EXPECT_EQ(services.sqs.exact_message_count("sqs://queue/wal-client-0"), 0u);
}

TEST(WalEventualTest, WorksUnderFullStaleness) {
  aws::ConsistencyConfig c;
  c.replicas = 3;
  c.propagation_min = 500 * sim::kMillisecond;
  c.propagation_max = 4 * sim::kSecond;
  c.sqs_sample_fraction = 0.5;
  aws::CloudEnv env(42, c);
  CloudServices services(env);
  WalBackendConfig cfg;
  cfg.commit_threshold = 1;
  WalBackend backend(services, cfg);
  for (int i = 0; i < 6; ++i) {
    backend.store(file_unit("f" + std::to_string(i), 1,
                            "body" + std::to_string(i)));
    env.clock().advance_by(300 * sim::kMillisecond);
  }
  backend.quiesce();
  env.clock().drain();
  backend.recover();
  for (int i = 0; i < 6; ++i) {
    auto got = backend.read("f" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_TRUE(got->verified) << i;
    EXPECT_EQ(*got->data, "body" + std::to_string(i));
  }
}

}  // namespace
