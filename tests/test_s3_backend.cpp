// Architecture 1 (standalone S3): atomic single-PUT protocol, metadata
// provenance, overflow spills.
#include <gtest/gtest.h>

#include "cloudprov/s3_backend.hpp"
#include "cloudprov/serialize.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace util = provcloud::util;

FlushUnit file_unit(const std::string& object, std::uint32_t version,
                    const std::string& data,
                    std::vector<ProvenanceRecord> records = {}) {
  FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = PnodeKind::kFile;
  u.data = util::make_shared_bytes(data);
  if (records.empty())
    records = {make_text_record("TYPE", "file"),
               make_text_record("NAME", object)};
  u.records = std::move(records);
  return u;
}

class S3BackendTest : public ::testing::Test {
 protected:
  S3BackendTest()
      : env_(5, aws::ConsistencyConfig::strong()), services_(env_) {
    backend_ = make_s3_backend(services_);
  }
  aws::CloudEnv env_;
  CloudServices services_;
  std::unique_ptr<ProvenanceBackend> backend_;
};

TEST_F(S3BackendTest, StoreThenReadReturnsDataAndProvenance) {
  backend_->store(file_unit("data/f", 1, "contents"));
  auto got = backend_->read("data/f");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got->data, "contents");
  EXPECT_EQ(got->version, 1u);
  EXPECT_TRUE(got->verified);
  EXPECT_EQ(got->records.size(), 2u);
}

TEST_F(S3BackendTest, SinglePutCarriesBoth) {
  const auto before = env_.meter().snapshot();
  backend_->store(file_unit("data/f", 1, "x"));
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("s3", "PUT"), 1u);  // exactly one PUT: atomic
  EXPECT_EQ(diff.calls("sdb"), 0u);
  EXPECT_EQ(diff.calls("sqs"), 0u);
}

TEST_F(S3BackendTest, TransientUnitStoredAsEmptyObject) {
  FlushUnit proc;
  proc.object = "proc/1/1";
  proc.version = 1;
  proc.kind = PnodeKind::kProcess;
  proc.records = {make_text_record("TYPE", "process"),
                  make_text_record("NAME", "/bin/sh")};
  backend_->store(proc);
  auto obj = services_.s3.peek(kDataBucket, "proc/1/1");
  ASSERT_TRUE(obj.has_value());
  EXPECT_TRUE(obj->data->empty());
  EXPECT_EQ(decode_metadata(obj->metadata).kind, "process");
}

TEST_F(S3BackendTest, GetProvenanceReturnsStoredRecords) {
  backend_->store(file_unit(
      "f", 2, "x",
      {make_text_record("TYPE", "file"),
       make_xref_record("INPUT", {"proc/1/1", 1})}));
  auto prov = backend_->get_provenance("f", 2);
  ASSERT_TRUE(prov.has_value());
  ASSERT_EQ(prov->size(), 2u);
}

TEST_F(S3BackendTest, OnlyLatestVersionProvenanceAvailable) {
  backend_->store(file_unit("f", 1, "v1"));
  backend_->store(file_unit("f", 2, "v1v2"));
  EXPECT_TRUE(backend_->get_provenance("f", 2).has_value());
  // Architecture 1 limitation: the old version's metadata was overwritten.
  EXPECT_FALSE(backend_->get_provenance("f", 1).has_value());
}

TEST_F(S3BackendTest, LargeRecordSpillsAndResolvesOnRead) {
  const std::string big(1500, 'e');
  backend_->store(file_unit("f", 1, "data",
                            {make_text_record("TYPE", "file"),
                             make_text_record("ENV", big)}));
  // The overflow object exists.
  EXPECT_TRUE(
      services_.s3.peek(kDataBucket, overflow_key("f", 1, 1)).has_value());
  // The read path resolves the pointer back into the full value.
  auto got = backend_->read("f");
  ASSERT_TRUE(got.has_value());
  bool found = false;
  for (const auto& r : got->records)
    if (r.attribute == "ENV" && !r.is_xref() && r.text() == big) found = true;
  EXPECT_TRUE(found);
}

TEST_F(S3BackendTest, SpillCostsExtraPut) {
  const auto before = env_.meter().snapshot();
  backend_->store(file_unit("f", 1, "x",
                            {make_text_record("ENV", std::string(1500, 'e'))}));
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("s3", "PUT"), 2u);  // overflow + main
}

TEST_F(S3BackendTest, ReadMissingObjectFails) {
  auto got = backend_->read("never-stored", 3);
  EXPECT_FALSE(got.has_value());
}

TEST_F(S3BackendTest, ClaimsMatchTableOne) {
  const auto claims = backend_->claims();
  EXPECT_TRUE(claims.atomicity);
  EXPECT_TRUE(claims.consistency);
  EXPECT_TRUE(claims.causal_ordering);
  EXPECT_FALSE(claims.efficient_query);
}

class S3BackendEventualTest : public ::testing::Test {
 protected:
  static aws::ConsistencyConfig slow() {
    aws::ConsistencyConfig c;
    c.replicas = 3;
    c.propagation_min = provcloud::sim::kSecond;
    c.propagation_max = 5 * provcloud::sim::kSecond;
    return c;
  }
  S3BackendEventualTest() : env_(6, slow()), services_(env_) {
    backend_ = make_s3_backend(services_);
  }
  aws::CloudEnv env_;
  CloudServices services_;
  std::unique_ptr<ProvenanceBackend> backend_;
};

TEST_F(S3BackendEventualTest, ReadDuringWindowIsInternallyConsistent) {
  backend_->store(file_unit("f", 1, "one"));
  env_.clock().drain();
  backend_->store(file_unit("f", 2, "onetwo"));
  // Whatever version a read returns, data and provenance match because they
  // travelled in one PUT.
  for (int i = 0; i < 100; ++i) {
    auto got = backend_->read("f");
    ASSERT_TRUE(got.has_value());
    if (got->version == 1)
      EXPECT_EQ(*got->data, "one");
    else
      EXPECT_EQ(*got->data, "onetwo");
  }
}

TEST_F(S3BackendEventualTest, ReadRetriesThroughPropagationMiss) {
  backend_->store(file_unit("fresh", 1, "x"));
  // Even while some replicas lack the object, a read with retries succeeds.
  auto got = backend_->read("fresh", 64);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got->data, "x");
}

TEST(S3BackendCrashTest, CrashBeforePutLeavesNothing) {
  aws::CloudEnv env(7, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_s3_backend(services);
  env.failures().arm_crash("s3.store.before_put");
  EXPECT_THROW(backend->store(file_unit("f", 1, "x")),
               provcloud::sim::CrashError);
  // Atomicity: no data, no provenance.
  EXPECT_FALSE(services.s3.peek(kDataBucket, "f").has_value());
}

TEST(S3BackendCrashTest, CrashAfterPutLeavesCompleteState) {
  aws::CloudEnv env(8, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_s3_backend(services);
  env.failures().arm_crash("s3.store.after_put");
  EXPECT_THROW(backend->store(file_unit("f", 1, "x")),
               provcloud::sim::CrashError);
  auto obj = services.s3.peek(kDataBucket, "f");
  ASSERT_TRUE(obj.has_value());
  EXPECT_FALSE(decode_metadata(obj->metadata).records.empty());
}

}  // namespace
