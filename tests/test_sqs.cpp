// SQS simulator: sampling receives, visibility timeout, retention, limits
// (section 2.3 of the paper).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "aws/common/env.hpp"
#include "aws/sqs/sqs.hpp"

namespace {

using namespace provcloud::aws;
namespace sim = provcloud::sim;

class SqsTest : public ::testing::Test {
 protected:
  SqsTest() : env_(1, ConsistencyConfig::strong()), sqs_(env_) {
    auto url = sqs_.create_queue("wal");
    EXPECT_TRUE(url.has_value());
    url_ = *url;
  }
  CloudEnv env_;
  SqsService sqs_;
  std::string url_;
};

TEST_F(SqsTest, CreateQueueReturnsStableUrl) {
  auto again = sqs_.create_queue("wal");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, url_);
}

TEST_F(SqsTest, SendReceiveDeleteLifecycle) {
  auto id = sqs_.send_message(url_, "hello");
  ASSERT_TRUE(id.has_value());
  auto batch = sqs_.receive_message(url_, 10);
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->size(), 1u);
  EXPECT_EQ((*batch)[0].body, "hello");
  EXPECT_EQ((*batch)[0].message_id, *id);
  ASSERT_TRUE(sqs_.delete_message(url_, (*batch)[0].receipt_handle).has_value());
  EXPECT_EQ(sqs_.exact_message_count(url_), 0u);
}

TEST_F(SqsTest, MessageOverEightKbRejected) {
  auto send = sqs_.send_message(url_, std::string(8 * 1024 + 1, 'x'));
  ASSERT_FALSE(send.has_value());
  EXPECT_EQ(send.error().code, AwsErrorCode::kEntityTooLarge);
  EXPECT_TRUE(sqs_.send_message(url_, std::string(8 * 1024, 'x')).has_value());
}

TEST_F(SqsTest, ReceiveCapAtTen) {
  for (int i = 0; i < 30; ++i)
    ASSERT_TRUE(sqs_.send_message(url_, "m" + std::to_string(i)).has_value());
  auto batch = sqs_.receive_message(url_, 25);
  ASSERT_TRUE(batch.has_value());
  EXPECT_LE(batch->size(), 10u);
}

TEST_F(SqsTest, ReceivedMessageIsInvisibleUntilTimeout) {
  ASSERT_TRUE(sqs_.send_message(url_, "only").has_value());
  auto first = sqs_.receive_message(url_, 10);
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->size(), 1u);
  // Invisible now ("SQS blocks the message from other clients").
  for (int i = 0; i < 20; ++i) {
    auto again = sqs_.receive_message(url_, 10);
    ASSERT_TRUE(again.has_value());
    EXPECT_TRUE(again->empty());
  }
  // After the visibility timeout it reappears.
  env_.clock().advance_by(kSqsDefaultVisibilityTimeout + sim::kSecond);
  auto after = sqs_.receive_message(url_, 10);
  ASSERT_TRUE(after.has_value());
  ASSERT_EQ(after->size(), 1u);
  // The receipt handle changed with the redelivery.
  EXPECT_NE((*after)[0].receipt_handle, (*first)[0].receipt_handle);
}

TEST_F(SqsTest, CustomVisibilityTimeoutOnReceive) {
  ASSERT_TRUE(sqs_.send_message(url_, "m").has_value());
  auto got = sqs_.receive_message(url_, 10, 5 * sim::kSecond);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->size(), 1u);
  env_.clock().advance_by(6 * sim::kSecond);
  auto again = sqs_.receive_message(url_, 10);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->size(), 1u);
}

TEST_F(SqsTest, DeleteWithStaleHandleStillDeletes) {
  ASSERT_TRUE(sqs_.send_message(url_, "m").has_value());
  auto first = sqs_.receive_message(url_, 10);
  ASSERT_EQ(first->size(), 1u);
  env_.clock().advance_by(kSqsDefaultVisibilityTimeout + sim::kSecond);
  auto second = sqs_.receive_message(url_, 10);
  ASSERT_EQ(second->size(), 1u);
  // The first (stale) handle still identifies the message.
  ASSERT_TRUE(sqs_.delete_message(url_, (*first)[0].receipt_handle).has_value());
  EXPECT_EQ(sqs_.exact_message_count(url_), 0u);
}

TEST_F(SqsTest, DeleteIsIdempotent) {
  ASSERT_TRUE(sqs_.send_message(url_, "m").has_value());
  auto got = sqs_.receive_message(url_, 10);
  ASSERT_EQ(got->size(), 1u);
  const std::string handle = (*got)[0].receipt_handle;
  ASSERT_TRUE(sqs_.delete_message(url_, handle).has_value());
  ASSERT_TRUE(sqs_.delete_message(url_, handle).has_value());
}

TEST_F(SqsTest, MalformedHandleRejected) {
  auto del = sqs_.delete_message(url_, "not-a-handle");
  ASSERT_FALSE(del.has_value());
  EXPECT_EQ(del.error().code, AwsErrorCode::kInvalidReceiptHandle);
}

TEST_F(SqsTest, MissingQueueErrors) {
  auto send = sqs_.send_message("sqs://queue/nope", "m");
  ASSERT_FALSE(send.has_value());
  EXPECT_EQ(send.error().code, AwsErrorCode::kNoSuchQueue);
}

TEST_F(SqsTest, RetentionDeletesAfterFourDays) {
  ASSERT_TRUE(sqs_.send_message(url_, "doomed").has_value());
  env_.clock().advance_by(3 * sim::kDay);
  ASSERT_TRUE(sqs_.send_message(url_, "young").has_value());
  env_.clock().advance_by(sim::kDay + sim::kHour);
  // "doomed" is now > 4 days old; "young" is ~1 day old.
  std::set<std::string> seen;
  for (int i = 0; i < 50; ++i) {
    auto got = sqs_.receive_message(url_, 10, 0);
    ASSERT_TRUE(got.has_value());
    for (const auto& m : *got) seen.insert(std::string(m.body));
  }
  EXPECT_EQ(seen.count("doomed"), 0u);
  EXPECT_EQ(seen.count("young"), 1u);
}

TEST_F(SqsTest, ApproximateCountExactUnderStrongConfig) {
  for (int i = 0; i < 12; ++i)
    ASSERT_TRUE(sqs_.send_message(url_, "m").has_value());
  auto approx = sqs_.approximate_number_of_messages(url_);
  ASSERT_TRUE(approx.has_value());
  EXPECT_EQ(*approx, 12u);
}

TEST_F(SqsTest, BillingCountsOps) {
  const auto before = env_.meter().snapshot();
  ASSERT_TRUE(sqs_.send_message(url_, "12345").has_value());
  auto got = sqs_.receive_message(url_, 1);
  ASSERT_TRUE(got.has_value());
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("sqs", "SendMessage"), 1u);
  EXPECT_EQ(diff.bytes_in("sqs", "SendMessage"), 5u);
  EXPECT_EQ(diff.calls("sqs", "ReceiveMessage"), 1u);
  EXPECT_EQ(diff.bytes_out("sqs", "ReceiveMessage"), 5u);
}

TEST_F(SqsTest, PerQueueDetailMetering) {
  const std::string other = *sqs_.create_queue("wal-other");
  ASSERT_TRUE(sqs_.send_message(url_, "aa").has_value());
  ASSERT_TRUE(sqs_.send_message(url_, "bb").has_value());
  ASSERT_TRUE(sqs_.send_message(other, "cc").has_value());
  const auto snap = env_.meter().snapshot();
  EXPECT_EQ(snap.detail_calls("sqs", url_) +
                snap.detail_calls("sqs", other),
            snap.calls("sqs"));
  EXPECT_GE(snap.detail_calls("sqs", url_), 2u);
  EXPECT_GE(snap.detail_calls("sqs", other), 1u);
}

TEST_F(SqsTest, ConcurrentClientsOnDistinctQueues) {
  // Per-queue locks: one WAL client per queue, all sending/receiving/
  // deleting concurrently. Totals must come out exact (TSan covers the
  // synchronization; this covers the arithmetic).
  constexpr int kClients = 4;
  constexpr int kMessages = 32;
  std::vector<std::string> urls;
  for (int c = 0; c < kClients; ++c)
    urls.push_back(*sqs_.create_queue("wal-client-" + std::to_string(c)));
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &urls, c] {
      for (int i = 0; i < kMessages; ++i)
        ASSERT_TRUE(sqs_.send_message(urls[c], "payload").has_value());
      // Drain half of what this client can see.
      for (int i = 0; i < kMessages / 2; ++i) {
        auto got = sqs_.receive_message(urls[c], 1);
        ASSERT_TRUE(got.has_value());
        for (const auto& m : *got)
          ASSERT_TRUE(sqs_.delete_message(urls[c], m.receipt_handle)
                          .has_value());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  std::uint64_t live = 0;
  for (const std::string& url : urls) live += sqs_.exact_message_count(url);
  EXPECT_EQ(live, static_cast<std::uint64_t>(kClients * kMessages / 2));
  EXPECT_EQ(sqs_.stored_bytes(), live * std::string("payload").size());
}

TEST_F(SqsTest, DeleteQueueReleasesStorageAndInvalidatesQueue) {
  ASSERT_TRUE(sqs_.send_message(url_, std::string(64, 'x')).has_value());
  EXPECT_EQ(sqs_.stored_bytes(), 64u);
  ASSERT_TRUE(sqs_.delete_queue(url_).has_value());
  EXPECT_EQ(sqs_.stored_bytes(), 0u);
  auto sent = sqs_.send_message(url_, "late");
  ASSERT_FALSE(sent.has_value());
  EXPECT_EQ(sent.error().code, AwsErrorCode::kNoSuchQueue);
  EXPECT_EQ(sqs_.stored_bytes(), 0u);  // a late send cannot leak the gauge
}

TEST_F(SqsTest, StorageGaugeTracksBodies) {
  ASSERT_TRUE(sqs_.send_message(url_, std::string(100, 'a')).has_value());
  ASSERT_TRUE(sqs_.send_message(url_, std::string(50, 'b')).has_value());
  EXPECT_EQ(sqs_.stored_bytes(), 150u);
  auto got = sqs_.receive_message(url_, 1);
  ASSERT_EQ(got->size(), 1u);
  ASSERT_TRUE(sqs_.delete_message(url_, (*got)[0].receipt_handle).has_value());
  EXPECT_TRUE(sqs_.stored_bytes() == 100u || sqs_.stored_bytes() == 50u);
}

// --- sampling (eventual consistency) ---

class SqsSamplingTest : public ::testing::Test {
 protected:
  static ConsistencyConfig sampling() {
    ConsistencyConfig c = ConsistencyConfig::strong();
    c.sqs_sample_fraction = 0.25;  // 2 of 8 shards per receive
    return c;
  }
  SqsSamplingTest() : env_(7, sampling()), sqs_(env_) {
    url_ = *sqs_.create_queue("wal");
  }
  CloudEnv env_;
  SqsService sqs_;
  std::string url_;
};

TEST_F(SqsSamplingTest, SingleReceiveCanMissMessages) {
  for (int i = 0; i < 16; ++i)
    ASSERT_TRUE(sqs_.send_message(url_, "m" + std::to_string(i)).has_value());
  // One receive samples a shard subset: it cannot return all 16.
  bool missed_something = false;
  auto got = sqs_.receive_message(url_, 10, 0);
  ASSERT_TRUE(got.has_value());
  if (got->size() < 16) missed_something = true;
  EXPECT_TRUE(missed_something);
}

TEST_F(SqsSamplingTest, RepeatedReceivesEventuallySeeEverything) {
  // "The clients need to repeat these requests until they receive all the
  // necessary messages."
  std::set<std::string> sent;
  for (int i = 0; i < 16; ++i) {
    const std::string body = "m" + std::to_string(i);
    sent.insert(body);
    ASSERT_TRUE(sqs_.send_message(url_, body).has_value());
  }
  std::set<std::string> seen;
  for (int round = 0; round < 200 && seen.size() < sent.size(); ++round) {
    auto got = sqs_.receive_message(url_, 10, 0);  // zero visibility timeout
    ASSERT_TRUE(got.has_value());
    for (const auto& m : *got) seen.insert(std::string(m.body));
  }
  EXPECT_EQ(seen, sent);
}

TEST_F(SqsSamplingTest, ApproximateCountIsApproximate) {
  for (int i = 0; i < 64; ++i)
    ASSERT_TRUE(sqs_.send_message(url_, "m").has_value());
  // Sampled estimate: scaled up from a shard subset, so it hovers around
  // the truth without being reliably exact.
  std::uint64_t min_seen = UINT64_MAX, max_seen = 0;
  for (int i = 0; i < 50; ++i) {
    auto approx = sqs_.approximate_number_of_messages(url_);
    ASSERT_TRUE(approx.has_value());
    min_seen = std::min(min_seen, *approx);
    max_seen = std::max(max_seen, *approx);
  }
  EXPECT_GT(max_seen, 0u);
  EXPECT_NE(min_seen, max_seen);  // it wobbles: sampled, not exact
  EXPECT_GT(max_seen, 32u);       // but lands in the right ballpark
  EXPECT_LT(min_seen, 128u);
}

}  // namespace
