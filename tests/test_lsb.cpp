// Architecture 4: segment wire format, group sealing, deferred index
// publication, recovery (rebuild + orphan replay), the cleaner, and the
// slow-but-not-crashed S3 seal path.
#include <gtest/gtest.h>

#include "cloudprov/ancestry.hpp"
#include "cloudprov/lsb/format.hpp"
#include "cloudprov/lsb/lsb_backend.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/session.hpp"
#include "sim/failure.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace sim = provcloud::sim;
namespace util = provcloud::util;

FlushUnit file_unit(const std::string& object, std::uint32_t version,
                    const std::string& data,
                    std::vector<ProvenanceRecord> records = {}) {
  FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = PnodeKind::kFile;
  u.data = util::make_shared_bytes(data);
  if (records.empty())
    records = {make_text_record("TYPE", "file"),
               make_text_record("NAME", object)};
  u.records = std::move(records);
  return u;
}

bool ancestry_equal(const AncestryResult& a, const AncestryResult& b) {
  if (a.missing != b.missing) return false;
  const auto& an = a.graph.nodes();
  const auto& bn = b.graph.nodes();
  if (an.size() != bn.size()) return false;
  for (const auto& [id, node] : an) {
    const AncestryNode* other = b.graph.find(id);
    if (other == nullptr || node.kind != other->kind ||
        node.records != other->records || node.ancestors != other->ancestors)
      return false;
  }
  return true;
}

// --- wire format ---

TEST(LsbFormatTest, EntryRoundTripsWithDataAndXrefs) {
  lsb::SegmentEntry in;
  in.id = ObjectVersion{"data/a", 3};
  in.kind = PnodeKind::kFile;
  in.data = util::make_shared_bytes(std::string(300, 'x'));
  in.records = {make_text_record("NAME", "data/a"),
                make_xref_record(attr::kInput, ObjectVersion{"proc:7", 1}),
                make_xref_record(attr::kPrev, ObjectVersion{"data/a", 2})};

  const std::string blob = lsb::encode_entry(in);
  auto out = lsb::decode_entry(blob);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->id, in.id);
  EXPECT_EQ(out->kind, in.kind);
  ASSERT_NE(out->data, nullptr);
  EXPECT_EQ(*out->data, *in.data);
  EXPECT_EQ(out->records, in.records);
}

TEST(LsbFormatTest, TransientEntryCarriesNoData) {
  lsb::SegmentEntry in;
  in.id = ObjectVersion{"proc:9", 1};
  in.kind = PnodeKind::kProcess;
  in.records = {make_text_record("NAME", "/bin/sh")};
  auto out = lsb::decode_entry(lsb::encode_entry(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->kind, PnodeKind::kProcess);
  EXPECT_EQ(out->data, nullptr);
}

TEST(LsbFormatTest, SegmentPlacementsSupportRangeDecodes) {
  std::string blob = lsb::segment_header(42);
  std::vector<lsb::SegmentEntry> entries;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (int i = 0; i < 5; ++i) {
    lsb::SegmentEntry e;
    e.id = ObjectVersion{"f" + std::to_string(i), 1};
    e.kind = PnodeKind::kFile;
    e.data = util::make_shared_bytes(std::string(40 + i, 'd'));
    e.records = {make_text_record("NAME", e.id.object)};
    const std::string encoded = lsb::encode_entry(e);
    spans.emplace_back(blob.size(), encoded.size());
    blob += encoded;
    entries.push_back(std::move(e));
  }
  auto seg = lsb::decode_segment(blob);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(seg->id, 42u);
  ASSERT_EQ(seg->entries.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(seg->entries[i].offset, spans[i].first);
    EXPECT_EQ(seg->entries[i].length, spans[i].second);
    // The posting contract: a byte-range GET of (offset, length) decodes
    // the entry without the rest of the segment.
    auto ranged = lsb::decode_entry(
        blob.substr(seg->entries[i].offset, seg->entries[i].length));
    ASSERT_TRUE(ranged.has_value()) << i;
    EXPECT_EQ(ranged->id, entries[i].id);
  }
}

TEST(LsbFormatTest, PostingsPackUnder1KbAndRoundTrip) {
  std::vector<lsb::Posting> in;
  for (int i = 0; i < 100; ++i) {
    lsb::EntryLocation loc;
    loc.segment = 9;
    loc.offset = 100 * i;
    loc.length = 90 + i;
    loc.data_bytes = i % 3 == 0 ? 0 : 64;
    in.emplace_back(ObjectVersion{"dir/file" + std::to_string(i), 1u + i % 4},
                    loc);
  }
  const std::vector<std::string> values = lsb::pack_postings(in);
  ASSERT_GT(values.size(), 1u);  // forced to split
  std::vector<lsb::Posting> out;
  for (const std::string& value : values) {
    EXPECT_LE(value.size(), 1024u);  // SimpleDB's per-value limit
    ASSERT_TRUE(lsb::unpack_postings(value, 9, out));
  }
  EXPECT_EQ(out, in);
}

// --- sealing and the read path ---

TEST(LsbBackendTest, GroupSealsIntoOneSegmentPut) {
  aws::CloudEnv env(21, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_lsb_backend(services);
  auto session = backend->open_session(SessionConfig{.max_group = 8});

  const sim::MeterSnapshot before = env.meter().snapshot();
  for (int i = 0; i < 8; ++i)
    session->submit(file_unit("f" + std::to_string(i), 1, "payload"));
  ASSERT_TRUE(session->sync().has_value());
  const sim::MeterSnapshot diff = env.meter().snapshot().diff(before);

  // Eight closes, ONE S3 PUT; the index publication is deferred, so no
  // SimpleDB write happened yet.
  EXPECT_EQ(diff.calls("s3", "PUT"), 1u);
  EXPECT_EQ(diff.calls("sdb", "PutAttributes"), 0u);
  EXPECT_EQ(diff.calls("sdb", "BatchPutAttributes"), 0u);

  for (int i = 0; i < 8; ++i) {
    auto got = backend->read("f" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_TRUE(got->verified);
    EXPECT_EQ(*got->data, "payload");
  }
}

TEST(LsbBackendTest, OversizedGroupSplitsAtTheSegmentCap) {
  aws::CloudEnv env(22, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  LsbBackendConfig cfg;
  cfg.segment_cap_bytes = 2 * util::kKiB;
  auto backend = make_lsb_backend(services, cfg);
  auto session = backend->open_session(SessionConfig{.max_group = 6});

  const sim::MeterSnapshot before = env.meter().snapshot();
  for (int i = 0; i < 6; ++i)
    session->submit(
        file_unit("big" + std::to_string(i), 1, std::string(1024, 'b')));
  ASSERT_TRUE(session->sync().has_value());
  const sim::MeterSnapshot diff = env.meter().snapshot().diff(before);
  EXPECT_GT(diff.calls("s3", "PUT"), 1u);  // the cap split the run
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(backend->read("big" + std::to_string(i)).has_value()) << i;
}

TEST(LsbBackendTest, ReadYourWritesSeesPendingSubmits) {
  aws::CloudEnv env(23, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_lsb_backend(services);
  auto session = backend->open_session(SessionConfig{.max_group = 16});
  const Ticket t = session->submit(file_unit("pending", 1, "notyet"));
  ASSERT_FALSE(t.done());
  auto got = session->read("pending");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 1u);
  EXPECT_EQ(*got->data, "notyet");
}

TEST(LsbBackendTest, OldVersionProvenanceStaysRetrievable) {
  aws::CloudEnv env(24, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_lsb_backend(services);
  backend->store(file_unit("v", 1, "one"));
  backend->store(file_unit(
      "v", 2, "two", {make_xref_record(attr::kPrev, ObjectVersion{"v", 1})}));
  auto latest = backend->read("v");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->version, 2u);
  // The log keeps every version's records (unlike Arch 1).
  auto old_prov = backend->get_provenance("v", 1);
  ASSERT_TRUE(old_prov.has_value());
  EXPECT_FALSE(old_prov->empty());
}

// --- deferred publication and recovery ---

TEST(LsbBackendTest, FreshBackendRebuildsFromPublishedIndex) {
  aws::CloudEnv env(25, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  {
    auto backend = make_lsb_backend(services);
    auto session = backend->open_session(SessionConfig{.max_group = 4});
    for (int i = 0; i < 12; ++i)
      session->submit(file_unit("r" + std::to_string(i), 1, "rebuilt"));
    ASSERT_TRUE(session->sync().has_value());
    backend->quiesce();  // publish the index checkpoint
  }
  // Client restart: only the durable postings + meta exist to go on.
  auto fresh = make_lsb_backend(services);
  fresh->recover();
  const sim::MeterSnapshot before = env.meter().snapshot();
  for (int i = 0; i < 12; ++i) {
    auto got = fresh->read("r" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got->data, "rebuilt");
  }
  // Reads resolve through the rebuilt index: byte-range GETs, no scans.
  const sim::MeterSnapshot diff = env.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("s3", "LIST"), 0u);
}

TEST(LsbBackendTest, UnpublishedSegmentsReplayAsOrphans) {
  aws::CloudEnv env(26, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  {
    auto backend = make_lsb_backend(services);
    auto session = backend->open_session(SessionConfig{.max_group = 3});
    for (int i = 0; i < 3; ++i)
      session->submit(file_unit("o" + std::to_string(i), 1, "orphaned"));
    ASSERT_TRUE(session->sync().has_value());
    // No quiesce: the backend dies with its postings unpublished -- the
    // segment is durable, the index knows nothing about it.
  }
  auto fresh = make_lsb_backend(services);
  fresh->recover();
  for (int i = 0; i < 3; ++i) {
    auto got = fresh->read("o" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got->data, "orphaned");
  }
}

TEST(LsbBackendTest, CrashedPublicationNeverTearsTheIndex) {
  aws::CloudEnv env(27, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  LsbBackendConfig cfg;
  cfg.shard_count = 3;  // publication spans several batched domain calls
  {
    auto backend = std::make_unique<LsbBackend>(services, cfg);
    auto session = backend->open_session(SessionConfig{.max_group = 8});
    for (int i = 0; i < 24; ++i)
      session->submit(file_unit("t" + std::to_string(i), 1, "torn?"));
    ASSERT_TRUE(session->sync().has_value());
    env.failures().arm_crash("lsb.index.mid_publish", 1);
    EXPECT_THROW(backend->quiesce(), sim::CrashError);
    env.failures().disarm("lsb.index.mid_publish");
  }
  // Some chunk items may be durable, but indexed-to was never advanced:
  // recovery replays the segments whole and every close survives.
  auto fresh = std::make_unique<LsbBackend>(services, cfg);
  fresh->recover();
  for (int i = 0; i < 24; ++i)
    ASSERT_TRUE(fresh->read("t" + std::to_string(i)).has_value()) << i;
}

// --- the cleaner ---

TEST(LsbBackendTest, CompactionReclaimsGarbageAndPreservesAncestry) {
  aws::CloudEnv env(28, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  LsbBackendConfig cfg;
  cfg.compact_trigger_segments = 0;  // manual cleaning only
  auto backend = std::make_unique<LsbBackend>(services, cfg);

  // A chain with superseded versions: v1/v2 of "hot" become garbage once
  // v3 lands; "cold" depends on hot@2, so its records must survive the
  // cleaner dropping hot@2's data bytes.
  backend->store(file_unit("hot", 1, std::string(512, '1')));
  backend->store(file_unit(
      "hot", 2, std::string(512, '2'),
      {make_xref_record(attr::kPrev, ObjectVersion{"hot", 1})}));
  backend->store(file_unit(
      "cold", 1, "c",
      {make_xref_record(attr::kInput, ObjectVersion{"hot", 2})}));
  backend->store(file_unit(
      "hot", 3, std::string(512, '3'),
      {make_xref_record(attr::kPrev, ObjectVersion{"hot", 2})}));
  backend->quiesce();

  const auto before = backend->stats();
  EXPECT_GE(before.segment_count, 4u);
  EXPECT_GT(before.garbage_ratio, 0.0);
  const AncestryResult want = fetch_ancestry(*backend, "cold", 1);
  const AncestryResult want_hot = fetch_ancestry(*backend, "hot", 3);

  // Garbage-ratio selection (the default): only the segments holding
  // superseded copies (hot@1, hot@2) are worth rewriting; the all-live
  // cold@1 and hot@3 segments are left alone.
  const std::size_t reclaimed = backend->compact();
  EXPECT_GE(reclaimed, 2u);

  const auto after = backend->stats();
  EXPECT_LT(after.segment_count, before.segment_count);
  EXPECT_LT(after.total_bytes, before.total_bytes);
  EXPECT_LT(after.garbage_ratio, before.garbage_ratio);
  EXPECT_GT(after.delete_to, 1u);

  // Dead segment objects are really gone.
  for (const std::string& key : services.s3.peek_keys(lsb::kSegmentBucket)) {
    std::uint64_t id = 0;
    ASSERT_TRUE(lsb::parse_segment_key(key, id));
    EXPECT_GE(id, after.delete_to) << key;
  }

  // Query results are bit-identical across the cleaner pass.
  EXPECT_TRUE(ancestry_equal(fetch_ancestry(*backend, "cold", 1), want));
  EXPECT_TRUE(ancestry_equal(fetch_ancestry(*backend, "hot", 3), want_hot));
  // Latest data still served; superseded data bytes dropped, records kept.
  auto hot = backend->read("hot");
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ(hot->version, 3u);
  auto old_prov = backend->get_provenance("hot", 2);
  ASSERT_TRUE(old_prov.has_value());
  EXPECT_FALSE(old_prov->empty());

  // A fresh backend over the compacted store agrees.
  auto fresh = make_lsb_backend(services);
  fresh->recover();
  EXPECT_TRUE(ancestry_equal(fetch_ancestry(*fresh, "cold", 1), want));
}

TEST(LsbBackendTest, GarbageRatioPolicyRewritesFewerBytesThanOldestFirst) {
  // Garbage concentrated in LATE segments: a live prefix of never-
  // overwritten objects, then repeated overwrites of one hot object. The
  // age policy rewrites the live prefix (all copy, no reclaim); the
  // garbage-ratio policy jumps straight to the overwrite-heavy tail.
  auto drive = [](CleanerPolicy policy, std::uint64_t seed) {
    aws::CloudEnv env(seed, aws::ConsistencyConfig::strong());
    CloudServices services(env);
    LsbBackendConfig cfg;
    cfg.compact_trigger_segments = 0;  // manual cleaning only
    cfg.compact_max_segments = 4;
    cfg.cleaner_policy = policy;
    auto backend = std::make_unique<LsbBackend>(services, cfg);
    for (int i = 0; i < 8; ++i)
      backend->store(file_unit("cold/f" + std::to_string(i), 1,
                               std::string(256, 'c')));
    for (int v = 1; v <= 8; ++v)
      backend->store(file_unit("hot", v, std::string(256, 'h')));
    backend->quiesce();
    const auto before = backend->stats();
    EXPECT_GT(before.garbage_ratio, 0.0);
    backend->compact();
    struct Result {
      std::uint64_t rewritten;
      std::uint64_t reclaimed;
      double garbage_ratio;
    };
    return Result{
        env.metrics().counter("lsb.compact.rewritten_bytes").value(),
        env.metrics().counter("lsb.compact.reclaimed_bytes").value(),
        backend->stats().garbage_ratio};
  };

  const auto by_age = drive(CleanerPolicy::kOldestFirst, 31);
  const auto by_ratio = drive(CleanerPolicy::kGarbageRatio, 31);
  // Same pass budget (4 victims): the ratio policy copies fewer live bytes
  // and reclaims more garbage.
  EXPECT_LT(by_ratio.rewritten, by_age.rewritten)
      << "ratio=" << by_ratio.rewritten << " age=" << by_age.rewritten;
  EXPECT_GT(by_ratio.reclaimed, by_age.reclaimed);
  EXPECT_LT(by_ratio.garbage_ratio, by_age.garbage_ratio);
}

TEST(LsbBackendTest, MidLogCompactionKeepsWatermarkBehindSurvivors) {
  aws::CloudEnv env(32, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  LsbBackendConfig cfg;
  cfg.compact_trigger_segments = 0;
  cfg.compact_max_segments = 2;
  auto backend = std::make_unique<LsbBackend>(services, cfg);
  // Segment 1: live forever. Segments 2-3: superseded by segment 4.
  backend->store(file_unit("keep", 1, std::string(64, 'k')));
  backend->store(file_unit("churn", 1, std::string(512, 'a')));
  backend->store(file_unit("churn", 2, std::string(512, 'b')));
  backend->store(file_unit("churn", 3, std::string(64, 'z')));
  backend->quiesce();

  ASSERT_GT(backend->compact(), 0u);
  const auto stats = backend->stats();
  // Victims were the mid-log garbage segments; segment 1 survives, so the
  // delete-to watermark must not advance past it.
  EXPECT_EQ(stats.delete_to, 1u);
  auto keep = backend->read("keep");
  ASSERT_TRUE(keep.has_value());
  EXPECT_EQ(keep->version, 1u);
  auto churn = backend->read("churn");
  ASSERT_TRUE(churn.has_value());
  EXPECT_EQ(churn->version, 3u);

  // A fresh backend over the store (client restart) agrees: nothing was
  // purged that a surviving segment still needs.
  auto fresh = make_lsb_backend(services);
  fresh->recover();
  auto again = fresh->read("keep");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->version, 1u);
}

TEST(LsbBackendTest, AutomaticCleaningTriggersOnTheWritePath) {
  aws::CloudEnv env(29, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  LsbBackendConfig cfg;
  cfg.compact_trigger_segments = 6;
  cfg.compact_max_segments = 6;
  cfg.index_publish_entries = 4;
  auto backend = std::make_unique<LsbBackend>(services, cfg);
  for (int i = 0; i < 24; ++i)
    backend->store(file_unit("auto", 1 + i, "x"));
  backend->quiesce();
  const auto stats = backend->stats();
  EXPECT_GT(stats.delete_to, 1u);  // the cleaner ran without being asked
  EXPECT_LE(stats.segment_count, 6u);
  auto got = backend->read("auto");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 24u);
}

// --- satellite: slow-but-not-crashed S3 on the seal path ---

TEST(LsbBackendTest, SlowS3StallsSealingWithoutCorruptingTheIndex) {
  aws::CloudEnv env(30, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_lsb_backend(services);

  // Brown-out: every S3 request takes 2 extra virtual seconds. Seals must
  // stall (visible as S3 ledger time), not fail or tear anything.
  const sim::SimTime extra = 2 * sim::kSecond;
  env.set_service_slowdown("s3", extra);
  const sim::SimTime s3_before = env.elapsed_by_service()["s3"];

  auto session = backend->open_session(SessionConfig{.max_group = 5});
  for (int i = 0; i < 5; ++i)
    session->submit(file_unit("slow" + std::to_string(i), 1, "molasses"));
  ASSERT_TRUE(session->sync().has_value());

  // One seal PUT, at least one injected delay, all on the S3 account.
  const sim::SimTime s3_after = env.elapsed_by_service()["s3"];
  EXPECT_GE(s3_after - s3_before, extra);

  env.set_service_slowdown("s3", 0);
  backend->quiesce();
  for (int i = 0; i < 5; ++i) {
    auto got = backend->read("slow" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_TRUE(got->verified);
    EXPECT_EQ(*got->data, "molasses");
  }
  // The stalled seal published a sound index: a fresh backend agrees.
  auto fresh = make_lsb_backend(services);
  fresh->recover();
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(fresh->read("slow" + std::to_string(i)).has_value()) << i;
}

// --- the scan query engine ---

TEST(LsbQueryTest, ScanEngineAnswersLikeTheBackend) {
  aws::CloudEnv env(31, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_lsb_backend(services);

  FlushUnit proc;
  proc.object = "proc:5";
  proc.version = 1;
  proc.kind = PnodeKind::kProcess;
  proc.records = {make_text_record(attr::kName, "/usr/bin/blast")};
  backend->store(proc);
  backend->store(file_unit(
      "out/hits", 1, "hits",
      {make_xref_record(attr::kInput, ObjectVersion{"proc:5", 1})}));
  backend->store(file_unit(
      "out/summary", 1, "sum",
      {make_xref_record(attr::kInput, ObjectVersion{"out/hits", 1})}));
  backend->quiesce();

  auto engine = make_lsb_query_engine(services);
  const auto q1 = engine->q1_all_provenance();
  EXPECT_EQ(q1.object_versions, 3u);
  EXPECT_EQ(engine->q2_outputs_of("/usr/bin/blast"),
            (std::set<std::string>{"out/hits"}));
  EXPECT_EQ(engine->q3_descendants_of("/usr/bin/blast"),
            (std::set<std::string>{"out/hits", "out/summary"}));
  const AncestryResult walked = engine->ancestry("out/summary", 1);
  EXPECT_TRUE(walked.missing.empty());
  EXPECT_EQ(walked.graph.nodes().size(), 3u);
}

}  // namespace
