// The paper's Table 1, verified empirically: crash sweeps, consistency
// hammering and query-cost scaling per architecture.
#include <gtest/gtest.h>

#include <cstdlib>

#include "cloudprov/properties.hpp"

namespace {

using namespace provcloud::cloudprov;

PropertyCheckOptions fast_options() {
  PropertyCheckOptions o;
  o.seed = 7;
  o.mini_files = 6;
  o.reads_per_version = 3;
  // CI re-runs the whole ACID suite at session group sizes {1, 8, 25}
  // through this knob (crashes then land mid-group-commit); the group
  // tests below pin their own sizes and are env-independent.
  if (const char* env = std::getenv("PROVCLOUD_PROPERTIES_GROUP_SIZE"))
    o.group_size = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  return o;
}

class TableOneRow : public ::testing::TestWithParam<Architecture> {};

TEST_P(TableOneRow, MeasuredPropertiesMatchPaperClaims) {
  const PropertyReport report = check_properties(GetParam(), fast_options());

  // Build the backend's claims for comparison.
  provcloud::aws::CloudEnv env(1);
  CloudServices services(env);
  const auto claims = make_backend(GetParam(), services)->claims();

  EXPECT_EQ(report.atomicity, claims.atomicity)
      << "atomicity violations: " << report.atomicity_violations;
  EXPECT_EQ(report.consistency, claims.consistency)
      << "consistency violations: " << report.consistency_violations
      << " of " << report.reads_checked << " reads";
  EXPECT_EQ(report.causal_ordering, claims.causal_ordering)
      << "causal violations: " << report.causal_violations;
  EXPECT_EQ(report.efficient_query, claims.efficient_query)
      << "query growth " << report.query_growth << " (" << report.query_ops_small
      << " -> " << report.query_ops_large << " ops)";
  EXPECT_TRUE(report.matches(claims));
  EXPECT_GT(report.crash_scenarios, 4u);
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, TableOneRow,
                         ::testing::Values(Architecture::kS3Only,
                                           Architecture::kS3SimpleDb,
                                           Architecture::kS3SimpleDbSqs,
                                           Architecture::kS3SegmentLog),
                         [](const auto& info) {
                           switch (info.param) {
                             case Architecture::kS3Only: return "S3";
                             case Architecture::kS3SimpleDb: return "S3SimpleDB";
                             case Architecture::kS3SimpleDbSqs:
                               return "S3SimpleDBSQS";
                             case Architecture::kS3SegmentLog:
                               return "S3SegmentLog";
                           }
                           return "unknown";
                         });

TEST(TableOneTest, ArchTwoAtomicityFailureIsTheBetweenStoresCrash) {
  // The specific counterexample the paper describes must be among the
  // violations found for Architecture 2.
  const PropertyReport report =
      check_properties(Architecture::kS3SimpleDb, fast_options());
  EXPECT_FALSE(report.atomicity);
  EXPECT_GT(report.atomicity_violations, 0u);
}

TEST(TableOneTest, ConsistencyDetectionActuallyFired) {
  // Architectures 2/3 should have *detected* staleness (retries > 0
  // somewhere) rather than passing vacuously.
  const PropertyReport r2 =
      check_properties(Architecture::kS3SimpleDb, fast_options());
  EXPECT_GT(r2.reads_checked, 0u);
  EXPECT_TRUE(r2.consistency);
}

TEST(TableOneTest, QueryGrowthEvidence) {
  const PropertyReport s3 =
      check_properties(Architecture::kS3Only, fast_options());
  const PropertyReport sdb =
      check_properties(Architecture::kS3SimpleDb, fast_options());
  // S3's query cost roughly doubles with a doubled dataset; SimpleDB's
  // stays flat.
  EXPECT_GT(s3.query_growth, 1.5);
  EXPECT_LT(sdb.query_growth, 1.5);
  EXPECT_GT(s3.query_ops_small, sdb.query_ops_small);
}

TEST(TableOneTest, VerdictsAreLayoutIndependentUnderSharding) {
  // PR 1 regression: check_state peeked only kProvenanceDomain, so any
  // sharded layout misreported stored provenance as atomicity violations
  // (data without provenance) while real orphans in shards went unseen.
  PropertyCheckOptions o = fast_options();
  o.shard_count = 4;
  for (const Architecture arch :
       {Architecture::kS3SimpleDb, Architecture::kS3SimpleDbSqs}) {
    const PropertyReport base = check_properties(arch, fast_options());
    const PropertyReport sharded = check_properties(arch, o);
    EXPECT_EQ(sharded.atomicity, base.atomicity) << to_string(arch);
    EXPECT_EQ(sharded.consistency, base.consistency) << to_string(arch);
    EXPECT_EQ(sharded.causal_ordering, base.causal_ordering)
        << to_string(arch);
    EXPECT_EQ(sharded.efficient_query, base.efficient_query)
        << to_string(arch);
  }
}

TEST(TableOneTest, ShardedArchTwoStillFindsTheAtomicityHole) {
  // Sharding must not *hide* the real violations either: Arch 2's crash
  // between provenance and data store remains an atomicity failure.
  PropertyCheckOptions o = fast_options();
  o.shard_count = 4;
  const PropertyReport report =
      check_properties(Architecture::kS3SimpleDb, o);
  EXPECT_FALSE(report.atomicity);
  EXPECT_GT(report.atomicity_violations, 0u);
}

TEST(TableOneTest, VerdictsAreGroupSizeIndependent) {
  // Cross-close group commit must not change any Table 1 verdict: batched
  // submits are a protocol optimization, not a semantics change. The crash
  // sweep inside check_properties now crashes mid-group-commit, so this is
  // the ACID-under-batched-submits verification.
  for (const Architecture arch :
       {Architecture::kS3SimpleDb, Architecture::kS3SimpleDbSqs}) {
    PropertyCheckOptions base_options = fast_options();
    base_options.group_size = 1;
    const PropertyReport base = check_properties(arch, base_options);
    for (const std::size_t group : {std::size_t{8}, std::size_t{25}}) {
      PropertyCheckOptions o = fast_options();
      o.group_size = group;
      const PropertyReport batched = check_properties(arch, o);
      EXPECT_EQ(batched.atomicity, base.atomicity)
          << to_string(arch) << " group " << group;
      EXPECT_EQ(batched.consistency, base.consistency)
          << to_string(arch) << " group " << group;
      EXPECT_EQ(batched.causal_ordering, base.causal_ordering)
          << to_string(arch) << " group " << group;
      EXPECT_EQ(batched.efficient_query, base.efficient_query)
          << to_string(arch) << " group " << group;
    }
  }
}

TEST(TableOneTest, BatchedShardedArchTwoStillFindsTheAtomicityHole) {
  // Group commit widens the hole (one orphan per close in the group) but
  // must not hide it: a crash between the provenance batch and the data
  // PUTs is still an atomicity failure.
  PropertyCheckOptions o = fast_options();
  o.shard_count = 4;
  o.group_size = 8;
  const PropertyReport report = check_properties(Architecture::kS3SimpleDb, o);
  EXPECT_FALSE(report.atomicity);
  EXPECT_GT(report.atomicity_violations, 0u);
}

TEST(TableOneTest, BatchedShardedArchThreeKeepsFullProperties) {
  // Arch 3's WAL makes group commit safe: a crash mid-group leaves a
  // committed prefix the daemon replays and an incomplete suffix it never
  // applies, so all four properties survive batching + sharding.
  PropertyCheckOptions o = fast_options();
  o.shard_count = 4;
  o.group_size = 25;
  const PropertyReport report =
      check_properties(Architecture::kS3SimpleDbSqs, o);
  EXPECT_TRUE(report.atomicity)
      << "violations: " << report.atomicity_violations;
  EXPECT_TRUE(report.consistency);
  EXPECT_TRUE(report.causal_ordering)
      << "violations: " << report.causal_violations;
  EXPECT_TRUE(report.efficient_query);
}

TEST(TableOneTest, VerdictsSurviveDeadlineDrivenFlushes) {
  // With a flush deadline armed, the crash-sweep workload advances the
  // clock between closes, so injected crashes fire while the commit daemon
  // (not the submitter) is mid-deadline-flush. The Table 1 verdicts are a
  // protocol property and must not depend on *who* drained the group.
  for (const Architecture arch :
       {Architecture::kS3SimpleDb, Architecture::kS3SimpleDbSqs}) {
    PropertyCheckOptions base_options = fast_options();
    base_options.group_size = 8;
    const PropertyReport base = check_properties(arch, base_options);
    PropertyCheckOptions o = base_options;
    o.flush_deadline = 100 * provcloud::sim::kMillisecond;
    const PropertyReport deadline = check_properties(arch, o);
    EXPECT_EQ(deadline.atomicity, base.atomicity) << to_string(arch);
    EXPECT_EQ(deadline.consistency, base.consistency) << to_string(arch);
    EXPECT_EQ(deadline.causal_ordering, base.causal_ordering)
        << to_string(arch);
    EXPECT_EQ(deadline.efficient_query, base.efficient_query)
        << to_string(arch);
    EXPECT_GT(deadline.crash_scenarios, 0u) << to_string(arch);
  }
}

TEST(TableOneTest, ReadYourWritesHoldsAcrossTheCrashSweep) {
  // Every close the sweep leaves pending in a group is immediately read
  // back through the session; read-your-writes says the unsynced submit
  // must be observed. group_size > 1 guarantees pending submits exist
  // (Arch 1 flushes per close, so only the SimpleDB architectures produce
  // checkable pending reads).
  for (const Architecture arch :
       {Architecture::kS3SimpleDb, Architecture::kS3SimpleDbSqs}) {
    PropertyCheckOptions o = fast_options();
    o.group_size = 8;
    const PropertyReport report = check_properties(arch, o);
    EXPECT_GT(report.ryw_checked, 0u) << to_string(arch);
    EXPECT_EQ(report.ryw_violations, 0u) << to_string(arch);
  }
}

TEST(TableOneTest, ParallelBackendsReportTheSameProperties) {
  PropertyCheckOptions o = fast_options();
  o.shard_count = 4;
  o.parallelism = 4;
  const PropertyReport parallel =
      check_properties(Architecture::kS3SimpleDbSqs, o);
  EXPECT_TRUE(parallel.atomicity);
  EXPECT_TRUE(parallel.consistency);
  EXPECT_TRUE(parallel.causal_ordering);
  EXPECT_TRUE(parallel.efficient_query);
}

TEST(TableOneTest, CheckAllReturnsFourRows) {
  const auto rows = check_all_architectures(fast_options());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].arch, Architecture::kS3Only);
  EXPECT_EQ(rows[1].arch, Architecture::kS3SimpleDb);
  EXPECT_EQ(rows[2].arch, Architecture::kS3SimpleDbSqs);
  EXPECT_EQ(rows[3].arch, Architecture::kS3SegmentLog);
}

TEST(TableOneTest, BatchedShardedArchFourKeepsAcidProperties) {
  // The segment log makes group commit atomic by construction: the whole
  // group seals into one immutable object, so a crash leaves either the
  // full group or an ignorable orphan -- never a torn close.
  PropertyCheckOptions o = fast_options();
  o.shard_count = 4;
  o.group_size = 25;
  const PropertyReport report =
      check_properties(Architecture::kS3SegmentLog, o);
  EXPECT_TRUE(report.atomicity)
      << "violations: " << report.atomicity_violations;
  EXPECT_TRUE(report.consistency);
  EXPECT_TRUE(report.causal_ordering)
      << "violations: " << report.causal_violations;
  EXPECT_FALSE(report.efficient_query);  // scan-based search, like Arch 1
}

TEST(TableOneTest, LsbCrashSweepIsCrashSafe) {
  // Dedicated Arch-4 sweep: crashes injected mid-seal, mid-index-publish
  // and mid-compaction must never tear the index or lose a committed
  // close, and an uninjected cleaner pass after recovery must leave
  // ancestry walks bit-identical.
  const LsbCrashReport report = check_lsb_crash_sweep(fast_options());
  EXPECT_GT(report.crash_scenarios, 8u);
  EXPECT_GT(report.crashed_runs, 0u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_TRUE(report.crash_safe());
}

TEST(TableOneTest, LsbCrashSweepSurvivesGroupedSubmits) {
  PropertyCheckOptions o = fast_options();
  o.group_size = 8;
  const LsbCrashReport report = check_lsb_crash_sweep(o);
  EXPECT_TRUE(report.crash_safe()) << report.violations << " violations in "
                                   << report.crash_scenarios << " scenarios";
}

TEST(TableOneTest, VerdictsSurviveBrownoutsAndThrottleStorms) {
  // ROADMAP 5b, hostile-environment sweep: a correlated brown-out (every
  // service 250ms slower per request) composed with a 503 throttle storm
  // (30% of attempts throttled, plus a 200 req/s admission rate) may
  // stretch elapsed time arbitrarily, but must not corrupt state or flip
  // any Table-1 verdict on any of the four architectures.
  PropertyCheckOptions o = fast_options();
  o.service_slowdown = 250 * provcloud::sim::kMillisecond;
  o.throttle_probability = 0.3;
  o.throttle_rate_per_sec = 200;

  for (const Architecture arch :
       {Architecture::kS3Only, Architecture::kS3SimpleDb,
        Architecture::kS3SimpleDbSqs, Architecture::kS3SegmentLog}) {
    const PropertyReport stormy = check_properties(arch, o);
    provcloud::aws::CloudEnv env(1);
    CloudServices services(env);
    const auto claims = make_backend(arch, services)->claims();
    EXPECT_TRUE(stormy.matches(claims))
        << to_string(arch) << ": atomicity=" << stormy.atomicity
        << " consistency=" << stormy.consistency
        << " causal=" << stormy.causal_ordering
        << " query=" << stormy.efficient_query << " (violations: "
        << stormy.atomicity_violations << "/" << stormy.consistency_violations
        << "/" << stormy.causal_violations << ")";
    EXPECT_GT(stormy.crash_scenarios, 4u) << to_string(arch);
  }
}

}  // namespace
