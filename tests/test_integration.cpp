// End-to-end: full workloads through PASS into each architecture, then
// verify the cloud contents against PASS ground truth and compare the
// architectures' answers to each other.
#include <gtest/gtest.h>

#include <memory>

#include "cloudprov/backend.hpp"
#include "cloudprov/consistency_read.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/serialize.hpp"
#include "pass/observer.hpp"
#include "util/md5.hpp"
#include "workloads/combined.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace sim = provcloud::sim;
namespace util = provcloud::util;
namespace workloads = provcloud::workloads;

workloads::WorkloadOptions tiny_options() {
  workloads::WorkloadOptions o;
  o.seed = 404;
  o.count_scale = 0.06;
  o.size_scale = 0.02;
  return o;
}

struct Pipeline {
  Pipeline(Architecture arch, const aws::ConsistencyConfig& consistency)
      : env(17, consistency),
        services(env),
        backend(make_backend(arch, services)),
        observer([this](const FlushUnit& u) { backend->store(u); }) {}

  void run(const SyscallTrace& trace) {
    observer.apply_trace(trace);
    observer.finish();
    env.clock().drain();
    backend->quiesce();
    env.clock().drain();
    backend->recover();
    env.clock().drain();
  }

  aws::CloudEnv env;
  CloudServices services;
  std::unique_ptr<ProvenanceBackend> backend;
  PassObserver observer;
};

/// Latest flushed version of each file object from ground truth.
std::map<std::string, const FlushUnit*> latest_files(const PassObserver& obs) {
  std::map<std::string, const FlushUnit*> latest;
  for (const auto& [key, unit] : obs.ground_truth()) {
    if (unit.kind != PnodeKind::kFile) continue;
    auto it = latest.find(key.first);
    if (it == latest.end() || it->second->version < unit.version)
      latest[key.first] = &unit;
  }
  return latest;
}

class PipelineTest : public ::testing::TestWithParam<Architecture> {};

TEST_P(PipelineTest, EveryFileReadableAndMatchesGroundTruth) {
  Pipeline p(GetParam(), aws::ConsistencyConfig::strong());
  p.run(workloads::build_combined_trace(tiny_options()));

  const auto latest = latest_files(p.observer);
  ASSERT_GT(latest.size(), 50u);
  for (const auto& [object, unit] : latest) {
    auto got = p.backend->read(object);
    ASSERT_TRUE(got.has_value()) << object;
    EXPECT_TRUE(got->verified) << object;
    EXPECT_EQ(got->version, unit->version) << object;
    EXPECT_EQ(*got->data, *unit->data) << object;
    EXPECT_FALSE(got->records.empty()) << object;
  }
}

TEST_P(PipelineTest, StoredProvenanceMatchesGroundTruthRecords) {
  Pipeline p(GetParam(), aws::ConsistencyConfig::strong());
  p.run(workloads::build_combined_trace(tiny_options()));

  const auto latest = latest_files(p.observer);
  std::size_t checked = 0;
  for (const auto& [object, unit] : latest) {
    if (checked >= 40) break;  // spot-check a prefix; full check is O(n^2)
    ++checked;
    auto prov = p.backend->get_provenance(object, unit->version);
    ASSERT_TRUE(prov.has_value()) << object;
    // Every ground-truth record must be present (order-insensitive).
    for (const auto& expected : unit->records) {
      bool found = false;
      for (const auto& r : *prov) found = found || r == expected;
      EXPECT_TRUE(found) << object << " missing " << expected.attribute << "="
                         << expected.value_string();
    }
  }
}

TEST_P(PipelineTest, WorksUnderEventualConsistency) {
  aws::ConsistencyConfig c;
  c.replicas = 3;
  c.propagation_min = 100 * sim::kMillisecond;
  c.propagation_max = 2 * sim::kSecond;
  c.sqs_sample_fraction = 0.5;
  Pipeline p(GetParam(), c);
  workloads::WorkloadOptions o = tiny_options();
  o.count_scale = 0.03;
  p.run(workloads::build_combined_trace(o));

  const auto latest = latest_files(p.observer);
  ASSERT_GT(latest.size(), 20u);
  for (const auto& [object, unit] : latest) {
    auto got = p.backend->read(object, 128);
    ASSERT_TRUE(got.has_value()) << object;
    EXPECT_TRUE(got->verified) << object;
    EXPECT_EQ(*got->data, *unit->data) << object;
  }
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, PipelineTest,
                         ::testing::Values(Architecture::kS3Only,
                                           Architecture::kS3SimpleDb,
                                           Architecture::kS3SimpleDbSqs),
                         [](const auto& info) {
                           switch (info.param) {
                             case Architecture::kS3Only: return "S3";
                             case Architecture::kS3SimpleDb: return "S3SimpleDB";
                             case Architecture::kS3SimpleDbSqs:
                               return "S3SimpleDBSQS";
                           }
                           return "unknown";
                         });

TEST(CrossArchitectureTest, QueryAnswersAgree) {
  // Architectures 2 and 3 must give identical query answers; Architecture
  // 1's scan-based engine must agree on Q2/Q3 for latest versions.
  const SyscallTrace trace = workloads::build_combined_trace(tiny_options());

  Pipeline p1(Architecture::kS3Only, aws::ConsistencyConfig::strong());
  p1.run(trace);
  Pipeline p2(Architecture::kS3SimpleDb, aws::ConsistencyConfig::strong());
  p2.run(trace);
  Pipeline p3(Architecture::kS3SimpleDbSqs, aws::ConsistencyConfig::strong());
  p3.run(trace);

  auto e1 = make_s3_query_engine(p1.services);
  auto e2 = make_sdb_query_engine(p2.services);
  auto e3 = make_sdb_query_engine(p3.services);

  const std::string program = "/usr/bin/blastall";
  const auto q2_1 = e1->q2_outputs_of(program);
  const auto q2_2 = e2->q2_outputs_of(program);
  const auto q2_3 = e3->q2_outputs_of(program);
  EXPECT_EQ(q2_2, q2_3) << "SimpleDB architectures must agree exactly";
  EXPECT_EQ(q2_1, q2_2) << "scan engine must find the same outputs";
  EXPECT_FALSE(q2_2.empty());

  const auto q3_2 = e2->q3_descendants_of(program);
  const auto q3_3 = e3->q3_descendants_of(program);
  EXPECT_EQ(q3_2, q3_3);
  // Descendants include the outputs.
  for (const auto& f : q2_2) EXPECT_EQ(q3_2.count(f), 1u) << f;
  EXPECT_GT(q3_2.size(), q2_2.size());  // summaries exist downstream
}

TEST(CrossArchitectureTest, WalStateConvergesToSdbState) {
  // After quiescence, Architecture 3 must hold exactly the same SimpleDB
  // items and S3 data objects as Architecture 2 given the same trace.
  const SyscallTrace trace = workloads::build_combined_trace(tiny_options());

  Pipeline p2(Architecture::kS3SimpleDb, aws::ConsistencyConfig::strong());
  p2.run(trace);
  Pipeline p3(Architecture::kS3SimpleDbSqs, aws::ConsistencyConfig::strong());
  p3.run(trace);

  const auto items2 = p2.services.sdb.peek_item_names(kProvenanceDomain);
  const auto items3 = p3.services.sdb.peek_item_names(kProvenanceDomain);
  EXPECT_EQ(items2, items3);

  for (const std::string& item : items2) {
    auto a = p2.services.sdb.peek_item(kProvenanceDomain, item);
    auto b = p3.services.sdb.peek_item(kProvenanceDomain, item);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b) << item;
  }

  // Data objects: same keys (minus temp leftovers) and same contents.
  auto keys2 = p2.services.s3.peek_keys(kDataBucket);
  auto keys3 = p3.services.s3.peek_keys(kDataBucket);
  std::erase_if(keys3, [](const std::string& k) {
    return k.rfind(kTempPrefix, 0) == 0;
  });
  EXPECT_EQ(keys2, keys3);
}

TEST(IntegrationStatsTest, MeterCapturesAllServices) {
  Pipeline p(Architecture::kS3SimpleDbSqs, aws::ConsistencyConfig::strong());
  workloads::WorkloadOptions o = tiny_options();
  o.count_scale = 0.03;
  p.run(workloads::build_combined_trace(o));
  const auto snap = p.env.meter().snapshot();
  EXPECT_GT(snap.calls("s3", "PUT"), 0u);
  EXPECT_GT(snap.calls("s3", "COPY"), 0u);
  EXPECT_GT(snap.calls("sqs", "SendMessage"), 0u);
  EXPECT_GT(snap.calls("sqs", "ReceiveMessage"), 0u);
  // The commit daemon batches its writes by default.
  EXPECT_GT(snap.calls("sdb", "BatchPutAttributes"), 0u);
  EXPECT_GT(snap.storage_bytes("s3"), 0u);
}

}  // namespace
