// Wire formats: record <-> S3 metadata / SimpleDB attributes, spill
// pointers, item names -- including hostile object names.
#include <gtest/gtest.h>

#include "cloudprov/serialize.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;

TEST(ItemNameTest, RoundTrip) {
  const std::string item = item_name("dir/foo.c", 3);
  EXPECT_EQ(item, "dir/foo.c:3");
  std::string object;
  std::uint32_t version = 0;
  ASSERT_TRUE(parse_item_name(item, object, version));
  EXPECT_EQ(object, "dir/foo.c");
  EXPECT_EQ(version, 3u);
}

TEST(ItemNameTest, RejectsMalformed) {
  std::string object;
  std::uint32_t version = 0;
  EXPECT_FALSE(parse_item_name("no-version", object, version));
  EXPECT_FALSE(parse_item_name("trailing:", object, version));
  EXPECT_FALSE(parse_item_name("bad:1x", object, version));
}

TEST(ItemNameTest, LastColonWins) {
  // Object names may not contain ':' in our PASS namespace, but parse must
  // still split on the LAST colon for robustness.
  std::string object;
  std::uint32_t version = 0;
  ASSERT_TRUE(parse_item_name("a:b:7", object, version));
  EXPECT_EQ(object, "a:b");
  EXPECT_EQ(version, 7u);
}

TEST(RecordCodecTest, TextRoundTrip) {
  const ProvenanceRecord r = make_text_record("ENV", "PATH=/bin;HOME=/root");
  const ProvenanceRecord back = parse_record(serialize_record(r));
  EXPECT_EQ(back, r);
}

TEST(RecordCodecTest, XrefRoundTrip) {
  const ProvenanceRecord r = make_xref_record("INPUT", {"blast/nr.psq", 4});
  const ProvenanceRecord back = parse_record(serialize_record(r));
  ASSERT_TRUE(back.is_xref());
  EXPECT_EQ(back.xref().object, "blast/nr.psq");
  EXPECT_EQ(back.xref().version, 4u);
}

TEST(RecordCodecTest, HostileCharactersSurvive) {
  const ProvenanceRecord r =
      make_text_record("ARGV", "gcc -DX='a;b=c' file\nnewline%percent");
  EXPECT_EQ(parse_record(serialize_record(r)), r);
}

TEST(RecordCodecTest, NonXrefAttributeStaysText) {
  // "NAME" is not an xref attribute: a value that looks like obj:1 must not
  // be decoded as a cross-reference.
  const ProvenanceRecord r = make_text_record("NAME", "weird:1");
  const ProvenanceRecord back = parse_record(serialize_record(r));
  EXPECT_FALSE(back.is_xref());
  EXPECT_EQ(back.text(), "weird:1");
}

TEST(MetadataCodecTest, RoundTrip) {
  FlushUnit unit;
  unit.object = "data/foo";
  unit.version = 2;
  unit.kind = PnodeKind::kFile;
  unit.records = {make_text_record("TYPE", "file"),
                  make_text_record("NAME", "data/foo"),
                  make_xref_record("INPUT", {"proc/9/1", 3})};
  const S3MetadataEncoding enc = encode_unit_as_metadata(unit);
  EXPECT_TRUE(enc.spilled_indexes.empty());

  const DecodedMetadata decoded = decode_metadata(enc.metadata);
  EXPECT_EQ(decoded.object, "data/foo");
  EXPECT_EQ(decoded.version, 2u);
  EXPECT_EQ(decoded.kind, "file");
  ASSERT_EQ(decoded.records.size(), 3u);
  for (const auto& r : unit.records) {
    bool found = false;
    for (const auto& d : decoded.records) found = found || d == r;
    EXPECT_TRUE(found) << r.attribute;
  }
  EXPECT_TRUE(decoded.spill_keys.empty());
}

TEST(MetadataCodecTest, OversizedRecordSpills) {
  FlushUnit unit;
  unit.object = "f";
  unit.version = 1;
  unit.records = {make_text_record("ENV", std::string(1500, 'e')),
                  make_text_record("TYPE", "file")};
  const S3MetadataEncoding enc = encode_unit_as_metadata(unit);
  ASSERT_EQ(enc.spilled_indexes.size(), 1u);
  EXPECT_EQ(enc.spilled_indexes[0], 0u);
  // The in-place value is a pointer.
  const DecodedMetadata decoded = decode_metadata(enc.metadata);
  ASSERT_EQ(decoded.spill_keys.size(), 1u);
  EXPECT_EQ(decoded.spill_keys[0], overflow_key("f", 1, 0));
  // Total metadata fits S3's 2 KB limit despite the 1.5 KB record.
  EXPECT_LE(provcloud::aws::metadata_size(enc.metadata), 2048u);
}

TEST(MetadataCodecTest, TotalBudgetForcesSpillsOfSmallRecords) {
  // Many records individually under the 1KB threshold can still overflow
  // S3's 2KB *total* metadata budget; the encoder must spill the largest
  // ones until the envelope fits.
  FlushUnit unit;
  unit.object = "gcc-proc";
  unit.version = 1;
  for (int i = 0; i < 6; ++i)
    unit.records.push_back(
        make_text_record("R" + std::to_string(i), std::string(600, 'r')));
  const S3MetadataEncoding enc = encode_unit_as_metadata(unit);
  EXPECT_LE(provcloud::aws::metadata_size(enc.metadata),
            provcloud::aws::kS3MaxMetadataBytes);
  EXPECT_GE(enc.spilled_indexes.size(), 2u);
  // Spilled + inline still covers every record.
  const DecodedMetadata decoded = decode_metadata(enc.metadata);
  EXPECT_EQ(decoded.records.size(), unit.records.size());
}

TEST(MetadataCodecTest, ManyTinyRecordsStayInline) {
  FlushUnit unit;
  unit.object = "o";
  unit.version = 1;
  for (int i = 0; i < 40; ++i)
    unit.records.push_back(make_xref_record("INPUT", {"in" + std::to_string(i), 1}));
  const S3MetadataEncoding enc = encode_unit_as_metadata(unit);
  EXPECT_TRUE(enc.spilled_indexes.empty());
  EXPECT_LE(provcloud::aws::metadata_size(enc.metadata),
            provcloud::aws::kS3MaxMetadataBytes);
}

TEST(MetadataCodecTest, DecodeIgnoresForeignKeys) {
  provcloud::aws::S3Metadata meta{{"x-object", "o"},
                                  {"x-version", "1"},
                                  {"x-kind", "file"},
                                  {"unrelated", "junk"},
                                  {"p0", "TYPE=file"}};
  const DecodedMetadata decoded = decode_metadata(meta);
  EXPECT_EQ(decoded.records.size(), 1u);
}

TEST(SdbCodecTest, RoundTrip) {
  FlushUnit unit;
  unit.object = "data/out";
  unit.version = 5;
  unit.kind = PnodeKind::kProcess;
  unit.records = {make_text_record("TYPE", "process"),
                  make_xref_record("INPUT", {"a", 1}),
                  make_xref_record("INPUT", {"b", 2})};
  const SdbEncoding enc = encode_unit_as_attributes(unit);
  // x-kind + 3 records.
  EXPECT_EQ(enc.attributes.size(), 4u);

  // Apply to an item the way the backend does, then decode.
  provcloud::aws::SdbItem item;
  for (const auto& a : enc.attributes) item[a.name].insert(a.value);
  const std::vector<ProvenanceRecord> decoded = decode_attributes(item);
  EXPECT_EQ(decoded.size(), 3u);  // x-kind excluded
  for (const auto& r : unit.records) {
    bool found = false;
    for (const auto& d : decoded) found = found || d == r;
    EXPECT_TRUE(found) << r.attribute << "=" << r.value_string();
  }
}

TEST(SdbCodecTest, MultiValuedInputsDoNotReplace) {
  FlushUnit unit;
  unit.object = "o";
  unit.version = 1;
  unit.records = {make_xref_record("INPUT", {"a", 1}),
                  make_xref_record("INPUT", {"b", 1})};
  const SdbEncoding enc = encode_unit_as_attributes(unit);
  for (const auto& a : enc.attributes)
    if (a.name == "INPUT") EXPECT_FALSE(a.replace);
}

TEST(SdbCodecTest, OversizedValueSpills) {
  FlushUnit unit;
  unit.object = "o";
  unit.version = 1;
  unit.records = {make_text_record("ENV", std::string(2000, 'x'))};
  const SdbEncoding enc = encode_unit_as_attributes(unit);
  ASSERT_EQ(enc.spilled_indexes.size(), 1u);
  bool found_pointer = false;
  for (const auto& a : enc.attributes) {
    EXPECT_LE(a.value.size(), 1024u) << a.name;
    if (a.name == "ENV") {
      EXPECT_EQ(a.value.rfind(kSpillMarker, 0), 0u);
      found_pointer = true;
    }
  }
  EXPECT_TRUE(found_pointer);
}

TEST(SdbCodecTest, Md5AttributeExcludedFromDecode) {
  provcloud::aws::SdbItem item;
  item["MD5"].insert("abcdef");
  item["x-kind"].insert("file");
  item["TYPE"].insert("file");
  EXPECT_EQ(decode_attributes(item).size(), 1u);
}

TEST(SpillTest, OverflowKeyIsDistinctPerRecord) {
  EXPECT_NE(overflow_key("a", 1, 0), overflow_key("a", 1, 1));
  EXPECT_NE(overflow_key("a", 1, 0), overflow_key("a", 2, 0));
  EXPECT_NE(overflow_key("a", 1, 0), overflow_key("b", 1, 0));
  EXPECT_EQ(overflow_key("a", 1, 0).rfind(kOverflowPrefix, 0), 0u);
}

TEST(SpillTest, XrefAttributeDetection) {
  EXPECT_TRUE(is_xref_attribute("INPUT"));
  EXPECT_TRUE(is_xref_attribute("PREV"));
  EXPECT_TRUE(is_xref_attribute("FORKPARENT"));
  EXPECT_FALSE(is_xref_attribute("NAME"));
  EXPECT_FALSE(is_xref_attribute("ENV"));
}

}  // namespace
