#include <gtest/gtest.h>

#include "util/hex.hpp"
#include "util/rng.hpp"

namespace {

using provcloud::util::hex_decode;
using provcloud::util::hex_encode;
using provcloud::util::hex_u64;

TEST(HexTest, EncodeBasics) {
  EXPECT_EQ(hex_encode(""), "");
  EXPECT_EQ(hex_encode("abc"), "616263");
  EXPECT_EQ(hex_encode(std::string("\x00\xff\x10", 3)), "00ff10");
}

TEST(HexTest, DecodeBasics) {
  EXPECT_EQ(hex_decode("616263").value(), "abc");
  EXPECT_EQ(hex_decode("").value(), "");
  EXPECT_EQ(hex_decode("00FF10").value(), std::string("\x00\xff\x10", 3));
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_FALSE(hex_decode("abc").has_value());
}

TEST(HexTest, DecodeRejectsBadDigits) {
  EXPECT_FALSE(hex_decode("zz").has_value());
  EXPECT_FALSE(hex_decode("0g").has_value());
}

TEST(HexTest, RoundTripRandomBuffers) {
  provcloud::util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    std::string buf;
    const std::size_t len = rng.next_below(64);
    for (std::size_t j = 0; j < len; ++j)
      buf.push_back(static_cast<char>(rng.next_below(256)));
    EXPECT_EQ(hex_decode(hex_encode(buf)).value(), buf);
  }
}

TEST(HexTest, HexU64) {
  EXPECT_EQ(hex_u64(0), "0000000000000000");
  EXPECT_EQ(hex_u64(0xdeadbeef), "00000000deadbeef");
  EXPECT_EQ(hex_u64(UINT64_MAX), "ffffffffffffffff");
}

}  // namespace
