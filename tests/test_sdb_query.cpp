// The 2009 SimpleDB query languages: bracket Query expressions and SELECT.
// Includes a brute-force reference evaluator cross-checked against the
// indexed evaluator over randomized domains.
#include <gtest/gtest.h>

#include "aws/simpledb/query_language.hpp"
#include "util/rng.hpp"

namespace {

using namespace provcloud::aws;
using namespace provcloud::aws::sdbql;

SdbDomainData make_domain() {
  SdbDomainData d;
  d.apply_put("item1", {{"color", "red", false}, {"size", "small", false}});
  d.apply_put("item2", {{"color", "blue", false}, {"size", "large", false}});
  d.apply_put("item3", {{"color", "red", false},
                        {"color", "blue", false},
                        {"size", "medium", false}});
  d.apply_put("item4", {{"shape", "round", false}});
  d.apply_put("item5", {{"color", "green", false}, {"year", "1978", false}});
  return d;
}

std::set<std::string> run(const SdbDomainData& d, const std::string& expr) {
  auto parsed = parse_query(expr);
  EXPECT_TRUE(parsed.has_value()) << (parsed.has_value() ? "" : parsed.error());
  return evaluate(*parsed, d);
}

TEST(QueryLangTest, SimpleEquality) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run(d, "['color' = 'red']"),
            (std::set<std::string>{"item1", "item3"}));
}

TEST(QueryLangTest, NotEquals) {
  const SdbDomainData d = make_domain();
  // item3 has a blue value too but also red != blue -> matches (some value
  // satisfies the comparison).
  EXPECT_EQ(run(d, "['color' != 'red']"),
            (std::set<std::string>{"item2", "item3", "item5"}));
}

TEST(QueryLangTest, RangeOnSameAttributeWithAnd) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run(d, "['year' > '1975' and 'year' < '1980']"),
            (std::set<std::string>{"item5"}));
}

TEST(QueryLangTest, AndChainNeedsSingleSatisfyingValue) {
  SdbDomainData d;
  // Values "1" and "9": no single value is both > '2' and < '8'.
  d.apply_put("i", {{"a", "1", false}, {"a", "9", false}});
  EXPECT_TRUE(run(d, "['a' > '2' and 'a' < '8']").empty());
  // Adding "5" satisfies the chain with one value.
  d.apply_put("i", {{"a", "5", false}});
  EXPECT_EQ(run(d, "['a' > '2' and 'a' < '8']"),
            (std::set<std::string>{"i"}));
}

TEST(QueryLangTest, OrWithinPredicate) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run(d, "['color' = 'red' or 'color' = 'green']"),
            (std::set<std::string>{"item1", "item3", "item5"}));
}

TEST(QueryLangTest, StartsWith) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run(d, "['size' starts-with 'm']"),
            (std::set<std::string>{"item3"}));
}

TEST(QueryLangTest, LexicographicComparison) {
  SdbDomainData d;
  d.apply_put("a", {{"v", "10", false}});
  d.apply_put("b", {{"v", "9", false}});
  // Strings compare lexicographically: "10" < "9".
  EXPECT_EQ(run(d, "['v' < '5']"), (std::set<std::string>{"a"}));
}

TEST(QueryLangTest, UnionCombinesPredicates) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run(d, "['color' = 'green'] union ['shape' = 'round']"),
            (std::set<std::string>{"item4", "item5"}));
}

TEST(QueryLangTest, IntersectionAcrossAttributes) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run(d, "['color' = 'red'] intersection ['size' = 'small']"),
            (std::set<std::string>{"item1"}));
}

TEST(QueryLangTest, NotSelectsCarriersThatDoNotMatch) {
  const SdbDomainData d = make_domain();
  // `not` returns items that HAVE the attribute but fail the predicate:
  // item4 (no color) is excluded.
  EXPECT_EQ(run(d, "not ['color' = 'red']"),
            (std::set<std::string>{"item2", "item5"}));
}

TEST(QueryLangTest, LeftAssociativeChain) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(
      run(d, "['color' = 'red'] union ['color' = 'blue'] intersection "
             "['size' = 'large']"),
      (std::set<std::string>{"item2"}));
}

TEST(QueryLangTest, MissingAttributeMatchesNothing) {
  const SdbDomainData d = make_domain();
  EXPECT_TRUE(run(d, "['nope' = 'x']").empty());
}

TEST(QueryLangTest, CrossAttributePredicateRejected) {
  auto parsed = parse_query("['a' = '1' and 'b' = '2']");
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().find("same"), std::string::npos);
}

struct BadExpression {
  const char* text;
};

class QueryLangRejects : public ::testing::TestWithParam<BadExpression> {};

TEST_P(QueryLangRejects, MalformedExpressions) {
  EXPECT_FALSE(parse_query(GetParam().text).has_value()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Bad, QueryLangRejects,
    ::testing::Values(BadExpression{"["}, BadExpression{"[']"},
                      BadExpression{"['a' ='"}, BadExpression{"['a' 'b']"},
                      BadExpression{"['a' = 'b'] garbage ['c' = 'd']"},
                      BadExpression{"['a' = 'b'] union"},
                      BadExpression{"not"}, BadExpression{"['a' = 'b' and]"},
                      BadExpression{"hello"}));

TEST(QueryLangTest, QuoteEscaping) {
  SdbDomainData d;
  d.apply_put("i", {{"name", "it's", false}});
  EXPECT_EQ(run(d, "['name' = 'it''s']"), (std::set<std::string>{"i"}));
}

// --- SELECT ---

TEST(SelectTest, ParseStarFromDomain) {
  auto s = parse_select("select * from mydomain");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->output, SelectOutput::kAllAttributes);
  EXPECT_EQ(s->domain, "mydomain");
  EXPECT_EQ(s->where, nullptr);
}

TEST(SelectTest, ParseItemName) {
  auto s = parse_select("select itemName() from d");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->output, SelectOutput::kItemName);
}

TEST(SelectTest, ParseCount) {
  auto s = parse_select("select count(*) from d");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->output, SelectOutput::kCount);
}

TEST(SelectTest, ParseAttributeList) {
  auto s = parse_select("select color, size from d");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->output, SelectOutput::kAttributeList);
  EXPECT_EQ(s->output_attributes,
            (std::vector<std::string>{"color", "size"}));
}

TEST(SelectTest, ParseLimit) {
  auto s = parse_select("select * from d limit 7");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->limit, 7u);
}

TEST(SelectTest, LimitCappedAt250) {
  auto s = parse_select("select * from d limit 100000");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->limit, kSdbMaxQueryResults);
}

std::set<std::string> run_where(const SdbDomainData& d,
                                const std::string& select) {
  auto s = parse_select(select);
  EXPECT_TRUE(s.has_value()) << (s.has_value() ? "" : s.error());
  return evaluate_where(s->where.get(), d);
}

TEST(SelectTest, WhereEquality) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run_where(d, "select * from d where color = 'red'"),
            (std::set<std::string>{"item1", "item3"}));
}

TEST(SelectTest, WhereAndOrParens) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run_where(d, "select * from d where (color = 'red' and "
                         "size = 'small') or shape = 'round'"),
            (std::set<std::string>{"item1", "item4"}));
}

TEST(SelectTest, WhereNot) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run_where(d, "select * from d where not color = 'red'"),
            (std::set<std::string>{"item2", "item4", "item5"}));
}

TEST(SelectTest, WhereLike) {
  SdbDomainData d;
  d.apply_put("a", {{"name", "blast/hits1.out", false}});
  d.apply_put("b", {{"name", "blast/query1.fa", false}});
  d.apply_put("c", {{"name", "other.txt", false}});
  EXPECT_EQ(run_where(d, "select * from d where name like 'blast/%'"),
            (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(run_where(d, "select * from d where name like '%.out'"),
            (std::set<std::string>{"a"}));
  EXPECT_EQ(run_where(d, "select * from d where name like '%hits%'"),
            (std::set<std::string>{"a"}));
}

TEST(SelectTest, WhereIsNull) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run_where(d, "select * from d where color is null"),
            (std::set<std::string>{"item4"}));
  EXPECT_EQ(run_where(d, "select * from d where shape is not null"),
            (std::set<std::string>{"item4"}));
}

TEST(SelectTest, WhereItemName) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run_where(d, "select * from d where itemName() = 'item2'"),
            (std::set<std::string>{"item2"}));
  EXPECT_EQ(run_where(d, "select * from d where itemName() like 'item%'"),
            (std::set<std::string>{"item1", "item2", "item3", "item4",
                                   "item5"}));
}

TEST(SelectTest, WhereIn) {
  const SdbDomainData d = make_domain();
  EXPECT_EQ(run_where(d, "select * from d where color in ('red', 'green')"),
            (std::set<std::string>{"item1", "item3", "item5"}));
  EXPECT_TRUE(run_where(d, "select * from d where color in ('magenta')")
                  .empty());
}

TEST(SelectTest, WhereBetween) {
  SdbDomainData d;
  d.apply_put("a", {{"year", "1975", false}});
  d.apply_put("b", {{"year", "1978", false}});
  d.apply_put("c", {{"year", "1981", false}});
  EXPECT_EQ(run_where(d, "select * from d where year between '1975' and "
                         "'1979'"),
            (std::set<std::string>{"a", "b"}));
}

TEST(SelectTest, EveryQuantifier) {
  SdbDomainData d;
  d.apply_put("all_red", {{"color", "red", false}});
  d.apply_put("mixed", {{"color", "red", false}, {"color", "blue", false}});
  // Default (some value matches): both items.
  EXPECT_EQ(run_where(d, "select * from d where color = 'red'"),
            (std::set<std::string>{"all_red", "mixed"}));
  // every(): only the item where all values match.
  EXPECT_EQ(run_where(d, "select * from d where every(color) = 'red'"),
            (std::set<std::string>{"all_red"}));
}

TEST(SelectTest, OrderByRequiresConstraint) {
  // The real service rejects ordering on an unconstrained attribute.
  EXPECT_FALSE(parse_select("select * from d order by color").has_value());
  EXPECT_TRUE(parse_select("select * from d where color is not null "
                           "order by color")
                  .has_value());
  EXPECT_TRUE(parse_select("select * from d order by itemName()").has_value());
}

TEST(SelectTest, OrderByParsesDirection) {
  auto s = parse_select(
      "select * from d where year > '0' order by year desc limit 3");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->order_by, "year");
  EXPECT_TRUE(s->order_descending);
  EXPECT_EQ(s->limit, 3u);
}

TEST(SelectTest, OrderByValueSortsResults) {
  SdbDomainData d;
  d.apply_put("i1", {{"year", "1981", false}});
  d.apply_put("i2", {{"year", "1975", false}});
  d.apply_put("i3", {{"year", "1978", false}});
  auto asc = parse_select(
      "select * from d where year > '0' order by year");
  ASSERT_TRUE(asc.has_value());
  EXPECT_EQ(evaluate_select_order(*asc, d),
            (std::vector<std::string>{"i2", "i3", "i1"}));
  auto desc = parse_select(
      "select * from d where year > '0' order by year desc");
  ASSERT_TRUE(desc.has_value());
  EXPECT_EQ(evaluate_select_order(*desc, d),
            (std::vector<std::string>{"i1", "i3", "i2"}));
}

TEST(SelectTest, OrderByItemNameDescending) {
  SdbDomainData d;
  d.apply_put("a", {{"x", "1", false}});
  d.apply_put("b", {{"x", "1", false}});
  auto s = parse_select("select * from d order by itemName() desc");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(evaluate_select_order(*s, d),
            (std::vector<std::string>{"b", "a"}));
}

TEST(SelectTest, RejectsMalformed) {
  EXPECT_FALSE(parse_select("selec * from d").has_value());
  EXPECT_FALSE(parse_select("select * from").has_value());
  EXPECT_FALSE(parse_select("select * from d where").has_value());
  EXPECT_FALSE(parse_select("select * from d where a = ").has_value());
  EXPECT_FALSE(parse_select("select count(* from d").has_value());
  EXPECT_FALSE(parse_select("select * from d limit x").has_value());
  EXPECT_FALSE(parse_select("select * from d where a in ()").has_value());
  EXPECT_FALSE(parse_select("select * from d where a in ('x'").has_value());
  EXPECT_FALSE(
      parse_select("select * from d where a between 'x'").has_value());
  EXPECT_FALSE(parse_select("select * from d where every color = 'x'")
                   .has_value());
  EXPECT_FALSE(parse_select("select * from d order by").has_value());
}

// --- randomized cross-check against a brute-force evaluator ---

bool ref_compare(const std::string& lhs, CompareOp op, const std::string& rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
    case CompareOp::kStartsWith:
      return lhs.rfind(rhs, 0) == 0;
  }
  return false;
}

std::set<std::string> ref_predicate(const Predicate& p,
                                    const SdbDomainData& d) {
  std::set<std::string> out;
  for (const auto& [name, item] : d.items) {
    auto attr = item.find(p.attribute);
    if (attr == item.end()) continue;
    bool match = false;
    for (const auto& chain : p.or_groups) {
      for (const auto& value : attr->second) {
        bool all = true;
        for (const auto& cmp : chain)
          all = all && ref_compare(value, cmp.op, cmp.value);
        if (all) {
          match = true;
          break;
        }
      }
      if (match) break;
    }
    if (match != p.negated) out.insert(name);
  }
  return out;
}

class QueryLangFuzz : public ::testing::TestWithParam<int> {};

TEST_P(QueryLangFuzz, IndexedEvaluatorMatchesBruteForce) {
  provcloud::util::Rng rng(GetParam());
  SdbDomainData d;
  const std::vector<std::string> attrs = {"a", "b", "c"};
  const std::vector<std::string> values = {"1", "2", "3", "10", "x", "xy"};
  for (int i = 0; i < 40; ++i) {
    std::vector<SdbReplaceableAttribute> put;
    const std::size_t n = 1 + rng.next_below(4);
    for (std::size_t j = 0; j < n; ++j)
      put.push_back({attrs[rng.next_below(attrs.size())],
                     values[rng.next_below(values.size())], false});
    d.apply_put("item" + std::to_string(i), put);
  }
  const std::vector<const char*> ops = {"=", "!=", "<", "<=", ">", ">=",
                                        "starts-with"};
  for (int trial = 0; trial < 200; ++trial) {
    const std::string attr = attrs[rng.next_below(attrs.size())];
    std::string expr = "['" + attr + "' " + ops[rng.next_below(ops.size())] +
                       " '" + values[rng.next_below(values.size())] + "'";
    if (rng.next_bool(0.5))
      expr += std::string(" ") + (rng.next_bool(0.5) ? "and" : "or") + " '" +
              attr + "' " + ops[rng.next_below(ops.size())] + " '" +
              values[rng.next_below(values.size())] + "'";
    expr += "]";
    if (rng.next_bool(0.3)) expr = "not " + expr;

    auto parsed = parse_query(expr);
    ASSERT_TRUE(parsed.has_value()) << expr;
    ASSERT_EQ(parsed->predicates.size(), 1u);
    EXPECT_EQ(evaluate(*parsed, d), ref_predicate(parsed->predicates[0], d))
        << expr;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryLangFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
