// ShardRouter: stable hashing, directory-free lookups, and the
// shard_count == 1 compatibility guarantee.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cloudprov/serialize.hpp"
#include "cloudprov/shard_router.hpp"

namespace {

using provcloud::cloudprov::ShardRouter;
using provcloud::cloudprov::kProvenanceDomain;

TEST(ShardRouterTest, SingleShardKeepsTheOriginalDomainName) {
  ShardRouter r(1);
  ASSERT_EQ(r.shard_count(), 1u);
  EXPECT_EQ(r.domains().front(), kProvenanceDomain);
  EXPECT_EQ(r.domain_for_object("anything"), kProvenanceDomain);
}

TEST(ShardRouterTest, ZeroShardsClampToOne) {
  ShardRouter r(0);
  EXPECT_EQ(r.shard_count(), 1u);
  EXPECT_EQ(r.domains().front(), kProvenanceDomain);
}

TEST(ShardRouterTest, MultiShardDomainsAreIndexed) {
  ShardRouter r(4);
  ASSERT_EQ(r.shard_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(r.domains()[i],
              std::string(kProvenanceDomain) + "-" + std::to_string(i));
}

TEST(ShardRouterTest, StableHashIsPinnedForAllTime) {
  // FNV-1a 64 test vectors: changing the hash would orphan every stored
  // item, so these values must never move.
  EXPECT_EQ(ShardRouter::stable_hash(""), 14695981039346656037ull);
  EXPECT_EQ(ShardRouter::stable_hash("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(ShardRouter::stable_hash("foobar"), 0x85944171f73967e8ull);
}

TEST(ShardRouterTest, LookupsAreRebalanceFree) {
  // Pure function of (object, shard_count): two routers agree with no
  // shared state, and repeated lookups never move an object.
  ShardRouter a(8), b(8);
  for (int i = 0; i < 200; ++i) {
    const std::string object = "obj/" + std::to_string(i);
    EXPECT_EQ(a.shard_of(object), b.shard_of(object));
    EXPECT_EQ(a.shard_of(object), a.shard_of(object));
  }
}

TEST(ShardRouterTest, AllVersionsOfAnObjectShareADomain) {
  ShardRouter r(4);
  for (int i = 0; i < 50; ++i) {
    const std::string object = "dir/file" + std::to_string(i);
    for (std::uint32_t v = 1; v <= 5; ++v)
      EXPECT_EQ(r.domain_for_item(object + ":" + std::to_string(v)),
                r.domain_for_object(object));
  }
}

TEST(ShardRouterTest, HashSpreadsObjectsAcrossShards) {
  ShardRouter r(4);
  std::map<std::size_t, int> load;
  for (int i = 0; i < 1000; ++i)
    ++load[r.shard_of("path/to/object-" + std::to_string(i))];
  ASSERT_EQ(load.size(), 4u);  // every shard is used
  for (const auto& [shard, n] : load) {
    EXPECT_GT(n, 150) << "shard " << shard << " underloaded";
    EXPECT_LT(n, 350) << "shard " << shard << " overloaded";
  }
}

}  // namespace
