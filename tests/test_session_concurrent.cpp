// Many concurrent sessions into one backend: real threads hammer a single
// commit daemon with interleaved submits, syncs, read-your-writes reads,
// duplicate (object, version) closes across sessions, and sessions dropped
// without sync. Runs under the TSan job via the test glob -- the point is
// that the daemon's single-flusher token and the two-flag ticket
// publication hold up under genuine parallelism, not just the simulated
// kind.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/session.hpp"
#include "util/bytes.hpp"

namespace {

using namespace provcloud::cloudprov;
namespace aws = provcloud::aws;
namespace pass = provcloud::pass;
namespace util = provcloud::util;

pass::FlushUnit file_unit(const std::string& object, std::uint32_t version,
                          const std::string& data) {
  pass::FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = pass::PnodeKind::kFile;
  u.data = util::make_shared_bytes(data);
  u.records = {pass::make_text_record("TYPE", "file"),
               pass::make_text_record("NAME", object)};
  return u;
}

constexpr int kThreads = 4;
constexpr int kSessionsPerThread = 3;
constexpr int kClosesPerSession = 8;

TEST(SessionConcurrentTest, ThreadsShareOneCommitDaemonSafely) {
  aws::CloudEnv env(91, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = std::make_unique<SdbBackend>(
      services, SdbBackendConfig{.batch_size = aws::kSdbMaxItemsPerBatch});

  auto worker = [&backend](int tid) {
    for (int s = 0; s < kSessionsPerThread; ++s) {
      auto session = backend->open_session(
          SessionConfig{.client_id = "client-" + std::to_string(tid),
                        .max_group = 4});
      std::vector<Ticket> tickets;
      for (int c = 0; c < kClosesPerSession; ++c) {
        const std::string mine = "t" + std::to_string(tid) + "/s" +
                                 std::to_string(s) + "/f" + std::to_string(c);
        const std::string payload = "payload-" + mine;
        tickets.push_back(session->submit(file_unit(mine, 1, payload)));

        // Read-your-writes from this thread: whether the close is still
        // pending (synthesized reply, no cloud calls) or a concurrent
        // flush already retired it (durable, strong consistency), the
        // session must hand back this session's write.
        const auto got = session->read(mine);
        EXPECT_TRUE(got.has_value()) << mine;
        if (got.has_value()) {
          EXPECT_EQ(got->version, 1u) << mine;
          ASSERT_NE(got->data, nullptr) << mine;
          EXPECT_EQ(*got->data, payload) << mine;
        }

        // Duplicate (object, version) across sessions: every thread
        // rewrites the shared object at the same version so groups keep
        // colliding on one item.
        tickets.push_back(
            session->submit(file_unit("shared/obj", c + 1, "winner-" + mine)));

        // Interleave syncs mid-stream, not just at the end.
        if (c % 3 == 2) EXPECT_TRUE(session->sync().has_value());
      }
      EXPECT_TRUE(session->sync().has_value());
      for (const Ticket& t : tickets) {
        EXPECT_TRUE(t.done());
        EXPECT_TRUE(t.ok());
      }
    }
  };

  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) threads.emplace_back(worker, tid);
  for (std::thread& t : threads) t.join();

  // Every private object is durable and verified.
  for (int tid = 0; tid < kThreads; ++tid)
    for (int s = 0; s < kSessionsPerThread; ++s)
      for (int c = 0; c < kClosesPerSession; ++c) {
        const std::string mine = "t" + std::to_string(tid) + "/s" +
                                 std::to_string(s) + "/f" + std::to_string(c);
        const auto got = backend->read(mine);
        ASSERT_TRUE(got.has_value()) << mine;
        EXPECT_TRUE(got->verified) << mine;
        EXPECT_EQ(*got->data, "payload-" + mine) << mine;
      }

  // The contested object settles on *some* submitted (version, payload)
  // pair -- replace semantics, no torn state. (Which thread's close lands
  // last is scheduling-dependent, so the exact version is not pinned.)
  const auto shared = backend->read("shared/obj");
  ASSERT_TRUE(shared.has_value());
  EXPECT_TRUE(shared->verified);
  EXPECT_GE(shared->version, 1u);
  EXPECT_LE(shared->version, static_cast<std::uint32_t>(kClosesPerSession));
  ASSERT_NE(shared->data, nullptr);
  EXPECT_EQ(shared->data->rfind("winner-", 0), 0u);
}

TEST(SessionConcurrentTest, DroppedSessionsDoNotPoisonConcurrentSyncs) {
  aws::CloudEnv env(92, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = std::make_unique<SdbBackend>(
      services, SdbBackendConfig{.batch_size = aws::kSdbMaxItemsPerBatch});

  auto worker = [&backend](int tid) {
    for (int s = 0; s < kSessionsPerThread; ++s) {
      auto session = backend->open_session(
          SessionConfig{.client_id = "client-" + std::to_string(tid),
                        .max_group = 4});
      std::vector<Ticket> tickets;
      for (int c = 0; c < 3; ++c)
        tickets.push_back(session->submit(file_unit(
            "drop/t" + std::to_string(tid) + "/s" + std::to_string(s) + "/f" +
                std::to_string(c),
            1, "x")));
      if ((tid + s) % 2 == 0) {
        // Poisoned close: the session dies without a durability barrier.
        // Its still-queued closes settle as kCrashed; closes a concurrent
        // flush already picked up may finish durably after the drop, so a
        // ticket is not necessarily done() the instant reset() returns --
        // but a settled failure must be the crash, nothing else.
        session.reset();
        for (const Ticket& t : tickets)
          if (t.done() && !t.ok())
            EXPECT_EQ(t.error().code, BackendErrorCode::kCrashed);
      } else {
        EXPECT_TRUE(session->sync().has_value());
        for (const Ticket& t : tickets) EXPECT_TRUE(t.ok());
      }
    }
  };

  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) threads.emplace_back(worker, tid);
  for (std::thread& t : threads) t.join();

  // Survivors' writes are all durable.
  for (int tid = 0; tid < kThreads; ++tid)
    for (int s = 0; s < kSessionsPerThread; ++s) {
      if ((tid + s) % 2 == 0) continue;
      for (int c = 0; c < 3; ++c) {
        const std::string object = "drop/t" + std::to_string(tid) + "/s" +
                                   std::to_string(s) + "/f" +
                                   std::to_string(c);
        const auto got = backend->read(object);
        ASSERT_TRUE(got.has_value()) << object;
        EXPECT_TRUE(got->verified) << object;
      }
    }
}

}  // namespace
