// The bounded scatter/gather executor: inline determinism at parallelism 1,
// full completion and exception propagation at parallelism N.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/executor.hpp"

namespace {

using provcloud::util::Executor;

TEST(ExecutorTest, SingleThreadRunsInlineInSubmissionOrder) {
  Executor ex(1);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i)
    tasks.push_back([&order, i] { order.push_back(i); });
  ex.run_all(std::move(tasks));
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ExecutorTest, ZeroParallelismClampsToOne) {
  Executor ex(0);
  EXPECT_EQ(ex.parallelism(), 1u);
  int ran = 0;
  ex.run_all({[&ran] { ++ran; }});
  EXPECT_EQ(ran, 1);
}

TEST(ExecutorTest, ParallelRunsEveryTaskExactlyOnce) {
  Executor ex(4);
  constexpr int kTasks = 100;
  std::vector<std::atomic<int>> counts(kTasks);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i)
    tasks.push_back([&counts, i] { ++counts[i]; });
  ex.run_all(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ExecutorTest, IndexedSlotsGatherDeterministicResults) {
  // The scatter idiom: tasks write into index-addressed slots, so gathered
  // values are identical at any parallelism.
  const auto run = [](std::size_t parallelism) {
    Executor ex(parallelism);
    std::vector<int> out(64, 0);
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 64; ++i)
      tasks.push_back([&out, i] { out[static_cast<std::size_t>(i)] = i * i; });
    ex.run_all(std::move(tasks));
    return out;
  };
  EXPECT_EQ(run(1), run(4));
  EXPECT_EQ(run(1), run(8));
}

TEST(ExecutorTest, BoundedConcurrency) {
  constexpr std::size_t kParallelism = 3;
  Executor ex(kParallelism);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 40; ++i) {
    tasks.push_back([&running, &peak] {
      const int now = ++running;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      --running;
    });
  }
  ex.run_all(std::move(tasks));
  EXPECT_LE(peak.load(), static_cast<int>(kParallelism));
  EXPECT_GE(peak.load(), 1);
}

TEST(ExecutorTest, FirstExceptionPropagatesAfterBatchCompletes) {
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    Executor ex(parallelism);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back([&ran, i] {
        ++ran;
        if (i == 3) throw std::runtime_error("task 3 failed");
      });
    }
    EXPECT_THROW(ex.run_all(std::move(tasks)), std::runtime_error)
        << "parallelism " << parallelism;
    if (parallelism > 1) EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ExecutorTest, ReusableAcrossBatches) {
  Executor ex(4);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 5; ++i) tasks.push_back([&total] { ++total; });
    ex.run_all(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(ExecutorTest, EmptyBatchIsANoOp) {
  Executor ex(4);
  ex.run_all({});
}

}  // namespace
