// PassObserver: versioning rules, causal flush ordering, record content.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pass/observer.hpp"

namespace {

using namespace provcloud::pass;

/// Collects flush units in arrival order.
struct Collector {
  std::vector<FlushUnit> units;
  FlushSink sink() {
    return [this](const FlushUnit& u) { units.push_back(u); };
  }
  const FlushUnit* find(const std::string& object, std::uint32_t version) const {
    for (const FlushUnit& u : units)
      if (u.object == object && u.version == version) return &u;
    return nullptr;
  }
  std::size_t index_of(const std::string& object, std::uint32_t version) const {
    for (std::size_t i = 0; i < units.size(); ++i)
      if (units[i].object == object && units[i].version == version) return i;
    return SIZE_MAX;
  }
  bool has_record(const FlushUnit& u, const ProvenanceRecord& r) const {
    for (const auto& rec : u.records)
      if (rec == r) return true;
    return false;
  }
};

TEST(ObserverTest, SimpleWriteCloseFlushesFileWithProcessAncestor) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/writer", {"writer"}, {{"HOME", "/root"}}));
  obs.apply(ev_write(1, "out", "hello"));
  obs.apply(ev_close(1, "out"));

  // Two units: the process (ancestor) then the file.
  const FlushUnit* proc = c.find("proc/1/1", 1);
  const FlushUnit* file = c.find("out", 1);
  ASSERT_NE(proc, nullptr);
  ASSERT_NE(file, nullptr);
  EXPECT_LT(c.index_of("proc/1/1", 1), c.index_of("out", 1))
      << "ancestors must flush first";
  EXPECT_EQ(file->kind, PnodeKind::kFile);
  ASSERT_NE(file->data, nullptr);
  EXPECT_EQ(*file->data, "hello");
  EXPECT_TRUE(c.has_record(*file, make_xref_record("INPUT", {"proc/1/1", 1})));
  EXPECT_EQ(proc->kind, PnodeKind::kProcess);
  EXPECT_EQ(proc->data, nullptr);
  EXPECT_TRUE(c.has_record(*proc, make_text_record("TYPE", "process")));
  EXPECT_TRUE(c.has_record(*proc, make_text_record("NAME", "/bin/writer")));
}

TEST(ObserverTest, ExecutableIsProcessAncestor) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/usr/bin/gcc"));
  obs.apply(ev_write(1, "a.o", "obj"));
  obs.apply(ev_close(1, "a.o"));
  const FlushUnit* proc = c.find("proc/1/1", 1);
  ASSERT_NE(proc, nullptr);
  EXPECT_TRUE(c.has_record(*proc, make_xref_record("INPUT", {"/usr/bin/gcc", 1})));
  // The executable itself flushed (it is an ancestor).
  EXPECT_NE(c.find("/usr/bin/gcc", 1), nullptr);
  EXPECT_LT(c.index_of("/usr/bin/gcc", 1), c.index_of("proc/1/1", 1));
}

TEST(ObserverTest, ReadCreatesProcessDependency) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/p"));
  obs.apply(ev_write(1, "in", "data"));
  obs.apply(ev_close(1, "in"));
  obs.apply(ev_exec(2, "/bin/q"));
  obs.apply(ev_read(2, "in"));
  obs.apply(ev_write(2, "out", "derived"));
  obs.apply(ev_close(2, "out"));
  const FlushUnit* q = c.find("proc/2/1", 1);
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(c.has_record(*q, make_xref_record("INPUT", {"in", 1})));
}

TEST(ObserverTest, DuplicateReadsRecordedOnce) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/p"));
  obs.apply(ev_write(1, "in", "x"));
  obs.apply(ev_close(1, "in"));
  obs.apply(ev_exec(2, "/bin/q"));
  for (int i = 0; i < 5; ++i) obs.apply(ev_read(2, "in"));
  obs.apply(ev_write(2, "out", "y"));
  obs.apply(ev_close(2, "out"));
  const FlushUnit* q = c.find("proc/2/1", 1);
  ASSERT_NE(q, nullptr);
  int input_count = 0;
  for (const auto& r : q->records)
    if (r == make_xref_record("INPUT", {"in", 1})) ++input_count;
  EXPECT_EQ(input_count, 1);
}

TEST(ObserverTest, WriteAfterReadBumpsFileVersion) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/p"));
  obs.apply(ev_write(1, "f", "v1"));
  obs.apply(ev_read(2, "f"));         // someone reads the current version
  obs.apply(ev_write(1, "f", "+v2")); // write-after-read: new version
  obs.apply(ev_close(1, "f"));
  const FlushUnit* v2 = c.find("f", 2);
  ASSERT_NE(v2, nullptr);
  EXPECT_TRUE(c.has_record(*v2, make_xref_record("PREV", {"f", 1})));
  // Version 1 was flushed first (it is an ancestor via PREV) with its
  // snapshot content.
  const FlushUnit* v1 = c.find("f", 1);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(*v1->data, "v1");
  EXPECT_EQ(*v2->data, "v1+v2");
  EXPECT_LT(c.index_of("f", 1), c.index_of("f", 2));
}

TEST(ObserverTest, WriteByDifferentProcessBumpsVersion) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "f", "a"));
  obs.apply(ev_write(2, "f", "b"));
  obs.apply(ev_close(2, "f"));
  EXPECT_NE(c.find("f", 2), nullptr);
}

TEST(ObserverTest, WriteAfterFlushBumpsVersion) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "f", "a"));
  obs.apply(ev_close(1, "f"));  // flush v1
  obs.apply(ev_write(1, "f", "b"));
  obs.apply(ev_close(1, "f"));  // must be v2, not a mutation of flushed v1
  EXPECT_NE(c.find("f", 1), nullptr);
  EXPECT_NE(c.find("f", 2), nullptr);
}

TEST(ObserverTest, SameProcessRepeatedWritesSameVersion) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "f", "a"));
  obs.apply(ev_write(1, "f", "b"));
  obs.apply(ev_write(1, "f", "c"));
  obs.apply(ev_close(1, "f"));
  EXPECT_NE(c.find("f", 1), nullptr);
  EXPECT_EQ(c.find("f", 2), nullptr);
  EXPECT_EQ(*c.find("f", 1)->data, "abc");
}

TEST(ObserverTest, ReadAfterWriteBumpsProcessVersion) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/p"));
  obs.apply(ev_write(1, "in0", "x"));
  obs.apply(ev_close(1, "in0"));
  obs.apply(ev_write(1, "out1", "y"));  // process wrote
  obs.apply(ev_read(1, "in0"));         // read-after-write: proc version 2
  obs.apply(ev_write(1, "out2", "z"));
  obs.apply(ev_close(1, "out2"));
  const FlushUnit* out2 = c.find("out2", 1);
  ASSERT_NE(out2, nullptr);
  EXPECT_TRUE(c.has_record(*out2, make_xref_record("INPUT", {"proc/1/1", 2})));
  const FlushUnit* proc2 = c.find("proc/1/1", 2);
  ASSERT_NE(proc2, nullptr);
  EXPECT_TRUE(c.has_record(*proc2, make_xref_record("PREV", {"proc/1/1", 1})));
  EXPECT_TRUE(c.has_record(*proc2, make_xref_record("INPUT", {"in0", 1})));
}

TEST(ObserverTest, CyclicWorkflowTerminatesViaVersioning) {
  // P writes F, reads F back, writes F again: without versioning this is a
  // cycle; with PASS versioning it is a chain F:1 -> P:2 -> F:2.
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/selfloop"));
  obs.apply(ev_write(1, "f", "a"));
  obs.apply(ev_read(1, "f"));
  obs.apply(ev_write(1, "f", "b"));
  obs.apply(ev_close(1, "f"));
  ASSERT_NE(c.find("f", 2), nullptr);
  const FlushUnit* f2 = c.find("f", 2);
  EXPECT_TRUE(c.has_record(*f2, make_xref_record("INPUT", {"proc/1/1", 2})));
  const FlushUnit* p2 = c.find("proc/1/1", 2);
  ASSERT_NE(p2, nullptr);
  EXPECT_TRUE(c.has_record(*p2, make_xref_record("INPUT", {"f", 1})));
}

TEST(ObserverTest, ForkLinksChildToParent) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/make"));
  obs.apply(ev_fork(1, 2));
  obs.apply(ev_write(2, "out", "x"));
  obs.apply(ev_close(2, "out"));
  const FlushUnit* child = c.find("proc/2/0", 1);
  ASSERT_NE(child, nullptr);
  EXPECT_TRUE(
      c.has_record(*child, make_xref_record("FORKPARENT", {"proc/1/1", 1})));
  // The parent flushed as an ancestor.
  EXPECT_NE(c.find("proc/1/1", 1), nullptr);
}

TEST(ObserverTest, PipeConnectsProcesses) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/producer"));
  obs.apply(ev_exec(2, "/bin/consumer"));
  obs.apply(ev_pipe(1, 77));
  obs.apply(ev_pipe_write(1, 77));
  obs.apply(ev_pipe_read(2, 77));
  obs.apply(ev_write(2, "out", "x"));
  obs.apply(ev_close(2, "out"));
  const FlushUnit* consumer = c.find("proc/2/1", 1);
  ASSERT_NE(consumer, nullptr);
  EXPECT_TRUE(c.has_record(*consumer, make_xref_record("INPUT", {"pipe/77", 1})));
  const FlushUnit* pipe = c.find("pipe/77", 1);
  ASSERT_NE(pipe, nullptr);
  EXPECT_EQ(pipe->kind, PnodeKind::kPipe);
  EXPECT_TRUE(c.has_record(*pipe, make_xref_record("INPUT", {"proc/1/1", 1})));
}

TEST(ObserverTest, EnvBecomesOneRecord) {
  Collector c;
  PassObserver obs(c.sink());
  std::map<std::string, std::string> env = {{"A", "1"}, {"B", "2"}};
  obs.apply(ev_exec(1, "/bin/p", {"p", "arg"}, env));
  obs.apply(ev_write(1, "f", "x"));
  obs.apply(ev_close(1, "f"));
  const FlushUnit* proc = c.find("proc/1/1", 1);
  ASSERT_NE(proc, nullptr);
  EXPECT_TRUE(c.has_record(*proc, make_text_record("ENV", "A=1;B=2")));
  EXPECT_TRUE(c.has_record(*proc, make_text_record("ARGV", "p arg")));
}

TEST(ObserverTest, ReexecCreatesNewProcessObject) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/first"));
  obs.apply(ev_exec(1, "/bin/second"));
  obs.apply(ev_write(1, "f", "x"));
  obs.apply(ev_close(1, "f"));
  const FlushUnit* second = c.find("proc/1/2", 1);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(c.has_record(*second, make_text_record("NAME", "/bin/second")));
  EXPECT_TRUE(c.has_record(*second, make_xref_record("PREV", {"proc/1/1", 1})));
}

TEST(ObserverTest, CloseWithoutDirtyDoesNotReflush) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "f", "x"));
  obs.apply(ev_close(1, "f"));
  const std::size_t after_first = c.units.size();
  obs.apply(ev_close(1, "f"));
  obs.apply(ev_close(1, "f"));
  EXPECT_EQ(c.units.size(), after_first);
}

TEST(ObserverTest, CloseOfReadOnlyFileDoesNotFlushReader) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "f", "x"));
  obs.apply(ev_close(1, "f"));
  const std::size_t after_write = c.units.size();
  obs.apply(ev_read(2, "f"));
  obs.apply(ev_close(2, "f"));  // reader closes: file unchanged
  EXPECT_EQ(c.units.size(), after_write);
}

TEST(ObserverTest, FinishFlushesDirtyFiles) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "never-closed", "x"));
  EXPECT_EQ(c.find("never-closed", 1), nullptr);
  obs.finish();
  EXPECT_NE(c.find("never-closed", 1), nullptr);
}

TEST(ObserverTest, TruncateClearsContentSameVersion) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "f", "oldcontent"));
  obs.apply(ev_truncate(1, "f"));
  obs.apply(ev_write(1, "f", "new"));
  obs.apply(ev_close(1, "f"));
  const FlushUnit* v1 = c.find("f", 1);
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(*v1->data, "new");
  EXPECT_EQ(c.find("f", 2), nullptr);  // same process, no reads: no bump
}

TEST(ObserverTest, TruncateAfterFlushBumpsVersion) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "f", "v1data"));
  obs.apply(ev_close(1, "f"));
  obs.apply(ev_truncate(2, "f"));  // different process rewrites from scratch
  obs.apply(ev_write(2, "f", "v2"));
  obs.apply(ev_close(2, "f"));
  ASSERT_NE(c.find("f", 2), nullptr);
  EXPECT_EQ(*c.find("f", 2)->data, "v2");
  EXPECT_EQ(*c.find("f", 1)->data, "v1data");
}

TEST(ObserverTest, TruncateRecordsWriterDependency) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/truncator"));
  obs.apply(ev_truncate(1, "f"));
  obs.apply(ev_close(1, "f"));
  const FlushUnit* v1 = c.find("f", 1);
  ASSERT_NE(v1, nullptr);
  EXPECT_TRUE(c.has_record(*v1, make_xref_record("INPUT", {"proc/1/1", 1})));
  EXPECT_TRUE(v1->data->empty());
}

TEST(ObserverTest, UnlinkForgetsObject) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "f", "x"));
  obs.apply(ev_unlink(1, "f"));
  obs.finish();
  EXPECT_EQ(c.find("f", 1), nullptr);
}

TEST(ObserverTest, StatsAccumulate) {
  Collector c;
  PassObserver obs(c.sink());
  std::map<std::string, std::string> big_env;
  big_env["HUGE"] = std::string(1500, 'e');  // one record > 1 KB
  obs.apply(ev_exec(1, "/bin/p", {"p"}, big_env));
  obs.apply(ev_write(1, "f", "12345"));
  obs.apply(ev_close(1, "f"));
  const ObserverStats& s = obs.stats();
  EXPECT_EQ(s.events, 3u);
  // /bin/p, the pre-exec process stub proc/1/0, proc/1/1, f.
  EXPECT_EQ(s.flush_units, 4u);
  EXPECT_EQ(s.file_units, 2u);   // /bin/p (the executable) and f
  EXPECT_EQ(s.data_bytes_flushed, 5u);  // /bin/p has no cached content
  EXPECT_EQ(s.large_records, 1u);
  EXPECT_GT(s.provenance_bytes, 1500u);
  EXPECT_GT(s.records_emitted, 4u);
}

TEST(ObserverTest, GroundTruthMatchesUnits) {
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_write(1, "f", "data"));
  obs.apply(ev_close(1, "f"));
  const auto& truth = obs.ground_truth();
  auto it = truth.find({"f", 1});
  ASSERT_NE(it, truth.end());
  EXPECT_EQ(*it->second.data, "data");
}

TEST(ObserverTest, CausalOrderHoldsAcrossDeepChain) {
  Collector c;
  PassObserver obs(c.sink());
  // Chain: a -> p1 -> b -> p2 -> c.
  obs.apply(ev_exec(1, "/bin/p1"));
  obs.apply(ev_write(1, "a", "1"));
  obs.apply(ev_close(1, "a"));
  obs.apply(ev_exec(2, "/bin/p2"));
  obs.apply(ev_read(2, "a"));
  obs.apply(ev_write(2, "b", "2"));
  obs.apply(ev_close(2, "b"));
  obs.apply(ev_exec(3, "/bin/p3"));
  obs.apply(ev_read(3, "b"));
  obs.apply(ev_write(3, "c", "3"));
  obs.apply(ev_close(3, "c"));

  // Every xref in every unit must point to an already-flushed unit.
  std::set<std::pair<std::string, std::uint32_t>> flushed;
  for (const FlushUnit& u : c.units) {
    for (const auto& r : u.records) {
      if (!r.is_xref()) continue;
      EXPECT_TRUE(flushed.count({r.xref().object, r.xref().version}) > 0)
          << u.object << ":" << u.version << " references "
          << r.xref().to_string() << " before it was flushed";
    }
    flushed.insert({u.object, u.version});
  }
}

}  // namespace
