// The per-client virtual-timeline elapsed-time model: sequential charges
// merge by sum, parallel scatter/gather merges by critical-path max, billing
// is unchanged, and replica propagation never fires mid-scatter.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "aws/common/env.hpp"
#include "aws/s3/s3.hpp"
#include "cloudprov/domain_topology.hpp"
#include "sim/latency_ledger.hpp"
#include "util/require.hpp"

namespace {

using namespace provcloud;
using namespace provcloud::aws;
using namespace provcloud::cloudprov;
namespace sim = provcloud::sim;

/// Degenerate latency model: every request costs exactly 10 ms regardless
/// of RNG draw order, so elapsed-time assertions are exact under any
/// thread interleaving.
constexpr sim::SimTime kFixedLatency = 10 * sim::kMillisecond;

void use_fixed_latency(CloudEnv& env) {
  sim::LatencyConfig config;
  config.request_overhead_min = kFixedLatency;
  config.request_overhead_max = kFixedLatency;
  config.upload_bytes_per_sec = ~0ull;
  config.download_bytes_per_sec = ~0ull;
  env.set_latency_model(sim::LatencyModel(config));
}

// --- the ledger by itself ---

TEST(LatencyLedgerTest, SequentialChargesSum) {
  sim::LatencyLedger ledger;
  EXPECT_EQ(ledger.elapsed(), 0u);
  ledger.charge(5);
  ledger.charge(7);
  EXPECT_EQ(ledger.elapsed(), 12u);
}

TEST(LatencyLedgerTest, BranchIsolatesChargesFromTheRoot) {
  sim::LatencyLedger ledger;
  ledger.charge(5);
  {
    sim::LatencyLedger::Branch branch(ledger);
    EXPECT_EQ(ledger.open_branches(), 1);
    ledger.charge(7);            // lands on the branch...
    EXPECT_EQ(branch.elapsed(), 7u);
    EXPECT_EQ(ledger.elapsed(), 7u);  // ...which is now the active timeline
  }
  EXPECT_EQ(ledger.open_branches(), 0);
  EXPECT_EQ(ledger.elapsed(), 5u);  // root untouched by the branch
}

TEST(LatencyLedgerTest, CriticalPathMergeTakesTheMax) {
  sim::LatencyLedger ledger;
  ledger.charge(5);
  ledger.merge_critical_path({7, 3, 6});
  EXPECT_EQ(ledger.elapsed(), 12u);  // 5 + max(7,3,6)
}

TEST(LatencyLedgerTest, NestedBranchesStack) {
  sim::LatencyLedger ledger;
  sim::LatencyLedger::Branch outer(ledger);
  ledger.charge(2);
  sim::SimTime inner_elapsed = 0;
  {
    sim::LatencyLedger::Branch inner(ledger);
    ledger.charge(9);
    inner_elapsed = inner.elapsed();
  }
  // The gather happens after the branch closes: the critical path lands on
  // the enclosing (outer) timeline.
  ledger.merge_critical_path(std::vector<sim::SimTime>{inner_elapsed});
  EXPECT_EQ(outer.elapsed(), 11u);
}

TEST(LatencyLedgerTest, ServiceBreakdownSumsToElapsed) {
  sim::LatencyLedger ledger;
  ledger.charge(5, "s3");
  ledger.charge(7, "sdb");
  ledger.charge(4, "s3");
  ledger.charge(2);  // no service: counts in elapsed only
  EXPECT_EQ(ledger.elapsed(), 18u);
  const auto by_service = ledger.elapsed_by_service();
  ASSERT_EQ(by_service.size(), 2u);
  EXPECT_EQ(by_service.at("s3"), 9u);
  EXPECT_EQ(by_service.at("sdb"), 7u);
}

TEST(LatencyLedgerTest, CriticalPathMergeCarriesTheSlowestBranchBreakdown) {
  sim::LatencyLedger ledger;
  ledger.charge(5, "s3");
  sim::LatencyLedger::Timeline fast, slow;
  {
    sim::LatencyLedger::ScopedTimeline bind(ledger, fast);
    ledger.charge(3, "s3");
  }
  {
    sim::LatencyLedger::ScopedTimeline bind(ledger, slow);
    ledger.charge(6, "sdb");
    ledger.charge(2, "sqs");
  }
  ledger.merge_critical_path(
      std::vector<const sim::LatencyLedger::Timeline*>{&fast, &slow});
  // The caller waited for the slowest leg: its total *and* its per-service
  // split land on the root; the fast leg's s3 time was hidden by overlap.
  EXPECT_EQ(ledger.elapsed(), 13u);  // 5 + (6 + 2)
  const auto by_service = ledger.elapsed_by_service();
  EXPECT_EQ(by_service.at("s3"), 5u);
  EXPECT_EQ(by_service.at("sdb"), 6u);
  EXPECT_EQ(by_service.at("sqs"), 2u);
  sim::SimTime split_sum = 0;
  for (const auto& [service, t] : by_service) split_sum += t;
  EXPECT_EQ(split_sum, ledger.elapsed());
}

TEST(LatencyLedgerTest, ScopedTimelineAccumulatesAcrossScopes) {
  // A session binds the same ticket timeline around several disjoint
  // phases of a group commit; the charges must accumulate.
  sim::LatencyLedger ledger;
  sim::LatencyLedger::Timeline ticket;
  {
    sim::LatencyLedger::ScopedTimeline bind(ledger, ticket);
    ledger.charge(4, "s3");
  }
  ledger.charge(100, "sdb");  // between scopes: lands on the root
  {
    sim::LatencyLedger::ScopedTimeline bind(ledger, ticket);
    ledger.charge(6, "s3");
  }
  EXPECT_EQ(ticket.elapsed, 10u);
  EXPECT_EQ(ticket.by_service.at("s3"), 10u);
  EXPECT_EQ(ledger.elapsed(), 100u);
  // Unlike Branch, a ScopedTimeline opens no scatter: the clock guard must
  // not treat a bound ticket timeline as an in-flight fan-out.
  sim::LatencyLedger::ScopedTimeline bind(ledger, ticket);
  EXPECT_EQ(ledger.open_branches(), 0);
}

TEST(LatencyLedgerTest, EachClientThreadOwnsItsTimeline) {
  sim::LatencyLedger ledger;
  sim::SimTime a = 0, b = 0;
  std::thread ta([&] {
    ledger.charge(100);
    a = ledger.elapsed();
  });
  std::thread tb([&] {
    ledger.charge(40);
    ledger.charge(2);
    b = ledger.elapsed();
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a, 100u);
  EXPECT_EQ(b, 42u);
  EXPECT_EQ(ledger.elapsed(), 0u);  // the driver thread charged nothing
}

// --- the ledger through CloudEnv and DomainTopology ---

/// Charge `calls` fixed-latency requests per task through `topology` and
/// return the elapsed-time delta the fan-out added to the caller's timeline.
sim::SimTime fan_out_elapsed(CloudEnv& env, const DomainTopology& topology,
                             const std::vector<int>& calls_per_task) {
  const sim::SimTime before = env.elapsed_time();
  std::vector<std::function<void()>> tasks;
  for (const int calls : calls_per_task)
    tasks.push_back([&env, calls] {
      for (int i = 0; i < calls; ++i) env.charge("s3", "GET", 0, 0);
    });
  topology.run_tasks(std::move(tasks));
  return env.elapsed_time() - before;
}

TEST(LatencyLedgerTopologyTest, SequentialFanOutSumsAndParallelTakesMax) {
  const std::vector<int> calls{3, 1, 4, 2};
  CloudEnv seq_env(9);
  use_fixed_latency(seq_env);
  DomainTopology seq(TopologyConfig{.shard_count = 4,
                                    .parallelism = 1,
                                    .ledger = &seq_env.latency_ledger()});
  EXPECT_EQ(fan_out_elapsed(seq_env, seq, calls),
            (3 + 1 + 4 + 2) * kFixedLatency);

  CloudEnv par_env(9);
  use_fixed_latency(par_env);
  DomainTopology par(TopologyConfig{.shard_count = 4,
                                    .parallelism = 4,
                                    .ledger = &par_env.latency_ledger()});
  EXPECT_EQ(fan_out_elapsed(par_env, par, calls), 4 * kFixedLatency);
}

TEST(LatencyLedgerTopologyTest, CriticalPathNeverExceedsSequential) {
  for (const std::size_t parallelism : {std::size_t{2}, std::size_t{8}}) {
    const std::vector<int> calls{5, 5, 1, 7, 2, 2, 9, 1};
    CloudEnv seq_env(10);
    use_fixed_latency(seq_env);
    DomainTopology seq(TopologyConfig{.shard_count = 8,
                                      .parallelism = 1,
                                      .ledger = &seq_env.latency_ledger()});
    CloudEnv par_env(10);
    use_fixed_latency(par_env);
    DomainTopology par(TopologyConfig{.shard_count = 8,
                                      .parallelism = parallelism,
                                      .ledger = &par_env.latency_ledger()});
    const sim::SimTime sequential = fan_out_elapsed(seq_env, seq, calls);
    const sim::SimTime critical = fan_out_elapsed(par_env, par, calls);
    EXPECT_LE(critical, sequential);
    EXPECT_EQ(critical, 9 * kFixedLatency);  // the slowest branch
  }
}

TEST(LatencyLedgerTopologyTest, BillingIdenticalAtAnyParallelism) {
  const std::vector<int> calls{3, 1, 4, 2};
  const auto run = [&](std::size_t parallelism) {
    CloudEnv env(11);
    use_fixed_latency(env);
    DomainTopology topology(TopologyConfig{
        .shard_count = 4, .parallelism = parallelism,
        .ledger = &env.latency_ledger()});
    fan_out_elapsed(env, topology, calls);
    return env.meter().snapshot();
  };
  const sim::MeterSnapshot seq = run(1);
  const sim::MeterSnapshot par = run(4);
  EXPECT_EQ(seq.calls("s3", "GET"), par.calls("s3", "GET"));
  EXPECT_EQ(seq.total_calls(), par.total_calls());
}

// --- scatter safety: the mid-scatter propagation hazard is closed ---

TEST(ScatterSafetyTest, PropagationNeverFiresMidScatter) {
  ConsistencyConfig c;
  c.replicas = 3;
  c.propagation_min = 50 * sim::kMillisecond;
  c.propagation_max = 500 * sim::kMillisecond;
  CloudEnv env(12, c);
  use_fixed_latency(env);
  S3Service s3(env);
  ASSERT_TRUE(s3.put("bucket", "key", "value").has_value());
  const std::size_t pending = env.clock().pending_events();
  ASSERT_GT(pending, 0u);
  const sim::SimTime now_before = env.clock().now();

  DomainTopology topology(TopologyConfig{
      .shard_count = 4, .parallelism = 4, .ledger = &env.latency_ledger()});
  std::atomic<bool> clock_moved_mid_scatter{false};
  std::vector<std::function<void()>> tasks;
  for (int t = 0; t < 4; ++t)
    tasks.push_back([&env, &s3, &clock_moved_mid_scatter] {
      for (int i = 0; i < 16; ++i) {
        s3.get("bucket", "key");  // reads the replicas the events mutate
        // The scheduled propagation must still be pending: no charge or
        // read may fire it from inside the scatter.
        if (env.clock().now() != 0) clock_moved_mid_scatter = true;
      }
    });
  topology.run_tasks(std::move(tasks));
  EXPECT_FALSE(clock_moved_mid_scatter);

  EXPECT_EQ(env.clock().pending_events(), pending);
  EXPECT_EQ(env.clock().now(), now_before);
  env.clock().drain();  // the driver's sync point fires them all
  EXPECT_EQ(env.clock().pending_events(), 0u);
}

TEST(ScatterSafetyTest, ClockAdvanceInsideScatterIsRejected) {
  CloudEnv env(13);
  DomainTopology topology(TopologyConfig{
      .shard_count = 2, .parallelism = 2, .ledger = &env.latency_ledger()});
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&env] { env.clock().advance_by(sim::kSecond); });
  tasks.push_back([] {});
  EXPECT_THROW(topology.run_tasks(std::move(tasks)), util::LogicError);
  // The guard rejected the advance before firing anything.
  EXPECT_EQ(env.clock().now(), 0u);
  // Outside the scatter the driver advances freely.
  env.clock().advance_by(sim::kSecond);
  EXPECT_EQ(env.clock().now(), sim::kSecond);
}

}  // namespace
