#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "util/expected.hpp"
#include "util/require.hpp"

namespace {

using provcloud::util::Expected;
using provcloud::util::Unexpected;

TEST(ExpectedTest, ValueState) {
  Expected<int, std::string> e(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(e.value_or(0), 42);
}

TEST(ExpectedTest, ErrorState) {
  Expected<int, std::string> e = Unexpected(std::string("boom"));
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), "boom");
  EXPECT_EQ(e.value_or(7), 7);
}

TEST(ExpectedTest, LiteralErrorBecomesString) {
  Expected<int, std::string> e = Unexpected("boom");
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), "boom");
}

TEST(ExpectedTest, AccessingWrongStateThrows) {
  Expected<int, std::string> ok(1);
  EXPECT_THROW(ok.error(), provcloud::util::LogicError);
  Expected<int, std::string> bad = Unexpected(std::string("x"));
  EXPECT_THROW(bad.value(), provcloud::util::LogicError);
}

TEST(ExpectedTest, MoveOnlyValue) {
  Expected<std::unique_ptr<int>, std::string> e(std::make_unique<int>(5));
  ASSERT_TRUE(e.has_value());
  std::unique_ptr<int> p = std::move(e).value();
  EXPECT_EQ(*p, 5);
}

TEST(ExpectedTest, ArrowOperator) {
  Expected<std::string, int> e(std::string("hello"));
  EXPECT_EQ(e->size(), 5u);
}

TEST(ExpectedVoidTest, Success) {
  Expected<void, std::string> e;
  EXPECT_TRUE(e.has_value());
  EXPECT_TRUE(static_cast<bool>(e));
}

TEST(ExpectedVoidTest, Error) {
  Expected<void, std::string> e = Unexpected(std::string("fail"));
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.error(), "fail");
}

TEST(RequireTest, ThrowsWithContext) {
  try {
    PROVCLOUD_REQUIRE_MSG(false, "details here");
    FAIL() << "should have thrown";
  } catch (const provcloud::util::LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("details here"), std::string::npos);
  }
}

}  // namespace
