#include <gtest/gtest.h>

#include "sim/metering.hpp"

namespace {

using provcloud::sim::Meter;
using provcloud::sim::MeterSnapshot;

TEST(MeterTest, RecordsCallsAndBytes) {
  Meter m;
  m.record("s3", "PUT", 100, 0);
  m.record("s3", "PUT", 50, 0);
  m.record("s3", "GET", 0, 70);
  const MeterSnapshot s = m.snapshot();
  EXPECT_EQ(s.calls("s3", "PUT"), 2u);
  EXPECT_EQ(s.calls("s3", "GET"), 1u);
  EXPECT_EQ(s.calls("s3"), 3u);
  EXPECT_EQ(s.bytes_in("s3"), 150u);
  EXPECT_EQ(s.bytes_out("s3"), 70u);
}

TEST(MeterTest, ServicesAreIndependent) {
  Meter m;
  m.record("s3", "PUT", 1, 0);
  m.record("sdb", "PutAttributes", 2, 0);
  const MeterSnapshot s = m.snapshot();
  EXPECT_EQ(s.calls("s3"), 1u);
  EXPECT_EQ(s.calls("sdb"), 1u);
  EXPECT_EQ(s.calls("sqs"), 0u);
  EXPECT_EQ(s.total_calls(), 2u);
}

TEST(MeterTest, StorageIsAGauge) {
  Meter m;
  m.set_storage("s3", 1000);
  m.set_storage("s3", 400);
  EXPECT_EQ(m.snapshot().storage_bytes("s3"), 400u);
  EXPECT_EQ(m.snapshot().storage_bytes("sdb"), 0u);
}

TEST(MeterTest, DiffSubtractsFlows) {
  Meter m;
  m.record("s3", "PUT", 100, 0);
  const MeterSnapshot before = m.snapshot();
  m.record("s3", "PUT", 60, 0);
  m.record("s3", "GET", 0, 30);
  const MeterSnapshot diff = m.snapshot().diff(before);
  EXPECT_EQ(diff.calls("s3", "PUT"), 1u);
  EXPECT_EQ(diff.bytes_in("s3", "PUT"), 60u);
  EXPECT_EQ(diff.calls("s3", "GET"), 1u);
}

TEST(MeterTest, DiffKeepsStorageLevel) {
  Meter m;
  m.set_storage("s3", 100);
  const MeterSnapshot before = m.snapshot();
  m.set_storage("s3", 250);
  EXPECT_EQ(m.snapshot().diff(before).storage_bytes("s3"), 250u);
}

TEST(MeterTest, DiffDropsUnchangedCounters) {
  Meter m;
  m.record("s3", "PUT", 1, 0);
  const MeterSnapshot before = m.snapshot();
  m.record("sqs", "SendMessage", 5, 0);
  const MeterSnapshot diff = m.snapshot().diff(before);
  EXPECT_EQ(diff.calls("s3"), 0u);
  EXPECT_EQ(diff.calls("sqs"), 1u);
  EXPECT_EQ(diff.keys().size(), 1u);
}

TEST(MeterTest, ResetClears) {
  Meter m;
  m.record("s3", "PUT", 1, 0);
  m.set_storage("s3", 9);
  m.reset();
  EXPECT_EQ(m.snapshot().total_calls(), 0u);
  EXPECT_EQ(m.snapshot().storage_bytes("s3"), 0u);
}

TEST(MeterTest, DetailBucketsPerPartition) {
  Meter m;
  m.record("sdb", "PutAttributes", 10, 0, "provenance-0");
  m.record("sdb", "PutAttributes", 10, 0, "provenance-0");
  m.record("sdb", "GetAttributes", 0, 5, "provenance-1");
  m.record("sdb", "ListDomains", 0, 0);  // no partition: counters only
  const MeterSnapshot snap = m.snapshot();
  EXPECT_EQ(snap.calls("sdb"), 4u);  // billing view unchanged
  EXPECT_EQ(snap.detail_calls("sdb", "provenance-0"), 2u);
  EXPECT_EQ(snap.detail_calls("sdb", "provenance-1"), 1u);
  EXPECT_EQ(snap.detail_calls("sdb", "provenance-9"), 0u);
  const std::vector<std::string> details = snap.details("sdb");
  ASSERT_EQ(details.size(), 2u);
  EXPECT_EQ(details[0], "provenance-0");
  EXPECT_EQ(details[1], "provenance-1");
}

TEST(MeterTest, DetailDiffAndReset) {
  Meter m;
  m.record("sdb", "PutAttributes", 1, 0, "d0");
  const MeterSnapshot before = m.snapshot();
  m.record("sdb", "PutAttributes", 1, 0, "d1");
  const MeterSnapshot diff = m.snapshot().diff(before);
  EXPECT_EQ(diff.detail_calls("sdb", "d0"), 0u);
  EXPECT_EQ(diff.detail_calls("sdb", "d1"), 1u);
  m.reset();
  EXPECT_TRUE(m.snapshot().details("sdb").empty());
}

}  // namespace
