// WAL transaction records: codec round trips, 8 KB chunking, completeness.
#include <gtest/gtest.h>

#include "cloudprov/txn.hpp"
#include "util/rng.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;

FlushUnit sample_unit(std::size_t n_records, std::size_t record_bytes) {
  FlushUnit unit;
  unit.object = "data/out;with=hostile|chars";
  unit.version = 3;
  unit.kind = PnodeKind::kFile;
  unit.data = provcloud::util::make_shared_bytes(std::string("payload"));
  for (std::size_t i = 0; i < n_records; ++i)
    unit.records.push_back(make_text_record(
        "ENV" + std::to_string(i), std::string(record_bytes, 'e')));
  return unit;
}

TEST(WalCodecTest, BeginRoundTrip) {
  WalRecord r;
  r.kind = WalRecord::Kind::kBegin;
  r.txid = "tx-42";
  r.record_count = 7;
  auto back = decode_wal_record(encode_wal_record(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, WalRecord::Kind::kBegin);
  EXPECT_EQ(back->txid, "tx-42");
  EXPECT_EQ(back->record_count, 7u);
}

TEST(WalCodecTest, DataRoundTrip) {
  WalRecord r;
  r.kind = WalRecord::Kind::kData;
  r.txid = "tx-1";
  r.temp_key = ".tmp/tx-1";
  r.object = "weird;name=with,specials";
  r.version = 9;
  r.nonce = "9";
  r.pnode_kind = PnodeKind::kProcess;
  auto back = decode_wal_record(encode_wal_record(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, WalRecord::Kind::kData);
  EXPECT_EQ(back->temp_key, ".tmp/tx-1");
  EXPECT_EQ(back->object, "weird;name=with,specials");
  EXPECT_EQ(back->version, 9u);
  EXPECT_EQ(back->nonce, "9");
  EXPECT_EQ(back->pnode_kind, PnodeKind::kProcess);
}

TEST(WalCodecTest, ProvChunkRoundTrip) {
  WalRecord r;
  r.kind = WalRecord::Kind::kProv;
  r.txid = "tx-2";
  r.object = "o";
  r.version = 1;
  r.chunk_index = 4;
  r.records = {make_text_record("TYPE", "file"),
               make_xref_record("INPUT", {"bar", 2}),
               make_text_record("ARGV", "a|b|c;d=e")};
  auto back = decode_wal_record(encode_wal_record(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->chunk_index, 4u);
  ASSERT_EQ(back->records.size(), 3u);
  EXPECT_EQ(back->records[0], r.records[0]);
  EXPECT_EQ(back->records[1], r.records[1]);
  EXPECT_EQ(back->records[2], r.records[2]);
}

TEST(WalCodecTest, Md5AndCommitRoundTrip) {
  WalRecord m;
  m.kind = WalRecord::Kind::kMd5;
  m.txid = "tx-3";
  m.object = "o";
  m.version = 2;
  m.nonce = "2";
  m.md5 = "0123456789abcdef0123456789abcdef";
  auto back = decode_wal_record(encode_wal_record(m));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->md5, m.md5);

  WalRecord c;
  c.kind = WalRecord::Kind::kCommit;
  c.txid = "tx-3";
  auto cback = decode_wal_record(encode_wal_record(c));
  ASSERT_TRUE(cback.has_value());
  EXPECT_EQ(cback->kind, WalRecord::Kind::kCommit);
}

TEST(WalCodecTest, RejectsGarbage) {
  EXPECT_FALSE(decode_wal_record("").has_value());
  EXPECT_FALSE(decode_wal_record("X;tx-1").has_value());
  EXPECT_FALSE(decode_wal_record("B;tx-1").has_value());       // missing count
  EXPECT_FALSE(decode_wal_record("B;tx-1;abc").has_value());   // bad count
  EXPECT_FALSE(decode_wal_record("D;tx-1;only").has_value());  // short
  EXPECT_FALSE(decode_wal_record("total junk").has_value());
}

TEST(BuildTransactionTest, OrderAndStructure) {
  const FlushUnit unit = sample_unit(5, 100);
  const auto records = build_transaction("tx-9", unit, ".tmp/tx-9", "3", "md5hex");
  ASSERT_GE(records.size(), 4u);
  EXPECT_EQ(records.front().kind, WalRecord::Kind::kBegin);
  EXPECT_EQ(records[1].kind, WalRecord::Kind::kData);
  EXPECT_EQ(records[records.size() - 2].kind, WalRecord::Kind::kMd5);
  EXPECT_EQ(records.back().kind, WalRecord::Kind::kCommit);
  // Count covers everything between begin and commit.
  EXPECT_EQ(records.front().record_count, records.size() - 2);
  for (const auto& r : records) EXPECT_EQ(r.txid, "tx-9");
}

TEST(BuildTransactionTest, EveryMessageFitsSqsLimit) {
  // 400 records of ~800 bytes: must split into several chunks, all <= 8 KB.
  const FlushUnit unit = sample_unit(400, 800);
  const auto records = build_transaction("tx-1", unit, ".tmp/t", "1", "m");
  std::size_t chunks = 0;
  for (const auto& r : records) {
    const auto body = encode_wal_record(r);
    EXPECT_LE(body.size(), 8u * 1024u) << "record kind "
                                       << static_cast<int>(r.kind);
    if (r.kind == WalRecord::Kind::kProv) ++chunks;
  }
  EXPECT_GT(chunks, 30u);  // 400*800B / 8KB ~ 40 chunks
}

TEST(BuildTransactionTest, ChunkIndexesAreSequential) {
  const FlushUnit unit = sample_unit(100, 800);
  const auto records = build_transaction("tx-1", unit, ".tmp/t", "1", "m");
  std::uint32_t expected = 0;
  for (const auto& r : records)
    if (r.kind == WalRecord::Kind::kProv) EXPECT_EQ(r.chunk_index, expected++);
  EXPECT_GT(expected, 1u);
}

TEST(BuildTransactionTest, NoRecordsStillValid) {
  FlushUnit unit;
  unit.object = "empty";
  unit.version = 1;
  const auto records = build_transaction("tx-0", unit, ".tmp/t", "1", "m");
  ASSERT_EQ(records.size(), 4u);  // begin, data, md5, commit
  EXPECT_EQ(records.front().record_count, 2u);
}

TEST(BuildTransactionTest, RecordsSurviveChunkReassembly) {
  const FlushUnit unit = sample_unit(250, 700);
  const auto records = build_transaction("tx-1", unit, ".tmp/t", "1", "m");
  std::vector<ProvenanceRecord> reassembled;
  for (const auto& r : records) {
    if (r.kind != WalRecord::Kind::kProv) continue;
    auto back = decode_wal_record(encode_wal_record(r));
    ASSERT_TRUE(back.has_value());
    for (const auto& rec : back->records) reassembled.push_back(rec);
  }
  ASSERT_EQ(reassembled.size(), unit.records.size());
  for (std::size_t i = 0; i < reassembled.size(); ++i)
    EXPECT_EQ(reassembled[i], unit.records[i]);
}

TEST(WalTransactionTest, CompletenessRules) {
  const FlushUnit unit = sample_unit(3, 100);
  const auto records = build_transaction("tx-1", unit, ".tmp/t", "1", "m");

  WalTransaction txn;
  txn.txid = "tx-1";
  EXPECT_FALSE(txn.complete());
  for (const auto& r : records) {
    switch (r.kind) {
      case WalRecord::Kind::kBegin: txn.begin = r; break;
      case WalRecord::Kind::kData: txn.data = r; break;
      case WalRecord::Kind::kProv: txn.prov_chunks.push_back(r); break;
      case WalRecord::Kind::kMd5: txn.md5 = r; break;
      case WalRecord::Kind::kCommit: txn.committed = true; break;
    }
  }
  EXPECT_TRUE(txn.complete());

  // Missing a chunk -> incomplete.
  WalTransaction missing = txn;
  missing.prov_chunks.pop_back();
  EXPECT_FALSE(missing.complete());

  // No commit -> incomplete even with every record.
  WalTransaction uncommitted = txn;
  uncommitted.committed = false;
  EXPECT_FALSE(uncommitted.complete());
}

}  // namespace
