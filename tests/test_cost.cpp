// Pricing (the paper's section 2 price sheet) and the section 5 estimation
// formulas.
#include <gtest/gtest.h>

#include "cost/analysis.hpp"
#include "cost/pricing.hpp"
#include "sim/metering.hpp"

namespace {

using namespace provcloud::cost;
using provcloud::sim::Meter;

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

TEST(PricingTest, S3PutClassRequests) {
  Meter m;
  for (int i = 0; i < 1000; ++i) m.record("s3", "PUT", 0, 0);
  const CostEstimate c = estimate_cost(m.snapshot());
  // USD 0.01 per 1,000 PUT.
  EXPECT_NEAR(c.s3_requests, 0.01, 1e-9);
}

TEST(PricingTest, S3GetClassRequests) {
  Meter m;
  for (int i = 0; i < 10000; ++i) m.record("s3", "GET", 0, 0);
  const CostEstimate c = estimate_cost(m.snapshot());
  // USD 0.01 per 10,000 GET.
  EXPECT_NEAR(c.s3_requests, 0.01, 1e-9);
}

TEST(PricingTest, CopyAndListAreBilledAsPutClass) {
  Meter m;
  for (int i = 0; i < 500; ++i) m.record("s3", "COPY", 0, 0);
  for (int i = 0; i < 500; ++i) m.record("s3", "LIST", 0, 0);
  const CostEstimate c = estimate_cost(m.snapshot());
  EXPECT_NEAR(c.s3_requests, 0.01, 1e-9);
}

TEST(PricingTest, TransferRates) {
  Meter m;
  m.record("s3", "PUT", static_cast<std::uint64_t>(kGiB), 0);
  m.record("s3", "GET", 0, static_cast<std::uint64_t>(kGiB));
  const CostEstimate c = estimate_cost(m.snapshot());
  // USD 0.10/GB in + 0.17/GB out.
  EXPECT_NEAR(c.s3_transfer, 0.27, 1e-6);
}

TEST(PricingTest, StorageMonthly) {
  Meter m;
  m.set_storage("s3", static_cast<std::uint64_t>(10 * kGiB));
  const CostEstimate c = estimate_cost(m.snapshot());
  EXPECT_NEAR(c.s3_storage_month, 1.5, 1e-6);  // 10 GB * $0.15
}

TEST(PricingTest, SqsPerTenThousandRequests) {
  Meter m;
  for (int i = 0; i < 20000; ++i) m.record("sqs", "SendMessage", 0, 0);
  const CostEstimate c = estimate_cost(m.snapshot());
  EXPECT_NEAR(c.sqs_requests, 0.02, 1e-9);
}

TEST(PricingTest, SdbBoxUsageGrowsWithCallsAndPayload) {
  Meter a, b;
  for (int i = 0; i < 100; ++i) a.record("sdb", "PutAttributes", 100, 0);
  for (int i = 0; i < 100; ++i) b.record("sdb", "PutAttributes", 100000, 0);
  const double cost_a = estimate_cost(a.snapshot()).sdb_box_usage;
  const double cost_b = estimate_cost(b.snapshot()).sdb_box_usage;
  EXPECT_GT(cost_a, 0.0);
  EXPECT_GT(cost_b, cost_a);
}

TEST(PricingTest, TotalSumsComponents) {
  Meter m;
  m.record("s3", "PUT", 1000, 0);
  m.record("sqs", "SendMessage", 1000, 0);
  m.record("sdb", "PutAttributes", 1000, 0);
  m.set_storage("s3", 1000000);
  const CostEstimate c = estimate_cost(m.snapshot());
  EXPECT_NEAR(c.total(),
              c.s3_requests + c.s3_transfer + c.s3_storage_month +
                  c.sdb_box_usage + c.sdb_transfer + c.sdb_storage_month +
                  c.sqs_requests + c.sqs_transfer,
              1e-12);
}

TEST(PricingTest, FormatUsd) {
  EXPECT_EQ(format_usd(1.234), "$1.23");
  EXPECT_EQ(format_usd(0.05), "$0.05");
  EXPECT_EQ(format_usd(0.0001), "$0.00010");
}

// --- the paper's estimation formulas ---

provcloud::cost::TraceQuantities sample_quantities() {
  TraceQuantities q;
  q.n_objects = 1000;
  q.n_items = 1000;
  q.n_large_records = 80;
  q.provenance_bytes = 4 * 1024 * 1024;  // 4 MB
  q.data_bytes = 40 * 1024 * 1024;
  return q;
}

TEST(AnalysisTest, RawBaseline) {
  const StorageEstimate e = estimate_raw(sample_quantities());
  EXPECT_EQ(e.provenance_bytes, 0u);
  EXPECT_EQ(e.extra_ops, 1000u);
}

TEST(AnalysisTest, Arch1OpsAreLargeRecordsOnly) {
  const StorageEstimate e = estimate_arch1(sample_quantities());
  EXPECT_EQ(e.extra_ops, 80u);
  EXPECT_EQ(e.provenance_bytes, 4u * 1024 * 1024);
}

TEST(AnalysisTest, Arch2OpsAreItemsPlusLargeRecords) {
  const StorageEstimate e = estimate_arch2(sample_quantities());
  EXPECT_EQ(e.extra_ops, 1000u + 80u);
  EXPECT_GT(e.provenance_bytes, 4u * 1024 * 1024);  // representation overhead
}

TEST(AnalysisTest, Arch3FormulaMatchesPaper) {
  const TraceQuantities q = sample_quantities();
  const StorageEstimate e = estimate_arch3(q);
  const std::uint64_t chunks = (q.provenance_bytes + 8191) / 8192;
  EXPECT_EQ(e.extra_ops, 2 * (1000 + chunks) + 1000 + 80);
  // storage = 2*S_SQS + S_SimpleDB > 3x the raw provenance bytes.
  EXPECT_GE(e.provenance_bytes, 3 * q.provenance_bytes);
}

TEST(AnalysisTest, OrderingMatchesTableTwo) {
  // Table 2's qualitative ordering: arch1 < arch2 < arch3 in both space
  // and operations.
  const TraceQuantities q = sample_quantities();
  const StorageEstimate e1 = estimate_arch1(q);
  const StorageEstimate e2 = estimate_arch2(q);
  const StorageEstimate e3 = estimate_arch3(q);
  EXPECT_LT(e1.provenance_bytes, e2.provenance_bytes);
  EXPECT_LT(e2.provenance_bytes, e3.provenance_bytes);
  EXPECT_LT(e1.extra_ops, e2.extra_ops);
  EXPECT_LT(e2.extra_ops, e3.extra_ops);
}

TEST(AnalysisTest, QuantitiesFromObserverStats) {
  provcloud::pass::ObserverStats s;
  s.flush_units = 42;
  s.file_units = 30;
  s.large_records = 7;
  s.provenance_bytes = 1234;
  s.data_bytes_flushed = 9999;
  const TraceQuantities q = quantities_from(s);
  EXPECT_EQ(q.n_objects, 30u);  // raw ops = file PUTs
  EXPECT_EQ(q.n_items, 42u);    // items = every flushed version
  EXPECT_EQ(q.n_large_records, 7u);
  EXPECT_EQ(q.provenance_bytes, 1234u);
  EXPECT_EQ(q.data_bytes, 9999u);
}

}  // namespace
