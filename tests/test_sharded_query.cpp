// Sharded storage end to end: backends writing through the ShardRouter and
// the scatter/gather query engine must answer exactly like the single-domain
// layout at any shard count.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "cloudprov/backend.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/serialize.hpp"
#include "cloudprov/shard_router.hpp"
#include "cloudprov/wal_backend.hpp"
#include "pass/observer.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace util = provcloud::util;

/// A pipeline world with enough distinct objects to populate every shard:
/// one generator fans out many data files, two blast-like runs consume a
/// few, and downstream tools chain off the outputs.
SyscallTrace sharded_world() {
  util::Rng rng(5);
  SyscallTrace t;
  t.push_back(ev_exec(1, "/usr/bin/datagen", {"datagen"},
                      provcloud::workloads::synth_environment(rng, 500)));
  for (int i = 0; i < 24; ++i) {
    const std::string path = "data/input" + std::to_string(i);
    t.push_back(ev_write(1, path, "raw-" + std::to_string(i)));
    t.push_back(ev_close(1, path));
  }
  t.push_back(ev_exit(1));
  for (int q = 0; q < 2; ++q) {
    const Pid pid = 10 + q;
    const std::string hits = "out/hits" + std::to_string(q);
    t.push_back(ev_exec(pid, "/usr/bin/blastall", {"blastall"},
                        provcloud::workloads::synth_environment(rng, 800)));
    t.push_back(ev_read(pid, "data/input" + std::to_string(q)));
    t.push_back(ev_read(pid, "data/input" + std::to_string(10 + q)));
    t.push_back(ev_write(pid, hits, "alignments" + std::to_string(q)));
    t.push_back(ev_close(pid, hits));
    t.push_back(ev_exit(pid));
  }
  t.push_back(ev_exec(20, "/usr/bin/python", {"python", "summarize.py"},
                      provcloud::workloads::synth_environment(rng, 600)));
  t.push_back(ev_read(20, "out/hits0"));
  t.push_back(ev_write(20, "out/summary", "stats"));
  t.push_back(ev_close(20, "out/summary"));
  t.push_back(ev_exit(20));
  return t;
}

/// Run the world into an arch-2 (or arch-3) backend at a given shard count
/// and expose a matching scatter/gather query engine.
struct ShardedWorld {
  ShardedWorld(Architecture arch, std::size_t shard_count)
      : env(61, aws::ConsistencyConfig::strong()), services(env) {
    if (arch == Architecture::kS3SimpleDb) {
      backend = make_sdb_backend(services,
                                 SdbBackendConfig{.shard_count = shard_count});
    } else {
      WalBackendConfig cfg;
      cfg.commit_threshold = 4;
      cfg.shard_count = shard_count;
      backend = make_wal_backend(services, cfg);
    }
    PassObserver obs([this](const FlushUnit& u) { backend->store(u); });
    obs.apply_trace(sharded_world());
    obs.finish();
    env.clock().drain();
    backend->quiesce();
    env.clock().drain();
    // Build the engine from the backend's own router: the factory that
    // keeps query and storage shard layouts in lockstep.
    const ShardRouter& router =
        arch == Architecture::kS3SimpleDb
            ? static_cast<SdbBackend*>(backend.get())->router()
            : static_cast<WalBackend*>(backend.get())->router();
    engine = make_sdb_query_engine(services, router);
  }
  aws::CloudEnv env;
  CloudServices services;
  std::unique_ptr<ProvenanceBackend> backend;
  std::unique_ptr<QueryEngine> engine;
};

class ShardCountCase
    : public ::testing::TestWithParam<std::tuple<Architecture, std::size_t>> {};

TEST_P(ShardCountCase, QueriesMatchTheSingleDomainAnswers) {
  const auto [arch, shards] = GetParam();
  ShardedWorld base(arch, 1);
  ShardedWorld sharded(arch, shards);

  const Q1Result q1_base = base.engine->q1_all_provenance();
  const Q1Result q1_sharded = sharded.engine->q1_all_provenance();
  EXPECT_EQ(q1_sharded.object_versions, q1_base.object_versions);
  EXPECT_EQ(q1_sharded.records, q1_base.records);

  EXPECT_EQ(sharded.engine->q2_outputs_of("/usr/bin/blastall"),
            base.engine->q2_outputs_of("/usr/bin/blastall"));
  EXPECT_EQ(sharded.engine->q3_descendants_of("/usr/bin/blastall"),
            base.engine->q3_descendants_of("/usr/bin/blastall"));
  EXPECT_EQ(sharded.engine->q3_descendants_of("/usr/bin/datagen"),
            base.engine->q3_descendants_of("/usr/bin/datagen"));
  EXPECT_TRUE(sharded.engine->q2_outputs_of("/usr/bin/never-ran").empty());
}

TEST_P(ShardCountCase, ShardedItemsActuallySpreadAcrossDomains) {
  const auto [arch, shards] = GetParam();
  if (shards == 1) GTEST_SKIP() << "single domain holds everything";
  ShardedWorld w(arch, shards);
  ShardRouter router(shards);
  std::size_t populated = 0;
  std::uint64_t total = 0;
  for (const std::string& domain : router.domains()) {
    const std::uint64_t n = w.services.sdb.item_count(domain);
    total += n;
    if (n > 0) ++populated;
  }
  EXPECT_GT(populated, 1u);  // the hash actually partitions
  EXPECT_EQ(w.services.sdb.item_count(kProvenanceDomain), 0u);
  EXPECT_GT(total, 0u);
}

TEST_P(ShardCountCase, ReadPathFollowsTheRouter) {
  const auto [arch, shards] = GetParam();
  ShardedWorld w(arch, shards);
  for (const std::string& object : {"out/hits0", "out/summary"}) {
    auto got = w.backend->read(object);
    ASSERT_TRUE(got.has_value()) << object;
    EXPECT_TRUE(got->verified) << object;
    auto prov = w.backend->get_provenance(object, got->version);
    ASSERT_TRUE(prov.has_value()) << object;
    EXPECT_FALSE(prov->empty()) << object;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Arches, ShardCountCase,
    ::testing::Combine(::testing::Values(Architecture::kS3SimpleDb,
                                         Architecture::kS3SimpleDbSqs),
                       ::testing::Values(std::size_t{1}, std::size_t{4})));

TEST(ShardedRecoveryTest, OrphanScanCoversEveryShardDomain) {
  aws::CloudEnv env(62, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend =
      make_sdb_backend(services, SdbBackendConfig{.shard_count = 4});

  FlushUnit good;
  good.object = "good";
  good.version = 1;
  good.kind = PnodeKind::kFile;
  good.data = util::make_shared_bytes(std::string("x"));
  good.records = {make_text_record("TYPE", "file")};
  backend->store(good);

  // Orphan several objects so that (with high probability) more than one
  // shard domain holds an orphan.
  for (int i = 0; i < 6; ++i) {
    FlushUnit bad = good;
    bad.object = "bad" + std::to_string(i);
    env.failures().arm_crash("sdb.store.between_prov_and_data");
    EXPECT_THROW(backend->store(bad), provcloud::sim::CrashError);
  }
  env.clock().drain();

  backend->recover();
  auto* sdb_backend = dynamic_cast<SdbBackend*>(backend.get());
  ASSERT_NE(sdb_backend, nullptr);
  EXPECT_EQ(sdb_backend->last_recovery_orphans(), 6u);
  ShardRouter router(4);
  for (int i = 0; i < 6; ++i) {
    const std::string object = "bad" + std::to_string(i);
    EXPECT_FALSE(services.sdb
                     .peek_item(router.domain_for_object(object), object + ":1")
                     .has_value());
  }
  EXPECT_TRUE(services.sdb
                  .peek_item(router.domain_for_object("good"), "good:1")
                  .has_value());
}

}  // namespace
