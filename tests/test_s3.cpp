// S3 simulator: the operation set, limits, eventual consistency and billing
// behaviour the paper's section 2.1 describes.
#include <gtest/gtest.h>

#include "aws/common/env.hpp"
#include "aws/s3/s3.hpp"
#include "util/md5.hpp"

namespace {

using namespace provcloud::aws;
namespace sim = provcloud::sim;
namespace util = provcloud::util;

class S3Test : public ::testing::Test {
 protected:
  S3Test() : env_(1, ConsistencyConfig::strong()), s3_(env_) {}
  CloudEnv env_;
  S3Service s3_;
};

TEST_F(S3Test, PutThenGetRoundTrips) {
  S3Metadata meta{{"k", "v"}};
  ASSERT_TRUE(s3_.put("b", "key", "hello", meta).has_value());
  auto got = s3_.get("b", "key");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got->data, "hello");
  EXPECT_EQ(got->metadata.at("k"), "v");
}

TEST_F(S3Test, EtagIsContentMd5) {
  ASSERT_TRUE(s3_.put("b", "key", "abc").has_value());
  auto got = s3_.get("b", "key");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->etag, util::Md5::hex_digest("abc"));
}

TEST_F(S3Test, PutOverwrites) {
  ASSERT_TRUE(s3_.put("b", "key", "one").has_value());
  ASSERT_TRUE(s3_.put("b", "key", "two").has_value());
  EXPECT_EQ(*s3_.get("b", "key")->data, "two");
}

TEST_F(S3Test, GetMissingKeyReturnsNoSuchKey) {
  ASSERT_TRUE(s3_.put("b", "exists", "x").has_value());
  auto got = s3_.get("b", "missing");
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.error().code, AwsErrorCode::kNoSuchKey);
}

TEST_F(S3Test, GetMissingBucketReturnsNoSuchBucket) {
  auto got = s3_.get("nope", "k");
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.error().code, AwsErrorCode::kNoSuchBucket);
}

TEST_F(S3Test, MetadataOverTwoKbRejected) {
  S3Metadata meta{{"big", std::string(2049, 'x')}};
  auto put = s3_.put("b", "k", "data", meta);
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kMetadataTooLarge);
  // Nothing stored.
  EXPECT_FALSE(s3_.peek("b", "k").has_value());
}

TEST_F(S3Test, MetadataSizeCountsKeysAndValues) {
  // 2KB exactly must pass; keys count toward the limit.
  S3Metadata meta{{std::string(1024, 'k'), std::string(1024, 'v')}};
  EXPECT_EQ(metadata_size(meta), 2048u);
  EXPECT_TRUE(s3_.put("b", "k", "data", meta).has_value());
}

TEST_F(S3Test, RangeGetReturnsSlice) {
  ASSERT_TRUE(s3_.put("b", "k", "0123456789").has_value());
  auto got = s3_.get_range("b", "k", 3, 4);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got->data, "3456");
}

TEST_F(S3Test, RangeGetClampsAtEnd) {
  ASSERT_TRUE(s3_.put("b", "k", "0123456789").has_value());
  EXPECT_EQ(*s3_.get_range("b", "k", 8, 100)->data, "89");
  EXPECT_EQ(*s3_.get_range("b", "k", 100, 5)->data, "");
}

TEST_F(S3Test, HeadReturnsMetadataWithoutData) {
  S3Metadata meta{{"prov", "INPUT=bar:2"}};
  ASSERT_TRUE(s3_.put("b", "k", "payload", meta).has_value());
  const auto before = env_.meter().snapshot();
  auto head = s3_.head("b", "k");
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->metadata.at("prov"), "INPUT=bar:2");
  EXPECT_EQ(head->size, 7u);
  // HEAD must not bill the payload bytes.
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_LT(diff.bytes_out("s3"), 7u + 20u);
}

TEST_F(S3Test, CopyPreservesDataAndMetadataByDefault) {
  S3Metadata meta{{"m", "1"}};
  ASSERT_TRUE(s3_.put("b", "src", "body", meta).has_value());
  ASSERT_TRUE(s3_.copy("b", "src", "b", "dst").has_value());
  auto got = s3_.get("b", "dst");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got->data, "body");
  EXPECT_EQ(got->metadata.at("m"), "1");
}

TEST_F(S3Test, CopyWithReplaceSwapsMetadata) {
  ASSERT_TRUE(s3_.put("b", "src", "body", {{"old", "1"}}).has_value());
  ASSERT_TRUE(s3_.copy("b", "src", "b", "dst", MetadataDirective::kReplace,
                       {{"new", "2"}})
                  .has_value());
  auto got = s3_.get("b", "dst");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->metadata.count("old"), 0u);
  EXPECT_EQ(got->metadata.at("new"), "2");
}

TEST_F(S3Test, CopyBillsNoTransfer) {
  ASSERT_TRUE(s3_.put("b", "src", std::string(100000, 'z')).has_value());
  const auto before = env_.meter().snapshot();
  ASSERT_TRUE(s3_.copy("b", "src", "b", "dst").has_value());
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("s3", "COPY"), 1u);
  EXPECT_EQ(diff.bytes_in("s3"), 0u);
  EXPECT_EQ(diff.bytes_out("s3"), 0u);
}

TEST_F(S3Test, CopyMissingSourceFails) {
  auto copy = s3_.copy("b", "nope", "b", "dst");
  ASSERT_FALSE(copy.has_value());
}

TEST_F(S3Test, DeleteRemovesAndIsIdempotent) {
  ASSERT_TRUE(s3_.put("b", "k", "x").has_value());
  ASSERT_TRUE(s3_.del("b", "k").has_value());
  EXPECT_FALSE(s3_.get("b", "k").has_value());
  ASSERT_TRUE(s3_.del("b", "k").has_value());  // second delete succeeds
  ASSERT_TRUE(s3_.del("other-bucket", "k").has_value());
}

TEST_F(S3Test, ListByPrefixAndPagination) {
  for (int i = 0; i < 25; ++i)
    ASSERT_TRUE(
        s3_.put("b", "pre/k" + std::to_string(100 + i), "x").has_value());
  ASSERT_TRUE(s3_.put("b", "other", "x").has_value());

  auto page1 = s3_.list("b", "pre/", "", 10);
  ASSERT_TRUE(page1.has_value());
  EXPECT_EQ(page1->keys.size(), 10u);
  EXPECT_TRUE(page1->truncated);

  auto page2 = s3_.list("b", "pre/", page1->keys.back(), 10);
  ASSERT_TRUE(page2.has_value());
  EXPECT_EQ(page2->keys.size(), 10u);

  auto page3 = s3_.list("b", "pre/", page2->keys.back(), 10);
  ASSERT_TRUE(page3.has_value());
  EXPECT_EQ(page3->keys.size(), 5u);
  EXPECT_FALSE(page3->truncated);
}

TEST_F(S3Test, StorageGaugeTracksPutsAndDeletes) {
  ASSERT_TRUE(s3_.put("b", "a", std::string(100, 'x')).has_value());
  ASSERT_TRUE(s3_.put("b", "b", std::string(50, 'y'), {{"k", "v"}}).has_value());
  EXPECT_EQ(s3_.stored_bytes(), 100u + 50u + 2u);
  ASSERT_TRUE(s3_.put("b", "a", std::string(10, 'z')).has_value());  // shrink
  EXPECT_EQ(s3_.stored_bytes(), 10u + 50u + 2u);
  ASSERT_TRUE(s3_.del("b", "b").has_value());
  EXPECT_EQ(s3_.stored_bytes(), 10u);
  EXPECT_EQ(env_.meter().snapshot().storage_bytes("s3"), 10u);
}

TEST_F(S3Test, BillingCountsOpsAndBytes) {
  const auto before = env_.meter().snapshot();
  ASSERT_TRUE(s3_.put("b", "k", "12345", {{"m", "n"}}).has_value());
  auto got = s3_.get("b", "k");
  ASSERT_TRUE(got.has_value());
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("s3", "PUT"), 1u);
  EXPECT_EQ(diff.bytes_in("s3", "PUT"), 5u + 2u);
  EXPECT_EQ(diff.calls("s3", "GET"), 1u);
  EXPECT_EQ(diff.bytes_out("s3", "GET"), 5u + 2u);
}

TEST_F(S3Test, ObjectCountTracksBuckets) {
  ASSERT_TRUE(s3_.put("b1", "a", "x").has_value());
  ASSERT_TRUE(s3_.put("b2", "b", "x").has_value());
  ASSERT_TRUE(s3_.put("b2", "c", "x").has_value());
  EXPECT_EQ(s3_.object_count(), 3u);
}

// --- eventual consistency ---

class S3EventualTest : public ::testing::Test {
 protected:
  static ConsistencyConfig slow() {
    ConsistencyConfig c;
    c.replicas = 4;
    c.propagation_min = sim::kSecond;
    c.propagation_max = 5 * sim::kSecond;
    return c;
  }
  S3EventualTest() : env_(2, slow()), s3_(env_) {}
  CloudEnv env_;
  S3Service s3_;
};

TEST_F(S3EventualTest, GetAfterPutCanReturnOldObject) {
  ASSERT_TRUE(s3_.put("b", "k", "old").has_value());
  env_.clock().drain();
  ASSERT_TRUE(s3_.put("b", "k", "new").has_value());
  int stale = 0;
  for (int i = 0; i < 100; ++i) {
    auto got = s3_.get("b", "k");
    ASSERT_TRUE(got.has_value());
    if (*got->data == "old") ++stale;
  }
  EXPECT_GT(stale, 0);
  env_.clock().drain();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(*s3_.get("b", "k")->data, "new");
}

TEST_F(S3EventualTest, GetAfterFirstPutCanMiss) {
  ASSERT_TRUE(s3_.put("b", "fresh", "x").has_value());
  int miss = 0;
  for (int i = 0; i < 100; ++i)
    if (!s3_.get("b", "fresh")) ++miss;
  EXPECT_GT(miss, 0);
}

TEST_F(S3EventualTest, DataAndMetadataNeverTear) {
  // The pair travels in one PUT: a reader may see an old version but never
  // version-1 data with version-2 metadata.
  ASSERT_TRUE(s3_.put("b", "k", "one", {{"v", "1"}}).has_value());
  env_.clock().advance_by(sim::kMillisecond);
  ASSERT_TRUE(s3_.put("b", "k", "two", {{"v", "2"}}).has_value());
  for (int i = 0; i < 200; ++i) {
    auto got = s3_.get("b", "k");
    if (!got) continue;
    if (*got->data == "one")
      EXPECT_EQ(got->metadata.at("v"), "1");
    else
      EXPECT_EQ(got->metadata.at("v"), "2");
  }
}

TEST_F(S3EventualTest, LastPutWinsOnConcurrentWrites) {
  ASSERT_TRUE(s3_.put("b", "k", "first").has_value());
  ASSERT_TRUE(s3_.put("b", "k", "second").has_value());
  env_.clock().drain();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(*s3_.get("b", "k")->data, "second");
}

}  // namespace
