#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hpp"
#include "util/require.hpp"

namespace {

using namespace provcloud::sim;

TEST(ClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
}

TEST(ClockTest, AdvanceMovesTime) {
  SimClock clock;
  clock.advance_by(5 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
}

TEST(ClockTest, CannotMoveBackwards) {
  SimClock clock;
  clock.advance_to(10);
  EXPECT_THROW(clock.advance_to(5), provcloud::util::LogicError);
}

TEST(ClockTest, EventsFireInTimeOrder) {
  SimClock clock;
  std::vector<int> fired;
  clock.schedule_after(3 * kSecond, [&] { fired.push_back(3); });
  clock.schedule_after(1 * kSecond, [&] { fired.push_back(1); });
  clock.schedule_after(2 * kSecond, [&] { fired.push_back(2); });
  clock.advance_by(10 * kSecond);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(ClockTest, SameInstantFiresInScheduleOrder) {
  SimClock clock;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i)
    clock.schedule_at(kSecond, [&fired, i] { fired.push_back(i); });
  clock.advance_by(2 * kSecond);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ClockTest, EventsNotDueDoNotFire) {
  SimClock clock;
  bool fired = false;
  clock.schedule_after(10 * kSecond, [&] { fired = true; });
  clock.advance_by(9 * kSecond);
  EXPECT_FALSE(fired);
  EXPECT_EQ(clock.pending_events(), 1u);
  clock.advance_by(1 * kSecond);
  EXPECT_TRUE(fired);
}

TEST(ClockTest, NowIsEventTimeDuringCallback) {
  SimClock clock;
  SimTime seen = 0;
  clock.schedule_after(7 * kSecond, [&] { seen = clock.now(); });
  clock.advance_by(100 * kSecond);
  EXPECT_EQ(seen, 7 * kSecond);
  EXPECT_EQ(clock.now(), 100 * kSecond);
}

TEST(ClockTest, EventsCanScheduleEventsWithinWindow) {
  SimClock clock;
  std::vector<SimTime> fired;
  clock.schedule_after(kSecond, [&] {
    fired.push_back(clock.now());
    clock.schedule_after(kSecond, [&] { fired.push_back(clock.now()); });
  });
  clock.advance_by(5 * kSecond);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], kSecond);
  EXPECT_EQ(fired[1], 2 * kSecond);
}

TEST(ClockTest, ScheduleInPastClampsToNow) {
  SimClock clock;
  clock.advance_to(10 * kSecond);
  bool fired = false;
  clock.schedule_at(5 * kSecond, [&] { fired = true; });
  clock.advance_by(1);
  EXPECT_TRUE(fired);
}

TEST(ClockTest, DrainFiresEverything) {
  SimClock clock;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    clock.schedule_after(i * kHour, [&] { ++count; });
  clock.drain();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(clock.pending_events(), 0u);
  EXPECT_EQ(clock.now(), 10 * kHour);
}

TEST(ClockTest, DrainHandlesCascades) {
  SimClock clock;
  int depth = 0;
  std::function<void()> cascade = [&] {
    if (++depth < 5) clock.schedule_after(kMinute, cascade);
  };
  clock.schedule_after(kMinute, cascade);
  clock.drain();
  EXPECT_EQ(depth, 5);
}

TEST(ClockTest, NullEventRejected) {
  SimClock clock;
  EXPECT_THROW(clock.schedule_after(1, nullptr),
               provcloud::util::LogicError);
}

}  // namespace
