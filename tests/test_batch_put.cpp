// BatchPutAttributes: the batched SimpleDB write path -- the 25-item cap,
// whole-call versus per-item error semantics, and single-call billing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aws/common/env.hpp"
#include "aws/simpledb/simpledb.hpp"

namespace {

using namespace provcloud::aws;

class BatchPutTest : public ::testing::Test {
 protected:
  BatchPutTest() : env_(7, ConsistencyConfig::strong()), sdb_(env_) {
    EXPECT_TRUE(sdb_.create_domain("d").has_value());
  }

  static SdbBatchEntry entry(const std::string& item, int attrs) {
    SdbBatchEntry e;
    e.item = item;
    for (int i = 0; i < attrs; ++i)
      e.attrs.push_back({"a" + std::to_string(i), "v", false});
    return e;
  }

  CloudEnv env_;
  SimpleDbService sdb_;
};

TEST_F(BatchPutTest, WritesManyItemsInOneCall) {
  std::vector<SdbBatchEntry> entries;
  for (int i = 0; i < 25; ++i)
    entries.push_back(entry("item" + std::to_string(i), 2));
  const auto before = env_.meter().snapshot();
  auto put = sdb_.batch_put_attributes("d", entries);
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->ok());
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("sdb", "BatchPutAttributes"), 1u);
  EXPECT_EQ(sdb_.item_count("d"), 25u);
}

TEST_F(BatchPutTest, TwentySixItemsFailTheWholeCall) {
  std::vector<SdbBatchEntry> entries;
  for (int i = 0; i < 26; ++i)
    entries.push_back(entry("item" + std::to_string(i), 1));
  auto put = sdb_.batch_put_attributes("d", entries);
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kTooManySubmittedItems);
  EXPECT_EQ(sdb_.item_count("d"), 0u);  // nothing applied
}

TEST_F(BatchPutTest, DuplicateItemNamesFailTheWholeCall) {
  auto put = sdb_.batch_put_attributes("d", {entry("same", 1), entry("same", 1)});
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kDuplicateItemName);
  EXPECT_EQ(sdb_.item_count("d"), 0u);
}

TEST_F(BatchPutTest, EmptyBatchIsInvalid) {
  auto put = sdb_.batch_put_attributes("d", {});
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kInvalidArgument);
}

TEST_F(BatchPutTest, MissingDomainFailsTheWholeCall) {
  auto put = sdb_.batch_put_attributes("nope", {entry("i", 1)});
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kNoSuchDomain);
}

TEST_F(BatchPutTest, PartialFailureAppliesTheRestAndReportsIndexes) {
  SdbBatchEntry oversized;
  oversized.item = "bad";
  oversized.attrs.push_back({"k", std::string(2000, 'x'), false});
  auto put = sdb_.batch_put_attributes(
      "d", {entry("ok0", 2), oversized, entry("ok2", 2)});
  ASSERT_TRUE(put.has_value());
  ASSERT_EQ(put->failed.size(), 1u);
  EXPECT_EQ(put->failed[0].index, 1u);
  EXPECT_EQ(put->failed[0].error.code, AwsErrorCode::kAttributeTooLarge);
  // The healthy entries landed; the rejected one did not.
  EXPECT_TRUE(sdb_.peek_item("d", "ok0").has_value());
  EXPECT_TRUE(sdb_.peek_item("d", "ok2").has_value());
  EXPECT_FALSE(sdb_.peek_item("d", "bad").has_value());
}

TEST_F(BatchPutTest, EntryWithNoAttributesIsAPerItemError) {
  auto put = sdb_.batch_put_attributes("d", {entry("ok", 1), entry("empty", 0)});
  ASSERT_TRUE(put.has_value());
  ASSERT_EQ(put->failed.size(), 1u);
  EXPECT_EQ(put->failed[0].index, 1u);
  EXPECT_EQ(put->failed[0].error.code, AwsErrorCode::kInvalidArgument);
  EXPECT_TRUE(sdb_.peek_item("d", "ok").has_value());
}

TEST_F(BatchPutTest, EntryCarriesUpToTheFullItemPairLimit) {
  // PutAttributes caps a call at 100 attributes; a batch entry admits the
  // 256-pair item limit in one round trip.
  auto put = sdb_.batch_put_attributes("d", {entry("wide", 256)});
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->ok());
  auto got = sdb_.get_attributes("d", "wide");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(sdb_pair_count(*got), 256u);

  // One more pair would push the item over 256: per-item error, and the
  // item is left untouched.
  auto over = sdb_.batch_put_attributes("d", {{"wide", {{"extra", "v", false}}}});
  ASSERT_TRUE(over.has_value());
  ASSERT_EQ(over->failed.size(), 1u);
  EXPECT_EQ(over->failed[0].error.code, AwsErrorCode::kTooManyAttributes);
}

TEST_F(BatchPutTest, BatchedWritesAreIdempotent) {
  const std::vector<SdbBatchEntry> entries = {entry("i", 3), entry("j", 2)};
  ASSERT_TRUE(sdb_.batch_put_attributes("d", entries).has_value());
  ASSERT_TRUE(sdb_.batch_put_attributes("d", entries).has_value());
  auto got = sdb_.get_attributes("d", "i");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(sdb_pair_count(*got), 3u);  // set semantics: no duplicates
}

TEST_F(BatchPutTest, ReplicatesLikePutAttributes) {
  // Under eventual consistency a batched write still reaches every replica.
  ConsistencyConfig c;
  c.replicas = 3;
  CloudEnv env(8, c);
  SimpleDbService sdb(env);
  ASSERT_TRUE(sdb.create_domain("d").has_value());
  ASSERT_TRUE(sdb.batch_put_attributes("d", {entry("i", 1)}).has_value());
  env.clock().drain();
  for (int i = 0; i < 8; ++i) {
    auto got = sdb.get_attributes("d", "i");  // random replica each read
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(sdb_pair_count(*got), 1u);
  }
}

}  // namespace
