// Shard-parallel scatter/gather: the executor must change wall-clock
// behaviour only. Answers, stored state and metered billing are identical
// at parallelism 1 and N, and concurrent clients can drive distinct shards
// at the same time.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/serialize.hpp"
#include "cloudprov/wal_backend.hpp"
#include "pass/observer.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace util = provcloud::util;

/// Enough distinct objects to populate four shards, with process lineage
/// for the ancestry queries.
SyscallTrace scatter_world() {
  util::Rng rng(9);
  SyscallTrace t;
  t.push_back(ev_exec(1, "/usr/bin/datagen", {"datagen"},
                      provcloud::workloads::synth_environment(rng, 400)));
  for (int i = 0; i < 20; ++i) {
    const std::string path = "data/input" + std::to_string(i);
    t.push_back(ev_write(1, path, "raw-" + std::to_string(i)));
    t.push_back(ev_close(1, path));
  }
  t.push_back(ev_exit(1));
  for (int q = 0; q < 3; ++q) {
    const Pid pid = 10 + q;
    const std::string hits = "out/hits" + std::to_string(q);
    t.push_back(ev_exec(pid, "/usr/bin/blastall", {"blastall"},
                        provcloud::workloads::synth_environment(rng, 500)));
    t.push_back(ev_read(pid, "data/input" + std::to_string(q)));
    t.push_back(ev_write(pid, hits, "alignments" + std::to_string(q)));
    t.push_back(ev_close(pid, hits));
    t.push_back(ev_exit(pid));
  }
  return t;
}

struct World {
  World(std::size_t shard_count, std::size_t parallelism)
      : env(91, aws::ConsistencyConfig::strong()), services(env) {
    backend = std::make_unique<SdbBackend>(
        services, SdbBackendConfig{.shard_count = shard_count,
                                   .parallelism = parallelism});
    PassObserver obs([this](const FlushUnit& u) { backend->store(u); });
    obs.apply_trace(scatter_world());
    obs.finish();
    env.clock().drain();
    engine = make_sdb_query_engine(services, backend->topology());
  }
  aws::CloudEnv env;
  CloudServices services;
  std::unique_ptr<SdbBackend> backend;
  std::unique_ptr<QueryEngine> engine;
};

TEST(ParallelScatterTest, QueryAnswersAndBillingMatchSequential) {
  World seq(4, 1);
  World par(4, 4);

  const auto measure = [](World& w) {
    const auto before = w.env.meter().snapshot();
    const Q1Result q1 = w.engine->q1_all_provenance();
    const auto q2 = w.engine->q2_outputs_of("/usr/bin/blastall");
    const auto q3 = w.engine->q3_descendants_of("/usr/bin/datagen");
    const auto diff = w.env.meter().snapshot().diff(before);
    return std::make_tuple(q1.object_versions, q1.records, q2, q3,
                           diff.calls("sdb"), diff.bytes_out("sdb"));
  };
  EXPECT_EQ(measure(seq), measure(par));
}

TEST(ParallelScatterTest, StoredStateIdenticalAcrossParallelism) {
  World seq(4, 1);
  World par(4, 4);
  for (const std::string& domain : seq.backend->topology()->domains()) {
    const auto items = seq.services.sdb.peek_item_names(domain);
    ASSERT_EQ(items, par.services.sdb.peek_item_names(domain)) << domain;
    for (const std::string& item : items) {
      EXPECT_EQ(seq.services.sdb.peek_item(domain, item),
                par.services.sdb.peek_item(domain, item))
          << domain << "/" << item;
    }
  }
}

TEST(ParallelScatterTest, ReadManyMatchesSequentialReads) {
  World w(4, 4);
  std::vector<std::string> objects;
  for (int i = 0; i < 20; ++i)
    objects.push_back("data/input" + std::to_string(i));
  objects.push_back("out/hits0");
  objects.push_back("no/such/object");

  const auto many = w.backend->read_many(objects, 8);
  ASSERT_EQ(many.size(), objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto single = w.backend->read(objects[i], 8);
    ASSERT_EQ(many[i].has_value(), single.has_value()) << objects[i];
    if (many[i].has_value()) {
      EXPECT_EQ(*many[i]->data, *single->data) << objects[i];
      EXPECT_EQ(many[i]->version, single->version) << objects[i];
      EXPECT_TRUE(many[i]->verified) << objects[i];
    }
  }
}

TEST(ParallelScatterTest, WalParallelFlushMatchesSequential) {
  const auto run = [](std::size_t parallelism) {
    auto env =
        std::make_unique<aws::CloudEnv>(92, aws::ConsistencyConfig::strong());
    auto services = std::make_unique<CloudServices>(*env);
    WalBackendConfig cfg;
    cfg.commit_threshold = 4;
    cfg.shard_count = 4;
    cfg.parallelism = parallelism;
    auto backend = std::make_unique<WalBackend>(*services, cfg);
    PassObserver obs([&backend](const FlushUnit& u) { backend->store(u); });
    obs.apply_trace(scatter_world());
    obs.finish();
    env->clock().drain();
    backend->quiesce();
    env->clock().drain();
    return std::make_tuple(std::move(env), std::move(services),
                           std::move(backend));
  };
  auto [env1, services1, wal1] = run(1);
  auto [env4, services4, wal4] = run(4);

  EXPECT_EQ(wal1->committed_count(), wal4->committed_count());
  const auto snap1 = env1->meter().snapshot();
  const auto snap4 = env4->meter().snapshot();
  EXPECT_EQ(snap1.calls("sdb", "BatchPutAttributes"),
            snap4.calls("sdb", "BatchPutAttributes"));
  EXPECT_EQ(snap1.bytes_in("sdb"), snap4.bytes_in("sdb"));
  for (const std::string& domain : wal1->topology()->domains()) {
    const auto items = services1->sdb.peek_item_names(domain);
    ASSERT_EQ(items, services4->sdb.peek_item_names(domain)) << domain;
    for (const std::string& item : items)
      EXPECT_EQ(services1->sdb.peek_item(domain, item),
                services4->sdb.peek_item(domain, item))
          << domain << "/" << item;
  }
}

FlushUnit file_unit(const std::string& object, std::uint32_t version,
                    const std::string& data) {
  FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = PnodeKind::kFile;
  u.data = util::make_shared_bytes(data);
  u.records = {make_text_record("TYPE", "file"),
               make_text_record("NAME", object)};
  return u;
}

TEST(ParallelScatterTest, ConcurrentClientsOnDistinctShards) {
  // The ROADMAP's multi-client goal: real threads, one Arch-2 client each,
  // storing disjoint objects into a 4-shard layout at the same time.
  aws::CloudEnv env(93, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  constexpr int kClients = 4;
  constexpr int kObjectsPerClient = 12;
  std::vector<std::unique_ptr<SdbBackend>> clients;
  for (int c = 0; c < kClients; ++c)
    clients.push_back(std::make_unique<SdbBackend>(
        services, SdbBackendConfig{.shard_count = 4}));

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&clients, c] {
      for (int i = 0; i < kObjectsPerClient; ++i) {
        const std::string object =
            "client" + std::to_string(c) + "/f" + std::to_string(i);
        clients[static_cast<std::size_t>(c)]->store(
            file_unit(object, 1, "payload-" + object));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  env.clock().drain();

  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kObjectsPerClient; ++i) {
      const std::string object =
          "client" + std::to_string(c) + "/f" + std::to_string(i);
      auto got = clients[0]->read(object);
      ASSERT_TRUE(got.has_value()) << object;
      EXPECT_TRUE(got->verified) << object;
      EXPECT_EQ(*got->data, "payload-" + object) << object;
    }
  }
  // One bill for all clients: every PUT and every provenance write landed.
  const auto snap = env.meter().snapshot();
  const std::uint64_t expected_puts =
      static_cast<std::uint64_t>(kClients) * kObjectsPerClient;
  EXPECT_EQ(snap.calls("s3", "PUT"), expected_puts);
  EXPECT_EQ(snap.calls("sdb", "BatchPutAttributes"), expected_puts);
}

TEST(ParallelScatterTest, ConcurrentWalClientsUnderEventualConsistency) {
  // Default (eventually consistent) fabric: concurrent stores schedule
  // propagation events from worker threads; drain + quiesce then settles
  // everything and every object must read back verified.
  aws::CloudEnv env(94);
  CloudServices services(env);
  constexpr int kClients = 3;
  std::vector<std::unique_ptr<WalBackend>> clients;
  for (int c = 0; c < kClients; ++c) {
    WalBackendConfig cfg;
    cfg.queue_name = "wal-client-" + std::to_string(c);
    cfg.commit_threshold = 1;
    cfg.shard_count = 4;
    cfg.parallelism = 2;
    clients.push_back(std::make_unique<WalBackend>(services, cfg));
  }
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&clients, c] {
      for (int i = 0; i < 6; ++i) {
        const std::string object =
            "wal" + std::to_string(c) + "/f" + std::to_string(i);
        clients[static_cast<std::size_t>(c)]->store(
            file_unit(object, 1, "payload-" + object));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  env.clock().drain();
  for (auto& client : clients) client->quiesce();
  env.clock().drain();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(clients[static_cast<std::size_t>(c)]->committed_count(), 6u);
    for (int i = 0; i < 6; ++i) {
      const std::string object =
          "wal" + std::to_string(c) + "/f" + std::to_string(i);
      auto got = clients[static_cast<std::size_t>(c)]->read(object);
      ASSERT_TRUE(got.has_value()) << object;
      EXPECT_EQ(*got->data, "payload-" + object) << object;
    }
  }
}

}  // namespace
