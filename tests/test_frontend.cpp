// The million-client front door: service-side 503 throttling in the cloud
// fabric (backoff math, the charge() gate, billing bit-identity), the
// per-tenant capacity model, the Frontend admission controller, and the
// open-loop workload generators that drive the frontend benches.
#include <gtest/gtest.h>

#include <thread>

#include "cloudprov/frontend/frontend.hpp"
#include "cloudprov/session.hpp"
#include "workloads/openloop.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
using namespace provcloud::workloads;
namespace aws = provcloud::aws;
namespace sim = provcloud::sim;
namespace util = provcloud::util;

FlushUnit file_unit(const std::string& object, std::uint32_t version,
                    const std::string& data) {
  FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = PnodeKind::kFile;
  u.data = util::make_shared_bytes(data);
  u.records = {make_text_record("TYPE", "file"),
               make_text_record("NAME", object)};
  return u;
}

// --- backoff math (pure function) ---

TEST(ThrottleBackoffTest, DoublesUpToTheCap) {
  aws::ThrottleConfig cfg;
  cfg.backoff_base = 10 * sim::kMillisecond;
  cfg.backoff_cap = 1 * sim::kSecond;
  // Zero jitter draw pins the result to the lower "equal jitter" edge:
  // exactly half the pre-jitter delay.
  EXPECT_EQ(aws::throttle_backoff_delay(1, cfg, 0), 5 * sim::kMillisecond);
  EXPECT_EQ(aws::throttle_backoff_delay(2, cfg, 0), 10 * sim::kMillisecond);
  EXPECT_EQ(aws::throttle_backoff_delay(3, cfg, 0), 20 * sim::kMillisecond);
  // 10ms * 2^7 = 1.28s saturates at the 1s cap; so does every later retry.
  EXPECT_EQ(aws::throttle_backoff_delay(8, cfg, 0), 500 * sim::kMillisecond);
  EXPECT_EQ(aws::throttle_backoff_delay(40, cfg, 0), 500 * sim::kMillisecond);
  // Attempt 0 is treated as the first retry.
  EXPECT_EQ(aws::throttle_backoff_delay(0, cfg, 0),
            aws::throttle_backoff_delay(1, cfg, 0));
}

TEST(ThrottleBackoffTest, EqualJitterStaysWithinTheWindow) {
  aws::ThrottleConfig cfg;
  cfg.backoff_base = 10 * sim::kMillisecond;
  cfg.backoff_cap = 1 * sim::kSecond;
  util::Rng rng(99);
  for (std::uint32_t attempt = 1; attempt <= 10; ++attempt) {
    const sim::SimTime full = std::min<sim::SimTime>(
        cfg.backoff_base << (attempt - 1), cfg.backoff_cap);
    for (int i = 0; i < 32; ++i) {
      const std::uint64_t draw = rng.next_u64();
      const sim::SimTime d = aws::throttle_backoff_delay(attempt, cfg, draw);
      EXPECT_GE(d, full / 2) << "attempt " << attempt;
      EXPECT_LE(d, full) << "attempt " << attempt;
      // Pure function of (attempt, cfg, draw): replays bit-identically.
      EXPECT_EQ(d, aws::throttle_backoff_delay(attempt, cfg, draw));
    }
  }
}

// --- the charge() admission gate ---

TEST(ThrottleGateTest, StormChargesIdleBackoffThenRelents) {
  aws::CloudEnv env(51, aws::ConsistencyConfig::strong());
  aws::ThrottleConfig cfg;
  cfg.probability = 1.0;  // every attempt throttled: must exhaust retries
  cfg.max_attempts = 3;
  env.set_service_throttle("sdb", cfg);

  env.charge("sdb", "GetAttributes", 100, 100);

  // Three backoffs, then the service relents -- the request is admitted and
  // billed exactly once; the 503 round trips themselves are free.
  EXPECT_EQ(env.metrics().counter("throttle.injected").value(), 3u);
  EXPECT_EQ(env.metrics().counter("throttle.sdb.injected").value(), 3u);
  EXPECT_EQ(env.metrics().counter("throttle.sdb.relented").value(), 1u);
  EXPECT_EQ(env.meter().snapshot().calls("sdb"), 1u);

  // The waits (pre-jitter 10/20/40ms, jittered to at least half) are honest
  // elapsed time, attributed to "idle" on the caller's timeline.
  const sim::SimTime idle =
      env.metrics().counter("idle.throttle_backoff_us").value();
  EXPECT_GE(idle, 35 * sim::kMillisecond);
  EXPECT_LE(idle, 70 * sim::kMillisecond);
  EXPECT_EQ(env.elapsed_by_service()["idle"], idle);
}

TEST(ThrottleGateTest, SeededRunsReplayBitIdentically) {
  auto run = [] {
    aws::CloudEnv env(52, aws::ConsistencyConfig::strong());
    aws::ThrottleConfig cfg;
    cfg.probability = 0.5;
    env.set_service_throttle("s3", cfg);
    for (int i = 0; i < 50; ++i) env.charge("s3", "PUT", 1024, 0);
    return std::pair(env.elapsed_time(),
                     env.metrics().counter("throttle.injected").value());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_GT(a.second, 0u);  // a 50% storm over 50 requests throttles some
}

TEST(ThrottleGateTest, DisabledThrottleLeavesBillingBitIdentical) {
  // Configure-then-clear must be indistinguishable from never-configured:
  // same bill, same elapsed time, and the shared RNG stream in the same
  // state (the disabled gate draws nothing).
  aws::CloudEnv toggled(53, aws::ConsistencyConfig::strong());
  aws::CloudEnv fresh(53, aws::ConsistencyConfig::strong());
  aws::ThrottleConfig cfg;
  cfg.probability = 1.0;
  toggled.set_service_throttle("sdb", cfg);
  toggled.set_service_throttle("sdb", aws::ThrottleConfig{});  // zeroed: off

  for (int i = 0; i < 20; ++i) {
    toggled.charge("sdb", "PutAttributes", 256, 0);
    fresh.charge("sdb", "PutAttributes", 256, 0);
  }
  EXPECT_EQ(toggled.busy_time(), fresh.busy_time());
  EXPECT_EQ(toggled.elapsed_time(), fresh.elapsed_time());
  EXPECT_EQ(toggled.metrics().counter("throttle.injected").value(), 0u);
  EXPECT_EQ(toggled.rng_below(1u << 30), fresh.rng_below(1u << 30));
}

TEST(ThrottleGateTest, RateTriggerThrottlesAboveProvisionedRate) {
  aws::CloudEnv env(54, aws::ConsistencyConfig::strong());
  aws::ThrottleConfig cfg;
  cfg.rate_per_sec = 2;
  cfg.burst = 2;
  cfg.backoff_base = 100 * sim::kMillisecond;
  env.set_service_throttle("sqs", cfg);

  // Three requests at the same virtual instant against a 2-token burst:
  // the third is rate-throttled, backs off (the wait itself refills the
  // bucket), and is eventually admitted -- all three are billed.
  for (int i = 0; i < 3; ++i) env.charge("sqs", "SendMessage", 64, 0);
  EXPECT_GT(env.metrics().counter("throttle.sqs.injected").value(), 0u);
  EXPECT_EQ(env.meter().snapshot().calls("sqs"), 3u);
  EXPECT_GT(env.elapsed_by_service()["idle"], 0);
}

// --- per-tenant capacity model ---

TEST(TokenBucketTest, StartsFullThenRefillsFromVirtualTime) {
  TenantQuota quota;
  quota.rate_per_sec = 10.0;
  quota.burst = 20.0;
  TokenBucket bucket(quota, 0);
  EXPECT_DOUBLE_EQ(bucket.available(0), 20.0);
  EXPECT_TRUE(bucket.try_consume(20.0, 0));

  sim::SimTime retry_after = 0;
  EXPECT_FALSE(bucket.try_consume(1.0, 0, &retry_after));
  // One unit refills in 1/10 s of virtual time.
  EXPECT_GT(retry_after, 0);
  EXPECT_LE(retry_after, sim::kSecond / 10 + 1);

  // After the advertised wait the same consume succeeds.
  EXPECT_TRUE(bucket.try_consume(1.0, retry_after));
  // A long idle banks at most the burst capacity.
  EXPECT_DOUBLE_EQ(bucket.available(100 * sim::kSecond), 20.0);
}

TEST(TokenBucketTest, RetryAfterScalesWithTheDeficit) {
  TenantQuota quota;
  quota.rate_per_sec = 100.0;
  quota.burst = 10.0;
  TokenBucket bucket(quota, 0);
  ASSERT_TRUE(bucket.try_consume(10.0, 0));
  sim::SimTime small = 0, large = 0;
  EXPECT_FALSE(bucket.try_consume(1.0, 0, &small));
  EXPECT_FALSE(bucket.try_consume(8.0, 0, &large));
  EXPECT_GT(large, small);
}

// --- the Frontend admission controller ---

FrontendConfig ample_config() {
  FrontendConfig cfg;
  cfg.default_quota.rate_per_sec = 1e6;
  cfg.default_quota.burst = 1e6;
  return cfg;
}

TEST(FrontendTest, AdmitsWithinQuotaAndCompletesCloses) {
  aws::CloudEnv env(61, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDb, services);
  Frontend frontend(*backend, env, ample_config());

  std::vector<FrontendTicket> tickets;
  for (int i = 0; i < 6; ++i) {
    const std::string tenant = i % 2 == 0 ? "alice" : "bob";
    auto offered = frontend.offer(
        tenant, file_unit("t-" + tenant + "/f" + std::to_string(i), 1, "data"));
    ASSERT_TRUE(offered.has_value()) << i;
    tickets.push_back(*offered);
    EXPECT_FALSE(tickets.back().done());
  }
  EXPECT_EQ(frontend.queued(), 6u);
  ASSERT_TRUE(frontend.sync_all().has_value());
  EXPECT_EQ(frontend.queued(), 0u);
  EXPECT_EQ(frontend.in_flight(), 0u);
  for (const FrontendTicket& t : tickets) {
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(t.ok());
  }
  const auto alice = frontend.tenant_stats("alice");
  EXPECT_EQ(alice.offered, 3u);
  EXPECT_EQ(alice.completed, 3u);
  EXPECT_EQ(alice.throttled, 0u);
  EXPECT_EQ(env.metrics().counter("frontend.completed").value(), 6u);
  // Per-tenant close latency was recorded for every completion.
  const auto* latency =
      env.metrics().find_histogram("tenant.alice.close_latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 3u);
}

TEST(FrontendTest, CapacityRefusalIsTypedWithRetryAfter) {
  aws::CloudEnv env(62, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDb, services);
  FrontendConfig cfg;
  cfg.default_quota.rate_per_sec = 1.0;
  cfg.default_quota.burst = 2.0;  // exactly one 256-byte close (cost 2)
  Frontend frontend(*backend, env, cfg);

  const FlushUnit unit = file_unit("t0/a", 1, std::string(256, 'x'));
  ASSERT_TRUE(frontend.offer("t0", unit).has_value());
  auto refused = frontend.offer("t0", unit);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.error().code, BackendErrorCode::kThrottled);
  EXPECT_GT(refused.error().retry_after, 0);
  const auto stats = frontend.tenant_stats("t0");
  EXPECT_EQ(stats.throttled, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  // Only the offending tenant pays: a different tenant is admitted.
  EXPECT_TRUE(frontend.offer("t1", unit).has_value());
}

TEST(FrontendTest, FullQueueRejectsUnderRejectPolicy) {
  aws::CloudEnv env(63, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDb, services);
  FrontendConfig cfg = ample_config();
  cfg.tenant_queue_cap = 2;
  Frontend frontend(*backend, env, cfg);

  const FlushUnit unit = file_unit("t0/a", 1, "x");
  ASSERT_TRUE(frontend.offer("t0", unit).has_value());
  ASSERT_TRUE(frontend.offer("t0", unit).has_value());
  auto refused = frontend.offer("t0", unit);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.error().code, BackendErrorCode::kThrottled);
  EXPECT_EQ(refused.error().retry_after, 0);  // retry at the caller's pace
  EXPECT_EQ(frontend.tenant_stats("t0").rejected, 1u);
  EXPECT_EQ(frontend.queued(), 2u);
}

TEST(FrontendTest, ShedOldestAdmitsTheNewAndShedsTheOldest) {
  aws::CloudEnv env(64, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDb, services);
  FrontendConfig cfg = ample_config();
  cfg.tenant_queue_cap = 2;
  cfg.overflow = OverflowPolicy::kShedOldest;
  Frontend frontend(*backend, env, cfg);

  auto first = frontend.offer("t0", file_unit("t0/a", 1, "x"));
  auto second = frontend.offer("t0", file_unit("t0/b", 1, "x"));
  auto third = frontend.offer("t0", file_unit("t0/c", 1, "x"));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(third.has_value());  // admitted: the oldest was shed instead

  EXPECT_TRUE(first->done());
  EXPECT_FALSE(first->ok());
  EXPECT_EQ(first->error().code, BackendErrorCode::kThrottled);
  EXPECT_EQ(frontend.tenant_stats("t0").shed, 1u);
  EXPECT_EQ(frontend.queued(), 2u);

  ASSERT_TRUE(frontend.sync_all().has_value());
  EXPECT_TRUE(second->ok());
  EXPECT_TRUE(third->ok());
  EXPECT_EQ(frontend.tenant_stats("t0").completed, 2u);
}

TEST(FrontendTest, AdmissionOffIsAPureMultiplexer) {
  aws::CloudEnv env(65, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDb, services);
  FrontendConfig cfg;
  cfg.admission_control = false;
  cfg.tenant_queue_cap = 1;           // ignored
  cfg.default_quota.rate_per_sec = 0.001;  // ignored
  cfg.default_quota.burst = 0.001;
  Frontend frontend(*backend, env, cfg);

  for (int i = 0; i < 50; ++i)
    ASSERT_TRUE(
        frontend.offer("t0", file_unit("t0/f" + std::to_string(i), 1, "x"))
            .has_value())
        << i;
  ASSERT_TRUE(frontend.sync_all().has_value());
  const auto stats = frontend.tenant_stats("t0");
  EXPECT_EQ(stats.accepted, 50u);
  EXPECT_EQ(stats.completed, 50u);
  EXPECT_EQ(stats.throttled, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(FrontendTest, ConcurrentOffersAreThreadSafe) {
  // offer() is the tenant-thread entry point; hammer it from several
  // threads while the driver thread stays out, then drain on the driver
  // thread. TSan (the repo's test_* glob runs under it in CI) checks the
  // admission path's locking and the ticket phase publication.
  aws::CloudEnv env(66, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDb, services);
  FrontendConfig cfg = ample_config();
  cfg.tenant_queue_cap = 256;
  Frontend frontend(*backend, env, cfg);

  constexpr int kThreads = 4;
  constexpr int kOffers = 50;
  std::vector<std::thread> threads;
  std::atomic<int> accepted{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&frontend, &accepted, t] {
      const std::string tenant = "tenant-" + std::to_string(t);
      for (int i = 0; i < kOffers; ++i) {
        auto offered = frontend.offer(
            tenant,
            file_unit(tenant + "/f" + std::to_string(i), 1, "payload"));
        if (offered.has_value())
          accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(accepted.load(), kThreads * kOffers);

  ASSERT_TRUE(frontend.sync_all().has_value());
  std::uint64_t completed = 0;
  for (const std::string& tenant : frontend.tenants())
    completed += frontend.tenant_stats(tenant).completed;
  EXPECT_EQ(completed, static_cast<std::uint64_t>(kThreads * kOffers));
}

// --- open-loop workload generators ---

TEST(OpenLoopTest, ArrivalsReplayBitIdenticallyAndStaySorted) {
  OpenLoopOptions options;
  options.seed = 77;
  options.tenants = 4;
  options.arrivals_per_sec = 200.0;
  options.duration = 5 * sim::kSecond;
  const auto a = open_loop_arrivals(options);
  const auto b = open_loop_arrivals(options);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    if (i > 0) EXPECT_GE(a[i].at, a[i - 1].at);
    EXPECT_LT(a[i].at, options.duration);
    EXPECT_LT(a[i].tenant, options.tenants);
  }
  // ~200/s over 5s: the Poisson count concentrates around 1000.
  EXPECT_GT(a.size(), 700u);
  EXPECT_LT(a.size(), 1300u);
}

TEST(OpenLoopTest, ZipfianSkewConcentratesOnHotTenants) {
  OpenLoopOptions options;
  options.seed = 78;
  options.tenants = 8;
  options.zipf_s = 1.2;
  options.arrivals_per_sec = 500.0;
  options.duration = 10 * sim::kSecond;
  std::vector<std::size_t> counts(options.tenants, 0);
  for (const TenantArrival& arrival : open_loop_arrivals(options))
    counts[arrival.tenant] += 1;
  // Tenant 0 is the hottest by construction; the coldest trails it by far.
  EXPECT_GT(counts.front(), 2 * counts.back());
  EXPECT_GT(counts.front(), counts[1]);
}

TEST(OpenLoopTest, StormArrivalsLandInsideTheWindow) {
  OpenLoopOptions options;
  options.seed = 79;
  options.tenants = 4;
  options.arrivals_per_sec = 40.0;
  options.duration = 10 * sim::kSecond;
  options.storm_tenant = 2;
  options.storm_rate = 400.0;
  options.storm_start = 4 * sim::kSecond;
  options.storm_duration = 2 * sim::kSecond;

  std::size_t storm_inside = 0, storm_total = 0;
  for (const TenantArrival& arrival : open_loop_arrivals(options)) {
    if (arrival.tenant != options.storm_tenant) continue;
    storm_total += 1;
    if (arrival.at >= options.storm_start &&
        arrival.at < options.storm_start + options.storm_duration)
      storm_inside += 1;
  }
  // ~800 storm closes inside a 2s window vs ~100 base arrivals across 10s:
  // the overwhelming majority of the storm tenant's closes sit in-window.
  EXPECT_GT(storm_total, 500u);
  EXPECT_GT(storm_inside * 10, storm_total * 8);
}

TEST(OpenLoopTest, SynthesizedClosesAreWellFormed) {
  const FlushUnit unit = make_tenant_close(3, 17, 512);
  EXPECT_EQ(unit.object, "t3/o17");
  EXPECT_EQ(unit.version, 1u);
  ASSERT_NE(unit.data, nullptr);
  EXPECT_EQ(unit.data->size(), 512u);
  EXPECT_FALSE(unit.records.empty());
}

}  // namespace
