#include <gtest/gtest.h>

#include "sim/latency.hpp"

namespace {

using namespace provcloud::sim;

TEST(LatencyTest, ZeroBytesIsJustOverhead) {
  LatencyModel model;
  provcloud::util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const SimTime t = model.sample(rng, 0, 0);
    EXPECT_GE(t, model.config().request_overhead_min);
    EXPECT_LE(t, model.config().request_overhead_max);
  }
}

TEST(LatencyTest, TransferScalesWithBytes) {
  LatencyConfig cfg;
  cfg.request_overhead_min = cfg.request_overhead_max = 0;
  cfg.upload_bytes_per_sec = 1024 * 1024;
  LatencyModel model(cfg);
  provcloud::util::Rng rng(2);
  EXPECT_EQ(model.sample(rng, 1024 * 1024, 0), kSecond);
  EXPECT_EQ(model.sample(rng, 512 * 1024, 0), kSecond / 2);
}

TEST(LatencyTest, DownloadUsesDownlinkRate) {
  LatencyConfig cfg;
  cfg.request_overhead_min = cfg.request_overhead_max = 0;
  cfg.upload_bytes_per_sec = 1;
  cfg.download_bytes_per_sec = 2 * 1024 * 1024;
  LatencyModel model(cfg);
  provcloud::util::Rng rng(3);
  EXPECT_EQ(model.sample(rng, 0, 2 * 1024 * 1024), kSecond);
}

TEST(LatencyTest, DeterministicForSeed) {
  LatencyModel model;
  provcloud::util::Rng a(7), b(7);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(model.sample(a, 100, 100), model.sample(b, 100, 100));
}

}  // namespace
