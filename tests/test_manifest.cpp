// The manifest-backed ancestry read path: snapshot formats, the catalog
// commit point, reader equivalence with the pure SimpleDB scatter walk,
// time travel, AncestorCache behavior, the roll crash sweep, and the hints
// prefetcher consulting a shared AncestorCache.
//
// PROVCLOUD_SNAPSHOT_LAG (0..100, default 10) sets what percentage of the
// randomized workload is stored *after* the snapshot rolls -- the mutable
// tail the reader must serve via SimpleDB fallback. CI runs the suite at 0
// and 50.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cloudprov/hints.hpp"
#include "cloudprov/manifest/ancestor_cache.hpp"
#include "cloudprov/manifest/catalog.hpp"
#include "cloudprov/manifest/format.hpp"
#include "cloudprov/manifest/reader.hpp"
#include "cloudprov/manifest/writer.hpp"
#include "cloudprov/properties.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/serialize.hpp"
#include "pass/observer.hpp"
#include "util/require.hpp"
#include "workloads/compile.hpp"

namespace {

using namespace provcloud;
using namespace provcloud::cloudprov;
using namespace provcloud::cloudprov::manifest;
namespace pass = provcloud::pass;

/// Percentage of the workload stored after the roll (the mutable tail).
std::size_t snapshot_lag_percent() {
  if (const char* env = std::getenv("PROVCLOUD_SNAPSHOT_LAG")) {
    const long v = std::atol(env);
    if (v >= 0 && v <= 100) return static_cast<std::size_t>(v);
  }
  return 10;
}

/// Arch-2 world with a persistent observer, so a trace can be stored in two
/// parts (before and after a snapshot roll) without losing process state.
struct World {
  explicit World(std::size_t shards = 2, std::uint64_t seed = 71)
      : env(seed, aws::ConsistencyConfig::strong()), services(env) {
    auto sdb = std::make_unique<SdbBackend>(
        services, SdbBackendConfig{.shard_count = shards});
    topology = sdb->topology();
    backend = std::move(sdb);
    observer = std::make_unique<pass::PassObserver>(
        [this](const pass::FlushUnit& u) { backend->store(u); });
  }

  void store(const pass::SyscallTrace& t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end && i < t.size(); ++i)
      observer->apply(t[i]);
    if (end >= t.size()) observer->finish();
    settle();
  }

  void settle() {
    env.clock().drain();
    backend->quiesce();
    env.clock().drain();
  }

  ManifestList roll(std::size_t block_entries = 8) {
    ManifestWriter writer(services, topology,
                          ManifestWriterConfig{.block_entries = block_entries});
    auto rolled = writer.roll();
    EXPECT_TRUE(rolled.has_value());
    return rolled.has_value() ? *rolled : ManifestList{};
  }

  /// Every stored (object, version), from the coordinator view.
  std::vector<pass::ObjectVersion> all_ids() {
    std::vector<pass::ObjectVersion> ids;
    for (const std::string& domain : topology->domains())
      for (const std::string& item : services.sdb.peek_item_names(domain)) {
        std::string object;
        std::uint32_t version = 0;
        if (parse_item_name(item, object, version))
          ids.push_back({object, version});
      }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  aws::CloudEnv env;
  CloudServices services;
  std::unique_ptr<ProvenanceBackend> backend;
  std::shared_ptr<const DomainTopology> topology;
  std::unique_ptr<pass::PassObserver> observer;
};

/// a -> p1 -> b -> p2 -> c derivation chain.
pass::SyscallTrace chain_trace() {
  pass::SyscallTrace t;
  t.push_back(pass::ev_exec(1, "/bin/p1"));
  t.push_back(pass::ev_write(1, "a", "1"));
  t.push_back(pass::ev_close(1, "a"));
  t.push_back(pass::ev_exec(2, "/bin/p2"));
  t.push_back(pass::ev_read(2, "a"));
  t.push_back(pass::ev_write(2, "b", "2"));
  t.push_back(pass::ev_close(2, "b"));
  t.push_back(pass::ev_exec(3, "/bin/p3"));
  t.push_back(pass::ev_read(3, "b"));
  t.push_back(pass::ev_write(3, "c", "3"));
  t.push_back(pass::ev_close(3, "c"));
  return t;
}

/// The tail a late process appends after the roll.
pass::SyscallTrace late_trace() {
  pass::SyscallTrace t;
  t.push_back(pass::ev_exec(4, "/bin/p4"));
  t.push_back(pass::ev_read(4, "c"));
  t.push_back(pass::ev_write(4, "e", "late"));
  t.push_back(pass::ev_close(4, "e"));
  return t;
}

bool ancestry_equal(const AncestryResult& a, const AncestryResult& b) {
  if (a.missing != b.missing) return false;
  if (a.graph.nodes().size() != b.graph.nodes().size()) return false;
  for (const auto& [id, node] : a.graph.nodes()) {
    const AncestryNode* other = b.graph.find(id);
    if (other == nullptr || node.kind != other->kind ||
        node.records != other->records || node.ancestors != other->ancestors)
      return false;
  }
  return true;
}

// ---------------------------------------------------------------- format --

TEST(ManifestFormatTest, BlockRoundTripsArbitraryBytes) {
  std::vector<ManifestEntry> entries;
  entries.push_back(
      {{"a", 1},
       {pass::make_text_record("TYPE", "file"),
        pass::make_text_record("ENV", std::string("A=1\nB=\0x\n", 9)),
        pass::make_xref_record("INPUT", {"proc/1/1", 1})}});
  entries.push_back(
      {{"b", 3}, {pass::make_xref_record("PREV", {"b", 2})}});
  const std::string raw = encode_block(entries);
  const auto decoded = decode_block(raw);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].id, (pass::ObjectVersion{"a", 1}));
  EXPECT_EQ((*decoded)[0].records, entries[0].records);
  EXPECT_EQ((*decoded)[1].records, entries[1].records);
}

TEST(ManifestFormatTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(decode_block("not a block").has_value());
  EXPECT_FALSE(decode_block("").has_value());
  EXPECT_FALSE(decode_manifest_list("PMB1\n").has_value());
  // A truncated but well-prefixed object must not decode.
  std::vector<ManifestEntry> entries;
  entries.push_back({{"a", 1}, {pass::make_text_record("TYPE", "file")}});
  const std::string raw = encode_block(entries);
  EXPECT_FALSE(decode_block(raw.substr(0, raw.size() - 3)).has_value());
}

TEST(ManifestFormatTest, ListRoundTripAndPruning) {
  ManifestList list;
  list.snapshot_id = 7;
  list.total_entries = 5;
  list.blocks.push_back({"snap-7/block-0", {"a", 1}, {"c", 2}, 3, 100});
  list.blocks.push_back({"snap-7/block-1", {"f", 1}, {"k", 9}, 2, 80});
  const auto decoded = decode_manifest_list(encode_manifest_list(list));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->snapshot_id, 7u);
  EXPECT_EQ(decoded->blocks.size(), 2u);
  EXPECT_EQ(decoded->blocks[1].max, (pass::ObjectVersion{"k", 9}));

  // min/max pruning: in-range ids map to their block, gaps and the space
  // above every range map to nothing.
  EXPECT_EQ(find_block(list, {"b", 1}), std::optional<std::size_t>{0});
  EXPECT_EQ(find_block(list, {"f", 1}), std::optional<std::size_t>{1});
  EXPECT_EQ(find_block(list, {"d", 1}), std::nullopt);  // gap between blocks
  EXPECT_EQ(find_block(list, {"z", 1}), std::nullopt);  // above all ranges
  EXPECT_EQ(find_block(list, {"a", 0}), std::nullopt);  // below all ranges
}

// --------------------------------------------------------------- catalog --

TEST(ManifestCatalogTest, CommitPointerSwapIsTheCommitPoint) {
  aws::CloudEnv env(5, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  Catalog catalog(services);
  catalog.ensure_domain();
  EXPECT_FALSE(catalog.current().has_value());
  EXPECT_EQ(catalog.next_snapshot_id(), 1u);

  const CatalogPointer p1{1, manifest_list_key(1), 10};
  ASSERT_TRUE(catalog.publish_history(p1).has_value());
  // History row alone commits nothing...
  EXPECT_FALSE(catalog.current().has_value());
  EXPECT_FALSE(catalog.history(1).has_value());
  // ...but burns the id: a later roll must never overwrite snap-1 objects.
  EXPECT_EQ(catalog.next_snapshot_id(), 2u);

  ASSERT_TRUE(catalog.commit(p1).has_value());
  ASSERT_TRUE(catalog.current().has_value());
  EXPECT_EQ(catalog.current()->snapshot_id, 1u);
  EXPECT_TRUE(catalog.history(1).has_value());

  // An uncommitted successor stays invisible to history().
  const CatalogPointer p2{2, manifest_list_key(2), 12};
  ASSERT_TRUE(catalog.publish_history(p2).has_value());
  EXPECT_FALSE(catalog.history(2).has_value());
  EXPECT_EQ(catalog.next_snapshot_id(), 3u);
}

// ------------------------------------------------------------- read path --

TEST(ManifestReadPathTest, EquivalenceOnRandomizedWorkload) {
  const std::size_t lag = snapshot_lag_percent();
  workloads::WorkloadOptions wo;
  wo.seed = 17;
  wo.count_scale = 0.15;
  wo.size_scale = 0.02;
  const pass::SyscallTrace trace = workloads::CompileWorkload().generate(wo);
  const std::size_t cut = trace.size() * (100 - lag) / 100;

  World w(/*shards=*/4);
  w.store(trace, 0, cut);
  const ManifestList list = w.roll();
  EXPECT_GT(list.total_entries, 0u);
  w.store(trace, cut, trace.size());

  auto scatter = make_sdb_query_engine(w.services, w.topology);
  auto through_manifest = make_manifest_query_engine(w.services, w.topology);

  // Walk a spread of roots over everything stored (snapshot and tail) and
  // demand bit-identical answers from both engines.
  const std::vector<pass::ObjectVersion> ids = w.all_ids();
  ASSERT_FALSE(ids.empty());
  const std::size_t step = std::max<std::size_t>(1, ids.size() / 12);
  std::size_t walks = 0;
  const auto before = w.env.meter().snapshot();
  std::uint64_t scatter_sdb = 0, manifest_sdb = 0;
  for (std::size_t i = 0; i < ids.size(); i += step) {
    const auto s0 = w.env.meter().snapshot();
    const AncestryResult want =
        scatter->ancestry(ids[i].object, ids[i].version);
    const auto s1 = w.env.meter().snapshot();
    const AncestryResult got =
        through_manifest->ancestry(ids[i].object, ids[i].version);
    const auto s2 = w.env.meter().snapshot();
    scatter_sdb += s1.diff(s0).calls("sdb");
    manifest_sdb += s2.diff(s1).calls("sdb");
    EXPECT_TRUE(ancestry_equal(got, want)) << ids[i].to_string();
    ++walks;
  }
  (void)before;
  // The manifest path replaces per-node SimpleDB reads with block GETs; its
  // SimpleDB traffic is at most the catalog read per walk plus tail
  // fallbacks, never more than the scatter walk plus the catalog reads.
  EXPECT_LE(manifest_sdb, scatter_sdb + walks);
  if (lag == 0) EXPECT_LT(manifest_sdb, scatter_sdb);
}

TEST(ManifestReadPathTest, TailFallbackServesPostSnapshotWrites) {
  World w(/*shards=*/2);
  const pass::SyscallTrace part1 = chain_trace();
  w.store(part1, 0, part1.size());
  w.roll();
  const pass::SyscallTrace part2 = late_trace();
  w.store(part2, 0, part2.size());

  auto scatter = make_sdb_query_engine(w.services, w.topology);
  auto engine = make_manifest_query_engine(w.services, w.topology);
  // "e" lives above the snapshot; its ancestors live inside it.
  const AncestryResult got = engine->ancestry("e", 1);
  EXPECT_TRUE(ancestry_equal(got, scatter->ancestry("e", 1)));
  EXPECT_TRUE(got.missing.empty());
  EXPECT_NE(got.graph.find({"a", 1}), nullptr);
}

TEST(ManifestReadPathTest, NoSnapshotFallsBackToPureScatter) {
  World w(/*shards=*/2);
  const pass::SyscallTrace t = chain_trace();
  w.store(t, 0, t.size());
  auto scatter = make_sdb_query_engine(w.services, w.topology);
  auto engine = make_manifest_query_engine(w.services, w.topology);
  EXPECT_TRUE(
      ancestry_equal(engine->ancestry("c", 1), scatter->ancestry("c", 1)));
}

// ------------------------------------------------------------ time travel --

TEST(ManifestTimeTravelTest, AsOfServesTheOldSnapshotOnly) {
  World w(/*shards=*/2);
  const pass::SyscallTrace part1 = chain_trace();
  w.store(part1, 0, part1.size());
  const ManifestList snap1 = w.roll();
  const pass::SyscallTrace part2 = late_trace();
  w.store(part2, 0, part2.size());
  const ManifestList snap2 = w.roll();
  EXPECT_GT(snap2.snapshot_id, snap1.snapshot_id);

  auto engine = make_manifest_query_engine(w.services, w.topology);
  ASSERT_TRUE(engine->supports_time_travel());

  // The old snapshot serves its own contents completely...
  const AncestryResult old_c =
      engine->ancestry_as_of(snap1.snapshot_id, "c", 1);
  EXPECT_TRUE(old_c.missing.empty());
  EXPECT_NE(old_c.graph.find({"a", 1}), nullptr);
  // ...and refuses to leak the future: "e" did not exist at snapshot 1.
  const AncestryResult old_e =
      engine->ancestry_as_of(snap1.snapshot_id, "e", 1);
  EXPECT_EQ(old_e.graph.nodes().size(), 0u);
  ASSERT_EQ(old_e.missing.size(), 1u);
  EXPECT_EQ(old_e.missing[0], (pass::ObjectVersion{"e", 1}));
  // Snapshot 2 has it.
  EXPECT_NE(engine->ancestry_as_of(snap2.snapshot_id, "e", 1)
                .graph.find({"e", 1}),
            nullptr);
  // A never-committed snapshot id yields only a missing root.
  const AncestryResult bogus = engine->ancestry_as_of(99, "c", 1);
  EXPECT_EQ(bogus.graph.nodes().size(), 0u);
  ASSERT_EQ(bogus.missing.size(), 1u);
}

TEST(ManifestTimeTravelTest, ScatterEngineHasNoTimeTravel) {
  World w;
  auto scatter = make_sdb_query_engine(w.services, w.topology);
  EXPECT_FALSE(scatter->supports_time_travel());
  EXPECT_THROW(scatter->ancestry_as_of(1, "c", 1), util::LogicError);
}

// --------------------------------------------------------- ancestor cache --

TEST(AncestorCacheTest, LruEvictsAndCountsStats) {
  AncestorCache cache(2);
  cache.set_snapshot(1);
  cache.insert({"a", 1}, {pass::make_text_record("TYPE", "file")});
  cache.insert({"b", 1}, {});
  EXPECT_NE(cache.find({"a", 1}), nullptr);  // touches "a": "b" is now LRU
  cache.insert({"c", 1}, {});                // evicts "b"
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find({"b", 1}), nullptr);
  EXPECT_NE(cache.find({"a", 1}), nullptr);
  EXPECT_EQ(cache.stats().insertions, 3u);
  EXPECT_GE(cache.stats().misses, 1u);
}

TEST(AncestorCacheTest, ForwardSnapshotRollKeepsFragments) {
  World w(/*shards=*/2);
  const pass::SyscallTrace part1 = chain_trace();
  w.store(part1, 0, part1.size());
  w.roll();

  auto reader = std::make_shared<ManifestReader>(w.services, w.topology);
  ASSERT_TRUE(reader->open_current().has_value());
  auto engine = make_manifest_query_engine(w.services, reader);
  engine->ancestry("c", 1);
  const std::size_t warmed = reader->cache()->size();
  const std::uint64_t hits_before = reader->cache()->stats().hits;
  EXPECT_GT(warmed, 0u);

  // A new snapshot lands. Fragments are per-version and immutable, so the
  // forward rebind keeps them all, and the overlap of the next walk is
  // served from cache -- the hit-rate regression this guards.
  const pass::SyscallTrace part2 = late_trace();
  w.store(part2, 0, part2.size());
  w.roll();
  const AncestryResult after = engine->ancestry("e", 1);
  EXPECT_EQ(reader->cache()->stats().invalidations, 0u);
  EXPECT_GE(reader->cache()->size(), warmed);
  EXPECT_GT(reader->cache()->stats().hits, hits_before);
  EXPECT_NE(after.graph.find({"e", 1}), nullptr);
  EXPECT_NE(after.graph.find({"a", 1}), nullptr);
}

TEST(AncestorCacheTest, TimeTravelRebindDropsNewerFragments) {
  AncestorCache cache(8);
  cache.set_snapshot(1);
  cache.insert({"a", 1}, {pass::make_text_record("TYPE", "file")});
  cache.set_snapshot(2);
  cache.insert({"b", 1}, {});
  // Binding an older snapshot drops only fragments decoded beyond it.
  cache.set_snapshot(1);
  EXPECT_NE(cache.find({"a", 1}), nullptr);
  EXPECT_EQ(cache.find({"b", 1}), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

// ------------------------------------------------------------ crash sweep --

TEST(TableOneManifestRollTest, CrashSweepArch2) {
  PropertyCheckOptions options;
  options.shard_count = 2;
  const ManifestRollReport report =
      check_manifest_roll(Architecture::kS3SimpleDb, options);
  EXPECT_TRUE(report.crash_safe());
  EXPECT_GT(report.crash_scenarios, 0u);
  EXPECT_GT(report.crashed_rolls, 0u);
  EXPECT_EQ(report.violations, 0u);
}

TEST(TableOneManifestRollTest, CrashSweepArch3) {
  const ManifestRollReport report =
      check_manifest_roll(Architecture::kS3SimpleDbSqs, PropertyCheckOptions{});
  EXPECT_TRUE(report.crash_safe());
  EXPECT_GT(report.crashed_rolls, 0u);
  EXPECT_EQ(report.violations, 0u);
}

// ------------------------------------------------------------------ hints --

TEST(ManifestHintsTest, PrefetcherConsultsSharedAncestorCache) {
  World w(/*shards=*/1);
  const pass::SyscallTrace t = chain_trace();
  w.store(t, 0, t.size());
  w.roll();

  auto reader = std::make_shared<ManifestReader>(w.services, w.topology);
  ASSERT_TRUE(reader->open_current().has_value());
  auto engine = make_manifest_query_engine(w.services, reader);
  engine->ancestry("c", 1);  // warms the shared cache with c's fragment

  ProvenanceCache cache(w.services, PrefetchConfig{}, w.topology);
  cache.attach_ancestor_cache(reader->cache());
  const auto before = w.env.meter().snapshot();
  EXPECT_NE(cache.read("c"), nullptr);
  const auto diff = w.env.meter().snapshot().diff(before);
  // Hint mining served c's provenance from the AncestorCache: no per-item
  // GetAttributes was issued for it.
  EXPECT_GE(cache.stats().ancestor_cache_hits, 1u);
  EXPECT_EQ(diff.calls("sdb", "GetAttributes"), 0u);
}

}  // namespace
