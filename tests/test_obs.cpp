// Observability layer: histogram bucket math and percentile bounds, span
// nesting with monotonic virtual timestamps, the disabled-tracer
// bit-identity contract (traced and untraced runs produce the same bill
// and the same elapsed time), and concurrent-session tracing (rides the
// TSan job via the test glob).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "aws/common/env.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/session.hpp"
#include "cloudprov/wal_backend.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace {

using namespace provcloud;
using namespace provcloud::cloudprov;
namespace obs = provcloud::obs;
namespace sim = provcloud::sim;

// --- histogram bucket math ---------------------------------------------

TEST(HistogramTest, BucketMathRoundTrips) {
  // Every probe value must fall inside the inclusive range of its bucket,
  // and bucket edges must tile the axis without gaps or overlap.
  const std::vector<std::uint64_t> probes = {
      0,   1,    2,    7,     8,     9,      15,      16,     17,
      63,  64,   100,  1000,  4095,  4096,   123456,  1ull << 31,
      (1ull << 31) + 12345,   1ull << 62,    ~0ull - 1, ~0ull};
  for (const std::uint64_t v : probes) {
    const std::size_t i = obs::Histogram::bucket_index(v);
    ASSERT_LT(i, obs::Histogram::kBucketCount) << v;
    EXPECT_LE(obs::Histogram::bucket_lower(i), v) << v;
    EXPECT_GE(obs::Histogram::bucket_upper(i), v) << v;
    if (v < obs::Histogram::kSubBuckets) {
      EXPECT_EQ(obs::Histogram::bucket_lower(i), v);  // exact below 8
      EXPECT_EQ(obs::Histogram::bucket_upper(i), v);
    }
  }
  for (std::size_t i = 1; i < obs::Histogram::kBucketCount; ++i)
    EXPECT_EQ(obs::Histogram::bucket_lower(i),
              obs::Histogram::bucket_upper(i - 1) + 1)
        << "gap/overlap at bucket " << i;
}

TEST(HistogramTest, PercentilesMatchSortedReferenceWithinBound) {
  // Deterministic pseudo-random samples across several magnitudes.
  obs::Histogram h;
  std::vector<std::uint64_t> values;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x % (i % 3 == 0 ? 1000 : 10000000));
  }
  for (const std::uint64_t v : values) h.record(v);
  std::sort(values.begin(), values.end());

  EXPECT_EQ(h.count(), values.size());
  EXPECT_EQ(h.min(), values.front());
  EXPECT_EQ(h.max(), values.back());
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::size_t rank = std::min<std::size_t>(
        values.size() - 1,
        q <= 0.0 ? 0
                 : static_cast<std::size_t>(
                       std::ceil(q * static_cast<double>(values.size()))) -
                       1);
    const std::uint64_t expected = values[rank];
    const std::uint64_t estimate = h.quantile(q);
    // The documented bound: true <= estimate <= true * 9/8 + 1.
    EXPECT_GE(estimate, expected) << "q=" << q;
    EXPECT_LE(estimate, expected + expected / obs::Histogram::kSubBuckets + 1)
        << "q=" << q;
  }
}

TEST(HistogramTest, EmptyAndSingleValue) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  h.record(42);
  EXPECT_EQ(h.quantile(0.0), 42u);
  EXPECT_EQ(h.quantile(0.5), 42u);
  EXPECT_EQ(h.quantile(1.0), 42u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
}

// --- registry ----------------------------------------------------------

TEST(MetricsRegistryTest, InternsAndDumps) {
  obs::MetricsRegistry r;
  obs::Counter& c = r.counter("a.counter");
  c.add(3);
  EXPECT_EQ(&c, &r.counter("a.counter"));  // stable reference
  r.gauge("a.gauge").set(-7);
  r.histogram("a.hist").record(100);

  EXPECT_EQ(r.find_counter("a.counter")->value(), 3u);
  EXPECT_EQ(r.find_gauge("a.gauge")->value(), -7);
  EXPECT_EQ(r.find_histogram("a.hist")->count(), 1u);
  EXPECT_EQ(r.find_counter("absent"), nullptr);

  const std::string dump = r.dump();
  EXPECT_NE(dump.find("a.counter"), std::string::npos);
  EXPECT_NE(dump.find("a.gauge"), std::string::npos);
  EXPECT_NE(dump.find("a.hist"), std::string::npos);
}

// --- tracer ------------------------------------------------------------

pass::FlushUnit file_unit(const std::string& object, std::uint32_t version) {
  pass::FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = pass::PnodeKind::kFile;
  u.data = util::make_shared_bytes("data-" + object);
  u.records = {pass::make_text_record("TYPE", "file"),
               pass::make_text_record("NAME", object)};
  return u;
}

/// A small session workload against Arch 2; returns the sealed env.
void run_small_workload(aws::CloudEnv& env, std::size_t closes = 6) {
  CloudServices services(env);
  SdbBackend backend(services, SdbBackendConfig{});
  auto session =
      backend.open_session(SessionConfig{.client_id = "c0", .max_group = 3});
  for (std::size_t i = 0; i < closes; ++i)
    session->submit(file_unit("f" + std::to_string(i), 1));
  ASSERT_TRUE(session->sync().has_value());
  env.clock().drain();
  backend.quiesce();
}

TEST(TracerTest, SpansNestWithMonotonicVirtualTimestampsPerTrack) {
  aws::CloudEnv env(7, aws::ConsistencyConfig::strong());
  env.set_tracing(true);
  run_small_workload(env);

  const std::vector<obs::Tracer::Event> events = env.tracer().events();
  ASSERT_FALSE(events.empty());
  // Ledger charges fire at event time, so their virtual timestamps are
  // monotonic per track in emission order; every event fits within virtual
  // time that actually elapsed.
  std::map<int, sim::SimTime> last_charge_ts;
  std::map<int, std::vector<const obs::Tracer::Event*>> by_track;
  const sim::SimTime horizon = env.clock().now() + env.elapsed_time();
  for (const obs::Tracer::Event& e : events) {
    if (e.ph != 'X') continue;
    EXPECT_LE(e.ts + e.dur, horizon) << e.name;
    by_track[e.tid].push_back(&e);
    if (e.cat != "ledger") continue;
    auto [it, fresh] = last_charge_ts.emplace(e.tid, e.ts);
    if (!fresh) {
      EXPECT_GE(e.ts, it->second) << "track " << e.tid << " charge " << e.name;
      it->second = std::max(it->second, e.ts);
    }
  }
  // Spans emit at close (carrying their start ts), so emission order is not
  // ts order -- but on any one track, two complete events must either nest
  // or be disjoint for the trace to render as a flame.
  for (const auto& [tid, track_events] : by_track) {
    for (std::size_t i = 0; i < track_events.size(); ++i) {
      for (std::size_t k = i + 1; k < track_events.size(); ++k) {
        const obs::Tracer::Event& a = *track_events[i];
        const obs::Tracer::Event& b = *track_events[k];
        const bool disjoint =
            a.ts + a.dur <= b.ts || b.ts + b.dur <= a.ts;
        const bool a_in_b = b.ts <= a.ts && a.ts + a.dur <= b.ts + b.dur;
        const bool b_in_a = a.ts <= b.ts && b.ts + b.dur <= a.ts + a.dur;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "track " << tid << ": " << a.name << " [" << a.ts << ","
            << a.ts + a.dur << ") vs " << b.name << " [" << b.ts << ","
            << b.ts + b.dur << ")";
      }
    }
  }
  // The instrumented layers all reported in.
  const auto has = [&events](const char* name) {
    for (const obs::Tracer::Event& e : events)
      if (e.name == name) return true;
    return false;
  };
  EXPECT_TRUE(has("session.submit"));
  EXPECT_TRUE(has("session.sync"));
  EXPECT_TRUE(has("flush"));
}

TEST(TracerTest, ChromeJsonIsWellFormedAndEscaped) {
  obs::Tracer tracer;
  sim::SimClock clock;
  sim::LatencyLedger ledger;
  tracer.bind(&clock, &ledger);
  tracer.set_enabled(true);
  int anchor = 0;
  tracer.name_track(&anchor, "quote\"back\\slash");
  tracer.complete(&anchor, "ev\nname", "cat", 10, 5,
                  {obs::trace_arg("k", std::string_view("v\"w")),
                   obs::trace_arg("n", std::uint64_t{9})});

  const std::string json = tracer.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("ev\\nname"), std::string::npos);
  EXPECT_NE(json.find("\"n\":9"), std::string::npos);
  // Balanced braces/brackets outside strings => structurally sound.
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(TracerTest, DisabledTracerIsBitIdenticalToEnabled) {
  aws::CloudEnv off(2009, aws::ConsistencyConfig::strong());
  off.set_tracing(false);  // explicit: the CI trace-on job sets PROVCLOUD_TRACE
  aws::CloudEnv on(2009, aws::ConsistencyConfig::strong());
  on.set_tracing(true);
  run_small_workload(off);
  run_small_workload(on);

  EXPECT_EQ(off.tracer().event_count(), 0u);
  EXPECT_GT(on.tracer().event_count(), 0u);

  // Same elapsed virtual time, same busy time, same service split, and the
  // same bill, line for line: tracing observes, never perturbs.
  EXPECT_EQ(off.elapsed_time(), on.elapsed_time());
  EXPECT_EQ(off.busy_time(), on.busy_time());
  EXPECT_EQ(off.elapsed_by_service(), on.elapsed_by_service());
  const sim::MeterSnapshot a = off.meter().snapshot();
  const sim::MeterSnapshot b = on.meter().snapshot();
  ASSERT_EQ(a.keys(), b.keys());
  for (const auto& key : a.keys()) {
    EXPECT_EQ(a.calls(key.first, key.second), b.calls(key.first, key.second));
    EXPECT_EQ(a.bytes_in(key.first, key.second),
              b.bytes_in(key.first, key.second));
    EXPECT_EQ(a.bytes_out(key.first, key.second),
              b.bytes_out(key.first, key.second));
  }
  EXPECT_EQ(a.storage, b.storage);
}

TEST(TracerTest, SessionWorkloadPopulatesMetrics) {
  aws::CloudEnv env(11, aws::ConsistencyConfig::strong());
  run_small_workload(env, /*closes=*/6);

  // Metrics are always-on: no tracing was enabled, yet every close landed
  // in the latency histogram and the daemon accounted its flushes.
  const obs::Histogram* close =
      env.metrics().find_histogram("close.latency_us");
  ASSERT_NE(close, nullptr);
  EXPECT_EQ(close->count(), 6u);
  EXPECT_GT(close->quantile(0.5), 0u);
  const obs::Histogram* group =
      env.metrics().find_histogram("daemon.group_size");
  ASSERT_NE(group, nullptr);
  EXPECT_GT(group->count(), 0u);
  std::uint64_t flushes = 0;
  for (const char* name : {"daemon.flush.group_full", "daemon.flush.deadline",
                           "daemon.flush.sync"}) {
    const obs::Counter* c = env.metrics().find_counter(name);
    ASSERT_NE(c, nullptr) << name;
    flushes += c->value();
  }
  EXPECT_EQ(flushes, group->count());
}

TEST(TracerTest, EventualConsistencyChargesVisibleIdleWaits) {
  // Arch 3 under eventual consistency: the WAL quiesce loop must wait out
  // SQS visibility/propagation, and that wait lands both on the ledger (as
  // "idle") and on the idle.* counters -- ROADMAP 5a made the virtual time
  // cost of waiting first-class.
  aws::CloudEnv env(2009, aws::ConsistencyConfig{});  // default = eventual
  CloudServices services(env);
  WalBackend backend(services, WalBackendConfig{});
  auto session =
      backend.open_session(SessionConfig{.client_id = "c0", .max_group = 2});
  for (std::size_t i = 0; i < 4; ++i)
    session->submit(file_unit("w" + std::to_string(i), 1));
  ASSERT_TRUE(session->sync().has_value());
  env.clock().drain();
  backend.quiesce();
  env.clock().drain();

  const auto by_service = env.elapsed_by_service();
  const auto idle = by_service.find("idle");
  const obs::Counter* vis =
      env.metrics().find_counter("idle.visibility_wait_us");
  const obs::Counter* wake =
      env.metrics().find_counter("idle.daemon_wakeup_us");
  if (vis != nullptr && vis->value() > 0) {
    // The quiesce loop really waited: its charges must be on the ledger.
    ASSERT_NE(wake, nullptr);
    ASSERT_NE(idle, by_service.end());
    EXPECT_GE(idle->second, vis->value() + wake->value());
  }
}

TEST(TracerTest, ConcurrentSessionsTraceSafely) {
  // Real threads submit through one traced env; the tracer's mutex and the
  // observer hooks must hold up under parallelism (TSan covers this file).
  aws::CloudEnv env(23, aws::ConsistencyConfig::strong());
  env.set_tracing(true);
  CloudServices services(env);
  SdbBackend backend(services, SdbBackendConfig{});

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&backend, t] {
      auto session = backend.open_session(
          SessionConfig{.client_id = "client-" + std::to_string(t),
                        .max_group = 3});
      for (int c = 0; c < 8; ++c)
        session->submit(
            file_unit("t" + std::to_string(t) + "/f" + std::to_string(c), 1));
      ASSERT_TRUE(session->sync().has_value());
    });
  }
  for (std::thread& t : threads) t.join();
  env.clock().drain();
  backend.quiesce();

  EXPECT_GT(env.tracer().event_count(), 0u);
  const obs::Histogram* close =
      env.metrics().find_histogram("close.latency_us");
  ASSERT_NE(close, nullptr);
  EXPECT_EQ(close->count(), kThreads * 8u);
  // The export stays loadable after concurrent recording.
  EXPECT_NE(env.tracer().to_chrome_json().find("\"traceEvents\""),
            std::string::npos);
}

}  // namespace
