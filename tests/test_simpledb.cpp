// SimpleDB simulator: data model, limits, idempotency, eventual
// consistency (section 2.2 of the paper).
#include <gtest/gtest.h>

#include "aws/common/env.hpp"
#include "aws/simpledb/simpledb.hpp"

namespace {

using namespace provcloud::aws;
namespace sim = provcloud::sim;

class SdbTest : public ::testing::Test {
 protected:
  SdbTest() : env_(1, ConsistencyConfig::strong()), sdb_(env_) {
    EXPECT_TRUE(sdb_.create_domain("d").has_value());
  }
  CloudEnv env_;
  SimpleDbService sdb_;
};

TEST_F(SdbTest, PutThenGetAttributes) {
  ASSERT_TRUE(sdb_.put_attributes("d", "foo_2",
                                  {{"input", "bar:2", false},
                                   {"type", "file", false}})
                  .has_value());
  auto got = sdb_.get_attributes("d", "foo_2");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->at("input").count("bar:2"), 1u);
  EXPECT_EQ(got->at("type").count("file"), 1u);
}

TEST_F(SdbTest, MultiValuedAttributes) {
  // "an item can have two phone attributes with different values."
  ASSERT_TRUE(sdb_.put_attributes("d", "item",
                                  {{"phone", "111", false},
                                   {"phone", "222", false}})
                  .has_value());
  auto got = sdb_.get_attributes("d", "item");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->at("phone").size(), 2u);
}

TEST_F(SdbTest, PutAttributesIsIdempotent) {
  const std::vector<SdbReplaceableAttribute> attrs = {
      {"input", "bar:2", false}, {"type", "file", false}};
  ASSERT_TRUE(sdb_.put_attributes("d", "i", attrs).has_value());
  ASSERT_TRUE(sdb_.put_attributes("d", "i", attrs).has_value());
  ASSERT_TRUE(sdb_.put_attributes("d", "i", attrs).has_value());
  auto got = sdb_.get_attributes("d", "i");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->at("input").size(), 1u);  // set semantics: no duplicates
  EXPECT_EQ(got->at("type").size(), 1u);
}

TEST_F(SdbTest, ReplaceDiscardsOldValues) {
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"v", "old", false}}).has_value());
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"v", "new", true}}).has_value());
  auto got = sdb_.get_attributes("d", "i");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->at("v").size(), 1u);
  EXPECT_EQ(got->at("v").count("new"), 1u);
}

TEST_F(SdbTest, GetMissingItemIsEmptyNotError) {
  auto got = sdb_.get_attributes("d", "nothing");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST_F(SdbTest, GetAttributesSubset) {
  ASSERT_TRUE(sdb_.put_attributes("d", "i",
                                  {{"a", "1", false}, {"b", "2", false}})
                  .has_value());
  auto got = sdb_.get_attributes("d", "i", {"a"});
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 1u);
  EXPECT_EQ(got->count("a"), 1u);
}

TEST_F(SdbTest, MissingDomainErrors) {
  auto put = sdb_.put_attributes("nope", "i", {{"a", "1", false}});
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kNoSuchDomain);
}

TEST_F(SdbTest, CreateDomainIsIdempotent) {
  ASSERT_TRUE(sdb_.create_domain("d").has_value());
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"a", "1", false}}).has_value());
  ASSERT_TRUE(sdb_.create_domain("d").has_value());
  // Existing data untouched.
  EXPECT_FALSE(sdb_.get_attributes("d", "i")->empty());
}

TEST_F(SdbTest, ValueOverOneKbRejected) {
  auto put =
      sdb_.put_attributes("d", "i", {{"a", std::string(1025, 'x'), false}});
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kAttributeTooLarge);
  // Exactly 1 KB passes.
  EXPECT_TRUE(sdb_.put_attributes("d", "i", {{"a", std::string(1024, 'x'), false}})
                  .has_value());
}

TEST_F(SdbTest, NameOverOneKbRejected) {
  auto put =
      sdb_.put_attributes("d", "i", {{std::string(1025, 'n'), "v", false}});
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kAttributeTooLarge);
}

TEST_F(SdbTest, MoreThanHundredAttributesPerCallRejected) {
  std::vector<SdbReplaceableAttribute> attrs;
  for (int i = 0; i < 101; ++i)
    attrs.push_back({"a" + std::to_string(i), "v", false});
  auto put = sdb_.put_attributes("d", "i", attrs);
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kTooManyAttributes);
  attrs.resize(100);
  EXPECT_TRUE(sdb_.put_attributes("d", "i", attrs).has_value());
}

TEST_F(SdbTest, ItemCapAt256Pairs) {
  std::vector<SdbReplaceableAttribute> batch;
  for (int i = 0; i < 100; ++i)
    batch.push_back({"a" + std::to_string(i), "v", false});
  ASSERT_TRUE(sdb_.put_attributes("d", "i", batch).has_value());
  batch.clear();
  for (int i = 100; i < 200; ++i)
    batch.push_back({"a" + std::to_string(i), "v", false});
  ASSERT_TRUE(sdb_.put_attributes("d", "i", batch).has_value());
  batch.clear();
  for (int i = 200; i < 257; ++i)
    batch.push_back({"a" + std::to_string(i), "v", false});
  auto put = sdb_.put_attributes("d", "i", batch);  // would reach 257
  ASSERT_FALSE(put.has_value());
  EXPECT_EQ(put.error().code, AwsErrorCode::kTooManyAttributes);
}

TEST_F(SdbTest, DeleteSpecificValue) {
  ASSERT_TRUE(sdb_.put_attributes("d", "i",
                                  {{"a", "1", false}, {"a", "2", false}})
                  .has_value());
  ASSERT_TRUE(sdb_.delete_attributes("d", "i", {{"a", "1"}}).has_value());
  auto got = sdb_.get_attributes("d", "i");
  EXPECT_EQ(got->at("a").count("1"), 0u);
  EXPECT_EQ(got->at("a").count("2"), 1u);
}

TEST_F(SdbTest, DeleteWholeAttribute) {
  ASSERT_TRUE(sdb_.put_attributes("d", "i",
                                  {{"a", "1", false}, {"b", "2", false}})
                  .has_value());
  ASSERT_TRUE(sdb_.delete_attributes("d", "i", {{"a", ""}}).has_value());
  auto got = sdb_.get_attributes("d", "i");
  EXPECT_EQ(got->count("a"), 0u);
  EXPECT_EQ(got->count("b"), 1u);
}

TEST_F(SdbTest, DeleteWholeItem) {
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"a", "1", false}}).has_value());
  ASSERT_TRUE(sdb_.delete_attributes("d", "i").has_value());
  EXPECT_TRUE(sdb_.get_attributes("d", "i")->empty());
  EXPECT_EQ(sdb_.item_count("d"), 0u);
}

TEST_F(SdbTest, DeleteIsIdempotent) {
  // "running DeleteAttributes multiple times on the same item or attributes
  // will not generate an error."
  ASSERT_TRUE(sdb_.delete_attributes("d", "never-existed").has_value());
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"a", "1", false}}).has_value());
  ASSERT_TRUE(sdb_.delete_attributes("d", "i", {{"a", "1"}}).has_value());
  ASSERT_TRUE(sdb_.delete_attributes("d", "i", {{"a", "1"}}).has_value());
}

TEST_F(SdbTest, QueryEmptyExpressionReturnsEverything) {
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(sdb_.put_attributes("d", "item" + std::to_string(i),
                                    {{"a", "1", false}})
                    .has_value());
  auto q = sdb_.query("d", "");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->item_names.size(), 5u);
}

TEST_F(SdbTest, QueryPagination) {
  for (int i = 0; i < 30; ++i)
    ASSERT_TRUE(sdb_.put_attributes("d", "item" + std::to_string(100 + i),
                                    {{"a", "1", false}})
                    .has_value());
  auto page1 = sdb_.query("d", "['a' = '1']", 12);
  ASSERT_TRUE(page1.has_value());
  EXPECT_EQ(page1->item_names.size(), 12u);
  ASSERT_TRUE(page1->next_token.has_value());
  auto page2 = sdb_.query("d", "['a' = '1']", 12, *page1->next_token);
  ASSERT_TRUE(page2.has_value());
  EXPECT_EQ(page2->item_names.size(), 12u);
  auto page3 = sdb_.query("d", "['a' = '1']", 12, *page2->next_token);
  ASSERT_TRUE(page3.has_value());
  EXPECT_EQ(page3->item_names.size(), 6u);
  EXPECT_FALSE(page3->next_token.has_value());
}

TEST_F(SdbTest, QueryWithAttributesReturnsPairs) {
  ASSERT_TRUE(sdb_.put_attributes("d", "i1",
                                  {{"type", "file", false}, {"n", "1", false}})
                  .has_value());
  ASSERT_TRUE(sdb_.put_attributes("d", "i2", {{"type", "proc", false}})
                  .has_value());
  auto q = sdb_.query_with_attributes("d", "['type' = 'file']");
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->items.size(), 1u);
  EXPECT_EQ(q->items[0].name, "i1");
  EXPECT_EQ(q->items[0].attributes.at("n").count("1"), 1u);
}

TEST_F(SdbTest, QueryWithAttributesFilter) {
  ASSERT_TRUE(sdb_.put_attributes("d", "i1",
                                  {{"type", "file", false},
                                   {"secret", "x", false}})
                  .has_value());
  auto q = sdb_.query_with_attributes("d", "['type' = 'file']", {"type"});
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->items.size(), 1u);
  EXPECT_EQ(q->items[0].attributes.count("secret"), 0u);
}

TEST_F(SdbTest, InvalidExpressionErrors) {
  auto q = sdb_.query("d", "[broken");
  ASSERT_FALSE(q.has_value());
  EXPECT_EQ(q.error().code, AwsErrorCode::kInvalidQueryExpression);
}

TEST_F(SdbTest, SelectCountAndRows) {
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(sdb_.put_attributes("d", "row" + std::to_string(i),
                                    {{"kind", i % 2 ? "odd" : "even", false}})
                    .has_value());
  auto count = sdb_.select("select count(*) from d where kind = 'even'");
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(count->count.value(), 2u);

  auto rows = sdb_.select("select * from d where kind = 'odd'");
  ASSERT_TRUE(rows.has_value());
  EXPECT_EQ(rows->items.size(), 2u);
}

TEST_F(SdbTest, DeleteDomainRemovesData) {
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"a", "1", false}}).has_value());
  ASSERT_TRUE(sdb_.delete_domain("d").has_value());
  auto got = sdb_.get_attributes("d", "i");
  ASSERT_FALSE(got.has_value());
  EXPECT_EQ(got.error().code, AwsErrorCode::kNoSuchDomain);
}

TEST_F(SdbTest, StorageGauge) {
  ASSERT_TRUE(sdb_.put_attributes("d", "ab", {{"cd", "efgh", false}})
                  .has_value());
  // item name (2) + attr name (2) + value (4).
  EXPECT_EQ(sdb_.stored_bytes(), 8u);
  EXPECT_EQ(env_.meter().snapshot().storage_bytes("sdb"), 8u);
}

TEST_F(SdbTest, BillingCountsOps) {
  const auto before = env_.meter().snapshot();
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"aa", "bbb", false}}).has_value());
  auto q = sdb_.query("d", "['aa' = 'bbb']");
  ASSERT_TRUE(q.has_value());
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("sdb", "PutAttributes"), 1u);
  EXPECT_EQ(diff.bytes_in("sdb", "PutAttributes"), 5u);
  EXPECT_EQ(diff.calls("sdb", "Query"), 1u);
}

// --- eventual consistency ---

class SdbEventualTest : public ::testing::Test {
 protected:
  static ConsistencyConfig slow() {
    ConsistencyConfig c;
    c.replicas = 4;
    c.propagation_min = sim::kSecond;
    c.propagation_max = 5 * sim::kSecond;
    return c;
  }
  SdbEventualTest() : env_(3, slow()), sdb_(env_) {
    EXPECT_TRUE(sdb_.create_domain("d").has_value());
  }
  CloudEnv env_;
  SimpleDbService sdb_;
};

TEST_F(SdbEventualTest, InsertMayBeInvisibleToImmediateQuery) {
  // "An item inserted might not be returned in a query that is run
  // immediately after the insert."
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"a", "1", false}}).has_value());
  int missed = 0;
  for (int i = 0; i < 100; ++i) {
    auto q = sdb_.query("d", "['a' = '1']");
    ASSERT_TRUE(q.has_value());
    if (q->item_names.empty()) ++missed;
  }
  EXPECT_GT(missed, 0);
  env_.clock().drain();
  auto q = sdb_.query("d", "['a' = '1']");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->item_names.size(), 1u);
}

TEST_F(SdbEventualTest, ConvergesAfterWindow) {
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"a", "old", true}}).has_value());
  env_.clock().drain();
  ASSERT_TRUE(sdb_.put_attributes("d", "i", {{"a", "new", true}}).has_value());
  env_.clock().drain();
  for (int i = 0; i < 50; ++i) {
    auto got = sdb_.get_attributes("d", "i");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->at("a").count("new"), 1u);
    EXPECT_EQ(got->at("a").count("old"), 0u);
  }
}

}  // namespace
