#include <gtest/gtest.h>

#include "sim/failure.hpp"

namespace {

using provcloud::sim::CrashError;
using provcloud::sim::FailureInjector;

TEST(FailureTest, UnarmedPointsNeverThrow) {
  FailureInjector f;
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(f.crash_point("p"));
  EXPECT_EQ(f.hits("p"), 10u);
}

TEST(FailureTest, ArmedPointThrowsOnNthHit) {
  FailureInjector f;
  f.arm_crash("p", 3);
  EXPECT_NO_THROW(f.crash_point("p"));
  EXPECT_NO_THROW(f.crash_point("p"));
  EXPECT_THROW(f.crash_point("p"), CrashError);
}

TEST(FailureTest, CrashIsOneShot) {
  FailureInjector f;
  f.arm_crash("p");
  EXPECT_THROW(f.crash_point("p"), CrashError);
  EXPECT_NO_THROW(f.crash_point("p"));
}

TEST(FailureTest, CrashErrorCarriesPointName) {
  FailureInjector f;
  f.arm_crash("the.exact.point");
  try {
    f.crash_point("the.exact.point");
    FAIL();
  } catch (const CrashError& e) {
    EXPECT_EQ(e.point(), "the.exact.point");
  }
}

TEST(FailureTest, ArmingIsRelativeToCurrentHits) {
  FailureInjector f;
  f.crash_point("p");
  f.crash_point("p");
  f.arm_crash("p", 1);  // next hit
  EXPECT_THROW(f.crash_point("p"), CrashError);
}

TEST(FailureTest, DisarmCancels) {
  FailureInjector f;
  f.arm_crash("p");
  f.disarm("p");
  EXPECT_NO_THROW(f.crash_point("p"));
}

TEST(FailureTest, DisarmUnknownPointIsNoop) {
  FailureInjector f;
  EXPECT_NO_THROW(f.disarm("never-seen"));
}

TEST(FailureTest, ObservedPointsInFirstHitOrder) {
  FailureInjector f;
  f.crash_point("b");
  f.crash_point("a");
  f.crash_point("b");
  f.crash_point("c");
  EXPECT_EQ(f.observed_points(),
            (std::vector<std::string>{"b", "a", "c"}));
}

TEST(FailureTest, ResetClearsEverything) {
  FailureInjector f;
  f.crash_point("p");
  f.arm_crash("q");
  f.reset();
  EXPECT_EQ(f.hits("p"), 0u);
  EXPECT_TRUE(f.observed_points().empty());
  EXPECT_NO_THROW(f.crash_point("q"));
}

TEST(FailureTest, IndependentPoints) {
  FailureInjector f;
  f.arm_crash("a");
  EXPECT_NO_THROW(f.crash_point("b"));
  EXPECT_THROW(f.crash_point("a"), CrashError);
}

}  // namespace
