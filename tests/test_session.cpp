// The session-oriented close path: submit/sync tickets, cross-close group
// commit, typed per-close errors, and crash-mid-group recovery.
#include <gtest/gtest.h>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/serialize.hpp"
#include "cloudprov/session.hpp"
#include "cloudprov/wal_backend.hpp"
#include "sim/failure.hpp"
#include "util/md5.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace pass = provcloud::pass;
namespace sim = provcloud::sim;
namespace util = provcloud::util;

FlushUnit file_unit(const std::string& object, std::uint32_t version,
                    const std::string& data,
                    std::vector<ProvenanceRecord> records = {}) {
  FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = PnodeKind::kFile;
  u.data = util::make_shared_bytes(data);
  if (records.empty())
    records = {make_text_record("TYPE", "file"),
               make_text_record("NAME", object)};
  u.records = std::move(records);
  return u;
}

// --- ticket lifecycle ---

TEST(SessionTest, TicketsPendUntilTheBarrier) {
  aws::CloudEnv env(11, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto session = backend->open_session(SessionConfig{.max_group = 4});

  std::vector<Ticket> tickets;
  for (int i = 0; i < 3; ++i)
    tickets.push_back(
        session->submit(file_unit("f" + std::to_string(i), 1, "x")));
  EXPECT_EQ(session->pending(), 3u);
  for (const Ticket& t : tickets) {
    EXPECT_TRUE(t.valid());
    EXPECT_FALSE(t.done());  // the group has not flushed
  }
  EXPECT_EQ(tickets[0].id(), 1u);
  EXPECT_EQ(tickets[2].id(), 3u);

  ASSERT_TRUE(session->sync().has_value());
  EXPECT_EQ(session->pending(), 0u);
  EXPECT_EQ(session->submitted(), 3u);
  for (const Ticket& t : tickets) {
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(t.ok());
  }
  // Durable for real, not just ticked: the reads verify.
  for (int i = 0; i < 3; ++i) {
    auto got = backend->read("f" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_TRUE(got->verified);
  }
}

TEST(SessionTest, FullGroupFlushesWithoutExplicitSync) {
  aws::CloudEnv env(12, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto session = backend->open_session(SessionConfig{.max_group = 2});
  const Ticket a = session->submit(file_unit("a", 1, "x"));
  EXPECT_FALSE(a.done());
  const Ticket b = session->submit(file_unit("b", 1, "y"));  // fills the group
  EXPECT_TRUE(a.done());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(session->pending(), 0u);
}

// --- group size 1 reproduces the per-close protocol bit-for-bit ---

TEST(SessionTest, GroupSizeOneMatchesStoreBitForBit) {
  for (const Architecture arch :
       {Architecture::kS3Only, Architecture::kS3SimpleDb,
        Architecture::kS3SimpleDbSqs}) {
    aws::CloudEnv store_env(11, aws::ConsistencyConfig::strong());
    CloudServices store_services(store_env);
    auto store_backend = make_backend(arch, store_services);
    aws::CloudEnv session_env(11, aws::ConsistencyConfig::strong());
    CloudServices session_services(session_env);
    auto session_backend = make_backend(arch, session_services);

    for (int i = 0; i < 6; ++i)
      store_backend->store(file_unit("f" + std::to_string(i), 1, "payload"));
    auto session = session_backend->open_session(SessionConfig{});
    for (int i = 0; i < 6; ++i)
      session->submit(file_unit("f" + std::to_string(i), 1, "payload"));
    ASSERT_TRUE(session->sync().has_value());

    // Same requests, same billing, same elapsed time -- byte for byte the
    // pre-session protocol.
    const auto store_snap = store_env.meter().snapshot();
    const auto session_snap = session_env.meter().snapshot();
    EXPECT_EQ(store_snap.total_calls(), session_snap.total_calls())
        << to_string(arch);
    EXPECT_EQ(store_env.busy_time(), session_env.busy_time())
        << to_string(arch);
    EXPECT_EQ(store_env.elapsed_time(), session_env.elapsed_time())
        << to_string(arch);
  }
}

// --- per-architecture group-commit semantics ---

TEST(SessionTest, ArchOneSubmitsAreImmediateWhateverTheGroupSize) {
  // Arch 1's Table-1 properties rest on submit == store: the single-PUT
  // close is atomic, so sessions never hold its submits back.
  aws::CloudEnv env(13, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3Only, services);
  EXPECT_FALSE(backend->supports_group_commit());
  auto session = backend->open_session(SessionConfig{.max_group = 25});
  for (int i = 0; i < 3; ++i) {
    const Ticket t =
        session->submit(file_unit("f" + std::to_string(i), 1, "x"));
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(t.ok());
    EXPECT_EQ(session->pending(), 0u);
    EXPECT_TRUE(backend->read("f" + std::to_string(i)).has_value());
  }
}

TEST(SessionTest, ArchTwoGroupCommitCoalescesWriteRoundTrips) {
  const auto write_calls = [](std::size_t group_size) {
    aws::CloudEnv env(14, aws::ConsistencyConfig::strong());
    CloudServices services(env);
    auto backend = make_sdb_backend(services);
    auto session =
        backend->open_session(SessionConfig{.max_group = group_size});
    for (int i = 0; i < 25; ++i)
      session->submit(file_unit("f" + std::to_string(i), 1, "x"));
    EXPECT_TRUE(session->sync().has_value());
    for (int i = 0; i < 25; ++i) {
      auto got = backend->read("f" + std::to_string(i));
      EXPECT_TRUE(got.has_value() && got->verified) << i;
    }
    return env.meter().snapshot().calls("sdb", "BatchPutAttributes");
  };
  // 25 independent closes: one BatchPutAttributes round trip per group.
  EXPECT_EQ(write_calls(1), 25u);
  EXPECT_EQ(write_calls(25), 1u);
}

TEST(SessionTest, ArchTwoCausalWavesOrderIntraGroupAncestors) {
  // b derives from a, c from b, all in one group: the batch calls must go
  // out in causal waves so a crash between calls can never persist a
  // record whose intra-group ancestor was lost.
  aws::CloudEnv env(15, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto session = backend->open_session(SessionConfig{.max_group = 3});
  session->submit(file_unit("a", 1, "va"));
  session->submit(file_unit("b", 1, "vb",
                            {make_text_record("TYPE", "file"),
                             make_xref_record("INPUT", {"a", 1})}));
  session->submit(file_unit("c", 1, "vc",
                            {make_text_record("TYPE", "file"),
                             make_xref_record("INPUT", {"b", 1})}));
  ASSERT_TRUE(session->sync().has_value());
  // Three dependency levels -> three write waves even though all three
  // items share one shard domain.
  EXPECT_EQ(env.meter().snapshot().calls("sdb", "BatchPutAttributes"), 3u);
}

TEST(SessionTest, ArchTwoCrashBetweenWavesKeepsCausalOrdering) {
  aws::CloudEnv env(16, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto session = backend->open_session(SessionConfig{.max_group = 3});
  // Crash after the second wave's batch call: a and b written, c lost.
  env.failures().arm_crash("sdb.store.mid_putattrs", 2);
  session->submit(file_unit("a", 1, "va"));
  session->submit(file_unit("b", 1, "vb",
                            {make_text_record("TYPE", "file"),
                             make_xref_record("INPUT", {"a", 1})}));
  Ticket c;
  EXPECT_THROW(
      {
        c = session->submit(file_unit(
            "c", 1, "vc",
            {make_text_record("TYPE", "file"),
             make_xref_record("INPUT", {"b", 1})}));  // fills the group
      },
      sim::CrashError);
  env.clock().drain();
  // Whatever survived respects causality: b's ancestor a is stored; the
  // dependent c never made it without its own ancestors.
  EXPECT_TRUE(services.sdb.peek_item(kProvenanceDomain, "a:1").has_value());
  EXPECT_TRUE(services.sdb.peek_item(kProvenanceDomain, "b:1").has_value());
  EXPECT_FALSE(services.sdb.peek_item(kProvenanceDomain, "c:1").has_value());
}

TEST(SessionTest, DuplicateSubmitInOneGroupLaterCloseWins) {
  // The same (object, version) twice between barriers: duplicate item
  // names cannot share a batch call, and the later submit must win.
  aws::CloudEnv env(17, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto session = backend->open_session(SessionConfig{.max_group = 2});
  session->submit(file_unit("dup", 1, "first"));
  session->submit(file_unit("dup", 1, "second"));
  ASSERT_TRUE(session->sync().has_value());
  EXPECT_EQ(env.meter().snapshot().calls("sdb", "BatchPutAttributes"), 2u);
  auto got = backend->read("dup");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->verified);
  EXPECT_EQ(*got->data, "second");
}

// --- read-your-writes ---

TEST(SessionTest, ReadObservesUnsyncedSubmitsWithoutCloudCalls) {
  aws::CloudEnv env(31, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto session = backend->open_session(SessionConfig{.max_group = 8});

  const Ticket t = session->submit(file_unit("ryw", 1, "pending-data"));
  ASSERT_FALSE(t.done());
  const auto before = env.meter().snapshot();
  auto got = session->read("ryw");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got->data, "pending-data");
  EXPECT_EQ(got->version, 1u);
  EXPECT_EQ(got->retries, 0u);
  // Served from the in-flight queue: not a single cloud round trip.
  EXPECT_EQ(env.meter().snapshot().total_calls(), before.total_calls());

  // An object this session never wrote still takes the backend path.
  auto other = session->read("never-written", /*max_retries=*/2);
  EXPECT_FALSE(other.has_value());

  // After the barrier the same read flows through the backend, verified.
  ASSERT_TRUE(session->sync().has_value());
  auto durable = session->read("ryw");
  ASSERT_TRUE(durable.has_value());
  EXPECT_TRUE(durable->verified);
  EXPECT_EQ(*durable->data, "pending-data");
}

TEST(SessionTest, ReadFloorsStaleRepliesAtOwnDurableWrite) {
  // Eventual consistency, no propagation: the backend read path cannot see
  // the write yet, but the session's own durable write floors the answer --
  // a stale replica never rolls the session's view of its writes backwards.
  aws::CloudEnv env(32);
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto session = backend->open_session(SessionConfig{.max_group = 1});
  session->submit(file_unit("mine", 3, "v3"));
  ASSERT_TRUE(session->sync().has_value());

  // The raw backend read may fail or return stale state here; the session
  // read must succeed at the own version either way.
  auto own = session->read("mine", /*max_retries=*/2);
  ASSERT_TRUE(own.has_value());
  EXPECT_GE(own->version, 3u);
  EXPECT_EQ(*own->data, "v3");
}

// --- deadline-driven adaptive group flush ---

TEST(SessionTest, DeadlineExpiryFlushesAPartialGroup) {
  aws::CloudEnv env(33, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto session = backend->open_session(SessionConfig{
      .max_group = 8, .flush_deadline = 50 * sim::kMillisecond});

  const Ticket a = session->submit(file_unit("da", 1, "x"));
  const Ticket b = session->submit(file_unit("db", 1, "y"));
  EXPECT_FALSE(a.done());
  EXPECT_EQ(session->pending(), 2u);

  // The deadline wake flushes the partial group of 2; no barrier needed.
  env.clock().advance_by(50 * sim::kMillisecond);
  EXPECT_TRUE(a.done());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(env.meter().snapshot().calls("sdb", "BatchPutAttributes"), 1u);
  EXPECT_TRUE(backend->read("da").has_value());

  // The queued wait is charged to the closes as "idle" and surfaces in the
  // client's elapsed time at the barrier merge: deadline batching trades
  // elapsed time for round trips, visibly.
  ASSERT_TRUE(session->sync().has_value());
  const auto split = env.latency_ledger().elapsed_by_service();
  ASSERT_TRUE(split.count("idle"));
  EXPECT_GE(split.at("idle"), 50 * sim::kMillisecond);
}

TEST(SessionTest, SubmitsDuringAFlushJoinTheNextGroup) {
  // kivaloo-style: a submit landing while a flush is in flight must not
  // block and must not squeeze into the in-flight group.
  aws::CloudEnv env(34, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto s1 = backend->open_session(SessionConfig{.max_group = 2});
  auto s2 = backend->open_session(SessionConfig{.max_group = 2});
  s1->submit(file_unit("g1a", 1, "x"));
  s1->submit(file_unit("g1b", 1, "x"));  // fills and flushes group 1
  s2->submit(file_unit("g2a", 1, "x"));
  s2->submit(file_unit("g2b", 1, "x"));  // fills and flushes group 2
  ASSERT_TRUE(s1->sync().has_value());
  ASSERT_TRUE(s2->sync().has_value());
  EXPECT_EQ(env.meter().snapshot().calls("sdb", "BatchPutAttributes"), 2u);
}

TEST(SessionTest, CrashLandsMidDeadlineFlush) {
  // A deadline flush is protocol like any other: an injected client crash
  // during it propagates out of the clock advance that fired the wake, and
  // the group's tickets settle as kCrashed.
  aws::CloudEnv env(35, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  auto session = backend->open_session(SessionConfig{
      .max_group = 8, .flush_deadline = 20 * sim::kMillisecond});
  env.failures().arm_crash("sdb.store.between_prov_and_data");
  const Ticket t = session->submit(file_unit("doomed", 1, "x"));
  EXPECT_FALSE(t.done());
  EXPECT_THROW(env.clock().advance_by(20 * sim::kMillisecond),
               sim::CrashError);
  ASSERT_TRUE(t.done());
  EXPECT_EQ(t.error().code, BackendErrorCode::kCrashed);
  EXPECT_FALSE(session->sync().has_value());
}

// --- per-close errors carried by tickets, asserted on typed codes ---

/// A backend that fails exactly one close inside a batched commit, to
/// prove the session loses no per-close result.
class PoisonBackend final : public ProvenanceBackend {
 public:
  Architecture architecture() const override { return Architecture::kS3Only; }
  std::string name() const override { return "poison"; }
  std::unique_ptr<Session> do_open_session(SessionConfig config) override {
    return std::make_unique<Session>(*this, std::move(config), nullptr);
  }
  bool supports_group_commit() const override { return true; }
  void commit_group(const std::vector<TicketState*>& group,
                    sim::LatencyLedger*) override {
    for (TicketState* t : group) {
      t->done = true;
      if (t->unit.object == "poison")
        t->result = backend_error(BackendErrorCode::kServiceError,
                                  "injected per-close failure");
    }
  }
  BackendResult<ReadResult> read(const std::string&, std::uint32_t) override {
    return backend_error(BackendErrorCode::kUnsupported, "poison");
  }
  BackendResult<std::vector<pass::ProvenanceRecord>> get_provenance(
      const std::string&, std::uint32_t) override {
    return backend_error(BackendErrorCode::kUnsupported, "poison");
  }
  void recover() override {}
  PropertyClaims claims() const override { return {}; }
};

TEST(SessionTest, PerCloseFailureInsideAGroupIsNotLost) {
  PoisonBackend backend;
  auto session = backend.open_session(SessionConfig{.max_group = 3});
  const Ticket ok1 = session->submit(file_unit("fine", 1, "x"));
  const Ticket bad = session->submit(file_unit("poison", 1, "x"));
  const Ticket ok2 = session->submit(file_unit("alsofine", 1, "x"));
  EXPECT_TRUE(ok1.ok());
  EXPECT_TRUE(ok2.ok());
  ASSERT_TRUE(bad.done());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, BackendErrorCode::kServiceError);

  // The barrier reports the first failure since the last sync...
  const auto synced = session->sync();
  ASSERT_FALSE(synced.has_value());
  EXPECT_EQ(synced.error().code, BackendErrorCode::kServiceError);
  // ...and a clean interval syncs clean again.
  session->submit(file_unit("fine", 2, "y"));
  EXPECT_TRUE(session->sync().has_value());
}

TEST(SessionTest, DroppingAnUnsyncedSessionMarksTicketsCrashed) {
  aws::CloudEnv env(18, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_sdb_backend(services);
  Ticket abandoned;
  {
    auto session = backend->open_session(SessionConfig{.max_group = 8});
    abandoned = session->submit(file_unit("gone", 1, "x"));
    EXPECT_FALSE(abandoned.done());
  }
  ASSERT_TRUE(abandoned.done());
  EXPECT_FALSE(abandoned.ok());
  EXPECT_EQ(abandoned.error().code, BackendErrorCode::kCrashed);
  EXPECT_FALSE(services.sdb.peek_item(kProvenanceDomain, "gone:1").has_value());
}

// --- crash mid-group-commit, restart, recover ---

TEST(SessionTest, ArchTwoCrashMidGroupRecoversByOrphanScan) {
  aws::CloudEnv env(19, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  SdbBackend backend(services, SdbBackendConfig{});
  auto session = backend.open_session(SessionConfig{.max_group = 8});

  // The atomicity hole, group-wide: every provenance item of the group is
  // written, then the client dies before any data PUT.
  env.failures().arm_crash("sdb.store.between_prov_and_data");
  std::vector<Ticket> tickets;
  for (int i = 0; i < 7; ++i)
    tickets.push_back(
        session->submit(file_unit("f" + std::to_string(i), 1, "x")));
  EXPECT_THROW(session->sync(), sim::CrashError);
  for (const Ticket& t : tickets) {
    ASSERT_TRUE(t.done());
    EXPECT_FALSE(t.ok());
    EXPECT_EQ(t.error().code, BackendErrorCode::kCrashed);
  }
  env.clock().drain();
  EXPECT_EQ(services.sdb.peek_item_names(kProvenanceDomain).size(), 7u);

  // Restart: a fresh client over the same cloud state runs the remedial
  // orphan scan. Every orphan goes; nothing is double-deleted or left.
  SdbBackend restarted(services, SdbBackendConfig{});
  restarted.recover();
  EXPECT_EQ(restarted.last_recovery_orphans(), 7u);
  EXPECT_TRUE(services.sdb.peek_item_names(kProvenanceDomain).empty());
  // A second scan finds a clean state.
  restarted.recover();
  EXPECT_EQ(restarted.last_recovery_orphans(), 0u);
}

TEST(SessionTest, ArchThreeCrashMidGroupReplaysCommittedPrefixExactlyOnce) {
  aws::CloudEnv env(20, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackendConfig cfg;
  cfg.commit_threshold = 1;
  WalBackend backend(services, cfg);
  auto session = backend.open_session(SessionConfig{.max_group = 12});

  // Twelve closes in one group: the sealing commit records span two
  // SendMessageBatch calls (10 + 2). Crash after the first call lands --
  // ten closes are durable in the log, two are not.
  env.failures().arm_crash("wal.store.after_commit", 1);
  std::vector<Ticket> tickets;
  for (int i = 0; i < 11; ++i)
    tickets.push_back(session->submit(
        file_unit("f" + std::to_string(i), 1, "body" + std::to_string(i))));
  EXPECT_THROW(session->submit(file_unit("f11", 1, "body11")),
               sim::CrashError);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(tickets[i].ok()) << i;  // log durable before the crash
  }
  EXPECT_EQ(tickets[10].error().code, BackendErrorCode::kCrashed);

  // Restart: WAL replay via the commit daemon.
  backend.recover();
  backend.quiesce();
  env.clock().drain();
  backend.recover();

  // The committed prefix is applied exactly once (set semantics: replay
  // must not duplicate attributes)...
  for (int i = 0; i < 10; ++i) {
    const std::string object = "f" + std::to_string(i);
    auto obj = services.s3.peek(kDataBucket, object);
    ASSERT_TRUE(obj.has_value()) << object;
    EXPECT_EQ(*obj->data, "body" + std::to_string(i));
    auto item = services.sdb.peek_item(kProvenanceDomain, object + ":1");
    ASSERT_TRUE(item.has_value()) << object;
    EXPECT_EQ(item->at("TYPE").size(), 1u);
    EXPECT_EQ(item->at(kMd5Attribute).size(), 1u);
  }
  // ...and the uncommitted suffix never reaches a final home: no data
  // object, no provenance item -- no orphaned and no duplicated provenance.
  for (const char* object : {"f10", "f11"}) {
    EXPECT_FALSE(services.s3.peek(kDataBucket, object).has_value()) << object;
    EXPECT_FALSE(
        services.sdb.peek_item(kProvenanceDomain, std::string(object) + ":1")
            .has_value())
        << object;
  }
}

TEST(SessionTest, ArchThreeGroupLogRidesBatchedSends) {
  const auto sends = [](std::size_t group_size) {
    aws::CloudEnv env(21, aws::ConsistencyConfig::strong());
    CloudServices services(env);
    WalBackendConfig cfg;
    cfg.commit_threshold = 1000;  // keep the daemon out of the way
    WalBackend backend(services, cfg);
    auto session =
        backend.open_session(SessionConfig{.max_group = group_size});
    for (int i = 0; i < 10; ++i)
      session->submit(file_unit("f" + std::to_string(i), 1, "x"));
    EXPECT_TRUE(session->sync().has_value());
    const auto snap = env.meter().snapshot();
    return snap.calls("sqs", "SendMessage") +
           snap.calls("sqs", "SendMessageBatch");
  };
  // Per close: begin + pointer + provenance + md5 + commit = 5 sends each.
  // Grouped: the same records packed 10-per-call.
  const std::uint64_t per_close = sends(1);
  const std::uint64_t grouped = sends(10);
  EXPECT_GE(per_close, grouped * 5);
}

}  // namespace
