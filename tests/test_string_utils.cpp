#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/string_utils.hpp"

namespace {

using namespace provcloud::util;

TEST(SplitTest, Basics) {
  EXPECT_EQ(split("a;b;c", ';'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ';'), (std::vector<std::string>{""}));
  EXPECT_EQ(split(";", ';'), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("a;;c", ';'), (std::vector<std::string>{"a", "", "c"}));
}

TEST(JoinTest, InverseOfSplit) {
  const std::vector<std::string> parts = {"x", "", "zz", "q"};
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(StartsEndsTest, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(FormatBytesTest, UnitSelection) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(1024), "1.0KB");
  EXPECT_EQ(format_bytes(121u * 1024 * 1024 + 850u * 1024), "121.8MB");
  EXPECT_EQ(format_bytes(1ull << 30), "1.0GB");
}

TEST(FormatCountTest, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(31180), "31,180");
  EXPECT_EQ(format_count(1234567), "1,234,567");
}

TEST(FormatPercentTest, Basics) {
  EXPECT_EQ(format_percent(0.093), "9.3%");
  EXPECT_EQ(format_percent(0.322), "32.2%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(FieldEscapeTest, EscapesDelimiters) {
  const std::string hostile = "a;b=c,d%e\nf";
  const std::string escaped = field_escape(hostile);
  EXPECT_EQ(escaped.find(';'), std::string::npos);
  EXPECT_EQ(escaped.find('='), std::string::npos);
  EXPECT_EQ(escaped.find(','), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(field_unescape(escaped), hostile);
}

TEST(FieldEscapeTest, PlainStringsPassThrough) {
  EXPECT_EQ(field_escape("plain_string-123/path"), "plain_string-123/path");
}

class FieldEscapeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FieldEscapeRoundTrip, RandomBuffers) {
  provcloud::util::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    std::string buf;
    const std::size_t len = rng.next_below(80);
    for (std::size_t j = 0; j < len; ++j)
      buf.push_back(static_cast<char>(rng.next_below(256)));
    EXPECT_EQ(field_unescape(field_escape(buf)), buf);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FieldEscapeRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
