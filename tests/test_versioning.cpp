// Parameterized sweeps of the PASS versioning rules: version counts under
// read/write interleavings of varying width and depth.
#include <gtest/gtest.h>

#include <map>

#include "pass/observer.hpp"

namespace {

using namespace provcloud::pass;

struct Collector {
  std::map<std::pair<std::string, std::uint32_t>, FlushUnit> units;
  FlushSink sink() {
    return [this](const FlushUnit& u) { units[{u.object, u.version}] = u; };
  }
  std::uint32_t max_version(const std::string& object) const {
    std::uint32_t v = 0;
    for (const auto& [key, unit] : units)
      if (key.first == object) v = std::max(v, key.second);
    return v;
  }
};

// ---------------------------------------------------------------------------
// Sweep 1: N sequential writer processes each append + close one file.
// Every writer after the first must create a new version (different-writer
// rule), so max version == N and every version's content is the prefix.
// ---------------------------------------------------------------------------

class SequentialWriters : public ::testing::TestWithParam<int> {};

TEST_P(SequentialWriters, OneVersionPerWriter) {
  const int n = GetParam();
  Collector c;
  PassObserver obs(c.sink());
  std::string expected;
  for (int w = 1; w <= n; ++w) {
    const std::string chunk(4, static_cast<char>('a' + w % 26));
    expected += chunk;
    obs.apply(ev_write(static_cast<Pid>(w), "shared", chunk));
    obs.apply(ev_close(static_cast<Pid>(w), "shared"));
  }
  EXPECT_EQ(c.max_version("shared"), static_cast<std::uint32_t>(n));
  // The final version holds the full accumulated content.
  auto it = c.units.find({"shared", static_cast<std::uint32_t>(n)});
  ASSERT_NE(it, c.units.end());
  EXPECT_EQ(*it->second.data, expected);
  // Each version v > 1 carries a PREV link to v-1.
  for (std::uint32_t v = 2; v <= static_cast<std::uint32_t>(n); ++v) {
    auto unit = c.units.find({"shared", v});
    ASSERT_NE(unit, c.units.end());
    bool prev = false;
    for (const auto& r : unit->second.records)
      prev = prev || r == make_xref_record("PREV", {"shared", v - 1});
    EXPECT_TRUE(prev) << "version " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SequentialWriters,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

// ---------------------------------------------------------------------------
// Sweep 2: a single process writing K times with no intervening reads or
// closes never bumps the version.
// ---------------------------------------------------------------------------

class RepeatedWrites : public ::testing::TestWithParam<int> {};

TEST_P(RepeatedWrites, SameProcessSameVersion) {
  Collector c;
  PassObserver obs(c.sink());
  for (int i = 0; i < GetParam(); ++i)
    obs.apply(ev_write(1, "f", "x"));
  obs.apply(ev_close(1, "f"));
  EXPECT_EQ(c.max_version("f"), 1u);
  EXPECT_EQ(c.units.at({"f", 1}).data->size(),
            static_cast<std::size_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Depths, RepeatedWrites,
                         ::testing::Values(1, 2, 10, 100));

// ---------------------------------------------------------------------------
// Sweep 3: write-read-write cycles by one process: each read-back forces a
// process version bump and each write-after-read a file version bump, so D
// cycles produce file version D+1 and process version D+1.
// ---------------------------------------------------------------------------

class SelfCycles : public ::testing::TestWithParam<int> {};

TEST_P(SelfCycles, VersionsGrowLinearlyWithCycles) {
  const int depth = GetParam();
  Collector c;
  PassObserver obs(c.sink());
  obs.apply(ev_exec(1, "/bin/loop"));
  obs.apply(ev_write(1, "f", "0"));
  for (int d = 0; d < depth; ++d) {
    obs.apply(ev_read(1, "f"));
    obs.apply(ev_write(1, "f", std::to_string(d + 1)));
  }
  obs.apply(ev_close(1, "f"));
  EXPECT_EQ(c.max_version("f"), static_cast<std::uint32_t>(depth + 1));
  EXPECT_EQ(c.max_version("proc/1/1"), static_cast<std::uint32_t>(depth + 1));
  // Acyclicity: ancestors-first emission order was already checked by the
  // sink-less fuzz tests; here verify the chain structure end to end.
  auto top = c.units.find({"f", static_cast<std::uint32_t>(depth + 1)});
  ASSERT_NE(top, c.units.end());
  bool depends_on_latest_proc = false;
  for (const auto& r : top->second.records)
    depends_on_latest_proc =
        depends_on_latest_proc ||
        r == make_xref_record(
                 "INPUT", {"proc/1/1", static_cast<std::uint32_t>(depth + 1)});
  EXPECT_TRUE(depends_on_latest_proc);
}

INSTANTIATE_TEST_SUITE_P(Depths, SelfCycles, ::testing::Values(1, 2, 5, 12));

// ---------------------------------------------------------------------------
// Sweep 4: fan-in -- K producers write K inputs; one consumer reads all and
// writes a result. The consumer's process must carry exactly K INPUT
// records to the files (plus the executable).
// ---------------------------------------------------------------------------

class FanIn : public ::testing::TestWithParam<int> {};

TEST_P(FanIn, ConsumerRecordsEveryInputOnce) {
  const int k = GetParam();
  Collector c;
  PassObserver obs(c.sink());
  for (int i = 0; i < k; ++i) {
    obs.apply(ev_write(static_cast<Pid>(100 + i), "in" + std::to_string(i),
                       "data"));
    obs.apply(ev_close(static_cast<Pid>(100 + i), "in" + std::to_string(i)));
  }
  obs.apply(ev_exec(1, "/bin/merge"));
  for (int i = 0; i < k; ++i) {
    // Double reads must not duplicate records.
    obs.apply(ev_read(1, "in" + std::to_string(i)));
    obs.apply(ev_read(1, "in" + std::to_string(i)));
  }
  obs.apply(ev_write(1, "out", "merged"));
  obs.apply(ev_close(1, "out"));

  auto proc = c.units.find({"proc/1/1", 1});
  ASSERT_NE(proc, c.units.end());
  int file_inputs = 0;
  for (const auto& r : proc->second.records)
    if (r.is_xref() && r.attribute == "INPUT" &&
        r.xref().object.rfind("in", 0) == 0)
      ++file_inputs;
  EXPECT_EQ(file_inputs, k);
}

INSTANTIATE_TEST_SUITE_P(Widths, FanIn, ::testing::Values(1, 4, 16, 64));

}  // namespace
