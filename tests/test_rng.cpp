#include <gtest/gtest.h>

#include <set>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using provcloud::util::Rng;

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), provcloud::util::LogicError);
}

TEST(RngTest, NextInInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextInDegenerate) {
  Rng rng(9);
  EXPECT_EQ(rng.next_in(42, 42), 42u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(12);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i)
    if (rng.next_bool(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.03);
}

TEST(RngTest, LogUniformStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_log_uniform(100, 100000);
    EXPECT_GE(v, 100u);
    EXPECT_LE(v, 100000u);
  }
}

TEST(RngTest, LogUniformIsSkewedTowardSmall) {
  Rng rng(14);
  int small = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    if (rng.next_log_uniform(1, 1000000) < 1000) ++small;
  // log-uniform: P(v < 10^3) over [1, 10^6] is ~1/2; plain uniform would
  // put ~0.1% there.
  EXPECT_GT(small, n / 3);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.fork(1);
  Rng parent2(15);
  Rng child2 = parent2.fork(1);
  // Same derivation -> same stream.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // Different stream labels -> different streams.
  Rng parent3(15);
  Rng other = parent3.fork(2);
  Rng child3 = Rng(15).fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (other.next_u64() == child3.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextHexFormat) {
  Rng rng(16);
  const std::string h = rng.next_hex(32);
  EXPECT_EQ(h.size(), 32u);
  for (char c : h)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
}

TEST(RngTest, CoversValueSpace) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(64));
  EXPECT_EQ(seen.size(), 64u);  // all residues reached
}

}  // namespace
