#include <gtest/gtest.h>

#include "pass/record.hpp"

namespace {

using namespace provcloud::pass;

TEST(ObjectVersionTest, ToString) {
  EXPECT_EQ((ObjectVersion{"foo", 2}).to_string(), "foo:2");
  EXPECT_EQ((ObjectVersion{"dir/bar.c", 17}).to_string(), "dir/bar.c:17");
}

TEST(ObjectVersionTest, Ordering) {
  EXPECT_LT((ObjectVersion{"a", 2}), (ObjectVersion{"b", 1}));
  EXPECT_LT((ObjectVersion{"a", 1}), (ObjectVersion{"a", 2}));
  EXPECT_EQ((ObjectVersion{"a", 1}), (ObjectVersion{"a", 1}));
}

TEST(RecordTest, TextRecord) {
  const ProvenanceRecord r = make_text_record(attr::kType, "file");
  EXPECT_FALSE(r.is_xref());
  EXPECT_EQ(r.text(), "file");
  EXPECT_EQ(r.value_string(), "file");
  EXPECT_EQ(r.payload_size(), 4u + 4u);
}

TEST(RecordTest, XrefRecord) {
  // The paper's example: version 2 of foo has (input, bar:2).
  const ProvenanceRecord r =
      make_xref_record(attr::kInput, ObjectVersion{"bar", 2});
  EXPECT_TRUE(r.is_xref());
  EXPECT_EQ(r.xref().object, "bar");
  EXPECT_EQ(r.xref().version, 2u);
  EXPECT_EQ(r.value_string(), "bar:2");
  EXPECT_EQ(r.payload_size(), 5u + 5u);
}

TEST(RecordTest, Equality) {
  EXPECT_EQ(make_text_record("A", "v"), make_text_record("A", "v"));
  EXPECT_NE(make_text_record("A", "v"), make_text_record("A", "w"));
  EXPECT_NE(make_text_record("A", "v"), make_text_record("B", "v"));
  EXPECT_EQ(make_xref_record("I", {"x", 1}), make_xref_record("I", {"x", 1}));
  EXPECT_NE(make_xref_record("I", {"x", 1}), make_xref_record("I", {"x", 2}));
  // A text record "x:1" is not the same as an xref to x:1.
  EXPECT_NE(make_text_record("I", "x:1"), make_xref_record("I", {"x", 1}));
}

TEST(RecordTest, PayloadSizeSum) {
  std::vector<ProvenanceRecord> records = {
      make_text_record("TYPE", "file"),          // 8
      make_xref_record("INPUT", {"bar", 2}),     // 10
  };
  EXPECT_EQ(records_payload_size(records), 18u);
}

TEST(PnodeTest, KindNames) {
  EXPECT_STREQ(to_string(PnodeKind::kFile), "file");
  EXPECT_STREQ(to_string(PnodeKind::kProcess), "process");
  EXPECT_STREQ(to_string(PnodeKind::kPipe), "pipe");
}

}  // namespace
