// The provenance-hint edge cache (the paper's section 7 future work).
#include <gtest/gtest.h>

#include "cloudprov/hints.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "pass/observer.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;

/// One process writes a family of sibling outputs; a second derives a
/// report from out0.
SyscallTrace family_trace() {
  SyscallTrace t;
  t.push_back(ev_exec(1, "/bin/run", {"run"}));
  for (int i = 0; i < 6; ++i) {
    t.push_back(ev_write(1, "out" + std::to_string(i),
                         "data" + std::to_string(i)));
    t.push_back(ev_close(1, "out" + std::to_string(i)));
  }
  t.push_back(ev_exit(1));
  t.push_back(ev_exec(2, "/bin/report", {"report"}));
  t.push_back(ev_read(2, "out0"));
  t.push_back(ev_write(2, "report.pdf", "report"));
  t.push_back(ev_close(2, "report.pdf"));
  t.push_back(ev_exit(2));
  return t;
}

struct World {
  explicit World(std::size_t shard_count = 1, std::size_t parallelism = 1)
      : env(71, aws::ConsistencyConfig::strong()), services(env) {
    auto sdb = std::make_unique<SdbBackend>(
        services, SdbBackendConfig{.shard_count = shard_count,
                                   .parallelism = parallelism});
    topology = sdb->topology();
    backend = std::move(sdb);
    PassObserver obs([this](const FlushUnit& u) { backend->store(u); });
    obs.apply_trace(family_trace());
    obs.finish();
    env.clock().drain();
  }
  aws::CloudEnv env;
  CloudServices services;
  std::unique_ptr<ProvenanceBackend> backend;
  std::shared_ptr<const DomainTopology> topology;
};

TEST(HintsTest, MissFetchesFromS3) {
  World w;
  ProvenanceCache cache(w.services, PrefetchConfig{});
  auto data = cache.read("out0");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(*data, "data0");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(HintsTest, RepeatReadHits) {
  World w;
  ProvenanceCache cache(w.services, PrefetchConfig{});
  cache.read("out0");
  cache.read("out0");
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(HintsTest, SiblingsArePrefetched) {
  World w;
  ProvenanceCache cache(w.services, PrefetchConfig{});
  cache.read("out0");
  EXPECT_GT(cache.stats().prefetches, 0u);
  // Reading a sibling is now a hit.
  const std::uint64_t misses_before = cache.stats().misses;
  cache.read("out1");
  EXPECT_EQ(cache.stats().misses, misses_before);
  EXPECT_GT(cache.stats().prefetch_hits, 0u);
}

TEST(HintsTest, DescendantsArePrefetched) {
  World w;
  PrefetchConfig cfg;
  cfg.descendant_limit = 4;
  ProvenanceCache cache(w.services, cfg);
  cache.read("out0");
  // report.pdf derives from out0 via /bin/report: should be warm.
  EXPECT_TRUE(cache.is_cached("report.pdf"));
}

TEST(HintsTest, DisabledHintsMeanNoPrefetch) {
  World w;
  PrefetchConfig cfg;
  cfg.use_provenance_hints = false;
  ProvenanceCache cache(w.services, cfg);
  cache.read("out0");
  EXPECT_EQ(cache.stats().prefetches, 0u);
  const std::uint64_t misses_before = cache.stats().misses;
  cache.read("out1");
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(HintsTest, LruEvictionRespectsCapacity) {
  World w;
  PrefetchConfig cfg;
  cfg.cache_capacity = 2;
  cfg.use_provenance_hints = false;
  ProvenanceCache cache(w.services, cfg);
  cache.read("out0");
  cache.read("out1");
  cache.read("out2");  // evicts out0
  EXPECT_LE(cache.cached_objects(), 2u);
  EXPECT_FALSE(cache.is_cached("out0"));
  EXPECT_TRUE(cache.is_cached("out2"));
}

TEST(HintsTest, TouchKeepsHotEntriesAlive) {
  World w;
  PrefetchConfig cfg;
  cfg.cache_capacity = 2;
  cfg.use_provenance_hints = false;
  ProvenanceCache cache(w.services, cfg);
  cache.read("out0");
  cache.read("out1");
  cache.read("out0");  // refresh out0
  cache.read("out2");  // evicts out1, not out0
  EXPECT_TRUE(cache.is_cached("out0"));
  EXPECT_FALSE(cache.is_cached("out1"));
}

TEST(HintsTest, MissingObjectReturnsNull) {
  World w;
  ProvenanceCache cache(w.services, PrefetchConfig{});
  EXPECT_EQ(cache.read("never-existed"), nullptr);
}

TEST(HintsTest, PrefetchTrafficIsSeparatelyMetered) {
  World w;
  ProvenanceCache cache(w.services, PrefetchConfig{});
  const auto before = w.env.meter().snapshot();
  cache.read("out0");
  const auto diff = w.env.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("s3", "GET") - diff.calls("s3", "GET.prefetch"),
            diff.calls("s3", "GET.prefetch") > 0
                ? diff.calls("s3", "GET") - diff.calls("s3", "GET.prefetch")
                : diff.calls("s3", "GET"));
  EXPECT_GT(diff.calls("s3", "GET.prefetch"), 0u);
  EXPECT_GT(diff.calls("sdb", "Query.prefetch"), 0u);
}

TEST(HintsTest, PrefetchAccuracyAccounting) {
  World w;
  ProvenanceCache cache(w.services, PrefetchConfig{});
  cache.read("out0");
  for (int i = 1; i < 6; ++i) cache.read("out" + std::to_string(i));
  const PrefetchStats& s = cache.stats();
  EXPECT_GT(s.prefetch_accuracy(), 0.3);
  EXPECT_GT(s.hit_rate(), 0.3);
}

// --- sharded layouts: hints must follow the topology, not assume the ---
// --- single "provenance" domain                                      ---

TEST(ShardedHintsTest, SiblingsPrefetchedAcrossShardDomains) {
  // PR 1 regression: with shard_count > 1 the old cache queried only
  // kProvenanceDomain and silently missed every non-shard-0 object.
  World w(/*shard_count=*/4);
  ProvenanceCache cache(w.services, PrefetchConfig{}, w.topology);
  cache.read("out0");
  EXPECT_GT(cache.stats().prefetches, 0u);
  const std::uint64_t misses_before = cache.stats().misses;
  cache.read("out1");
  EXPECT_EQ(cache.stats().misses, misses_before);
  EXPECT_GT(cache.stats().prefetch_hits, 0u);
}

TEST(ShardedHintsTest, DescendantsPrefetchedAcrossShardDomains) {
  World w(/*shard_count=*/4);
  ProvenanceCache cache(w.services, PrefetchConfig{}, w.topology);
  cache.read("out0");
  EXPECT_TRUE(cache.is_cached("report.pdf"));
}

TEST(ShardedHintsTest, HitRateMatchesSingleDomainLayout) {
  // The same access pattern must warm the same objects at any shard count.
  const auto stats_for = [](std::size_t shards, std::size_t parallelism) {
    World w(shards, parallelism);
    ProvenanceCache cache(w.services, PrefetchConfig{}, w.topology);
    cache.read("out0");
    for (int i = 1; i < 6; ++i) cache.read("out" + std::to_string(i));
    cache.read("report.pdf");
    return std::make_tuple(cache.stats().hits, cache.stats().misses,
                           cache.stats().prefetch_hits);
  };
  const auto base = stats_for(1, 1);
  EXPECT_EQ(stats_for(4, 1), base);
  EXPECT_EQ(stats_for(4, 4), base);  // parallel prefetch: same outcome
}

TEST(ShardedHintsTest, PrefetchQueriesScatterToEveryShard) {
  World w(/*shard_count=*/4);
  ProvenanceCache cache(w.services, PrefetchConfig{}, w.topology);
  const auto before = w.env.meter().snapshot();
  cache.read("out0");
  const auto diff = w.env.meter().snapshot().diff(before);
  // Each hint round scatters to all 4 domains, so prefetch queries come in
  // multiples of the shard count.
  EXPECT_GT(diff.calls("sdb", "Query.prefetch"), 0u);
  EXPECT_EQ(diff.calls("sdb", "Query.prefetch") % 4, 0u);
}

}  // namespace
