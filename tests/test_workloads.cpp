// Workload generators: determinism, shape, scaling knobs, and the
// statistics the paper's tables depend on (large records, overhead ratios).
#include <gtest/gtest.h>

#include "pass/observer.hpp"
#include "workloads/blast.hpp"
#include "workloads/combined.hpp"
#include "workloads/compile.hpp"
#include "workloads/datagen.hpp"
#include "workloads/provchallenge.hpp"

namespace {

using namespace provcloud::workloads;
using provcloud::pass::FlushUnit;
using provcloud::pass::PassObserver;
using provcloud::pass::SyscallTrace;

WorkloadOptions tiny() {
  WorkloadOptions o;
  o.seed = 99;
  o.count_scale = 0.1;
  o.size_scale = 0.05;
  return o;
}

provcloud::pass::ObserverStats run_pass(const SyscallTrace& trace) {
  PassObserver obs([](const FlushUnit&) {});
  obs.apply_trace(trace);
  obs.finish();
  return obs.stats();
}

TEST(WorkloadTest, GeneratorsAreDeterministic) {
  const CompileWorkload w;
  const SyscallTrace a = w.generate(tiny());
  const SyscallTrace b = w.generate(tiny());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << i;
    EXPECT_EQ(a[i].path, b[i].path) << i;
    EXPECT_EQ(a[i].data, b[i].data) << i;
  }
}

TEST(WorkloadTest, SeedChangesContent) {
  const BlastWorkload w;
  WorkloadOptions o1 = tiny(), o2 = tiny();
  o2.seed = 100;
  const SyscallTrace a = w.generate(o1);
  const SyscallTrace b = w.generate(o2);
  bool different = a.size() != b.size();
  for (std::size_t i = 0; !different && i < a.size(); ++i)
    different = a[i].data != b[i].data;
  EXPECT_TRUE(different);
}

TEST(WorkloadTest, CountScaleScalesEntities) {
  const CompileWorkload w;
  WorkloadOptions small = tiny();
  WorkloadOptions large = tiny();
  large.count_scale = 0.2;
  const TraceStats s = compute_trace_stats(w.generate(small));
  const TraceStats l = compute_trace_stats(w.generate(large));
  EXPECT_GT(l.writes, s.writes);
  EXPECT_GT(l.execs, s.execs);
}

TEST(WorkloadTest, SizeScaleScalesBytesNotCounts) {
  const BlastWorkload w;
  WorkloadOptions small = tiny();
  WorkloadOptions large = tiny();
  large.size_scale = 0.2;
  const TraceStats s = compute_trace_stats(w.generate(small));
  const TraceStats l = compute_trace_stats(w.generate(large));
  EXPECT_EQ(l.writes, s.writes);
  EXPECT_GT(l.bytes_written, 2 * s.bytes_written);
}

TEST(WorkloadTest, CompileShapeThroughPass) {
  const provcloud::pass::ObserverStats s =
      run_pass(CompileWorkload().generate(tiny()));
  EXPECT_GT(s.flush_units, 50u);
  EXPECT_GT(s.file_units, 30u);
  EXPECT_GT(s.large_records, 5u);  // compiler env/argv records
  EXPECT_GT(s.provenance_bytes, 10000u);
}

TEST(WorkloadTest, BlastOutputsPresent) {
  const SyscallTrace t = BlastWorkload().generate(tiny());
  bool saw_blastall = false, saw_hits = false, saw_summary = false;
  for (const auto& e : t) {
    if (e.type == provcloud::pass::SyscallEvent::Type::kExec &&
        e.path == BlastWorkload::kBlastProgram)
      saw_blastall = true;
    if (e.path.find("hits") != std::string::npos) saw_hits = true;
    if (e.path.find("summary") != std::string::npos) saw_summary = true;
  }
  EXPECT_TRUE(saw_blastall);
  EXPECT_TRUE(saw_hits);
  EXPECT_TRUE(saw_summary);
}

TEST(WorkloadTest, ProvenanceChallengeHasTheFiveStages) {
  const SyscallTrace t = ProvenanceChallengeWorkload().generate(tiny());
  std::set<std::string> programs;
  for (const auto& e : t)
    if (e.type == provcloud::pass::SyscallEvent::Type::kExec)
      programs.insert(e.path);
  EXPECT_EQ(programs.count("/usr/local/fsl/align_warp"), 1u);
  EXPECT_EQ(programs.count("/usr/local/fsl/reslice"), 1u);
  EXPECT_EQ(programs.count("/usr/local/fsl/softmean"), 1u);
  EXPECT_EQ(programs.count("/usr/local/fsl/slicer"), 1u);
  EXPECT_EQ(programs.count("/usr/bin/convert"), 1u);
}

TEST(WorkloadTest, ChallengeProducesAtlasAndGraphics) {
  const provcloud::pass::ObserverStats ignored =
      run_pass(ProvenanceChallengeWorkload().generate(tiny()));
  (void)ignored;
  const SyscallTrace t = ProvenanceChallengeWorkload().generate(tiny());
  int gifs = 0;
  for (const auto& e : t)
    if (e.type == provcloud::pass::SyscallEvent::Type::kClose &&
        e.path.find(".gif") != std::string::npos)
      ++gifs;
  EXPECT_EQ(gifs, 3);
}

TEST(WorkloadTest, CombinedConcatenatesAllThree) {
  const WorkloadOptions o = tiny();
  const SyscallTrace combined = build_combined_trace(o);
  const std::size_t parts = CompileWorkload().generate(o).size() +
                            BlastWorkload().generate(o).size() +
                            ProvenanceChallengeWorkload().generate(o).size();
  EXPECT_EQ(combined.size(), parts);
}

TEST(WorkloadTest, CombinedLandsInPaperRegime) {
  // At tiny scale the *ratios* should already resemble the paper: overhead
  // of provenance over raw data in the high single digits to low tens of
  // percent, and a meaningful population of >1KB records.
  WorkloadOptions o;
  o.seed = 2009;
  o.count_scale = 0.1;
  o.size_scale = 0.1;
  const provcloud::pass::ObserverStats s = run_pass(build_combined_trace(o));
  ASSERT_GT(s.data_bytes_flushed, 0u);
  const double overhead = static_cast<double>(s.provenance_bytes) /
                          static_cast<double>(s.data_bytes_flushed);
  EXPECT_GT(overhead, 0.01);
  EXPECT_LT(overhead, 0.6);
  EXPECT_GT(s.large_records, 20u);
  EXPECT_GT(s.flush_units, 100u);
}

TEST(DatagenTest, ContentHasRequestedSize) {
  provcloud::util::Rng rng(1);
  EXPECT_EQ(synth_content(rng, 0).size(), 0u);
  EXPECT_EQ(synth_content(rng, 1).size(), 1u);
  EXPECT_EQ(synth_content(rng, 10000).size(), 10000u);
  EXPECT_EQ(synth_source(rng, 777).size(), 777u);
}

TEST(DatagenTest, ContentVariesAcrossCalls) {
  provcloud::util::Rng rng(1);
  EXPECT_NE(synth_content(rng, 100), synth_content(rng, 100));
}

TEST(DatagenTest, EnvironmentHitsTargetSize) {
  provcloud::util::Rng rng(5);
  const auto env = synth_environment(rng, 1500);
  std::size_t total = 0;
  for (const auto& [k, v] : env) total += k.size() + v.size() + 2;
  EXPECT_GE(total, 1400u);
  EXPECT_LE(total, 1900u);
}

}  // namespace
