// The eventually-consistent replicated store: staleness inside the
// propagation window, convergence after it, last-writer-wins, tombstones.
#include <gtest/gtest.h>

#include "aws/common/env.hpp"
#include "aws/common/replicated.hpp"

namespace {

using provcloud::aws::CloudEnv;
using provcloud::aws::ConsistencyConfig;
using provcloud::aws::ReplicatedKV;
namespace sim = provcloud::sim;

ConsistencyConfig slow_config() {
  ConsistencyConfig c;
  c.replicas = 4;
  c.propagation_min = sim::kSecond;
  c.propagation_max = 5 * sim::kSecond;
  return c;
}

TEST(ReplicatedTest, StrongConfigIsImmediatelyConsistent) {
  CloudEnv env(1, ConsistencyConfig::strong());
  ReplicatedKV<int> kv(env);
  kv.put("k", 42);
  for (int i = 0; i < 20; ++i) {
    auto got = kv.get("k");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(**got, 42);
  }
}

TEST(ReplicatedTest, CoordinatorSeesWriteImmediately) {
  CloudEnv env(2, slow_config());
  ReplicatedKV<int> kv(env);
  kv.put("k", 7);
  auto got = kv.get_coordinator("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(**got, 7);
}

TEST(ReplicatedTest, ReadsCanBeStaleInsideWindow) {
  CloudEnv env(3, slow_config());
  ReplicatedKV<int> kv(env);
  kv.put("k", 1);
  env.clock().drain();  // v1 everywhere
  kv.put("k", 2);
  // Immediately after the second put, some replicas still serve 1.
  int stale = 0, fresh = 0, miss = 0;
  for (int i = 0; i < 200; ++i) {
    auto got = kv.get("k");
    if (!got)
      ++miss;
    else if (**got == 1)
      ++stale;
    else
      ++fresh;
  }
  EXPECT_EQ(miss, 0);
  EXPECT_GT(stale, 0) << "expected stale reads inside the window";
  EXPECT_GT(fresh, 0) << "coordinator should serve fresh reads";
}

TEST(ReplicatedTest, FreshKeyCanBeInvisibleInsideWindow) {
  CloudEnv env(4, slow_config());
  ReplicatedKV<int> kv(env);
  kv.put("new", 9);
  int miss = 0;
  for (int i = 0; i < 200; ++i)
    if (!kv.get("new")) ++miss;
  EXPECT_GT(miss, 0) << "GET right after PUT should sometimes miss";
}

TEST(ReplicatedTest, ConvergesAfterDrain) {
  CloudEnv env(5, slow_config());
  ReplicatedKV<int> kv(env);
  kv.put("k", 1);
  kv.put("k", 2);
  kv.put("k", 3);
  env.clock().drain();
  for (int i = 0; i < 100; ++i) {
    auto got = kv.get("k");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(**got, 3);
  }
}

TEST(ReplicatedTest, LastWriterWinsAgainstLatePropagation) {
  CloudEnv env(6, slow_config());
  ReplicatedKV<int> kv(env);
  kv.put("k", 1);  // propagation events scheduled, not yet delivered
  env.clock().advance_by(10 * sim::kMillisecond);
  kv.put("k", 2);  // newer write
  env.clock().drain();  // old propagation must NOT clobber the new value
  for (int i = 0; i < 100; ++i) {
    auto got = kv.get("k");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(**got, 2);
  }
}

TEST(ReplicatedTest, SameInstantWritesResolveBySequence) {
  CloudEnv env(7, slow_config());
  ReplicatedKV<int> kv(env);
  kv.put("k", 1);
  kv.put("k", 2);  // same simulated instant, later sequence
  env.clock().drain();
  auto got = kv.get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(**got, 2);
}

TEST(ReplicatedTest, TombstoneShadowsLateOldWrite) {
  CloudEnv env(8, slow_config());
  ReplicatedKV<int> kv(env);
  kv.put("k", 1);
  env.clock().advance_by(10 * sim::kMillisecond);
  kv.erase("k");  // tombstone newer than the pending v1 propagation
  env.clock().drain();
  EXPECT_FALSE(kv.get("k").has_value());
  EXPECT_FALSE(kv.get_coordinator("k").has_value());
}

TEST(ReplicatedTest, EraseIsIdempotent) {
  CloudEnv env(9, ConsistencyConfig::strong());
  ReplicatedKV<int> kv(env);
  kv.erase("never-existed");
  kv.put("k", 1);
  kv.erase("k");
  kv.erase("k");
  EXPECT_FALSE(kv.get("k").has_value());
}

TEST(ReplicatedTest, ListFiltersByPrefixAndTombstones) {
  CloudEnv env(10, ConsistencyConfig::strong());
  ReplicatedKV<int> kv(env);
  kv.put("a/1", 1);
  kv.put("a/2", 2);
  kv.put("b/1", 3);
  kv.erase("a/2");
  EXPECT_EQ(kv.list("a/"), (std::vector<std::string>{"a/1"}));
  EXPECT_EQ(kv.list(""), (std::vector<std::string>{"a/1", "b/1"}));
}

TEST(ReplicatedTest, SizeCoordinatorCountsLiveKeys) {
  CloudEnv env(11, ConsistencyConfig::strong());
  ReplicatedKV<int> kv(env);
  kv.put("x", 1);
  kv.put("y", 2);
  kv.erase("x");
  EXPECT_EQ(kv.size_coordinator(), 1u);
}

TEST(ReplicatedTest, ValuesAreSharedAcrossReplicas) {
  CloudEnv env(12, slow_config());
  ReplicatedKV<std::string> kv(env);
  kv.put("k", std::string(1024, 'x'));
  env.clock().drain();
  auto a = kv.get_coordinator("k");
  ASSERT_TRUE(a.has_value());
  // All replicas must hand out the same shared allocation.
  for (int i = 0; i < 20; ++i) {
    auto b = kv.get("k");
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->get(), b->get());
  }
}

// Convergence property over a parameter sweep of consistency configs.
class ReplicatedConvergence
    : public ::testing::TestWithParam<std::tuple<unsigned, sim::SimTime>> {};

TEST_P(ReplicatedConvergence, AllWritesEventuallyVisibleEverywhere) {
  const auto [replicas, window] = GetParam();
  ConsistencyConfig c;
  c.replicas = replicas;
  c.propagation_min = window / 10 + 1;
  c.propagation_max = window + 1;
  CloudEnv env(13 + replicas, c);
  ReplicatedKV<int> kv(env);
  for (int i = 0; i < 30; ++i) {
    kv.put("key" + std::to_string(i % 7), i);
    env.clock().advance_by(window / 3);
  }
  env.clock().drain();
  // After quiescence every replica must serve the last value written.
  for (int r = 0; r < 50; ++r) {
    for (int k = 0; k < 7; ++k) {
      auto got = kv.get("key" + std::to_string(k));
      ASSERT_TRUE(got.has_value());
      // last write to key k is the largest i with i % 7 == k, i < 30.
      int expected = k;
      for (int i = 0; i < 30; ++i)
        if (i % 7 == k) expected = i;
      EXPECT_EQ(**got, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReplicatedConvergence,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u),
                       ::testing::Values(sim::kMillisecond, sim::kSecond,
                                         10 * sim::kSecond)));

}  // namespace
