// CloudEnv: request charging, latency accounting, consistency plumbing.
#include <gtest/gtest.h>

#include "aws/common/env.hpp"
#include "aws/s3/s3.hpp"

namespace {

using namespace provcloud::aws;
namespace sim = provcloud::sim;

TEST(CloudEnvTest, ChargeRecordsIntoMeter) {
  CloudEnv env(1);
  env.charge("s3", "PUT", 100, 0);
  env.charge("s3", "GET", 0, 50);
  const auto snap = env.meter().snapshot();
  EXPECT_EQ(snap.calls("s3"), 2u);
  EXPECT_EQ(snap.bytes_in("s3"), 100u);
  EXPECT_EQ(snap.bytes_out("s3"), 50u);
}

TEST(CloudEnvTest, ChargeNeverAdvancesClock) {
  CloudEnv env(2);
  const sim::SimTime before = env.clock().now();
  env.charge("s3", "PUT", 1 << 20, 0);
  EXPECT_EQ(env.clock().now(), before);  // elapsed time is ledger-only now
  EXPECT_GT(env.busy_time(), 0u);
}

TEST(CloudEnvTest, SequentialElapsedEqualsBusyTime) {
  // One thread, no fan-out: the per-client timeline is the plain sum of
  // charged latencies -- bit-identical to the retired charge_latency
  // accounting.
  CloudEnv env(3);
  sim::SimTime charged = 0;
  charged += env.charge("s3", "PUT", 4 << 20, 0);
  charged += env.charge("sdb", "PutAttributes", 512, 0);
  charged += env.charge("sqs", "SendMessage", 128, 0);
  EXPECT_EQ(env.elapsed_time(), charged);
  EXPECT_EQ(env.elapsed_time(), env.busy_time());
  // 4 MB at 4 MB/s upstream: at least one second on the timeline.
  EXPECT_GE(env.elapsed_time(), sim::kSecond);
}

TEST(CloudEnvTest, ChargeDuringOpenBranchDoesNotBlockPropagation) {
  // Replica propagation is scheduled at commit time and fired only at the
  // driver's sync points; charges (even big transfers) never fire events.
  ConsistencyConfig c;
  c.replicas = 3;
  c.propagation_min = 100 * sim::kMillisecond;
  c.propagation_max = 900 * sim::kMillisecond;
  CloudEnv env(4, c);
  S3Service s3(env);
  ASSERT_TRUE(s3.put("b", "k", "first").has_value());
  const std::size_t pending = env.clock().pending_events();
  EXPECT_GT(pending, 0u);
  env.charge("s3", "PUT", 8 << 20, 0);
  EXPECT_EQ(env.clock().pending_events(), pending);  // nothing fired
  env.clock().drain();  // the explicit sync point realizes consistency
  for (int i = 0; i < 50; ++i) {
    auto got = s3.get("b", "k");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got->data, "first");
  }
}

TEST(CloudEnvTest, PropagationDelaySampledWithinConfig) {
  ConsistencyConfig c;
  c.propagation_min = 10;
  c.propagation_max = 20;
  CloudEnv env(5, c);
  for (int i = 0; i < 200; ++i) {
    const sim::SimTime d = env.sample_propagation_delay();
    EXPECT_GE(d, 10u);
    EXPECT_LE(d, 20u);
  }
}

TEST(CloudEnvTest, DegenerateWindowIsConstant) {
  ConsistencyConfig c;
  c.propagation_min = 7;
  c.propagation_max = 7;
  CloudEnv env(6, c);
  EXPECT_EQ(env.sample_propagation_delay(), 7u);
}

TEST(CloudEnvTest, StrongConfigHasNoDelay) {
  CloudEnv env(7, ConsistencyConfig::strong());
  EXPECT_EQ(env.sample_propagation_delay(), 0u);
  EXPECT_EQ(env.consistency().replicas, 1u);
}

TEST(CloudEnvTest, SeedsReplayIdentically) {
  const auto run = [](std::uint64_t seed) {
    CloudEnv env(seed);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 10; ++i) out.push_back(env.rng().next_u64());
    return out;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

}  // namespace
