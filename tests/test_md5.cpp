// MD5 against the RFC 1321 test suite plus incremental-update and nonce
// behaviour.
#include <gtest/gtest.h>

#include "util/md5.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace {

using provcloud::util::Md5;
using provcloud::util::md5_with_nonce;

struct Vector {
  const char* input;
  const char* digest;
};

// The canonical RFC 1321 appendix A.5 vectors.
const Vector kRfcVectors[] = {
    {"", "d41d8cd98f00b204e9800998ecf8427e"},
    {"a", "0cc175b9c0f1b6a831c399e269772661"},
    {"abc", "900150983cd24fb0d6963f7d28e17f72"},
    {"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
    {"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
    {"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
     "d174ab98d277d9f5a5611c2c9f419d9f"},
    {"1234567890123456789012345678901234567890123456789012345678901234567890"
     "1234567890",
     "57edf4a22be3c955ac49da2e2107b67a"},
};

class Md5RfcTest : public ::testing::TestWithParam<Vector> {};

TEST_P(Md5RfcTest, MatchesReferenceDigest) {
  EXPECT_EQ(Md5::hex_digest(GetParam().input), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(Rfc1321, Md5RfcTest,
                         ::testing::ValuesIn(kRfcVectors));

TEST(Md5Test, IncrementalUpdatesMatchOneShot) {
  const std::string text = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= text.size(); ++split) {
    Md5 h;
    h.update(text.substr(0, split));
    h.update(text.substr(split));
    const auto d = h.finish();
    EXPECT_EQ(d, Md5::digest(text)) << "split at " << split;
  }
}

TEST(Md5Test, ManySmallUpdatesMatchOneShot) {
  std::string text;
  Md5 h;
  for (int i = 0; i < 300; ++i) {
    const std::string piece(1 + i % 7, static_cast<char>('a' + i % 26));
    text += piece;
    h.update(piece);
  }
  EXPECT_EQ(h.finish(), Md5::digest(text));
}

TEST(Md5Test, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding boundary are the
  // classic implementation traps.
  provcloud::util::Rng rng(1);
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 121u,
                          127u, 128u, 129u, 1000u}) {
    const std::string data = rng.next_hex(len);
    Md5 split;
    split.update(data.substr(0, len / 3));
    split.update(data.substr(len / 3));
    EXPECT_EQ(split.finish(), Md5::digest(data)) << "len " << len;
  }
}

TEST(Md5Test, ResetAllowsReuse) {
  Md5 h;
  h.update("first");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finish(), Md5::digest("abc"));
}

TEST(Md5Test, UpdateAfterFinishThrows) {
  Md5 h;
  h.update("x");
  (void)h.finish();
  EXPECT_THROW(h.update("y"), provcloud::util::LogicError);
}

TEST(Md5Test, FinishTwiceThrows) {
  Md5 h;
  (void)h.finish();
  EXPECT_THROW((void)h.finish(), provcloud::util::LogicError);
}

TEST(Md5NonceTest, NonceChangesDigest) {
  EXPECT_NE(md5_with_nonce("data", "1"), md5_with_nonce("data", "2"));
  EXPECT_NE(md5_with_nonce("data", "1"), Md5::hex_digest("data"));
}

TEST(Md5NonceTest, EqualsConcatenation) {
  EXPECT_EQ(md5_with_nonce("data", "42"), Md5::hex_digest("data42"));
}

TEST(Md5NonceTest, SameDataDifferentNonceIsTheOverwriteDefense) {
  // The paper: "except when a file is overwritten with the same data. In
  // such cases, new provenance will be generated but the MD5sum of the data
  // will be the same" -- the nonce disambiguates.
  const std::string payload = "identical file contents";
  EXPECT_EQ(Md5::hex_digest(payload), Md5::hex_digest(payload));
  EXPECT_NE(md5_with_nonce(payload, "1"), md5_with_nonce(payload, "2"));
}

TEST(Md5Test, DigestIsStableAcrossCalls) {
  EXPECT_EQ(Md5::hex_digest("stable"), Md5::hex_digest("stable"));
}

TEST(Md5Test, LargeInput) {
  const std::string big(1 << 20, 'q');
  // Reference digest computed with the same implementation split in chunks;
  // the point is internal consistency at scale plus no crashes.
  Md5 h;
  for (std::size_t off = 0; off < big.size(); off += 4096)
    h.update(std::string_view(big).substr(off, 4096));
  EXPECT_EQ(h.finish(), Md5::digest(big));
}

}  // namespace
