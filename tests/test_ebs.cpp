// EBS simulator: volumes, copy-on-write snapshots, whole-volume cloning --
// the sharing model the paper's section 2.5 argues against.
#include <gtest/gtest.h>

#include "aws/common/env.hpp"
#include "aws/ebs/ebs.hpp"

namespace {

using namespace provcloud::aws;

class EbsTest : public ::testing::Test {
 protected:
  EbsTest() : env_(1, ConsistencyConfig::strong()), ebs_(env_) {}
  CloudEnv env_;
  EbsService ebs_;
};

TEST_F(EbsTest, CreateWriteReadRoundTrip) {
  auto vol = ebs_.create_volume(64 * 1024);
  ASSERT_TRUE(vol.has_value());
  ASSERT_TRUE(ebs_.write(*vol, 100, "hello ebs").has_value());
  auto got = ebs_.read(*vol, 100, 9);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "hello ebs");
}

TEST_F(EbsTest, VolumeSizeRoundsUpToBlocks) {
  auto vol = ebs_.create_volume(1);
  ASSERT_TRUE(vol.has_value());
  EXPECT_EQ(ebs_.volume_size(*vol).value(), kEbsBlockBytes);
}

TEST_F(EbsTest, RejectsZeroAndOversizedVolumes) {
  EXPECT_FALSE(ebs_.create_volume(0).has_value());
  EXPECT_FALSE(ebs_.create_volume(kEbsMaxVolumeBytes + 1).has_value());
}

TEST_F(EbsTest, UnallocatedBlocksReadAsZeros) {
  auto vol = ebs_.create_volume(3 * kEbsBlockBytes);
  ASSERT_TRUE(vol.has_value());
  auto got = ebs_.read(*vol, 0, 16);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, std::string(16, '\0'));
}

TEST_F(EbsTest, WritePastEndRejected) {
  auto vol = ebs_.create_volume(kEbsBlockBytes);
  ASSERT_TRUE(vol.has_value());
  EXPECT_FALSE(
      ebs_.write(*vol, kEbsBlockBytes - 2, "overflow!").has_value());
}

TEST_F(EbsTest, ReadClampsAtEnd) {
  auto vol = ebs_.create_volume(kEbsBlockBytes);
  ASSERT_TRUE(vol.has_value());
  ASSERT_TRUE(ebs_.write(*vol, 0, "abc").has_value());
  auto got = ebs_.read(*vol, 0, 10 * kEbsBlockBytes);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), kEbsBlockBytes);
}

TEST_F(EbsTest, CrossBlockWriteAndRead) {
  auto vol = ebs_.create_volume(4 * kEbsBlockBytes);
  ASSERT_TRUE(vol.has_value());
  const std::string payload(kEbsBlockBytes + 123, 'q');
  ASSERT_TRUE(ebs_.write(*vol, kEbsBlockBytes - 50, payload).has_value());
  auto got = ebs_.read(*vol, kEbsBlockBytes - 50, payload.size());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST_F(EbsTest, OnlyAllocatedBlocksAreStored) {
  auto vol = ebs_.create_volume(100 * kEbsBlockBytes);
  ASSERT_TRUE(vol.has_value());
  ASSERT_TRUE(ebs_.write(*vol, 0, "x").has_value());
  ASSERT_TRUE(ebs_.write(*vol, 50 * kEbsBlockBytes, "y").has_value());
  EXPECT_EQ(ebs_.allocated_bytes(*vol), 2 * kEbsBlockBytes);
}

TEST_F(EbsTest, SnapshotIsPointInTime) {
  auto vol = ebs_.create_volume(kEbsBlockBytes);
  ASSERT_TRUE(vol.has_value());
  ASSERT_TRUE(ebs_.write(*vol, 0, "before").has_value());
  auto snap = ebs_.create_snapshot(*vol);
  ASSERT_TRUE(snap.has_value());
  ASSERT_TRUE(ebs_.write(*vol, 0, "after!").has_value());

  auto clone = ebs_.create_volume_from_snapshot(*snap);
  ASSERT_TRUE(clone.has_value());
  auto got = ebs_.read(*clone, 0, 6);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "before");
  EXPECT_EQ(*ebs_.read(*vol, 0, 6), "after!");
}

TEST_F(EbsTest, CloneIsIsolatedFromFurtherWrites) {
  auto vol = ebs_.create_volume(kEbsBlockBytes);
  ASSERT_TRUE(vol.has_value());
  ASSERT_TRUE(ebs_.write(*vol, 0, "shared").has_value());
  auto snap = ebs_.create_snapshot(*vol);
  auto clone = ebs_.create_volume_from_snapshot(*snap);
  ASSERT_TRUE(clone.has_value());
  ASSERT_TRUE(ebs_.write(*clone, 0, "cloned").has_value());
  EXPECT_EQ(*ebs_.read(*vol, 0, 6), "shared");
  EXPECT_EQ(*ebs_.read(*clone, 0, 6), "cloned");
}

TEST_F(EbsTest, CloningBillsTheWholeSnapshot) {
  // The paper's complaint, as a billing assertion: cloning transfers every
  // allocated byte even if the user wants one file.
  auto vol = ebs_.create_volume(64 * kEbsBlockBytes);
  ASSERT_TRUE(vol.has_value());
  for (int b = 0; b < 64; ++b)
    ASSERT_TRUE(ebs_.write(*vol, static_cast<std::uint64_t>(b) * kEbsBlockBytes,
                           std::string(kEbsBlockBytes, 'd'))
                    .has_value());
  auto snap = ebs_.create_snapshot(*vol);
  ASSERT_TRUE(snap.has_value());

  const auto before = env_.meter().snapshot();
  auto clone = ebs_.create_volume_from_snapshot(*snap);
  ASSERT_TRUE(clone.has_value());
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_EQ(diff.bytes_out("ebs"), 64 * kEbsBlockBytes);
}

TEST_F(EbsTest, MissingSnapshotOrVolumeErrors) {
  EXPECT_FALSE(ebs_.create_volume_from_snapshot("snap-404").has_value());
  EXPECT_FALSE(ebs_.create_snapshot("vol-404").has_value());
  EXPECT_FALSE(ebs_.read("vol-404", 0, 1).has_value());
}

TEST_F(EbsTest, DeleteFreesStorage) {
  auto vol = ebs_.create_volume(kEbsBlockBytes);
  ASSERT_TRUE(vol.has_value());
  ASSERT_TRUE(ebs_.write(*vol, 0, "x").has_value());
  EXPECT_GT(ebs_.stored_bytes(), 0u);
  ASSERT_TRUE(ebs_.delete_volume(*vol).has_value());
  EXPECT_EQ(ebs_.stored_bytes(), 0u);
}

}  // namespace
