// DomainTopology: the single source of truth for shard layout + fan-out.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "aws/simpledb/simpledb.hpp"
#include "cloudprov/domain_topology.hpp"
#include "cloudprov/serialize.hpp"

namespace {

using namespace provcloud::cloudprov;
namespace aws = provcloud::aws;

TEST(DomainTopologyTest, DefaultIsTheSingleProvenanceDomain) {
  DomainTopology t;
  EXPECT_EQ(t.shard_count(), 1u);
  EXPECT_EQ(t.parallelism(), 1u);
  ASSERT_EQ(t.domains().size(), 1u);
  EXPECT_EQ(t.domains()[0], kProvenanceDomain);
  EXPECT_EQ(t.domain_for_object("any/object"), kProvenanceDomain);
}

TEST(DomainTopologyTest, AgreesWithItsRouterAtEveryShardCount) {
  for (const std::size_t shards :
       {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    DomainTopology t(TopologyConfig{.shard_count = shards});
    const ShardRouter reference(shards);
    ASSERT_EQ(t.domains(), reference.domains());
    for (const std::string object : {"a", "data/f1", "proc/9/2", "out/hits0"}) {
      EXPECT_EQ(t.shard_of(object), reference.shard_of(object));
      EXPECT_EQ(t.domain_for_object(object),
                reference.domain_for_object(object));
      EXPECT_EQ(t.domain_for_item(object + ":3"),
                reference.domain_for_item(object + ":3"));
    }
  }
}

TEST(DomainTopologyTest, EnsureDomainsCreatesEveryShardDomain) {
  aws::CloudEnv env(11, aws::ConsistencyConfig::strong());
  aws::SimpleDbService sdb(env);
  DomainTopology t(TopologyConfig{.shard_count = 4});
  t.ensure_domains(sdb);
  std::set<std::string> listed;
  for (std::string& d : sdb.list_domains()) listed.insert(std::move(d));
  for (const std::string& d : t.domains()) EXPECT_TRUE(listed.count(d)) << d;
}

TEST(DomainTopologyTest, ScatterGathersInShardOrderAtAnyParallelism) {
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    DomainTopology t(
        TopologyConfig{.shard_count = 8, .parallelism = parallelism});
    const std::vector<std::string> gathered = t.scatter<std::string>(
        [](std::size_t i, const std::string& domain) {
          return std::to_string(i) + "=" + domain;
        });
    ASSERT_EQ(gathered.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_EQ(gathered[i], std::to_string(i) + "=" + t.domains()[i]);
  }
}

TEST(DomainTopologyTest, CustomBaseDomainNamesShards) {
  DomainTopology t(
      TopologyConfig{.shard_count = 2, .base_domain = "lineage"});
  ASSERT_EQ(t.domains().size(), 2u);
  EXPECT_EQ(t.domains()[0], "lineage-0");
  EXPECT_EQ(t.domains()[1], "lineage-1");
}

}  // namespace
