// Provenance-graph reconstruction: closures, topological order, DOT export,
// and resilience to Architecture 1's lost-old-version limitation.
#include <gtest/gtest.h>

#include "cloudprov/ancestry.hpp"
#include "pass/observer.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace pass = provcloud::pass;

/// a -> p1 -> b -> p2 -> c, plus d independent.
SyscallTrace chain_trace() {
  SyscallTrace t;
  t.push_back(ev_exec(1, "/bin/p1"));
  t.push_back(ev_write(1, "a", "1"));
  t.push_back(ev_close(1, "a"));
  t.push_back(ev_exec(2, "/bin/p2"));
  t.push_back(ev_read(2, "a"));
  t.push_back(ev_write(2, "b", "2"));
  t.push_back(ev_close(2, "b"));
  t.push_back(ev_exec(3, "/bin/p3"));
  t.push_back(ev_read(3, "b"));
  t.push_back(ev_write(3, "c", "3"));
  t.push_back(ev_close(3, "c"));
  t.push_back(ev_write(4, "d", "4"));
  t.push_back(ev_close(4, "d"));
  return t;
}

struct World {
  explicit World(Architecture arch)
      : env(61, aws::ConsistencyConfig::strong()), services(env) {
    backend = make_backend(arch, services);
    PassObserver obs([this](const FlushUnit& u) { backend->store(u); });
    obs.apply_trace(chain_trace());
    obs.finish();
    backend->quiesce();
    env.clock().drain();
  }
  aws::CloudEnv env;
  CloudServices services;
  std::unique_ptr<ProvenanceBackend> backend;
};

TEST(AncestryTest, FetchesFullClosure) {
  World w(Architecture::kS3SimpleDb);
  const AncestryResult r = fetch_ancestry(*w.backend, "c", 1);
  EXPECT_TRUE(r.missing.empty());
  // c, p3 (+stub), b, p2 (+stub), a, p1 (+stub), and the three executables.
  EXPECT_GE(r.graph.nodes().size(), 9u);
  EXPECT_NE(r.graph.find({"c", 1}), nullptr);
  EXPECT_NE(r.graph.find({"a", 1}), nullptr);
  // d is unrelated: not in the closure.
  EXPECT_EQ(r.graph.find({"d", 1}), nullptr);
}

TEST(AncestryTest, AncestorClosureCrossesProcesses) {
  World w(Architecture::kS3SimpleDb);
  const AncestryResult r = fetch_ancestry(*w.backend, "c", 1);
  const auto ancestors = r.graph.ancestor_closure({"c", 1});
  EXPECT_EQ(ancestors.count({"b", 1}), 1u);
  EXPECT_EQ(ancestors.count({"a", 1}), 1u);
  EXPECT_EQ(ancestors.count({"/bin/p1", 1}), 1u);
  EXPECT_EQ(ancestors.count({"c", 1}), 0u);  // excludes self
}

TEST(AncestryTest, DescendantClosureWithinGraph) {
  World w(Architecture::kS3SimpleDb);
  const AncestryResult r = fetch_ancestry(*w.backend, "c", 1);
  const auto descendants = r.graph.descendant_closure({"a", 1});
  EXPECT_EQ(descendants.count({"b", 1}), 1u);
  EXPECT_EQ(descendants.count({"c", 1}), 1u);
}

TEST(AncestryTest, NodeKindsDecoded) {
  World w(Architecture::kS3SimpleDb);
  const AncestryResult r = fetch_ancestry(*w.backend, "c", 1);
  ASSERT_NE(r.graph.find({"c", 1}), nullptr);
  EXPECT_EQ(r.graph.find({"c", 1})->kind, "file");
  ASSERT_NE(r.graph.find({"proc/3/1", 1}), nullptr);
  EXPECT_EQ(r.graph.find({"proc/3/1", 1})->kind, "process");
}

TEST(AncestryTest, TopologicalOrderAncestorsFirst) {
  World w(Architecture::kS3SimpleDb);
  const AncestryResult r = fetch_ancestry(*w.backend, "c", 1);
  const auto order = r.graph.topological_order();
  EXPECT_EQ(order.size(), r.graph.nodes().size());
  std::map<pass::ObjectVersion, std::size_t> position;
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (const auto& [id, node] : r.graph.nodes())
    for (const auto& a : node.ancestors)
      if (position.count(a) > 0)
        EXPECT_LT(position[a], position[id])
            << a.to_string() << " must precede " << id.to_string();
}

TEST(AncestryTest, DotExportContainsNodesAndEdges) {
  World w(Architecture::kS3SimpleDb);
  const AncestryResult r = fetch_ancestry(*w.backend, "c", 1);
  const std::string dot = r.graph.to_dot("test");
  EXPECT_NE(dot.find("digraph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("\"c:1\""), std::string::npos);
  EXPECT_NE(dot.find("\"c:1\" -> \"proc/3/1:1\""), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);  // processes
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // files
}

TEST(AncestryTest, MaxNodesBoundsTheWalk) {
  World w(Architecture::kS3SimpleDb);
  const AncestryResult r = fetch_ancestry(*w.backend, "c", 1, 3);
  EXPECT_LE(r.graph.nodes().size(), 3u);
}

TEST(AncestryTest, WorksOnAllArchitectures) {
  for (Architecture arch :
       {Architecture::kS3Only, Architecture::kS3SimpleDb,
        Architecture::kS3SimpleDbSqs}) {
    World w(arch);
    const AncestryResult r = fetch_ancestry(*w.backend, "c", 1);
    EXPECT_EQ(r.graph.ancestor_closure({"c", 1}).count({"a", 1}), 1u)
        << to_string(arch);
  }
}

TEST(AncestryTest, Arch1ReportsMissingOldVersions) {
  // Overwrite a file so version 1's provenance is lost on Architecture 1;
  // the walker must report it as missing rather than fail.
  aws::CloudEnv env(62, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3Only, services);
  PassObserver obs([&backend](const FlushUnit& u) { backend->store(u); });
  obs.apply(ev_write(1, "f", "v1"));
  obs.apply(ev_close(1, "f"));
  obs.apply(ev_write(2, "f", "+v2"));
  obs.apply(ev_close(2, "f"));  // overwrites f's metadata with v2's records
  obs.apply(ev_exec(3, "/bin/reader"));
  obs.apply(ev_read(3, "f"));
  obs.apply(ev_write(3, "g", "derived"));
  obs.apply(ev_close(3, "g"));
  env.clock().drain();

  const AncestryResult r = fetch_ancestry(*backend, "g", 1);
  // f:1's records are unreachable on arch 1 (only f:2 survives).
  bool f1_missing = false;
  for (const auto& m : r.missing) f1_missing |= (m == pass::ObjectVersion{"f", 1});
  EXPECT_TRUE(f1_missing);
}

TEST(AncestryGraphTest, EmptyGraphBehaves) {
  AncestryGraph g;
  EXPECT_EQ(g.find({"x", 1}), nullptr);
  EXPECT_TRUE(g.topological_order().empty());
  EXPECT_TRUE(g.ancestor_closure({"x", 1}).empty());
}

}  // namespace
