// The query engines (Table 3): correctness against PASS ground truth and
// the cost asymmetry between the S3 scan and the indexed SimpleDB path.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cloudprov/backend.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/serialize.hpp"
#include "pass/observer.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace util = provcloud::util;

/// A small blast-shaped world: db files, two blast runs, one downstream
/// summary, plus unrelated noise files.
SyscallTrace blast_world() {
  util::Rng rng(3);
  SyscallTrace t;
  // Unrelated noise.
  t.push_back(ev_exec(1, "/bin/noise", {"noise"},
                      provcloud::workloads::synth_environment(rng, 600)));
  t.push_back(ev_write(1, "noise/a", "zzz"));
  t.push_back(ev_close(1, "noise/a"));
  t.push_back(ev_exit(1));
  // Database.
  t.push_back(ev_exec(2, "/usr/bin/formatdb", {"formatdb"},
                      provcloud::workloads::synth_environment(rng, 900)));
  t.push_back(ev_write(2, "blast/nr.psq", "database"));
  t.push_back(ev_close(2, "blast/nr.psq"));
  t.push_back(ev_exit(2));
  // Two blast runs.
  for (int q = 0; q < 2; ++q) {
    const Pid pid = 10 + q;
    const std::string query = "blast/q" + std::to_string(q);
    const std::string hits = "blast/hits" + std::to_string(q);
    t.push_back(ev_write(3, query, "seq"));
    t.push_back(ev_close(3, query));
    t.push_back(ev_exec(pid, "/usr/bin/blastall", {"blastall"},
                        provcloud::workloads::synth_environment(rng, 1200)));
    t.push_back(ev_read(pid, query));
    t.push_back(ev_read(pid, "blast/nr.psq"));
    t.push_back(ev_write(pid, hits, "alignment results"));
    t.push_back(ev_close(pid, hits));
    t.push_back(ev_exit(pid));
  }
  // Downstream: summary of hits0 (a blast descendant), and a second-level
  // descendant derived from the summary.
  t.push_back(ev_exec(20, "/usr/bin/python", {"python", "summarize.py"},
                      provcloud::workloads::synth_environment(rng, 700)));
  t.push_back(ev_read(20, "blast/hits0"));
  t.push_back(ev_write(20, "blast/summary", "stats"));
  t.push_back(ev_close(20, "blast/summary"));
  t.push_back(ev_exit(20));
  t.push_back(ev_exec(21, "/usr/bin/plot", {"plot"},
                      provcloud::workloads::synth_environment(rng, 700)));
  t.push_back(ev_read(21, "blast/summary"));
  t.push_back(ev_write(21, "blast/plot.png", "image"));
  t.push_back(ev_close(21, "blast/plot.png"));
  t.push_back(ev_exit(21));
  return t;
}

struct World {
  explicit World(Architecture arch)
      : env(51, aws::ConsistencyConfig::strong()), services(env) {
    backend = make_backend(arch, services);
    PassObserver obs([this](const FlushUnit& u) { backend->store(u); });
    obs.apply_trace(blast_world());
    obs.finish();
    env.clock().drain();
    backend->quiesce();
    env.clock().drain();
    stats = obs.stats();
    engine = arch == Architecture::kS3Only ? make_s3_query_engine(services)
                                           : make_sdb_query_engine(services);
  }
  aws::CloudEnv env;
  CloudServices services;
  std::unique_ptr<ProvenanceBackend> backend;
  std::unique_ptr<QueryEngine> engine;
  ObserverStats stats;
};

class QueryEngineTest : public ::testing::TestWithParam<Architecture> {};

TEST_P(QueryEngineTest, Q1RetrievesEveryObjectVersion) {
  World w(GetParam());
  const Q1Result r = w.engine->q1_all_provenance();
  if (GetParam() == Architecture::kS3Only) {
    // Arch 1 keeps one (the latest) provenance set per data object.
    EXPECT_EQ(r.object_versions,
              w.services.s3.peek_keys(kDataBucket).size() -
                  w.services.s3.peek_keys(kDataBucket, kOverflowPrefix).size());
  } else {
    // SimpleDB keeps one item per flushed object version.
    EXPECT_EQ(r.object_versions, w.stats.flush_units);
  }
  EXPECT_GT(r.records, 0u);
}

TEST_P(QueryEngineTest, Q2FindsExactlyTheBlastOutputs) {
  World w(GetParam());
  const std::set<std::string> outputs =
      w.engine->q2_outputs_of("/usr/bin/blastall");
  EXPECT_EQ(outputs,
            (std::set<std::string>{"blast/hits0", "blast/hits1"}));
}

TEST_P(QueryEngineTest, Q2OfUnknownProgramIsEmpty) {
  World w(GetParam());
  EXPECT_TRUE(w.engine->q2_outputs_of("/usr/bin/never-ran").empty());
}

TEST_P(QueryEngineTest, Q3FindsTransitiveDescendants) {
  World w(GetParam());
  const std::set<std::string> desc =
      w.engine->q3_descendants_of("/usr/bin/blastall");
  // hits0/hits1 themselves, the summary derived from hits0, and the plot
  // derived from the summary. Noise and inputs excluded.
  EXPECT_EQ(desc, (std::set<std::string>{"blast/hits0", "blast/hits1",
                                         "blast/summary", "blast/plot.png"}));
}

INSTANTIATE_TEST_SUITE_P(BothEngines, QueryEngineTest,
                         ::testing::Values(Architecture::kS3Only,
                                           Architecture::kS3SimpleDb),
                         [](const auto& info) {
                           return info.param == Architecture::kS3Only
                                      ? "S3"
                                      : "SimpleDB";
                         });

TEST(QueryCostTest, SimpleDbQ2IsOrdersOfMagnitudeCheaperThanS3) {
  World s3_world(Architecture::kS3Only);
  World sdb_world(Architecture::kS3SimpleDb);

  const auto s3_before = s3_world.env.meter().snapshot();
  s3_world.engine->q2_outputs_of("/usr/bin/blastall");
  const auto s3_cost = s3_world.env.meter().snapshot().diff(s3_before);

  const auto sdb_before = sdb_world.env.meter().snapshot();
  sdb_world.engine->q2_outputs_of("/usr/bin/blastall");
  const auto sdb_cost = sdb_world.env.meter().snapshot().diff(sdb_before);

  // S3 scans everything (HEAD per object + spill GETs); SimpleDB issues a
  // handful of indexed queries.
  EXPECT_GT(s3_cost.calls("s3"), 10u);
  EXPECT_LT(sdb_cost.calls("sdb"), 10u);
  EXPECT_GT(s3_cost.total_calls(), 3 * sdb_cost.total_calls());
  // And moves far more bytes.
  EXPECT_GT(s3_cost.bytes_out("s3"), sdb_cost.bytes_out("sdb"));
}

TEST(QueryCostTest, SdbQ1IssuesOneLookupPerItem) {
  World w(Architecture::kS3SimpleDb);
  const auto before = w.env.meter().snapshot();
  const Q1Result r = w.engine->q1_all_provenance();
  const auto diff = w.env.meter().snapshot().diff(before);
  // "needs to issue one query per item": GetAttributes per item plus the
  // enumeration pages.
  EXPECT_GE(diff.calls("sdb", "GetAttributes"), r.object_versions);
}

TEST(QueryCostTest, S3QueriesCostTheSameScanRegardlessOfQuery) {
  World w(Architecture::kS3Only);
  const auto before2 = w.env.meter().snapshot();
  w.engine->q2_outputs_of("/usr/bin/blastall");
  const auto q2 = w.env.meter().snapshot().diff(before2);
  const auto before3 = w.env.meter().snapshot();
  w.engine->q3_descendants_of("/usr/bin/blastall");
  const auto q3 = w.env.meter().snapshot().diff(before3);
  // Table 3: the S3 column is identical for all three queries -- the cost
  // is one full metadata scan.
  EXPECT_EQ(q2.calls("s3"), q3.calls("s3"));
  EXPECT_EQ(q2.bytes_out("s3"), q3.bytes_out("s3"));
}

}  // namespace
