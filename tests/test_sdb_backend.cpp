// Architecture 2 (S3 + SimpleDB): split storage, MD5+nonce consistency,
// the atomicity hole and the orphan-scan recovery.
#include <gtest/gtest.h>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/serialize.hpp"
#include "util/md5.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace sim = provcloud::sim;
namespace util = provcloud::util;

FlushUnit file_unit(const std::string& object, std::uint32_t version,
                    const std::string& data,
                    std::vector<ProvenanceRecord> records = {}) {
  FlushUnit u;
  u.object = object;
  u.version = version;
  u.kind = PnodeKind::kFile;
  u.data = util::make_shared_bytes(data);
  if (records.empty())
    records = {make_text_record("TYPE", "file"),
               make_text_record("NAME", object)};
  u.records = std::move(records);
  return u;
}

class SdbBackendTest : public ::testing::Test {
 protected:
  SdbBackendTest()
      : env_(11, aws::ConsistencyConfig::strong()), services_(env_) {
    backend_ = make_sdb_backend(services_);
  }
  aws::CloudEnv env_;
  CloudServices services_;
  std::unique_ptr<ProvenanceBackend> backend_;
};

TEST_F(SdbBackendTest, StoreSplitsDataAndProvenance) {
  backend_->store(file_unit("data/f", 1, "contents"));
  // Data lives in S3 with the nonce.
  auto obj = services_.s3.peek(kDataBucket, "data/f");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(*obj->data, "contents");
  EXPECT_EQ(obj->metadata.at(kNonceMetaKey), "1");
  // Provenance lives in SimpleDB under "object:version".
  auto item = services_.sdb.peek_item(kProvenanceDomain, "data/f:1");
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->at("TYPE").count("file"), 1u);
  // Including the MD5(data || nonce) consistency token.
  EXPECT_EQ(item->at(kMd5Attribute).count(util::md5_with_nonce("contents", "1")),
            1u);
}

TEST_F(SdbBackendTest, ReadVerifiesMd5) {
  backend_->store(file_unit("f", 1, "payload"));
  auto got = backend_->read("f");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->verified);
  EXPECT_EQ(*got->data, "payload");
  EXPECT_EQ(got->version, 1u);
  EXPECT_EQ(got->records.size(), 2u);
}

TEST_F(SdbBackendTest, EachVersionKeepsItsProvenance) {
  backend_->store(file_unit("f", 1, "v1"));
  backend_->store(file_unit("f", 2, "v1v2"));
  // Unlike Architecture 1, old version provenance survives.
  EXPECT_TRUE(backend_->get_provenance("f", 1).has_value());
  EXPECT_TRUE(backend_->get_provenance("f", 2).has_value());
  auto got = backend_->read("f");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->version, 2u);
}

TEST_F(SdbBackendTest, LargeValueSpillsToS3) {
  const std::string big(1500, 'e');
  backend_->store(file_unit("f", 1, "x",
                            {make_text_record("TYPE", "file"),
                             make_text_record("ENV", big)}));
  auto item = services_.sdb.peek_item(kProvenanceDomain, "f:1");
  ASSERT_TRUE(item.has_value());
  ASSERT_EQ(item->at("ENV").size(), 1u);
  EXPECT_EQ(item->at("ENV").begin()->rfind(kSpillMarker, 0), 0u);
  // get_provenance resolves the pointer.
  auto prov = backend_->get_provenance("f", 1);
  ASSERT_TRUE(prov.has_value());
  bool found = false;
  for (const auto& r : *prov)
    if (r.attribute == "ENV" && r.text() == big) found = true;
  EXPECT_TRUE(found);
}

TEST_F(SdbBackendTest, ManyRecordsChunkPutAttributes) {
  // batch_size = 1 pins the legacy one-PutAttributes-per-chunk path.
  auto legacy = make_sdb_backend(services_, SdbBackendConfig{.batch_size = 1});
  std::vector<ProvenanceRecord> records;
  for (int i = 0; i < 230; ++i)
    records.push_back(make_xref_record("INPUT", {"in" + std::to_string(i), 1}));
  const auto before = env_.meter().snapshot();
  legacy->store(file_unit("fanin", 1, "x", std::move(records)));
  const auto diff = env_.meter().snapshot().diff(before);
  // 230 records + kind + md5 = 232 attrs -> 3 calls at the 100-attr limit.
  EXPECT_EQ(diff.calls("sdb", "PutAttributes"), 3u);
}

TEST_F(SdbBackendTest, ManyRecordsCoalesceIntoOneBatchPut) {
  // The default batched path: the same 232-attribute record is one
  // BatchPutAttributes round trip (batch entries admit 256 pairs).
  std::vector<ProvenanceRecord> records;
  for (int i = 0; i < 230; ++i)
    records.push_back(make_xref_record("INPUT", {"in" + std::to_string(i), 1}));
  const auto before = env_.meter().snapshot();
  backend_->store(file_unit("fanin", 1, "x", std::move(records)));
  const auto diff = env_.meter().snapshot().diff(before);
  EXPECT_EQ(diff.calls("sdb", "BatchPutAttributes"), 1u);
  EXPECT_EQ(diff.calls("sdb", "PutAttributes"), 0u);
  auto prov = backend_->get_provenance("fanin", 1);
  ASSERT_TRUE(prov.has_value());
  EXPECT_EQ(prov->size(), 230u);
}

TEST_F(SdbBackendTest, ClaimsMatchTableOne) {
  const auto claims = backend_->claims();
  EXPECT_FALSE(claims.atomicity);
  EXPECT_TRUE(claims.consistency);
  EXPECT_TRUE(claims.causal_ordering);
  EXPECT_TRUE(claims.efficient_query);
}

// --- the atomicity hole and recovery ---

class SdbBackendCrashTest : public ::testing::Test {
 protected:
  SdbBackendCrashTest()
      : env_(12, aws::ConsistencyConfig::strong()), services_(env_) {
    backend_ = make_sdb_backend(services_);
  }
  aws::CloudEnv env_;
  CloudServices services_;
  std::unique_ptr<ProvenanceBackend> backend_;
};

TEST_F(SdbBackendCrashTest, CrashBetweenProvAndDataOrphansProvenance) {
  env_.failures().arm_crash("sdb.store.between_prov_and_data");
  EXPECT_THROW(backend_->store(file_unit("f", 1, "x")), sim::CrashError);
  // Provenance recorded, data not: atomicity violated, exactly the paper's
  // scenario.
  EXPECT_TRUE(services_.sdb.peek_item(kProvenanceDomain, "f:1").has_value());
  EXPECT_FALSE(services_.s3.peek(kDataBucket, "f").has_value());
}

TEST_F(SdbBackendCrashTest, RecoverScansAndRemovesOrphans) {
  backend_->store(file_unit("good", 1, "x"));
  env_.failures().arm_crash("sdb.store.between_prov_and_data");
  EXPECT_THROW(backend_->store(file_unit("bad", 1, "y")), sim::CrashError);
  env_.clock().drain();

  backend_->recover();
  // Orphan removed; healthy item untouched.
  EXPECT_FALSE(services_.sdb.peek_item(kProvenanceDomain, "bad:1").has_value());
  EXPECT_TRUE(services_.sdb.peek_item(kProvenanceDomain, "good:1").has_value());
  auto* sdb_backend = dynamic_cast<SdbBackend*>(backend_.get());
  ASSERT_NE(sdb_backend, nullptr);
  EXPECT_EQ(sdb_backend->last_recovery_orphans(), 1u);
}

TEST_F(SdbBackendCrashTest, RecoverKeepsOldVersionItems) {
  backend_->store(file_unit("f", 1, "v1"));
  backend_->store(file_unit("f", 2, "v1v2"));
  backend_->recover();
  // Provenance of superseded versions is legitimate, not orphaned.
  EXPECT_TRUE(services_.sdb.peek_item(kProvenanceDomain, "f:1").has_value());
  EXPECT_TRUE(services_.sdb.peek_item(kProvenanceDomain, "f:2").has_value());
}

TEST_F(SdbBackendCrashTest, OrphanedNewVersionRemovedDataKeepsOld) {
  backend_->store(file_unit("f", 1, "v1"));
  env_.failures().arm_crash("sdb.store.between_prov_and_data");
  EXPECT_THROW(backend_->store(file_unit("f", 2, "v1v2")), sim::CrashError);
  env_.clock().drain();
  backend_->recover();
  EXPECT_TRUE(services_.sdb.peek_item(kProvenanceDomain, "f:1").has_value());
  EXPECT_FALSE(services_.sdb.peek_item(kProvenanceDomain, "f:2").has_value());
  // The old data/provenance pair still reads consistently.
  auto got = backend_->read("f");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->verified);
  EXPECT_EQ(got->version, 1u);
}

// --- consistency detection under staleness ---

class SdbBackendEventualTest : public ::testing::Test {
 protected:
  static aws::ConsistencyConfig slow() {
    aws::ConsistencyConfig c;
    c.replicas = 3;
    c.propagation_min = sim::kSecond;
    c.propagation_max = 5 * sim::kSecond;
    return c;
  }
  SdbBackendEventualTest() : env_(13, slow()), services_(env_) {
    backend_ = make_sdb_backend(services_);
  }
  aws::CloudEnv env_;
  CloudServices services_;
  std::unique_ptr<ProvenanceBackend> backend_;
};

TEST_F(SdbBackendEventualTest, VerifiedReadsAreNeverMismatched) {
  backend_->store(file_unit("f", 1, "one"));
  env_.clock().advance_by(500 * sim::kMillisecond);
  backend_->store(file_unit("f", 2, "onetwo"));
  for (int i = 0; i < 60; ++i) {
    env_.clock().advance_by(100 * sim::kMillisecond);
    auto got = backend_->read("f");
    if (!got || !got->verified) continue;
    // A verified pair must be internally consistent: recompute the token.
    const std::string nonce = std::to_string(got->version);
    bool md5_ok = false;
    auto item = services_.sdb.peek_item(kProvenanceDomain,
                                        item_name("f", got->version));
    ASSERT_TRUE(item.has_value());
    md5_ok = item->at(kMd5Attribute).count(
                 util::md5_with_nonce(*got->data, nonce)) == 1;
    EXPECT_TRUE(md5_ok);
    // And the data must be the right bytes for that version.
    if (got->version == 1)
      EXPECT_EQ(*got->data, "one");
    else
      EXPECT_EQ(*got->data, "onetwo");
  }
}

TEST_F(SdbBackendEventualTest, StalenessCausesRetriesNotWrongAnswers) {
  backend_->store(file_unit("f", 1, "one"));
  env_.clock().drain();
  std::uint64_t retries = 0;
  backend_->store(file_unit("f", 2, "onetwo"));
  for (int i = 0; i < 40; ++i) {
    auto got = backend_->read("f");
    if (got) retries += got->retries;
  }
  // With a 5s window and no clock advance between reads, at least some
  // reads must have hit a mismatch and retried.
  EXPECT_GT(retries, 0u);
}

TEST_F(SdbBackendEventualTest, SameContentOverwriteDetectedByNonce) {
  // "a file is overwritten with the same data. In such cases, new
  // provenance will be generated but the MD5sum of the data will be the
  // same as before" -- the nonce disambiguates.
  backend_->store(file_unit("f", 1, "same-bytes"));
  env_.clock().drain();
  backend_->store(file_unit("f", 2, "same-bytes"));
  env_.clock().drain();
  auto got = backend_->read("f");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->verified);
  EXPECT_EQ(got->version, 2u);
}

}  // namespace
