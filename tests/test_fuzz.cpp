// Randomized property tests: arbitrary syscall traces through PASS and the
// backends, with and without random crash injection, checking the
// invariants that hold by construction:
//
//   P1  flush order is causal: every xref emitted points to an
//       already-flushed (object, version);
//   P2  the provenance graph is acyclic;
//   P3  no (object, version) is flushed twice, and records within a version
//       are unique;
//   P4  after settling, every latest file version is readable, verified,
//       and byte-identical to PASS's ground truth -- on every architecture;
//   P5  after a random crash + daemon settling, the cloud state passes the
//       same no-torn-state checks the Table-1 sweep uses (for the
//       architectures that claim atomicity).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cloudprov/backend.hpp"
#include "cloudprov/consistency_read.hpp"
#include "cloudprov/serialize.hpp"
#include "pass/observer.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"

namespace {

using namespace provcloud::cloudprov;
using namespace provcloud::pass;
namespace aws = provcloud::aws;
namespace sim = provcloud::sim;
namespace util = provcloud::util;

/// A random but well-formed trace: processes exec, read existing files,
/// write/append files, close, fork, occasionally re-read their own output.
SyscallTrace random_trace(util::Rng& rng, std::size_t events) {
  SyscallTrace t;
  std::vector<Pid> pids;
  std::vector<std::string> files;
  Pid next_pid = 100;

  const auto some_file = [&]() -> std::string {
    if (files.empty() || rng.next_bool(0.3)) {
      files.push_back("f" + std::to_string(files.size()));
      return files.back();
    }
    return files[rng.next_below(files.size())];
  };
  const auto some_pid = [&]() -> Pid {
    if (pids.empty() || rng.next_bool(0.15)) {
      pids.push_back(next_pid++);
      t.push_back(ev_exec(pids.back(),
                          "/bin/tool" + std::to_string(rng.next_below(5)),
                          {"tool"}, {{"E", rng.next_hex(rng.next_below(96))}}));
      return pids.back();
    }
    return pids[rng.next_below(pids.size())];
  };

  for (std::size_t i = 0; i < events; ++i) {
    const Pid pid = some_pid();
    switch (rng.next_below(6)) {
      case 0:
      case 1: {
        const std::string f = some_file();
        t.push_back(ev_write(pid, f, util::Bytes(1 + rng.next_below(256),
                                                 static_cast<char>(
                                                     'a' + rng.next_below(26)))));
        if (rng.next_bool(0.7)) t.push_back(ev_close(pid, f));
        break;
      }
      case 2: {
        if (files.empty()) break;
        t.push_back(ev_read(pid, files[rng.next_below(files.size())]));
        break;
      }
      case 3: {
        const Pid child = next_pid++;
        pids.push_back(child);
        t.push_back(ev_fork(pid, child));
        break;
      }
      case 4: {
        if (files.empty()) break;
        t.push_back(ev_close(pid, files[rng.next_below(files.size())]));
        break;
      }
      case 5: {
        t.push_back(ev_exit(pid));
        break;
      }
    }
  }
  return t;
}

/// P1-P3 over the raw flush stream.
void check_flush_invariants(const std::vector<FlushUnit>& units) {
  std::set<std::pair<std::string, std::uint32_t>> flushed;
  for (const FlushUnit& u : units) {
    const auto key = std::make_pair(u.object, u.version);
    EXPECT_EQ(flushed.count(key), 0u)
        << u.object << ":" << u.version << " flushed twice";
    for (const ProvenanceRecord& r : u.records) {
      if (!r.is_xref()) continue;
      EXPECT_TRUE(flushed.count({r.xref().object, r.xref().version}) > 0)
          << u.object << ":" << u.version << " references unflushed "
          << r.xref().to_string();
    }
    // Duplicate records within a version are forbidden.
    for (std::size_t i = 0; i < u.records.size(); ++i)
      for (std::size_t j = i + 1; j < u.records.size(); ++j)
        EXPECT_FALSE(u.records[i] == u.records[j])
            << "duplicate record in " << u.object << ":" << u.version;
    flushed.insert(key);
  }
  // P2 is implied by P1: references only go to already-flushed nodes.
}

class FuzzTrace : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTrace, FlushStreamInvariants) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<FlushUnit> units;
  PassObserver obs([&units](const FlushUnit& u) { units.push_back(u); });
  obs.apply_trace(random_trace(rng, 400));
  obs.finish();
  ASSERT_FALSE(units.empty());
  check_flush_invariants(units);
}

TEST_P(FuzzTrace, AllArchitecturesServeGroundTruth) {
  for (const Architecture arch :
       {Architecture::kS3Only, Architecture::kS3SimpleDb,
        Architecture::kS3SimpleDbSqs}) {
    util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
    aws::ConsistencyConfig c;
    c.replicas = 3;
    c.propagation_min = 10 * sim::kMillisecond;
    c.propagation_max = 800 * sim::kMillisecond;
    aws::CloudEnv env(static_cast<std::uint64_t>(GetParam()), c);
    CloudServices services(env);
    auto backend = make_backend(arch, services);
    PassObserver obs([&backend](const FlushUnit& u) { backend->store(u); });
    obs.apply_trace(random_trace(rng, 250));
    obs.finish();
    env.clock().drain();
    backend->quiesce();
    env.clock().drain();

    // Latest flushed version per file must read back verified and intact.
    std::map<std::string, const FlushUnit*> latest;
    for (const auto& [key, unit] : obs.ground_truth())
      if (unit.kind == PnodeKind::kFile) {
        auto it = latest.find(key.first);
        if (it == latest.end() || it->second->version < unit.version)
          latest[key.first] = &unit;
      }
    for (const auto& [object, unit] : latest) {
      auto got = backend->read(object, 200);
      ASSERT_TRUE(got.has_value()) << to_string(arch) << " " << object;
      EXPECT_TRUE(got->verified) << to_string(arch) << " " << object;
      EXPECT_EQ(got->version, unit->version) << to_string(arch) << " " << object;
      EXPECT_EQ(*got->data, *unit->data) << to_string(arch) << " " << object;
    }
  }
}

TEST_P(FuzzTrace, WalSurvivesRandomCrash) {
  // Crash at a random occurrence of a random WAL crash point; after daemon
  // settling, the cloud must show no torn state (data <-> provenance
  // matched via MD5+nonce for every file object).
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const std::vector<std::string> points = {
      "wal.store.after_begin",    "wal.store.after_temp_put",
      "wal.store.mid_records",    "wal.store.before_commit",
      "wal.store.after_commit",   "commitd.after_receive",
      "commitd.after_copy",       "commitd.after_sdb",
      "commitd.mid_message_delete"};
  aws::CloudEnv env(static_cast<std::uint64_t>(GetParam()),
                    aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDbSqs, services);
  env.failures().arm_crash(points[rng.next_below(points.size())],
                           1 + rng.next_below(20));

  PassObserver obs([&backend](const FlushUnit& u) { backend->store(u); });
  try {
    obs.apply_trace(random_trace(rng, 300));
    obs.finish();
  } catch (const sim::CrashError&) {
    // client died; daemons keep going below
  }
  env.clock().drain();
  backend->quiesce();
  env.clock().drain();
  backend->recover();

  // No torn state: every file data object has a matching provenance item.
  for (const std::string& key : services.s3.peek_keys(kDataBucket)) {
    if (key.rfind(kOverflowPrefix, 0) == 0 || key.rfind(kTempPrefix, 0) == 0)
      continue;
    auto obj = services.s3.peek(kDataBucket, key);
    ASSERT_TRUE(obj.has_value());
    auto nonce_it = obj->metadata.find(kNonceMetaKey);
    ASSERT_NE(nonce_it, obj->metadata.end()) << key;
    auto item = services.sdb.peek_item(kProvenanceDomain,
                                       key + ":" + nonce_it->second);
    ASSERT_TRUE(item.has_value()) << "data without provenance: " << key;
    auto md5_it = item->find(kMd5Attribute);
    ASSERT_NE(md5_it, item->end()) << key;
    EXPECT_EQ(*md5_it->second.begin(),
              util::md5_with_nonce(*obj->data, nonce_it->second))
        << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTrace,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
