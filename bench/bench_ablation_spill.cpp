// Ablation A3: the large-record spill threshold.
//
// The paper fixes the spill threshold at 1 KB ("we store any record larger
// than 1KB in a separate S3 object") because of the SimpleDB value limit.
// For Architecture 1, though, the threshold is a free design parameter
// bounded only by the 2 KB total-metadata budget. This ablation computes,
// from the real record-size distribution of the combined workload, how the
// threshold choice moves the number of extra PUTs (Table 2's arch-1 ops
// column) and the bytes that leave the atomic data+provenance envelope --
// the paper's read-correctness exposure.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "pass/observer.hpp"

using namespace provcloud;

int main() {
  const workloads::WorkloadOptions options = bench::bench_workload_options();
  bench::print_header(
      "Ablation A3: spill threshold vs extra ops and unprotected bytes");

  // Collect the record-size distribution from a PASS run (no backend
  // needed: the distribution is a property of the trace).
  pass::PassObserver observer([](const pass::FlushUnit&) {});
  observer.apply_trace(workloads::build_combined_trace(options));
  observer.finish();

  std::vector<std::size_t> sizes;
  std::uint64_t total_units = 0;
  for (const auto& [key, unit] : observer.ground_truth()) {
    ++total_units;
    for (const auto& r : unit.records) sizes.push_back(r.payload_size());
  }
  std::sort(sizes.begin(), sizes.end());
  std::uint64_t total_bytes = 0;
  for (std::size_t s : sizes) total_bytes += s;

  std::printf("%s records across %s object versions; %s of provenance\n",
              bench::fmt_count(sizes.size()).c_str(),
              bench::fmt_count(total_units).c_str(),
              bench::fmt_bytes(total_bytes).c_str());
  std::printf("record sizes: p50=%zuB p90=%zuB p99=%zuB max=%zuB\n\n",
              sizes[sizes.size() / 2], sizes[sizes.size() * 9 / 10],
              sizes[sizes.size() * 99 / 100], sizes.back());

  std::printf("%-12s %14s %18s %20s\n", "threshold", "spilled-recs",
              "extra-PUT-ops", "unprotected-bytes");
  bench::print_rule();

  std::uint64_t prev_spilled = UINT64_MAX;
  bool monotone = true;
  for (std::size_t threshold : {256u, 512u, 1024u, 1536u, 1900u}) {
    std::uint64_t spilled = 0, spilled_bytes = 0;
    for (std::size_t s : sizes) {
      if (s > threshold) {
        ++spilled;
        spilled_bytes += s;
      }
    }
    std::printf("%-12zu %14s %18s %20s\n", threshold,
                bench::fmt_count(spilled).c_str(),
                bench::fmt_count(spilled).c_str(),
                bench::fmt_bytes(spilled_bytes).c_str());
    monotone = monotone && spilled <= prev_spilled;
    prev_spilled = spilled;
  }

  // The 2 KB metadata budget also caps how much can stay inline per object;
  // report how many object versions would overflow it at the paper's 1 KB
  // threshold.
  std::uint64_t overflowing = 0;
  for (const auto& [key, unit] : observer.ground_truth()) {
    std::uint64_t inline_bytes = 64;  // bookkeeping keys
    for (const auto& r : unit.records) {
      const std::size_t s = r.payload_size();
      inline_bytes += (s > 1024 ? 64 : s) + 4;
    }
    if (inline_bytes > 2048) ++overflowing;
  }
  std::printf("\nobject versions whose inline metadata would exceed S3's 2KB "
              "limit at the 1KB threshold: %s of %s\n",
              bench::fmt_count(overflowing).c_str(),
              bench::fmt_count(total_units).c_str());
  std::printf("(the paper: 'This is a serious limitation in environments "
              "where the provenance of a process exceeds the 2KB limit "
              "(which we see regularly)')\n");

  std::printf("\nshape check (spill count monotonically falls with the "
              "threshold): %s\n",
              monotone ? "PASS" : "FAIL");
  return monotone ? 0 : 1;
}
