// Experiment A4: dollars and elapsed time.
//
// Section 5 closes with: "operations are much cheaper (in USD) than storage
// in the AWS pricing model", and the conclusion notes a prototype would let
// them "measure the impact of the extra operations on elapsed time". This
// bench prices each architecture's full workload run with the paper's
// January-2009 price sheet and reports the client elapsed time from the
// per-client latency ledger -- with shard_count = 1 / parallelism = 1 the
// ledger timeline is bit-identical to the retired global-clock charging
// (asserted below against busy_time), and a second sweep shows the latency
// *hiding* a sharded + parallel layout buys: overlapped scatter/gather is
// charged its critical path instead of the sum of its legs.
#include <cstdio>

#include <map>

#include "bench_common.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/wal_backend.hpp"
#include "cost/pricing.hpp"
#include "workloads/blast.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;
using namespace provcloud::cost;
namespace sim = provcloud::sim;

namespace {

/// One sharded run: workload stores + the Q2/Q3 scatter/gather queries,
/// elapsed time split per phase from the driver's ledger timeline.
struct ElapsedPoint {
  std::size_t parallelism = 1;
  sim::SimTime store_elapsed = 0;
  sim::SimTime query_elapsed = 0;
  std::uint64_t total_calls = 0;
  sim::SimTime total() const { return store_elapsed + query_elapsed; }
};

ElapsedPoint run_elapsed_point(Architecture arch,
                               const pass::SyscallTrace& trace,
                               std::size_t shards, std::size_t parallelism) {
  bench::WorkloadRun run([&](CloudServices& s)
                             -> std::unique_ptr<ProvenanceBackend> {
    if (arch == Architecture::kS3SimpleDb)
      return make_sdb_backend(s, SdbBackendConfig{.shard_count = shards,
                                                  .parallelism = parallelism});
    WalBackendConfig cfg;
    cfg.shard_count = shards;
    cfg.parallelism = parallelism;
    return make_wal_backend(s, cfg);
  });
  ElapsedPoint p;
  p.parallelism = parallelism;
  run.run(trace);
  p.store_elapsed = run.env.elapsed_time();
  auto engine = make_sdb_query_engine(
      run.services,
      SdbQueryConfig{.shard_count = shards, .parallelism = parallelism});
  engine->q2_outputs_of(workloads::BlastWorkload::kBlastProgram);
  engine->q3_descendants_of(workloads::BlastWorkload::kBlastProgram);
  p.query_elapsed = run.env.elapsed_time() - p.store_elapsed;
  p.total_calls = run.env.meter().snapshot().total_calls();
  return p;
}

double as_min(sim::SimTime t) {
  return static_cast<double>(t) / sim::kMinute;
}

/// One session-group-commit run: the workload driven through a Session
/// with `group` closes coalesced per durability barrier.
struct GroupPoint {
  std::size_t group = 1;
  double usd = 0;                   // full-run cost (incl. transfer+storage)
  std::uint64_t closes = 0;            // flush units stored
  std::uint64_t sdb_write_rts = 0;     // PutAttributes + BatchPutAttributes
  std::uint64_t sqs_send_rts = 0;      // SendMessage + SendMessageBatch
  std::uint64_t write_rts = 0;   // all write RTs: S3 PUT/COPY + sdb writes
  std::uint64_t total_calls = 0;
  sim::SimTime elapsed = 0;
  bench::LatencyPercentiles close;  // per-close latency (close.latency_us)
};

GroupPoint run_group_point(Architecture arch, const pass::SyscallTrace& trace,
                           std::size_t group) {
  bench::WorkloadRun run(arch);
  run.group_size = group;
  run.run(trace);
  GroupPoint p;
  p.group = group;
  p.close = bench::LatencyPercentiles::of(run.env.metrics(),
                                          "close.latency_us");
  const auto snap = run.env.meter().snapshot();
  p.usd = estimate_cost(snap).total();
  p.closes = run.stats.flush_units;
  p.sdb_write_rts = snap.calls("sdb", "PutAttributes") +
                    snap.calls("sdb", "BatchPutAttributes");
  p.sqs_send_rts = snap.calls("sqs", "SendMessage") +
                   snap.calls("sqs", "SendMessageBatch");
  p.write_rts = snap.calls("s3", "PUT") + snap.calls("s3", "COPY") +
                snap.calls("s3", "DELETE") + p.sdb_write_rts;
  p.total_calls = snap.total_calls();
  p.elapsed = run.env.elapsed_time();
  return p;
}

/// One deadline-driven run: a fixed offered load (one close per 20 ms of
/// simulated time, group cap 25) with the adaptive flush deadline swept.
/// Short deadlines flush small groups (deadline expiry wins); long ones let
/// groups fill toward the cap, shedding write round trips at the price of
/// closes idling in the queue -- the idle wait lands on the ledger.
struct DeadlinePoint {
  sim::SimTime deadline = 0;
  std::uint64_t write_rts = 0;  // the arch's batched write: sdb RTs or sqs sends
  sim::SimTime elapsed = 0;
  sim::SimTime idle = 0;
};

DeadlinePoint run_deadline_point(Architecture arch,
                                 const pass::SyscallTrace& trace,
                                 sim::SimTime deadline) {
  bench::WorkloadRun run(arch);
  run.group_size = 25;
  run.flush_deadline = deadline;
  run.inter_close_gap = 20 * sim::kMillisecond;
  run.run(trace);
  DeadlinePoint p;
  p.deadline = deadline;
  const auto snap = run.env.meter().snapshot();
  if (arch == Architecture::kS3SimpleDb) {
    p.write_rts = snap.calls("sdb", "PutAttributes") +
                  snap.calls("sdb", "BatchPutAttributes");
  } else if (arch == Architecture::kS3SimpleDbSqs) {
    p.write_rts = snap.calls("sqs", "SendMessage") +
                  snap.calls("sqs", "SendMessageBatch");
  } else {
    // Arch 4: the whole write path -- segment PUTs plus index batches.
    p.write_rts = snap.calls("s3", "PUT") + snap.calls("s3", "COPY") +
                  snap.calls("s3", "DELETE") +
                  snap.calls("sdb", "PutAttributes") +
                  snap.calls("sdb", "BatchPutAttributes");
  }
  p.elapsed = run.env.elapsed_time();
  const auto by_service = run.env.elapsed_by_service();
  const auto idle_it = by_service.find("idle");
  p.idle = idle_it == by_service.end() ? 0 : idle_it->second;
  return p;
}

}  // namespace

int main() {
  const workloads::WorkloadOptions options = bench::bench_workload_options();
  bench::print_header(
      "A4: USD cost and elapsed-time impact per architecture (Jan-2009 "
      "prices)");
  std::printf("workload: combined dataset (count_scale %.2f, size_scale "
              "%.2f); latency model: ~45ms/request, 4MB/s up, 8MB/s down\n",
              options.count_scale, options.size_scale);

  const pass::SyscallTrace trace = workloads::build_combined_trace(options);

  std::printf("\n%-17s %10s %10s %10s %10s %10s | %10s %12s\n", "", "req USD",
              "xfer USD", "store/mo", "sdb box", "total", "ops",
              "elapsed");
  bench::print_rule();

  bool ledger_matches_legacy = true;
  bool service_split_sums = true;
  double arch1_total = 0, arch3_total = 0;
  sim::SimTime arch1_elapsed = 0, arch3_elapsed = 0;
  sim::SimTime arch2_seq_elapsed = 0, arch3_seq_elapsed = 0,
               arch4_seq_elapsed = 0;
  std::uint64_t arch2_seq_calls = 0, arch3_seq_calls = 0, arch4_seq_calls = 0;
  std::map<std::string, sim::SimTime, std::less<>> arch_by_service[4];
  bench::LatencyPercentiles arch_close[4];
  std::size_t arch_index = 0;
  for (const Architecture arch :
       {Architecture::kS3Only, Architecture::kS3SimpleDb,
        Architecture::kS3SimpleDbSqs, Architecture::kS3SegmentLog}) {
    bench::WorkloadRun run(arch);
    run.run(trace);
    const auto snap = run.env.meter().snapshot();
    const CostEstimate c = estimate_cost(snap);
    const double requests = c.s3_requests + c.sqs_requests;
    const double transfer = c.s3_transfer + c.sdb_transfer + c.sqs_transfer;
    const double storage = c.s3_storage_month + c.sdb_storage_month;
    const sim::SimTime elapsed = run.env.elapsed_time();
    // The acceptance bar for the ledger refactor: a sequential
    // (parallelism = 1) run's timeline is the exact sum the retired
    // charge_latency mode produced. The session refactor inherits the same
    // bar: these runs go through a group-size-1 Session.
    ledger_matches_legacy =
        ledger_matches_legacy && elapsed == run.env.busy_time();
    // Per-service breakdown: which service the client actually waited on;
    // the split must account for the whole timeline.
    arch_by_service[arch_index] = run.env.elapsed_by_service();
    sim::SimTime split_sum = 0;
    for (const auto& [service, t] : arch_by_service[arch_index])
      split_sum += t;
    service_split_sums = service_split_sums && split_sum == elapsed;
    arch_close[arch_index] =
        bench::LatencyPercentiles::of(run.env.metrics(), "close.latency_us");
    ++arch_index;
    std::printf("%-17s %10s %10s %10s %10s %10s | %10s %9.1f min\n",
                to_string(arch), format_usd(requests).c_str(),
                format_usd(transfer).c_str(), format_usd(storage).c_str(),
                format_usd(c.sdb_box_usage).c_str(),
                format_usd(c.total()).c_str(),
                bench::fmt_count(snap.total_calls()).c_str(),
                as_min(elapsed));
    if (arch == Architecture::kS3Only) {
      arch1_total = c.total();
      arch1_elapsed = elapsed;
    }
    if (arch == Architecture::kS3SimpleDb) {
      arch2_seq_elapsed = elapsed;
      arch2_seq_calls = snap.total_calls();
    }
    if (arch == Architecture::kS3SimpleDbSqs) {
      arch3_total = c.total();
      arch3_elapsed = elapsed;
      arch3_seq_elapsed = elapsed;
      arch3_seq_calls = snap.total_calls();
    }
    if (arch == Architecture::kS3SegmentLog) {
      arch4_seq_elapsed = elapsed;
      arch4_seq_calls = snap.total_calls();
    }
  }

  std::printf("\nelapsed time by service waited on (critical path split):\n");
  arch_index = 0;
  for (const Architecture arch :
       {Architecture::kS3Only, Architecture::kS3SimpleDb,
        Architecture::kS3SimpleDbSqs, Architecture::kS3SegmentLog}) {
    std::printf("%-17s", to_string(arch));
    for (const auto& [service, t] : arch_by_service[arch_index])
      std::printf("  %s %.1f min", service.c_str(), as_min(t));
    std::printf("\n");
    ++arch_index;
  }

  std::printf("\nper-close latency percentiles (close.latency_us):\n");
  arch_index = 0;
  for (const Architecture arch :
       {Architecture::kS3Only, Architecture::kS3SimpleDb,
        Architecture::kS3SimpleDbSqs, Architecture::kS3SegmentLog}) {
    const bench::LatencyPercentiles& p = arch_close[arch_index];
    std::printf("%-17s  p50 %8llu us   p99 %8llu us   p999 %8llu us\n",
                to_string(arch), static_cast<unsigned long long>(p.p50),
                static_cast<unsigned long long>(p.p99),
                static_cast<unsigned long long>(p.p999));
    ++arch_index;
  }

  std::printf("\nfull-properties premium (arch3 vs arch1): %.2fx USD, %.2fx "
              "elapsed time\n",
              arch3_total / arch1_total,
              static_cast<double>(arch3_elapsed) /
                  static_cast<double>(arch1_elapsed));
  std::printf("(the paper's claim to verify: the premium is dominated by "
              "operations, which are cheap relative to storage/transfer.)\n");

  // --- latency hiding: the sharded layouts at parallelism 1 vs N ---
  //
  // Same layout, same billing; the parallel run overlaps per-domain round
  // trips (WAL flush, query scatter/gather), so its timeline reports the
  // critical path instead of the sum -- the elapsed-time payoff the paper's
  // conclusion asks about.
  const std::size_t shards = 4;
  const std::size_t parallelism = bench::bench_parallelism();
  struct ArchSweep {
    Architecture arch;
    const char* label;
    ElapsedPoint seq;
    ElapsedPoint par;
  };
  std::vector<ArchSweep> sweeps;
  for (const Architecture arch :
       {Architecture::kS3SimpleDb, Architecture::kS3SimpleDbSqs}) {
    ArchSweep sweep;
    sweep.arch = arch;
    sweep.label = to_string(arch);
    sweep.seq = run_elapsed_point(arch, trace, shards, 1);
    if (parallelism > 1)
      sweep.par = run_elapsed_point(arch, trace, shards, parallelism);
    sweeps.push_back(sweep);
  }

  bool parallel_ok = true;
  if (parallelism > 1) {
    std::printf("\nelapsed time, %zu shard domains (store + Q2/Q3 queries):\n",
                shards);
    std::printf("%-17s %4s %12s %12s %12s\n", "", "par", "store min",
                "query min", "total min");
    bench::print_rule();
    for (const ArchSweep& sweep : sweeps) {
      for (const ElapsedPoint* p : {&sweep.seq, &sweep.par})
        std::printf("%-17s %4zu %12.1f %12.1f %12.1f\n", sweep.label,
                    p->parallelism, as_min(p->store_elapsed),
                    as_min(p->query_elapsed), as_min(p->total()));
      // Critical path cannot exceed the sequential sum, and overlapping
      // changes no billing.
      parallel_ok = parallel_ok && sweep.par.total() <= sweep.seq.total();
      parallel_ok =
          parallel_ok && sweep.par.total_calls == sweep.seq.total_calls;
      std::printf("%-17s      latency hidden by overlap: %.1f min (%.2fx)\n",
                  "", as_min(sweep.seq.total() - sweep.par.total()),
                  sweep.par.total() > 0
                      ? static_cast<double>(sweep.seq.total()) /
                            static_cast<double>(sweep.par.total())
                      : 0.0);
    }
  }

  // --- cross-close group commit: the session group-size sweep ---
  //
  // Same workload, same layout, submitted through a Session that coalesces
  // `group` closes per durability barrier. Arch 2 turns a group into one
  // BatchPutAttributes chain (instead of one per close); Arch 3 turns a
  // group's WAL records into batched SQS sends. group 1 must reproduce the
  // per-close runs above exactly.
  const std::vector<std::size_t> group_sizes{1, 8, 25};
  std::printf("\nsession group commit ($ and elapsed vs. group size):\n");
  std::printf("%-17s %5s %10s %12s %11s %11s %11s %12s\n", "", "group",
              "$/close", "sdb write RT", "sqs sends", "write RTs",
              "elapsed min", "total calls");
  bench::print_rule();
  std::vector<std::pair<Architecture, std::vector<GroupPoint>>> group_sweeps;
  for (const Architecture arch :
       {Architecture::kS3SimpleDb, Architecture::kS3SimpleDbSqs,
        Architecture::kS3SegmentLog}) {
    std::vector<GroupPoint> points;
    for (const std::size_t group : group_sizes)
      points.push_back(run_group_point(arch, trace, group));
    for (const GroupPoint& p : points)
      std::printf("%-17s %5zu %10.6f %12s %11s %11s %11.1f %12s\n",
                  to_string(arch), p.group,
                  p.closes > 0 ? p.usd / static_cast<double>(p.closes) : 0.0,
                  bench::fmt_count(p.sdb_write_rts).c_str(),
                  bench::fmt_count(p.sqs_send_rts).c_str(),
                  bench::fmt_count(p.write_rts).c_str(), as_min(p.elapsed),
                  bench::fmt_count(p.total_calls).c_str());
    group_sweeps.emplace_back(arch, std::move(points));
  }
  // Group 1 == the per-close protocol (same run as the table above);
  // group 25 must actually shed round trips where the architecture
  // batches: SimpleDB writes for Arch 2, SQS sends for Arch 3, the whole
  // write path (one segment PUT per group, a sliver of an index batch) for
  // Arch 4.
  bool group_ok = true;
  for (const auto& [arch, points] : group_sweeps) {
    const GroupPoint& g1 = points.front();
    const GroupPoint& g25 = points.back();
    if (arch == Architecture::kS3SimpleDb) {
      group_ok = group_ok && g1.elapsed == arch2_seq_elapsed &&
                 g1.total_calls == arch2_seq_calls;
      group_ok = group_ok && g25.sdb_write_rts * 2 <= g1.sdb_write_rts;
    } else if (arch == Architecture::kS3SimpleDbSqs) {
      group_ok = group_ok && g1.elapsed == arch3_seq_elapsed &&
                 g1.total_calls == arch3_seq_calls;
      group_ok = group_ok && g25.sqs_send_rts * 2 <= g1.sqs_send_rts;
    } else {
      group_ok = group_ok && g1.elapsed == arch4_seq_elapsed &&
                 g1.total_calls == arch4_seq_calls;
      group_ok = group_ok && g25.write_rts * 2 <= g1.write_rts;
    }
    // Batching never makes the client's timeline longer.
    group_ok = group_ok && g25.elapsed <= g1.elapsed;
  }
  // The Arch-4 payoff bar: at group 25 the segment log amortizes a whole
  // group into one PUT plus a fraction of one index batch, so it must shed
  // >= 5x the write round trips AND >= 5x the $/close of Arch 2 at the
  // same group size.
  const GroupPoint& arch2_g25 = group_sweeps[0].second.back();
  const GroupPoint& arch4_g25 = group_sweeps[2].second.back();
  const double arch2_usd_close =
      arch2_g25.closes > 0
          ? arch2_g25.usd / static_cast<double>(arch2_g25.closes)
          : 0.0;
  const double arch4_usd_close =
      arch4_g25.closes > 0
          ? arch4_g25.usd / static_cast<double>(arch4_g25.closes)
          : 0.0;
  const bool lsb_payoff_ok =
      arch4_g25.write_rts * 5 <= arch2_g25.write_rts &&
      arch4_usd_close * 5.0 <= arch2_usd_close;
  std::printf("\narch4 vs arch2 at group 25: %.1fx fewer write RTs, %.1fx "
              "cheaper per close\n",
              arch4_g25.write_rts > 0
                  ? static_cast<double>(arch2_g25.write_rts) /
                        static_cast<double>(arch4_g25.write_rts)
                  : 0.0,
              arch4_usd_close > 0 ? arch2_usd_close / arch4_usd_close : 0.0);

  // --- adaptive flush deadline at fixed offered load ---
  //
  // One close arrives per 20 ms; the daemon flushes on group-full (25) or
  // deadline expiry, whichever first. Sweeping the deadline trades write
  // round trips against queue idle time: at 25 ms a group barely pairs up,
  // at 400 ms groups fill toward the cap.
  const std::vector<sim::SimTime> deadlines{25 * sim::kMillisecond,
                                            100 * sim::kMillisecond,
                                            400 * sim::kMillisecond};
  std::printf("\nadaptive flush deadline (one close per 20 ms, group cap "
              "25):\n");
  std::printf("%-17s %9s %12s %12s %12s\n", "", "deadline", "write RTs",
              "elapsed min", "idle min");
  bench::print_rule();
  bool deadline_ok = true;
  std::vector<std::pair<Architecture, std::vector<DeadlinePoint>>>
      deadline_sweeps;
  for (const Architecture arch :
       {Architecture::kS3SimpleDb, Architecture::kS3SimpleDbSqs,
        Architecture::kS3SegmentLog}) {
    std::vector<DeadlinePoint> points;
    for (const sim::SimTime deadline : deadlines)
      points.push_back(run_deadline_point(arch, trace, deadline));
    for (const DeadlinePoint& p : points) {
      std::printf("%-17s %6lld ms %12s %12.1f %12.1f\n", to_string(arch),
                  static_cast<long long>(p.deadline / sim::kMillisecond),
                  bench::fmt_count(p.write_rts).c_str(), as_min(p.elapsed),
                  as_min(p.idle));
      // Deadline-expiry flushes really idled: the wait is on the ledger.
      deadline_ok = deadline_ok && p.idle > 0;
    }
    // A longer deadline coalesces more closes per flush, never fewer.
    for (std::size_t i = 1; i < points.size(); ++i)
      deadline_ok =
          deadline_ok && points[i].write_rts <= points[i - 1].write_rts;
    deadline_sweeps.emplace_back(arch, std::move(points));
  }

  const bool premium_ok = arch3_total < 4.0 * arch1_total;
  const bool ok = premium_ok && ledger_matches_legacy && parallel_ok &&
                  group_ok && lsb_payoff_ok && service_split_sums &&
                  deadline_ok;
  std::printf("\nshape check (premium < 4x in USD; sequential ledger == "
              "legacy busy time; parallel critical path <= sequential sum "
              "at equal billing; group 1 == per-close protocol and group 25 "
              "sheds >= 2x write RTs; arch4 at group 25 sheds >= 5x write "
              "RTs and >= 5x $/close vs arch2; per-service split sums to "
              "elapsed; deadline sweep sheds write RTs as the deadline "
              "grows with idle wait on the ledger): %s\n",
              ok ? "PASS" : "FAIL");

  if (const char* path = bench::json_output_path()) {
    bench::JsonObject j;
    j.add("bench", std::string("cost_usd"));
    j.add("count_scale", options.count_scale);
    j.add("parallelism", static_cast<std::uint64_t>(parallelism));
    j.add("hw_threads", static_cast<std::uint64_t>(bench::hardware_threads()));
    j.add("arch1_elapsed_us", static_cast<std::uint64_t>(arch1_elapsed));
    j.add("arch2_elapsed_us", static_cast<std::uint64_t>(arch2_seq_elapsed));
    j.add("arch3_elapsed_us", static_cast<std::uint64_t>(arch3_seq_elapsed));
    j.add("arch4_elapsed_us", static_cast<std::uint64_t>(arch4_seq_elapsed));
    j.add("arch1_usd", arch1_total);
    j.add("arch3_usd", arch3_total);
    for (const ArchSweep& sweep : sweeps) {
      const std::string key =
          sweep.arch == Architecture::kS3SimpleDb ? "arch2" : "arch3";
      j.add(key + "_s4_p1_elapsed_us",
            static_cast<std::uint64_t>(sweep.seq.total()));
      if (parallelism > 1)
        j.add(key + "_s4_p" + std::to_string(parallelism) + "_elapsed_us",
              static_cast<std::uint64_t>(sweep.par.total()));
    }
    // Per-service elapsed breakdown of the per-close (group 1) runs.
    arch_index = 0;
    for (const char* arch_key : {"arch1", "arch2", "arch3", "arch4"}) {
      for (const auto& [service, t] : arch_by_service[arch_index])
        j.add(std::string(arch_key) + "_elapsed_" + service + "_us",
              static_cast<std::uint64_t>(t));
      // Per-close latency percentiles of the same runs.
      arch_close[arch_index].add_to(j, std::string(arch_key) + "_close");
      ++arch_index;
    }
    // The session group-commit sweep: $/close and elapsed vs. group size.
    const auto arch_json_key = [](Architecture arch) {
      return arch == Architecture::kS3SimpleDb      ? "arch2"
             : arch == Architecture::kS3SimpleDbSqs ? "arch3"
                                                    : "arch4";
    };
    for (const auto& [arch, points] : group_sweeps) {
      const std::string key = arch_json_key(arch);
      for (const GroupPoint& p : points) {
        const std::string g = key + "_g" + std::to_string(p.group);
        j.add(g + "_elapsed_us", static_cast<std::uint64_t>(p.elapsed));
        j.add(g + "_usd_per_close",
              p.closes > 0 ? p.usd / static_cast<double>(p.closes) : 0.0);
        j.add(g + "_sdb_write_rts", p.sdb_write_rts);
        j.add(g + "_sqs_send_rts", p.sqs_send_rts);
        j.add(g + "_write_rts", p.write_rts);
        p.close.add_to(j, g + "_close");
      }
    }
    // The deadline sweep: write RTs vs. idle wait at fixed offered load.
    for (const auto& [arch, points] : deadline_sweeps) {
      const std::string key = arch_json_key(arch);
      for (const DeadlinePoint& p : points) {
        const std::string d =
            key + "_d" + std::to_string(p.deadline / sim::kMillisecond);
        j.add(d + "_write_rts", p.write_rts);
        j.add(d + "_elapsed_us", static_cast<std::uint64_t>(p.elapsed));
        j.add(d + "_idle_us", static_cast<std::uint64_t>(p.idle));
      }
    }
    j.add("shape_check", std::string(ok ? "PASS" : "FAIL"));
    if (j.write(path)) std::printf("json written: %s\n", path);
  }

  // A dedicated traced smoke run: Arch 3 per-close with the virtual-time
  // tracer on, dumped as Chrome trace-event JSON (loadable in Perfetto).
  // Tracing never changes billing or elapsed time, but the headline runs
  // above stay untraced regardless.
  if (const char* trace_path = bench::trace_output_path()) {
    bench::WorkloadRun traced(Architecture::kS3SimpleDbSqs);
    traced.env.set_tracing(true);
    traced.run(trace);
    if (traced.env.tracer().write_chrome_json(trace_path))
      std::printf("trace written: %s (%zu events)\n", trace_path,
                  traced.env.tracer().event_count());
  }
  return ok ? 0 : 1;
}
