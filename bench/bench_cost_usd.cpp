// Experiment A4: dollars and elapsed time.
//
// Section 5 closes with: "operations are much cheaper (in USD) than storage
// in the AWS pricing model", and the conclusion notes a prototype would let
// them "measure the impact of the extra operations on elapsed time". This
// bench prices each architecture's full workload run with the paper's
// January-2009 price sheet and reports the client elapsed time from the
// latency model.
#include <cstdio>

#include "bench_common.hpp"
#include "cost/pricing.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;
using namespace provcloud::cost;
namespace sim = provcloud::sim;

int main() {
  const workloads::WorkloadOptions options = bench::bench_workload_options();
  bench::print_header(
      "A4: USD cost and elapsed-time impact per architecture (Jan-2009 "
      "prices)");
  std::printf("workload: combined dataset (count_scale %.2f, size_scale "
              "%.2f); latency model: ~45ms/request, 4MB/s up, 8MB/s down\n",
              options.count_scale, options.size_scale);

  const pass::SyscallTrace trace = workloads::build_combined_trace(options);

  std::printf("\n%-17s %10s %10s %10s %10s %10s | %10s %12s\n", "", "req USD",
              "xfer USD", "store/mo", "sdb box", "total", "ops",
              "busy time");
  bench::print_rule();

  double arch1_total = 0, arch3_total = 0;
  sim::SimTime arch1_busy = 0, arch3_busy = 0;
  for (const Architecture arch :
       {Architecture::kS3Only, Architecture::kS3SimpleDb,
        Architecture::kS3SimpleDbSqs}) {
    bench::WorkloadRun run(arch);
    run.run(trace);
    const auto snap = run.env.meter().snapshot();
    const CostEstimate c = estimate_cost(snap);
    const double requests = c.s3_requests + c.sqs_requests;
    const double transfer = c.s3_transfer + c.sdb_transfer + c.sqs_transfer;
    const double storage = c.s3_storage_month + c.sdb_storage_month;
    const sim::SimTime busy = run.env.busy_time();
    std::printf("%-17s %10s %10s %10s %10s %10s | %10s %9.1f min\n",
                to_string(arch), format_usd(requests).c_str(),
                format_usd(transfer).c_str(), format_usd(storage).c_str(),
                format_usd(c.sdb_box_usage).c_str(),
                format_usd(c.total()).c_str(),
                bench::fmt_count(snap.total_calls()).c_str(),
                static_cast<double>(busy) / sim::kMinute);
    if (arch == Architecture::kS3Only) {
      arch1_total = c.total();
      arch1_busy = busy;
    }
    if (arch == Architecture::kS3SimpleDbSqs) {
      arch3_total = c.total();
      arch3_busy = busy;
    }
  }

  std::printf("\nfull-properties premium (arch3 vs arch1): %.2fx USD, %.2fx "
              "elapsed time\n",
              arch3_total / arch1_total,
              static_cast<double>(arch3_busy) /
                  static_cast<double>(arch1_busy));
  std::printf("(the paper's claim to verify: the premium is dominated by "
              "operations, which are cheap relative to storage/transfer.)\n");

  const bool ok = arch3_total < 4.0 * arch1_total;
  std::printf("\nshape check (all-properties architecture costs < 4x the "
              "strawman in USD): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
