// Reproduces Table 1: "Properties Comparison. A check mark indicates that
// the property is supported."
//
// Unlike the paper (which argues the matrix analytically), this bench
// *measures* each cell: crash-point sweeps for atomicity and causal
// ordering, read hammering under staleness for consistency, and dataset
// scaling for efficient query. The expected output matches the paper:
//
//   S3              : atomicity Y  consistency Y  causal Y  efficient N
//   S3+SimpleDB     : atomicity N  consistency Y  causal Y  efficient Y
//   S3+SimpleDB+SQS : atomicity Y  consistency Y  causal Y  efficient Y
#include <cstdio>

#include "bench_common.hpp"
#include "cloudprov/properties.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

namespace {
const char* mark(bool supported) { return supported ? "yes" : " no"; }
}

int main() {
  bench::print_header(
      "Table 1: Properties comparison (measured; paper reports the same "
      "matrix)");

  PropertyCheckOptions options;
  options.seed = 2009;
  options.mini_files = 10;
  options.reads_per_version = 4;

  std::printf("%-18s %10s %12s %15s %16s\n", "Architecture", "Atomicity",
              "Consistency", "Causal Ordering", "Efficient Query");
  bench::print_rule();

  const std::vector<PropertyReport> rows = check_all_architectures(options);
  bool all_match = true;
  for (const PropertyReport& r : rows) {
    std::printf("%-18s %10s %12s %15s %16s\n", to_string(r.arch),
                mark(r.atomicity), mark(r.consistency),
                mark(r.causal_ordering), mark(r.efficient_query));
    aws::CloudEnv env(1);
    CloudServices services(env);
    all_match = all_match && r.matches(make_backend(r.arch, services)->claims());
  }

  bench::print_header("Evidence");
  for (const PropertyReport& r : rows) {
    std::printf(
        "%-18s crash scenarios %3llu | atomicity violations %3llu | causal "
        "violations %3llu\n",
        to_string(r.arch),
        static_cast<unsigned long long>(r.crash_scenarios),
        static_cast<unsigned long long>(r.atomicity_violations),
        static_cast<unsigned long long>(r.causal_violations));
    std::printf(
        "%-18s reads checked %5llu | mismatches %3llu | staleness retries "
        "observed %3llu\n",
        "", static_cast<unsigned long long>(r.reads_checked),
        static_cast<unsigned long long>(r.consistency_violations),
        static_cast<unsigned long long>(r.reads_with_retries));
    std::printf(
        "%-18s Q2 ops at 1x/2x dataset: %llu -> %llu (growth %.2fx; "
        "efficient iff sublinear)\n",
        "", static_cast<unsigned long long>(r.query_ops_small),
        static_cast<unsigned long long>(r.query_ops_large), r.query_growth);
  }

  std::printf("\nMeasured matrix %s the paper's Table 1.\n",
              all_match ? "MATCHES" : "DOES NOT MATCH");
  return all_match ? 0 : 1;
}
