// A5: google-benchmark microbenchmarks of the simulated services and the
// core codecs -- sanity checks that the simulators are fast enough to run
// paper-scale workloads, and a regression guard for the hot paths.
#include <benchmark/benchmark.h>

#include "aws/common/env.hpp"
#include "aws/s3/s3.hpp"
#include "aws/simpledb/simpledb.hpp"
#include "aws/sqs/sqs.hpp"
#include "cloudprov/serialize.hpp"
#include "cloudprov/txn.hpp"
#include "util/md5.hpp"
#include "util/rng.hpp"

namespace {

using namespace provcloud;
using namespace provcloud::aws;

void BM_Md5(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state)
    benchmark::DoNotOptimize(util::Md5::digest(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_S3PutGet(benchmark::State& state) {
  CloudEnv env(1, ConsistencyConfig::strong());
  S3Service s3(env);
  const std::string data(static_cast<std::size_t>(state.range(0)), 'd');
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 1024);
    benchmark::DoNotOptimize(s3.put("b", key, data));
    benchmark::DoNotOptimize(s3.get("b", key));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_S3PutGet)->Arg(1 << 10)->Arg(1 << 16);

void BM_S3ReplicatedPut(benchmark::State& state) {
  ConsistencyConfig c;
  c.replicas = static_cast<unsigned>(state.range(0));
  c.propagation_min = sim::kMillisecond;
  c.propagation_max = sim::kSecond;
  CloudEnv env(1, c);
  S3Service s3(env);
  const std::string data(4096, 'd');
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s3.put("b", "k" + std::to_string(i++ % 256), data));
    if (i % 64 == 0) env.clock().drain();
  }
}
BENCHMARK(BM_S3ReplicatedPut)->Arg(1)->Arg(3)->Arg(8);

void BM_SdbPutAttributes(benchmark::State& state) {
  CloudEnv env(1, ConsistencyConfig::strong());
  SimpleDbService sdb(env);
  (void)sdb.create_domain("d");
  std::vector<SdbReplaceableAttribute> attrs;
  for (int i = 0; i < 10; ++i)
    attrs.push_back({"attr" + std::to_string(i), "value" + std::to_string(i),
                     false});
  std::uint64_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sdb.put_attributes("d", "item" + std::to_string(i++ % 4096), attrs));
}
BENCHMARK(BM_SdbPutAttributes);

void BM_SdbQuery(benchmark::State& state) {
  CloudEnv env(1, ConsistencyConfig::strong());
  SimpleDbService sdb(env);
  (void)sdb.create_domain("d");
  util::Rng rng(7);
  for (int i = 0; i < state.range(0); ++i) {
    (void)sdb.put_attributes(
        "d", "item" + std::to_string(i),
        {{"color", rng.next_bool(0.1) ? "red" : "blue", false},
         {"n", std::to_string(i % 97), false}});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(sdb.query("d", "['color' = 'red']"));
}
BENCHMARK(BM_SdbQuery)->Arg(1000)->Arg(10000);

void BM_SdbSelect(benchmark::State& state) {
  CloudEnv env(1, ConsistencyConfig::strong());
  SimpleDbService sdb(env);
  (void)sdb.create_domain("d");
  for (int i = 0; i < 5000; ++i)
    (void)sdb.put_attributes("d", "item" + std::to_string(i),
                             {{"kind", i % 3 ? "file" : "process", false}});
  for (auto _ : state)
    benchmark::DoNotOptimize(
        sdb.select("select itemName() from d where kind = 'process' limit 100"));
}
BENCHMARK(BM_SdbSelect);

void BM_SqsSendReceiveDelete(benchmark::State& state) {
  CloudEnv env(1, ConsistencyConfig::strong());
  SqsService sqs(env);
  const std::string url = *sqs.create_queue("q");
  const std::string body(1024, 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(sqs.send_message(url, body));
    auto got = sqs.receive_message(url, 1);
    if (got && !got->empty())
      benchmark::DoNotOptimize(sqs.delete_message(url, (*got)[0].receipt_handle));
  }
}
BENCHMARK(BM_SqsSendReceiveDelete);

void BM_RecordSerialize(benchmark::State& state) {
  const pass::ProvenanceRecord r =
      pass::make_xref_record("INPUT", {"some/long/object/name.out", 12});
  for (auto _ : state) {
    const std::string s = cloudprov::serialize_record(r);
    benchmark::DoNotOptimize(cloudprov::parse_record(s));
  }
}
BENCHMARK(BM_RecordSerialize);

void BM_WalTransactionBuild(benchmark::State& state) {
  pass::FlushUnit unit;
  unit.object = "data/file";
  unit.version = 1;
  unit.data = util::make_shared_bytes(std::string(4096, 'd'));
  for (int i = 0; i < state.range(0); ++i)
    unit.records.push_back(
        pass::make_text_record("ENV" + std::to_string(i), std::string(600, 'e')));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cloudprov::build_transaction("tx-1", unit, ".tmp/t", "1", "md5"));
}
BENCHMARK(BM_WalTransactionBuild)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
