// Shared machinery for the paper-reproduction benches: run the combined
// workload through PASS into an architecture, collect meters and stats, and
// print aligned tables.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cloudprov/backend.hpp"
#include "cloudprov/session.hpp"
#include "cloudprov/wal_backend.hpp"
#include "obs/metrics.hpp"
#include "pass/observer.hpp"
#include "util/string_utils.hpp"
#include "workloads/combined.hpp"

namespace provcloud::bench {

/// Workload scale: the paper's dataset is 1.27 GB / 31,180 object versions;
/// the default here (~1/17 of the object count at paper-like object sizes)
/// keeps a full three-architecture bench under a minute. Override with
/// PROVCLOUD_BENCH_SCALE (e.g. 0.1 or 1.0).
inline workloads::WorkloadOptions bench_workload_options() {
  workloads::WorkloadOptions o;
  o.seed = 2009;
  o.count_scale = 1.0;
  o.size_scale = 1.0;
  if (const char* env = std::getenv("PROVCLOUD_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) {
      o.count_scale = s;
      o.size_scale = s;
    }
  }
  return o;
}

/// Hardware threads available to the bench process. Wall-clock speedup from
/// shard-parallel sections is bounded by this; on a single-core box the
/// parallel numbers measure pure overhead (expect ~1.0x).
inline std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

/// Scatter/gather parallelism for the shard-parallel bench sections.
/// Default 4 (one thread per shard of the standard sweep); override with
/// PROVCLOUD_BENCH_PARALLELISM.
inline std::size_t bench_parallelism() {
  if (const char* env = std::getenv("PROVCLOUD_BENCH_PARALLELISM")) {
    const long p = std::atol(env);
    if (p > 0) return static_cast<std::size_t>(p);
  }
  return 4;
}

/// Milliseconds of wall-clock spent in fn() -- the simulated clock never
/// moves during queries, so scatter/gather speedups only show up here.
template <typename Fn>
double wall_clock_ms(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct WorkloadRun {
  using BackendFactory = std::function<std::unique_ptr<cloudprov::ProvenanceBackend>(
      cloudprov::CloudServices&)>;

  explicit WorkloadRun(cloudprov::Architecture arch,
                       aws::ConsistencyConfig consistency =
                           aws::ConsistencyConfig::strong(),
                       std::uint64_t seed = 2009)
      : env(seed, consistency), services(env) {
    backend = cloudprov::make_backend(arch, services);
  }

  /// Config-sweep variant: the factory builds the backend against the run's
  /// services (e.g. a sharded/batched SdbBackendConfig).
  explicit WorkloadRun(const BackendFactory& factory,
                       aws::ConsistencyConfig consistency =
                           aws::ConsistencyConfig::strong(),
                       std::uint64_t seed = 2009)
      : env(seed, consistency), services(env) {
    backend = factory(services);
  }

  /// Feed a trace through PASS into the backend via a client session and
  /// settle. group_size 1 (the default) is the paper's per-close protocol
  /// bit-for-bit; larger groups let Arch 2/3 coalesce closes between
  /// durability barriers (cross-close group commit).
  void run(const pass::SyscallTrace& trace) {
    auto session = backend->open_session(
        cloudprov::SessionConfig{.client_id = "client-0",
                                 .max_group = group_size,
                                 .flush_deadline = flush_deadline});
    pass::PassObserver observer([this, &session](const pass::FlushUnit& u) {
      session->submit(u);
      // Offered load: with an inter-close gap the clock moves between
      // closes, so a deadline-driven flush can fire before a group fills.
      if (inter_close_gap > 0) env.clock().advance_by(inter_close_gap);
    });
    observer.apply_trace(trace);
    observer.finish();
    const auto synced = session->sync();
    PROVCLOUD_REQUIRE_MSG(synced.has_value(),
                          "session sync failed: " + synced.error().message);
    env.clock().drain();
    backend->quiesce();
    env.clock().drain();
    stats = observer.stats();
  }

  aws::CloudEnv env;
  cloudprov::CloudServices services;
  std::unique_ptr<cloudprov::ProvenanceBackend> backend;
  pass::ObserverStats stats;
  /// Closes coalesced per session group commit (see SessionConfig).
  std::size_t group_size = 1;
  /// Adaptive group-flush deadline (0 = flush only on group-full/sync).
  sim::SimTime flush_deadline = 0;
  /// Simulated time advanced after each close -- the bench's offered load.
  /// 0 keeps the legacy back-to-back submit stream bit-for-bit.
  sim::SimTime inter_close_gap = 0;
};

// --- table printing ---

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

inline std::string fmt_bytes(std::uint64_t b) { return util::format_bytes(b); }
inline std::string fmt_count(std::uint64_t n) { return util::format_count(n); }

// --- machine-readable output (CI perf trajectory) ---

/// Flat JSON object writer: benches dump their headline numbers when
/// PROVCLOUD_BENCH_JSON names an output file, and CI archives it.
class JsonObject {
 public:
  void add(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + escape(key) + "\": \"" + escape(value) + "\"");
  }
  void add(const std::string& key, std::uint64_t value) {
    fields_.push_back("\"" + key + "\": " + std::to_string(value));
  }
  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    fields_.push_back("\"" + key + "\": " + buf);
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs("{\n", f);
    for (std::size_t i = 0; i < fields_.size(); ++i)
      std::fprintf(f, "  %s%s\n", fields_[i].c_str(),
                   i + 1 < fields_.size() ? "," : "");
    std::fputs("}\n", f);
    std::fclose(f);
    return true;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<std::string> fields_;
};

/// Path from PROVCLOUD_BENCH_JSON, or null when no JSON dump is wanted.
inline const char* json_output_path() {
  return std::getenv("PROVCLOUD_BENCH_JSON");
}

/// Path from PROVCLOUD_TRACE_JSON: when set, benches write a Chrome
/// trace-event dump of one traced smoke run there (loadable in Perfetto).
inline const char* trace_output_path() {
  return std::getenv("PROVCLOUD_TRACE_JSON");
}

/// The p50/p99/p999 of a latency histogram, JSON-ready. Zeros when the
/// histogram never saw a sample (keys are still emitted, so consumers can
/// rely on their presence).
struct LatencyPercentiles {
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;

  static LatencyPercentiles of(const obs::Histogram& h) {
    LatencyPercentiles p;
    p.p50 = h.quantile(0.5);
    p.p99 = h.quantile(0.99);
    p.p999 = h.quantile(0.999);
    return p;
  }

  /// The named histogram from a run's registry (e.g. "close.latency_us").
  static LatencyPercentiles of(const obs::MetricsRegistry& metrics,
                               const char* histogram_name) {
    const obs::Histogram* h = metrics.find_histogram(histogram_name);
    return h == nullptr ? LatencyPercentiles{} : of(*h);
  }

  void add_to(JsonObject& j, const std::string& prefix) const {
    j.add(prefix + "_p50_us", p50);
    j.add(prefix + "_p99_us", p99);
    j.add(prefix + "_p999_us", p999);
  }
};

}  // namespace provcloud::bench
