// Shared machinery for the paper-reproduction benches: run the combined
// workload through PASS into an architecture, collect meters and stats, and
// print aligned tables.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cloudprov/backend.hpp"
#include "cloudprov/wal_backend.hpp"
#include "pass/observer.hpp"
#include "util/string_utils.hpp"
#include "workloads/combined.hpp"

namespace provcloud::bench {

/// Workload scale: the paper's dataset is 1.27 GB / 31,180 object versions;
/// the default here (~1/17 of the object count at paper-like object sizes)
/// keeps a full three-architecture bench under a minute. Override with
/// PROVCLOUD_BENCH_SCALE (e.g. 0.1 or 1.0).
inline workloads::WorkloadOptions bench_workload_options() {
  workloads::WorkloadOptions o;
  o.seed = 2009;
  o.count_scale = 1.0;
  o.size_scale = 1.0;
  if (const char* env = std::getenv("PROVCLOUD_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0) {
      o.count_scale = s;
      o.size_scale = s;
    }
  }
  return o;
}

struct WorkloadRun {
  explicit WorkloadRun(cloudprov::Architecture arch,
                       aws::ConsistencyConfig consistency =
                           aws::ConsistencyConfig::strong(),
                       std::uint64_t seed = 2009)
      : env(seed, consistency), services(env) {
    backend = cloudprov::make_backend(arch, services);
  }

  /// Feed a trace through PASS into the backend and settle.
  void run(const pass::SyscallTrace& trace) {
    pass::PassObserver observer(
        [this](const pass::FlushUnit& u) { backend->store(u); });
    observer.apply_trace(trace);
    observer.finish();
    env.clock().drain();
    backend->quiesce();
    env.clock().drain();
    stats = observer.stats();
  }

  aws::CloudEnv env;
  cloudprov::CloudServices services;
  std::unique_ptr<cloudprov::ProvenanceBackend> backend;
  pass::ObserverStats stats;
};

// --- table printing ---

inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

inline std::string fmt_bytes(std::uint64_t b) { return util::format_bytes(b); }
inline std::string fmt_count(std::uint64_t n) { return util::format_count(n); }

}  // namespace provcloud::bench
