// Frontend at scale: open-loop multi-tenant load through the admission
// controller into Architecture 2, with a service-side S3 throttle as the
// shared bottleneck.
//
// Three scenarios over identical benign arrivals (same seed, so the base
// Poisson process is bit-identical; the storm only adds arrivals):
//
//   calm       -- every tenant inside its provisioned rate, service well
//                 under its throttle rate. Expect zero throttles anywhere.
//   storm_on   -- tenant 0 fires ~20x its provisioned rate for a 4s window,
//                 admission control on. The storm is refused at the front
//                 door (typed kThrottled), the service stays under its rate,
//                 and the benign tenants' p99 holds within 2x of calm.
//   storm_off  -- same arrivals, admission control off (pure multiplexer).
//                 The flood reaches S3, the 503 gate backs every request
//                 off, and every tenant's tail collapses together -- the
//                 "why you meter the front door" picture.
//
// JSON (PROVCLOUD_BENCH_JSON): per scenario and tenant
// fs_<scenario>_t<k>_{p50,p99,p999}_us latency percentiles plus offered /
// completed / throttled counts, per scenario offered vs delivered
// throughput, service throttle counts and $/close; headline benign-p99
// ratios. The shape claims (percentile ordering, storm throttled > 0, calm
// throttled == 0, the 2x benign bound) are asserted here and re-checked by
// CI's bench-smoke job.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cloudprov/frontend/frontend.hpp"
#include "cost/pricing.hpp"
#include "workloads/openloop.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;
using provcloud::workloads::OpenLoopOptions;
using provcloud::workloads::TenantArrival;

namespace {

constexpr std::size_t kTenants = 4;
constexpr std::size_t kStormTenant = 0;

OpenLoopOptions arrival_options(bool storm) {
  OpenLoopOptions o;
  o.seed = 2009;
  o.tenants = kTenants;
  o.zipf_s = 0.0;  // uniform benign load: every tenant ~40 closes/s
  o.arrivals_per_sec = 160.0;
  o.duration = 8 * sim::kSecond;
  o.close_bytes = 256;
  if (storm) {
    o.storm_tenant = kStormTenant;
    o.storm_rate = 2000.0;
    o.storm_start = 2 * sim::kSecond;
    o.storm_duration = 4 * sim::kSecond;
  }
  return o;
}

struct TenantOutcome {
  Frontend::TenantStats stats;
  bench::LatencyPercentiles latency;
};

struct ScenarioResult {
  std::string name;
  std::size_t arrivals = 0;
  std::vector<TenantOutcome> tenants;
  std::uint64_t completed = 0;
  std::uint64_t refused = 0;  // capacity throttles + queue rejects + sheds
  std::uint64_t service_throttles = 0;
  std::uint64_t s3_calls = 0;
  std::uint64_t sdb_calls = 0;
  double offered_per_sec = 0.0;
  double delivered_per_sec = 0.0;
  double usd_per_close = 0.0;

  std::uint64_t worst_benign_p99() const {
    std::uint64_t worst = 0;
    for (std::size_t t = 0; t < tenants.size(); ++t)
      if (t != kStormTenant) worst = std::max(worst, tenants[t].latency.p99);
    return worst;
  }
};

ScenarioResult run_scenario(const std::string& name, bool storm,
                            bool admission) {
  aws::CloudEnv env(2009, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDb, services);

  // The shared bottleneck is SimpleDB: the batched provenance write of each
  // flush group (~1 call per 16 closes) is charged to the group's SHARED
  // timeline, so a 503 backoff there is absorbed by every rider -- the
  // coupling that makes an ungated storm everyone's problem. Calm runs ~10
  // index writes/s and a gated storm ~15/s, both under the 25/s rate; the
  // ungated storm (~135/s) blows through it and drags whole groups.
  aws::ThrottleConfig sdb_throttle;
  sdb_throttle.rate_per_sec = 25;
  sdb_throttle.burst = 25;
  sdb_throttle.backoff_base = 500 * sim::kMillisecond;
  sdb_throttle.backoff_cap = 5 * sim::kSecond;
  env.set_service_throttle("sdb", sdb_throttle);
  // S3 data PUTs are charged per-close (exclusive, one per close): a loose
  // 600/s rate only bites the ungated storm's own closes (~2000 PUT/s).
  aws::ThrottleConfig s3_throttle;
  s3_throttle.rate_per_sec = 600;
  s3_throttle.burst = 600;
  s3_throttle.backoff_base = 500 * sim::kMillisecond;
  s3_throttle.backoff_cap = 5 * sim::kSecond;
  env.set_service_throttle("s3", s3_throttle);

  FrontendConfig cfg;
  cfg.session_pool = 1;  // one shared session: tenants ride common groups
  cfg.tenant_queue_cap = 64;
  cfg.admission_control = admission;
  // 100 units/s + 200 burst at cost 2/close = 50 closes/s sustained per
  // tenant: 1.25x the benign offered rate, 1/40 of the storm.
  cfg.default_quota.rate_per_sec = 100.0;
  cfg.default_quota.burst = 200.0;
  cfg.session.max_group = 16;
  Frontend frontend(*backend, env, cfg);

  const OpenLoopOptions options = arrival_options(storm);
  const std::vector<TenantArrival> arrivals =
      workloads::open_loop_arrivals(options);
  std::vector<std::uint64_t> seq(kTenants, 0);
  sim::SimTime now = 0;
  for (const TenantArrival& arrival : arrivals) {
    if (arrival.at > now) {
      env.clock().advance_by(arrival.at - now);
      now = arrival.at;
    }
    const pass::FlushUnit unit = workloads::make_tenant_close(
        arrival.tenant, seq[arrival.tenant]++, options.close_bytes);
    (void)frontend.offer("t" + std::to_string(arrival.tenant), unit);
    frontend.pump();
  }
  const auto synced = frontend.sync_all();
  PROVCLOUD_REQUIRE_MSG(synced.has_value(),
                        "sync_all failed: " + synced.error().message);
  env.clock().drain();
  backend->quiesce();

  ScenarioResult result;
  result.name = name;
  result.arrivals = arrivals.size();
  const double seconds = static_cast<double>(options.duration) /
                         static_cast<double>(sim::kSecond);
  for (std::size_t t = 0; t < kTenants; ++t) {
    TenantOutcome outcome;
    outcome.stats = frontend.tenant_stats("t" + std::to_string(t));
    outcome.latency = bench::LatencyPercentiles::of(
        env.metrics(),
        ("tenant.t" + std::to_string(t) + ".close_latency_us").c_str());
    result.completed += outcome.stats.completed;
    result.refused += outcome.stats.throttled + outcome.stats.rejected +
                      outcome.stats.shed;
    result.tenants.push_back(outcome);
  }
  result.service_throttles =
      env.metrics().counter("throttle.injected").value();
  const sim::MeterSnapshot meter = env.meter().snapshot();
  result.s3_calls = meter.calls("s3");
  result.sdb_calls = meter.calls("sdb");
  result.offered_per_sec = static_cast<double>(arrivals.size()) / seconds;
  result.delivered_per_sec = static_cast<double>(result.completed) / seconds;
  if (result.completed > 0)
    result.usd_per_close =
        cost::estimate_cost(env.meter().snapshot()).total() /
        static_cast<double>(result.completed);
  return result;
}

/// Satellite check: with no throttle configured the fabric draws nothing
/// and bills identically to a build without the feature -- here proxied by
/// configure-then-clear vs never-configured over the calm trace.
bool billing_bit_identical() {
  auto run = [](bool toggle) {
    aws::CloudEnv env(7, aws::ConsistencyConfig::strong());
    if (toggle) {
      aws::ThrottleConfig cfg;
      cfg.probability = 1.0;
      env.set_service_throttle("s3", cfg);
      env.set_service_throttle("s3", aws::ThrottleConfig{});
    }
    CloudServices services(env);
    auto backend = make_backend(Architecture::kS3SimpleDb, services);
    Frontend frontend(*backend, env, FrontendConfig{});
    for (int i = 0; i < 32; ++i)
      (void)frontend.offer(
          "t0", workloads::make_tenant_close(0, static_cast<std::uint64_t>(i),
                                             256));
    PROVCLOUD_REQUIRE_MSG(frontend.sync_all().has_value(), "sync failed");
    return std::pair(env.busy_time(), env.meter().snapshot().total_calls());
  };
  return run(false) == run(true);
}

void print_scenario(const ScenarioResult& r) {
  std::printf("\n%-10s offered %7.0f/s delivered %7.0f/s refused %6llu "
              "service-503s %6llu s3 %6llu sdb %6llu $/close %.8f\n",
              r.name.c_str(), r.offered_per_sec, r.delivered_per_sec,
              static_cast<unsigned long long>(r.refused),
              static_cast<unsigned long long>(r.service_throttles),
              static_cast<unsigned long long>(r.s3_calls),
              static_cast<unsigned long long>(r.sdb_calls),
              r.usd_per_close);
  for (std::size_t t = 0; t < r.tenants.size(); ++t) {
    const TenantOutcome& o = r.tenants[t];
    std::printf(
        "  t%zu%s offered %5llu ok %5llu throttled %5llu rejected %4llu "
        "shed %3llu | p50 %7llu us p99 %8llu us p999 %8llu us\n",
        t, t == kStormTenant ? "*" : " ",
        static_cast<unsigned long long>(o.stats.offered),
        static_cast<unsigned long long>(o.stats.completed),
        static_cast<unsigned long long>(o.stats.throttled),
        static_cast<unsigned long long>(o.stats.rejected),
        static_cast<unsigned long long>(o.stats.shed),
        static_cast<unsigned long long>(o.latency.p50),
        static_cast<unsigned long long>(o.latency.p99),
        static_cast<unsigned long long>(o.latency.p999));
  }
}

void add_to_json(bench::JsonObject& json, const ScenarioResult& r) {
  json.add("fs_" + r.name + "_offered_per_sec", r.offered_per_sec);
  json.add("fs_" + r.name + "_delivered_per_sec", r.delivered_per_sec);
  json.add("fs_" + r.name + "_refused", r.refused);
  json.add("fs_" + r.name + "_service_throttles", r.service_throttles);
  json.add("fs_" + r.name + "_usd_per_close", r.usd_per_close);
  for (std::size_t t = 0; t < r.tenants.size(); ++t) {
    const std::string prefix = "fs_" + r.name + "_t" + std::to_string(t);
    const TenantOutcome& o = r.tenants[t];
    o.latency.add_to(json, prefix);
    json.add(prefix + "_offered", o.stats.offered);
    json.add(prefix + "_completed", o.stats.completed);
    json.add(prefix + "_throttled",
             o.stats.throttled + o.stats.rejected + o.stats.shed);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Frontend at scale: admission control under an open-loop burst storm");

  const ScenarioResult calm = run_scenario("calm", false, true);
  const ScenarioResult storm_on = run_scenario("storm_on", true, true);
  const ScenarioResult storm_off = run_scenario("storm_off", true, false);
  print_scenario(calm);
  print_scenario(storm_on);
  print_scenario(storm_off);

  const double ratio_on =
      static_cast<double>(storm_on.worst_benign_p99()) /
      static_cast<double>(std::max<std::uint64_t>(1, calm.worst_benign_p99()));
  const double ratio_off =
      static_cast<double>(storm_off.worst_benign_p99()) /
      static_cast<double>(std::max<std::uint64_t>(1, calm.worst_benign_p99()));
  const bool billing_ok = billing_bit_identical();
  std::printf(
      "\nworst benign-tenant p99 vs calm: admission on %.2fx | off %.2fx\n",
      ratio_on, ratio_off);
  std::printf("billing bit-identical with throttling disabled: %s\n",
              billing_ok ? "yes" : "NO");

  bool ok = true;
  auto check = [&ok](bool condition, const char* what) {
    if (!condition) {
      std::printf("CHECK FAILED: %s\n", what);
      ok = false;
    }
  };
  // Shape claims, re-verified by CI against the JSON dump.
  for (const ScenarioResult* r : {&calm, &storm_on, &storm_off})
    for (const TenantOutcome& o : r->tenants) {
      check(o.latency.p999 >= o.latency.p99 && o.latency.p99 >= o.latency.p50,
            "percentiles must be ordered per tenant");
      check(o.stats.completed > 0, "every tenant completes closes");
    }
  check(calm.refused == 0 && calm.service_throttles == 0,
        "provisioned headroom: no throttles anywhere in calm");
  check(storm_on.refused > 0,
        "admission control throttles the storming tenant");
  for (std::size_t t = 1; t < kTenants; ++t) {
    const auto& s = storm_on.tenants[t].stats;
    check(s.throttled + s.rejected + s.shed == 0,
          "benign tenants are never throttled under admission control");
  }
  check(ratio_on <= 2.0, "benign p99 holds within 2x of calm (admission on)");
  check(storm_off.refused == 0, "pure multiplexer refuses nothing");
  check(storm_off.service_throttles > storm_on.service_throttles,
        "the ungated storm reaches the service");
  check(ratio_off > ratio_on,
        "without admission the benign tail degrades further");
  check(billing_ok, "billing bit-identical when throttling disabled");

  if (const char* path = bench::json_output_path()) {
    bench::JsonObject json;
    json.add("fs_tenants", static_cast<std::uint64_t>(kTenants));
    json.add("fs_storm_tenant", static_cast<std::uint64_t>(kStormTenant));
    json.add("fs_benign_p99_ratio_on", ratio_on);
    json.add("fs_benign_p99_ratio_off", ratio_off);
    json.add("fs_billing_bit_identical",
             static_cast<std::uint64_t>(billing_ok ? 1 : 0));
    add_to_json(json, calm);
    add_to_json(json, storm_on);
    add_to_json(json, storm_off);
    if (json.write(path))
      std::printf("\nJSON results written to %s\n", path);
  }

  std::printf("\nfrontend-scale checks %s\n", ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}
