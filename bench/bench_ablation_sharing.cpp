// Experiment A7: the usage-model argument of section 2.5, quantified.
//
// "The disadvantage of using EBS volumes is that users have to clone the
// whole EBS volume even if they are interested only in a part of the data
// set. Making data available as S3 objects allows users to selectively copy
// the data they need."
//
// A public data set (the census shards of the intro scenario) is published
// both ways; consumers want only a fraction of it. We sweep the fraction
// and compare the billed transfer of (a) EBS: clone the snapshot, read the
// wanted files; (b) S3: GET exactly the wanted objects. The crossover the
// paper implies: EBS only competes when consumers want (nearly) everything.
#include <cstdio>
#include <vector>

#include "aws/ebs/ebs.hpp"
#include "bench_common.hpp"
#include "workloads/datagen.hpp"

using namespace provcloud;
using namespace provcloud::aws;

namespace {

struct DataSet {
  std::vector<std::string> objects;
  std::vector<std::uint64_t> sizes;
  std::uint64_t total_bytes = 0;
};

DataSet publish(CloudEnv& env, S3Service& s3, EbsService& ebs,
                std::string& snapshot_id) {
  util::Rng rng(1790);
  DataSet ds;
  // 64 shards, log-uniform 32KB..512KB.
  auto vol = ebs.create_volume(64ull * 512 * 1024 + util::kMiB);
  PROVCLOUD_REQUIRE(vol.has_value());
  std::uint64_t offset = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t size = rng.next_log_uniform(32 * 1024, 512 * 1024);
    const util::Bytes content = workloads::synth_content(rng, size);
    const std::string name = "census/part" + std::to_string(i);
    PROVCLOUD_REQUIRE(s3.put("public", name, content).has_value());
    PROVCLOUD_REQUIRE(ebs.write(*vol, offset, content).has_value());
    ds.objects.push_back(name);
    ds.sizes.push_back(size);
    ds.total_bytes += size;
    offset += size;
  }
  auto snap = ebs.create_snapshot(*vol);
  PROVCLOUD_REQUIRE(snap.has_value());
  snapshot_id = *snap;
  (void)env;
  return ds;
}

}  // namespace

int main() {
  bench::print_header(
      "A7: sharing a public data set -- EBS snapshot clone vs selective S3 "
      "(paper section 2.5)");

  CloudEnv env(1790, ConsistencyConfig::strong());
  S3Service s3(env);
  EbsService ebs(env);
  std::string snapshot_id;
  const DataSet ds = publish(env, s3, ebs, snapshot_id);
  std::printf("published data set: %zu shards, %s total\n\n",
              ds.objects.size(), bench::fmt_bytes(ds.total_bytes).c_str());

  std::printf("%-14s %16s %16s %10s\n", "wanted", "EBS bytes", "S3 bytes",
              "EBS/S3");
  bench::print_rule();

  bool crossover_seen = false;
  double last_ratio = 0;
  for (const double fraction : {0.02, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const std::size_t wanted =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     fraction * static_cast<double>(ds.objects.size())));

    // EBS consumer: clone the whole snapshot, then read the wanted files.
    const auto ebs_before = env.meter().snapshot();
    auto clone = ebs.create_volume_from_snapshot(snapshot_id);
    PROVCLOUD_REQUIRE(clone.has_value());
    std::uint64_t offset = 0;
    for (std::size_t i = 0; i < ds.objects.size(); ++i) {
      if (i < wanted) (void)ebs.read(*clone, offset, ds.sizes[i]);
      offset += ds.sizes[i];
    }
    (void)ebs.delete_volume(*clone);
    const std::uint64_t ebs_bytes =
        env.meter().snapshot().diff(ebs_before).bytes_out("ebs");

    // S3 consumer: GET exactly the wanted objects.
    const auto s3_before = env.meter().snapshot();
    for (std::size_t i = 0; i < wanted; ++i)
      (void)s3.get("public", ds.objects[i]);
    const std::uint64_t s3_bytes =
        env.meter().snapshot().diff(s3_before).bytes_out("s3");

    const double ratio =
        static_cast<double>(ebs_bytes) / static_cast<double>(s3_bytes);
    std::printf("%5.0f%% (%2zu/64) %16s %16s %9.1fx\n", fraction * 100, wanted,
                bench::fmt_bytes(ebs_bytes).c_str(),
                bench::fmt_bytes(s3_bytes).c_str(), ratio);
    crossover_seen = crossover_seen || ratio < 3.0;
    last_ratio = ratio;
  }

  // Shape: at small fractions EBS pays for the whole volume (huge ratio);
  // at 100% the two converge to within a small factor.
  const bool ok = crossover_seen && last_ratio < 3.0;
  std::printf("\nshape check (EBS wasteful for partial interest, comparable "
              "only near 100%%): %s\n",
              ok ? "PASS" : "FAIL");
  std::printf("(this is why the paper's usage model shares data as S3 "
              "objects: 'users can selectively copy the data they need'.)\n");
  return ok ? 0 : 1;
}
