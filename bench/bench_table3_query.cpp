// Reproduces Table 3: query cost comparison.
//
// Paper layout (data returned / operations executed):
//
//          S3                  SimpleDB
//   Q.1    121.8MB / 56,132    51.24MB / 71,825
//   Q.2    121.8MB / 56,132    2.8KB   / 6
//   Q.3    121.8MB / 56,132    13.8KB  / 31
//
// Q.1 retrieves the provenance of every object version; Q.2 finds all
// outputs of blast; Q.3 finds all descendants of blast outputs. The S3
// engine pays one full metadata scan for every query; SimpleDB is selective
// for Q.2/Q.3 but must touch every item for Q.1. "The query results are the
// same for the last two architectures (as they both query SimpleDB)."
#include <cstdio>

#include "bench_common.hpp"
#include "cloudprov/consistency_read.hpp"
#include "cloudprov/manifest/reader.hpp"
#include "cloudprov/manifest/writer.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/serialize.hpp"
#include "cost/pricing.hpp"
#include "workloads/blast.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

namespace {

struct QueryCost {
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
  std::size_t results = 0;
};

template <typename Fn>
QueryCost measure(bench::WorkloadRun& run, Fn&& query) {
  const auto before = run.env.meter().snapshot();
  const std::size_t results = query();
  const auto diff = run.env.meter().snapshot().diff(before);
  QueryCost c;
  c.bytes = diff.bytes_out("s3") + diff.bytes_out("sdb");
  c.ops = diff.calls("s3") + diff.calls("sdb");
  c.results = results;
  return c;
}

void print_row(const char* name, const QueryCost& s3, const QueryCost& sdb) {
  std::printf("%-5s %12s /%10s %8zu | %12s /%10s %8zu\n", name,
              bench::fmt_bytes(s3.bytes).c_str(), bench::fmt_count(s3.ops).c_str(),
              s3.results, bench::fmt_bytes(sdb.bytes).c_str(),
              bench::fmt_count(sdb.ops).c_str(), sdb.results);
}

// --- manifest-vs-scatter deep-walk sweep ---

/// A run whose trace is stored in two parts around a snapshot roll, so a
/// configurable fraction of the provenance lands in the mutable tail.
struct SnapshotRun {
  SnapshotRun(std::size_t shards, const pass::SyscallTrace& trace,
              std::size_t lag_percent)
      : env(2009, aws::ConsistencyConfig::strong()), services(env) {
    auto sdb = std::make_unique<SdbBackend>(
        services, SdbBackendConfig{.shard_count = shards});
    topology = sdb->topology();
    backend = std::move(sdb);
    pass::PassObserver observer(
        [this](const pass::FlushUnit& u) { backend->store(u); });
    const std::size_t cut = trace.size() * (100 - lag_percent) / 100;
    for (std::size_t i = 0; i < cut; ++i) observer.apply(trace[i]);
    settle();
    manifest::ManifestWriter writer(services, topology);
    const auto rolled = writer.roll();
    PROVCLOUD_REQUIRE_MSG(rolled.has_value(), "snapshot roll failed");
    for (std::size_t i = cut; i < trace.size(); ++i) observer.apply(trace[i]);
    observer.finish();
    settle();
  }

  void settle() {
    env.clock().drain();
    backend->quiesce();
    env.clock().drain();
  }

  aws::CloudEnv env;
  CloudServices services;
  std::unique_ptr<ProvenanceBackend> backend;
  std::shared_ptr<const DomainTopology> topology;
};

/// Deep-walk roots: every blast summary object, version from the stored
/// metadata (summaries sit at the bottom of the derivation chains).
std::vector<pass::ObjectVersion> walk_roots(CloudServices& services,
                                            std::size_t limit) {
  std::vector<pass::ObjectVersion> roots;
  for (const std::string& key : services.s3.peek_keys(kDataBucket)) {
    if (roots.size() >= limit) break;
    if (key.rfind("blast/summary", 0) != 0) continue;
    auto obj = services.s3.peek(kDataBucket, key);
    if (!obj) continue;
    auto it = obj->metadata.find(kVersionMetaKey);
    if (it == obj->metadata.end()) continue;
    roots.push_back(
        {key, static_cast<std::uint32_t>(std::atoi(it->second.c_str()))});
  }
  return roots;
}

std::uint64_t sdb_read_rts(const sim::MeterSnapshot& diff) {
  std::uint64_t n = 0;
  for (const char* const* op = manifest::ManifestReader::sdb_read_ops();
       *op != nullptr; ++op)
    n += diff.calls("sdb", *op);
  return n;
}

struct WalkCost {
  std::uint64_t read_rts = 0;   // SimpleDB read round trips
  double usd = 0;               // estimated $ for the walks
  std::uint64_t elapsed_us = 0; // ledger elapsed (critical path)
  std::size_t nodes = 0;        // graph nodes retrieved (answer fingerprint)
  std::size_t missing = 0;
  bench::LatencyPercentiles walk;  // per-root ancestry-walk latency
};

WalkCost measure_walks(SnapshotRun& run, QueryEngine& engine,
                       const std::vector<pass::ObjectVersion>& roots) {
  const auto before = run.env.meter().snapshot();
  const sim::SimTime t0 = run.env.latency_ledger().elapsed();
  WalkCost c;
  obs::Histogram walk_hist;  // local: the two engines must not mix samples
  for (const pass::ObjectVersion& root : roots) {
    const sim::SimTime w0 = run.env.latency_ledger().elapsed();
    const AncestryResult r = engine.ancestry(root.object, root.version);
    walk_hist.record(run.env.latency_ledger().elapsed() - w0);
    c.nodes += r.graph.nodes().size();
    c.missing += r.missing.size();
  }
  const auto diff = run.env.meter().snapshot().diff(before);
  c.read_rts = sdb_read_rts(diff);
  c.usd = cost::estimate_cost(diff).total();
  c.elapsed_us = run.env.latency_ledger().elapsed() - t0;
  c.walk = bench::LatencyPercentiles::of(walk_hist);
  return c;
}

}  // namespace

int main() {
  const workloads::WorkloadOptions options = bench::bench_workload_options();
  bench::print_header("Table 3: Query cost comparison");
  std::printf("workload: combined dataset (count_scale %.2f, size_scale %.2f)\n",
              options.count_scale, options.size_scale);

  const pass::SyscallTrace trace = workloads::build_combined_trace(options);

  bench::WorkloadRun s3_run(Architecture::kS3Only);
  s3_run.run(trace);
  auto s3_engine = make_s3_query_engine(s3_run.services);

  bench::WorkloadRun sdb_run(Architecture::kS3SimpleDb);
  sdb_run.run(trace);
  auto sdb_engine = make_sdb_query_engine(sdb_run.services);

  const std::string program = workloads::BlastWorkload::kBlastProgram;

  std::printf("\n%-5s %12s /%10s %8s | %12s /%10s %8s\n", "", "S3 data", "ops",
              "results", "SDB data", "ops", "results");
  bench::print_rule();

  const QueryCost q1_s3 = measure(s3_run, [&] {
    return static_cast<std::size_t>(s3_engine->q1_all_provenance().object_versions);
  });
  const QueryCost q1_sdb = measure(sdb_run, [&] {
    return static_cast<std::size_t>(sdb_engine->q1_all_provenance().object_versions);
  });
  print_row("Q.1", q1_s3, q1_sdb);

  const QueryCost q2_s3 =
      measure(s3_run, [&] { return s3_engine->q2_outputs_of(program).size(); });
  const QueryCost q2_sdb =
      measure(sdb_run, [&] { return sdb_engine->q2_outputs_of(program).size(); });
  print_row("Q.2", q2_s3, q2_sdb);

  const QueryCost q3_s3 = measure(
      s3_run, [&] { return s3_engine->q3_descendants_of(program).size(); });
  const QueryCost q3_sdb = measure(
      sdb_run, [&] { return sdb_engine->q3_descendants_of(program).size(); });
  print_row("Q.3", q3_s3, q3_sdb);

  std::printf("\npaper reference:\n");
  std::printf("  Q.1  121.8MB / 56,132 | 51.24MB / 71,825\n");
  std::printf("  Q.2  121.8MB / 56,132 | 2.8KB   / 6\n");
  std::printf("  Q.3  121.8MB / 56,132 | 13.8KB  / 31\n");

  // --- scatter/gather across shards: same answers at shard_count 4 ---
  bench::print_header("Sharded scatter/gather: shard_count = 4");
  const std::size_t shards = 4;
  bench::WorkloadRun sharded_run([&](CloudServices& s) {
    return make_sdb_backend(s, SdbBackendConfig{.shard_count = shards});
  });
  sharded_run.run(trace);
  auto sharded_engine = make_sdb_query_engine(
      sharded_run.services,
      SdbQueryConfig{.shard_count = shards});
  const QueryCost q1_sh = measure(sharded_run, [&] {
    return static_cast<std::size_t>(
        sharded_engine->q1_all_provenance().object_versions);
  });
  const QueryCost q2_sh = measure(
      sharded_run, [&] { return sharded_engine->q2_outputs_of(program).size(); });
  const QueryCost q3_sh = measure(sharded_run, [&] {
    return sharded_engine->q3_descendants_of(program).size();
  });
  std::printf("%-5s %12s /%10s %8s\n", "", "SDBx4 data", "ops", "results");
  bench::print_rule();
  std::printf("%-5s %12s /%10s %8zu\n", "Q.1",
              bench::fmt_bytes(q1_sh.bytes).c_str(),
              bench::fmt_count(q1_sh.ops).c_str(), q1_sh.results);
  std::printf("%-5s %12s /%10s %8zu\n", "Q.2",
              bench::fmt_bytes(q2_sh.bytes).c_str(),
              bench::fmt_count(q2_sh.ops).c_str(), q2_sh.results);
  std::printf("%-5s %12s /%10s %8zu\n", "Q.3",
              bench::fmt_bytes(q3_sh.bytes).c_str(),
              bench::fmt_count(q3_sh.ops).c_str(), q3_sh.results);

  // --- shard-parallel scatter/gather: wall-clock on the same layout ---
  const std::size_t parallelism = bench::bench_parallelism();
  bench::print_header("Shard-parallel scatter/gather (wall-clock)");
  std::printf("shard_count = %zu, parallelism = 1 vs %zu (%zu hardware "
              "threads%s)\n",
              shards, parallelism, bench::hardware_threads(),
              bench::hardware_threads() == 1
                  ? "; single core: expect ~1.0x, measures overhead only"
                  : "");
  auto parallel_engine = make_sdb_query_engine(
      sharded_run.services, SdbQueryConfig{.shard_count = shards,
                                           .parallelism = parallelism});
  std::size_t seq_versions = 0, par_versions = 0;
  std::set<std::string> seq_q3_par_check, par_q3;
  const double seq_ms = bench::wall_clock_ms([&] {
    seq_versions = static_cast<std::size_t>(
        sharded_engine->q1_all_provenance().object_versions);
    seq_q3_par_check = sharded_engine->q3_descendants_of(program);
  });
  const double par_ms = bench::wall_clock_ms([&] {
    par_versions = static_cast<std::size_t>(
        parallel_engine->q1_all_provenance().object_versions);
    par_q3 = parallel_engine->q3_descendants_of(program);
  });
  const double parallel_speedup = par_ms > 0 ? seq_ms / par_ms : 0.0;
  std::printf("Q.1+Q.3 sequential: %8.2f ms\n", seq_ms);
  std::printf("Q.1+Q.3 parallel:   %8.2f ms   (%.2fx speedup)\n", par_ms,
              parallel_speedup);

  // Shape checks.
  bool ok = true;
  // Sharding must not change any answer (identical result counts and the
  // same retrieved data for Q.1, which touches every item exactly once).
  ok = ok && q1_sh.results == q1_sdb.results;
  ok = ok && q2_sh.results == q2_sdb.results;
  ok = ok && q3_sh.results == q3_sdb.results;
  // The S3 column is one full scan regardless of the query.
  ok = ok && q1_s3.ops == q2_s3.ops && q2_s3.ops == q3_s3.ops;
  // SimpleDB Q.1 touches every item (ops >= versions); Q.2/Q.3 are orders
  // of magnitude cheaper than the S3 scan.
  ok = ok && q1_sdb.ops >= q1_sdb.results;
  ok = ok && q2_sdb.ops * 10 <= q2_s3.ops;
  ok = ok && q3_sdb.ops * 10 <= q3_s3.ops;
  ok = ok && q3_sdb.ops > q2_sdb.ops;   // descendants need level-wise queries
  ok = ok && q2_sdb.bytes * 10 <= q2_s3.bytes;
  // Both engines agree on the answers.
  ok = ok && q2_s3.results == q2_sdb.results && q3_s3.results == q3_sdb.results;
  // Parallel scatter/gather returns the same answers (wall-clock speedup is
  // reported, not gated: CI machines and tiny scales are too noisy).
  ok = ok && par_versions == seq_versions && par_q3 == seq_q3_par_check;
  std::printf("\nshape check (S3 flat scan cost; SDB selective on Q.2/Q.3; "
              "engines agree; sharded + parallel answers identical): %s\n",
              ok ? "PASS" : "FAIL");

  // --- manifest-backed deep walks vs per-shard scatter ---
  //
  // The ancestry read path the snapshot layer replaces: one SimpleDB read
  // round trip per walked node (scatter) vs AncestorCache + min/max-pruned
  // manifest-block GETs + tail-only SimpleDB fallback (manifest). Swept
  // over shard counts and snapshot lag (what fraction of the provenance
  // landed after the roll).
  bench::print_header("Manifest read path vs SimpleDB scatter (deep walks)");
  struct SweepRow {
    std::string prefix;  // "s4_lag10"
    WalkCost scatter;
    WalkCost manifest;
  };
  std::vector<SweepRow> sweep;
  bool manifest_ok = true;
  std::printf("%-18s | %9s %10s %12s | %9s %10s %12s | %5s\n", "config",
              "sc-RTs", "sc-$", "sc-el(us)", "mf-RTs", "mf-$", "mf-el(us)",
              "shed");
  bench::print_rule();
  for (const std::size_t shard_count : {std::size_t{1}, std::size_t{4},
                                        std::size_t{16}}) {
    for (const std::size_t lag : {std::size_t{0}, std::size_t{10},
                                  std::size_t{50}}) {
      SnapshotRun run(shard_count, trace, lag);
      const std::vector<pass::ObjectVersion> roots =
          walk_roots(run.services, 8);
      PROVCLOUD_REQUIRE_MSG(!roots.empty(), "no blast summaries stored");
      auto scatter_engine =
          make_sdb_query_engine(run.services, run.topology);
      auto manifest_engine =
          make_manifest_query_engine(run.services, run.topology);
      const WalkCost sc = measure_walks(run, *scatter_engine, roots);
      const WalkCost mf = measure_walks(run, *manifest_engine, roots);
      const double shed =
          mf.read_rts == 0 ? 0.0
                           : static_cast<double>(sc.read_rts) /
                                 static_cast<double>(mf.read_rts);
      std::printf("s%-3zu lag %3zu%%%5s | %9llu %10s %12llu | %9llu %10s "
                  "%12llu | %4.1fx\n",
                  shard_count, lag, "",
                  static_cast<unsigned long long>(sc.read_rts),
                  cost::format_usd(sc.usd).c_str(),
                  static_cast<unsigned long long>(sc.elapsed_us),
                  static_cast<unsigned long long>(mf.read_rts),
                  cost::format_usd(mf.usd).c_str(),
                  static_cast<unsigned long long>(mf.elapsed_us), shed);
      // Bit-identical answers at every configuration.
      manifest_ok = manifest_ok && mf.nodes == sc.nodes &&
                    mf.missing == sc.missing && mf.nodes > 0;
      // The headline claim, gated where the snapshot covers everything: the
      // manifest path sheds at least 5x the SimpleDB read round trips.
      if (lag == 0)
        manifest_ok = manifest_ok && mf.read_rts * 5 <= sc.read_rts;
      sweep.push_back({"s" + std::to_string(shard_count) + "_lag" +
                           std::to_string(lag),
                       sc, mf});
    }
  }
  std::printf("\nshape check (manifest walks bit-identical to scatter; >=5x "
              "fewer SimpleDB read RTs at lag 0): %s\n",
              manifest_ok ? "PASS" : "FAIL");
  ok = ok && manifest_ok;

  if (const char* path = bench::json_output_path()) {
    bench::JsonObject j;
    j.add("bench", std::string("table3_query"));
    j.add("count_scale", options.count_scale);
    j.add("q1_s3_ops", q1_s3.ops);
    j.add("q1_sdb_ops", q1_sdb.ops);
    j.add("q2_sdb_ops", q2_sdb.ops);
    j.add("q3_sdb_ops", q3_sdb.ops);
    j.add("q1_sharded_ops", q1_sh.ops);
    j.add("q2_sharded_ops", q2_sh.ops);
    j.add("q3_sharded_ops", q3_sh.ops);
    j.add("parallelism", static_cast<std::uint64_t>(parallelism));
    j.add("hw_threads", static_cast<std::uint64_t>(bench::hardware_threads()));
    j.add("scatter_sequential_ms", seq_ms);
    j.add("scatter_parallel_ms", par_ms);
    j.add("scatter_parallel_speedup", parallel_speedup);
    for (const SweepRow& row : sweep) {
      j.add("scatter_" + row.prefix + "_read_rts", row.scatter.read_rts);
      j.add("scatter_" + row.prefix + "_usd", row.scatter.usd);
      j.add("scatter_" + row.prefix + "_elapsed_us", row.scatter.elapsed_us);
      row.scatter.walk.add_to(j, "scatter_" + row.prefix + "_walk");
      j.add("manifest_" + row.prefix + "_read_rts", row.manifest.read_rts);
      j.add("manifest_" + row.prefix + "_usd", row.manifest.usd);
      j.add("manifest_" + row.prefix + "_elapsed_us", row.manifest.elapsed_us);
      row.manifest.walk.add_to(j, "manifest_" + row.prefix + "_walk");
    }
    // Per-close store latency of the arch runs feeding the query tables.
    bench::LatencyPercentiles::of(s3_run.env.metrics(), "close.latency_us")
        .add_to(j, "arch1_close");
    bench::LatencyPercentiles::of(sdb_run.env.metrics(), "close.latency_us")
        .add_to(j, "arch2_close");
    j.add("manifest_shape_check", std::string(manifest_ok ? "PASS" : "FAIL"));
    j.add("shape_check", std::string(ok ? "PASS" : "FAIL"));
    if (j.write(path)) std::printf("json written: %s\n", path);
  }
  return ok ? 0 : 1;
}
