// Ablation: the batched + sharded SimpleDB write pipeline.
//
// The paper's Architectures 2/3 pay one PutAttributes round trip per
// 100-attribute chunk and funnel every client through a single SimpleDB
// domain. This ablation sweeps the two knobs the batched pipeline adds:
//
//   batch_size   1 -> 25   items per BatchPutAttributes in the WAL commit
//                          daemon (25 is the SimpleDB cap);
//   shard_count  1 -> 8    domains the ShardRouter hashes objects across;
//   parallelism  1 -> N    concurrent shard requests (DomainTopology
//                          executor): the commit daemon flushes per-domain
//                          batches concurrently and queries scatter/gather
//                          in parallel.
//
// Reported per point: SimpleDB write round trips, total service calls, the
// per-shard peak item count (the contention proxy: SimpleDB throttles per
// domain, so a lower peak means more client headroom), per-shard request
// hotness from the meter's per-domain view (peak/mean; 1.0 = even load),
// wall-clock and ledger elapsed time for the workload + queries. Query
// answers are cross-checked against the unsharded layout at every point:
// sharding and parallelism must never change an answer.
#include <cstdio>

#include <set>

#include "bench_common.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/shard_router.hpp"
#include "workloads/blast.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

namespace {

struct Point {
  std::size_t batch = 0;
  std::size_t shards = 0;
  std::size_t parallelism = 1;
  std::size_t group = 1;  // session closes coalesced per group commit
  std::uint64_t write_rts = 0;
  std::uint64_t sqs_send_rts = 0;
  std::uint64_t total_calls = 0;
  std::uint64_t peak_domain_items = 0;
  /// Per-shard hotness from the meter's per-domain view: the busiest
  /// domain's request count, and peak/mean (1.0 = perfectly even load).
  std::uint64_t peak_domain_calls = 0;
  double domain_hotness = 0;
  double store_ms = 0;  // wall-clock: workload through PASS + WAL drain
  double query_ms = 0;  // wall-clock: Q.2 + Q.3 scatter/gather
  sim::SimTime store_elapsed = 0;  // ledger: client timeline, store phase
  sim::SimTime query_elapsed = 0;  // ledger: client timeline, query phase
  std::set<std::string> q2;
  std::set<std::string> q3;
};

Point run_point(const pass::SyscallTrace& trace, const std::string& program,
                std::size_t batch, std::size_t shards,
                std::size_t parallelism = 1, std::size_t group = 1) {
  WalBackendConfig cfg;
  cfg.batch_size = batch;
  cfg.shard_count = shards;
  cfg.parallelism = parallelism;
  bench::WorkloadRun run(
      [&](CloudServices& s) { return make_wal_backend(s, cfg); });
  run.group_size = group;

  Point p;
  p.batch = batch;
  p.shards = shards;
  p.parallelism = parallelism;
  p.group = group;
  p.store_ms = bench::wall_clock_ms([&] { run.run(trace); });
  p.store_elapsed = run.env.elapsed_time();
  const auto snap = run.env.meter().snapshot();
  p.write_rts = snap.calls("sdb", "PutAttributes") +
                snap.calls("sdb", "BatchPutAttributes");
  p.sqs_send_rts = snap.calls("sqs", "SendMessage") +
                   snap.calls("sqs", "SendMessageBatch");
  p.total_calls = snap.total_calls();
  ShardRouter router(shards);
  std::uint64_t domain_calls_total = 0;
  for (const std::string& domain : router.domains()) {
    p.peak_domain_items =
        std::max(p.peak_domain_items, run.services.sdb.item_count(domain));
    const std::uint64_t calls = snap.detail_calls("sdb", domain);
    p.peak_domain_calls = std::max(p.peak_domain_calls, calls);
    domain_calls_total += calls;
  }
  if (domain_calls_total > 0)
    p.domain_hotness = static_cast<double>(p.peak_domain_calls) *
                       static_cast<double>(shards) /
                       static_cast<double>(domain_calls_total);
  auto engine = make_sdb_query_engine(
      run.services,
      SdbQueryConfig{.shard_count = shards, .parallelism = parallelism});
  p.query_ms = bench::wall_clock_ms([&] {
    p.q2 = engine->q2_outputs_of(program);
    p.q3 = engine->q3_descendants_of(program);
  });
  p.query_elapsed = run.env.elapsed_time() - p.store_elapsed;
  return p;
}

}  // namespace

int main() {
  const workloads::WorkloadOptions options = bench::bench_workload_options();
  bench::print_header("Ablation: batched + sharded storage (WAL architecture)");
  std::printf("workload: combined dataset (count_scale %.2f, size_scale %.2f)\n",
              options.count_scale, options.size_scale);

  const pass::SyscallTrace trace = workloads::build_combined_trace(options);
  const std::string program = workloads::BlastWorkload::kBlastProgram;

  const std::size_t parallelism = bench::bench_parallelism();
  std::vector<Point> points;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{25}})
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{4}, std::size_t{8}})
      points.push_back(run_point(trace, program, batch, shards));
  // The shard-parallel points: same layouts, concurrent shard requests.
  // Skipped at parallelism 1 -- they would duplicate the sequential points
  // (same key in the JSON, self-comparing shape checks).
  if (parallelism > 1)
    for (const std::size_t shards : {std::size_t{4}, std::size_t{8}})
      points.push_back(run_point(trace, program, 25, shards, parallelism));
  // The cross-close group-commit points: same sharded layout, the client
  // session coalescing 25 closes per durability barrier (batched WAL
  // sends + one commit-daemon poke per group).
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}})
    points.push_back(run_point(trace, program, 25, shards, 1, 25));

  std::printf("\n%6s %7s %4s %6s %13s %10s %11s %11s %7s %8s %8s %11s\n",
              "batch", "shards", "par", "group", "sdb write RTs", "sqs sends",
              "total calls", "peak items", "hotness", "store ms", "query ms",
              "elapsed min");
  bench::print_rule(100);
  for (const Point& p : points)
    std::printf(
        "%6zu %7zu %4zu %6zu %13s %10s %11s %11s %7.2f %8.1f %8.1f %11.1f\n",
        p.batch, p.shards, p.parallelism, p.group,
        bench::fmt_count(p.write_rts).c_str(),
        bench::fmt_count(p.sqs_send_rts).c_str(),
        bench::fmt_count(p.total_calls).c_str(),
        bench::fmt_count(p.peak_domain_items).c_str(), p.domain_hotness,
        p.store_ms, p.query_ms,
        static_cast<double>(p.store_elapsed + p.query_elapsed) /
            sim::kMinute);

  const auto find_point = [&](std::size_t batch, std::size_t shards,
                              std::size_t par = 1,
                              std::size_t group = 1) -> const Point& {
    for (const Point& p : points)
      if (p.batch == batch && p.shards == shards && p.parallelism == par &&
          p.group == group)
        return p;
    std::fprintf(stderr, "sweep point (%zu, %zu, %zu, %zu) missing\n", batch,
                 shards, par, group);
    std::abort();
  };
  const Point& base = find_point(1, 1);   // the paper's layout
  const Point& fast = find_point(25, 1);
  const double speedup =
      fast.write_rts > 0 ? static_cast<double>(base.write_rts) /
                               static_cast<double>(fast.write_rts)
                         : 0.0;
  std::printf("\nbatch 25 vs 1 (single domain): %.1fx fewer write RTs\n",
              speedup);
  double query_wall_speedup = 0.0;
  if (parallelism > 1) {
    const Point& par8 = find_point(25, 8, parallelism);
    const Point& seq8 = find_point(25, 8);
    query_wall_speedup =
        par8.query_ms > 0 ? seq8.query_ms / par8.query_ms : 0.0;
    std::printf("shards 8, parallelism %zu vs 1: query wall-clock %.1f -> "
                "%.1f ms (%.2fx on %zu hardware threads)\n",
                parallelism, seq8.query_ms, par8.query_ms, query_wall_speedup,
                bench::hardware_threads());
  }

  // Cross-close group commit: the same layout driven through a 25-close
  // session group must shed SQS log round trips (batched sends) without
  // costing SimpleDB writes or elapsed time -- and, like every point,
  // without changing a single query answer.
  const Point& grp = find_point(25, 4, 1, 25);
  const Point& grp_base = find_point(25, 4);
  const double sqs_shed =
      grp.sqs_send_rts > 0 ? static_cast<double>(grp_base.sqs_send_rts) /
                                 static_cast<double>(grp.sqs_send_rts)
                           : 0.0;
  std::printf("group 25 vs 1 (batch 25, shards 4): sqs sends %s -> %s "
              "(%.1fx fewer log round trips)\n",
              bench::fmt_count(grp_base.sqs_send_rts).c_str(),
              bench::fmt_count(grp.sqs_send_rts).c_str(), sqs_shed);

  bool ok = true;
  for (const Point& p : points) {
    ok = ok && p.q2 == base.q2;  // answers never depend on the knobs
    ok = ok && p.q3 == base.q3;
  }
  ok = ok && speedup >= 5.0;
  ok = ok && sqs_shed >= 2.0;
  ok = ok && grp.write_rts <= grp_base.write_rts;
  ok = ok && grp.store_elapsed <= grp_base.store_elapsed;
  // More shards -> lower per-domain peak (contention headroom).
  ok = ok && find_point(25, 8).peak_domain_items < base.peak_domain_items;
  // Parallelism changes wall-clock and ledger elapsed time only: identical
  // billing and layout, and the overlapped (critical-path) elapsed time
  // never exceeds the sequential sum.
  if (parallelism > 1) {
    const Point& par8 = find_point(25, 8, parallelism);
    const Point& seq8 = find_point(25, 8);
    ok = ok && par8.write_rts == seq8.write_rts;
    ok = ok && par8.total_calls == seq8.total_calls;
    ok = ok && par8.peak_domain_items == seq8.peak_domain_items;
    ok = ok && par8.store_elapsed + par8.query_elapsed <=
                   seq8.store_elapsed + seq8.query_elapsed;
  }
  std::printf("\nshape check (identical answers at every point; batch >= 5x; "
              "sharding lowers per-domain peak; parallelism billing-"
              "neutral; group commit sheds >= 2x sqs sends): %s\n",
              ok ? "PASS" : "FAIL");

  if (const char* path = bench::json_output_path()) {
    bench::JsonObject j;
    j.add("bench", std::string("ablation_sharding"));
    j.add("count_scale", options.count_scale);
    j.add("parallelism", static_cast<std::uint64_t>(parallelism));
    j.add("hw_threads", static_cast<std::uint64_t>(bench::hardware_threads()));
    for (const Point& p : points) {
      // Group-1 points keep their pre-session key names so trajectories
      // stay comparable across PRs; group-commit points get a _g suffix.
      const std::string key =
          "b" + std::to_string(p.batch) + "_s" + std::to_string(p.shards) +
          "_p" + std::to_string(p.parallelism) +
          (p.group > 1 ? "_g" + std::to_string(p.group) : "");
      j.add(key + "_write_rts", p.write_rts);
      j.add(key + "_sqs_send_rts", p.sqs_send_rts);
      j.add(key + "_peak_domain_items", p.peak_domain_items);
      j.add(key + "_peak_domain_calls", p.peak_domain_calls);
      j.add(key + "_domain_hotness", p.domain_hotness);
      j.add(key + "_store_ms", p.store_ms);
      j.add(key + "_query_ms", p.query_ms);
      j.add(key + "_store_elapsed_us",
            static_cast<std::uint64_t>(p.store_elapsed));
      j.add(key + "_query_elapsed_us",
            static_cast<std::uint64_t>(p.query_elapsed));
    }
    j.add("batch_speedup", speedup);
    j.add("query_wall_speedup", query_wall_speedup);
    j.add("group_sqs_shed", sqs_shed);
    j.add("shape_check", std::string(ok ? "PASS" : "FAIL"));
    if (j.write(path)) std::printf("json written: %s\n", path);
  }
  return ok ? 0 : 1;
}
