// Ablation: the batched + sharded SimpleDB write pipeline.
//
// The paper's Architectures 2/3 pay one PutAttributes round trip per
// 100-attribute chunk and funnel every client through a single SimpleDB
// domain. This ablation sweeps the two knobs the batched pipeline adds:
//
//   batch_size   1 -> 25   items per BatchPutAttributes in the WAL commit
//                          daemon (25 is the SimpleDB cap);
//   shard_count  1 -> 8    domains the ShardRouter hashes objects across.
//
// Reported per point: SimpleDB write round trips, total service calls, and
// the per-shard peak item count (the contention proxy: SimpleDB throttles
// per domain, so a lower peak means more client headroom). Query answers
// are cross-checked against the unsharded layout at every point: sharding
// must never change an answer.
#include <cstdio>

#include <set>

#include "bench_common.hpp"
#include "cloudprov/query.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/shard_router.hpp"
#include "workloads/blast.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

namespace {

struct Point {
  std::size_t batch = 0;
  std::size_t shards = 0;
  std::uint64_t write_rts = 0;
  std::uint64_t total_calls = 0;
  std::uint64_t peak_domain_items = 0;
  std::set<std::string> q2;
  std::set<std::string> q3;
};

Point run_point(const pass::SyscallTrace& trace, const std::string& program,
                std::size_t batch, std::size_t shards) {
  WalBackendConfig cfg;
  cfg.batch_size = batch;
  cfg.shard_count = shards;
  bench::WorkloadRun run(
      [&](CloudServices& s) { return make_wal_backend(s, cfg); });
  run.run(trace);

  Point p;
  p.batch = batch;
  p.shards = shards;
  const auto snap = run.env.meter().snapshot();
  p.write_rts = snap.calls("sdb", "PutAttributes") +
                snap.calls("sdb", "BatchPutAttributes");
  p.total_calls = snap.total_calls();
  ShardRouter router(shards);
  for (const std::string& domain : router.domains())
    p.peak_domain_items =
        std::max(p.peak_domain_items, run.services.sdb.item_count(domain));
  auto engine = make_sdb_query_engine(run.services,
                                      SdbQueryConfig{.shard_count = shards});
  p.q2 = engine->q2_outputs_of(program);
  p.q3 = engine->q3_descendants_of(program);
  return p;
}

}  // namespace

int main() {
  const workloads::WorkloadOptions options = bench::bench_workload_options();
  bench::print_header("Ablation: batched + sharded storage (WAL architecture)");
  std::printf("workload: combined dataset (count_scale %.2f, size_scale %.2f)\n",
              options.count_scale, options.size_scale);

  const pass::SyscallTrace trace = workloads::build_combined_trace(options);
  const std::string program = workloads::BlastWorkload::kBlastProgram;

  std::vector<Point> points;
  for (const std::size_t batch : {std::size_t{1}, std::size_t{25}})
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{4}, std::size_t{8}})
      points.push_back(run_point(trace, program, batch, shards));

  std::printf("\n%6s %7s %15s %12s %18s\n", "batch", "shards", "sdb write RTs",
              "total calls", "peak domain items");
  bench::print_rule();
  for (const Point& p : points)
    std::printf("%6zu %7zu %15s %12s %18s\n", p.batch, p.shards,
                bench::fmt_count(p.write_rts).c_str(),
                bench::fmt_count(p.total_calls).c_str(),
                bench::fmt_count(p.peak_domain_items).c_str());

  const auto find_point = [&](std::size_t batch, std::size_t shards) -> const Point& {
    for (const Point& p : points)
      if (p.batch == batch && p.shards == shards) return p;
    std::fprintf(stderr, "sweep point (%zu, %zu) missing\n", batch, shards);
    std::abort();
  };
  const Point& base = find_point(1, 1);   // the paper's layout
  const Point& fast = find_point(25, 1);
  const double speedup =
      fast.write_rts > 0 ? static_cast<double>(base.write_rts) /
                               static_cast<double>(fast.write_rts)
                         : 0.0;
  std::printf("\nbatch 25 vs 1 (single domain): %.1fx fewer write RTs\n",
              speedup);

  bool ok = true;
  for (const Point& p : points) {
    ok = ok && p.q2 == base.q2;  // answers never depend on the knobs
    ok = ok && p.q3 == base.q3;
  }
  ok = ok && speedup >= 5.0;
  // More shards -> lower per-domain peak (contention headroom).
  ok = ok && find_point(25, 8).peak_domain_items < base.peak_domain_items;
  std::printf("\nshape check (identical answers at every point; batch >= 5x; "
              "sharding lowers per-domain peak): %s\n",
              ok ? "PASS" : "FAIL");

  if (const char* path = bench::json_output_path()) {
    bench::JsonObject j;
    j.add("bench", std::string("ablation_sharding"));
    j.add("count_scale", options.count_scale);
    for (const Point& p : points) {
      const std::string key =
          "b" + std::to_string(p.batch) + "_s" + std::to_string(p.shards);
      j.add(key + "_write_rts", p.write_rts);
      j.add(key + "_peak_domain_items", p.peak_domain_items);
    }
    j.add("batch_speedup", speedup);
    j.add("shape_check", std::string(ok ? "PASS" : "FAIL"));
    if (j.write(path)) std::printf("json written: %s\n", path);
  }
  return ok ? 0 : 1;
}
