// Experiment A6: provenance as a cloud-side hint (the paper's section 7
// future work, quantified).
//
// A researcher's access pattern is provenance-correlated: open one output
// of a run, then its siblings, then the derived summary. We replay such a
// pattern over the blast dataset against a cloud edge cache, with and
// without the provenance prefetcher, across cache sizes.
//
// The claim to verify: mining the (already-stored) provenance index lifts
// the cache hit rate substantially at modest prefetch traffic -- the cloud
// can "take advantage of this provenance".
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "cloudprov/hints.hpp"
#include "cloudprov/manifest/reader.hpp"
#include "cloudprov/manifest/writer.hpp"
#include "cloudprov/query.hpp"
#include "workloads/blast.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

namespace {

/// The provenance-correlated access pattern: for each blast run, read the
/// hits file, then the sibling hits of the same summary group, then the
/// summary itself. Interleave with unrelated re-reads for realism.
std::vector<std::string> build_access_pattern(std::size_t queries,
                                              std::size_t per_summary,
                                              util::Rng& rng) {
  std::vector<std::string> out;
  for (std::size_t group = 0; group * per_summary < queries; ++group) {
    const std::size_t start = group * per_summary;
    const std::size_t end = std::min(start + per_summary, queries);
    for (std::size_t q = start; q < end; ++q)
      out.push_back("blast/hits" + std::to_string(q) + ".out");
    out.push_back("blast/summary" + std::to_string(group) + ".txt");
    // Revisit one earlier object (temporal locality the LRU also exploits).
    if (group > 0 && rng.next_bool(0.5))
      out.push_back("blast/summary" + std::to_string(rng.next_below(group)) +
                    ".txt");
  }
  return out;
}

struct RunResult {
  PrefetchStats stats;
  std::uint64_t prefetch_gets = 0;
  std::uint64_t prefetch_queries = 0;
  std::uint64_t item_gets = 0;  // per-item GetAttributes hint mining issued
};

RunResult replay(bench::WorkloadRun& run, const std::vector<std::string>& pattern,
                 PrefetchConfig config,
                 std::shared_ptr<manifest::AncestorCache> ancestors = nullptr) {
  ProvenanceCache cache(run.services, config);
  if (ancestors != nullptr) cache.attach_ancestor_cache(std::move(ancestors));
  const auto before = run.env.meter().snapshot();
  for (const std::string& object : pattern) cache.read(object);
  const auto diff = run.env.meter().snapshot().diff(before);
  RunResult r;
  r.stats = cache.stats();
  r.prefetch_gets = diff.calls("s3", "GET.prefetch");
  r.prefetch_queries = diff.calls("sdb", "Query.prefetch");
  r.item_gets = diff.calls("sdb", "GetAttributes");
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "A6: provenance-hint prefetching vs plain LRU (paper section 7 "
      "future work)");

  // Build the blast dataset on Architecture 2.
  workloads::WorkloadOptions options;
  options.seed = 2009;
  options.count_scale = 1.0;
  options.size_scale = 0.25;  // smaller payloads; hit *rates* are the metric
  const workloads::BlastConfig blast_cfg;
  bench::WorkloadRun run(Architecture::kS3SimpleDb);
  run.run(workloads::BlastWorkload(blast_cfg).generate(options));

  util::Rng rng(2009);
  const std::vector<std::string> pattern = build_access_pattern(
      blast_cfg.queries, blast_cfg.queries_per_summary, rng);
  std::printf("dataset: blast workload; access pattern of %zu reads "
              "(run-correlated)\n\n",
              pattern.size());

  std::printf("%-10s | %-9s %12s | %-9s %12s %12s %10s\n", "cache", "LRU",
              "hit rate", "hints", "hit rate", "accuracy", "pf-traffic");
  bench::print_rule();

  bool ok = true;
  for (std::size_t capacity : {4u, 8u, 16u, 32u, 64u}) {
    PrefetchConfig lru;
    lru.cache_capacity = capacity;
    lru.use_provenance_hints = false;
    const RunResult plain = replay(run, pattern, lru);

    PrefetchConfig hints;
    hints.cache_capacity = capacity;
    hints.use_provenance_hints = true;
    const RunResult smart = replay(run, pattern, hints);

    std::printf("%-10zu | %5llu/%-3llu %11.1f%% | %5llu/%-3llu %11.1f%% %11.1f%% %10llu\n",
                capacity,
                static_cast<unsigned long long>(plain.stats.hits),
                static_cast<unsigned long long>(plain.stats.reads),
                100.0 * plain.stats.hit_rate(),
                static_cast<unsigned long long>(smart.stats.hits),
                static_cast<unsigned long long>(smart.stats.reads),
                100.0 * smart.stats.hit_rate(),
                100.0 * smart.stats.prefetch_accuracy(),
                static_cast<unsigned long long>(smart.prefetch_gets +
                                                smart.prefetch_queries));
    if (capacity >= 8) ok = ok && smart.stats.hit_rate() > plain.stats.hit_rate();
  }

  std::printf("\nshape check (provenance hints beat plain LRU at every "
              "reasonable cache size): %s\n",
              ok ? "PASS" : "FAIL");

  // --- hint mining through a warmed, shared AncestorCache ---
  //
  // An ancestry walk over the summaries already pulled every fragment the
  // hint miner wants. Sharing the walk's AncestorCache lets the prefetcher
  // skip its per-item GetAttributes reads entirely.
  bench::print_header("Hints + shared AncestorCache (walk-warmed)");
  auto topology = DomainTopology::make(
      TopologyConfig{.ledger = &run.env.latency_ledger()});
  manifest::ManifestWriter writer(run.services, topology);
  const auto rolled = writer.roll();
  PROVCLOUD_REQUIRE_MSG(rolled.has_value(), "snapshot roll failed");
  auto reader = std::make_shared<manifest::ManifestReader>(run.services,
                                                           topology);
  PROVCLOUD_REQUIRE_MSG(reader->open_current().has_value(),
                        "snapshot bind failed");
  auto engine = make_manifest_query_engine(run.services, reader);
  for (std::size_t group = 0;
       group * blast_cfg.queries_per_summary < blast_cfg.queries; ++group)
    engine->ancestry("blast/summary" + std::to_string(group) + ".txt", 1);

  PrefetchConfig warm_cfg;
  warm_cfg.cache_capacity = 32;
  const RunResult cold = replay(run, pattern, warm_cfg);
  const RunResult warm = replay(run, pattern, warm_cfg, reader->cache());
  std::printf("%-22s %12s %12s %14s %12s\n", "", "hit rate", "item-gets",
              "ancestor-hits", "pf-traffic");
  std::printf("%-22s %11.1f%% %12llu %14llu %12llu\n", "hints (cold)",
              100.0 * cold.stats.hit_rate(),
              static_cast<unsigned long long>(cold.item_gets),
              static_cast<unsigned long long>(cold.stats.ancestor_cache_hits),
              static_cast<unsigned long long>(cold.prefetch_gets +
                                              cold.prefetch_queries));
  std::printf("%-22s %11.1f%% %12llu %14llu %12llu\n", "hints (walk-warmed)",
              100.0 * warm.stats.hit_rate(),
              static_cast<unsigned long long>(warm.item_gets),
              static_cast<unsigned long long>(warm.stats.ancestor_cache_hits),
              static_cast<unsigned long long>(warm.prefetch_gets +
                                              warm.prefetch_queries));
  const bool warm_ok = warm.stats.ancestor_cache_hits > 0 &&
                       warm.item_gets < cold.item_gets;
  std::printf("\nshape check (warmed cache skips per-item provenance reads): "
              "%s\n",
              warm_ok ? "PASS" : "FAIL");
  ok = ok && warm_ok;
  std::printf("(the provenance index doubles as a prefetch oracle the cloud "
              "already stores -- the paper's closing conjecture.)\n");
  return ok ? 0 : 1;
}
