// Reproduces Table 2: storage cost comparison.
//
// The paper column layout:
//
//            Raw        S3            S3+SimpleDB    S3+SimpleDB+SQS
//   Data     1.27GB     121.8MB(9.3%) 167.8MB(13.6%) 421.4MB(32.2%)
//   ops      31,180     24,952(0.8x)  168,514(5.4x)  231,287(7.41x)
//
// We regenerate the combined compile+blast+provenance-challenge dataset,
// actually run each architecture's store protocol against the simulators,
// and report the measured provenance bytes / extra ops next to the paper's
// closed-form estimates (src/cost/analysis) computed from our trace. The
// shape to check: arch1 ops ~ large records only (<1x raw), arch2 adds one
// item per version (several x raw), arch3 roughly doubles again via the
// WAL, with provenance bytes ordered arch1 < arch2 < arch3.
#include <cstdio>

#include "bench_common.hpp"
#include "cloudprov/lsb/lsb_backend.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cost/analysis.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;
using namespace provcloud::cost;

namespace {

struct Row {
  std::string name;
  std::uint64_t prov_bytes_measured = 0;
  std::uint64_t extra_ops_measured = 0;
  std::uint64_t prov_bytes_estimate = 0;
  std::uint64_t extra_ops_estimate = 0;
};

/// SimpleDB write round trips: what the batched pipeline is built to cut.
std::uint64_t sdb_write_round_trips(const sim::MeterSnapshot& snap) {
  return snap.calls("sdb", "PutAttributes") +
         snap.calls("sdb", "BatchPutAttributes");
}

struct SweepRow {
  std::string arch;
  std::size_t batch = 0;
  std::size_t shards = 0;
  std::uint64_t write_rts = 0;
  std::uint64_t total_calls = 0;
};

/// Run the trace through one (architecture, batch_size, shard_count) point.
SweepRow sweep_point(const pass::SyscallTrace& trace, Architecture arch,
                     std::size_t batch, std::size_t shards) {
  bench::WorkloadRun::BackendFactory factory;
  if (arch == Architecture::kS3SimpleDb) {
    factory = [=](CloudServices& s) {
      return make_sdb_backend(
          s, SdbBackendConfig{.shard_count = shards, .batch_size = batch});
    };
  } else {
    factory = [=](CloudServices& s) {
      WalBackendConfig cfg;
      cfg.shard_count = shards;
      cfg.batch_size = batch;
      return make_wal_backend(s, cfg);
    };
  }
  bench::WorkloadRun run(factory);
  run.run(trace);
  const auto snap = run.env.meter().snapshot();
  SweepRow r;
  r.arch = to_string(arch);
  r.batch = batch;
  r.shards = shards;
  r.write_rts = sdb_write_round_trips(snap);
  r.total_calls = snap.total_calls();
  return r;
}

/// Provenance-attributable stored bytes for a run: total service storage
/// minus the raw data bytes.
std::uint64_t provenance_bytes_stored(bench::WorkloadRun& run,
                                      std::uint64_t raw_bytes) {
  const auto snap = run.env.meter().snapshot();
  const std::uint64_t total = snap.storage_bytes("s3") +
                              snap.storage_bytes("sdb") +
                              snap.storage_bytes("sqs");
  return total > raw_bytes ? total - raw_bytes : 0;
}

}  // namespace

int main() {
  const workloads::WorkloadOptions options = bench::bench_workload_options();
  bench::print_header("Table 2: Storage cost comparison");
  std::printf("workload: combined linux-compile + blast + provenance "
              "challenge (count_scale %.2f, size_scale %.2f, seed %llu)\n",
              options.count_scale, options.size_scale,
              static_cast<unsigned long long>(options.seed));

  const pass::SyscallTrace trace = workloads::build_combined_trace(options);

  // Raw baseline: what storing only the data costs (one PUT per version).
  bench::WorkloadRun probe(Architecture::kS3Only);
  probe.run(trace);
  const TraceQuantities q = quantities_from(probe.stats);
  const std::uint64_t raw_bytes = q.data_bytes;
  const std::uint64_t raw_ops = estimate_raw(q).extra_ops;

  std::printf("\nraw dataset: %s in %s object versions; provenance %s in %s "
              "records (%s records over 1KB)\n",
              bench::fmt_bytes(raw_bytes).c_str(),
              bench::fmt_count(q.n_objects).c_str(),
              bench::fmt_bytes(q.provenance_bytes).c_str(),
              bench::fmt_count(probe.stats.records_emitted).c_str(),
              bench::fmt_count(q.n_large_records).c_str());

  std::vector<Row> rows;
  {
    Row r;
    r.name = "S3";
    // probe already ran arch 1: measure from it.
    r.prov_bytes_measured = provenance_bytes_stored(probe, raw_bytes);
    const auto snap = probe.env.meter().snapshot();
    r.extra_ops_measured = snap.total_calls() - raw_ops;
    r.prov_bytes_estimate = estimate_arch1(q).provenance_bytes;
    r.extra_ops_estimate = estimate_arch1(q).extra_ops;
    rows.push_back(r);
  }
  {
    bench::WorkloadRun run(Architecture::kS3SimpleDb);
    run.run(trace);
    Row r;
    r.name = "S3+SimpleDB";
    r.prov_bytes_measured = provenance_bytes_stored(run, raw_bytes);
    r.extra_ops_measured = run.env.meter().snapshot().total_calls() - raw_ops;
    r.prov_bytes_estimate = estimate_arch2(q).provenance_bytes;
    r.extra_ops_estimate = estimate_arch2(q).extra_ops;
    rows.push_back(r);
  }
  {
    bench::WorkloadRun run(Architecture::kS3SimpleDbSqs);
    run.run(trace);
    Row r;
    r.name = "S3+SimpleDB+SQS";
    // SQS storage drains to ~0 after quiescence; charge the transient WAL
    // residency the way the paper does: provenance passes through SQS twice.
    r.prov_bytes_measured =
        provenance_bytes_stored(run, raw_bytes) + 2 * q.provenance_bytes;
    r.extra_ops_measured = run.env.meter().snapshot().total_calls() - raw_ops;
    r.prov_bytes_estimate = estimate_arch3(q).provenance_bytes;
    r.extra_ops_estimate = estimate_arch3(q).extra_ops;
    rows.push_back(r);
  }

  // Arch 4: data and provenance travel together inside segment objects, so
  // "provenance bytes" here is the whole log overhead (entry framing plus
  // records plus the SimpleDB index) over the raw data. Keep a handle on
  // the backend to read the cleaner's segment accounting afterwards.
  LsbBackend* lsb = nullptr;
  bench::WorkloadRun lsb_run([&](CloudServices& s) {
    LsbBackendConfig cfg;
    cfg.compact_trigger_segments = 0;  // measure before/after by hand
    auto backend = std::make_unique<LsbBackend>(s, cfg);
    lsb = backend.get();
    return backend;
  });
  lsb_run.group_size = 25;
  lsb_run.run(trace);
  {
    Row r;
    r.name = "S3 segment log";
    r.prov_bytes_measured = provenance_bytes_stored(lsb_run, raw_bytes);
    // Group sealing can spend FEWER total calls than raw's one PUT per
    // version -- provenance rides along for free. Clamp at zero instead of
    // letting the unsigned subtraction wrap.
    const std::uint64_t total = lsb_run.env.meter().snapshot().total_calls();
    r.extra_ops_measured = total > raw_ops ? total - raw_ops : 0;
    rows.push_back(r);  // no closed-form paper estimate for arch 4
  }

  std::printf("\n%-17s %14s %14s | %14s %14s | %14s\n", "", "Raw",
              rows[0].name.c_str(), rows[1].name.c_str(), rows[2].name.c_str(),
              rows[3].name.c_str());
  bench::print_rule();
  std::printf("%-17s %14s", "Data (measured)", bench::fmt_bytes(raw_bytes).c_str());
  for (const Row& r : rows) {
    const double pct = 100.0 * static_cast<double>(r.prov_bytes_measured) /
                       static_cast<double>(raw_bytes);
    std::printf(" %9s(%4.1f%%)", bench::fmt_bytes(r.prov_bytes_measured).c_str(),
                pct);
  }
  std::printf("\n%-17s %14s", "ops  (measured)", bench::fmt_count(raw_ops).c_str());
  for (const Row& r : rows) {
    const double x = static_cast<double>(r.extra_ops_measured) /
                     static_cast<double>(raw_ops);
    std::printf(" %9s(%4.2fx)", bench::fmt_count(r.extra_ops_measured).c_str(), x);
  }
  std::printf("\n%-17s %14s", "Data (estimate)", "");
  for (const Row& r : rows) {
    if (r.prov_bytes_estimate == 0) {  // arch 4: no paper estimate
      std::printf(" %16s", "--");
      continue;
    }
    const double pct = 100.0 * static_cast<double>(r.prov_bytes_estimate) /
                       static_cast<double>(raw_bytes);
    std::printf(" %9s(%4.1f%%)", bench::fmt_bytes(r.prov_bytes_estimate).c_str(),
                pct);
  }
  std::printf("\n%-17s %14s", "ops  (estimate)", "");
  for (const Row& r : rows) {
    if (r.extra_ops_estimate == 0) {
      std::printf(" %16s", "--");
      continue;
    }
    const double x = static_cast<double>(r.extra_ops_estimate) /
                     static_cast<double>(raw_ops);
    std::printf(" %9s(%4.2fx)", bench::fmt_count(r.extra_ops_estimate).c_str(), x);
  }

  std::printf("\n\npaper reference (1.27GB / 31,180 raw ops):\n");
  std::printf("  Data: 121.8MB (9.3%%) | 167.8MB (13.6%%) | 421.4MB (32.2%%)\n");
  std::printf("  ops : 24,952 (0.8x)  | 168,514 (5.4x)  | 231,287 (7.41x)\n");

  // --- arch 4 cleaner effectiveness: segment accounting around compaction ---
  //
  // Replay the trace through the same backend: every close re-stores the
  // same (object, version) identity, so the first run's copies become
  // superseded data bytes the cleaner can drop (records are kept forever)
  // -- the sustained-overwrite shape the cleaner exists for.
  lsb_run.run(trace);
  const LsbBackend::SegmentStats before = lsb->stats();
  // compact() picks victims by garbage ratio (CleanerPolicy::kGarbageRatio
  // default), so each pass targets the overwrite-heavy segments; stop once
  // the log is clean (or after a bounded number of passes over a
  // pathological layout).
  for (int pass = 0; pass < 8 && lsb->stats().garbage_ratio > 0.01; ++pass)
    if (lsb->compact() == 0) break;
  const LsbBackend::SegmentStats after = lsb->stats();
  bench::print_header("Arch 4 cleaner: segment accounting before/after");
  std::printf("%-9s %9s %12s %12s %9s %10s %10s\n", "", "segments",
              "total bytes", "live bytes", "garbage", "delete-to",
              "indexed-to");
  bench::print_rule();
  for (const auto& [label, s] :
       {std::pair<const char*, const LsbBackend::SegmentStats&>{"before",
                                                                before},
        {"after", after}})
    std::printf("%-9s %9s %12s %12s %8.1f%% %10s %10s\n", label,
                bench::fmt_count(s.segment_count).c_str(),
                bench::fmt_bytes(s.total_bytes).c_str(),
                bench::fmt_bytes(s.live_bytes).c_str(),
                100.0 * s.garbage_ratio,
                bench::fmt_count(s.delete_to).c_str(),
                bench::fmt_count(s.indexed_to).c_str());
  std::printf("reclaimed: %s (%zu -> %zu segments)\n",
              bench::fmt_bytes(before.total_bytes > after.total_bytes
                                   ? before.total_bytes - after.total_bytes
                                   : 0)
                  .c_str(),
              static_cast<std::size_t>(before.segment_count),
              static_cast<std::size_t>(after.segment_count));

  // --- the batched + sharded write path: batch_size x shard_count sweep ---
  bench::print_header(
      "Write-path sweep: SimpleDB write round trips by batch_size/shard_count");
  std::vector<SweepRow> sweep;
  for (const Architecture arch :
       {Architecture::kS3SimpleDb, Architecture::kS3SimpleDbSqs}) {
    for (const auto& [batch, shards] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {1, 1}, {25, 1}, {25, 4}})
      sweep.push_back(sweep_point(trace, arch, batch, shards));
  }
  std::printf("%-17s %6s %7s %15s %12s\n", "", "batch", "shards",
              "sdb write RTs", "total calls");
  bench::print_rule();
  for (const SweepRow& r : sweep)
    std::printf("%-17s %6zu %7zu %15s %12s\n", r.arch.c_str(), r.batch,
                r.shards, bench::fmt_count(r.write_rts).c_str(),
                bench::fmt_count(r.total_calls).c_str());
  // The WAL commit daemon coalesces cross-transaction writes: the win the
  // batch path exists for.
  const auto find_row = [&](std::size_t batch, std::size_t shards) -> const SweepRow& {
    for (const SweepRow& r : sweep)
      if (r.arch == to_string(Architecture::kS3SimpleDbSqs) &&
          r.batch == batch && r.shards == shards)
        return r;
    std::fprintf(stderr, "sweep row (%zu, %zu) missing\n", batch, shards);
    std::abort();
  };
  const SweepRow& wal_b1 = find_row(1, 1);
  const SweepRow& wal_b25 = find_row(25, 1);
  const SweepRow& wal_b25_s4 = find_row(25, 4);
  const double batch_speedup =
      wal_b25.write_rts > 0
          ? static_cast<double>(wal_b1.write_rts) /
                static_cast<double>(wal_b25.write_rts)
          : 0.0;
  std::printf("\nWAL write-round-trip reduction, batch 25 vs 1: %.1fx\n",
              batch_speedup);

  // Shape checks (exit non-zero if the qualitative result breaks).
  bool ok = true;
  ok = ok && rows[0].prov_bytes_measured < rows[1].prov_bytes_measured;
  ok = ok && rows[1].prov_bytes_measured < rows[2].prov_bytes_measured;
  ok = ok && rows[0].extra_ops_measured < rows[1].extra_ops_measured;
  ok = ok && rows[1].extra_ops_measured < rows[2].extra_ops_measured;
  // The paper's own accounting: arch-1 extra ops (spills only) < raw ops.
  ok = ok && rows[0].extra_ops_estimate < raw_ops;
  // Arch 4 at group 25 spends far fewer round trips than the per-item
  // SimpleDB protocol, and the cleaner actually reclaims: garbage ratio and
  // total bytes drop, live bytes survive, the watermark advances.
  ok = ok && rows[3].extra_ops_measured < rows[1].extra_ops_measured;
  ok = ok && after.total_bytes < before.total_bytes;
  ok = ok && after.garbage_ratio < before.garbage_ratio;
  ok = ok && after.live_bytes > 0 && after.delete_to > before.delete_to;
  // Batching must cut the commit daemon's SimpleDB round trips >= 5x.
  ok = ok && batch_speedup >= 5.0;
  // Sharding splits each flush across domains (fewer items per batch call),
  // but batched+sharded must still beat the unbatched single domain.
  ok = ok && wal_b25_s4.write_rts < wal_b1.write_rts;
  std::printf("\nshape check (arch1 < arch2 < arch3 in space and ops; "
              "estimated arch1 ops < raw; batch >= 5x fewer write RTs; "
              "arch4 ops < arch2 ops and the cleaner reclaims bytes while "
              "advancing the watermark): %s\n",
              ok ? "PASS" : "FAIL");
  std::printf("note: measured arch-1/arch-3 ops exceed the paper-style "
              "estimates because the estimates ignore transient-pnode PUTs, "
              "WAL framing records, per-message deletes and daemon polling "
              "-- see EXPERIMENTS.md.\n");

  if (const char* path = bench::json_output_path()) {
    bench::JsonObject j;
    j.add("bench", std::string("table2_storage"));
    j.add("count_scale", options.count_scale);
    j.add("raw_bytes", raw_bytes);
    j.add("raw_ops", raw_ops);
    const char* keys[] = {"arch1", "arch2", "arch3", "arch4"};
    for (std::size_t i = 0; i < rows.size(); ++i) {
      j.add(std::string(keys[i]) + "_prov_bytes", rows[i].prov_bytes_measured);
      j.add(std::string(keys[i]) + "_extra_ops", rows[i].extra_ops_measured);
    }
    for (const auto& [label, s] :
         {std::pair<const char*, const LsbBackend::SegmentStats&>{
              "arch4_precompact", before},
          {"arch4_postcompact", after}}) {
      j.add(std::string(label) + "_segment_count", s.segment_count);
      j.add(std::string(label) + "_total_bytes", s.total_bytes);
      j.add(std::string(label) + "_live_bytes", s.live_bytes);
      j.add(std::string(label) + "_garbage_ratio", s.garbage_ratio);
      j.add(std::string(label) + "_delete_to", s.delete_to);
      j.add(std::string(label) + "_indexed_to", s.indexed_to);
    }
    for (const SweepRow& r : sweep) {
      const std::string key = (r.arch == "S3+SimpleDB" ? "sdb" : "wal") +
                              std::string("_write_rts_b") +
                              std::to_string(r.batch) + "_s" +
                              std::to_string(r.shards);
      j.add(key, r.write_rts);
    }
    j.add("wal_batch_speedup", batch_speedup);
    j.add("shape_check", std::string(ok ? "PASS" : "FAIL"));
    if (j.write(path))
      std::printf("json written: %s\n", path);
    else
      std::printf("json write FAILED: %s\n", path);
  }
  return ok ? 0 : 1;
}
