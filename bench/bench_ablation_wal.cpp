// Ablation A2: the Arch-3 commit-daemon threshold.
//
// The commit daemon fires when ApproximateNumberOfMessages exceeds a
// threshold. Sweeping the threshold trades commit latency (how long log
// records sit in SQS) against batching efficiency (receive calls per
// transaction). The paper fixes no value; this ablation shows the knee.
#include <cstdio>

#include "bench_common.hpp"
#include "cloudprov/wal_backend.hpp"
#include "pass/observer.hpp"
#include "workloads/compile.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;
namespace sim = provcloud::sim;

namespace {

struct SweepResult {
  std::uint64_t threshold = 0;
  std::uint64_t transactions = 0;
  std::uint64_t sqs_ops = 0;
  std::uint64_t receives = 0;
  std::uint64_t peak_queue_depth = 0;
};

SweepResult sweep(std::uint64_t threshold, std::uint64_t seed) {
  aws::CloudEnv env(seed, aws::ConsistencyConfig::strong());
  CloudServices services(env);
  WalBackendConfig cfg;
  cfg.commit_threshold = threshold;
  WalBackend backend(services, cfg);

  workloads::WorkloadOptions o;
  o.seed = seed;
  o.count_scale = 0.12;
  o.size_scale = 0.05;
  const pass::SyscallTrace trace = workloads::CompileWorkload().generate(o);

  SweepResult result;
  result.threshold = threshold;
  pass::PassObserver observer([&](const pass::FlushUnit& u) {
    backend.store(u);
    result.peak_queue_depth =
        std::max(result.peak_queue_depth,
                 services.sqs.exact_message_count("sqs://queue/wal-client-0"));
  });
  observer.apply_trace(trace);
  observer.finish();
  backend.quiesce();
  env.clock().drain();
  backend.recover();

  const auto snap = env.meter().snapshot();
  result.transactions = backend.committed_count();
  result.sqs_ops = snap.calls("sqs");
  result.receives = snap.calls("sqs", "ReceiveMessage");
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A2: WAL commit threshold vs batching and queue depth");
  std::printf("%-10s %14s %10s %12s %18s %18s\n", "threshold", "transactions",
              "sqs-ops", "receives", "receives-per-txn", "peak-queue-depth");
  bench::print_rule();

  std::uint64_t last_txns = 0;
  bool ok = true;
  for (std::uint64_t threshold : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull}) {
    const SweepResult r = sweep(threshold, 2009);
    std::printf("%-10llu %14llu %10llu %12llu %18.2f %18llu\n",
                static_cast<unsigned long long>(r.threshold),
                static_cast<unsigned long long>(r.transactions),
                static_cast<unsigned long long>(r.sqs_ops),
                static_cast<unsigned long long>(r.receives),
                static_cast<double>(r.receives) /
                    static_cast<double>(std::max<std::uint64_t>(1, r.transactions)),
                static_cast<unsigned long long>(r.peak_queue_depth));
    if (last_txns != 0) ok = ok && r.transactions == last_txns;
    last_txns = r.transactions;
  }
  std::printf("\ninvariant: every transaction commits regardless of the "
              "threshold: %s\n",
              ok ? "PASS" : "FAIL");
  std::printf("(higher thresholds batch more transactions per daemon wakeup "
              "at the cost of deeper queues / longer commit latency.)\n");
  return ok ? 0 : 1;
}
