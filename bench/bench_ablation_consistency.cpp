// Ablation A1: how hard eventual consistency bites.
//
// Sweeps the replica-propagation window and measures, for Architecture 2's
// MD5+nonce read path: how many reads needed retries, the mean retry count,
// and whether any verified read was wrong (it must never be). This
// quantifies the paper's claim that consistency violations are detectable
// and recoverable by reissuing the read.
#include <cstdio>

#include "bench_common.hpp"
#include "pass/observer.hpp"
#include "workloads/workload.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;
namespace sim = provcloud::sim;

namespace {

struct SweepResult {
  sim::SimTime window = 0;
  std::uint64_t reads = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_with_retries = 0;
  std::uint64_t total_retries = 0;
  std::uint64_t unverified = 0;
  std::uint64_t wrong = 0;
};

SweepResult sweep(sim::SimTime window, std::uint64_t seed) {
  aws::ConsistencyConfig c;
  c.replicas = 3;
  c.propagation_min = window / 10 + 1;
  c.propagation_max = window;
  bench::WorkloadRun run(Architecture::kS3SimpleDb, c, seed);

  // Per-close session barrier: each close is durable before the reads
  // below start racing its propagation.
  auto session = run.backend->open_session();
  pass::PassObserver observer(
      [&session](const pass::FlushUnit& u) { session->submit(u); });
  util::Rng rng(seed);
  observer.apply(pass::ev_exec(1, "/bin/writer", {"writer"},
                               workloads::synth_environment(rng, 900)));

  SweepResult result;
  result.window = window;
  for (int version = 0; version < 12; ++version) {
    observer.apply(pass::ev_write(1, "hot",
                                  util::Bytes(1024 + 17 * version, 'v')));
    observer.apply(pass::ev_close(1, "hot"));
    for (int r = 0; r < 8; ++r) {
      run.env.clock().advance_by(window / 16 + 1);
      auto got = run.backend->read("hot", 200);
      if (!got) continue;
      ++result.reads;
      if (!got->verified) {
        ++result.unverified;
        continue;
      }
      ++result.reads_ok;
      if (got->retries > 0) ++result.reads_with_retries;
      result.total_retries += got->retries;
      const auto& truth = observer.ground_truth();
      auto it = truth.find({"hot", got->version});
      if (it == truth.end() || *it->second.data != *got->data) ++result.wrong;
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation A1: staleness window vs Arch-2 read-path behaviour");
  std::printf("%-12s %8s %10s %14s %12s %12s %8s\n", "window", "reads",
              "verified", "with-retries", "mean-retry", "unverified", "wrong");
  bench::print_rule();

  bool ok = true;
  for (sim::SimTime window :
       {10 * sim::kMillisecond, 100 * sim::kMillisecond, sim::kSecond,
        5 * sim::kSecond, 20 * sim::kSecond, 60 * sim::kSecond}) {
    const SweepResult r = sweep(window, 2009);
    const double mean_retry =
        r.reads_ok == 0 ? 0.0
                        : static_cast<double>(r.total_retries) /
                              static_cast<double>(r.reads_ok);
    char label[32];
    if (window >= sim::kSecond)
      std::snprintf(label, sizeof label, "%llus",
                    static_cast<unsigned long long>(window / sim::kSecond));
    else
      std::snprintf(label, sizeof label, "%llums",
                    static_cast<unsigned long long>(window / sim::kMillisecond));
    std::printf("%-12s %8llu %10llu %14llu %12.2f %12llu %8llu\n", label,
                static_cast<unsigned long long>(r.reads),
                static_cast<unsigned long long>(r.reads_ok),
                static_cast<unsigned long long>(r.reads_with_retries),
                mean_retry, static_cast<unsigned long long>(r.unverified),
                static_cast<unsigned long long>(r.wrong));
    ok = ok && r.wrong == 0;
  }
  std::printf("\ninvariant: a verified read is NEVER wrong, at any staleness "
              "window: %s\n",
              ok ? "PASS" : "FAIL");
  std::printf("(retries grow with the window -- the cost of detection -- but "
              "correctness holds.)\n");
  return ok ? 0 : 1;
}
