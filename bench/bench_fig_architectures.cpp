// Reproduces Figures 1-3: the three architecture diagrams.
//
// The figures in the paper are block diagrams of PASS layered over the AWS
// services. The executable equivalent: walk one file close through each
// architecture and print the exact sequence of service operations the
// diagram depicts (including, for Figure 3, the WAL messages and the commit
// daemon's side of the protocol).
#include <cstdio>

#include "bench_common.hpp"
#include "cloudprov/serialize.hpp"
#include "pass/observer.hpp"
#include "workloads/workload.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

namespace {

/// Run one close through an architecture and print the metered op sequence.
void walk(Architecture arch, const char* figure, const char* caption) {
  bench::print_header(std::string(figure) + ": " + caption);

  bench::WorkloadRun run(arch);
  util::Rng rng(7);
  // A group-size-1 session is the per-close protocol, message for message.
  auto session = run.backend->open_session();
  pass::PassObserver observer(
      [&session](const pass::FlushUnit& u) { session->submit(u); });

  // The protocol narration comes from diffing the meter around each store.
  observer.apply(pass::ev_exec(1, "/usr/bin/analyze", {"analyze", "census.dat"},
                               workloads::synth_environment(rng, 1400)));
  observer.apply(pass::ev_read(1, "census.dat"));

  auto before = run.env.meter().snapshot();
  observer.apply(pass::ev_write(1, "results.dat", "derived results\n"));
  observer.apply(pass::ev_close(1, "results.dat"));
  auto diff = run.env.meter().snapshot().diff(before);

  std::printf("application: read census.dat, write results.dat, close\n");
  std::printf("PASS: collected provenance, close triggers the protocol\n\n");
  std::printf("service operations issued (ancestors first, then the file):\n");
  for (const auto& [key, counter] : diff.counters) {
    std::printf("  %-4s %-22s x%-4llu (in %s, out %s)\n", key.first.c_str(),
                key.second.c_str(),
                static_cast<unsigned long long>(counter.calls),
                bench::fmt_bytes(counter.bytes_in).c_str(),
                bench::fmt_bytes(counter.bytes_out).c_str());
  }

  run.backend->quiesce();
  run.env.clock().drain();

  std::printf("\nfinal state:\n");
  if (arch == Architecture::kS3SegmentLog) {
    std::printf("  S3 objects: %llu (sealed immutable segments; data and "
                "provenance travel together per entry)\n",
                static_cast<unsigned long long>(
                    run.services.s3.object_count()));
    std::printf("  SimpleDB: compact (object,version) -> (segment,offset) "
                "postings, published in batches\n");
    return;
  }
  std::printf("  S3 objects: %llu (data + transient pnodes%s)\n",
              static_cast<unsigned long long>(run.services.s3.object_count()),
              arch == Architecture::kS3Only ? ", provenance in metadata" : "");
  if (arch != Architecture::kS3Only) {
    std::printf("  SimpleDB items: %llu (one per object version, MD5+nonce "
                "consistency tokens)\n",
                static_cast<unsigned long long>(
                    run.services.sdb.item_count(kProvenanceDomain)));
  }
  if (arch == Architecture::kS3SimpleDbSqs) {
    std::printf("  SQS WAL: drained (committed transactions deleted; temp "
                "objects promoted via COPY then removed)\n");
  }
}

}  // namespace

int main() {
  std::printf("Figures 1-3: the three provenance-aware cloud architectures,\n"
              "as executable protocol walks of a single file close.\n");

  walk(Architecture::kS3Only, "Figure 1",
       "PASS with S3 as the storage substrate (provenance as S3 metadata, "
       "single atomic PUT)");
  walk(Architecture::kS3SimpleDb, "Figure 2",
       "PASS layered on S3 and SimpleDB (data in S3, provenance in "
       "SimpleDB)");
  walk(Architecture::kS3SimpleDbSqs, "Figure 3",
       "PASS on S3 + SimpleDB with SQS write-ahead log providing atomicity");
  walk(Architecture::kS3SegmentLog, "Architecture 4",
       "PASS on a log-structured S3 segment store with a SimpleDB posting "
       "index and background cleaning");
  std::printf("\n");
  return 0;
}
