// Crash and recovery, side by side.
//
// Replays the paper's central failure scenario against Architectures 2 and
// 3: the client dies between storing provenance and storing data.
//
//   * Architecture 2 is left with *orphan provenance* -- a SimpleDB item
//     describing data that never reached S3 (atomicity violated). Recovery
//     requires the "inelegant" full-domain orphan scan.
//   * Architecture 3 never exposes the window: the commit daemon ignores
//     uncommitted WAL transactions, replays committed ones idempotently,
//     and the 4-day retention plus the cleaner reap the garbage.
//
// Build & run:  ./build/examples/crash_recovery_demo
#include <cstdio>

#include "cloudprov/backend.hpp"
#include "cloudprov/sdb_backend.hpp"
#include "cloudprov/serialize.hpp"
#include "pass/observer.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

namespace {

void report_state(const char* label, CloudServices& services) {
  std::printf("%s\n", label);
  std::printf("  S3 data objects:    ");
  bool any = false;
  for (const std::string& key : services.s3.peek_keys(kDataBucket)) {
    if (key.rfind(kOverflowPrefix, 0) == 0) continue;
    if (key.rfind(kTempPrefix, 0) == 0) {
      std::printf("[temp:%s] ", key.c_str());
      any = true;
      continue;
    }
    std::printf("%s ", key.c_str());
    any = true;
  }
  std::printf("%s\n  SimpleDB items:     ", any ? "" : "(none)");
  const auto items = services.sdb.peek_item_names(kProvenanceDomain);
  for (const std::string& item : items) std::printf("%s ", item.c_str());
  std::printf("%s\n", items.empty() ? "(none)" : "");
}

void drive_crashing_store(ProvenanceBackend& backend, const char* crash_point,
                          aws::CloudEnv& env) {
  // The close flushes the producing process first, then the file; arm the
  // second occurrence so the crash hits the *file's* store protocol.
  env.failures().arm_crash(crash_point, 2);
  pass::PassObserver observer(
      [&backend](const pass::FlushUnit& unit) { backend.store(unit); });
  try {
    observer.apply(pass::ev_write(7, "dataset.bin", "important science"));
    observer.apply(pass::ev_close(7, "dataset.bin"));
    std::printf("  (no crash fired)\n");
  } catch (const sim::CrashError& e) {
    std::printf("  client crashed at '%s'\n", e.point().c_str());
  }
}

}  // namespace

int main() {
  // ---------------- Architecture 2: the atomicity hole ----------------
  std::printf("=== Architecture 2 (S3+SimpleDB) ===\n");
  {
    aws::CloudEnv env(99);
    CloudServices services(env);
    auto backend = make_sdb_backend(services);
    drive_crashing_store(*backend, "sdb.store.between_prov_and_data", env);
    env.clock().drain();
    report_state("state after the crash:", services);
    std::printf("  -> orphan provenance: items exist for data that never "
                "arrived (read correctness violated)\n\n");

    std::printf("running the orphan scan (recover())...\n");
    backend->recover();
    report_state("state after recovery:", services);
    auto* sdb = dynamic_cast<SdbBackend*>(backend.get());
    std::printf("  -> %llu orphan item(s) removed by a full domain scan\n\n",
                static_cast<unsigned long long>(sdb->last_recovery_orphans()));
  }

  // ---------------- Architecture 3: the WAL closes the hole ----------------
  std::printf("=== Architecture 3 (S3+SimpleDB+SQS) ===\n");
  {
    aws::CloudEnv env(99);
    CloudServices services(env);
    auto backend = make_backend(Architecture::kS3SimpleDbSqs, services);

    std::printf("crash before the commit record:\n");
    drive_crashing_store(*backend, "wal.store.before_commit", env);
    backend->quiesce();
    env.clock().drain();
    report_state("state after the daemon ran:", services);
    std::printf("  -> nothing half-written: the uncommitted transaction was "
                "ignored; only a temp object lingers\n");
    std::printf("     (SQS retention reaps its log records after 4 days; the "
                "cleaner then removes the temp object)\n\n");

    env.clock().advance_by(4 * sim::kDay + sim::kHour);
    backend->recover();  // pump + cleaner
    report_state("state 4 days later:", services);

    std::printf("\ncrash after the commit record:\n");
    drive_crashing_store(*backend, "wal.store.after_commit", env);
    backend->quiesce();
    env.clock().drain();
    report_state("state after the daemon ran:", services);
    auto read = backend->read("dataset.bin");
    std::printf("  -> the committed transaction completed without the "
                "client: read(dataset.bin) = %s (verified=%s)\n",
                read ? "ok" : "MISSING",
                read && read->verified ? "yes" : "no");
  }
  return 0;
}
