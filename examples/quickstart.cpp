// Quickstart: store a file with provenance in the cloud and read it back.
//
// Demonstrates the minimal end-to-end flow of the library:
//   1. build a CloudEnv (simulated AWS: clock, meter, eventual consistency);
//   2. pick an architecture (here: Architecture 3, which satisfies all of
//      the paper's properties);
//   3. let PASS observe an application's system calls;
//   4. on close, the file and its provenance flow to the cloud;
//   5. read the file back with the consistency-checked read path and walk
//      its provenance.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "cloudprov/backend.hpp"
#include "pass/observer.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

int main() {
  // 1. A simulated cloud with the default eventual-consistency behaviour:
  //    3 replicas, reads served by a random one.
  aws::CloudEnv env(/*seed=*/42);
  CloudServices services(env);

  // 2. Architecture 3: S3 + SimpleDB + SQS write-ahead log.
  std::unique_ptr<ProvenanceBackend> backend =
      make_backend(Architecture::kS3SimpleDbSqs, services);

  // 3. PASS observes system calls; flushed object versions are handed to
  //    the backend (ancestors first).
  pass::PassObserver observer(
      [&backend](const pass::FlushUnit& unit) { backend->store(unit); });

  // 4. A tiny application: a process reads an input and writes a result.
  observer.apply(pass::ev_exec(/*pid=*/1, "/usr/bin/convert",
                               {"convert", "input.raw", "output.png"},
                               {{"USER", "scientist"}, {"LANG", "C"}}));
  observer.apply(pass::ev_read(1, "input.raw"));
  observer.apply(pass::ev_write(1, "output.png", "PNG image bytes..."));
  observer.apply(pass::ev_close(1, "output.png"));
  observer.apply(pass::ev_exit(1));

  // Let the WAL commit daemon run and replication settle (in a long-lived
  // process this happens continuously in the background).
  backend->quiesce();
  env.clock().drain();

  // 5. Read the data back; the backend verifies data/provenance consistency
  //    with the MD5+nonce scheme before vouching for the pair.
  auto result = backend->read("output.png");
  if (!result) {
    std::fprintf(stderr, "read failed: %s\n", result.error().message.c_str());
    return 1;
  }
  std::printf("read output.png v%u (%zu bytes, verified=%s, retries=%u)\n",
              result->version, result->data->size(),
              result->verified ? "yes" : "no", result->retries);
  std::printf("provenance:\n");
  for (const pass::ProvenanceRecord& r : result->records)
    std::printf("  %-12s %s\n", r.attribute.c_str(), r.value_string().c_str());

  // Follow the INPUT edge to the producing process and print its records.
  for (const pass::ProvenanceRecord& r : result->records) {
    if (!r.is_xref() || r.attribute != pass::attr::kInput) continue;
    auto ancestor = backend->get_provenance(r.xref().object, r.xref().version);
    if (!ancestor) continue;
    std::printf("ancestor %s:\n", r.xref().to_string().c_str());
    for (const pass::ProvenanceRecord& a : *ancestor)
      std::printf("  %-12s %.60s\n", a.attribute.c_str(),
                  a.value_string().c_str());
  }

  // What did this cost? Every simulated AWS call was metered.
  const auto snapshot = env.meter().snapshot();
  std::printf("\nAWS operations issued: %llu (s3=%llu sdb=%llu sqs=%llu)\n",
              static_cast<unsigned long long>(snapshot.total_calls()),
              static_cast<unsigned long long>(snapshot.calls("s3")),
              static_cast<unsigned long long>(snapshot.calls("sdb")),
              static_cast<unsigned long long>(snapshot.calls("sqs")));
  return 0;
}
