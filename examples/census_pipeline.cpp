// The paper's introductory scenario, end to end.
//
// "Data from the US Census databases are released on the cloud by US Census
// Bureau. Scientists who wish to analyze this data for trends can download
// the data set to their local compute grid, process it, and then upload the
// results back to the cloud, easily sharing their results with fellow
// researchers."
//
// This example runs that workflow provenance-aware: the Census Bureau
// publishes shards, two research groups process them with different tool
// versions, and a third party then asks the provenance questions the paper
// motivates -- where did this result come from, and exactly how was it
// produced?
//
// Build & run:  ./build/examples/census_pipeline
#include <cstdio>

#include "cloudprov/backend.hpp"
#include "cloudprov/query.hpp"
#include "pass/observer.hpp"
#include "workloads/datagen.hpp"
#include "workloads/workload.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

int main() {
  aws::CloudEnv env(/*seed=*/1790);  // first census year
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDbSqs, services);
  pass::PassObserver observer(
      [&backend](const pass::FlushUnit& unit) { backend->store(unit); });
  util::Rng rng(1790);

  // --- The Census Bureau publishes the public data set -------------------
  const pass::Pid bureau = 10;
  observer.apply(pass::ev_exec(bureau, "/opt/census/publish",
                               {"publish", "--release", "acs-2008"},
                               workloads::synth_environment(rng, 1200)));
  std::vector<std::string> shards;
  for (int s = 0; s < 4; ++s) {
    const std::string shard = "census/acs-2008/part" + std::to_string(s);
    shards.push_back(shard);
    observer.apply(pass::ev_write(bureau, shard,
                                  workloads::synth_content(rng, 64 * 1024)));
    observer.apply(pass::ev_close(bureau, shard));
  }
  observer.apply(pass::ev_exit(bureau));
  std::printf("published %zu census shards\n", shards.size());

  // --- Group A: trend analysis with trendtool v1.2 ------------------------
  const pass::Pid group_a = 20;
  observer.apply(pass::ev_exec(group_a, "/opt/tools/trendtool",
                               {"trendtool", "--version=1.2", "--by-county"},
                               workloads::synth_environment(rng, 1600)));
  for (const std::string& shard : shards)
    observer.apply(pass::ev_read(group_a, shard));
  observer.apply(pass::ev_write(group_a, "results/groupA/county-trends.csv",
                                workloads::synth_content(rng, 24 * 1024)));
  observer.apply(pass::ev_close(group_a, "results/groupA/county-trends.csv"));
  observer.apply(pass::ev_exit(group_a));

  // --- Group B: reproduces the analysis with trendtool v1.3 ---------------
  const pass::Pid group_b = 30;
  observer.apply(pass::ev_exec(group_b, "/opt/tools/trendtool",
                               {"trendtool", "--version=1.3", "--by-county"},
                               workloads::synth_environment(rng, 1600)));
  for (const std::string& shard : shards)
    observer.apply(pass::ev_read(group_b, shard));
  observer.apply(pass::ev_write(group_b, "results/groupB/county-trends.csv",
                                workloads::synth_content(rng, 24 * 1024)));
  observer.apply(pass::ev_close(group_b, "results/groupB/county-trends.csv"));
  observer.apply(pass::ev_exit(group_b));

  backend->quiesce();
  env.clock().drain();

  // --- A third group compares the published results -----------------------
  // "If the reproduction does not yield identical results, comparing the
  // provenance will shed insight into the differences in the experiment."
  std::printf("\ncomparing the provenance of the two results:\n");
  for (const char* result : {"results/groupA/county-trends.csv",
                             "results/groupB/county-trends.csv"}) {
    auto read = backend->read(result);
    if (!read) {
      std::fprintf(stderr, "cannot read %s\n", result);
      return 1;
    }
    std::printf("  %s (v%u, verified=%s)\n", result, read->version,
                read->verified ? "yes" : "no");
    // Walk to the producing process and report the tool invocation.
    for (const pass::ProvenanceRecord& r : read->records) {
      if (!r.is_xref() || r.attribute != pass::attr::kInput) continue;
      auto proc = backend->get_provenance(r.xref().object, r.xref().version);
      if (!proc) continue;
      for (const pass::ProvenanceRecord& p : *proc) {
        if (p.attribute == pass::attr::kArgv)
          std::printf("    produced by: %s\n", p.value_string().c_str());
        if (p.attribute == pass::attr::kInput && p.is_xref())
          std::printf("    consumed:    %s\n", p.xref().to_string().c_str());
      }
    }
  }
  std::printf("  -> the provenance pinpoints the difference: "
              "--version=1.2 vs --version=1.3\n");

  // --- And a lineage query over the whole repository ---------------------
  auto engine = make_sdb_query_engine(services);
  const auto derived = engine->q3_descendants_of("/opt/tools/trendtool");
  std::printf("\nevery file derived from trendtool (indexed SimpleDB "
              "query):\n");
  for (const std::string& f : derived) std::printf("  %s\n", f.c_str());
  return 0;
}
