// provcloudctl -- a command-line driver for the library.
//
// Builds the combined workload dataset in an in-memory cloud, then executes
// one command against it. Useful for poking at the system without writing
// code:
//
//   provcloudctl stats                     dataset + meter + USD summary
//   provcloudctl q1                        retrieve all provenance (Q.1)
//   provcloudctl q2 <program>              outputs of <program> (Q.2)
//   provcloudctl q3 <program>              descendants of <program> (Q.3)
//   provcloudctl read <object>             consistency-checked read
//   provcloudctl ancestry <object> [--dot] lineage walk (optionally Graphviz)
//
// Options (before the command):
//   --arch s3|sdb|wal     architecture (default wal)
//   --seed N              workload seed (default 2009)
//   --scale X             workload count/size scale (default 0.25)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cloudprov/ancestry.hpp"
#include "cloudprov/backend.hpp"
#include "cloudprov/query.hpp"
#include "cost/pricing.hpp"
#include "pass/observer.hpp"
#include "util/string_utils.hpp"
#include "workloads/combined.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

namespace {

struct Options {
  Architecture arch = Architecture::kS3SimpleDbSqs;
  std::uint64_t seed = 2009;
  double scale = 0.25;
  std::string command;
  std::vector<std::string> args;
};

int usage() {
  std::fprintf(stderr,
               "usage: provcloudctl [--arch s3|sdb|wal] [--seed N] "
               "[--scale X] <command> [args]\n"
               "commands: stats | q1 | q2 <program> | q3 <program> | "
               "read <object> | ancestry <object> [--dot]\n");
  return 2;
}

bool parse_options(int argc, char** argv, Options& out) {
  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--arch" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "s3")
        out.arch = Architecture::kS3Only;
      else if (v == "sdb")
        out.arch = Architecture::kS3SimpleDb;
      else if (v == "wal")
        out.arch = Architecture::kS3SimpleDbSqs;
      else
        return false;
    } else if (arg == "--seed" && i + 1 < argc) {
      out.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--scale" && i + 1 < argc) {
      out.scale = std::atof(argv[++i]);
      if (out.scale <= 0) return false;
    } else if (!arg.empty() && arg[0] != '-') {
      out.command = arg;
      for (++i; i < argc; ++i) out.args.emplace_back(argv[i]);
      return true;
    } else {
      return false;
    }
  }
  return !out.command.empty();
}

void print_records(const std::vector<pass::ProvenanceRecord>& records) {
  for (const auto& r : records)
    std::printf("  %-12s %.100s\n", r.attribute.c_str(),
                r.value_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_options(argc, argv, opt)) return usage();

  // Build the world: combined workload through PASS into the architecture.
  aws::CloudEnv env(opt.seed);
  CloudServices services(env);
  auto backend = make_backend(opt.arch, services);
  pass::PassObserver observer(
      [&backend](const pass::FlushUnit& u) { backend->store(u); });
  workloads::WorkloadOptions wo;
  wo.seed = opt.seed;
  wo.count_scale = opt.scale;
  wo.size_scale = opt.scale;
  observer.apply_trace(workloads::build_combined_trace(wo));
  observer.finish();
  backend->quiesce();
  env.clock().drain();
  std::fprintf(stderr, "[%s] dataset ready: %llu versions, %s data, %s "
               "provenance\n",
               to_string(opt.arch),
               static_cast<unsigned long long>(observer.stats().flush_units),
               util::format_bytes(observer.stats().data_bytes_flushed).c_str(),
               util::format_bytes(observer.stats().provenance_bytes).c_str());

  auto engine = opt.arch == Architecture::kS3Only
                    ? make_s3_query_engine(services)
                    : make_sdb_query_engine(services);
  const auto before = env.meter().snapshot();

  if (opt.command == "stats") {
    const auto snap = env.meter().snapshot();
    std::printf("operations: total %s (s3 %s, sdb %s, sqs %s)\n",
                util::format_count(snap.total_calls()).c_str(),
                util::format_count(snap.calls("s3")).c_str(),
                util::format_count(snap.calls("sdb")).c_str(),
                util::format_count(snap.calls("sqs")).c_str());
    std::printf("storage: s3 %s, sdb %s\n",
                util::format_bytes(snap.storage_bytes("s3")).c_str(),
                util::format_bytes(snap.storage_bytes("sdb")).c_str());
    const cost::CostEstimate usd = cost::estimate_cost(snap);
    std::printf("estimated cost (Jan-2009 prices): %s total\n",
                cost::format_usd(usd.total()).c_str());
    return 0;
  }

  if (opt.command == "q1") {
    const Q1Result r = engine->q1_all_provenance();
    std::printf("retrieved provenance of %llu object versions (%llu "
                "records)\n",
                static_cast<unsigned long long>(r.object_versions),
                static_cast<unsigned long long>(r.records));
  } else if (opt.command == "q2" || opt.command == "q3") {
    if (opt.args.empty()) return usage();
    const auto result = opt.command == "q2"
                            ? engine->q2_outputs_of(opt.args[0])
                            : engine->q3_descendants_of(opt.args[0]);
    for (const std::string& f : result) std::printf("%s\n", f.c_str());
    std::fprintf(stderr, "[%zu results]\n", result.size());
  } else if (opt.command == "read") {
    if (opt.args.empty()) return usage();
    auto got = backend->read(opt.args[0]);
    if (!got) {
      std::fprintf(stderr, "read failed: %s\n", got.error().message.c_str());
      return 1;
    }
    std::printf("%s v%u: %zu bytes, verified=%s, retries=%u\n",
                opt.args[0].c_str(), got->version, got->data->size(),
                got->verified ? "yes" : "no", got->retries);
    print_records(got->records);
  } else if (opt.command == "ancestry") {
    if (opt.args.empty()) return usage();
    auto read = backend->read(opt.args[0]);
    if (!read) {
      std::fprintf(stderr, "no such object: %s\n", opt.args[0].c_str());
      return 1;
    }
    const AncestryResult lineage =
        fetch_ancestry(*backend, opt.args[0], read->version);
    const bool want_dot =
        opt.args.size() > 1 && opt.args[1] == "--dot";
    if (want_dot) {
      std::fputs(lineage.graph.to_dot(opt.args[0]).c_str(), stdout);
    } else {
      for (const pass::ObjectVersion& id : lineage.graph.topological_order())
        std::printf("%s (%s)\n", id.to_string().c_str(),
                    lineage.graph.find(id)->kind.c_str());
      if (!lineage.missing.empty())
        std::fprintf(stderr, "[%zu ancestors unresolvable]\n",
                     lineage.missing.size());
    }
  } else {
    return usage();
  }

  const auto diff = env.meter().snapshot().diff(before);
  std::fprintf(stderr, "[query cost: %llu ops, %s out]\n",
               static_cast<unsigned long long>(diff.total_calls()),
               util::format_bytes(diff.bytes_out("s3") + diff.bytes_out("sdb"))
                   .c_str());
  return 0;
}
