// The paper's flagship motivation, executed.
//
// "Imagine that a researcher discovers that a particular version of a
// widely-used analysis tool is flawed. She can identify all data sets
// affected by the flawed software by querying the provenance."
//
// This example builds a repository where many groups ran `blastall` (one
// version of which is flawed), then audits the cloud: find every output of
// the flawed tool version and everything transitively derived from those
// outputs -- the full contamination set -- with a handful of indexed
// SimpleDB queries instead of downloading the world.
//
// Build & run:  ./build/examples/flawed_tool_audit
#include <cstdio>
#include <set>

#include "cloudprov/backend.hpp"
#include "cloudprov/query.hpp"
#include "pass/observer.hpp"
#include "workloads/datagen.hpp"
#include "workloads/workload.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

namespace {

/// One analysis campaign: `tool` reads the shared database and a query
/// file, writes a hits file; a summarizer derives a report from the hits.
void run_campaign(pass::PassObserver& observer, util::Rng& rng,
                  pass::Pid base_pid, const std::string& tool, int campaign) {
  const std::string dir = "lab" + std::to_string(campaign) + "/";
  const pass::Pid blast = base_pid, summarize = base_pid + 1;

  observer.apply(pass::ev_write(1, dir + "query.fa",
                                workloads::synth_content(rng, 2048)));
  observer.apply(pass::ev_close(1, dir + "query.fa"));

  observer.apply(pass::ev_exec(blast, tool,
                               {"blastall", "-i", dir + "query.fa"},
                               workloads::synth_environment(rng, 1500)));
  observer.apply(pass::ev_read(blast, dir + "query.fa"));
  observer.apply(pass::ev_read(blast, "shared/nr.psq"));
  observer.apply(pass::ev_write(blast, dir + "hits.out",
                                workloads::synth_content(rng, 16 * 1024)));
  observer.apply(pass::ev_close(blast, dir + "hits.out"));
  observer.apply(pass::ev_exit(blast));

  observer.apply(pass::ev_exec(summarize, "/usr/bin/python",
                               {"python", "report.py"},
                               workloads::synth_environment(rng, 1100)));
  observer.apply(pass::ev_read(summarize, dir + "hits.out"));
  observer.apply(pass::ev_write(summarize, dir + "report.pdf",
                                workloads::synth_content(rng, 8 * 1024)));
  observer.apply(pass::ev_close(summarize, dir + "report.pdf"));
  observer.apply(pass::ev_exit(summarize));
}

}  // namespace

int main() {
  aws::CloudEnv env(/*seed=*/13);
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDb, services);
  pass::PassObserver observer(
      [&backend](const pass::FlushUnit& unit) { backend->store(unit); });
  util::Rng rng(13);

  // Shared reference database everyone reads.
  observer.apply(pass::ev_exec(1, "/usr/bin/formatdb", {"formatdb"},
                               workloads::synth_environment(rng, 1200)));
  observer.apply(pass::ev_write(1, "shared/nr.psq",
                                workloads::synth_content(rng, 256 * 1024)));
  observer.apply(pass::ev_close(1, "shared/nr.psq"));

  // Six campaigns: three used the good build, three the flawed one.
  const std::string good = "/opt/blast-2.2.18/bin/blastall";
  const std::string flawed = "/opt/blast-2.2.19-rc1/bin/blastall";
  for (int c = 0; c < 6; ++c)
    run_campaign(observer, rng, static_cast<pass::Pid>(100 + 10 * c),
                 c % 2 == 0 ? good : flawed, c);
  observer.finish();
  backend->quiesce();
  env.clock().drain();

  // --- the audit -----------------------------------------------------------
  auto engine = make_sdb_query_engine(services);

  const auto before = env.meter().snapshot();
  const std::set<std::string> direct = engine->q2_outputs_of(flawed);
  const std::set<std::string> contaminated = engine->q3_descendants_of(flawed);
  const auto cost = env.meter().snapshot().diff(before);

  std::printf("flawed tool: %s\n\n", flawed.c_str());
  std::printf("direct outputs of the flawed version:\n");
  for (const std::string& f : direct) std::printf("  %s\n", f.c_str());
  std::printf("\nfull contamination set (outputs + derived data):\n");
  for (const std::string& f : contaminated) {
    auto read = backend->read(f);
    std::printf("  %-24s %s\n", f.c_str(),
                read && read->verified ? "(verified readable)" : "");
  }

  // Everything produced by the good version must be untouched.
  const std::set<std::string> good_outputs = engine->q2_outputs_of(good);
  bool clean = true;
  for (const std::string& f : good_outputs) clean &= contaminated.count(f) == 0;
  std::printf("\ngood-version outputs incorrectly flagged: %s\n",
              clean ? "none" : "SOME (bug!)");

  std::printf("\naudit cost: %llu SimpleDB ops, %llu bytes out "
              "(no bulk download required)\n",
              static_cast<unsigned long long>(cost.calls("sdb")),
              static_cast<unsigned long long>(cost.bytes_out("sdb")));
  return clean ? 0 : 1;
}
