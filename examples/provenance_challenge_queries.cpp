// The First Provenance Challenge, answered from the cloud.
//
// The Provenance Challenge (Moreau et al.) defined an fMRI workflow and a
// set of canonical queries every provenance system was asked to answer.
// This example runs that workflow through PASS into Architecture 3, then
// answers the challenge's core query -- "find the process that led to
// Atlas X Graphic, i.e. everything it depends on" -- using the ancestry
// module, and emits the lineage as Graphviz for visualization.
//
// Build & run:  ./build/examples/provenance_challenge_queries
#include <cstdio>

#include "cloudprov/ancestry.hpp"
#include "cloudprov/backend.hpp"
#include "cloudprov/query.hpp"
#include "pass/observer.hpp"
#include "workloads/provchallenge.hpp"

using namespace provcloud;
using namespace provcloud::cloudprov;

int main() {
  aws::CloudEnv env(/*seed=*/2006);  // the year of the first challenge
  CloudServices services(env);
  auto backend = make_backend(Architecture::kS3SimpleDbSqs, services);

  // Run the five-stage fMRI workflow (align_warp -> reslice -> softmean ->
  // slicer -> convert) with 5 subjects.
  pass::PassObserver observer(
      [&backend](const pass::FlushUnit& unit) { backend->store(unit); });
  workloads::WorkloadOptions options;
  options.seed = 2006;
  options.size_scale = 0.05;  // small payloads; lineage is the point
  observer.apply_trace(
      workloads::ProvenanceChallengeWorkload().generate(options));
  observer.finish();
  backend->quiesce();
  env.clock().drain();
  std::printf("workflow stored: %llu object versions\n",
              static_cast<unsigned long long>(observer.stats().flush_units));

  // --- Challenge query 1: everything that led to the Atlas X Graphic ------
  const std::string target = "fmri/run0/atlas-x.gif";
  const AncestryResult lineage = fetch_ancestry(*backend, target, 1);
  std::printf("\nlineage of %s: %zu nodes (%zu unresolvable)\n", target.c_str(),
              lineage.graph.nodes().size(), lineage.missing.size());

  // Stage-by-stage narration, ancestors first.
  std::printf("\nexecution order (topological):\n");
  for (const pass::ObjectVersion& id : lineage.graph.topological_order()) {
    const AncestryNode* node = lineage.graph.find(id);
    if (node->kind != "process") continue;
    std::string name;
    for (const auto& r : node->records)
      if (r.attribute == pass::attr::kName && !r.is_xref()) name = r.text();
    std::printf("  %-22s (%s)\n", name.c_str(), id.to_string().c_str());
  }

  // The challenge's acceptance criterion: the lineage must reach back to
  // every anatomy input through all five stages.
  const auto ancestors = lineage.graph.ancestor_closure({target, 1});
  int anatomy_inputs = 0;
  bool saw_softmean = false, saw_align = false;
  for (const pass::ObjectVersion& a : ancestors) {
    if (a.object.find("anatomy") != std::string::npos &&
        a.object.find(".img") != std::string::npos)
      ++anatomy_inputs;
    const AncestryNode* node = lineage.graph.find(a);
    if (node == nullptr) continue;
    for (const auto& r : node->records) {
      if (r.attribute != pass::attr::kName || r.is_xref()) continue;
      saw_softmean |= r.text().find("softmean") != std::string::npos;
      saw_align |= r.text().find("align_warp") != std::string::npos;
    }
  }
  std::printf("\nlineage reaches %d anatomy inputs; softmean %s; align_warp "
              "%s\n",
              anatomy_inputs, saw_softmean ? "present" : "MISSING",
              saw_align ? "present" : "MISSING");

  // --- Challenge-style forward query: what came out of softmean? ----------
  auto engine = make_sdb_query_engine(services);
  const auto outputs = engine->q2_outputs_of("/usr/local/fsl/softmean");
  std::printf("\noutputs of softmean (indexed query):\n");
  for (const std::string& f : outputs) std::printf("  %s\n", f.c_str());

  // --- Graphviz export -----------------------------------------------------
  const std::string dot = lineage.graph.to_dot("atlas_x_lineage");
  std::printf("\nGraphviz lineage (first lines; pipe the full graph to "
              "`dot -Tsvg`):\n");
  std::size_t shown = 0, pos = 0;
  while (shown < 8 && pos < dot.size()) {
    const std::size_t nl = dot.find('\n', pos);
    std::printf("  %.*s\n", static_cast<int>(nl - pos), dot.c_str() + pos);
    pos = nl + 1;
    ++shown;
  }
  std::printf("  ... (%zu bytes total)\n", dot.size());

  return (anatomy_inputs == 5 && saw_softmean && saw_align) ? 0 : 1;
}
