#include "workloads/combined.hpp"

#include <cmath>

#include "util/require.hpp"

namespace provcloud::workloads {

std::size_t scaled_count(std::size_t base, const WorkloadOptions& options) {
  PROVCLOUD_REQUIRE(options.count_scale > 0);
  const double scaled = static_cast<double>(base) * options.count_scale;
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(scaled)));
}

std::uint64_t scaled_size(std::uint64_t base, const WorkloadOptions& options) {
  PROVCLOUD_REQUIRE(options.size_scale > 0);
  const double scaled = static_cast<double>(base) * options.size_scale;
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(scaled)));
}

std::map<std::string, std::string> synth_environment(util::Rng& rng,
                                                     std::size_t target_bytes) {
  // A plausible 2009 user environment; filler variables pad to the target
  // size so ENV records have a controlled, often >1KB, payload.
  std::map<std::string, std::string> env = {
      {"PATH", "/usr/local/bin:/usr/bin:/bin:/usr/X11R6/bin:/opt/pass/bin"},
      {"HOME", "/home/scientist"},
      {"SHELL", "/bin/bash"},
      {"LANG", "en_US.UTF-8"},
      {"LD_LIBRARY_PATH", "/usr/local/lib:/opt/pass/lib"},
      {"HOSTNAME", "node" + std::to_string(rng.next_below(64)) + ".cluster"},
  };
  std::size_t current = 0;
  for (const auto& [k, v] : env) current += k.size() + v.size() + 2;
  std::size_t i = 0;
  while (current < target_bytes) {
    const std::string key = "PASS_SESSION_VAR_" + std::to_string(i++);
    const std::size_t len = std::min<std::size_t>(
        64 + rng.next_below(64), target_bytes - std::min(target_bytes, current));
    const std::string value = rng.next_hex(std::max<std::size_t>(8, len));
    current += key.size() + value.size() + 2;
    env.emplace(key, value);
  }
  return env;
}

pass::SyscallTrace build_combined_trace(const WorkloadOptions& options) {
  pass::SyscallTrace combined;
  const CompileWorkload compile;
  const BlastWorkload blast;
  const ProvenanceChallengeWorkload challenge;
  for (const Workload* w :
       {static_cast<const Workload*>(&compile),
        static_cast<const Workload*>(&blast),
        static_cast<const Workload*>(&challenge)}) {
    pass::SyscallTrace t = w->generate(options);
    combined.insert(combined.end(), std::make_move_iterator(t.begin()),
                    std::make_move_iterator(t.end()));
  }
  return combined;
}

TraceStats compute_trace_stats(const pass::SyscallTrace& trace) {
  TraceStats s;
  s.events = trace.size();
  for (const pass::SyscallEvent& e : trace) {
    switch (e.type) {
      case pass::SyscallEvent::Type::kWrite:
        ++s.writes;
        s.bytes_written += e.data.size();
        break;
      case pass::SyscallEvent::Type::kRead:
        ++s.reads;
        break;
      case pass::SyscallEvent::Type::kExec:
        ++s.execs;
        break;
      case pass::SyscallEvent::Type::kClose:
        ++s.closes;
        break;
      default:
        break;
    }
  }
  return s;
}

}  // namespace provcloud::workloads
