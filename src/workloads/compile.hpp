// The Linux-compile workload.
//
// Shape: an "untar" process materializes sources and headers; `make` forks
// one `gcc` per translation unit (each reads its source plus a subset of
// headers and writes an object file); `ld` links groups of objects into
// binaries. Compiler processes carry long argv and multi-KB environments,
// the classic source of oversized provenance records.
#pragma once

#include "workloads/workload.hpp"

namespace provcloud::workloads {

struct CompileConfig {
  std::size_t sources = 320;       // .c files (scaled by count_scale)
  std::size_t headers = 96;        // .h files
  std::size_t headers_per_unit = 10;
  std::size_t objects_per_link = 16;
  std::uint64_t source_bytes_min = 2 * util::kKiB;   // log-uniform
  std::uint64_t source_bytes_max = 24 * util::kKiB;
  std::uint64_t header_bytes_min = 512;
  std::uint64_t header_bytes_max = 8 * util::kKiB;
};

class CompileWorkload : public Workload {
 public:
  CompileWorkload() = default;
  explicit CompileWorkload(CompileConfig config) : config_(config) {}

  std::string name() const override { return "linux-compile"; }
  pass::SyscallTrace generate(const WorkloadOptions& options) const override;

 private:
  CompileConfig config_;
};

}  // namespace provcloud::workloads
