// Workload generators.
//
// The paper generates provenance "for three workloads on a PASS system: a
// Linux compile, a Blast workload, and the Provenance Challenge Workload"
// and uses "the combined provenance generated from all three benchmarks as
// one single dataset". We cannot rerun the authors' 2009 machines, so each
// workload here is a deterministic synthetic syscall-trace generator shaped
// like the original: the same process/file DAG structure, file-size and
// record-size distributions tuned to land in the paper's regime (mean
// object ~40 KB, provenance ~9-10% of data, a sizable fraction of records
// above the 1 KB SimpleDB limit). EXPERIMENTS.md records the scale factor
// against the paper's 1.27 GB / 31,180-object dataset.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pass/syscall.hpp"
#include "util/rng.hpp"

namespace provcloud::workloads {

/// Knobs shared by the three generators. `count_scale` multiplies entity
/// counts (files, processes); `size_scale` multiplies file sizes.
struct WorkloadOptions {
  std::uint64_t seed = 2009;
  double count_scale = 1.0;
  double size_scale = 1.0;
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  /// Deterministic for a given options.seed.
  virtual pass::SyscallTrace generate(const WorkloadOptions& options) const = 0;
};

/// Scaled count: max(1, round(base * count_scale)).
std::size_t scaled_count(std::size_t base, const WorkloadOptions& options);

/// Scaled size: max(1, round(base * size_scale)).
std::uint64_t scaled_size(std::uint64_t base, const WorkloadOptions& options);

/// A realistic-looking process environment of roughly `target_bytes` bytes.
/// Process ENV provenance records are the paper's main source of >1 KB
/// values.
std::map<std::string, std::string> synth_environment(util::Rng& rng,
                                                     std::size_t target_bytes);

}  // namespace provcloud::workloads
