// Open-loop multi-tenant arrival processes for the frontend benches.
//
// The paper's workloads are closed-loop traces (one client, next syscall
// after the last completes). A million-client frontend is judged under
// OPEN-loop load: arrivals come from a Poisson process that does not slow
// down when the system does, tenant popularity is zipfian (a few hot
// tenants dominate), and bursts arrive as storms (one tenant firing far
// above its provisioned rate for a window). Everything here is a pure
// function of the options' seed so runs replay bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "pass/local_cache.hpp"
#include "sim/clock.hpp"
#include "util/rng.hpp"

namespace provcloud::workloads {

/// No storm (OpenLoopOptions::storm_tenant).
inline constexpr std::size_t kNoStorm = static_cast<std::size_t>(-1);

struct OpenLoopOptions {
  std::uint64_t seed = 2026;
  std::size_t tenants = 8;
  /// Zipf exponent for tenant popularity; 0 = uniform.
  double zipf_s = 0.0;
  /// Aggregate Poisson arrival rate (closes per virtual second) across all
  /// tenants.
  double arrivals_per_sec = 100.0;
  sim::SimTime duration = 10 * sim::kSecond;
  /// Burst storm: this tenant additionally fires a Poisson process of
  /// `storm_rate` closes/sec during [storm_start, storm_start +
  /// storm_duration). kNoStorm disables it.
  std::size_t storm_tenant = kNoStorm;
  double storm_rate = 0.0;
  sim::SimTime storm_start = 0;
  sim::SimTime storm_duration = 0;
  /// Data bytes per synthesized close.
  std::uint64_t close_bytes = 256;
};

struct TenantArrival {
  sim::SimTime at = 0;
  std::size_t tenant = 0;
};

/// Tenant picker with zipfian popularity (tenant 0 hottest): a precomputed
/// CDF inverted per draw. s == 0 degenerates to uniform.
class ZipfianPicker {
 public:
  ZipfianPicker(std::size_t n, double s);
  std::size_t pick(util::Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// The merged, time-sorted arrival schedule: base Poisson process with
/// zipfian tenant attribution, plus the storm process if configured.
/// Deterministic for a given options.seed.
std::vector<TenantArrival> open_loop_arrivals(const OpenLoopOptions& options);

/// A synthetic close for one arrival: a fresh object "t<tenant>/o<seq>" at
/// version 1 with `bytes` of data and a minimal provenance record set.
pass::FlushUnit make_tenant_close(std::size_t tenant, std::uint64_t seq,
                                  std::uint64_t bytes);

}  // namespace provcloud::workloads
