#include "workloads/compile.hpp"

#include "workloads/datagen.hpp"

namespace provcloud::workloads {

using pass::Pid;
using pass::SyscallTrace;

pass::SyscallTrace CompileWorkload::generate(
    const WorkloadOptions& options) const {
  util::Rng rng(options.seed ^ 0xc041711eull);
  SyscallTrace trace;
  Pid next_pid = 100;

  const std::size_t n_sources = scaled_count(config_.sources, options);
  const std::size_t n_headers = scaled_count(config_.headers, options);

  // --- untar: materialize the source tree ---
  const Pid untar = next_pid++;
  trace.push_back(pass::ev_exec(untar, "/bin/tar", {"tar", "xf", "src.tar"},
                                synth_environment(rng, 900)));
  std::vector<std::string> headers;
  headers.reserve(n_headers);
  for (std::size_t i = 0; i < n_headers; ++i) {
    const std::string path = "src/include/h" + std::to_string(i) + ".h";
    headers.push_back(path);
    const std::uint64_t size =
        scaled_size(rng.next_log_uniform(config_.header_bytes_min,
                                         config_.header_bytes_max),
                    options);
    trace.push_back(pass::ev_write(untar, path, synth_source(rng, size)));
    trace.push_back(pass::ev_close(untar, path));
  }
  std::vector<std::string> sources;
  sources.reserve(n_sources);
  for (std::size_t i = 0; i < n_sources; ++i) {
    const std::string path = "src/c" + std::to_string(i) + ".c";
    sources.push_back(path);
    const std::uint64_t size =
        scaled_size(rng.next_log_uniform(config_.source_bytes_min,
                                         config_.source_bytes_max),
                    options);
    trace.push_back(pass::ev_write(untar, path, synth_source(rng, size)));
    trace.push_back(pass::ev_close(untar, path));
  }
  trace.push_back(pass::ev_exit(untar));

  // --- make forks a gcc per translation unit ---
  const Pid make = next_pid++;
  trace.push_back(pass::ev_exec(make, "/usr/bin/make", {"make", "-j4", "all"},
                                synth_environment(rng, 2300)));
  trace.push_back(pass::ev_read(make, "src/Makefile"));

  std::vector<std::string> objects;
  objects.reserve(n_sources);
  for (std::size_t i = 0; i < n_sources; ++i) {
    const Pid gcc = next_pid++;
    trace.push_back(pass::ev_fork(make, gcc));
    // Long -D/-I laden argv: many real compile argv records exceed 1 KB.
    std::vector<std::string> argv = {"gcc", "-O2", "-g", "-Wall", "-c",
                                     sources[i]};
    const std::size_t extra_flags = rng.next_in(16, 64);
    for (std::size_t f = 0; f < extra_flags; ++f)
      argv.push_back("-DCONFIG_OPTION_" + std::to_string(f) + "_" +
                     rng.next_hex(12) + "=1");
    trace.push_back(pass::ev_exec(
        gcc, "/usr/bin/gcc", std::move(argv),
        synth_environment(rng, rng.next_in(2400, 5200))));
    trace.push_back(pass::ev_read(gcc, sources[i]));
    const std::size_t deps =
        std::min(config_.headers_per_unit + rng.next_below(4), headers.size());
    for (std::size_t d = 0; d < deps; ++d)
      trace.push_back(
          pass::ev_read(gcc, headers[rng.next_below(headers.size())]));
    const std::string obj = "obj/c" + std::to_string(i) + ".o";
    objects.push_back(obj);
    // Object files run roughly twice the source size.
    const std::uint64_t obj_size =
        scaled_size(rng.next_log_uniform(config_.source_bytes_min * 2,
                                         config_.source_bytes_max * 2),
                    options);
    trace.push_back(pass::ev_write(gcc, obj, synth_content(rng, obj_size)));
    trace.push_back(pass::ev_close(gcc, obj));
    trace.push_back(pass::ev_exit(gcc));
  }

  // --- ld links groups of objects ---
  std::size_t binary_index = 0;
  for (std::size_t start = 0; start < objects.size();
       start += config_.objects_per_link) {
    const Pid ld = next_pid++;
    trace.push_back(pass::ev_fork(make, ld));
    trace.push_back(pass::ev_exec(
        ld, "/usr/bin/ld",
        {"ld", "-o", "bin/prog" + std::to_string(binary_index)},
        synth_environment(rng, rng.next_in(2000, 3800))));
    std::uint64_t total = 0;
    const std::size_t end =
        std::min(start + config_.objects_per_link, objects.size());
    for (std::size_t i = start; i < end; ++i) {
      trace.push_back(pass::ev_read(ld, objects[i]));
      total += 8 * util::kKiB;
    }
    const std::string binary = "bin/prog" + std::to_string(binary_index++);
    trace.push_back(
        pass::ev_write(ld, binary, synth_content(rng, scaled_size(total, options))));
    trace.push_back(pass::ev_close(ld, binary));
    trace.push_back(pass::ev_exit(ld));
  }
  trace.push_back(pass::ev_exit(make));
  return trace;
}

}  // namespace provcloud::workloads
