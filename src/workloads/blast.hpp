// The Blast workload (sequence-alignment pipeline, as in the PASS paper).
//
// Shape: `formatdb` reads a raw FASTA archive and produces database index
// files; one `blastall` process per query reads the query file plus the
// database and writes a hits file; `summarize` jobs aggregate groups of hit
// files. The paper's query Q.2 asks for "all the files there were outputs
// of blast" and Q.3 for their descendants -- the summaries here are those
// descendants.
#pragma once

#include "workloads/workload.hpp"

namespace provcloud::workloads {

struct BlastConfig {
  std::size_t queries = 64;             // blastall runs (scaled)
  std::size_t queries_per_summary = 8;  // fan-in of the summarize stage
  std::uint64_t fasta_bytes = 4 * util::kMiB;
  std::uint64_t query_bytes_min = util::kKiB;
  std::uint64_t query_bytes_max = 4 * util::kKiB;
  std::uint64_t hits_bytes_min = 16 * util::kKiB;
  std::uint64_t hits_bytes_max = 128 * util::kKiB;
};

class BlastWorkload : public Workload {
 public:
  BlastWorkload() = default;
  explicit BlastWorkload(BlastConfig config) : config_(config) {}

  std::string name() const override { return "blast"; }
  pass::SyscallTrace generate(const WorkloadOptions& options) const override;

  /// Program name blastall runs as; queries Q.2/Q.3 key off this.
  static constexpr const char* kBlastProgram = "/usr/bin/blastall";

 private:
  BlastConfig config_;
};

}  // namespace provcloud::workloads
