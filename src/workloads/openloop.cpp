#include "workloads/openloop.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace provcloud::workloads {

ZipfianPicker::ZipfianPicker(std::size_t n, double s) {
  PROVCLOUD_REQUIRE_MSG(n > 0, "ZipfianPicker needs at least one tenant");
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += s == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfianPicker::pick(util::Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return std::min<std::size_t>(it - cdf_.begin(), cdf_.size() - 1);
}

namespace {

/// One Poisson process at `rate` arrivals/sec over [start, end), appended
/// to `out` with tenants drawn by `pick`.
template <typename PickFn>
void poisson_process(util::Rng& rng, double rate, sim::SimTime start,
                     sim::SimTime end, PickFn pick,
                     std::vector<TenantArrival>& out) {
  if (rate <= 0.0) return;
  double t = static_cast<double>(start);
  while (true) {
    const double u = rng.next_double();
    t += -std::log(1.0 - u) * static_cast<double>(sim::kSecond) / rate;
    if (t >= static_cast<double>(end)) break;
    out.push_back({static_cast<sim::SimTime>(t), pick(rng)});
  }
}

}  // namespace

std::vector<TenantArrival> open_loop_arrivals(const OpenLoopOptions& options) {
  PROVCLOUD_REQUIRE_MSG(options.tenants > 0, "open loop needs tenants");
  util::Rng rng(options.seed);
  std::vector<TenantArrival> arrivals;
  const ZipfianPicker picker(options.tenants, options.zipf_s);
  poisson_process(
      rng, options.arrivals_per_sec, 0, options.duration,
      [&](util::Rng& r) { return picker.pick(r); }, arrivals);
  if (options.storm_tenant != kNoStorm && options.storm_rate > 0.0) {
    PROVCLOUD_REQUIRE_MSG(options.storm_tenant < options.tenants,
                          "storm tenant out of range");
    util::Rng storm_rng = rng.fork(0x53544f524dull);  // "STORM"
    const sim::SimTime end = std::min(
        options.duration, options.storm_start + options.storm_duration);
    poisson_process(
        storm_rng, options.storm_rate, options.storm_start, end,
        [&](util::Rng&) { return options.storm_tenant; }, arrivals);
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const TenantArrival& a, const TenantArrival& b) {
                     return a.at < b.at;
                   });
  return arrivals;
}

pass::FlushUnit make_tenant_close(std::size_t tenant, std::uint64_t seq,
                                  std::uint64_t bytes) {
  pass::FlushUnit unit;
  unit.object = "t" + std::to_string(tenant) + "/o" + std::to_string(seq);
  unit.kind = pass::PnodeKind::kFile;
  unit.version = 1;
  unit.data = util::make_shared_bytes(
      util::Bytes(static_cast<std::size_t>(bytes), 'x'));
  unit.records.push_back(pass::make_text_record(pass::attr::kType, "file"));
  unit.records.push_back(pass::make_text_record(pass::attr::kName, unit.object));
  return unit;
}

}  // namespace provcloud::workloads
