// The First Provenance Challenge workload (Moreau et al., 2008).
//
// The fMRI workflow the challenge standardized, and which the paper's PASS
// dataset includes: for each of N subjects an anatomy image (.img/.hdr pair)
// is aligned against a reference (`align_warp` -> warp params), resliced
// (`reslice` -> new img/hdr), all resliced images are averaged
// (`softmean` -> atlas img/hdr), and the atlas is sliced along three axes
// (`slicer` -> .pgm) and converted (`convert` -> .gif).
#pragma once

#include "workloads/workload.hpp"

namespace provcloud::workloads {

struct ProvenanceChallengeConfig {
  std::size_t subjects = 5;     // parallel pipelines (the challenge uses 5)
  std::size_t stages_runs = 1;  // how many independent workflow runs
  std::uint64_t image_bytes = util::kMiB;       // .img payload
  std::uint64_t header_bytes = 348;             // .hdr (Analyze format size)
  std::uint64_t slice_bytes = 96 * util::kKiB;  // .pgm
  std::uint64_t gif_bytes = 24 * util::kKiB;    // .gif
};

class ProvenanceChallengeWorkload : public Workload {
 public:
  ProvenanceChallengeWorkload() = default;
  explicit ProvenanceChallengeWorkload(ProvenanceChallengeConfig config)
      : config_(config) {}

  std::string name() const override { return "provenance-challenge"; }
  pass::SyscallTrace generate(const WorkloadOptions& options) const override;

 private:
  ProvenanceChallengeConfig config_;
};

}  // namespace provcloud::workloads
