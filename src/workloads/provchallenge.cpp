#include "workloads/provchallenge.hpp"

#include "workloads/datagen.hpp"

namespace provcloud::workloads {

using pass::Pid;
using pass::SyscallTrace;

pass::SyscallTrace ProvenanceChallengeWorkload::generate(
    const WorkloadOptions& options) const {
  util::Rng rng(options.seed ^ 0xfc4a11e46eull);
  SyscallTrace trace;
  Pid next_pid = 5000;

  const std::size_t n_subjects = scaled_count(config_.subjects, options);
  const std::size_t n_runs = std::max<std::size_t>(1, config_.stages_runs);

  for (std::size_t run = 0; run < n_runs; ++run) {
    const std::string base = "fmri/run" + std::to_string(run) + "/";

    // Stage 0: acquisition writes the inputs.
    const Pid acquire = next_pid++;
    trace.push_back(pass::ev_exec(acquire, "/usr/bin/scanner-import",
                                  {"scanner-import", "--study", "fmri"},
                                  synth_environment(rng, 900)));
    const std::string ref_img = base + "reference.img";
    const std::string ref_hdr = base + "reference.hdr";
    trace.push_back(pass::ev_write(
        acquire, ref_img,
        synth_content(rng, scaled_size(config_.image_bytes, options))));
    trace.push_back(pass::ev_close(acquire, ref_img));
    trace.push_back(pass::ev_write(
        acquire, ref_hdr, synth_content(rng, config_.header_bytes)));
    trace.push_back(pass::ev_close(acquire, ref_hdr));

    std::vector<std::string> anatomy_imgs, anatomy_hdrs;
    for (std::size_t s = 0; s < n_subjects; ++s) {
      const std::string img = base + "anatomy" + std::to_string(s) + ".img";
      const std::string hdr = base + "anatomy" + std::to_string(s) + ".hdr";
      anatomy_imgs.push_back(img);
      anatomy_hdrs.push_back(hdr);
      trace.push_back(pass::ev_write(
          acquire, img,
          synth_content(rng, scaled_size(config_.image_bytes, options))));
      trace.push_back(pass::ev_close(acquire, img));
      trace.push_back(
          pass::ev_write(acquire, hdr, synth_content(rng, config_.header_bytes)));
      trace.push_back(pass::ev_close(acquire, hdr));
    }
    trace.push_back(pass::ev_exit(acquire));

    // Stage 1+2: per-subject align_warp then reslice.
    std::vector<std::string> resliced_imgs, resliced_hdrs;
    for (std::size_t s = 0; s < n_subjects; ++s) {
      const Pid align = next_pid++;
      trace.push_back(pass::ev_exec(
          align, "/usr/local/fsl/align_warp",
          {"align_warp", anatomy_imgs[s], ref_img, "-m", "12"},
          synth_environment(rng, rng.next_in(2200, 4400))));
      trace.push_back(pass::ev_read(align, anatomy_imgs[s]));
      trace.push_back(pass::ev_read(align, anatomy_hdrs[s]));
      trace.push_back(pass::ev_read(align, ref_img));
      trace.push_back(pass::ev_read(align, ref_hdr));
      const std::string warp = base + "warp" + std::to_string(s) + ".warp";
      trace.push_back(pass::ev_write(
          align, warp, synth_content(rng, scaled_size(24 * util::kKiB, options))));
      trace.push_back(pass::ev_close(align, warp));
      trace.push_back(pass::ev_exit(align));

      const Pid reslice = next_pid++;
      trace.push_back(pass::ev_exec(
          reslice, "/usr/local/fsl/reslice", {"reslice", warp},
          synth_environment(rng, rng.next_in(2200, 4400))));
      trace.push_back(pass::ev_read(reslice, warp));
      trace.push_back(pass::ev_read(reslice, anatomy_imgs[s]));
      trace.push_back(pass::ev_read(reslice, anatomy_hdrs[s]));
      const std::string rimg = base + "resliced" + std::to_string(s) + ".img";
      const std::string rhdr = base + "resliced" + std::to_string(s) + ".hdr";
      resliced_imgs.push_back(rimg);
      resliced_hdrs.push_back(rhdr);
      trace.push_back(pass::ev_write(
          reslice, rimg,
          synth_content(rng, scaled_size(config_.image_bytes, options))));
      trace.push_back(pass::ev_close(reslice, rimg));
      trace.push_back(
          pass::ev_write(reslice, rhdr, synth_content(rng, config_.header_bytes)));
      trace.push_back(pass::ev_close(reslice, rhdr));
      trace.push_back(pass::ev_exit(reslice));
    }

    // Stage 3: softmean averages every resliced image into the atlas.
    const Pid softmean = next_pid++;
    trace.push_back(pass::ev_exec(softmean, "/usr/local/fsl/softmean",
                                  {"softmean", "atlas.img", "y", "null"},
                                  synth_environment(rng, rng.next_in(2200, 4400))));
    for (std::size_t s = 0; s < n_subjects; ++s) {
      trace.push_back(pass::ev_read(softmean, resliced_imgs[s]));
      trace.push_back(pass::ev_read(softmean, resliced_hdrs[s]));
    }
    const std::string atlas_img = base + "atlas.img";
    const std::string atlas_hdr = base + "atlas.hdr";
    trace.push_back(pass::ev_write(
        softmean, atlas_img,
        synth_content(rng, scaled_size(config_.image_bytes, options))));
    trace.push_back(pass::ev_close(softmean, atlas_img));
    trace.push_back(pass::ev_write(softmean, atlas_hdr,
                                   synth_content(rng, config_.header_bytes)));
    trace.push_back(pass::ev_close(softmean, atlas_hdr));
    trace.push_back(pass::ev_exit(softmean));

    // Stage 4+5: slicer along three axes, then convert to graphics.
    static constexpr const char* kAxes[3] = {"x", "y", "z"};
    for (const char* axis : kAxes) {
      const Pid slicer = next_pid++;
      trace.push_back(pass::ev_exec(
          slicer, "/usr/local/fsl/slicer",
          {"slicer", atlas_img, std::string("-") + axis, ".5"},
          synth_environment(rng, rng.next_in(2000, 3800))));
      trace.push_back(pass::ev_read(slicer, atlas_img));
      trace.push_back(pass::ev_read(slicer, atlas_hdr));
      const std::string slice = base + "atlas-" + axis + ".pgm";
      trace.push_back(pass::ev_write(
          slicer, slice,
          synth_content(rng, scaled_size(config_.slice_bytes, options))));
      trace.push_back(pass::ev_close(slicer, slice));
      trace.push_back(pass::ev_exit(slicer));

      const Pid convert = next_pid++;
      trace.push_back(pass::ev_exec(
          convert, "/usr/bin/convert",
          {"convert", slice, base + "atlas-" + axis + ".gif"},
          synth_environment(rng, rng.next_in(2000, 3800))));
      trace.push_back(pass::ev_read(convert, slice));
      const std::string gif = base + "atlas-" + axis + ".gif";
      trace.push_back(pass::ev_write(
          convert, gif,
          synth_content(rng, scaled_size(config_.gif_bytes, options))));
      trace.push_back(pass::ev_close(convert, gif));
      trace.push_back(pass::ev_exit(convert));
    }
  }
  return trace;
}

}  // namespace provcloud::workloads
