#include "workloads/datagen.hpp"

#include <array>

namespace provcloud::workloads {

util::Bytes synth_content(util::Rng& rng, std::size_t n) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;\n";
  constexpr std::size_t kAlphabetSize = sizeof(kAlphabet) - 1;
  util::Bytes out;
  out.resize(n);
  std::size_t i = 0;
  while (i < n) {
    // One 64-bit draw yields 8 characters.
    std::uint64_t r = rng.next_u64();
    for (int j = 0; j < 8 && i < n; ++j) {
      out[i++] = kAlphabet[(r & 0xff) % kAlphabetSize];
      r >>= 8;
    }
  }
  return out;
}

util::Bytes synth_source(util::Rng& rng, std::size_t n) {
  static const std::array<const char*, 6> kLines = {
      "static int compute(int a, int b) { return a * 31 + b; }\n",
      "#include \"common.h\"\n",
      "for (size_t i = 0; i < count; ++i) { total += table[i]; }\n",
      "/* generated block */\n",
      "if (status != 0) { return status; }\n",
      "double scale = input / 1024.0;\n",
  };
  util::Bytes out;
  out.reserve(n + 64);
  while (out.size() < n)
    out.append(kLines[rng.next_below(kLines.size())]);
  out.resize(n);
  return out;
}

}  // namespace provcloud::workloads
