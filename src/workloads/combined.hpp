// The paper's combined dataset: "We use the combined provenance generated
// from all three benchmarks as one single dataset."
#pragma once

#include "workloads/blast.hpp"
#include "workloads/compile.hpp"
#include "workloads/provchallenge.hpp"
#include "workloads/workload.hpp"

namespace provcloud::workloads {

/// Concatenation of the three traces (compile, blast, provenance
/// challenge), each seeded independently from options.seed.
pass::SyscallTrace build_combined_trace(const WorkloadOptions& options);

/// Summary statistics of a raw trace (before PASS processing) -- handy for
/// sanity checks and EXPERIMENTS.md context.
struct TraceStats {
  std::uint64_t events = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t execs = 0;
  std::uint64_t closes = 0;
  std::uint64_t bytes_written = 0;
};

TraceStats compute_trace_stats(const pass::SyscallTrace& trace);

}  // namespace provcloud::workloads
