// Deterministic synthetic file contents.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace provcloud::workloads {

/// `n` bytes of deterministic pseudo-random printable text. Distinct calls
/// on the same rng produce distinct contents, so MD5 consistency tokens
/// behave like they would on real data.
util::Bytes synth_content(util::Rng& rng, std::size_t n);

/// Same but biased to look like C source (for the compile workload's tests
/// and examples; content never influences the protocols beyond size+hash).
util::Bytes synth_source(util::Rng& rng, std::size_t n);

}  // namespace provcloud::workloads
