#include "workloads/blast.hpp"

#include "workloads/datagen.hpp"

namespace provcloud::workloads {

using pass::Pid;
using pass::SyscallTrace;

pass::SyscallTrace BlastWorkload::generate(
    const WorkloadOptions& options) const {
  util::Rng rng(options.seed ^ 0xb1a57ull);
  SyscallTrace trace;
  Pid next_pid = 2000;

  // --- stage 0: the raw sequence archive arrives ---
  const Pid fetch = next_pid++;
  trace.push_back(pass::ev_exec(fetch, "/usr/bin/wget",
                                {"wget", "ftp://ncbi/nr.fasta"},
                                synth_environment(rng, 800)));
  trace.push_back(pass::ev_write(
      fetch, "blast/nr.fasta",
      synth_content(rng, scaled_size(config_.fasta_bytes, options))));
  trace.push_back(pass::ev_close(fetch, "blast/nr.fasta"));
  trace.push_back(pass::ev_exit(fetch));

  // --- stage 1: formatdb builds the database index files ---
  const Pid formatdb = next_pid++;
  trace.push_back(pass::ev_exec(formatdb, "/usr/bin/formatdb",
                                {"formatdb", "-i", "blast/nr.fasta"},
                                synth_environment(rng, rng.next_in(2200, 4200))));
  trace.push_back(pass::ev_read(formatdb, "blast/nr.fasta"));
  const std::vector<std::string> db_files = {"blast/nr.phr", "blast/nr.pin",
                                             "blast/nr.psq"};
  for (const std::string& db : db_files) {
    const std::uint64_t size = scaled_size(
        config_.fasta_bytes / (db.back() == 'q' ? 2 : 16), options);
    trace.push_back(pass::ev_write(formatdb, db, synth_content(rng, size)));
    trace.push_back(pass::ev_close(formatdb, db));
  }
  trace.push_back(pass::ev_exit(formatdb));

  // --- stage 2: one blastall per query ---
  const std::size_t n_queries = scaled_count(config_.queries, options);
  std::vector<std::string> hit_files;
  hit_files.reserve(n_queries);
  const Pid driver = next_pid++;
  trace.push_back(pass::ev_exec(driver, "/bin/sh", {"sh", "run_blast.sh"},
                                synth_environment(rng, 700)));
  for (std::size_t q = 0; q < n_queries; ++q) {
    const std::string query = "blast/query" + std::to_string(q) + ".fa";
    trace.push_back(pass::ev_write(
        driver, query,
        synth_content(rng,
                      scaled_size(rng.next_log_uniform(config_.query_bytes_min,
                                                       config_.query_bytes_max),
                                  options))));
    trace.push_back(pass::ev_close(driver, query));

    const Pid blast = next_pid++;
    trace.push_back(pass::ev_fork(driver, blast));
    trace.push_back(pass::ev_exec(
        blast, kBlastProgram,
        {"blastall", "-p", "blastp", "-d", "blast/nr", "-i", query},
        synth_environment(rng, rng.next_in(2400, 4800))));
    trace.push_back(pass::ev_read(blast, query));
    for (const std::string& db : db_files)
      trace.push_back(pass::ev_read(blast, db));
    const std::string hits = "blast/hits" + std::to_string(q) + ".out";
    hit_files.push_back(hits);
    trace.push_back(pass::ev_write(
        blast, hits,
        synth_content(rng,
                      scaled_size(rng.next_log_uniform(config_.hits_bytes_min,
                                                       config_.hits_bytes_max),
                                  options))));
    trace.push_back(pass::ev_close(blast, hits));
    trace.push_back(pass::ev_exit(blast));
  }

  // --- stage 3: summaries over groups of hit files (blast descendants) ---
  std::size_t summary_index = 0;
  for (std::size_t start = 0; start < hit_files.size();
       start += config_.queries_per_summary) {
    const Pid summarize = next_pid++;
    trace.push_back(pass::ev_fork(driver, summarize));
    trace.push_back(pass::ev_exec(
        summarize, "/usr/bin/python",
        {"python", "summarize.py"},
        synth_environment(rng, rng.next_in(2000, 3600))));
    const std::size_t end =
        std::min(start + config_.queries_per_summary, hit_files.size());
    for (std::size_t i = start; i < end; ++i)
      trace.push_back(pass::ev_read(summarize, hit_files[i]));
    const std::string summary =
        "blast/summary" + std::to_string(summary_index++) + ".txt";
    trace.push_back(pass::ev_write(
        summarize, summary,
        synth_content(rng, scaled_size(rng.next_in(4, 64) * util::kKiB,
                                       options))));
    trace.push_back(pass::ev_close(summarize, summary));
    trace.push_back(pass::ev_exit(summarize));
  }
  trace.push_back(pass::ev_exit(driver));
  return trace;
}

}  // namespace provcloud::workloads
