#include "sim/latency.hpp"

#include "util/require.hpp"

namespace provcloud::sim {

SimTime LatencyModel::sample(util::Rng& rng, std::uint64_t bytes_in,
                             std::uint64_t bytes_out) const {
  PROVCLOUD_REQUIRE(config_.upload_bytes_per_sec > 0);
  PROVCLOUD_REQUIRE(config_.download_bytes_per_sec > 0);
  const SimTime overhead = rng.next_in(config_.request_overhead_min,
                                       config_.request_overhead_max);
  const SimTime up =
      bytes_in * kSecond / config_.upload_bytes_per_sec;
  const SimTime down =
      bytes_out * kSecond / config_.download_bytes_per_sec;
  return overhead + up + down;
}

}  // namespace provcloud::sim
