// Failure injection.
//
// The paper's property analysis (section 3) is all about what happens when a
// client crashes between protocol steps: crash after storing provenance but
// before data (atomicity violation in Arch 2), crash after logging part of a
// transaction (ignored by the commit daemon in Arch 3), commit-daemon crash
// between stores and WAL deletion (idempotent replay). Backends call
// FailureInjector::crash_point(name) at every such step; a test arms a point
// and the protocol throws CrashError there, simulating the process dying with
// all its volatile state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace provcloud::sim {

/// Thrown at an armed crash point. Protocol code never catches this; the
/// driver (test / property checker) does, then runs recovery.
class CrashError : public std::runtime_error {
 public:
  explicit CrashError(const std::string& point)
      : std::runtime_error("injected crash at '" + point + "'"), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

class FailureInjector {
 public:
  /// Crash the next `nth` time (1 = next) execution reaches `point`.
  void arm_crash(const std::string& point, std::uint64_t nth = 1);

  /// Remove any armed crash for `point`.
  void disarm(const std::string& point);

  /// Remove everything.
  void reset();

  /// Protocol instrumentation. Throws CrashError when armed and the hit
  /// count reaches the armed occurrence.
  void crash_point(const std::string& point);

  /// Number of times `point` has been reached (armed or not).
  std::uint64_t hits(const std::string& point) const;

  /// Observation tap: called (outside the injector's lock, on the hitting
  /// thread, possibly concurrently) every time execution reaches a crash
  /// point, with `crashing` true when this hit is about to throw. The
  /// environment wires this to the tracer so armed crashes show up as
  /// instant events on the track that died. Set once before concurrent use.
  void set_hit_hook(
      std::function<void(const std::string& point, bool crashing)> hook) {
    hit_hook_ = std::move(hook);
  }

  /// Every distinct crash point reached so far, in first-hit order. Used by
  /// the property checker to enumerate the protocol's crash surface and then
  /// sweep a crash through every step. Driver-thread view: do not call while
  /// a parallel fan-out may still hit new points.
  const std::vector<std::string>& observed_points() const {
    return observed_order_;
  }

 private:
  struct PointState {
    std::uint64_t hits = 0;
    std::uint64_t crash_at = 0;  // 0 = disarmed
  };
  // Protocol code calls crash_point from shard-parallel workers (multiple
  // clients storing concurrently), so the hit counters are guarded.
  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
  std::vector<std::string> observed_order_;
  std::function<void(const std::string&, bool)> hit_hook_;
};

}  // namespace provcloud::sim
