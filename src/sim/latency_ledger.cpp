#include "sim/latency_ledger.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace provcloud::sim {

namespace {

/// The per-thread stack of open branches, tagged by ledger so tests that
/// drive several CloudEnvs from one thread cannot cross their timelines.
struct BranchFrame {
  const LatencyLedger* ledger;
  LatencyLedger::Timeline* timeline;
};
thread_local std::vector<BranchFrame> tls_branches;

}  // namespace

LatencyLedger::~LatencyLedger() {
  // A Branch must not outlive its ledger; CloudEnv owns the ledger and every
  // fan-out gathers (joining its branches) before control returns.
  PROVCLOUD_REQUIRE(open_branches_.load() == 0);
}

LatencyLedger::Timeline& LatencyLedger::root_for_this_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  return roots_[std::this_thread::get_id()];
}

LatencyLedger::Timeline* LatencyLedger::active_timeline() {
  for (auto it = tls_branches.rbegin(); it != tls_branches.rend(); ++it)
    if (it->ledger == this) return it->timeline;
  return &root_for_this_thread();
}

const LatencyLedger::Timeline* LatencyLedger::active_timeline_or_null() const {
  for (auto it = tls_branches.rbegin(); it != tls_branches.rend(); ++it)
    if (it->ledger == this) return it->timeline;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = roots_.find(std::this_thread::get_id());
  return it == roots_.end() ? nullptr : &it->second;
}

namespace {

/// Add `latency` to `t`'s per-service split (heterogeneous find: the key
/// string is built only on first sight of a service).
void accumulate_service(LatencyLedger::Timeline& t, std::string_view service,
                        SimTime latency) {
  auto it = t.by_service.find(service);
  if (it == t.by_service.end())
    t.by_service.emplace(std::string(service), latency);
  else
    it->second += latency;
}

}  // namespace

void LatencyLedger::charge(SimTime latency, std::string_view service) {
  Timeline* t = active_timeline();
  if (LedgerObserver* obs = observer_.load(std::memory_order_acquire))
    obs->on_charge(t, t->elapsed, latency, service);
  t->elapsed += latency;
  if (!service.empty()) accumulate_service(*t, service, latency);
}

SimTime LatencyLedger::elapsed() const {
  const Timeline* t = active_timeline_or_null();
  return t == nullptr ? 0 : t->elapsed;
}

std::map<std::string, SimTime, std::less<>> LatencyLedger::elapsed_by_service()
    const {
  const Timeline* t = active_timeline_or_null();
  return t == nullptr ? std::map<std::string, SimTime, std::less<>>{}
                      : t->by_service;
}

void LatencyLedger::merge_critical_path(
    const std::vector<SimTime>& branch_elapsed) {
  SimTime critical = 0;
  for (const SimTime e : branch_elapsed) critical = std::max(critical, e);
  charge(critical);
}

void LatencyLedger::merge_critical_path(
    const std::vector<const Timeline*>& branches) {
  const Timeline* critical = nullptr;
  for (const Timeline* b : branches)
    if (b != nullptr && (critical == nullptr || b->elapsed > critical->elapsed))
      critical = b;
  if (critical == nullptr) return;
  Timeline* t = active_timeline();
  if (LedgerObserver* obs = observer_.load(std::memory_order_acquire))
    obs->on_charge(t, t->elapsed, critical->elapsed, "gather");
  t->elapsed += critical->elapsed;
  for (const auto& [service, elapsed] : critical->by_service)
    accumulate_service(*t, service, elapsed);
}

LatencyLedger::Branch::Branch(LatencyLedger& ledger) : ledger_(&ledger) {
  tls_branches.push_back(BranchFrame{ledger_, &timeline_});
  ledger_->open_branches_.fetch_add(1, std::memory_order_acq_rel);
  if (LedgerObserver* obs = ledger_->observer_.load(std::memory_order_acquire))
    obs->on_scope_open(&timeline_, /*is_branch=*/true);
}

LatencyLedger::Branch::~Branch() {
  if (LedgerObserver* obs = ledger_->observer_.load(std::memory_order_acquire))
    obs->on_scope_close(&timeline_, /*is_branch=*/true);
  ledger_->open_branches_.fetch_sub(1, std::memory_order_acq_rel);
  PROVCLOUD_REQUIRE(!tls_branches.empty() &&
                    tls_branches.back().timeline == &timeline_);
  tls_branches.pop_back();
}

LatencyLedger::ScopedTimeline::ScopedTimeline(LatencyLedger& ledger,
                                              Timeline& timeline)
    : ledger_(&ledger), timeline_(&timeline) {
  tls_branches.push_back(BranchFrame{ledger_, timeline_});
  if (LedgerObserver* obs = ledger_->observer_.load(std::memory_order_acquire))
    obs->on_scope_open(timeline_, /*is_branch=*/false);
}

LatencyLedger::ScopedTimeline::~ScopedTimeline() {
  if (LedgerObserver* obs = ledger_->observer_.load(std::memory_order_acquire))
    obs->on_scope_close(timeline_, /*is_branch=*/false);
  PROVCLOUD_REQUIRE(!tls_branches.empty() &&
                    tls_branches.back().timeline == timeline_);
  tls_branches.pop_back();
}

}  // namespace provcloud::sim
