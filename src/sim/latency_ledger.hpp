// Per-client virtual timelines for elapsed-time accounting.
//
// The old model charged request latency by advancing the shared SimClock
// inline, which is unsafe under shard-parallel scatter/gather: a clock
// advance fires replica-propagation events mid-scatter, mutating the very
// replicas the scatter is reading. The ledger decouples the two concerns:
//
//   * Every simulated AWS call records its sampled latency against the
//     *timeline* of the thread that issued it. Each client (thread) owns a
//     root timeline, so sequential composition merges by **sum** -- exactly
//     the charged-latency numbers the global-clock mode produced.
//   * A parallel scatter/gather opens one Branch per task. Charges inside a
//     branch land on that branch's timeline; at the gather barrier the
//     caller merges the branch totals by **max** (the critical path), so a
//     parallel run reports the *overlapped* elapsed time.
//   * A session's group commit opens one ScopedTimeline per in-flight
//     ticket: the close's exclusive service calls land on the ticket's own
//     timeline (on the same thread -- no executor involved), and the
//     durability barrier merges the ticket timelines by critical path. That
//     is how latency hiding *across closes* becomes measurable.
//   * The simulated clock never moves on a charge. Replica propagation is
//     scheduled at logical commit time and fires only at explicit driver-
//     thread synchronization points (SimClock::advance_to/drain), which a
//     guard asserts never overlap an open branch.
//
// With parallelism == 1 no branches open and every charge lands on the
// caller's root timeline in issue order: the reported elapsed time is
// bit-identical to the retired charge_latency accounting.
//
// Timelines additionally keep a per-service breakdown (which of S3 /
// SimpleDB / SQS the elapsed time was spent waiting on); critical-path
// merges carry the breakdown of the slowest branch, so the per-service
// split of a merged timeline always sums to its total.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "sim/clock.hpp"

namespace provcloud::sim {

/// Passive tap on ledger activity, for tracing layers that live above sim.
/// Timelines are identified by opaque ids (their addresses); an id is stable
/// for the lifetime of the scope that owns the timeline. Callbacks fire on
/// the charging thread *before* the ledger mutates its state, may run
/// concurrently from many threads, and must not call back into the ledger.
class LedgerObserver {
 public:
  virtual ~LedgerObserver() = default;

  /// `latency` is about to be added to `timeline`, whose elapsed total is
  /// currently `start_elapsed`. `service` is the per-service attribution
  /// ("gather" for a critical-path merge, empty for an unattributed charge).
  virtual void on_charge(const void* timeline, SimTime start_elapsed,
                         SimTime latency, std::string_view service) = 0;

  /// A Branch (is_branch) or ScopedTimeline scope bound `timeline` as the
  /// calling thread's active timeline / unbound it again. Branch timelines
  /// die with their scope; ScopedTimeline ids persist across scopes.
  virtual void on_scope_open(const void* timeline, bool is_branch) = 0;
  virtual void on_scope_close(const void* timeline, bool is_branch) = 0;
};

class LatencyLedger {
 public:
  /// One branch of virtual time. Only the thread running the branch (or
  /// owning the root) ever touches it.
  struct Timeline {
    SimTime elapsed = 0;
    /// Breakdown of `elapsed` by the service that was waited on. Charges
    /// recorded without a service name count only in `elapsed`.
    std::map<std::string, SimTime, std::less<>> by_service;
  };

  LatencyLedger() = default;
  LatencyLedger(const LatencyLedger&) = delete;
  LatencyLedger& operator=(const LatencyLedger&) = delete;
  ~LatencyLedger();

  /// Add `latency` to the calling thread's active timeline: the innermost
  /// open Branch/ScopedTimeline on this thread, or the thread's root
  /// timeline. A non-empty `service` also lands in the per-service
  /// breakdown.
  void charge(SimTime latency, std::string_view service = {});

  /// Elapsed virtual time on the calling thread's active timeline. For a
  /// client driver thread this is "the elapsed time of the client,
  /// excluding idle waiting" -- the quantity the paper's conclusion asks
  /// to measure.
  SimTime elapsed() const;

  /// Per-service breakdown of elapsed() (a copy; empty when nothing was
  /// charged with a service name on this thread's active timeline).
  std::map<std::string, SimTime, std::less<>> elapsed_by_service() const;

  /// Critical-path merge: the gather side of a parallel scatter. Advances
  /// the caller's timeline by the *longest* branch -- overlapped work costs
  /// its slowest leg, not the sum of all legs. This overload carries no
  /// per-service attribution.
  void merge_critical_path(const std::vector<SimTime>& branch_elapsed);

  /// Critical-path merge over full branch timelines: the caller's timeline
  /// advances by the longest branch's total *and* absorbs that branch's
  /// per-service breakdown (the slowest leg is what the client actually
  /// waited on).
  void merge_critical_path(const std::vector<const Timeline*>& branches);

  /// Open branches across all threads. Non-zero means a scatter/gather is
  /// in flight; SimClock's advance guard uses this to reject event firing
  /// mid-scatter.
  int open_branches() const {
    return open_branches_.load(std::memory_order_acquire);
  }

  /// Install (or clear, with nullptr) the observer tap. Must happen-before
  /// any concurrent charging -- CloudEnv wires this at construction. The
  /// observer is not owned and must outlive its registration.
  void set_observer(LedgerObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }
  LedgerObserver* observer() const {
    return observer_.load(std::memory_order_acquire);
  }

  /// Opaque id of the calling thread's active timeline (creating the
  /// thread's root timeline on first use). The same ids an installed
  /// observer sees; lets span-scoped instrumentation target its track.
  const void* active_timeline_id() { return active_timeline(); }

  /// Elapsed total of the calling thread's active timeline -- same value
  /// elapsed() reads, spelled to pair with active_timeline_id() in
  /// span-scoped instrumentation.
  SimTime active_elapsed() const { return elapsed(); }

  /// RAII scope a fan-out task opens on its worker thread: installs a fresh
  /// branch timeline as the thread's active timeline for this ledger and
  /// restores the previous one on destruction. The gather side reads
  /// elapsed() and feeds merge_critical_path.
  class Branch {
   public:
    explicit Branch(LatencyLedger& ledger);
    ~Branch();
    Branch(const Branch&) = delete;
    Branch& operator=(const Branch&) = delete;

    SimTime elapsed() const { return timeline_.elapsed; }
    const Timeline& timeline() const { return timeline_; }

   private:
    LatencyLedger* ledger_;
    Timeline timeline_;
  };

  /// RAII scope that installs a caller-owned timeline as the thread's
  /// active timeline. Unlike Branch (which owns a fresh timeline and is
  /// meant for executor fan-out), a ScopedTimeline lets the same external
  /// timeline accumulate across several disjoint scopes -- a session binds
  /// each ticket's timeline around that ticket's exclusive service calls,
  /// phase by phase, and merges the ticket timelines at the durability
  /// barrier. Same-thread only; does not count as an open branch (no
  /// scatter is in flight).
  class ScopedTimeline {
   public:
    ScopedTimeline(LatencyLedger& ledger, Timeline& timeline);
    ~ScopedTimeline();
    ScopedTimeline(const ScopedTimeline&) = delete;
    ScopedTimeline& operator=(const ScopedTimeline&) = delete;

   private:
    LatencyLedger* ledger_;
    Timeline* timeline_;
  };

 private:
  Timeline* active_timeline();
  const Timeline* active_timeline_or_null() const;
  Timeline& root_for_this_thread();

  /// Guards the root-timeline map structure; each Timeline is still
  /// single-writer (its own thread).
  mutable std::mutex mu_;
  std::map<std::thread::id, Timeline> roots_;
  std::atomic<int> open_branches_{0};
  std::atomic<LedgerObserver*> observer_{nullptr};
};

}  // namespace provcloud::sim
