// Wide-area request latency model.
//
// The paper's conclusion notes that a prototype would let them "measure the
// impact of the extra operations on elapsed time". The simulators charge
// each request a latency drawn from this model (per-request overhead plus
// bandwidth-proportional transfer time), so bench_cost_usd can report the
// elapsed-time impact of each architecture's extra operations (experiment
// A4 in DESIGN.md).
//
// Defaults approximate a 2009-era client on a university network talking to
// AWS us-east: ~40 ms request overhead, ~4 MB/s up, ~8 MB/s down.
#pragma once

#include <cstdint>

#include "sim/clock.hpp"
#include "util/rng.hpp"

namespace provcloud::sim {

struct LatencyConfig {
  SimTime request_overhead_min = 30 * kMillisecond;
  SimTime request_overhead_max = 60 * kMillisecond;
  std::uint64_t upload_bytes_per_sec = 4 * 1024 * 1024;
  std::uint64_t download_bytes_per_sec = 8 * 1024 * 1024;
};

class LatencyModel {
 public:
  LatencyModel() = default;
  explicit LatencyModel(LatencyConfig config) : config_(config) {}

  /// Latency of one request moving `bytes_in` to the service and
  /// `bytes_out` back.
  SimTime sample(util::Rng& rng, std::uint64_t bytes_in,
                 std::uint64_t bytes_out) const;

  const LatencyConfig& config() const { return config_; }

 private:
  LatencyConfig config_;
};

}  // namespace provcloud::sim
