#include "sim/metering.hpp"

namespace provcloud::sim {

std::uint64_t MeterSnapshot::calls(const std::string& service,
                                   const std::string& op) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters)
    if (key.first == service && (op.empty() || key.second == op))
      total += c.calls;
  return total;
}

std::uint64_t MeterSnapshot::bytes_in(const std::string& service,
                                      const std::string& op) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters)
    if (key.first == service && (op.empty() || key.second == op))
      total += c.bytes_in;
  return total;
}

std::uint64_t MeterSnapshot::bytes_out(const std::string& service,
                                       const std::string& op) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters)
    if (key.first == service && (op.empty() || key.second == op))
      total += c.bytes_out;
  return total;
}

std::uint64_t MeterSnapshot::storage_bytes(const std::string& service) const {
  auto it = storage.find(service);
  return it == storage.end() ? 0 : it->second;
}

std::uint64_t MeterSnapshot::total_calls() const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters) total += c.calls;
  return total;
}

MeterSnapshot MeterSnapshot::diff(const MeterSnapshot& earlier) const {
  MeterSnapshot out;
  for (const auto& [key, c] : counters) {
    OpCounter d = c;
    auto it = earlier.counters.find(key);
    if (it != earlier.counters.end()) {
      d.calls -= it->second.calls;
      d.bytes_in -= it->second.bytes_in;
      d.bytes_out -= it->second.bytes_out;
    }
    if (d.calls != 0 || d.bytes_in != 0 || d.bytes_out != 0)
      out.counters.emplace(key, d);
  }
  out.storage = storage;
  return out;
}

std::vector<MeterSnapshot::Key> MeterSnapshot::keys() const {
  std::vector<Key> out;
  out.reserve(counters.size());
  for (const auto& [key, c] : counters) out.push_back(key);
  return out;
}

void Meter::record(const std::string& service, const std::string& op,
                   std::uint64_t bytes_in, std::uint64_t bytes_out) {
  auto& c = state_.counters[{service, op}];
  ++c.calls;
  c.bytes_in += bytes_in;
  c.bytes_out += bytes_out;
}

void Meter::set_storage(const std::string& service, std::uint64_t bytes) {
  state_.storage[service] = bytes;
}

MeterSnapshot Meter::snapshot() const { return state_; }

void Meter::reset() { state_ = MeterSnapshot{}; }

}  // namespace provcloud::sim
