#include "sim/metering.hpp"

#include <functional>
#include <thread>

namespace provcloud::sim {

std::uint64_t MeterSnapshot::calls(const std::string& service,
                                   const std::string& op) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters)
    if (key.first == service && (op.empty() || key.second == op))
      total += c.calls;
  return total;
}

std::uint64_t MeterSnapshot::bytes_in(const std::string& service,
                                      const std::string& op) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters)
    if (key.first == service && (op.empty() || key.second == op))
      total += c.bytes_in;
  return total;
}

std::uint64_t MeterSnapshot::bytes_out(const std::string& service,
                                       const std::string& op) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters)
    if (key.first == service && (op.empty() || key.second == op))
      total += c.bytes_out;
  return total;
}

std::uint64_t MeterSnapshot::storage_bytes(const std::string& service) const {
  auto it = storage.find(service);
  return it == storage.end() ? 0 : it->second;
}

std::uint64_t MeterSnapshot::total_calls() const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters) total += c.calls;
  return total;
}

std::uint64_t MeterSnapshot::detail_calls(const std::string& service,
                                          const std::string& detail) const {
  auto it = detail_counters.find(Key{service, detail});
  return it == detail_counters.end() ? 0 : it->second.calls;
}

std::vector<std::string> MeterSnapshot::details(
    const std::string& service) const {
  std::vector<std::string> out;
  for (auto it = detail_counters.lower_bound(Key{service, ""});
       it != detail_counters.end() && it->first.first == service; ++it)
    out.push_back(it->first.second);
  return out;
}

namespace {
std::map<MeterSnapshot::Key, OpCounter> diff_counter_map(
    const std::map<MeterSnapshot::Key, OpCounter>& later,
    const std::map<MeterSnapshot::Key, OpCounter>& earlier) {
  std::map<MeterSnapshot::Key, OpCounter> out;
  for (const auto& [key, c] : later) {
    OpCounter d = c;
    auto it = earlier.find(key);
    if (it != earlier.end()) {
      d.calls -= it->second.calls;
      d.bytes_in -= it->second.bytes_in;
      d.bytes_out -= it->second.bytes_out;
    }
    if (d.calls != 0 || d.bytes_in != 0 || d.bytes_out != 0)
      out.emplace(key, d);
  }
  return out;
}
}  // namespace

MeterSnapshot MeterSnapshot::diff(const MeterSnapshot& earlier) const {
  MeterSnapshot out;
  out.counters = diff_counter_map(counters, earlier.counters);
  out.detail_counters =
      diff_counter_map(detail_counters, earlier.detail_counters);
  out.storage = storage;
  return out;
}

std::vector<MeterSnapshot::Key> MeterSnapshot::keys() const {
  std::vector<Key> out;
  out.reserve(counters.size());
  for (const auto& [key, c] : counters) out.push_back(key);
  return out;
}

Meter::Stripe& Meter::stripe_for_this_thread() {
  // One stripe per recording thread (hashed): a thread's bumps never share
  // cache lines with another's, and a single-threaded run uses one stripe.
  const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return stripes_[index];
}

namespace {
template <typename Map>
void bump(std::shared_mutex& mu, Map& map, const std::string& first,
          const std::string& second, std::uint64_t bytes_in,
          std::uint64_t bytes_out) {
  const std::pair<std::string_view, std::string_view> probe{first, second};
  {
    std::shared_lock<std::shared_mutex> lock(mu);
    auto it = map.find(probe);
    if (it != map.end()) {
      it->second.calls.fetch_add(1, std::memory_order_relaxed);
      it->second.bytes_in.fetch_add(bytes_in, std::memory_order_relaxed);
      it->second.bytes_out.fetch_add(bytes_out, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu);
  auto& c = map[MeterSnapshot::Key{first, second}];
  c.calls.fetch_add(1, std::memory_order_relaxed);
  c.bytes_in.fetch_add(bytes_in, std::memory_order_relaxed);
  c.bytes_out.fetch_add(bytes_out, std::memory_order_relaxed);
}
}  // namespace

void Meter::record(const std::string& service, const std::string& op,
                   std::uint64_t bytes_in, std::uint64_t bytes_out,
                   const std::string& detail) {
  Stripe& stripe = stripe_for_this_thread();
  bump(stripe.mu, stripe.counters, service, op, bytes_in, bytes_out);
  if (!detail.empty())
    bump(stripe.mu, stripe.details, service, detail, bytes_in, bytes_out);
}

void Meter::set_storage(const std::string& service, std::uint64_t bytes) {
  {
    std::shared_lock<std::shared_mutex> lock(storage_mu_);
    auto it = storage_.find(service);
    if (it != storage_.end()) {
      it->second.store(bytes, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(storage_mu_);
  storage_[service].store(bytes, std::memory_order_relaxed);
}

MeterSnapshot Meter::snapshot() const {
  MeterSnapshot out;
  for (const Stripe& stripe : stripes_) {
    std::shared_lock<std::shared_mutex> lock(stripe.mu);
    for (const auto& [key, c] : stripe.counters) {
      OpCounter& plain = out.counters[key];
      plain.calls += c.calls.load(std::memory_order_relaxed);
      plain.bytes_in += c.bytes_in.load(std::memory_order_relaxed);
      plain.bytes_out += c.bytes_out.load(std::memory_order_relaxed);
    }
    for (const auto& [key, c] : stripe.details) {
      OpCounter& plain = out.detail_counters[key];
      plain.calls += c.calls.load(std::memory_order_relaxed);
      plain.bytes_in += c.bytes_in.load(std::memory_order_relaxed);
      plain.bytes_out += c.bytes_out.load(std::memory_order_relaxed);
    }
  }
  std::shared_lock<std::shared_mutex> lock(storage_mu_);
  for (const auto& [service, bytes] : storage_)
    out.storage.emplace(service, bytes.load(std::memory_order_relaxed));
  return out;
}

void Meter::reset() {
  for (Stripe& stripe : stripes_) {
    std::unique_lock<std::shared_mutex> lock(stripe.mu);
    stripe.counters.clear();
    stripe.details.clear();
  }
  std::unique_lock<std::shared_mutex> lock(storage_mu_);
  storage_.clear();
}

}  // namespace provcloud::sim
