// Virtual time.
//
// The whole system runs on a discrete-event simulated clock: replica
// propagation, SQS visibility timeouts, message retention, and daemon wakeups
// are events scheduled on this clock. Tests advance time explicitly, which
// makes eventual consistency *controllable*: a test can hold the system in
// the inconsistent window, observe stale reads, then advance past the window
// and observe convergence.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

namespace provcloud::sim {

/// Microseconds of simulated time since the epoch of the run.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;
inline constexpr SimTime kDay = 24 * kHour;

/// Thread-safety contract: schedule_at/schedule_after/now/pending_events
/// may be called from shard-parallel worker threads (replicated writes
/// schedule their propagation here). Advancing time (advance_to/advance_by/
/// drain) is a driver-thread *synchronization point* and must not overlap a
/// parallel fan-out: event callbacks mutate service replicas, so firing them
/// mid-scatter would race the very state the scatter is reading. Nothing on
/// the request path advances the clock anymore -- latency is recorded on
/// per-client timelines (sim::LatencyLedger) -- and the environment installs
/// an advance guard that rejects an advance while any ledger branch is open.
class SimClock {
 public:
  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  SimTime now() const { return now_.load(std::memory_order_relaxed); }

  /// Schedule fn to run at absolute time `when` (clamped to now). Events at
  /// the same instant run in scheduling order.
  void schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule fn to run `delay` after now.
  void schedule_after(SimTime delay, std::function<void()> fn);

  /// Advance to `when`, firing every event due on the way (including events
  /// that scheduled further events within the window).
  void advance_to(SimTime when);

  /// Advance by `delta`.
  void advance_by(SimTime delta) { advance_to(now_ + delta); }

  /// Run every pending event regardless of its timestamp; the clock jumps to
  /// the last event time. This is "wait for quiescence": after it returns,
  /// all scheduled propagation has happened (used to realize *eventual*
  /// consistency in tests and recovery procedures).
  void drain();

  std::size_t pending_events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  /// Install a check that runs at the top of every advance_to/drain. The
  /// owning environment uses it to assert that no parallel fan-out is in
  /// flight (see the thread-safety contract above); the guard throws to
  /// reject the advance.
  void set_advance_guard(std::function<void()> guard) {
    advance_guard_ = std::move(guard);
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::atomic<SimTime> now_{0};
  std::function<void()> advance_guard_;  // set once at env construction
  mutable std::mutex mu_;  // guards next_seq_ and events_
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace provcloud::sim
