#include "sim/failure.hpp"

namespace provcloud::sim {

void FailureInjector::arm_crash(const std::string& point, std::uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& st = points_[point];
  st.crash_at = st.hits + nth;
}

void FailureInjector::disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.crash_at = 0;
}

void FailureInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  observed_order_.clear();
}

void FailureInjector::crash_point(const std::string& point) {
  bool crash = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = points_.try_emplace(point);
    if (inserted) observed_order_.push_back(point);
    auto& st = it->second;
    ++st.hits;
    if (st.crash_at != 0 && st.hits == st.crash_at) {
      st.crash_at = 0;  // one-shot
      crash = true;
    }
  }
  if (hit_hook_) hit_hook_(point, crash);
  if (crash) throw CrashError(point);
}

std::uint64_t FailureInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

}  // namespace provcloud::sim
