#include "sim/clock.hpp"

#include "util/require.hpp"

namespace provcloud::sim {

void SimClock::schedule_at(SimTime when, std::function<void()> fn) {
  PROVCLOUD_REQUIRE(fn != nullptr);
  const SimTime now = now_.load(std::memory_order_relaxed);
  if (when < now) when = now;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

void SimClock::schedule_after(SimTime delay, std::function<void()> fn) {
  schedule_at(now() + delay, std::move(fn));
}

void SimClock::advance_to(SimTime when) {
  if (advance_guard_) advance_guard_();
  PROVCLOUD_REQUIRE_MSG(when >= now(), "SimClock cannot move backwards");
  // Pop one event at a time and fire it *outside* the queue lock: callbacks
  // lock service state and may schedule further events, so holding mu_
  // across them would invert lock order against parallel schedulers.
  for (;;) {
    Event ev;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (events_.empty() || events_.top().when > when) break;
      ev = events_.top();
      events_.pop();
    }
    now_.store(ev.when, std::memory_order_relaxed);
    ev.fn();
  }
  now_.store(when, std::memory_order_relaxed);
}

void SimClock::drain() {
  if (advance_guard_) advance_guard_();
  for (;;) {
    Event ev;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (events_.empty()) break;
      ev = events_.top();
      events_.pop();
    }
    if (ev.when > now()) now_.store(ev.when, std::memory_order_relaxed);
    ev.fn();
  }
}

}  // namespace provcloud::sim
