#include "sim/clock.hpp"

#include "util/require.hpp"

namespace provcloud::sim {

void SimClock::schedule_at(SimTime when, std::function<void()> fn) {
  PROVCLOUD_REQUIRE(fn != nullptr);
  if (when < now_) when = now_;
  events_.push(Event{when, next_seq_++, std::move(fn)});
}

void SimClock::schedule_after(SimTime delay, std::function<void()> fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void SimClock::advance_to(SimTime when) {
  PROVCLOUD_REQUIRE_MSG(when >= now_, "SimClock cannot move backwards");
  while (!events_.empty() && events_.top().when <= when) {
    Event ev = events_.top();
    events_.pop();
    now_ = ev.when;
    ev.fn();
  }
  now_ = when;
}

void SimClock::drain() {
  while (!events_.empty()) {
    Event ev = events_.top();
    events_.pop();
    if (ev.when > now_) now_ = ev.when;
    ev.fn();
  }
}

}  // namespace provcloud::sim
