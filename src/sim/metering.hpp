// Billing meters.
//
// Amazon bills by operation counts, bytes transferred in/out, and bytes
// stored (section 2 of the paper). Every simulated service records each
// request here; Tables 2 and 3 are produced by diffing meter snapshots
// around a workload or a query, and src/cost turns snapshots into USD.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace provcloud::sim {

/// One (service, operation) counter line, e.g. ("s3", "PUT").
struct OpCounter {
  std::uint64_t calls = 0;
  std::uint64_t bytes_in = 0;   // payload bytes sent to the service
  std::uint64_t bytes_out = 0;  // payload bytes returned to the client
};

/// Immutable copy of the meter at an instant.
class MeterSnapshot {
 public:
  using Key = std::pair<std::string, std::string>;  // (service, op)

  std::uint64_t calls(const std::string& service, const std::string& op = "") const;
  std::uint64_t bytes_in(const std::string& service, const std::string& op = "") const;
  std::uint64_t bytes_out(const std::string& service, const std::string& op = "") const;
  std::uint64_t storage_bytes(const std::string& service) const;

  /// Total calls across all services/ops.
  std::uint64_t total_calls() const;

  /// Calls recorded against one detail (partition) of a service -- e.g. the
  /// SimpleDB shard domain or the SQS queue the request hit. Per-shard
  /// hotness is detail_calls(service, domain) across domains().
  std::uint64_t detail_calls(const std::string& service,
                             const std::string& detail) const;
  /// Every detail recorded for a service, in lexicographic order.
  std::vector<std::string> details(const std::string& service) const;

  /// this - earlier, counter-wise (storage gauges are copied from `this`,
  /// since storage is a level, not a flow).
  MeterSnapshot diff(const MeterSnapshot& earlier) const;

  /// All (service, op) keys present.
  std::vector<Key> keys() const;

  std::map<Key, OpCounter> counters;
  /// Per-partition view, keyed (service, detail): the same requests as
  /// `counters`, re-bucketed by the service partition they hit (SimpleDB
  /// domain, SQS queue). Requests recorded without a detail appear only in
  /// `counters`.
  std::map<Key, OpCounter> detail_counters;
  std::map<std::string, std::uint64_t> storage;  // service -> bytes stored
};

/// Thread-safe: shard-parallel scatter/gather issues service calls (and
/// therefore records) concurrently, all landing in this one bill. Counter
/// totals are order-independent, so parallel runs meter identically to
/// sequential ones.
///
/// record() sits on every simulated request, so the counters are striped
/// by recording thread: each thread bumps its own stripe's cells (no
/// shared cache lines on the hot path) and snapshot() sums the stripes.
/// One thread always lands in one stripe, so the single-threaded bill is
/// the plain sequential count it always was.
class Meter {
 public:
  /// `detail` optionally names the service partition the request hit (the
  /// SimpleDB shard domain, the SQS queue): billing counters are unchanged,
  /// but the snapshot gains a per-detail breakdown for hotness analysis.
  void record(const std::string& service, const std::string& op,
              std::uint64_t bytes_in, std::uint64_t bytes_out,
              const std::string& detail = "");

  /// Set the current stored-byte gauge for a service (called by the service
  /// whenever its footprint changes).
  void set_storage(const std::string& service, std::uint64_t bytes);

  /// Coherent only when no recorder is mid-flight (drivers snapshot between
  /// parallel sections, never inside one).
  MeterSnapshot snapshot() const;
  void reset();

 private:
  struct AtomicCounter {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
  };
  /// Heterogeneous compare so record() can probe with string_views and only
  /// materialize key strings on first-ever insertion.
  struct KeyLess {
    using is_transparent = void;
    template <typename A, typename B, typename C, typename D>
    bool operator()(const std::pair<A, B>& a, const std::pair<C, D>& b) const {
      const int first = std::string_view(a.first).compare(b.first);
      if (first != 0) return first < 0;
      return std::string_view(a.second) < std::string_view(b.second);
    }
  };
  struct alignas(64) Stripe {  // cache-line aligned: stripes never false-share
    mutable std::shared_mutex mu;  // guards map *structure*; cells are atomic
    std::map<MeterSnapshot::Key, AtomicCounter, KeyLess> counters;
    std::map<MeterSnapshot::Key, AtomicCounter, KeyLess> details;
  };
  static constexpr std::size_t kStripes = 16;

  Stripe& stripe_for_this_thread();

  Stripe stripes_[kStripes];
  mutable std::shared_mutex storage_mu_;
  std::map<std::string, std::atomic<std::uint64_t>, std::less<>> storage_;
};

}  // namespace provcloud::sim
