// Billing meters.
//
// Amazon bills by operation counts, bytes transferred in/out, and bytes
// stored (section 2 of the paper). Every simulated service records each
// request here; Tables 2 and 3 are produced by diffing meter snapshots
// around a workload or a query, and src/cost turns snapshots into USD.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace provcloud::sim {

/// One (service, operation) counter line, e.g. ("s3", "PUT").
struct OpCounter {
  std::uint64_t calls = 0;
  std::uint64_t bytes_in = 0;   // payload bytes sent to the service
  std::uint64_t bytes_out = 0;  // payload bytes returned to the client
};

/// Immutable copy of the meter at an instant.
class MeterSnapshot {
 public:
  using Key = std::pair<std::string, std::string>;  // (service, op)

  std::uint64_t calls(const std::string& service, const std::string& op = "") const;
  std::uint64_t bytes_in(const std::string& service, const std::string& op = "") const;
  std::uint64_t bytes_out(const std::string& service, const std::string& op = "") const;
  std::uint64_t storage_bytes(const std::string& service) const;

  /// Total calls across all services/ops.
  std::uint64_t total_calls() const;

  /// this - earlier, counter-wise (storage gauges are copied from `this`,
  /// since storage is a level, not a flow).
  MeterSnapshot diff(const MeterSnapshot& earlier) const;

  /// All (service, op) keys present.
  std::vector<Key> keys() const;

  std::map<Key, OpCounter> counters;
  std::map<std::string, std::uint64_t> storage;  // service -> bytes stored
};

class Meter {
 public:
  void record(const std::string& service, const std::string& op,
              std::uint64_t bytes_in, std::uint64_t bytes_out);

  /// Set the current stored-byte gauge for a service (called by the service
  /// whenever its footprint changes).
  void set_storage(const std::string& service, std::uint64_t bytes);

  MeterSnapshot snapshot() const;
  void reset();

 private:
  MeterSnapshot state_;
};

}  // namespace provcloud::sim
