// Bounded task executor for shard-parallel scatter/gather fan-out.
//
// The simulators are deterministic; the protocols around them are not
// allowed to be anything else. The executor therefore has two modes:
//
//   parallelism <= 1  -- no threads at all. run_all() executes the tasks
//                        inline, in submission order, on the caller's
//                        thread. Every service call, meter record and RNG
//                        draw happens in exactly the sequence the old
//                        sequential loops produced, so single-threaded
//                        configurations reproduce prior behaviour
//                        bit-for-bit (billing included).
//
//   parallelism  > 1  -- a fixed pool of std::threads started once and
//                        reused for every batch. Tasks are claimed by
//                        index, so callers that write results into
//                        index-addressed slots gather deterministic
//                        *values* regardless of interleaving; only the
//                        order of service-level side effects (meter
//                        line interleaving, RNG draw order) may differ.
//
// run_all() blocks until every task of the batch has finished. The first
// exception thrown by any task is captured and rethrown to the caller
// after the batch completes (remaining tasks still run; protocol code
// relies on crash injection surfacing as an exception, not a deadlock).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace provcloud::util {

class Executor {
 public:
  /// `parallelism` is the number of concurrent tasks allowed; the pool
  /// holds parallelism worker threads when > 1, none otherwise.
  explicit Executor(std::size_t parallelism = 1);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t parallelism() const { return parallelism_; }

  /// Run every task to completion. Inline and in order when the executor
  /// is single-threaded; otherwise distributed over the pool. Batches from
  /// concurrent callers are serialized, never interleaved.
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  void worker_loop();
  void run_inline(std::vector<std::function<void()>>& tasks);

  const std::size_t parallelism_;
  std::vector<std::thread> workers_;

  std::mutex batch_mu_;  // one batch at a time

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>>* tasks_ = nullptr;
  std::size_t next_ = 0;
  std::size_t remaining_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace provcloud::util
