// MD5 (RFC 1321), implemented from scratch -- no external crypto dependency.
//
// The paper's Architectures 2 and 3 store MD5(data || nonce) in SimpleDB to
// detect data/provenance inconsistency under eventual consistency. MD5 is
// used here exactly as the paper uses it: as a content fingerprint, not as a
// security primitive.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace provcloud::util {

class Md5 {
 public:
  using Digest = std::array<std::uint8_t, 16>;

  Md5();

  /// Absorb more input. May be called repeatedly.
  void update(BytesView data);

  /// Finalize and return the 16-byte digest. The object must not be reused
  /// after finish() without reset().
  Digest finish();

  void reset();

  /// One-shot helpers.
  static Digest digest(BytesView data);
  static std::string hex_digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_len_ = 0;       // bytes absorbed so far
  std::array<std::uint8_t, 64> buf_;  // partial block
  std::size_t buf_len_ = 0;
  bool finished_ = false;
};

/// MD5(data || nonce) rendered as lowercase hex -- the consistency token the
/// paper stores in SimpleDB next to the provenance (section 4.2).
std::string md5_with_nonce(BytesView data, BytesView nonce);

}  // namespace provcloud::util
