#include "util/rng.hpp"

#include <cmath>

#include "util/require.hpp"

namespace provcloud::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  PROVCLOUD_REQUIRE(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_in(std::uint64_t lo, std::uint64_t hi) {
  PROVCLOUD_REQUIRE(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == UINT64_MAX) return next_u64();
  return lo + next_below(span + 1);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return next_double() < p;
}

std::uint64_t Rng::next_log_uniform(std::uint64_t lo, std::uint64_t hi) {
  PROVCLOUD_REQUIRE(lo > 0 && lo <= hi);
  if (lo == hi) return lo;
  const double u = next_double();
  const double v = static_cast<double>(lo) *
                   std::pow(static_cast<double>(hi) / static_cast<double>(lo), u);
  const auto r = static_cast<std::uint64_t>(v);
  return r < lo ? lo : (r > hi ? hi : r);
}

Rng Rng::fork(std::uint64_t stream) {
  return Rng(next_u64() ^ (stream * 0x9e3779b97f4a7c15ull + 0x1234567890abcdefull));
}

std::string Rng::next_hex(std::size_t n) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(kDigits[next_below(16)]);
  return out;
}

}  // namespace provcloud::util
