// A test-and-set spinlock for critical sections of a few dozen
// nanoseconds (one RNG draw, one counter bump). Under shard-parallel
// fan-out such sections are entered millions of times; a std::mutex
// handoff there costs more than the section itself (futex round trips),
// while a briefly-spun flag stays in userspace.
#pragma once

#include <atomic>
#include <thread>

namespace provcloud::util {

class Spinlock {
 public:
  void lock() {
    for (int spins = 0; flag_.test_and_set(std::memory_order_acquire);) {
      // Spin a while (the holder is only nanoseconds away from releasing),
      // then yield so a descheduled holder can run.
      if (++spins >= 1024) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace provcloud::util
