// Leveled logging to stderr, off by default so tests and benches stay quiet.
// Enable with Logger::set_level or the PROVCLOUD_LOG environment variable
// (trace|debug|info|warn|error).
#pragma once

#include <sstream>
#include <string>

namespace provcloud::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static bool enabled(LogLevel level) { return level >= Logger::level(); }
  static void write(LogLevel level, const std::string& component,
                    const std::string& message);
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::write(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace provcloud::util

#define PROVCLOUD_LOG(level, component)                                     \
  if (::provcloud::util::Logger::enabled(level))                            \
  ::provcloud::util::detail::LogLine(level, component)

#define PROVCLOUD_DEBUG(component) \
  PROVCLOUD_LOG(::provcloud::util::LogLevel::kDebug, component)
#define PROVCLOUD_INFO(component) \
  PROVCLOUD_LOG(::provcloud::util::LogLevel::kInfo, component)
#define PROVCLOUD_WARN(component) \
  PROVCLOUD_LOG(::provcloud::util::LogLevel::kWarn, component)
