// Leveled structured logging to stderr, off by default so tests and benches
// stay quiet. Enable with Logger::set_level or the PROVCLOUD_LOG environment
// variable (trace|debug|info|warn|error).
//
// Lines are key=value structured:
//
//   level=info comp=session track=3 span=17 msg="flush group=8"
//
// track/span are the calling thread's current trace context (set by
// obs::Span while a span is open), so log lines correlate 1:1 with spans in
// an exported trace; they are omitted when no span is open.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace provcloud::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Per-thread trace correlation ids stamped onto log lines. 0 means unset.
/// obs::Span saves/sets/restores these around its scope; anything else may
/// read them (they are plain thread-local values, no synchronization).
struct LogContext {
  std::uint64_t track = 0;
  std::uint64_t span = 0;
};

LogContext& log_context();

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static bool enabled(LogLevel level) { return level >= Logger::level(); }
  static void write(LogLevel level, const std::string& component,
                    const std::string& message);
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() { Logger::write(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace provcloud::util

#define PROVCLOUD_LOG(level, component)                                     \
  if (::provcloud::util::Logger::enabled(level))                            \
  ::provcloud::util::detail::LogLine(level, component)

#define PROVCLOUD_DEBUG(component) \
  PROVCLOUD_LOG(::provcloud::util::LogLevel::kDebug, component)
#define PROVCLOUD_INFO(component) \
  PROVCLOUD_LOG(::provcloud::util::LogLevel::kInfo, component)
#define PROVCLOUD_WARN(component) \
  PROVCLOUD_LOG(::provcloud::util::LogLevel::kWarn, component)
#define PROVCLOUD_ERROR(component) \
  PROVCLOUD_LOG(::provcloud::util::LogLevel::kError, component)
