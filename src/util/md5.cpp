#include "util/md5.hpp"

#include <cstring>

#include "util/hex.hpp"
#include "util/require.hpp"

namespace provcloud::util {
namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

constexpr std::array<std::uint32_t, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

std::uint32_t rotl(std::uint32_t x, std::uint32_t c) {
  return (x << c) | (x >> (32 - c));
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

Md5::Md5() { reset(); }

void Md5::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u};
  total_len_ = 0;
  buf_len_ = 0;
  finished_ = false;
}

void Md5::process_block(const std::uint8_t* block) {
  std::array<std::uint32_t, 16> m;
  for (int i = 0; i < 16; ++i) m[static_cast<std::size_t>(i)] = load_le32(block + 4 * i);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  for (std::uint32_t i = 0; i < 64; ++i) {
    std::uint32_t f = 0, g = 0;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kK[i] + m[g], kShift[i]);
    a = tmp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(BytesView data) {
  PROVCLOUD_REQUIRE_MSG(!finished_, "Md5::update after finish");
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t need = 64 - buf_len_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == 64) {
      process_block(buf_.data());
      buf_len_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    process_block(reinterpret_cast<const std::uint8_t*>(data.data()) + off);
    off += 64;
  }
  if (off < data.size()) {
    buf_len_ = data.size() - off;
    std::memcpy(buf_.data(), data.data() + off, buf_len_);
  }
}

Md5::Digest Md5::finish() {
  PROVCLOUD_REQUIRE_MSG(!finished_, "Md5::finish called twice");
  finished_ = true;

  const std::uint64_t bit_len = total_len_ * 8;
  // Append 0x80 then zero padding so that length ≡ 56 (mod 64), then the
  // 64-bit little-endian bit length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t pad_len =
      (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
  finished_ = false;  // allow the two updates below
  update(BytesView(reinterpret_cast<const char*>(pad), pad_len));
  std::uint8_t len_le[8];
  for (int i = 0; i < 8; ++i)
    len_le[i] = static_cast<std::uint8_t>((bit_len >> (8 * i)) & 0xff);
  // The length bytes must not count toward total_len_; it is already final.
  const std::uint64_t saved = total_len_;
  update(BytesView(reinterpret_cast<const char*>(len_le), 8));
  total_len_ = saved;
  finished_ = true;
  PROVCLOUD_REQUIRE(buf_len_ == 0);

  Digest out;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      out[static_cast<std::size_t>(4 * i + j)] =
          static_cast<std::uint8_t>((state_[static_cast<std::size_t>(i)] >> (8 * j)) & 0xff);
  return out;
}

Md5::Digest Md5::digest(BytesView data) {
  Md5 h;
  h.update(data);
  return h.finish();
}

std::string Md5::hex_digest(BytesView data) {
  const Digest d = digest(data);
  return hex_encode(BytesView(reinterpret_cast<const char*>(d.data()), d.size()));
}

std::string md5_with_nonce(BytesView data, BytesView nonce) {
  Md5 h;
  h.update(data);
  h.update(nonce);
  const Md5::Digest d = h.finish();
  return hex_encode(BytesView(reinterpret_cast<const char*>(d.data()), d.size()));
}

}  // namespace provcloud::util
