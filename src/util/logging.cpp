#include "util/logging.hpp"

#include <cstdlib>
#include <iostream>

namespace provcloud::util {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("PROVCLOUD_LOG");
  if (env == nullptr) return LogLevel::kOff;
  const std::string v(env);
  if (v == "trace") return LogLevel::kTrace;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel& level_ref() {
  static LogLevel level = parse_env_level();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return level_ref(); }

void Logger::set_level(LogLevel level) { level_ref() = level; }

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  std::cerr << "[" << level_name(level) << "] " << component << ": " << message
            << '\n';
}

}  // namespace provcloud::util
