#include "util/logging.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace provcloud::util {
namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("PROVCLOUD_LOG");
  if (env == nullptr) return LogLevel::kOff;
  const std::string v(env);
  if (v == "trace") return LogLevel::kTrace;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel& level_ref() {
  static LogLevel level = parse_env_level();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

/// msg payloads are free text: quote them, escaping the characters that
/// would break the key=value framing.
void append_quoted(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

LogContext& log_context() {
  thread_local LogContext ctx;
  return ctx;
}

LogLevel Logger::level() { return level_ref(); }

void Logger::set_level(LogLevel level) { level_ref() = level; }

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  std::string line = "level=";
  line += level_name(level);
  line += " comp=";
  line += component;
  const LogContext& ctx = log_context();
  if (ctx.track != 0) {
    line += " track=";
    line += std::to_string(ctx.track);
  }
  if (ctx.span != 0) {
    line += " span=";
    line += std::to_string(ctx.span);
  }
  line += " msg=";
  append_quoted(line, message);
  line += '\n';
  // One syscall-ish write per line so concurrent threads do not interleave
  // mid-line; cerr is unbuffered but operator<< chains are not atomic.
  static std::mutex io_mu;
  std::lock_guard<std::mutex> lock(io_mu);
  std::cerr << line;
}

}  // namespace provcloud::util
