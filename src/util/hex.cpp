#include "util/hex.hpp"

namespace provcloud::util {
namespace {
constexpr char kDigits[] = "0123456789abcdef";

int digit_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex_encode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (unsigned char c : data) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

std::optional<Bytes> hex_decode(BytesView hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = digit_value(hex[i]);
    const int lo = digit_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::string hex_u64(std::uint64_t v) {
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace provcloud::util
