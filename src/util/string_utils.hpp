// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace provcloud::util {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Join with a delimiter.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Human-readable byte count ("121.8MB") matching the paper's table style.
std::string format_bytes(std::uint64_t bytes);

/// Thousands-separated integer ("31,180") matching the paper's table style.
std::string format_count(std::uint64_t n);

/// Fixed-point percentage string ("9.3%").
std::string format_percent(double fraction, int decimals = 1);

/// Escape a string so it is safe as a single field in our record wire
/// formats (escapes '%', ';', '=', ',' and newline as %XX).
std::string field_escape(std::string_view s);
std::string field_unescape(std::string_view s);

}  // namespace provcloud::util
