// Byte-buffer vocabulary types used across the library.
//
// Payloads (S3 object contents, SQS message bodies) are byte strings. We use
// std::string as the underlying representation because the AWS wire formats
// in this paper's era are textual, and because it gives us cheap literals in
// tests. Immutable payloads are shared via SharedBytes so that simulated
// replicas of the same object do not multiply memory.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace provcloud::util {

using Bytes = std::string;
using BytesView = std::string_view;

/// Immutable, reference-counted payload. Replicated stores hand these out so
/// that N replicas of a 1 MB object cost 1 MB, not N MB.
using SharedBytes = std::shared_ptr<const Bytes>;

inline SharedBytes make_shared_bytes(Bytes b) {
  return std::make_shared<const Bytes>(std::move(b));
}

inline SharedBytes make_shared_bytes(BytesView v) {
  return std::make_shared<const Bytes>(v);
}

/// Size constants used throughout the AWS limits.
inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

}  // namespace provcloud::util
