#include "util/executor.hpp"

namespace provcloud::util {

Executor::Executor(std::size_t parallelism)
    : parallelism_(parallelism == 0 ? 1 : parallelism) {
  if (parallelism_ <= 1) return;
  workers_.reserve(parallelism_);
  for (std::size_t i = 0; i < parallelism_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Executor::run_inline(std::vector<std::function<void()>>& tasks) {
  for (std::function<void()>& task : tasks) task();
}

void Executor::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty() || tasks.size() == 1) {
    run_inline(tasks);
    return;
  }
  std::lock_guard<std::mutex> batch(batch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = &tasks;
    next_ = 0;
    remaining_ = tasks.size();
    first_error_ = nullptr;
  }
  work_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    tasks_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

void Executor::worker_loop() {
  for (;;) {
    std::function<void()>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (tasks_ != nullptr && next_ < tasks_->size());
      });
      if (stop_) return;
      task = &(*tasks_)[next_++];
    }
    std::exception_ptr error;
    try {
      (*task)();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace provcloud::util
