// Minimal Expected<T, E>: a value or an error, C++20 (std::expected is
// C++23). Service calls whose failures are part of normal operation --
// eventual consistency returning NoSuchKey right after a PUT, SQS sampling
// returning nothing -- return Expected rather than throwing.
#pragma once

#include <utility>
#include <variant>

#include "util/require.hpp"

namespace provcloud::util {

template <typename E>
class Unexpected {
 public:
  explicit Unexpected(E e) : error_(std::move(e)) {}
  const E& error() const& { return error_; }
  E&& error() && { return std::move(error_); }

 private:
  E error_;
};

template <typename E>
Unexpected(E) -> Unexpected<E>;
// String literals should produce string errors, not const char* errors.
Unexpected(const char*) -> Unexpected<std::string>;

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> u)
      : state_(std::in_place_index<1>, std::move(u).error()) {}

  bool has_value() const { return state_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  const T& value() const& {
    PROVCLOUD_REQUIRE_MSG(has_value(), "Expected: value() on error state");
    return std::get<0>(state_);
  }
  T& value() & {
    PROVCLOUD_REQUIRE_MSG(has_value(), "Expected: value() on error state");
    return std::get<0>(state_);
  }
  T&& value() && {
    PROVCLOUD_REQUIRE_MSG(has_value(), "Expected: value() on error state");
    return std::get<0>(std::move(state_));
  }

  const E& error() const& {
    PROVCLOUD_REQUIRE_MSG(!has_value(), "Expected: error() on value state");
    return std::get<1>(state_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const& {
    return has_value() ? std::get<0>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, E> state_;
};

/// Expected<void, E> specialization: success or error.
template <typename E>
class Expected<void, E> {
 public:
  Expected() : has_value_(true) {}
  Expected(Unexpected<E> u) : has_value_(false), error_(std::move(u).error()) {}

  bool has_value() const { return has_value_; }
  explicit operator bool() const { return has_value_; }

  const E& error() const& {
    PROVCLOUD_REQUIRE_MSG(!has_value_, "Expected: error() on value state");
    return error_;
  }

 private:
  bool has_value_;
  E error_{};
};

}  // namespace provcloud::util
