// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulators (replica propagation delays,
// which replica serves a read, which SQS shards a receive samples, workload
// file sizes) draws from an Rng owned by the CloudEnv, so an entire
// experiment replays bit-identically from a single seed.
//
// Implementation: xoshiro256** seeded via splitmix64 (public-domain
// algorithms by Blackman & Vigna).
#pragma once

#include <cstdint>
#include <string>

namespace provcloud::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli with probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Geometric-ish heavy-tailed size in [lo, hi]: the distribution of file
  /// sizes in the paper's workloads is heavily skewed; we model size as
  /// lo * (hi/lo)^u for uniform u, i.e. log-uniform.
  std::uint64_t next_log_uniform(std::uint64_t lo, std::uint64_t hi);

  /// Fork a child generator with an independent stream derived from this
  /// generator's state and the given stream label.
  Rng fork(std::uint64_t stream);

  /// Random lowercase-hex string of n characters.
  std::string next_hex(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace provcloud::util
