#include "util/string_utils.hpp"

#include <array>
#include <cstdio>

namespace provcloud::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0)
    std::snprintf(buf, sizeof buf, "%llu%s",
                  static_cast<unsigned long long>(bytes), kUnits[unit]);
  else
    std::snprintf(buf, sizeof buf, "%.1f%s", v, kUnits[unit]);
  return buf;
}

std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int seen = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (seen > 0 && seen % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++seen;
  }
  return {out.rbegin(), out.rend()};
}

std::string format_percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

namespace {
bool needs_escape(char c) {
  return c == '%' || c == ';' || c == '=' || c == ',' || c == '\n';
}
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string field_escape(std::string_view s) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (needs_escape(c)) {
      const auto u = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kDigits[u >> 4]);
      out.push_back(kDigits[u & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string field_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_val(s[i + 1]);
      const int lo = hex_val(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace provcloud::util
