// Lowercase hex encoding/decoding for digests, nonces and transaction ids.
#pragma once

#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace provcloud::util {

/// Encode bytes as lowercase hex ("abc" -> "616263").
std::string hex_encode(BytesView data);

/// Decode lowercase or uppercase hex; nullopt on odd length or bad digit.
std::optional<Bytes> hex_decode(BytesView hex);

/// Render a 64-bit value as 16 hex digits (zero padded).
std::string hex_u64(std::uint64_t v);

}  // namespace provcloud::util
