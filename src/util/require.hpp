// Precondition / invariant checking.
//
// PROVCLOUD_REQUIRE is for programming errors: violated preconditions and
// broken invariants. It throws LogicError so tests can assert on misuse.
// Expected, recoverable failures (service errors under eventual consistency)
// never go through here — they are carried in util::Expected<T>.
#pragma once

#include <stdexcept>
#include <string>

namespace provcloud::util {

class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw LogicError(std::string("requirement failed: ") + expr + " at " + file +
                   ":" + std::to_string(line) + (msg.empty() ? "" : ": " + msg));
}

}  // namespace provcloud::util

#define PROVCLOUD_REQUIRE(expr)                                              \
  do {                                                                       \
    if (!(expr))                                                             \
      ::provcloud::util::require_failed(#expr, __FILE__, __LINE__, {});      \
  } while (0)

#define PROVCLOUD_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                       \
    if (!(expr))                                                             \
      ::provcloud::util::require_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
