#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

#include "util/logging.hpp"

namespace provcloud::obs {

namespace {

/// Monotonic span ids for log correlation, global so ids stay unique even
/// across several tracers (one per CloudEnv) in one process.
std::atomic<std::uint64_t> g_next_span_id{1};

void json_escape_into(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

int Tracer::track_locked(const void* timeline) {
  // An open Branch scope shadows any persistent identity of the same
  // address (stack slots recur across sequential branches).
  auto open = open_branches_.find(timeline);
  if (open != open_branches_.end() && !open->second.empty())
    return open->second.back();
  auto it = tracks_.find(timeline);
  if (it != tracks_.end()) return it->second;
  const int tid = next_tid_++;
  tracks_.emplace(timeline, tid);
  track_names_.emplace(tid, "track-" + std::to_string(tid));
  return tid;
}

void Tracer::record(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::name_track(const void* timeline, std::string_view name) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const int tid = track_locked(timeline);
  auto& current = track_names_[tid];
  if (current.compare(0, 6, "track-") == 0)
    current.assign(name.begin(), name.end());
}

void Tracer::begin_track(const void* timeline, std::string_view name) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const int tid = next_tid_++;
  tracks_[timeline] = tid;
  track_names_[tid].assign(name.begin(), name.end());
}

void Tracer::complete(const void* timeline, std::string_view name,
                      std::string_view cat, sim::SimTime ts, sim::SimTime dur,
                      std::vector<TraceArg> args) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::string(name), std::string(cat), 'X',
                          track_locked(timeline), ts, dur, std::move(args)});
}

void Tracer::instant(std::string_view name, std::string_view cat,
                     std::vector<TraceArg> args) {
  if (!enabled() || ledger_ == nullptr || clock_ == nullptr) return;
  const void* timeline = ledger_->active_timeline_id();
  const sim::SimTime ts = clock_->now() + ledger_->active_elapsed();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::string(name), std::string(cat), 'i',
                          track_locked(timeline), ts, 0, std::move(args)});
}

int Tracer::track_id(const void* timeline) {
  std::lock_guard<std::mutex> lock(mu_);
  return track_locked(timeline);
}

sim::SimTime Tracer::now_on_active_track() const {
  if (clock_ == nullptr || ledger_ == nullptr) return 0;
  return clock_->now() + ledger_->active_elapsed();
}

const void* Tracer::active_track() const {
  return ledger_ == nullptr ? nullptr : ledger_->active_timeline_id();
}

void Tracer::on_charge(const void* timeline, sim::SimTime start_elapsed,
                       sim::SimTime latency, std::string_view service) {
  if (!enabled() || clock_ == nullptr) return;
  const sim::SimTime ts = clock_->now() + start_elapsed;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{
      service.empty() ? std::string("charge") : std::string(service),
      std::string("ledger"), 'X', track_locked(timeline), ts, latency, {}});
}

void Tracer::on_scope_open(const void* timeline, bool is_branch) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (is_branch) {
    const int tid = next_tid_++;
    open_branches_[timeline].push_back(tid);
    track_names_.emplace(tid, "branch-" + std::to_string(tid));
  } else {
    track_locked(timeline);  // ensure the persistent track exists
  }
}

void Tracer::on_scope_close(const void* timeline, bool is_branch) {
  if (!enabled() || !is_branch) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_branches_.find(timeline);
  if (it != open_branches_.end() && !it->second.empty()) {
    it->second.pop_back();
    if (it->second.empty()) open_branches_.erase(it);
  }
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<Tracer::Event> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  tracks_.clear();
  open_branches_.clear();
  track_names_.clear();
  next_tid_ = 1;
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&out, &first] {
    if (!first) out += ',';
    first = false;
  };
  comma();
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"provcloud\"}}";
  for (const auto& [tid, name] : track_names_) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    json_escape_into(out, name);
    out += "\"}}";
  }
  for (const Event& e : events_) {
    comma();
    out += "{\"name\":\"";
    json_escape_into(out, e.name);
    out += "\",\"cat\":\"";
    json_escape_into(out, e.cat);
    out += "\",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(e.ts);
    if (e.ph == 'X') out += ",\"dur\":" + std::to_string(e.dur);
    if (e.ph == 'i') out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const TraceArg& a : e.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"';
        json_escape_into(out, a.key);
        out += "\":";
        if (a.quoted) {
          out += '"';
          json_escape_into(out, a.value);
          out += '"';
        } else {
          out += a.value;
        }
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << to_chrome_json();
  return static_cast<bool>(file);
}

Span::Span(Tracer* tracer, std::string_view name, std::string_view cat) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  track_ = tracer->active_track();
  start_ts_ = tracer->now_on_active_track();
  name_.assign(name.begin(), name.end());
  cat_.assign(cat.begin(), cat.end());
  auto& ctx = util::log_context();
  prev_track_tag_ = ctx.track;
  prev_span_tag_ = ctx.span;
  ctx.track = static_cast<std::uint64_t>(tracer->track_id(track_));
  ctx.span = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

Span::~Span() {
  if (tracer_ == nullptr) return;
  auto& ctx = util::log_context();
  ctx.track = prev_track_tag_;
  ctx.span = prev_span_tag_;
  const sim::SimTime end_ts = tracer_->now_on_active_track();
  const sim::SimTime dur = end_ts > start_ts_ ? end_ts - start_ts_ : 0;
  tracer_->complete(track_, name_, cat_, start_ts_, dur, std::move(args_));
}

void Span::arg(std::string_view key, std::string_view value) {
  if (tracer_ != nullptr) args_.push_back(trace_arg(key, value));
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (tracer_ != nullptr) args_.push_back(trace_arg(key, value));
}

}  // namespace provcloud::obs
