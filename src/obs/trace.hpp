// Virtual-time tracing: nested spans stamped in SimTime, exported as Chrome
// trace-event JSON (load the file at https://ui.perfetto.dev).
//
// The ledger already knows, per client timeline, when every simulated AWS
// call happened in virtual time -- it just throws the structure away and
// keeps sums. The Tracer is a sim::LedgerObserver that keeps it: every
// charge becomes a complete ('X') event on the track of the timeline it was
// charged to, with  ts = SimClock::now() + the timeline's elapsed total at
// charge time. Both terms are non-decreasing per track (the clock only
// moves at driver-thread sync points; a timeline's elapsed only grows), so
// timestamps are monotonic per track by construction and a scatter renders
// as parallel branch tracks under one gather.
//
// Track model: one track per timeline id. Ticket / client timelines are
// persistent ids and keep one track across all their scopes (name them via
// name_track); Branch timelines are stack objects whose addresses recur, so
// every Branch scope gets a fresh track for its lifetime.
//
// Cost contract: runtime-off by default. Disabled, every hook is one
// relaxed atomic load + branch and *nothing* else -- the tracer never
// touches the meter, the ledger, the clock state, or the RNG, so a traced
// run and an untraced run are numerically identical (asserted in tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/clock.hpp"
#include "sim/latency_ledger.hpp"

namespace provcloud::obs {

/// One key/value attachment on a trace event. `quoted` false means the
/// value is emitted as a bare JSON token (numbers).
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = true;
};

inline TraceArg trace_arg(std::string_view key, std::string_view value) {
  return TraceArg{std::string(key), std::string(value), true};
}
inline TraceArg trace_arg(std::string_view key, std::uint64_t value) {
  return TraceArg{std::string(key), std::to_string(value), false};
}

class Tracer : public sim::LedgerObserver {
 public:
  /// One recorded trace event (the JSON is a straight serialization).
  struct Event {
    std::string name;
    std::string cat;
    char ph;  // 'X' complete, 'i' instant
    int tid;
    sim::SimTime ts;
    sim::SimTime dur;
    std::vector<TraceArg> args;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Wire the virtual clock (timestamp base) and the ledger whose active
  /// timeline anchors Span/instant events. Both must outlive the tracer's
  /// use; CloudEnv wires its own.
  void bind(const sim::SimClock* clock, sim::LatencyLedger* ledger) {
    clock_ = clock;
    ledger_ = ledger;
  }

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Give the persistent track of `timeline` a human name ("client-A",
  /// "ticket-17"). First writer wins; later calls are ignored so a track
  /// keeps its earliest (most specific) identity.
  void name_track(const void* timeline, std::string_view name);

  /// Force a FRESH track for `timeline`, named `name`, replacing any prior
  /// mapping of the same address. For short-lived stack timelines whose
  /// addresses recur (e.g. the per-flush shared group timeline): without
  /// this, successive incarnations would pile onto one track at the same
  /// virtual timestamps.
  void begin_track(const void* timeline, std::string_view name);

  /// Record a complete event on `timeline`'s track. `ts`/`dur` are virtual
  /// microseconds. No-op when disabled.
  void complete(const void* timeline, std::string_view name,
                std::string_view cat, sim::SimTime ts, sim::SimTime dur,
                std::vector<TraceArg> args = {});

  /// Record an instant event on the calling thread's active timeline track
  /// at the current virtual time (FailureInjector hits, daemon wakeups).
  void instant(std::string_view name, std::string_view cat,
               std::vector<TraceArg> args = {});

  /// The small-integer track id (the Chrome `tid`) of a timeline, creating
  /// the track on first sight -- log lines tag themselves with it so they
  /// join up with the exported trace.
  int track_id(const void* timeline);

  /// Current virtual timestamp of the calling thread's active timeline:
  /// clock now + timeline elapsed. 0 if unbound.
  sim::SimTime now_on_active_track() const;
  /// Active timeline id as seen by span instrumentation (null if unbound).
  const void* active_track() const;

  // sim::LedgerObserver --------------------------------------------------
  void on_charge(const void* timeline, sim::SimTime start_elapsed,
                 sim::SimTime latency, std::string_view service) override;
  void on_scope_open(const void* timeline, bool is_branch) override;
  void on_scope_close(const void* timeline, bool is_branch) override;

  std::size_t event_count() const;
  /// Snapshot of everything recorded so far, in emission order (tests and
  /// programmatic consumers; the JSON export is the same data).
  std::vector<Event> events() const;
  void clear();

  /// Serialize everything recorded so far as Chrome trace-event JSON
  /// ({"traceEvents":[...]}) — the format Perfetto and chrome://tracing
  /// load directly.
  std::string to_chrome_json() const;
  /// Write to_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  int track_locked(const void* timeline);
  void record(Event event);

  std::atomic<bool> enabled_{false};
  const sim::SimClock* clock_ = nullptr;
  sim::LatencyLedger* ledger_ = nullptr;

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<const void*, int> tracks_;  // persistent timelines
  /// Open Branch scopes: each open gets a fresh tid (stack addresses
  /// recur), stacked per pointer for nested branches.
  std::map<const void*, std::vector<int>> open_branches_;
  std::map<int, std::string> track_names_;
  int next_tid_ = 1;
};

/// RAII span over a region of instrumented code, recorded on the calling
/// thread's active timeline track: ts is the virtual time at construction,
/// dur is the virtual time that accumulated (charges, merges, idle) before
/// destruction. Spans nest by strict scoping, which Perfetto renders as a
/// flame. Construction with a disabled (or null) tracer costs one branch.
/// While open, the span tags log lines on this thread with its ids (see
/// util/logging LogContext).
class Span {
 public:
  Span(Tracer* tracer, std::string_view name, std::string_view cat = "phase");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value to the span (emitted at close). No-op when the
  /// span is disabled.
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, std::uint64_t value);

  bool recording() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;  // null when disabled at construction
  const void* track_ = nullptr;
  sim::SimTime start_ts_ = 0;
  std::string name_;
  std::string cat_;
  std::vector<TraceArg> args_;
  std::uint64_t prev_track_tag_ = 0;
  std::uint64_t prev_span_tag_ = 0;
};

}  // namespace provcloud::obs
