#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace provcloud::obs {

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const unsigned h = 63u - static_cast<unsigned>(std::countl_zero(value));
  const unsigned shift = h - kSubBits;
  const std::uint64_t sub = (value >> shift) & (kSubBuckets - 1);
  return static_cast<std::size_t>(kSubBuckets +
                                  (h - kSubBits) * kSubBuckets + sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint64_t tier = (index - kSubBuckets) / kSubBuckets;
  const std::uint64_t sub = (index - kSubBuckets) % kSubBuckets;
  const unsigned h = static_cast<unsigned>(tier) + kSubBits;
  return (1ull << h) + sub * (1ull << (h - kSubBits));
}

std::uint64_t Histogram::bucket_upper(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::uint64_t tier = (index - kSubBuckets) / kSubBuckets;
  const unsigned h = static_cast<unsigned>(tier) + kSubBits;
  return bucket_lower(index) + (1ull << (h - kSubBits)) - 1;
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ull ? 0 : m;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(
             n, static_cast<std::uint64_t>(
                    std::ceil(q * static_cast<double>(n)))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank)
      return std::min(bucket_upper(i), max_.load(std::memory_order_relaxed));
  }
  // Bucket totals trailed the count snapshot (concurrent recording); the
  // freshest observed extreme is the best stand-in for the tail.
  return max_.load(std::memory_order_relaxed);
}

namespace {

template <typename Map, typename Instrument>
Instrument& intern(std::mutex& mu, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end())
    it = map.emplace(std::string(name), std::make_unique<Instrument>()).first;
  return *it->second;
}

template <typename Map>
auto find_in(std::mutex& mu, const Map& map, std::string_view name) ->
    typename Map::mapped_type::element_type const* {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

template <typename Map>
std::vector<std::string> names_of(std::mutex& mu, const Map& map) {
  std::lock_guard<std::mutex> lock(mu);
  std::vector<std::string> out;
  out.reserve(map.size());
  for (const auto& [name, instrument] : map) out.push_back(name);
  return out;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return intern<decltype(counters_), Counter>(mu_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return intern<decltype(gauges_), Gauge>(mu_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return intern<decltype(histograms_), Histogram>(mu_, histograms_, name);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_in(mu_, counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_in(mu_, gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  return find_in(mu_, histograms_, name);
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  return names_of(mu_, counters_);
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  return names_of(mu_, gauges_);
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  return names_of(mu_, histograms_);
}

std::string MetricsRegistry::dump() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_)
    out << "counter " << name << " = " << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    out << "gauge " << name << " = " << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    out << "histogram " << name << " count=" << h->count()
        << " min=" << h->min() << " max=" << h->max() << " mean=" << h->mean()
        << " p50=" << h->quantile(0.50) << " p90=" << h->quantile(0.90)
        << " p99=" << h->quantile(0.99) << " p999=" << h->quantile(0.999)
        << "\n";
  }
  return out.str();
}

}  // namespace provcloud::obs
