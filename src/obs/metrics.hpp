// MetricsRegistry: named counters, gauges and log-bucketed histograms.
//
// The paper's argument is cost/latency accounting, but sums and means hide
// the tail: a million-client frontend is judged by its p99/p999, and the
// ad-hoc stat structs scattered through the codebase (AncestorCache hit
// counters, commit-daemon group sizes, consistency-read retry counts) were
// invisible outside their owners. The registry is the one named home for
// all of them, owned per CloudEnv so every experiment run reports its own
// numbers.
//
// Contracts:
//   * Recording is wait-free on the hot path (one relaxed atomic add) and
//     never touches the meter, the ledger or the clock -- metrics can stay
//     always-on without perturbing billing or elapsed-time accounting.
//   * counter()/gauge()/histogram() return references that stay valid for
//     the registry's lifetime; instrumented components resolve them once at
//     construction, not per event.
//   * Histograms are fixed log-linear buckets (8 sub-buckets per power of
//     two): quantile(q) returns the upper edge of the bucket holding the
//     rank, so the estimate e satisfies  true <= e <= true * 9/8 + 1  --
//     tight enough for p50/p90/p99/p999 reporting at any magnitude without
//     storing samples.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace provcloud::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed log-linear histogram over the full uint64 range. Values below
/// kSubBuckets land in exact unit-width buckets; above, each power of two
/// splits into kSubBuckets linear sub-buckets, bounding the relative
/// quantile error at 1/kSubBuckets.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBits;  // 8
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;  // 8 exact + 61*8 log-linear

  /// Which bucket `value` lands in (also the test seam for the bucket math).
  static std::size_t bucket_index(std::uint64_t value);
  /// Inclusive value range of a bucket.
  static std::uint64_t bucket_lower(std::size_t index);
  static std::uint64_t bucket_upper(std::size_t index);

  void record(std::uint64_t value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const;  // 0 when empty
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Upper edge of the bucket holding rank ceil(q * count), q in [0, 1].
  /// 0 when the histogram is empty. Never under-reports: the true quantile
  /// is <= the estimate <= true * (1 + 1/kSubBuckets) + 1.
  std::uint64_t quantile(double q) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// One name -> instrument namespace. Thread-safe; lookups lock, the
/// returned references never move. Distinct kinds live in distinct
/// namespaces (a counter and a histogram may share a name, though the
/// instrumentation conventions below avoid it).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Existing-only lookups (no creation), for reporting code that must not
  /// invent empty instruments.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Human-readable dump, one line per instrument, sorted by name:
  ///   counter   ancestor_cache.hits = 123
  ///   histogram daemon.group_size   count=40 p50=8 p90=24 p99=25 p999=25
  std::string dump() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace provcloud::obs
