// Amazon SQS simulator (January 2009 feature snapshot).
//
// A distributed message queue. Faithfully modelled quirks the paper's WAL
// architecture depends on:
//   * messages live on storage shards; one ReceiveMessage samples a subset
//     of shards and returns only messages found there -- "the clients need
//     to repeat these requests until they receive all the necessary
//     messages";
//   * a received message is hidden from other consumers for the visibility
//     timeout; if not deleted by then it becomes visible again (at-least-
//     once delivery, single processor at a time);
//   * 8 KB message size limit -> provenance must be chunked;
//   * messages older than 4 days are deleted automatically -- the paper uses
//     this as free garbage collection of uncommitted transactions;
//   * ApproximateNumberOfMessages is approximate (sampled);
//   * best-effort ordering only.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "aws/common/env.hpp"
#include "aws/common/errors.hpp"
#include "util/bytes.hpp"
#include "util/spinlock.hpp"

namespace provcloud::aws {

inline constexpr std::size_t kSqsMaxMessageBytes = 8 * util::kKiB;
inline constexpr std::size_t kSqsMaxReceiveBatch = 10;
inline constexpr std::size_t kSqsMaxSendBatch = 10;
inline constexpr sim::SimTime kSqsRetention = 4 * sim::kDay;
inline constexpr sim::SimTime kSqsDefaultVisibilityTimeout =
    30 * sim::kSecond;
/// Number of storage shards ("machines") a queue is spread over.
inline constexpr std::size_t kSqsShardsPerQueue = 8;

struct SqsMessage {
  std::string message_id;
  std::string receipt_handle;  // set on receive; changes per receive
  util::Bytes body;
};

/// One entry's failure inside a SendMessageBatch call.
struct SqsBatchFailure {
  std::size_t index = 0;  // position in the submitted bodies
  AwsError error;
};

/// Outcome of SendMessageBatch: per-entry message ids (empty string for a
/// failed entry) plus the failures, mirroring SimpleDB's BatchPutResult.
struct SqsSendBatchResult {
  std::vector<std::string> message_ids;
  std::vector<SqsBatchFailure> failed;
  bool ok() const { return failed.empty(); }
};

class SqsService {
 public:
  explicit SqsService(CloudEnv& env) : env_(&env) {}
  SqsService(const SqsService&) = delete;
  SqsService& operator=(const SqsService&) = delete;

  /// Create a queue; returns its URL. Idempotent for the same name.
  AwsResult<std::string> create_queue(
      const std::string& name,
      sim::SimTime visibility_timeout = kSqsDefaultVisibilityTimeout);

  AwsResult<void> delete_queue(const std::string& url);

  /// Enqueue one message (Unicode text, at most 8 KB). Returns message id.
  AwsResult<std::string> send_message(const std::string& url,
                                      util::BytesView body);

  /// Enqueue up to 10 messages in one request. Entries are applied in
  /// order; an oversized entry fails individually (per-entry error) while
  /// the rest of the batch lands -- the same partial-failure contract as
  /// SimpleDB's BatchPutAttributes. More than 10 entries (or none) fails
  /// the whole call.
  AwsResult<SqsSendBatchResult> send_message_batch(
      const std::string& url, const std::vector<util::Bytes>& bodies);

  /// Receive up to max_messages (capped at 10) from a *sample* of shards.
  /// Returned messages become invisible until the visibility timeout
  /// elapses; delete them via their receipt handle before that.
  AwsResult<std::vector<SqsMessage>> receive_message(
      const std::string& url, std::size_t max_messages = 1,
      std::optional<sim::SimTime> visibility_timeout = std::nullopt);

  /// Delete a message by receipt handle. Deleting an already-deleted
  /// message succeeds (idempotent).
  AwsResult<void> delete_message(const std::string& url,
                                 const std::string& receipt_handle);

  /// GetQueueAttributes:ApproximateNumberOfMessages -- sampled estimate.
  AwsResult<std::uint64_t> approximate_number_of_messages(
      const std::string& url);

  /// --- test/verification access (not billed) ---
  /// Exact number of live (visible or in-flight) messages.
  std::uint64_t exact_message_count(const std::string& url) const;
  std::uint64_t stored_bytes() const {
    return stored_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct StoredMessage {
    std::string message_id;
    util::Bytes body;
    sim::SimTime sent_at = 0;
    sim::SimTime visible_at = 0;      // now >= visible_at -> deliverable
    std::uint64_t receipt_seq = 0;    // bumped every delivery
    bool deleted = false;
  };
  struct Shard {
    std::deque<StoredMessage> messages;
  };
  struct Queue {
    std::string name;
    sim::SimTime visibility_timeout = kSqsDefaultVisibilityTimeout;
    std::vector<Shard> shards;
    /// Live bytes on this queue, maintained incrementally under `mu`.
    std::uint64_t queue_bytes = 0;
    /// Set by delete_queue (under `mu`) after the map entry is gone; a
    /// racing caller that already resolved the queue sees NoSuchQueue.
    bool erased = false;
    /// Per-queue lock: concurrent WAL clients each own a queue, so their
    /// send/receive/delete traffic runs truly in parallel while ops on one
    /// queue stay linearized -- the same granularity as SimpleDB's
    /// per-domain and S3's per-bucket locks.
    mutable std::mutex mu;
  };

  /// Queues live behind shared_ptr so a lookup stays valid across the
  /// unlocked window between resolving the queue and locking it: a
  /// concurrent delete_queue only drops the map reference, never the Queue
  /// a peer is about to lock.
  std::shared_ptr<Queue> find_queue(const std::string& url) const;
  /// Caller holds q.mu. Reaps retention-expired messages and publishes the
  /// reaped bytes.
  void expire_old(Queue& q);
  /// Fold a live-bytes change into the service-wide gauge + meter.
  void publish_gauge_delta(std::int64_t delta);

  /// receipt handle encoding: "<shard>:<message_id>:<receipt_seq>".
  static std::string make_receipt(std::size_t shard, const std::string& id,
                                  std::uint64_t seq);

  CloudEnv* env_;
  // Guards the queue map structure only (shared for the per-call lookup on
  // every request; exclusive for create/delete).
  mutable std::shared_mutex queues_mu_;
  std::map<std::string, std::shared_ptr<Queue>> queues_;  // by URL
  std::atomic<std::uint64_t> next_message_id_{1};
  /// Orders concurrent cross-queue gauge updates and their meter publish.
  util::Spinlock storage_gauge_mu_;
  std::atomic<std::uint64_t> stored_bytes_{0};
};

}  // namespace provcloud::aws
