#include "aws/sqs/sqs.hpp"

#include <algorithm>

#include "util/hex.hpp"
#include "util/require.hpp"
#include "util/string_utils.hpp"

namespace provcloud::aws {

namespace {
constexpr const char* kService = "sqs";
}

std::shared_ptr<SqsService::Queue> SqsService::find_queue(
    const std::string& url) const {
  std::shared_lock<std::shared_mutex> lock(queues_mu_);
  auto it = queues_.find(url);
  return it == queues_.end() ? nullptr : it->second;
}

std::string SqsService::make_receipt(std::size_t shard, const std::string& id,
                                     std::uint64_t seq) {
  return std::to_string(shard) + ":" + id + ":" + std::to_string(seq);
}

void SqsService::publish_gauge_delta(std::int64_t delta) {
  // Cross-queue writers share the gauge: fold the delta in and publish
  // under one lock so a slower thread cannot overwrite a newer total with
  // a stale one (the per-queue mutex orders writes within a queue only).
  std::lock_guard<util::Spinlock> gauge_lock(storage_gauge_mu_);
  stored_bytes_ += static_cast<std::uint64_t>(delta);
  env_->meter().set_storage(kService, stored_bytes_.load());
}

void SqsService::expire_old(Queue& q) {
  const sim::SimTime now = env_->clock().now();
  if (now < kSqsRetention) return;
  const sim::SimTime cutoff = now - kSqsRetention;
  std::uint64_t reaped = 0;
  for (Shard& shard : q.shards) {
    for (StoredMessage& m : shard.messages)
      if (!m.deleted && m.sent_at < cutoff) {
        m.deleted = true;
        reaped += m.body.size();
      }
    while (!shard.messages.empty() && shard.messages.front().deleted)
      shard.messages.pop_front();
  }
  if (reaped > 0) {
    q.queue_bytes -= reaped;
    publish_gauge_delta(-static_cast<std::int64_t>(reaped));
  }
}

AwsResult<std::string> SqsService::create_queue(
    const std::string& name, sim::SimTime visibility_timeout) {
  const std::string url = "sqs://queue/" + name;
  env_->charge(kService, "CreateQueue", name.size(), 0, url);
  std::unique_lock<std::shared_mutex> lock(queues_mu_);
  if (queues_.find(url) == queues_.end()) {
    auto q = std::make_shared<Queue>();
    q->name = name;
    q->visibility_timeout = visibility_timeout;
    q->shards.resize(kSqsShardsPerQueue);
    queues_.emplace(url, std::move(q));
  }
  return url;
}

AwsResult<void> SqsService::delete_queue(const std::string& url) {
  env_->charge(kService, "DeleteQueue", 0, 0, url);
  std::shared_ptr<Queue> q;
  {
    std::unique_lock<std::shared_mutex> lock(queues_mu_);
    auto it = queues_.find(url);
    if (it == queues_.end()) return {};
    q = std::move(it->second);
    queues_.erase(it);
  }
  std::lock_guard<std::mutex> lock(q->mu);
  q->erased = true;  // racing holders of the old reference see NoSuchQueue
  if (q->queue_bytes > 0) {
    publish_gauge_delta(-static_cast<std::int64_t>(q->queue_bytes));
    q->queue_bytes = 0;
  }
  return {};
}

AwsResult<std::string> SqsService::send_message(const std::string& url,
                                                util::BytesView body) {
  env_->charge(kService, "SendMessage", body.size(), 0, url);
  std::shared_ptr<Queue> q = find_queue(url);
  if (q == nullptr) return aws_error(AwsErrorCode::kNoSuchQueue, url);
  std::lock_guard<std::mutex> lock(q->mu);
  if (q->erased) return aws_error(AwsErrorCode::kNoSuchQueue, url);
  if (body.size() > kSqsMaxMessageBytes)
    return aws_error(AwsErrorCode::kEntityTooLarge,
                     "message exceeds 8KB limit");
  expire_old(*q);

  StoredMessage m;
  m.message_id = "msg-" + util::hex_u64(next_message_id_.fetch_add(
                              1, std::memory_order_relaxed));
  m.body = util::Bytes(body);
  m.sent_at = env_->clock().now();
  m.visible_at = m.sent_at;
  const std::size_t shard = env_->rng_below(q->shards.size());
  q->queue_bytes += m.body.size();
  publish_gauge_delta(static_cast<std::int64_t>(m.body.size()));
  q->shards[shard].messages.push_back(std::move(m));
  return q->shards[shard].messages.back().message_id;
}

AwsResult<SqsSendBatchResult> SqsService::send_message_batch(
    const std::string& url, const std::vector<util::Bytes>& bodies) {
  std::uint64_t bytes_in = 0;
  for (const util::Bytes& body : bodies) bytes_in += body.size();
  env_->charge(kService, "SendMessageBatch", bytes_in, 0, url);
  if (bodies.empty() || bodies.size() > kSqsMaxSendBatch)
    return aws_error(AwsErrorCode::kInvalidArgument,
                     "SendMessageBatch takes 1..10 entries, got " +
                         std::to_string(bodies.size()));
  std::shared_ptr<Queue> q = find_queue(url);
  if (q == nullptr) return aws_error(AwsErrorCode::kNoSuchQueue, url);
  std::lock_guard<std::mutex> lock(q->mu);
  if (q->erased) return aws_error(AwsErrorCode::kNoSuchQueue, url);
  expire_old(*q);

  SqsSendBatchResult result;
  result.message_ids.reserve(bodies.size());
  std::uint64_t added_bytes = 0;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const util::Bytes& body = bodies[i];
    if (body.size() > kSqsMaxMessageBytes) {
      result.message_ids.emplace_back();
      result.failed.push_back(SqsBatchFailure{
          i, AwsError{AwsErrorCode::kEntityTooLarge,
                      "batch entry exceeds 8KB limit"}});
      continue;
    }
    StoredMessage m;
    m.message_id = "msg-" + util::hex_u64(next_message_id_.fetch_add(
                                1, std::memory_order_relaxed));
    m.body = body;
    m.sent_at = env_->clock().now();
    m.visible_at = m.sent_at;
    const std::size_t shard = env_->rng_below(q->shards.size());
    added_bytes += m.body.size();
    q->queue_bytes += m.body.size();
    q->shards[shard].messages.push_back(std::move(m));
    result.message_ids.push_back(
        q->shards[shard].messages.back().message_id);
  }
  if (added_bytes > 0)
    publish_gauge_delta(static_cast<std::int64_t>(added_bytes));
  return result;
}

AwsResult<std::vector<SqsMessage>> SqsService::receive_message(
    const std::string& url, std::size_t max_messages,
    std::optional<sim::SimTime> visibility_timeout) {
  std::shared_ptr<Queue> q = find_queue(url);
  if (q == nullptr) {
    env_->charge(kService, "ReceiveMessage", 0, 0, url);
    return aws_error(AwsErrorCode::kNoSuchQueue, url);
  }
  std::unique_lock<std::mutex> lock(q->mu);
  if (q->erased) {
    lock.unlock();
    env_->charge(kService, "ReceiveMessage", 0, 0, url);
    return aws_error(AwsErrorCode::kNoSuchQueue, url);
  }
  expire_old(*q);
  max_messages = std::min(std::max<std::size_t>(1, max_messages),
                          kSqsMaxReceiveBatch);
  const sim::SimTime timeout =
      visibility_timeout.value_or(q->visibility_timeout);
  const sim::SimTime now = env_->clock().now();

  // Sample a subset of shards: this is the eventual-consistency behaviour
  // the paper describes -- a single receive can miss messages that exist.
  const double fraction = env_->consistency().sqs_sample_fraction;
  std::size_t sample_count = static_cast<std::size_t>(
      static_cast<double>(q->shards.size()) * fraction + 0.5);
  sample_count = std::clamp<std::size_t>(sample_count, 1, q->shards.size());
  std::vector<std::size_t> shard_order(q->shards.size());
  for (std::size_t i = 0; i < shard_order.size(); ++i) shard_order[i] = i;
  // Partial Fisher-Yates for the sampled prefix.
  for (std::size_t i = 0; i < sample_count; ++i) {
    const std::size_t j =
        i + env_->rng_below(shard_order.size() - i);
    std::swap(shard_order[i], shard_order[j]);
  }

  std::vector<SqsMessage> out;
  std::uint64_t bytes_out = 0;
  for (std::size_t s = 0; s < sample_count && out.size() < max_messages; ++s) {
    Shard& shard = q->shards[shard_order[s]];
    for (StoredMessage& m : shard.messages) {
      if (out.size() >= max_messages) break;
      if (m.deleted || m.visible_at > now) continue;
      m.visible_at = now + timeout;  // hide from other consumers
      ++m.receipt_seq;
      SqsMessage delivered;
      delivered.message_id = m.message_id;
      delivered.receipt_handle =
          make_receipt(shard_order[s], m.message_id, m.receipt_seq);
      delivered.body = m.body;
      bytes_out += m.body.size();
      out.push_back(std::move(delivered));
    }
  }
  lock.unlock();
  env_->charge(kService, "ReceiveMessage", 0, bytes_out, url);
  return out;
}

AwsResult<void> SqsService::delete_message(const std::string& url,
                                           const std::string& receipt_handle) {
  env_->charge(kService, "DeleteMessage", receipt_handle.size(), 0, url);
  std::shared_ptr<Queue> q = find_queue(url);
  if (q == nullptr) return aws_error(AwsErrorCode::kNoSuchQueue, url);
  std::lock_guard<std::mutex> lock(q->mu);
  if (q->erased) return aws_error(AwsErrorCode::kNoSuchQueue, url);
  const std::vector<std::string> parts = util::split(receipt_handle, ':');
  if (parts.size() != 3)
    return aws_error(AwsErrorCode::kInvalidReceiptHandle, receipt_handle);
  std::size_t shard_idx = 0;
  try {
    shard_idx = std::stoul(parts[0]);
  } catch (...) {
    return aws_error(AwsErrorCode::kInvalidReceiptHandle, receipt_handle);
  }
  if (shard_idx >= q->shards.size())
    return aws_error(AwsErrorCode::kInvalidReceiptHandle, receipt_handle);
  Shard& shard = q->shards[shard_idx];
  for (StoredMessage& m : shard.messages) {
    if (m.message_id == parts[1]) {
      if (!m.deleted) {
        m.deleted = true;
        q->queue_bytes -= m.body.size();
        publish_gauge_delta(-static_cast<std::int64_t>(m.body.size()));
      }
      return {};
    }
  }
  return {};  // already gone: idempotent
}

AwsResult<std::uint64_t> SqsService::approximate_number_of_messages(
    const std::string& url) {
  env_->charge(kService, "GetQueueAttributes", 0, sizeof(std::uint64_t), url);
  std::shared_ptr<Queue> q = find_queue(url);
  if (q == nullptr) return aws_error(AwsErrorCode::kNoSuchQueue, url);
  std::lock_guard<std::mutex> lock(q->mu);
  if (q->erased) return aws_error(AwsErrorCode::kNoSuchQueue, url);
  expire_old(*q);

  // Sample a subset of shards and scale up -- an *approximation*, exactly
  // what the API name promises.
  const double fraction = env_->consistency().sqs_sample_fraction;
  std::size_t sample_count = static_cast<std::size_t>(
      static_cast<double>(q->shards.size()) * fraction + 0.5);
  sample_count = std::clamp<std::size_t>(sample_count, 1, q->shards.size());
  std::vector<std::size_t> shard_order(q->shards.size());
  for (std::size_t i = 0; i < shard_order.size(); ++i) shard_order[i] = i;
  for (std::size_t i = 0; i < sample_count; ++i) {
    const std::size_t j = i + env_->rng_below(shard_order.size() - i);
    std::swap(shard_order[i], shard_order[j]);
  }
  std::uint64_t sampled = 0;
  for (std::size_t s = 0; s < sample_count; ++s)
    for (const StoredMessage& m : q->shards[shard_order[s]].messages)
      if (!m.deleted) ++sampled;
  const double scale =
      static_cast<double>(q->shards.size()) / static_cast<double>(sample_count);
  return static_cast<std::uint64_t>(static_cast<double>(sampled) * scale + 0.5);
}

std::uint64_t SqsService::exact_message_count(const std::string& url) const {
  const std::shared_ptr<Queue> q = find_queue(url);
  if (q == nullptr) return 0;
  std::lock_guard<std::mutex> lock(q->mu);
  std::uint64_t n = 0;
  for (const Shard& shard : q->shards)
    for (const StoredMessage& m : shard.messages)
      if (!m.deleted) ++n;
  return n;
}

}  // namespace provcloud::aws
