#include "aws/common/env.hpp"

#include <cstdlib>
#include <cstring>

namespace provcloud::aws {

bool CloudEnv::env_tracing_requested() {
  const char* env = std::getenv("PROVCLOUD_TRACE");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
         std::strcmp(env, "on") == 0;
}

sim::SimTime CloudEnv::charge(const std::string& service, const std::string& op,
                              std::uint64_t bytes_in, std::uint64_t bytes_out,
                              const std::string& detail) {
  meter_.record(service, op, bytes_in, bytes_out, detail);
  sim::SimTime latency = 0;
  {
    std::lock_guard<util::Spinlock> lock(fabric_mu_);
    latency = latency_model_.sample(rng_, bytes_in, bytes_out);
    if (!slowdowns_.empty()) {
      auto it = slowdowns_.find(service);
      if (it != slowdowns_.end()) latency += it->second;
    }
  }
  busy_time_.fetch_add(latency, std::memory_order_relaxed);
  ledger_.charge(latency, service);
  return latency;
}

sim::SimTime CloudEnv::sample_propagation_delay() {
  if (consistency_.propagation_max <= consistency_.propagation_min)
    return consistency_.propagation_min;
  std::lock_guard<util::Spinlock> lock(fabric_mu_);
  return rng_.next_in(consistency_.propagation_min,
                      consistency_.propagation_max);
}

std::uint64_t CloudEnv::rng_below(std::uint64_t bound) {
  std::lock_guard<util::Spinlock> lock(fabric_mu_);
  return rng_.next_below(bound);
}

}  // namespace provcloud::aws
