#include "aws/common/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace provcloud::aws {

sim::SimTime throttle_backoff_delay(std::uint32_t attempt,
                                    const ThrottleConfig& cfg,
                                    std::uint64_t jitter_draw) {
  if (attempt == 0) attempt = 1;
  sim::SimTime delay = cfg.backoff_base;
  for (std::uint32_t i = 1; i < attempt && delay < cfg.backoff_cap; ++i)
    delay *= 2;
  delay = std::min(delay, cfg.backoff_cap);
  if (delay <= 1) return delay;
  const sim::SimTime half = delay / 2;
  return half + jitter_draw % (delay - half + 1);
}

bool CloudEnv::env_tracing_requested() {
  const char* env = std::getenv("PROVCLOUD_TRACE");
  if (env == nullptr) return false;
  return std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
         std::strcmp(env, "on") == 0;
}

sim::SimTime CloudEnv::charge(const std::string& service, const std::string& op,
                              std::uint64_t bytes_in, std::uint64_t bytes_out,
                              const std::string& detail) {
  if (throttling_.load(std::memory_order_relaxed)) throttle_gate(service);
  meter_.record(service, op, bytes_in, bytes_out, detail);
  sim::SimTime latency = 0;
  {
    std::lock_guard<util::Spinlock> lock(fabric_mu_);
    latency = latency_model_.sample(rng_, bytes_in, bytes_out);
    if (!slowdowns_.empty()) {
      auto it = slowdowns_.find(service);
      if (it != slowdowns_.end()) latency += it->second;
    }
  }
  busy_time_.fetch_add(latency, std::memory_order_relaxed);
  ledger_.charge(latency, service);
  return latency;
}

void CloudEnv::set_service_throttle(const std::string& service,
                                    const ThrottleConfig& cfg) {
  // Read the clock before taking fabric_mu_: the clock carries its own lock
  // and advance-time event handlers may re-enter the fabric.
  const sim::SimTime now = clock_.now();
  std::lock_guard<util::Spinlock> lock(fabric_mu_);
  if (!cfg.enabled()) {
    throttles_.erase(service);
  } else {
    ThrottleState st;
    st.config = cfg;
    // The bucket starts full: a freshly throttled service still admits its
    // burst allowance before rate-triggered 503s begin.
    st.tokens =
        static_cast<double>(cfg.burst > 0 ? cfg.burst : cfg.rate_per_sec);
    st.last_refill = now;
    throttles_[service] = st;
  }
  throttling_.store(!throttles_.empty(), std::memory_order_relaxed);
}

void CloudEnv::throttle_gate(const std::string& service) {
  for (std::uint32_t attempt = 1;; ++attempt) {
    ThrottleConfig cfg;
    bool throttled = false;
    std::uint64_t jitter_draw = 0;
    const sim::SimTime now = clock_.now();
    {
      std::lock_guard<util::Spinlock> lock(fabric_mu_);
      auto it = throttles_.find(service);
      if (it == throttles_.end()) return;
      ThrottleState& st = it->second;
      cfg = st.config;
      if (cfg.rate_per_sec > 0) {
        const double capacity = static_cast<double>(
            cfg.burst > 0 ? cfg.burst : cfg.rate_per_sec);
        if (now > st.last_refill) {
          st.tokens += static_cast<double>(now - st.last_refill) *
                       static_cast<double>(cfg.rate_per_sec) /
                       static_cast<double>(sim::kSecond);
          st.last_refill = now;
        }
        st.tokens = std::min(st.tokens, capacity);
        if (st.tokens >= 1.0)
          st.tokens -= 1.0;
        else
          throttled = true;
      }
      if (!throttled && cfg.probability > 0.0)
        throttled = rng_.next_bool(cfg.probability);
      if (throttled) jitter_draw = rng_.next_u64();
    }
    if (!throttled) return;
    if (attempt > cfg.max_attempts) {
      // Retries exhausted: the service relents and admits the request (a
      // throttle storm stretches time, it never fails the protocol).
      metrics_.counter("throttle." + service + ".relented").add(1);
      return;
    }
    // The 503 round trip is free (real throttle responses are not billed);
    // the client-side backoff wait is honest elapsed time.
    const sim::SimTime wait = throttle_backoff_delay(attempt, cfg, jitter_draw);
    ledger_.charge(wait, "idle");
    metrics_.counter("idle.throttle_backoff_us").add(wait);
    metrics_.counter("throttle.injected").add(1);
    metrics_.counter("throttle." + service + ".injected").add(1);
    if (tracer_.enabled())
      tracer_.instant("throttle." + service, "throttle",
                      {obs::trace_arg("attempt", std::to_string(attempt))});
    if (cfg.rate_per_sec > 0) {
      // Backoff consumes virtual time but the clock does not advance inside
      // a burst, so credit the bucket for the wait -- without this a
      // rate-triggered storm could never drain within one driver step.
      std::lock_guard<util::Spinlock> lock(fabric_mu_);
      auto it = throttles_.find(service);
      if (it != throttles_.end() && it->second.config.rate_per_sec > 0) {
        const ThrottleConfig& c = it->second.config;
        const double capacity =
            static_cast<double>(c.burst > 0 ? c.burst : c.rate_per_sec);
        it->second.tokens = std::min(
            capacity, it->second.tokens + static_cast<double>(wait) *
                                              static_cast<double>(
                                                  c.rate_per_sec) /
                                              static_cast<double>(
                                                  sim::kSecond));
      }
    }
  }
}

sim::SimTime CloudEnv::sample_propagation_delay() {
  if (consistency_.propagation_max <= consistency_.propagation_min)
    return consistency_.propagation_min;
  std::lock_guard<util::Spinlock> lock(fabric_mu_);
  return rng_.next_in(consistency_.propagation_min,
                      consistency_.propagation_max);
}

std::uint64_t CloudEnv::rng_below(std::uint64_t bound) {
  std::lock_guard<util::Spinlock> lock(fabric_mu_);
  return rng_.next_below(bound);
}

}  // namespace provcloud::aws
