// CloudEnv: the shared fabric underneath the simulated AWS services.
//
// One CloudEnv per experiment run. It owns the simulated clock, the
// deterministic RNG, the billing meter, the failure injector, the eventual-
// consistency configuration and the latency model. Services and backends
// hold references to it; a whole experiment replays bit-identically from a
// single seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "sim/failure.hpp"
#include "sim/latency.hpp"
#include "sim/latency_ledger.hpp"
#include "sim/metering.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"

namespace provcloud::aws {

/// How eventually-consistent the replicated services are.
struct ConsistencyConfig {
  /// Number of replicas per service partition. 1 disables staleness.
  unsigned replicas = 3;
  /// A write reaches replica i (i > 0) after a uniform delay in
  /// [propagation_min, propagation_max]; replica 0 (coordinator) applies
  /// immediately so writes are durable.
  sim::SimTime propagation_min = 50 * sim::kMillisecond;
  sim::SimTime propagation_max = 2 * sim::kSecond;
  /// Fraction of SQS storage shards one ReceiveMessage samples (the paper:
  /// "SQS samples a set of machines on a ReceiveMessage, returning only the
  /// messages on those machines").
  double sqs_sample_fraction = 0.5;

  /// Fully consistent configuration (replicas = 1, no delay) for tests that
  /// want to isolate protocol logic from staleness.
  static ConsistencyConfig strong() {
    ConsistencyConfig c;
    c.replicas = 1;
    c.propagation_min = 0;
    c.propagation_max = 0;
    c.sqs_sample_fraction = 1.0;
    return c;
  }
};

/// Service-side 503 throttling for one service. Real SimpleDB/S3/SQS shed
/// load with 503 "Slow Down" responses; clients retry with capped
/// exponential backoff. Two triggers compose: `probability` throttles each
/// request independently (a flaky brown-out), `rate_per_sec` admits at most
/// that many requests per virtual second through a token bucket with
/// `burst` credits (an overloaded partition). A zeroed config disables
/// throttling for the service.
struct ThrottleConfig {
  /// Probability each request attempt is throttled (clamped to [0, 1]).
  double probability = 0.0;
  /// Admitted requests per virtual second; 0 = unlimited.
  std::uint64_t rate_per_sec = 0;
  /// Token-bucket capacity (burst credits); 0 = rate_per_sec.
  std::uint64_t burst = 0;
  /// First retry waits backoff_base (pre-jitter); each retry doubles it.
  sim::SimTime backoff_base = 10 * sim::kMillisecond;
  /// Ceiling on the pre-jitter backoff delay.
  sim::SimTime backoff_cap = 1 * sim::kSecond;
  /// Throttled attempts before the service relents and admits the request
  /// anyway (the sim never fails a request outright on throttle).
  std::uint32_t max_attempts = 8;

  bool enabled() const { return probability > 0.0 || rate_per_sec > 0; }
};

/// Pre-computed backoff wait before retry number `attempt` (1-based):
/// min(backoff_base * 2^(attempt-1), backoff_cap), then "equal jitter" --
/// half fixed, half uniform from `jitter_draw` -- so concurrent retries
/// de-synchronize while the whole schedule stays a pure function of the
/// RNG stream. Exposed for direct testing.
sim::SimTime throttle_backoff_delay(std::uint32_t attempt,
                                    const ThrottleConfig& cfg,
                                    std::uint64_t jitter_draw);

class CloudEnv {
 public:
  explicit CloudEnv(std::uint64_t seed = 42,
                    ConsistencyConfig consistency = ConsistencyConfig{})
      : rng_(seed), consistency_(consistency) {
    // Advancing the clock fires replica-propagation events; reject it while
    // any scatter/gather branch is open (see SimClock's contract).
    clock_.set_advance_guard([this] {
      PROVCLOUD_REQUIRE_MSG(
          ledger_.open_branches() == 0,
          "SimClock advanced during a parallel fan-out: propagation events "
          "may only fire at driver-thread synchronization points");
    });
    tracer_.bind(&clock_, &ledger_);
    failures_.set_hit_hook([this](const std::string& point, bool crashing) {
      if (!tracer_.enabled()) return;
      tracer_.instant(
          point, "failure",
          {obs::trace_arg("crashing", crashing ? "true" : "false")});
    });
    if (env_tracing_requested()) set_tracing(true);
  }

  CloudEnv(const CloudEnv&) = delete;
  CloudEnv& operator=(const CloudEnv&) = delete;

  sim::SimClock& clock() { return clock_; }
  /// Direct RNG access: single-threaded users only (workload generators,
  /// tests). Service code running under shard-parallel fan-out must draw
  /// through rng_below() so the shared stream is not torn.
  util::Rng& rng() { return rng_; }
  sim::Meter& meter() { return meter_; }
  sim::FailureInjector& failures() { return failures_; }
  const ConsistencyConfig& consistency() const { return consistency_; }
  void set_consistency(const ConsistencyConfig& c) { consistency_ = c; }
  sim::LatencyModel& latency_model() { return latency_model_; }
  void set_latency_model(sim::LatencyModel m) { latency_model_ = m; }

  /// Charge one service request: meter it and record a sampled request
  /// latency on the calling thread's virtual timeline (the ledger). The
  /// simulated clock never moves here -- elapsed time and event scheduling
  /// are decoupled, so charging is safe from shard-parallel fan-out.
  /// Returns the charged latency. `detail` optionally names the service
  /// partition hit (SimpleDB domain, SQS queue) for per-shard metering.
  sim::SimTime charge(const std::string& service, const std::string& op,
                      std::uint64_t bytes_in, std::uint64_t bytes_out,
                      const std::string& detail = "");

  /// Per-client elapsed-time accounting: sequential requests sum on the
  /// caller's timeline; parallel scatter/gather merges by critical path.
  sim::LatencyLedger& latency_ledger() { return ledger_; }

  /// Elapsed virtual time of the calling client (thread): the ledger view
  /// of "the impact of the extra operations on elapsed time". For a
  /// sequential (parallelism == 1) run this equals busy_time() exactly.
  sim::SimTime elapsed_time() const { return ledger_.elapsed(); }

  /// elapsed_time() broken down by the service waited on (S3 / SimpleDB /
  /// SQS / EBS): which service dominates the client's critical path.
  std::map<std::string, sim::SimTime, std::less<>> elapsed_by_service() const {
    return ledger_.elapsed_by_service();
  }

  /// Total request latency charged so far across *all* clients -- the
  /// billing-style sum, order-independent under parallel fan-out.
  sim::SimTime busy_time() const {
    return busy_time_.load(std::memory_order_relaxed);
  }

  /// Always-on named counters/gauges/histograms for this environment.
  /// Recording is relaxed-atomic and never touches the meter, the ledger
  /// or the clock, so metrics cannot perturb billing or elapsed time.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Virtual-time tracer. Off by default; while off, the ledger observer
  /// is not even installed so the per-charge cost is one nullptr load.
  obs::Tracer& tracer() { return tracer_; }

  /// Toggle tracing at runtime. Also wired from the PROVCLOUD_TRACE
  /// environment variable (1|true|on) at construction. Toggle only at
  /// driver-thread quiescence: installing the observer must happen-before
  /// any concurrent charging.
  void set_tracing(bool on) {
    tracer_.set_enabled(on);
    ledger_.set_observer(on ? &tracer_ : nullptr);
  }
  bool tracing() const { return tracer_.enabled(); }

  /// Whether PROVCLOUD_TRACE asks for tracing (shared with benches that
  /// decide to write a trace file).
  static bool env_tracing_requested();

  /// Inject extra per-request latency for one service ("s3", "sdb", "sqs").
  /// Every subsequent charge() against that service pays `extra` on top of
  /// the sampled latency -- a slow-but-not-failed service (congestion, a
  /// brown-out) as opposed to the failure injector's hard errors. The time
  /// lands on the ledger like any other service wait. 0 clears the
  /// slowdown. Set only at driver-thread quiescence.
  void set_service_slowdown(const std::string& service, sim::SimTime extra) {
    std::lock_guard<util::Spinlock> lock(fabric_mu_);
    if (extra == 0)
      slowdowns_.erase(service);
    else
      slowdowns_[service] = extra;
  }

  /// Install (or, with a zeroed config, clear) 503 throttle injection for
  /// one service ("s3", "sdb", "sqs", "ebs"). Every subsequent charge()
  /// against that service passes an admission gate first: a throttled
  /// attempt is not billed (real 503s are free), its capped-exponential
  /// backoff wait lands on the caller's ledger timeline as "idle" and on
  /// the `idle.throttle_backoff_us` / `throttle.injected` counters. While
  /// no throttle is configured the gate is a single relaxed atomic load --
  /// billing and elapsed time stay bit-identical to a run without this
  /// feature. Set only at driver-thread quiescence.
  void set_service_throttle(const std::string& service,
                            const ThrottleConfig& cfg);

  /// Pick a uniform propagation delay for a replica. Thread-safe.
  sim::SimTime sample_propagation_delay();

  /// Uniform in [0, bound) from the shared deterministic stream, serialized
  /// against concurrent fabric users. Services use this for replica and
  /// shard picks so parallel fan-out cannot tear the generator state.
  std::uint64_t rng_below(std::uint64_t bound);

 private:
  /// Token-bucket state for one throttled service (guarded by fabric_mu_).
  struct ThrottleState {
    ThrottleConfig config;
    double tokens = 0.0;
    sim::SimTime last_refill = 0;
  };

  /// The admission gate charge() runs while any throttle is configured:
  /// loops attempts until one is admitted, charging each backoff as idle.
  void throttle_gate(const std::string& service);

  sim::SimClock clock_;
  util::Rng rng_;
  sim::Meter meter_;
  sim::FailureInjector failures_;
  ConsistencyConfig consistency_;
  sim::LatencyModel latency_model_;
  /// Per-service injected extra latency (guarded by fabric_mu_).
  std::map<std::string, sim::SimTime, std::less<>> slowdowns_;
  /// Per-service 503 throttle injection (guarded by fabric_mu_).
  std::map<std::string, ThrottleState, std::less<>> throttles_;
  /// Fast-path flag: true iff throttles_ is non-empty, so the disabled
  /// case costs one relaxed load and draws nothing from the RNG.
  std::atomic<bool> throttling_{false};
  sim::LatencyLedger ledger_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  std::atomic<sim::SimTime> busy_time_{0};
  /// Guards rng_ only -- held for one draw at a time, since every metered
  /// request samples a latency (the meter and clock carry their own locks).
  /// A spinlock: the section is a handful of instructions and sits on the
  /// fan-out hot path.
  mutable util::Spinlock fabric_mu_;
};

}  // namespace provcloud::aws
