// ReplicatedKV: an eventually-consistent, last-writer-wins replicated
// key/value store -- the storage engine under S3.
//
// Model (matches the behaviour the paper describes in section 2.1):
//   * There are R replicas. A write (PUT/DELETE) is applied to the
//     coordinator replica immediately (durability) and to each other replica
//     after an independent uniform propagation delay.
//   * A read (GET/HEAD/LIST) is served by a uniformly random replica, so a
//     read right after a write may see the previous value or nothing at all.
//   * Concurrent writes resolve by last-writer-wins on (timestamp, seq):
//     "If two clients update the same object concurrently via a PUT, the
//     last PUT operation is retained."
//   * Deletes are tombstones so that a late-propagating older PUT cannot
//     resurrect a deleted key on some replica.
//
// Values are held as shared_ptr<const V>: R replicas of an object share one
// allocation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "aws/common/env.hpp"
#include "util/require.hpp"

namespace provcloud::aws {

/// Internally synchronized: one mutex per store (= per S3 bucket), so
/// shard-parallel clients can read and write concurrently while ops on the
/// same store stay linearized. Propagation callbacks retake the lock when
/// the clock fires them.
template <typename V>
class ReplicatedKV {
 public:
  using ValuePtr = std::shared_ptr<const V>;

  /// `env` must outlive the store.
  explicit ReplicatedKV(CloudEnv& env)
      : env_(&env),
        mu_(std::make_unique<std::mutex>()),
        replicas_(std::max(1u, env.consistency().replicas)) {}

  /// Write `value` under `key`. Returns the version stamp assigned.
  std::uint64_t put(const std::string& key, V value) {
    return apply_write(key, std::make_shared<const V>(std::move(value)),
                       /*tombstone=*/false);
  }

  /// Delete `key` (tombstone). Idempotent.
  void erase(const std::string& key) {
    apply_write(key, nullptr, /*tombstone=*/true);
  }

  /// Read from a random replica. nullopt when that replica has no live
  /// version yet (or has a tombstone).
  std::optional<ValuePtr> get(const std::string& key) {
    const std::size_t replica = pick_replica();
    std::lock_guard<std::mutex> lock(*mu_);
    return get_from(replica, key);
  }

  /// Read from the coordinator replica: the freshest available view. Used
  /// by tests and by ground-truth verification, never billed as a client
  /// read.
  std::optional<ValuePtr> get_coordinator(const std::string& key) const {
    std::lock_guard<std::mutex> lock(*mu_);
    return get_from(0, key);
  }

  /// Keys visible on a random replica, in lexicographic order, optionally
  /// filtered by prefix. (S3 LIST semantics: also eventually consistent.)
  std::vector<std::string> list(const std::string& prefix = "") {
    const std::size_t replica = pick_replica();
    std::lock_guard<std::mutex> lock(*mu_);
    return list_from(replica, prefix);
  }

  std::vector<std::string> list_coordinator(const std::string& prefix = "") const {
    std::lock_guard<std::mutex> lock(*mu_);
    return list_from(0, prefix);
  }

  /// Number of live keys on the coordinator.
  std::size_t size_coordinator() const {
    std::lock_guard<std::mutex> lock(*mu_);
    std::size_t n = 0;
    for (const auto& [k, e] : replicas_[0].entries)
      if (!e.tombstone) ++n;
    return n;
  }

  unsigned replica_count() const {
    return static_cast<unsigned>(replicas_.size());
  }

 private:
  struct Entry {
    std::uint64_t ts = 0;   // simulated time of the write
    std::uint64_t seq = 0;  // tie-break for same-instant writes
    ValuePtr value;         // null when tombstone
    bool tombstone = false;
  };
  struct Replica {
    std::map<std::string, Entry> entries;
  };

  std::uint64_t apply_write(const std::string& key, ValuePtr value,
                            bool tombstone) {
    const std::uint64_t ts = env_->clock().now();
    std::uint64_t seq = 0;
    Entry entry{0, 0, std::move(value), tombstone};
    {
      std::lock_guard<std::mutex> lock(*mu_);
      seq = next_seq_++;
      entry.ts = ts;
      entry.seq = seq;
      apply_to_replica(0, key, entry);
    }
    for (std::size_t i = 1; i < replicas_.size(); ++i) {
      const sim::SimTime delay = env_->sample_propagation_delay();
      env_->clock().schedule_after(delay, [this, i, key, entry] {
        std::lock_guard<std::mutex> lock(*mu_);
        apply_to_replica(i, key, entry);
      });
    }
    return seq;
  }

  void apply_to_replica(std::size_t i, const std::string& key,
                        const Entry& entry) {
    auto& entries = replicas_[i].entries;
    auto it = entries.find(key);
    if (it != entries.end()) {
      const Entry& cur = it->second;
      // Last-writer-wins: ignore if the replica already has a newer write.
      if (cur.ts > entry.ts || (cur.ts == entry.ts && cur.seq > entry.seq))
        return;
    }
    entries[key] = entry;
  }

  std::size_t pick_replica() {
    if (replicas_.size() == 1) return 0;
    return static_cast<std::size_t>(env_->rng_below(replicas_.size()));
  }

  std::optional<ValuePtr> get_from(std::size_t i, const std::string& key) const {
    const auto& entries = replicas_[i].entries;
    auto it = entries.find(key);
    if (it == entries.end() || it->second.tombstone) return std::nullopt;
    return it->second.value;
  }

  std::vector<std::string> list_from(std::size_t i,
                                     const std::string& prefix) const {
    std::vector<std::string> out;
    const auto& entries = replicas_[i].entries;
    for (auto it = entries.lower_bound(prefix); it != entries.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      if (!it->second.tombstone) out.push_back(it->first);
    }
    return out;
  }

  CloudEnv* env_;
  // Guards replicas_ entries and next_seq_. Heap-held so the store stays
  // movable (S3 moves buckets into its map at creation time; never after a
  // callback could hold the lock).
  std::unique_ptr<std::mutex> mu_;
  std::vector<Replica> replicas_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace provcloud::aws
