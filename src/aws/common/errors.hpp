// AWS-style error codes shared by the three simulated services.
//
// These are *expected* runtime outcomes -- a GET racing replica propagation
// legitimately returns NoSuchKey -- so service calls return
// AwsResult<T> = Expected<T, AwsError> rather than throwing.
#pragma once

#include <string>

#include "util/expected.hpp"

namespace provcloud::aws {

enum class AwsErrorCode {
  kNoSuchBucket,
  kNoSuchKey,
  kNoSuchDomain,
  kNoSuchItem,
  kNoSuchQueue,
  kQueueAlreadyExists,
  kEntityTooLarge,       // S3 object > 5 GB, SQS message > 8 KB
  kMetadataTooLarge,     // S3 user metadata > 2 KB
  kAttributeTooLarge,    // SimpleDB name/value > 1 KB
  kTooManyAttributes,    // SimpleDB > 256 per item or > 100 per call
  kTooManySubmittedItems,  // SimpleDB BatchPutAttributes > 25 items
  kDuplicateItemName,      // SimpleDB BatchPutAttributes repeated item
  kInvalidQueryExpression,
  kInvalidReceiptHandle,
  kInvalidArgument,
};

struct AwsError {
  AwsErrorCode code;
  std::string message;
};

const char* to_string(AwsErrorCode code);

template <typename T>
using AwsResult = util::Expected<T, AwsError>;

inline util::Unexpected<AwsError> aws_error(AwsErrorCode code,
                                            std::string message) {
  return util::Unexpected(AwsError{code, std::move(message)});
}

inline const char* to_string(AwsErrorCode code) {
  switch (code) {
    case AwsErrorCode::kNoSuchBucket: return "NoSuchBucket";
    case AwsErrorCode::kNoSuchKey: return "NoSuchKey";
    case AwsErrorCode::kNoSuchDomain: return "NoSuchDomain";
    case AwsErrorCode::kNoSuchItem: return "NoSuchItem";
    case AwsErrorCode::kNoSuchQueue: return "NoSuchQueue";
    case AwsErrorCode::kQueueAlreadyExists: return "QueueAlreadyExists";
    case AwsErrorCode::kEntityTooLarge: return "EntityTooLarge";
    case AwsErrorCode::kMetadataTooLarge: return "MetadataTooLarge";
    case AwsErrorCode::kAttributeTooLarge: return "AttributeTooLarge";
    case AwsErrorCode::kTooManyAttributes: return "TooManyAttributes";
    case AwsErrorCode::kTooManySubmittedItems: return "NumberSubmittedItemsExceeded";
    case AwsErrorCode::kDuplicateItemName: return "DuplicateItemName";
    case AwsErrorCode::kInvalidQueryExpression: return "InvalidQueryExpression";
    case AwsErrorCode::kInvalidReceiptHandle: return "InvalidReceiptHandle";
    case AwsErrorCode::kInvalidArgument: return "InvalidArgument";
  }
  return "UnknownError";
}

}  // namespace provcloud::aws
