// SimpleDB data model (January 2009 snapshot).
//
// A *domain* holds *items*; an item is a named set of attribute-value pairs.
// Attributes are multi-valued and set-semantic: storing the same (name,
// value) pair twice yields one pair, which is what makes PutAttributes
// idempotent (section 2.2 of the paper). Everything is a string; comparisons
// in the query language are lexicographic.
//
// Limits the paper leans on:
//   * names and values at most 1 KB  -> provenance values above 1 KB must be
//     spilled to S3 (Architectures 2 and 3);
//   * at most 256 attribute pairs per item;
//   * at most 100 attributes per PutAttributes call -> storing a big
//     provenance record takes multiple calls.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace provcloud::aws {

inline constexpr std::size_t kSdbMaxNameValueBytes = util::kKiB;
inline constexpr std::size_t kSdbMaxPairsPerItem = 256;
inline constexpr std::size_t kSdbMaxAttrsPerCall = 100;
inline constexpr std::size_t kSdbMaxItemsPerBatch = 25;
inline constexpr std::size_t kSdbMaxQueryResults = 250;
inline constexpr std::size_t kSdbDefaultQueryResults = 100;

struct SdbAttribute {
  std::string name;
  std::string value;

  bool operator==(const SdbAttribute&) const = default;
  auto operator<=>(const SdbAttribute&) const = default;
};

/// Attribute as sent to PutAttributes: `replace` discards existing values of
/// the same name first (SimpleDB's Replace flag).
struct SdbReplaceableAttribute {
  std::string name;
  std::string value;
  bool replace = false;
};

/// One item's puts inside a BatchPutAttributes call. Unlike PutAttributes'
/// 100-attribute-per-call ceiling, a batch entry may carry attributes up to
/// the full 256-pair item limit, so a record that used to take several
/// PutAttributes round trips fits one batch entry.
struct SdbBatchEntry {
  std::string item;
  std::vector<SdbReplaceableAttribute> attrs;
};

/// An item's attributes: name -> set of values.
using SdbItem = std::map<std::string, std::set<std::string>>;

/// Number of (name, value) pairs in an item.
std::size_t sdb_pair_count(const SdbItem& item);

/// Bytes of attribute payload in an item (sum of name+value sizes per pair).
std::uint64_t sdb_item_bytes(const SdbItem& item);

/// One replica's view of a domain: the items plus the automatic index
/// SimpleDB maintains ("SimpleDB automatically indexes data as it is
/// inserted"). The index maps attribute name -> value -> item names and is
/// what makes Query selective instead of a scan.
struct SdbDomainData {
  std::map<std::string, SdbItem> items;
  std::map<std::string, std::map<std::string, std::set<std::string>>> index;

  void apply_put(const std::string& item,
                 const std::vector<SdbReplaceableAttribute>& attrs);
  /// Empty `attrs` deletes the whole item.
  void apply_delete(const std::string& item,
                    const std::vector<SdbAttribute>& attrs);

 private:
  void index_add(const std::string& item, const std::string& name,
                 const std::string& value);
  void index_remove(const std::string& item, const std::string& name,
                    const std::string& value);
};

}  // namespace provcloud::aws
