// Amazon SimpleDB simulator (January 2009 feature snapshot).
//
// Provides indexing and querying over items of attribute-value pairs.
// Reads (GetAttributes, Query, QueryWithAttributes, Select) are eventually
// consistent: they are served by a random replica, so "an item inserted
// might not be returned in a query that is run immediately after the
// insert". Writes are idempotent (attribute pairs are sets).
//
// Billing: ops metered on service "sdb". Real SimpleDB billed machine-hours;
// the paper normalizes to operation counts, which is what the meter records
// (src/cost can convert both ways).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "aws/common/env.hpp"
#include "aws/common/errors.hpp"
#include "aws/simpledb/query_language.hpp"
#include "aws/simpledb/types.hpp"
#include "util/spinlock.hpp"

namespace provcloud::aws {

class SimpleDbService {
 public:
  explicit SimpleDbService(CloudEnv& env) : env_(&env) {}
  SimpleDbService(const SimpleDbService&) = delete;
  SimpleDbService& operator=(const SimpleDbService&) = delete;

  AwsResult<void> create_domain(const std::string& domain);
  AwsResult<void> delete_domain(const std::string& domain);
  std::vector<std::string> list_domains();

  /// Insert or modify attributes of an item. At most 100 attributes per
  /// call; the resulting item must stay within 256 pairs; names and values
  /// within 1 KB. Idempotent.
  AwsResult<void> put_attributes(const std::string& domain,
                                 const std::string& item,
                                 const std::vector<SdbReplaceableAttribute>& attrs);

  /// Per-item failure from BatchPutAttributes: `index` of the submitted
  /// entry plus the error the entry would have produced standalone.
  struct BatchItemError {
    std::size_t index = 0;
    AwsError error;
  };
  struct BatchPutResult {
    std::vector<BatchItemError> failed;
    bool ok() const { return failed.empty(); }
  };
  /// Insert or modify up to 25 items in one round trip (one billed call).
  /// Whole-call problems -- missing domain, empty batch, more than 25
  /// entries, duplicate item names -- fail the call and nothing is applied.
  /// Per-item validation failures (oversized names/values, the 256-pair
  /// limit) skip only that entry; the rest apply, and every skipped entry is
  /// reported so the caller can retry or split it.
  AwsResult<BatchPutResult> batch_put_attributes(
      const std::string& domain, const std::vector<SdbBatchEntry>& entries);

  /// Delete specific attribute pairs, all values of named attributes
  /// (empty value), or the whole item (empty list). Idempotent.
  AwsResult<void> delete_attributes(const std::string& domain,
                                    const std::string& item,
                                    const std::vector<SdbAttribute>& attrs = {});

  /// All attributes of an item (or the named subset). A missing item yields
  /// an empty result, as the real service does.
  AwsResult<SdbItem> get_attributes(const std::string& domain,
                                    const std::string& item,
                                    const std::vector<std::string>& names = {});

  struct QueryResult {
    std::vector<std::string> item_names;
    std::optional<std::string> next_token;
  };
  /// Bracket-language query returning item names. Empty expression matches
  /// every item.
  AwsResult<QueryResult> query(const std::string& domain,
                               const std::string& expression,
                               std::size_t max_results = kSdbDefaultQueryResults,
                               const std::string& next_token = "");

  struct ItemWithAttributes {
    std::string name;
    SdbItem attributes;
  };
  struct QueryWithAttributesResult {
    std::vector<ItemWithAttributes> items;
    std::optional<std::string> next_token;
  };
  /// Query returning the matching items *with* their attributes, optionally
  /// restricted to `attribute_filter`.
  AwsResult<QueryWithAttributesResult> query_with_attributes(
      const std::string& domain, const std::string& expression,
      const std::vector<std::string>& attribute_filter = {},
      std::size_t max_results = kSdbDefaultQueryResults,
      const std::string& next_token = "");

  struct SelectResult {
    std::vector<ItemWithAttributes> items;
    std::optional<std::uint64_t> count;  // set for count(*)
    std::optional<std::string> next_token;
  };
  /// SQL-form query ("SELECT provides functionality similar to
  /// QueryWithAttributes").
  AwsResult<SelectResult> select(const std::string& expression,
                                 const std::string& next_token = "");

  /// --- test/verification access (not billed, coordinator view) ---
  std::optional<SdbItem> peek_item(const std::string& domain,
                                   const std::string& item) const;
  std::vector<std::string> peek_item_names(const std::string& domain) const;
  std::uint64_t item_count(const std::string& domain) const;
  std::uint64_t stored_bytes() const { return stored_bytes_; }

 private:
  struct Domain {
    std::vector<SdbDomainData> replicas;  // [0] is the coordinator
    /// Earliest time the next op may apply on each replica: write ops must
    /// apply in issue order (FIFO per replica) or replace-semantics writes
    /// would leave replicas permanently divergent instead of *eventually*
    /// consistent.
    std::vector<sim::SimTime> apply_floor;
    /// Per-domain lock: SimpleDB throttles (and here, serializes) per
    /// domain, so scatter/gather over distinct shard domains runs truly in
    /// parallel while ops on one domain stay linearized. Heap-held to keep
    /// Domain movable into the map; propagation callbacks retake it.
    std::unique_ptr<std::mutex> mu = std::make_unique<std::mutex>();
  };

  Domain* find_domain(const std::string& name);
  const Domain* find_domain(const std::string& name) const;
  /// Shared PutAttributes / BatchPutAttributes validation of one item's
  /// attributes: `max_attrs` per call (100 single, 256 batched), 1 KB
  /// name/value limits and the 256-pair item limit against the coordinator.
  static AwsResult<void> validate_put(
      const Domain& d, const std::string& item,
      const std::vector<SdbReplaceableAttribute>& attrs, std::size_t max_attrs);
  SdbDomainData& pick_replica(Domain& d);
  /// Apply a write op to the coordinator now and to the other replicas
  /// after propagation delays (FIFO per replica). `item` is the touched
  /// item, used for incremental storage accounting.
  void replicate(Domain& d, const std::string& item,
                 std::function<void(SdbDomainData&)> op);
  /// Coordinator-view stored bytes of one item (name + attribute payload).
  static std::uint64_t item_stored_bytes(const SdbDomainData& replica,
                                         const std::string& item);
  void recompute_storage_gauge();

  /// Shared pagination helper: token is a decimal offset.
  static std::size_t token_offset(const std::string& token);

  CloudEnv* env_;
  // Guards the domain map structure only (shared for the per-call domain
  // lookup on every request; exclusive for create/delete).
  mutable std::shared_mutex domains_mu_;
  std::map<std::string, Domain> domains_;
  /// Orders concurrent cross-domain gauge updates and their meter publish.
  util::Spinlock storage_gauge_mu_;
  std::atomic<std::uint64_t> stored_bytes_{0};
};

}  // namespace provcloud::aws
