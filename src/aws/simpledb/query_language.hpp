// The 2009 SimpleDB query languages.
//
// Two surfaces, both implemented here over SdbDomainData:
//
// 1. The original bracket language used by Query/QueryWithAttributes:
//
//      ['color' = 'red' or 'color' = 'blue'] intersection not ['size' < 'm']
//
//    Grammar (left-associative set operators):
//      expression := term (('union' | 'intersection') term)*
//      term       := ['not'] predicate
//      predicate  := '[' comparison (('and' | 'or') comparison)* ']'
//      comparison := 'attr' op 'value'
//      op         := '=' | '!=' | '<' | '<=' | '>' | '>=' | 'starts-with'
//
//    All comparisons inside one predicate must reference the same attribute
//    (cross-attribute conditions require `intersection`), `and` binds
//    tighter than `or`, and an AND-chain must be satisfied by a *single*
//    value of the (multi-valued) attribute -- all per the original service
//    semantics. `not` selects items that carry the attribute but do not
//    match. Comparisons are lexicographic on strings.
//
// 2. The SELECT form ("queries ... expressed in the standard SQL form"):
//
//      select * from mydomain where input = 'bar:2' and type = 'file' limit 50
//      select itemName() from mydomain where name like 'blast%'
//      select count(*) from mydomain
//
//    Output clause: '*', 'itemName()', 'count(*)', or an attribute list.
//    WHERE supports =, !=, <, <=, >, >=, like 'pattern%', in ('a','b',...),
//    between 'x' and 'y', is null / is not null, and/or/not with
//    parentheses, and the every() quantifier (every value of a multi-valued
//    attribute must satisfy the comparison, instead of the default "some
//    value"). ORDER BY sorts on one attribute (or itemName()) ascending or
//    descending; as in the real service, the ordered attribute must be
//    constrained in the WHERE clause.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "aws/simpledb/types.hpp"
#include "util/expected.hpp"

namespace provcloud::aws::sdbql {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kStartsWith };

struct Comparison {
  CompareOp op;
  std::string value;
};

/// One bracket predicate: OR of AND-chains over a single attribute.
struct Predicate {
  std::string attribute;
  std::vector<std::vector<Comparison>> or_groups;  // OR of AND-chains
  bool negated = false;
};

enum class SetOp { kUnion, kIntersection };

struct QueryExpression {
  std::vector<Predicate> predicates;
  std::vector<SetOp> ops;  // ops[i] combines predicates[i] and predicates[i+1]
};

using ParseResult = util::Expected<QueryExpression, std::string>;

/// Parse the bracket language. Error carries a human-readable message (the
/// service maps it to InvalidQueryExpression).
ParseResult parse_query(std::string_view text);

/// Evaluate against one replica's domain data; returns matching item names
/// in lexicographic order.
std::set<std::string> evaluate(const QueryExpression& expr,
                               const SdbDomainData& domain);

// --- SELECT ---

enum class SelectOutput { kAllAttributes, kItemName, kCount, kAttributeList };

/// WHERE condition tree.
struct Condition;
using ConditionPtr = std::unique_ptr<Condition>;

struct Condition {
  enum class Kind {
    kCompare,
    kLike,
    kIn,
    kBetween,
    kIsNull,
    kIsNotNull,
    kAnd,
    kOr,
    kNot,
  };
  Kind kind;
  // Leaf kinds:
  std::string attribute;
  CompareOp op = CompareOp::kEq;    // for kCompare
  std::string value;                // kCompare value; kLike pattern;
                                    // kBetween lower bound
  std::string value2;               // kBetween upper bound
  std::vector<std::string> values;  // kIn list
  /// every(attr): all values of the attribute must satisfy the leaf
  /// (default: some value suffices).
  bool every = false;
  // kAnd / kOr: both children; kNot: left only.
  ConditionPtr left;
  ConditionPtr right;
};

struct SelectStatement {
  SelectOutput output = SelectOutput::kAllAttributes;
  std::vector<std::string> output_attributes;  // for kAttributeList
  std::string domain;
  ConditionPtr where;  // null = match everything
  std::size_t limit = kSdbMaxQueryResults;
  /// ORDER BY: empty = item-name order. Must be constrained in WHERE.
  std::string order_by;
  bool order_descending = false;
};

using SelectParseResult = util::Expected<SelectStatement, std::string>;

SelectParseResult parse_select(std::string_view text);

/// Matching item names for a SELECT's WHERE clause.
std::set<std::string> evaluate_where(const Condition* cond,
                                     const SdbDomainData& domain);

/// Matching item names ordered per the statement's ORDER BY (item-name
/// order when absent).
std::vector<std::string> evaluate_select_order(const SelectStatement& stmt,
                                               const SdbDomainData& domain);

}  // namespace provcloud::aws::sdbql
