#include "aws/simpledb/query_language.hpp"

#include <algorithm>
#include <cctype>

namespace provcloud::aws::sdbql {
namespace {

// ---------------------------------------------------------------------------
// Shared comparison semantics: everything is a string, compared
// lexicographically, exactly as 2009 SimpleDB did (clients zero-pad numbers).
// ---------------------------------------------------------------------------

bool compare(const std::string& lhs, CompareOp op, const std::string& rhs) {
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return lhs != rhs;
    case CompareOp::kLt: return lhs < rhs;
    case CompareOp::kLe: return lhs <= rhs;
    case CompareOp::kGt: return lhs > rhs;
    case CompareOp::kGe: return lhs >= rhs;
    case CompareOp::kStartsWith:
      return lhs.size() >= rhs.size() && lhs.compare(0, rhs.size(), rhs) == 0;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Tokenizer shared by both languages. Tokens: quoted strings, words,
// punctuation ([ ] ( ) , *), and operators.
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kString, kWord, kOp, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  util::Expected<Token, std::string> next() {
    skip_space();
    if (pos_ >= text_.size()) return Token{Token::Kind::kEnd, ""};
    const char c = text_[pos_];
    if (c == '\'' || c == '"') return lex_string(c);
    if (c == '[' || c == ']' || c == '(' || c == ')' || c == ',' || c == '*') {
      ++pos_;
      return Token{Token::Kind::kPunct, std::string(1, c)};
    }
    if (c == '=' ) {
      ++pos_;
      return Token{Token::Kind::kOp, "="};
    }
    if (c == '!' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      pos_ += 2;
      return Token{Token::Kind::kOp, "!="};
    }
    if (c == '<' || c == '>') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == '=') {
        op.push_back('=');
        ++pos_;
      }
      return Token{Token::Kind::kOp, op};
    }
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
        c == '-' || c == '.' || c == '/' || c == ':') {
      return lex_word();
    }
    return util::Unexpected(std::string("unexpected character '") + c + "'");
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  util::Expected<Token, std::string> lex_string(char quote) {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == quote) {
        // Doubled quote escapes itself ('it''s').
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == quote) {
          out.push_back(quote);
          pos_ += 2;
          continue;
        }
        ++pos_;
        return Token{Token::Kind::kString, out};
      }
      out.push_back(c);
      ++pos_;
    }
    return util::Unexpected(std::string("unterminated string literal"));
  }

  util::Expected<Token, std::string> lex_word() {
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
          c == '-' || c == '.' || c == '/' || c == ':') {
        out.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    // "starts-with" lexes as a word thanks to '-'.
    return Token{Token::Kind::kWord, out};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::optional<CompareOp> op_from_token(const Token& tok) {
  if (tok.kind == Token::Kind::kOp) {
    if (tok.text == "=") return CompareOp::kEq;
    if (tok.text == "!=") return CompareOp::kNe;
    if (tok.text == "<") return CompareOp::kLt;
    if (tok.text == "<=") return CompareOp::kLe;
    if (tok.text == ">") return CompareOp::kGt;
    if (tok.text == ">=") return CompareOp::kGe;
  }
  if (tok.kind == Token::Kind::kWord && lower(tok.text) == "starts-with")
    return CompareOp::kStartsWith;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Bracket-language parser.
// ---------------------------------------------------------------------------

class QueryParser {
 public:
  explicit QueryParser(std::string_view text) : lexer_(text) {}

  ParseResult parse() {
    if (auto err = advance(); !err.empty()) return util::Unexpected(err);
    QueryExpression expr;
    auto first = parse_term();
    if (!first) return util::Unexpected(first.error());
    expr.predicates.push_back(std::move(*first));
    while (cur_.kind == Token::Kind::kWord) {
      const std::string word = lower(cur_.text);
      SetOp op;
      if (word == "union") {
        op = SetOp::kUnion;
      } else if (word == "intersection") {
        op = SetOp::kIntersection;
      } else {
        return util::Unexpected("expected 'union' or 'intersection', got '" +
                                cur_.text + "'");
      }
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      auto term = parse_term();
      if (!term) return util::Unexpected(term.error());
      expr.ops.push_back(op);
      expr.predicates.push_back(std::move(*term));
    }
    if (cur_.kind != Token::Kind::kEnd)
      return util::Unexpected("trailing input after expression: '" +
                              cur_.text + "'");
    return expr;
  }

 private:
  std::string advance() {
    auto tok = lexer_.next();
    if (!tok) return tok.error();
    cur_ = std::move(*tok);
    return {};
  }

  util::Expected<Predicate, std::string> parse_term() {
    Predicate pred;
    if (cur_.kind == Token::Kind::kWord && lower(cur_.text) == "not") {
      pred.negated = true;
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
    }
    if (!(cur_.kind == Token::Kind::kPunct && cur_.text == "["))
      return util::Unexpected("expected '[' to open a predicate");
    if (auto err = advance(); !err.empty()) return util::Unexpected(err);

    pred.or_groups.emplace_back();
    for (;;) {
      // comparison: 'attr' op 'value'
      if (cur_.kind != Token::Kind::kString)
        return util::Unexpected("expected quoted attribute name");
      const std::string attr = cur_.text;
      if (pred.attribute.empty()) {
        pred.attribute = attr;
      } else if (pred.attribute != attr) {
        return util::Unexpected(
            "all comparisons in a predicate must reference the same "
            "attribute ('" + pred.attribute + "' vs '" + attr +
            "'); use 'intersection' across attributes");
      }
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      const auto op = op_from_token(cur_);
      if (!op) return util::Unexpected("expected comparison operator");
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (cur_.kind != Token::Kind::kString)
        return util::Unexpected("expected quoted value");
      pred.or_groups.back().push_back(Comparison{*op, cur_.text});
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);

      if (cur_.kind == Token::Kind::kPunct && cur_.text == "]") {
        if (auto err = advance(); !err.empty()) return util::Unexpected(err);
        return pred;
      }
      if (cur_.kind == Token::Kind::kWord) {
        const std::string word = lower(cur_.text);
        if (word == "and") {
          if (auto err = advance(); !err.empty()) return util::Unexpected(err);
          continue;  // same AND-chain
        }
        if (word == "or") {
          pred.or_groups.emplace_back();
          if (auto err = advance(); !err.empty()) return util::Unexpected(err);
          continue;
        }
      }
      return util::Unexpected("expected 'and', 'or' or ']' in predicate");
    }
  }

  Lexer lexer_;
  Token cur_;
};

// An AND-chain must be satisfied by one single value of the attribute.
bool value_matches_chain(const std::string& value,
                         const std::vector<Comparison>& chain) {
  for (const Comparison& c : chain)
    if (!compare(value, c.op, c.value)) return false;
  return true;
}

bool item_matches_predicate(const SdbItem& item, const Predicate& pred) {
  auto attr_it = item.find(pred.attribute);
  if (attr_it == item.end()) return false;  // `not` handled by caller
  for (const auto& chain : pred.or_groups)
    for (const std::string& value : attr_it->second)
      if (value_matches_chain(value, chain)) return true;
  return false;
}

std::set<std::string> evaluate_predicate(const Predicate& pred,
                                         const SdbDomainData& domain) {
  // Candidate set via the automatic index: items that carry the attribute.
  std::set<std::string> candidates;
  auto idx_it = domain.index.find(pred.attribute);
  if (idx_it != domain.index.end()) {
    // For a leading equality / starts-with / range comparison we could seek
    // directly; for simplicity and correctness with OR-groups we take the
    // attribute's full posting list and verify per item. This is still
    // selective (never touches items lacking the attribute).
    for (const auto& [value, items] : idx_it->second)
      candidates.insert(items.begin(), items.end());
  }
  std::set<std::string> out;
  for (const std::string& name : candidates) {
    const SdbItem& item = domain.items.at(name);
    const bool match = item_matches_predicate(item, pred);
    // Negation semantics: items that have the attribute but do not match.
    if (match != pred.negated) out.insert(name);
  }
  return out;
}

std::set<std::string> set_union(const std::set<std::string>& a,
                                const std::set<std::string>& b) {
  std::set<std::string> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::inserter(out, out.begin()));
  return out;
}

std::set<std::string> set_intersection(const std::set<std::string>& a,
                                       const std::set<std::string>& b) {
  std::set<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

}  // namespace

ParseResult parse_query(std::string_view text) {
  return QueryParser(text).parse();
}

std::set<std::string> evaluate(const QueryExpression& expr,
                               const SdbDomainData& domain) {
  if (expr.predicates.empty()) return {};
  std::set<std::string> result = evaluate_predicate(expr.predicates[0], domain);
  for (std::size_t i = 0; i < expr.ops.size(); ++i) {
    const std::set<std::string> rhs =
        evaluate_predicate(expr.predicates[i + 1], domain);
    result = expr.ops[i] == SetOp::kUnion ? set_union(result, rhs)
                                          : set_intersection(result, rhs);
  }
  return result;
}

// ---------------------------------------------------------------------------
// SELECT parser: select <output> from <domain> [where <cond>] [limit N]
// ---------------------------------------------------------------------------

namespace {

class SelectParser {
 public:
  explicit SelectParser(std::string_view text) : lexer_(text) {}

  SelectParseResult parse() {
    if (auto err = advance(); !err.empty()) return util::Unexpected(err);
    if (!eat_word("select")) return util::Unexpected(std::string("expected 'select'"));

    SelectStatement stmt;
    if (auto err = parse_output(stmt); !err.empty())
      return util::Unexpected(err);

    if (!eat_word("from")) return util::Unexpected(std::string("expected 'from'"));
    if (cur_.kind != Token::Kind::kWord && cur_.kind != Token::Kind::kString)
      return util::Unexpected(std::string("expected domain name"));
    stmt.domain = cur_.text;
    if (auto err = advance(); !err.empty()) return util::Unexpected(err);

    if (is_word("where")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      auto cond = parse_or();
      if (!cond) return util::Unexpected(cond.error());
      stmt.where = std::move(*cond);
    }
    if (is_word("order")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (!eat_word("by"))
        return util::Unexpected(std::string("expected 'by' after 'order'"));
      if (cur_.kind != Token::Kind::kWord && cur_.kind != Token::Kind::kString)
        return util::Unexpected(std::string("expected attribute in order by"));
      stmt.order_by = cur_.text;
      const bool maybe_item_name = lower(cur_.text) == "itemname";
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (maybe_item_name && cur_.kind == Token::Kind::kPunct &&
          cur_.text == "(") {
        if (auto err = advance(); !err.empty()) return util::Unexpected(err);
        if (!(cur_.kind == Token::Kind::kPunct && cur_.text == ")"))
          return util::Unexpected(std::string("expected ')' after itemName("));
        if (auto err = advance(); !err.empty()) return util::Unexpected(err);
        stmt.order_by = "itemName()";
      }
      if (is_word("desc")) {
        stmt.order_descending = true;
        if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      } else if (is_word("asc")) {
        if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      }
      // The real service rejects sorting on an unconstrained attribute
      // ("Invalid sort expression"): the order-by attribute must appear in
      // the WHERE clause.
      if (stmt.order_by != "itemName()" &&
          !condition_mentions(stmt.where.get(), stmt.order_by))
        return util::Unexpected(
            "order-by attribute '" + stmt.order_by +
            "' must be constrained in the where clause");
    }
    if (is_word("limit")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (cur_.kind != Token::Kind::kWord)
        return util::Unexpected(std::string("expected limit count"));
      try {
        stmt.limit = std::stoul(cur_.text);
      } catch (...) {
        return util::Unexpected("bad limit: '" + cur_.text + "'");
      }
      stmt.limit = std::min(stmt.limit, kSdbMaxQueryResults);
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
    }
    if (cur_.kind != Token::Kind::kEnd)
      return util::Unexpected("trailing input after select: '" + cur_.text + "'");
    return stmt;
  }

 private:
  std::string advance() {
    auto tok = lexer_.next();
    if (!tok) return tok.error();
    cur_ = std::move(*tok);
    return {};
  }

  bool is_word(std::string_view w) const {
    return cur_.kind == Token::Kind::kWord && lower(cur_.text) == w;
  }

  bool eat_word(std::string_view w) {
    if (!is_word(w)) return false;
    return advance().empty();
  }

  static bool condition_mentions(const Condition* cond,
                                 const std::string& attribute) {
    if (cond == nullptr) return false;
    switch (cond->kind) {
      case Condition::Kind::kAnd:
      case Condition::Kind::kOr:
        return condition_mentions(cond->left.get(), attribute) ||
               condition_mentions(cond->right.get(), attribute);
      case Condition::Kind::kNot:
        return condition_mentions(cond->left.get(), attribute);
      default:
        return cond->attribute == attribute;
    }
  }

  std::string parse_output(SelectStatement& stmt) {
    if (cur_.kind == Token::Kind::kPunct && cur_.text == "*") {
      stmt.output = SelectOutput::kAllAttributes;
      return advance();
    }
    if (is_word("itemname")) {
      // itemName()
      if (auto err = advance(); !err.empty()) return err;
      if (cur_.kind == Token::Kind::kPunct && cur_.text == "(") {
        if (auto err = advance(); !err.empty()) return err;
        if (!(cur_.kind == Token::Kind::kPunct && cur_.text == ")"))
          return "expected ')' after itemName(";
        if (auto err = advance(); !err.empty()) return err;
      }
      stmt.output = SelectOutput::kItemName;
      return {};
    }
    if (is_word("count")) {
      if (auto err = advance(); !err.empty()) return err;
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == "("))
        return "expected '(' after count";
      if (auto err = advance(); !err.empty()) return err;
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == "*"))
        return "expected '*' in count(*)";
      if (auto err = advance(); !err.empty()) return err;
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == ")"))
        return "expected ')' in count(*)";
      if (auto err = advance(); !err.empty()) return err;
      stmt.output = SelectOutput::kCount;
      return {};
    }
    // Attribute list.
    stmt.output = SelectOutput::kAttributeList;
    for (;;) {
      if (cur_.kind != Token::Kind::kWord && cur_.kind != Token::Kind::kString)
        return "expected attribute name in output list";
      stmt.output_attributes.push_back(cur_.text);
      if (auto err = advance(); !err.empty()) return err;
      if (cur_.kind == Token::Kind::kPunct && cur_.text == ",") {
        if (auto err = advance(); !err.empty()) return err;
        continue;
      }
      return {};
    }
  }

  using CondResult = util::Expected<ConditionPtr, std::string>;

  CondResult parse_or() {
    auto left = parse_and();
    if (!left) return left;
    while (is_word("or")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      auto right = parse_and();
      if (!right) return right;
      auto node = std::make_unique<Condition>();
      node->kind = Condition::Kind::kOr;
      node->left = std::move(*left);
      node->right = std::move(*right);
      left = CondResult(std::move(node));
    }
    return left;
  }

  CondResult parse_and() {
    auto left = parse_unary();
    if (!left) return left;
    while (is_word("and")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      auto right = parse_unary();
      if (!right) return right;
      auto node = std::make_unique<Condition>();
      node->kind = Condition::Kind::kAnd;
      node->left = std::move(*left);
      node->right = std::move(*right);
      left = CondResult(std::move(node));
    }
    return left;
  }

  CondResult parse_unary() {
    if (is_word("not")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      auto child = parse_unary();
      if (!child) return child;
      auto node = std::make_unique<Condition>();
      node->kind = Condition::Kind::kNot;
      node->left = std::move(*child);
      return CondResult(std::move(node));
    }
    if (cur_.kind == Token::Kind::kPunct && cur_.text == "(") {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      auto inner = parse_or();
      if (!inner) return inner;
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == ")"))
        return util::Unexpected(std::string("expected ')'"));
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      return inner;
    }
    return parse_comparison();
  }

  CondResult parse_comparison() {
    if (cur_.kind != Token::Kind::kWord && cur_.kind != Token::Kind::kString)
      return util::Unexpected(std::string("expected attribute name"));
    auto node = std::make_unique<Condition>();
    // every(attr): the universal quantifier over multi-valued attributes.
    if (is_word("every")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == "("))
        return util::Unexpected(std::string("expected '(' after every"));
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (cur_.kind != Token::Kind::kWord && cur_.kind != Token::Kind::kString)
        return util::Unexpected(std::string("expected attribute in every()"));
      node->attribute = cur_.text;
      node->every = true;
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == ")"))
        return util::Unexpected(std::string("expected ')' after every(attr"));
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      return parse_leaf_operator(std::move(node));
    }
    node->attribute = cur_.text;
    const bool maybe_item_name =
        cur_.kind == Token::Kind::kWord && lower(cur_.text) == "itemname";
    if (auto err = advance(); !err.empty()) return util::Unexpected(err);
    if (maybe_item_name && cur_.kind == Token::Kind::kPunct &&
        cur_.text == "(") {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == ")"))
        return util::Unexpected(std::string("expected ')' after itemName("));
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      node->attribute = "itemName()";
    }
    return parse_leaf_operator(std::move(node));
  }

  /// Operator + operand(s) of a leaf condition whose attribute is parsed.
  CondResult parse_leaf_operator(ConditionPtr node) {
    if (is_word("like")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (cur_.kind != Token::Kind::kString)
        return util::Unexpected(std::string("expected pattern after 'like'"));
      node->kind = Condition::Kind::kLike;
      node->value = cur_.text;
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      return CondResult(std::move(node));
    }
    if (is_word("in")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == "("))
        return util::Unexpected(std::string("expected '(' after 'in'"));
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      for (;;) {
        if (cur_.kind != Token::Kind::kString)
          return util::Unexpected(std::string("expected value in IN list"));
        node->values.push_back(cur_.text);
        if (auto err = advance(); !err.empty()) return util::Unexpected(err);
        if (cur_.kind == Token::Kind::kPunct && cur_.text == ",") {
          if (auto err = advance(); !err.empty()) return util::Unexpected(err);
          continue;
        }
        break;
      }
      if (!(cur_.kind == Token::Kind::kPunct && cur_.text == ")"))
        return util::Unexpected(std::string("expected ')' closing IN list"));
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      node->kind = Condition::Kind::kIn;
      return CondResult(std::move(node));
    }
    if (is_word("between")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (cur_.kind != Token::Kind::kString)
        return util::Unexpected(std::string("expected lower bound"));
      node->value = cur_.text;
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      if (!eat_word("and"))
        return util::Unexpected(std::string("expected 'and' in between"));
      if (cur_.kind != Token::Kind::kString)
        return util::Unexpected(std::string("expected upper bound"));
      node->value2 = cur_.text;
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      node->kind = Condition::Kind::kBetween;
      return CondResult(std::move(node));
    }
    if (is_word("is")) {
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      bool negated = false;
      if (is_word("not")) {
        negated = true;
        if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      }
      if (!is_word("null"))
        return util::Unexpected(std::string("expected 'null' after 'is'"));
      if (auto err = advance(); !err.empty()) return util::Unexpected(err);
      node->kind =
          negated ? Condition::Kind::kIsNotNull : Condition::Kind::kIsNull;
      return CondResult(std::move(node));
    }
    const auto op = op_from_token(cur_);
    if (!op)
      return util::Unexpected(std::string("expected comparison operator"));
    if (auto err = advance(); !err.empty()) return util::Unexpected(err);
    if (cur_.kind != Token::Kind::kString && cur_.kind != Token::Kind::kWord)
      return util::Unexpected(std::string("expected value literal"));
    node->kind = Condition::Kind::kCompare;
    node->op = *op;
    node->value = cur_.text;
    if (auto err = advance(); !err.empty()) return util::Unexpected(err);
    return CondResult(std::move(node));
  }

  Lexer lexer_;
  Token cur_;
};

bool like_match(const std::string& value, const std::string& pattern) {
  // SQL LIKE with '%' wildcards only (the form SimpleDB supported).
  // Implemented by splitting on '%' and greedy sequential search.
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= pattern.size(); ++i) {
    if (i == pattern.size() || pattern[i] == '%') {
      parts.push_back(pattern.substr(start, i - start));
      start = i + 1;
    }
  }
  const bool anchored_front = !pattern.empty() && pattern.front() != '%';
  const bool anchored_back = !pattern.empty() && pattern.back() != '%';
  std::size_t pos = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    if (part.empty()) continue;
    std::size_t found;
    if (i == 0 && anchored_front) {
      if (value.compare(0, part.size(), part) != 0) return false;
      found = 0;
    } else {
      found = value.find(part, pos);
      if (found == std::string::npos) return false;
    }
    pos = found + part.size();
  }
  if (anchored_back) {
    const std::string& last = parts.back();
    if (value.size() < last.size() ||
        value.compare(value.size() - last.size(), last.size(), last) != 0)
      return false;
  }
  return true;
}

bool value_matches_leaf(const std::string& v, const Condition& cond) {
  switch (cond.kind) {
    case Condition::Kind::kCompare:
      return compare(v, cond.op, cond.value);
    case Condition::Kind::kLike:
      return like_match(v, cond.value);
    case Condition::Kind::kIn:
      for (const std::string& candidate : cond.values)
        if (v == candidate) return true;
      return false;
    case Condition::Kind::kBetween:
      return v >= cond.value && v <= cond.value2;
    default:
      return false;
  }
}

bool item_matches_condition(const std::string& name, const SdbItem& item,
                            const Condition& cond) {
  switch (cond.kind) {
    case Condition::Kind::kCompare:
    case Condition::Kind::kLike:
    case Condition::Kind::kIn:
    case Condition::Kind::kBetween: {
      if (cond.attribute == "itemName()") return value_matches_leaf(name, cond);
      auto it = item.find(cond.attribute);
      if (it == item.end()) return false;
      if (cond.every) {
        for (const std::string& v : it->second)
          if (!value_matches_leaf(v, cond)) return false;
        return true;
      }
      for (const std::string& v : it->second)
        if (value_matches_leaf(v, cond)) return true;
      return false;
    }
    case Condition::Kind::kIsNull:
      return item.find(cond.attribute) == item.end();
    case Condition::Kind::kIsNotNull:
      return item.find(cond.attribute) != item.end();
    case Condition::Kind::kAnd:
      return item_matches_condition(name, item, *cond.left) &&
             item_matches_condition(name, item, *cond.right);
    case Condition::Kind::kOr:
      return item_matches_condition(name, item, *cond.left) ||
             item_matches_condition(name, item, *cond.right);
    case Condition::Kind::kNot:
      return !item_matches_condition(name, item, *cond.left);
  }
  return false;
}

/// True when the condition tree can only be satisfied by items carrying
/// `attr` -- lets us seed candidates from the index.
const std::string* index_seed(const Condition& cond) {
  switch (cond.kind) {
    case Condition::Kind::kCompare:
    case Condition::Kind::kLike:
    case Condition::Kind::kIn:
    case Condition::Kind::kBetween:
    case Condition::Kind::kIsNotNull:
      return cond.attribute == "itemName()" ? nullptr : &cond.attribute;
    case Condition::Kind::kAnd: {
      const std::string* left = index_seed(*cond.left);
      return left != nullptr ? left : index_seed(*cond.right);
    }
    default:
      return nullptr;
  }
}

}  // namespace

SelectParseResult parse_select(std::string_view text) {
  return SelectParser(text).parse();
}

std::set<std::string> evaluate_where(const Condition* cond,
                                     const SdbDomainData& domain) {
  std::set<std::string> out;
  if (cond == nullptr) {
    for (const auto& [name, item] : domain.items) out.insert(name);
    return out;
  }
  // Seed from the index when the condition implies a required attribute;
  // otherwise scan the domain (is null / not / itemName() conditions).
  if (const std::string* attr = index_seed(*cond)) {
    auto idx_it = domain.index.find(*attr);
    if (idx_it == domain.index.end()) return out;
    std::set<std::string> candidates;
    for (const auto& [value, items] : idx_it->second)
      candidates.insert(items.begin(), items.end());
    for (const std::string& name : candidates)
      if (item_matches_condition(name, domain.items.at(name), *cond))
        out.insert(name);
    return out;
  }
  for (const auto& [name, item] : domain.items)
    if (item_matches_condition(name, item, *cond)) out.insert(name);
  return out;
}

std::vector<std::string> evaluate_select_order(const SelectStatement& stmt,
                                               const SdbDomainData& domain) {
  const std::set<std::string> matches =
      evaluate_where(stmt.where.get(), domain);
  std::vector<std::string> out(matches.begin(), matches.end());
  if (!stmt.order_by.empty() && stmt.order_by != "itemName()") {
    // Sort key: the smallest value of the order-by attribute (items in the
    // result set are guaranteed to carry it by the parser's constraint
    // rule, but be defensive anyway).
    const auto key_of = [&](const std::string& name) -> const std::string* {
      auto item_it = domain.items.find(name);
      if (item_it == domain.items.end()) return nullptr;
      auto attr_it = item_it->second.find(stmt.order_by);
      if (attr_it == item_it->second.end() || attr_it->second.empty())
        return nullptr;
      return &*attr_it->second.begin();
    };
    std::stable_sort(out.begin(), out.end(),
                     [&](const std::string& a, const std::string& b) {
                       const std::string* ka = key_of(a);
                       const std::string* kb = key_of(b);
                       if (ka == nullptr || kb == nullptr)
                         return kb != nullptr ? false : (ka != nullptr);
                       return *ka < *kb;
                     });
  }
  if (stmt.order_descending) std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace provcloud::aws::sdbql
