#include "aws/simpledb/simpledb.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace provcloud::aws {

namespace {
constexpr const char* kService = "sdb";

std::uint64_t attrs_bytes(const std::vector<SdbReplaceableAttribute>& attrs) {
  std::uint64_t total = 0;
  for (const auto& a : attrs) total += a.name.size() + a.value.size();
  return total;
}

std::uint64_t item_subset_bytes(const SdbItem& item) {
  std::uint64_t total = 0;
  for (const auto& [name, values] : item)
    for (const auto& v : values) total += name.size() + v.size();
  return total;
}
}  // namespace

// ---------------------------------------------------------------------------
// SdbDomainData (types.hpp)
// ---------------------------------------------------------------------------

std::size_t sdb_pair_count(const SdbItem& item) {
  std::size_t n = 0;
  for (const auto& [name, values] : item) n += values.size();
  return n;
}

std::uint64_t sdb_item_bytes(const SdbItem& item) {
  return item_subset_bytes(item);
}

void SdbDomainData::index_add(const std::string& item, const std::string& name,
                              const std::string& value) {
  index[name][value].insert(item);
}

void SdbDomainData::index_remove(const std::string& item,
                                 const std::string& name,
                                 const std::string& value) {
  auto name_it = index.find(name);
  if (name_it == index.end()) return;
  auto value_it = name_it->second.find(value);
  if (value_it == name_it->second.end()) return;
  value_it->second.erase(item);
  if (value_it->second.empty()) name_it->second.erase(value_it);
  if (name_it->second.empty()) index.erase(name_it);
}

void SdbDomainData::apply_put(const std::string& item,
                              const std::vector<SdbReplaceableAttribute>& attrs) {
  SdbItem& target = items[item];
  for (const auto& attr : attrs) {
    auto& values = target[attr.name];
    if (attr.replace) {
      for (const auto& old : values) index_remove(item, attr.name, old);
      values.clear();
    }
    if (values.insert(attr.value).second)
      index_add(item, attr.name, attr.value);
  }
}

void SdbDomainData::apply_delete(const std::string& item,
                                 const std::vector<SdbAttribute>& attrs) {
  auto item_it = items.find(item);
  if (item_it == items.end()) return;  // idempotent
  SdbItem& target = item_it->second;

  if (attrs.empty()) {  // delete the whole item
    for (const auto& [name, values] : target)
      for (const auto& v : values) index_remove(item, name, v);
    items.erase(item_it);
    return;
  }
  for (const auto& attr : attrs) {
    auto name_it = target.find(attr.name);
    if (name_it == target.end()) continue;
    if (attr.value.empty()) {  // all values of this attribute
      for (const auto& v : name_it->second) index_remove(item, attr.name, v);
      target.erase(name_it);
    } else if (name_it->second.erase(attr.value) > 0) {
      index_remove(item, attr.name, attr.value);
      if (name_it->second.empty()) target.erase(name_it);
    }
  }
  if (target.empty()) items.erase(item_it);
}

// ---------------------------------------------------------------------------
// SimpleDbService
// ---------------------------------------------------------------------------

SimpleDbService::Domain* SimpleDbService::find_domain(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(domains_mu_);
  auto it = domains_.find(name);
  return it == domains_.end() ? nullptr : &it->second;
}

const SimpleDbService::Domain* SimpleDbService::find_domain(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(domains_mu_);
  auto it = domains_.find(name);
  return it == domains_.end() ? nullptr : &it->second;
}

SdbDomainData& SimpleDbService::pick_replica(Domain& d) {
  if (d.replicas.size() == 1) return d.replicas[0];
  return d.replicas[env_->rng_below(d.replicas.size())];
}

std::uint64_t SimpleDbService::item_stored_bytes(const SdbDomainData& replica,
                                                 const std::string& item) {
  auto it = replica.items.find(item);
  if (it == replica.items.end()) return 0;
  return item.size() + item_subset_bytes(it->second);
}

void SimpleDbService::replicate(Domain& d, const std::string& item,
                                std::function<void(SdbDomainData&)> op) {
  // Caller holds d.mu: the coordinator apply and the apply_floor update are
  // covered by it. Replica callbacks retake the lock when the clock fires
  // them (the clock never runs callbacks while holding its own lock).
  const std::uint64_t before = item_stored_bytes(d.replicas[0], item);
  op(d.replicas[0]);  // coordinator applies immediately (durability)
  const std::uint64_t after = item_stored_bytes(d.replicas[0], item);
  {
    // Cross-domain writers share the gauge: update and publish under one
    // lock so a slower thread cannot overwrite a newer total with a stale
    // one (the per-domain mutex orders writes within a domain only).
    std::lock_guard<util::Spinlock> gauge_lock(storage_gauge_mu_);
    stored_bytes_ += after;
    stored_bytes_ -= before;
    env_->meter().set_storage(kService, stored_bytes_.load());
  }
  for (std::size_t i = 1; i < d.replicas.size(); ++i) {
    SdbDomainData* replica = &d.replicas[i];
    std::mutex* mu = d.mu.get();
    // FIFO per replica: an op never applies before an earlier op (equal
    // times fire in schedule order on the event queue).
    sim::SimTime when =
        env_->clock().now() + env_->sample_propagation_delay();
    when = std::max(when, d.apply_floor[i]);
    d.apply_floor[i] = when;
    env_->clock().schedule_at(when, [replica, mu, op] {
      std::lock_guard<std::mutex> lock(*mu);
      op(*replica);
    });
  }
}

void SimpleDbService::recompute_storage_gauge() {
  std::uint64_t total = 0;
  {
    std::shared_lock<std::shared_mutex> map_lock(domains_mu_);
    for (const auto& [name, d] : domains_) {
      std::lock_guard<std::mutex> lock(*d.mu);
      for (const auto& [item, attrs] : d.replicas[0].items)
        total += item.size() + item_subset_bytes(attrs);
    }
  }
  std::lock_guard<util::Spinlock> gauge_lock(storage_gauge_mu_);
  stored_bytes_ = total;
  env_->meter().set_storage(kService, total);
}

AwsResult<void> SimpleDbService::create_domain(const std::string& domain) {
  env_->charge(kService, "CreateDomain", domain.size(), 0, domain);
  std::unique_lock<std::shared_mutex> lock(domains_mu_);
  if (domains_.find(domain) == domains_.end()) {
    Domain d;
    d.replicas.resize(std::max(1u, env_->consistency().replicas));
    d.apply_floor.assign(d.replicas.size(), 0);
    domains_.emplace(domain, std::move(d));
  }
  return {};  // idempotent, like the real call
}

AwsResult<void> SimpleDbService::delete_domain(const std::string& domain) {
  env_->charge(kService, "DeleteDomain", domain.size(), 0, domain);
  {
    std::unique_lock<std::shared_mutex> lock(domains_mu_);
    domains_.erase(domain);
  }
  recompute_storage_gauge();
  return {};
}

std::vector<std::string> SimpleDbService::list_domains() {
  env_->charge(kService, "ListDomains", 0, 0);
  std::shared_lock<std::shared_mutex> lock(domains_mu_);
  std::vector<std::string> out;
  out.reserve(domains_.size());
  for (const auto& [name, d] : domains_) out.push_back(name);
  return out;
}

AwsResult<void> SimpleDbService::validate_put(
    const Domain& d, const std::string& item,
    const std::vector<SdbReplaceableAttribute>& attrs, std::size_t max_attrs) {
  if (attrs.empty())
    return aws_error(AwsErrorCode::kInvalidArgument, "no attributes");
  if (attrs.size() > max_attrs)
    return aws_error(AwsErrorCode::kTooManyAttributes,
                     "more than " + std::to_string(max_attrs) +
                         " attributes for item: " + item);
  if (item.size() > kSdbMaxNameValueBytes)
    return aws_error(AwsErrorCode::kAttributeTooLarge, "item name over 1KB");
  for (const auto& a : attrs) {
    if (a.name.size() > kSdbMaxNameValueBytes ||
        a.value.size() > kSdbMaxNameValueBytes)
      return aws_error(AwsErrorCode::kAttributeTooLarge,
                       "attribute name/value over 1KB: " + a.name);
  }
  // Enforce the 256-pair item limit against the freshest (coordinator) view.
  SdbDomainData preview = {};
  auto it = d.replicas[0].items.find(item);
  SdbItem merged = it == d.replicas[0].items.end() ? SdbItem{} : it->second;
  preview.items[item] = std::move(merged);
  preview.apply_put(item, attrs);
  if (sdb_pair_count(preview.items[item]) > kSdbMaxPairsPerItem)
    return aws_error(AwsErrorCode::kTooManyAttributes,
                     "item would exceed 256 attribute pairs: " + item);
  return {};
}

AwsResult<void> SimpleDbService::put_attributes(
    const std::string& domain, const std::string& item,
    const std::vector<SdbReplaceableAttribute>& attrs) {
  env_->charge(kService, "PutAttributes", attrs_bytes(attrs), 0, domain);
  Domain* d = find_domain(domain);
  if (d == nullptr) return aws_error(AwsErrorCode::kNoSuchDomain, domain);
  std::lock_guard<std::mutex> lock(*d->mu);
  auto valid = validate_put(*d, item, attrs, kSdbMaxAttrsPerCall);
  if (!valid) return valid;
  replicate(*d, item,
            [item, attrs](SdbDomainData& r) { r.apply_put(item, attrs); });
  return {};
}

AwsResult<SimpleDbService::BatchPutResult>
SimpleDbService::batch_put_attributes(const std::string& domain,
                                      const std::vector<SdbBatchEntry>& entries) {
  // Billed like PutAttributes (attribute payload only) so batched and
  // legacy writes of the same record meter identical bytes.
  std::uint64_t bytes = 0;
  for (const auto& e : entries) bytes += attrs_bytes(e.attrs);
  env_->charge(kService, "BatchPutAttributes", bytes, 0, domain);
  Domain* d = find_domain(domain);
  if (d == nullptr) return aws_error(AwsErrorCode::kNoSuchDomain, domain);
  if (entries.empty())
    return aws_error(AwsErrorCode::kInvalidArgument, "empty batch");
  if (entries.size() > kSdbMaxItemsPerBatch)
    return aws_error(AwsErrorCode::kTooManySubmittedItems,
                     "more than 25 items in one BatchPutAttributes");
  {
    std::set<std::string> seen;
    for (const auto& e : entries)
      if (!seen.insert(e.item).second)
        return aws_error(AwsErrorCode::kDuplicateItemName, e.item);
  }
  std::lock_guard<std::mutex> lock(*d->mu);
  BatchPutResult result;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const SdbBatchEntry& e = entries[i];
    auto valid = validate_put(*d, e.item, e.attrs, kSdbMaxPairsPerItem);
    if (!valid) {
      result.failed.push_back(BatchItemError{i, valid.error()});
      continue;
    }
    replicate(*d, e.item, [item = e.item, attrs = e.attrs](SdbDomainData& r) {
      r.apply_put(item, attrs);
    });
  }
  return result;
}

AwsResult<void> SimpleDbService::delete_attributes(
    const std::string& domain, const std::string& item,
    const std::vector<SdbAttribute>& attrs) {
  std::uint64_t bytes = 0;
  for (const auto& a : attrs) bytes += a.name.size() + a.value.size();
  env_->charge(kService, "DeleteAttributes", bytes, 0, domain);
  Domain* d = find_domain(domain);
  if (d == nullptr) return aws_error(AwsErrorCode::kNoSuchDomain, domain);
  std::lock_guard<std::mutex> lock(*d->mu);
  replicate(*d, item,
            [item, attrs](SdbDomainData& r) { r.apply_delete(item, attrs); });
  return {};
}

AwsResult<SdbItem> SimpleDbService::get_attributes(
    const std::string& domain, const std::string& item,
    const std::vector<std::string>& names) {
  Domain* d = find_domain(domain);
  if (d == nullptr) {
    env_->charge(kService, "GetAttributes", 0, 0, domain);
    return aws_error(AwsErrorCode::kNoSuchDomain, domain);
  }
  SdbItem out;
  {
    std::lock_guard<std::mutex> lock(*d->mu);
    const SdbDomainData& replica = pick_replica(*d);
    auto it = replica.items.find(item);
    if (it != replica.items.end()) {
      if (names.empty()) {
        out = it->second;
      } else {
        for (const std::string& n : names) {
          auto attr_it = it->second.find(n);
          if (attr_it != it->second.end()) out[n] = attr_it->second;
        }
      }
    }
  }
  env_->charge(kService, "GetAttributes", 0, item_subset_bytes(out), domain);
  return out;
}

std::size_t SimpleDbService::token_offset(const std::string& token) {
  if (token.empty()) return 0;
  try {
    return std::stoul(token);
  } catch (...) {
    return 0;
  }
}

AwsResult<SimpleDbService::QueryResult> SimpleDbService::query(
    const std::string& domain, const std::string& expression,
    std::size_t max_results, const std::string& next_token) {
  Domain* d = find_domain(domain);
  if (d == nullptr) {
    env_->charge(kService, "Query", expression.size(), 0, domain);
    return aws_error(AwsErrorCode::kNoSuchDomain, domain);
  }
  max_results = std::min(std::max<std::size_t>(1, max_results),
                         kSdbMaxQueryResults);
  std::unique_lock<std::mutex> lock(*d->mu);
  const SdbDomainData& replica = pick_replica(*d);

  std::set<std::string> matches;
  if (expression.empty()) {
    for (const auto& [name, item] : replica.items) matches.insert(name);
  } else {
    auto parsed = sdbql::parse_query(expression);
    if (!parsed) {
      lock.unlock();
      env_->charge(kService, "Query", expression.size(), 0, domain);
      return aws_error(AwsErrorCode::kInvalidQueryExpression, parsed.error());
    }
    matches = sdbql::evaluate(*parsed, replica);
  }

  QueryResult out;
  const std::size_t offset = token_offset(next_token);
  std::size_t i = 0;
  std::uint64_t bytes_out = 0;
  for (const std::string& name : matches) {
    if (i++ < offset) continue;
    if (out.item_names.size() == max_results) {
      out.next_token = std::to_string(offset + max_results);
      break;
    }
    bytes_out += name.size();
    out.item_names.push_back(name);
  }
  lock.unlock();
  env_->charge(kService, "Query", expression.size(), bytes_out, domain);
  return out;
}

AwsResult<SimpleDbService::QueryWithAttributesResult>
SimpleDbService::query_with_attributes(
    const std::string& domain, const std::string& expression,
    const std::vector<std::string>& attribute_filter, std::size_t max_results,
    const std::string& next_token) {
  Domain* d = find_domain(domain);
  if (d == nullptr) {
    env_->charge(kService, "QueryWithAttributes", expression.size(), 0, domain);
    return aws_error(AwsErrorCode::kNoSuchDomain, domain);
  }
  max_results = std::min(std::max<std::size_t>(1, max_results),
                         kSdbMaxQueryResults);
  std::unique_lock<std::mutex> lock(*d->mu);
  const SdbDomainData& replica = pick_replica(*d);

  std::set<std::string> matches;
  if (expression.empty()) {
    for (const auto& [name, item] : replica.items) matches.insert(name);
  } else {
    auto parsed = sdbql::parse_query(expression);
    if (!parsed) {
      lock.unlock();
      env_->charge(kService, "QueryWithAttributes", expression.size(), 0,
                   domain);
      return aws_error(AwsErrorCode::kInvalidQueryExpression, parsed.error());
    }
    matches = sdbql::evaluate(*parsed, replica);
  }

  QueryWithAttributesResult out;
  const std::size_t offset = token_offset(next_token);
  std::size_t i = 0;
  std::uint64_t bytes_out = 0;
  for (const std::string& name : matches) {
    if (i++ < offset) continue;
    if (out.items.size() == max_results) {
      out.next_token = std::to_string(offset + max_results);
      break;
    }
    const SdbItem& full = replica.items.at(name);
    SdbItem picked;
    if (attribute_filter.empty()) {
      picked = full;
    } else {
      for (const std::string& n : attribute_filter) {
        auto it = full.find(n);
        if (it != full.end()) picked[n] = it->second;
      }
    }
    bytes_out += name.size() + item_subset_bytes(picked);
    out.items.push_back(ItemWithAttributes{name, std::move(picked)});
  }
  lock.unlock();
  env_->charge(kService, "QueryWithAttributes", expression.size(), bytes_out,
               domain);
  return out;
}

AwsResult<SimpleDbService::SelectResult> SimpleDbService::select(
    const std::string& expression, const std::string& next_token) {
  auto parsed = sdbql::parse_select(expression);
  if (!parsed) {
    env_->charge(kService, "Select", expression.size(), 0);  // domain unknown
    return aws_error(AwsErrorCode::kInvalidQueryExpression, parsed.error());
  }
  const sdbql::SelectStatement& stmt = *parsed;
  Domain* d = find_domain(stmt.domain);
  if (d == nullptr) {
    env_->charge(kService, "Select", expression.size(), 0, stmt.domain);
    return aws_error(AwsErrorCode::kNoSuchDomain, stmt.domain);
  }
  std::unique_lock<std::mutex> lock(*d->mu);
  const SdbDomainData& replica = pick_replica(*d);
  const std::vector<std::string> matches =
      sdbql::evaluate_select_order(*parsed, replica);

  SelectResult out;
  std::uint64_t bytes_out = 0;
  if (stmt.output == sdbql::SelectOutput::kCount) {
    out.count = matches.size();
    bytes_out = sizeof(std::uint64_t);
    lock.unlock();
    env_->charge(kService, "Select", expression.size(), bytes_out, stmt.domain);
    return out;
  }
  const std::size_t offset = token_offset(next_token);
  std::size_t i = 0;
  for (const std::string& name : matches) {
    if (i++ < offset) continue;
    if (out.items.size() == stmt.limit) {
      out.next_token = std::to_string(offset + stmt.limit);
      break;
    }
    ItemWithAttributes row;
    row.name = name;
    const SdbItem& full = replica.items.at(name);
    switch (stmt.output) {
      case sdbql::SelectOutput::kAllAttributes:
        row.attributes = full;
        break;
      case sdbql::SelectOutput::kItemName:
        break;  // name only
      case sdbql::SelectOutput::kAttributeList:
        for (const std::string& n : stmt.output_attributes) {
          auto it = full.find(n);
          if (it != full.end()) row.attributes[n] = it->second;
        }
        break;
      case sdbql::SelectOutput::kCount:
        break;  // unreachable
    }
    bytes_out += row.name.size() + item_subset_bytes(row.attributes);
    out.items.push_back(std::move(row));
  }
  lock.unlock();
  env_->charge(kService, "Select", expression.size(), bytes_out, stmt.domain);
  return out;
}

std::optional<SdbItem> SimpleDbService::peek_item(const std::string& domain,
                                                  const std::string& item) const {
  const Domain* d = find_domain(domain);
  if (d == nullptr) return std::nullopt;
  std::lock_guard<std::mutex> lock(*d->mu);
  auto it = d->replicas[0].items.find(item);
  if (it == d->replicas[0].items.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> SimpleDbService::peek_item_names(
    const std::string& domain) const {
  const Domain* d = find_domain(domain);
  if (d == nullptr) return {};
  std::lock_guard<std::mutex> lock(*d->mu);
  std::vector<std::string> out;
  out.reserve(d->replicas[0].items.size());
  for (const auto& [name, item] : d->replicas[0].items) out.push_back(name);
  return out;
}

std::uint64_t SimpleDbService::item_count(const std::string& domain) const {
  const Domain* d = find_domain(domain);
  if (d == nullptr) return 0;
  std::lock_guard<std::mutex> lock(*d->mu);
  return d->replicas[0].items.size();
}

}  // namespace provcloud::aws
