// Amazon S3 simulator (January 2009 feature snapshot, as used by the paper).
//
// An object store: objects from 1 byte to 5 GB, identified by (bucket, key),
// each carrying up to 2 KB of user metadata stored *with* the object -- the
// property Architecture 1 exploits for atomic data+provenance PUTs.
//
// Operations (the set the paper uses): PUT, GET (full or byte-range), HEAD,
// COPY, DELETE, LIST. All reads are eventually consistent (served by a
// random replica, see ReplicatedKV); writes are last-writer-wins.
//
// Billing: every call is metered on service "s3" with the operation name;
// bytes in/out follow Amazon's rules -- COPY moves no billable bytes.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "aws/common/env.hpp"
#include "aws/common/errors.hpp"
#include "aws/common/replicated.hpp"
#include "util/bytes.hpp"

namespace provcloud::aws {

/// S3 user metadata: string key/value pairs, at most kMaxMetadataBytes total
/// (sum of key and value lengths), sent and stored with the object.
using S3Metadata = std::map<std::string, std::string>;

inline constexpr std::size_t kS3MaxObjectBytes = 5 * util::kGiB;
inline constexpr std::size_t kS3MaxMetadataBytes = 2 * util::kKiB;

std::size_t metadata_size(const S3Metadata& metadata);

/// A stored object. Data is shared across replicas.
struct S3Object {
  util::SharedBytes data;
  S3Metadata metadata;
  std::string etag;  // MD5 of the data, hex -- as real S3 reports
};

/// GET result.
struct S3GetResult {
  util::SharedBytes data;
  S3Metadata metadata;
  std::string etag;
};

/// HEAD result: metadata + size only, no data transfer.
struct S3HeadResult {
  S3Metadata metadata;
  std::uint64_t size = 0;
  std::string etag;
};

/// What COPY should do with metadata, mirroring x-amz-metadata-directive.
enum class MetadataDirective { kCopy, kReplace };

class S3Service {
 public:
  explicit S3Service(CloudEnv& env) : env_(&env) {}

  /// Store an object, overwriting any existing one. The metadata travels in
  /// the same request: data and metadata are stored atomically.
  AwsResult<void> put(const std::string& bucket, const std::string& key,
                      util::BytesView data, const S3Metadata& metadata = {});

  /// Same but the payload is an already-shared buffer (avoids copying large
  /// objects through the client).
  AwsResult<void> put_shared(const std::string& bucket, const std::string& key,
                             util::SharedBytes data,
                             const S3Metadata& metadata = {});

  /// Retrieve a whole object.
  AwsResult<S3GetResult> get(const std::string& bucket, const std::string& key);

  /// Retrieve `length` bytes starting at `offset` (clamped to the object).
  AwsResult<S3GetResult> get_range(const std::string& bucket,
                                   const std::string& key, std::uint64_t offset,
                                   std::uint64_t length);

  /// Retrieve only the metadata.
  AwsResult<S3HeadResult> head(const std::string& bucket,
                               const std::string& key);

  /// Server-side copy. With MetadataDirective::kReplace the new metadata is
  /// stored on the destination (the Arch-3 commit daemon uses this to stamp
  /// the nonce during temp->real promotion). No billable data transfer.
  AwsResult<void> copy(const std::string& src_bucket, const std::string& src_key,
                       const std::string& dst_bucket, const std::string& dst_key,
                       MetadataDirective directive = MetadataDirective::kCopy,
                       const S3Metadata& replacement = {});

  /// Delete an object. Idempotent (deleting a missing key succeeds, as real
  /// S3 does).
  AwsResult<void> del(const std::string& bucket, const std::string& key);

  /// List keys in a bucket with the given prefix (eventually consistent),
  /// up to `max_keys` per call starting after `marker`.
  struct ListResult {
    std::vector<std::string> keys;
    bool truncated = false;
  };
  AwsResult<ListResult> list(const std::string& bucket,
                             const std::string& prefix = "",
                             const std::string& marker = "",
                             std::size_t max_keys = 1000);

  /// --- test/verification access (not billed, fully consistent) ---

  /// Freshest view of an object, or nullopt.
  std::optional<S3Object> peek(const std::string& bucket,
                               const std::string& key) const;
  std::vector<std::string> peek_keys(const std::string& bucket,
                                     const std::string& prefix = "") const;
  /// Total bytes stored (coordinator view): data + metadata.
  std::uint64_t stored_bytes() const { return stored_bytes_; }
  std::uint64_t object_count() const;

 private:
  using Bucket = ReplicatedKV<S3Object>;
  Bucket& bucket_ref(const std::string& bucket);
  Bucket* bucket_find(const std::string& bucket);
  const Bucket* bucket_ptr(const std::string& bucket) const;
  void account_put(const std::string& bucket, const std::string& key,
                   std::uint64_t new_size);
  void account_delete(const std::string& bucket, const std::string& key);

  CloudEnv* env_;
  // Guards the bucket map structure and the storage gauge; per-object data
  // is linearized by each bucket's own ReplicatedKV lock, so shard-parallel
  // clients only contend here for the brief map lookup and size accounting.
  mutable std::shared_mutex mu_;
  std::map<std::string, Bucket> buckets_;
  // Logical (coordinator) object sizes for the storage gauge.
  std::map<std::pair<std::string, std::string>, std::uint64_t> sizes_;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace provcloud::aws
