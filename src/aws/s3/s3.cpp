#include "aws/s3/s3.hpp"

#include <algorithm>

#include "util/md5.hpp"

namespace provcloud::aws {

namespace {
constexpr const char* kService = "s3";
}

std::size_t metadata_size(const S3Metadata& metadata) {
  std::size_t total = 0;
  for (const auto& [k, v] : metadata) total += k.size() + v.size();
  return total;
}

S3Service::Bucket& S3Service::bucket_ref(const std::string& bucket) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = buckets_.find(bucket);
    // Map nodes are address-stable after the lock drops.
    if (it != buckets_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = buckets_.find(bucket);
  if (it == buckets_.end())
    it = buckets_.emplace(bucket, Bucket(*env_)).first;
  return it->second;
}

S3Service::Bucket* S3Service::bucket_find(const std::string& bucket) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? nullptr : &it->second;
}

const S3Service::Bucket* S3Service::bucket_ptr(const std::string& bucket) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? nullptr : &it->second;
}

void S3Service::account_put(const std::string& bucket, const std::string& key,
                            std::uint64_t new_size) {
  // The gauge is published while mu_ is held so two concurrent writers
  // cannot publish out of order and strand a stale total on the meter.
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = sizes_[{bucket, key}];
  stored_bytes_ -= slot;
  slot = new_size;
  stored_bytes_ += new_size;
  env_->meter().set_storage(kService, stored_bytes_);
}

void S3Service::account_delete(const std::string& bucket,
                               const std::string& key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = sizes_.find({bucket, key});
  if (it != sizes_.end()) {
    stored_bytes_ -= it->second;
    sizes_.erase(it);
    env_->meter().set_storage(kService, stored_bytes_);
  }
}

AwsResult<void> S3Service::put(const std::string& bucket, const std::string& key,
                               util::BytesView data,
                               const S3Metadata& metadata) {
  return put_shared(bucket, key, util::make_shared_bytes(data), metadata);
}

AwsResult<void> S3Service::put_shared(const std::string& bucket,
                                      const std::string& key,
                                      util::SharedBytes data,
                                      const S3Metadata& metadata) {
  PROVCLOUD_REQUIRE(data != nullptr);
  if (data->size() > kS3MaxObjectBytes)
    return aws_error(AwsErrorCode::kEntityTooLarge,
                     "object exceeds 5GB: " + key);
  const std::size_t meta_bytes = metadata_size(metadata);
  if (meta_bytes > kS3MaxMetadataBytes)
    return aws_error(AwsErrorCode::kMetadataTooLarge,
                     "metadata exceeds 2KB on " + key);

  env_->charge(kService, "PUT", data->size() + meta_bytes, 0);

  S3Object obj;
  obj.etag = util::Md5::hex_digest(*data);
  obj.data = std::move(data);
  obj.metadata = metadata;
  const std::uint64_t size = obj.data->size() + meta_bytes;
  bucket_ref(bucket).put(key, std::move(obj));
  account_put(bucket, key, size);
  return {};
}

AwsResult<S3GetResult> S3Service::get(const std::string& bucket,
                                      const std::string& key) {
  Bucket* b = bucket_find(bucket);
  if (b == nullptr) {
    env_->charge(kService, "GET", 0, 0);
    return aws_error(AwsErrorCode::kNoSuchBucket, bucket);
  }
  auto found = b->get(key);
  if (!found) {
    env_->charge(kService, "GET", 0, 0);
    return aws_error(AwsErrorCode::kNoSuchKey, bucket + "/" + key);
  }
  const S3Object& obj = **found;
  env_->charge(kService, "GET", 0,
               obj.data->size() + metadata_size(obj.metadata));
  return S3GetResult{obj.data, obj.metadata, obj.etag};
}

AwsResult<S3GetResult> S3Service::get_range(const std::string& bucket,
                                            const std::string& key,
                                            std::uint64_t offset,
                                            std::uint64_t length) {
  Bucket* b = bucket_find(bucket);
  if (b == nullptr) {
    env_->charge(kService, "GET", 0, 0);
    return aws_error(AwsErrorCode::kNoSuchBucket, bucket);
  }
  auto found = b->get(key);
  if (!found) {
    env_->charge(kService, "GET", 0, 0);
    return aws_error(AwsErrorCode::kNoSuchKey, bucket + "/" + key);
  }
  const S3Object& obj = **found;
  const std::uint64_t size = obj.data->size();
  const std::uint64_t begin = std::min(offset, size);
  const std::uint64_t end = std::min(offset + length, size);
  auto slice = util::make_shared_bytes(
      util::BytesView(*obj.data).substr(begin, end - begin));
  env_->charge(kService, "GET", 0,
               slice->size() + metadata_size(obj.metadata));
  return S3GetResult{std::move(slice), obj.metadata, obj.etag};
}

AwsResult<S3HeadResult> S3Service::head(const std::string& bucket,
                                        const std::string& key) {
  Bucket* b = bucket_find(bucket);
  if (b == nullptr) {
    env_->charge(kService, "HEAD", 0, 0);
    return aws_error(AwsErrorCode::kNoSuchBucket, bucket);
  }
  auto found = b->get(key);
  if (!found) {
    env_->charge(kService, "HEAD", 0, 0);
    return aws_error(AwsErrorCode::kNoSuchKey, bucket + "/" + key);
  }
  const S3Object& obj = **found;
  env_->charge(kService, "HEAD", 0, metadata_size(obj.metadata));
  return S3HeadResult{obj.metadata, obj.data->size(), obj.etag};
}

AwsResult<void> S3Service::copy(const std::string& src_bucket,
                                const std::string& src_key,
                                const std::string& dst_bucket,
                                const std::string& dst_key,
                                MetadataDirective directive,
                                const S3Metadata& replacement) {
  // COPY is server-side: the read happens inside AWS against some replica,
  // so it is as eventually consistent as a GET, but no client bytes move.
  env_->charge(kService, "COPY", 0, 0);
  Bucket* src = bucket_find(src_bucket);
  if (src == nullptr)
    return aws_error(AwsErrorCode::kNoSuchBucket, src_bucket);
  auto found = src->get(src_key);
  if (!found)
    return aws_error(AwsErrorCode::kNoSuchKey, src_bucket + "/" + src_key);
  const S3Object& obj = **found;

  const S3Metadata& meta =
      directive == MetadataDirective::kReplace ? replacement : obj.metadata;
  const std::size_t meta_bytes = metadata_size(meta);
  if (meta_bytes > kS3MaxMetadataBytes)
    return aws_error(AwsErrorCode::kMetadataTooLarge,
                     "metadata exceeds 2KB on " + dst_key);

  S3Object dst;
  dst.data = obj.data;  // shared: server-side copy moves no bytes
  dst.metadata = meta;
  dst.etag = obj.etag;
  const std::uint64_t size = dst.data->size() + meta_bytes;
  bucket_ref(dst_bucket).put(dst_key, std::move(dst));
  account_put(dst_bucket, dst_key, size);
  return {};
}

AwsResult<void> S3Service::del(const std::string& bucket,
                               const std::string& key) {
  env_->charge(kService, "DELETE", 0, 0);
  Bucket* b = bucket_find(bucket);
  if (b == nullptr) return {};  // idempotent
  b->erase(key);
  account_delete(bucket, key);
  return {};
}

AwsResult<S3Service::ListResult> S3Service::list(const std::string& bucket,
                                                 const std::string& prefix,
                                                 const std::string& marker,
                                                 std::size_t max_keys) {
  Bucket* b = bucket_find(bucket);
  if (b == nullptr) {
    env_->charge(kService, "LIST", 0, 0);
    return aws_error(AwsErrorCode::kNoSuchBucket, bucket);
  }
  std::vector<std::string> all = b->list(prefix);
  ListResult out;
  std::uint64_t bytes_out = 0;
  for (const std::string& k : all) {
    if (!marker.empty() && k <= marker) continue;
    if (out.keys.size() == max_keys) {
      out.truncated = true;
      break;
    }
    bytes_out += k.size();
    out.keys.push_back(k);
  }
  env_->charge(kService, "LIST", 0, bytes_out);
  return out;
}

std::optional<S3Object> S3Service::peek(const std::string& bucket,
                                        const std::string& key) const {
  const Bucket* b = bucket_ptr(bucket);
  if (b == nullptr) return std::nullopt;
  auto found = b->get_coordinator(key);
  if (!found) return std::nullopt;
  return **found;
}

std::vector<std::string> S3Service::peek_keys(const std::string& bucket,
                                              const std::string& prefix) const {
  const Bucket* b = bucket_ptr(bucket);
  if (b == nullptr) return {};
  return b->list_coordinator(prefix);
}

std::uint64_t S3Service::object_count() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [name, b] : buckets_) n += b.size_coordinator();
  return n;
}

}  // namespace provcloud::aws
