#include "aws/ebs/ebs.hpp"

#include <algorithm>
#include <cstring>

#include "util/require.hpp"

namespace provcloud::aws {

namespace {
constexpr const char* kService = "ebs";

std::uint64_t round_up_blocks(std::uint64_t bytes) {
  return (bytes + kEbsBlockBytes - 1) / kEbsBlockBytes;
}
}  // namespace

EbsService::Image* EbsService::find_volume(const std::string& id) {
  auto it = volumes_.find(id);
  return it == volumes_.end() ? nullptr : &it->second;
}

const EbsService::Image* EbsService::find_volume(const std::string& id) const {
  auto it = volumes_.find(id);
  return it == volumes_.end() ? nullptr : &it->second;
}

void EbsService::refresh_storage_gauge() {
  std::uint64_t total = 0;
  for (const auto& [id, image] : volumes_)
    total += image.blocks.size() * kEbsBlockBytes;
  for (const auto& [id, image] : snapshots_)
    total += image.blocks.size() * kEbsBlockBytes;
  stored_bytes_ = total;
  env_->meter().set_storage(kService, total);
}

AwsResult<std::string> EbsService::create_volume(std::uint64_t size_bytes) {
  env_->charge(kService, "CreateVolume", 0, 0);
  if (size_bytes == 0 || size_bytes > kEbsMaxVolumeBytes)
    return aws_error(AwsErrorCode::kInvalidArgument, "bad volume size");
  const std::string id = "vol-" + std::to_string(next_id_++);
  Image image;
  image.size_bytes = round_up_blocks(size_bytes) * kEbsBlockBytes;
  volumes_.emplace(id, std::move(image));
  return id;
}

AwsResult<void> EbsService::write(const std::string& volume_id,
                                  std::uint64_t offset, util::BytesView data) {
  env_->charge(kService, "Write", data.size(), 0);
  Image* image = find_volume(volume_id);
  if (image == nullptr)
    return aws_error(AwsErrorCode::kInvalidArgument, "no volume " + volume_id);
  if (offset + data.size() > image->size_bytes)
    return aws_error(AwsErrorCode::kInvalidArgument, "write past volume end");

  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t pos = offset + consumed;
    const std::uint64_t block_index = pos / kEbsBlockBytes;
    const std::size_t in_block = pos % kEbsBlockBytes;
    const std::size_t take =
        std::min<std::size_t>(kEbsBlockBytes - in_block, data.size() - consumed);

    // Copy-on-write: clone the block before mutating (it may be shared with
    // a snapshot).
    util::Bytes block(kEbsBlockBytes, '\0');
    auto it = image->blocks.find(block_index);
    if (it != image->blocks.end()) block = *it->second;
    std::memcpy(block.data() + in_block, data.data() + consumed, take);
    image->blocks[block_index] = util::make_shared_bytes(std::move(block));
    consumed += take;
  }
  refresh_storage_gauge();
  return {};
}

AwsResult<util::Bytes> EbsService::read(const std::string& volume_id,
                                        std::uint64_t offset,
                                        std::uint64_t length) {
  Image* image = find_volume(volume_id);
  if (image == nullptr) {
    env_->charge(kService, "Read", 0, 0);
    return aws_error(AwsErrorCode::kInvalidArgument, "no volume " + volume_id);
  }
  const std::uint64_t begin = std::min(offset, image->size_bytes);
  const std::uint64_t end = std::min(offset + length, image->size_bytes);
  util::Bytes out;
  out.reserve(end - begin);
  for (std::uint64_t pos = begin; pos < end;) {
    const std::uint64_t block_index = pos / kEbsBlockBytes;
    const std::size_t in_block = pos % kEbsBlockBytes;
    const std::size_t take =
        std::min<std::uint64_t>(kEbsBlockBytes - in_block, end - pos);
    auto it = image->blocks.find(block_index);
    if (it == image->blocks.end())
      out.append(take, '\0');  // unallocated block reads as zeros
    else
      out.append(it->second->data() + in_block, take);
    pos += take;
  }
  env_->charge(kService, "Read", 0, out.size());
  return out;
}

AwsResult<std::string> EbsService::create_snapshot(
    const std::string& volume_id) {
  Image* image = find_volume(volume_id);
  if (image == nullptr) {
    env_->charge(kService, "CreateSnapshot", 0, 0);
    return aws_error(AwsErrorCode::kInvalidArgument, "no volume " + volume_id);
  }
  // Snapshot upload is billed for the allocated bytes.
  const std::uint64_t bytes = image->blocks.size() * kEbsBlockBytes;
  env_->charge(kService, "CreateSnapshot", bytes, 0);
  const std::string id = "snap-" + std::to_string(next_id_++);
  snapshots_.emplace(id, *image);  // blocks shared (immutable from here)
  refresh_storage_gauge();
  return id;
}

AwsResult<std::string> EbsService::create_volume_from_snapshot(
    const std::string& snapshot_id) {
  auto it = snapshots_.find(snapshot_id);
  if (it == snapshots_.end()) {
    env_->charge(kService, "CreateVolumeFromSnapshot", 0, 0);
    return aws_error(AwsErrorCode::kInvalidArgument,
                     "no snapshot " + snapshot_id);
  }
  // The paper's pain point: the ENTIRE snapshot is transferred to the new
  // volume, no matter how little of it the user wants.
  const std::uint64_t bytes = it->second.blocks.size() * kEbsBlockBytes;
  env_->charge(kService, "CreateVolumeFromSnapshot", 0, bytes);
  const std::string id = "vol-" + std::to_string(next_id_++);
  volumes_.emplace(id, it->second);
  refresh_storage_gauge();
  return id;
}

AwsResult<void> EbsService::delete_volume(const std::string& volume_id) {
  env_->charge(kService, "DeleteVolume", 0, 0);
  volumes_.erase(volume_id);
  refresh_storage_gauge();
  return {};
}

AwsResult<void> EbsService::delete_snapshot(const std::string& snapshot_id) {
  env_->charge(kService, "DeleteSnapshot", 0, 0);
  snapshots_.erase(snapshot_id);
  refresh_storage_gauge();
  return {};
}

std::optional<std::uint64_t> EbsService::volume_size(
    const std::string& volume_id) const {
  const Image* image = find_volume(volume_id);
  if (image == nullptr) return std::nullopt;
  return image->size_bytes;
}

std::uint64_t EbsService::allocated_bytes(const std::string& volume_id) const {
  const Image* image = find_volume(volume_id);
  return image == nullptr ? 0 : image->blocks.size() * kEbsBlockBytes;
}

std::uint64_t EbsService::snapshot_bytes(const std::string& snapshot_id) const {
  auto it = snapshots_.find(snapshot_id);
  return it == snapshots_.end() ? 0
                                : it->second.blocks.size() * kEbsBlockBytes;
}

}  // namespace provcloud::aws
