// Amazon EBS simulator (January 2009 snapshot) -- the sharing alternative
// the paper's usage model argues *against*.
//
// Section 2.5: "Amazon hosts public data sets for free as Amazon Elastic
// Block Store (Amazon EBS) snapshots... The disadvantage of using EBS
// volumes is that users have to clone the whole EBS volume even if they are
// interested only in a part of the data set. Making data available as S3
// objects allows users to selectively copy the data they need."
//
// Model: block volumes (fixed block size), point-in-time snapshots, and
// volume creation from a snapshot. Reading any file from an EBS data set
// requires creating a volume from the snapshot -- which bills the *entire*
// snapshot's bytes -- then attaching it; S3 sharing bills only the objects
// actually fetched. bench_ablation_sharing quantifies the crossover.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "aws/common/env.hpp"
#include "aws/common/errors.hpp"
#include "util/bytes.hpp"

namespace provcloud::aws {

inline constexpr std::size_t kEbsBlockBytes = 4 * util::kKiB;
/// 2009 EBS limits: volumes from 1 GiB to 1 TiB; we relax the lower bound
/// for simulation but keep the upper.
inline constexpr std::uint64_t kEbsMaxVolumeBytes = util::kGiB * 1024ull;

class EbsService {
 public:
  explicit EbsService(CloudEnv& env) : env_(&env) {}
  EbsService(const EbsService&) = delete;
  EbsService& operator=(const EbsService&) = delete;

  /// Create an empty volume of `size_bytes` (rounded up to whole blocks).
  /// Returns the volume id.
  AwsResult<std::string> create_volume(std::uint64_t size_bytes);

  /// Write `data` into a volume at `offset`. Fails past the end.
  AwsResult<void> write(const std::string& volume_id, std::uint64_t offset,
                        util::BytesView data);

  /// Read `length` bytes at `offset` (clamped at the end).
  AwsResult<util::Bytes> read(const std::string& volume_id,
                              std::uint64_t offset, std::uint64_t length);

  /// Point-in-time snapshot of a volume. Snapshot storage is billed like S3
  /// storage; only allocated (written) blocks are stored.
  AwsResult<std::string> create_snapshot(const std::string& volume_id);

  /// Materialize a new volume from a snapshot -- the EBS sharing primitive.
  /// This is the paper's complaint: the *whole* snapshot transfers,
  /// regardless of how little the user needs.
  AwsResult<std::string> create_volume_from_snapshot(
      const std::string& snapshot_id);

  AwsResult<void> delete_volume(const std::string& volume_id);
  AwsResult<void> delete_snapshot(const std::string& snapshot_id);

  /// --- test/verification access ---
  std::optional<std::uint64_t> volume_size(const std::string& volume_id) const;
  std::uint64_t allocated_bytes(const std::string& volume_id) const;
  std::uint64_t snapshot_bytes(const std::string& snapshot_id) const;
  std::uint64_t stored_bytes() const { return stored_bytes_; }

 private:
  /// Sparse block image shared between snapshots and volumes cloned from
  /// them (copy-on-write at block granularity).
  struct Image {
    std::uint64_t size_bytes = 0;
    std::map<std::uint64_t, util::SharedBytes> blocks;  // index -> block
  };

  Image* find_volume(const std::string& id);
  const Image* find_volume(const std::string& id) const;
  void refresh_storage_gauge();

  CloudEnv* env_;
  std::map<std::string, Image> volumes_;
  std::map<std::string, Image> snapshots_;
  std::uint64_t next_id_ = 1;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace provcloud::aws
