#include "cloudprov/domain_topology.hpp"

#include "aws/simpledb/simpledb.hpp"
#include "sim/latency_ledger.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

DomainTopology::DomainTopology(TopologyConfig config)
    : router_(config.shard_count, std::move(config.base_domain)),
      executor_(std::make_unique<util::Executor>(
          config.parallelism == 0 ? 1 : config.parallelism)),
      ledger_(config.ledger) {}

void DomainTopology::run_tasks(std::vector<std::function<void()>> tasks) const {
  if (tasks.empty()) return;
  if (parallelism() <= 1 || tasks.size() <= 1) {
    for (std::function<void()>& task : tasks) task();
    return;
  }
  if (ledger_ == nullptr) {
    executor_->run_all(std::move(tasks));
    return;
  }
  // Each task runs on its own branch timeline; the caller's timeline then
  // advances by the longest branch (the critical path of the fan-out) and
  // absorbs that branch's per-service breakdown.
  std::vector<sim::LatencyLedger::Timeline> branch_timelines(tasks.size());
  std::vector<std::function<void()>> wrapped;
  wrapped.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    wrapped.push_back([this, &tasks, &branch_timelines, i] {
      sim::LatencyLedger::Branch branch(*ledger_);
      tasks[i]();
      branch_timelines[i] = branch.timeline();
    });
  }
  std::vector<const sim::LatencyLedger::Timeline*> branches;
  branches.reserve(branch_timelines.size());
  for (const sim::LatencyLedger::Timeline& t : branch_timelines)
    branches.push_back(&t);
  // run_all rethrows a task's exception only after the whole batch finished,
  // so every branch is closed; merge what was gathered before propagating
  // (crash injection surfaces as an exception through here).
  try {
    executor_->run_all(std::move(wrapped));
  } catch (...) {
    ledger_->merge_critical_path(branches);
    throw;
  }
  ledger_->merge_critical_path(branches);
}

std::shared_ptr<const DomainTopology> DomainTopology::make(
    TopologyConfig config) {
  return std::make_shared<const DomainTopology>(std::move(config));
}

void DomainTopology::ensure_domains(aws::SimpleDbService& sdb) const {
  for (const std::string& domain : domains()) {
    auto created = sdb.create_domain(domain);
    PROVCLOUD_REQUIRE(created.has_value());
  }
}

}  // namespace provcloud::cloudprov
