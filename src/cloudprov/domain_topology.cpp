#include "cloudprov/domain_topology.hpp"

#include "aws/simpledb/simpledb.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

DomainTopology::DomainTopology(TopologyConfig config)
    : router_(config.shard_count, std::move(config.base_domain)),
      executor_(std::make_unique<util::Executor>(
          config.parallelism == 0 ? 1 : config.parallelism)) {}

std::shared_ptr<const DomainTopology> DomainTopology::make(
    TopologyConfig config) {
  return std::make_shared<const DomainTopology>(std::move(config));
}

void DomainTopology::ensure_domains(aws::SimpleDbService& sdb) const {
  for (const std::string& domain : domains()) {
    auto created = sdb.create_domain(domain);
    PROVCLOUD_REQUIRE(created.has_value());
  }
}

}  // namespace provcloud::cloudprov
