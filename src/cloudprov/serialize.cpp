#include "cloudprov/serialize.hpp"

#include <cstring>

#include "util/require.hpp"
#include "util/string_utils.hpp"

namespace provcloud::cloudprov {

using pass::ProvenanceRecord;

std::string item_name(const std::string& object, std::uint32_t version) {
  return object + ":" + std::to_string(version);
}

bool parse_item_name(const std::string& item, std::string& object,
                     std::uint32_t& version) {
  const std::size_t pos = item.rfind(':');
  if (pos == std::string::npos || pos + 1 >= item.size()) return false;
  for (std::size_t i = pos + 1; i < item.size(); ++i)
    if (item[i] < '0' || item[i] > '9') return false;
  object = item.substr(0, pos);
  version = static_cast<std::uint32_t>(std::stoul(item.substr(pos + 1)));
  return true;
}

std::string overflow_key(const std::string& object, std::uint32_t version,
                         std::size_t index) {
  return std::string(kOverflowPrefix) + object + ":" +
         std::to_string(version) + ":" + std::to_string(index);
}

bool is_xref_attribute(const std::string& attribute) {
  return attribute == pass::attr::kInput || attribute == pass::attr::kPrev ||
         attribute == pass::attr::kForkParent;
}

std::string serialize_record(const ProvenanceRecord& record) {
  return util::field_escape(record.attribute) + "=" +
         util::field_escape(record.value_string());
}

namespace {

ProvenanceRecord record_from(const std::string& attribute,
                             const std::string& value) {
  if (is_xref_attribute(attribute) &&
      value.rfind(kSpillMarker, 0) != 0) {
    std::string object;
    std::uint32_t version = 0;
    if (parse_item_name(value, object, version))
      return pass::make_xref_record(attribute,
                                    pass::ObjectVersion{object, version});
  }
  return pass::make_text_record(attribute, value);
}

}  // namespace

ProvenanceRecord parse_record(const std::string& serialized) {
  const std::size_t eq = serialized.find('=');
  PROVCLOUD_REQUIRE_MSG(eq != std::string::npos,
                        "malformed record: " + serialized);
  const std::string attribute = util::field_unescape(serialized.substr(0, eq));
  const std::string value = util::field_unescape(serialized.substr(eq + 1));
  return record_from(attribute, value);
}

// --- Architecture 1 --------------------------------------------------------

S3MetadataEncoding encode_unit_as_metadata(const pass::FlushUnit& unit) {
  S3MetadataEncoding out;
  out.metadata["x-object"] = unit.object;
  out.metadata["x-version"] = std::to_string(unit.version);
  out.metadata["x-kind"] = pass::to_string(unit.kind);

  const auto spill_pointer = [&unit](std::size_t i) {
    return util::field_escape(unit.records[i].attribute) + "=" + kSpillMarker +
           overflow_key(unit.object, unit.version, i);
  };

  std::vector<bool> spilled(unit.records.size(), false);
  for (std::size_t i = 0; i < unit.records.size(); ++i) {
    const ProvenanceRecord& r = unit.records[i];
    const std::string key = "p" + std::to_string(i);
    const std::string serialized = serialize_record(r);
    if (serialized.size() > kSpillThreshold) {
      out.metadata[key] = spill_pointer(i);
      spilled[i] = true;
    } else {
      out.metadata[key] = serialized;
    }
  }

  // The per-record threshold is not sufficient: S3 caps the *total* user
  // metadata at 2 KB. Spill the largest remaining records until the whole
  // envelope fits ("We might address this problem by storing provenance
  // overflowing the 2KB limit in separate S3 objects", section 4.1).
  while (aws::metadata_size(out.metadata) > aws::kS3MaxMetadataBytes) {
    std::size_t victim = unit.records.size();
    std::size_t victim_size = 0;
    for (std::size_t i = 0; i < unit.records.size(); ++i) {
      if (spilled[i]) continue;
      const std::size_t s = unit.records[i].payload_size();
      if (victim == unit.records.size() || s > victim_size) {
        victim = i;
        victim_size = s;
      }
    }
    PROVCLOUD_REQUIRE_MSG(victim < unit.records.size(),
                          "metadata cannot fit 2KB even fully spilled: " +
                              unit.object);
    out.metadata["p" + std::to_string(victim)] = spill_pointer(victim);
    spilled[victim] = true;
  }
  for (std::size_t i = 0; i < unit.records.size(); ++i)
    if (spilled[i]) out.spilled_indexes.push_back(i);
  return out;
}

DecodedMetadata decode_metadata(const aws::S3Metadata& metadata) {
  DecodedMetadata out;
  for (const auto& [key, value] : metadata) {
    if (key == "x-object") {
      out.object = value;
    } else if (key == "x-version") {
      try {
        out.version = static_cast<std::uint32_t>(std::stoul(value));
      } catch (...) {
        out.version = 0;
      }
    } else if (key == "x-kind") {
      out.kind = value;
    } else if (!key.empty() && key[0] == 'p') {
      ProvenanceRecord r = parse_record(value);
      if (!r.is_xref() && r.text().rfind(kSpillMarker, 0) == 0)
        out.spill_keys.push_back(r.text().substr(std::strlen(kSpillMarker)));
      out.records.push_back(std::move(r));
    }
  }
  return out;
}

// --- Architectures 2 & 3 ---------------------------------------------------

SdbEncoding encode_unit_as_attributes(const pass::FlushUnit& unit) {
  SdbEncoding out;
  out.attributes.push_back(
      aws::SdbReplaceableAttribute{"x-kind", pass::to_string(unit.kind), true});
  for (std::size_t i = 0; i < unit.records.size(); ++i) {
    const ProvenanceRecord& r = unit.records[i];
    std::string value = r.value_string();
    if (r.attribute.size() + value.size() > kSpillThreshold) {
      value = std::string(kSpillMarker) +
              overflow_key(unit.object, unit.version, i);
      out.spilled_indexes.push_back(i);
    }
    // Multi-valued attributes (several INPUT records) must not replace each
    // other; replace=false and SimpleDB's set semantics keep this idempotent.
    out.attributes.push_back(
        aws::SdbReplaceableAttribute{r.attribute, std::move(value), false});
  }
  return out;
}

std::vector<ProvenanceRecord> decode_attributes(const aws::SdbItem& item) {
  std::vector<ProvenanceRecord> out;
  for (const auto& [name, values] : item) {
    if (name == "x-kind" || name == pass::attr::kMd5) continue;
    for (const std::string& value : values)
      out.push_back(record_from(name, value));
  }
  return out;
}

}  // namespace provcloud::cloudprov
