#include "cloudprov/sdb_backend.hpp"

#include <cstring>
#include <map>
#include <optional>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/serialize.hpp"
#include "cloudprov/session.hpp"
#include "util/md5.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

namespace {
const util::SharedBytes kEmptyBytes = util::make_shared_bytes(util::Bytes{});
}

// ---------------------------------------------------------------------------
// Shared consistency machinery (consistency_read.hpp)
// ---------------------------------------------------------------------------

std::string nonce_for_version(std::uint32_t version) {
  return std::to_string(version);
}

BackendResult<std::vector<pass::ProvenanceRecord>> fetch_sdb_provenance(
    CloudServices& services, const DomainTopology& topology,
    const std::string& object, std::uint32_t version,
    std::uint32_t max_retries) {
  const std::string item = item_name(object, version);
  const std::string& domain = topology.domain_for_object(object);
  aws::SdbItem attrs;
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (attempt > 0)
      charge_read_retry(*services.env);
    auto got = services.sdb.get_attributes(domain, item);
    if (got && !got->empty()) {
      attrs = std::move(*got);
      break;
    }
    if (attempt >= max_retries)
      return backend_error(BackendErrorCode::kConsistencyExhausted,
                           "provenance item never became visible: " + item);
  }
  std::vector<pass::ProvenanceRecord> records = decode_attributes(attrs);
  // Resolve spill pointers ("@s3:<key>").
  for (pass::ProvenanceRecord& r : records) {
    if (r.is_xref()) continue;
    if (r.text().rfind(kSpillMarker, 0) != 0) continue;
    const std::string key = r.text().substr(std::strlen(kSpillMarker));
    bool resolved = false;
    for (std::uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
      if (attempt > 0)
        charge_read_retry(*services.env);
      auto got = services.s3.get(kDataBucket, key);
      if (!got) continue;
      if (is_xref_attribute(r.attribute)) {
        std::string ref_object;
        std::uint32_t ref_version = 0;
        if (parse_item_name(*got->data, ref_object, ref_version)) {
          r = pass::make_xref_record(
              r.attribute, pass::ObjectVersion{ref_object, ref_version});
          resolved = true;
          break;
        }
      }
      r = pass::ProvenanceRecord{r.attribute, *got->data};
      resolved = true;
      break;
    }
    if (!resolved)
      return backend_error(BackendErrorCode::kConsistencyExhausted,
                           "unresolvable provenance overflow object: " + key);
  }
  return records;
}

BackendResult<ReadResult> consistency_checked_read(
    CloudServices& services, const DomainTopology& topology,
    const std::string& object, std::uint32_t max_retries) {
  ReadResult best;
  bool have_any = false;
  for (std::uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    // Each retry round is a client backoff: charge it as idle wait so the
    // consistency loop's elapsed-time cost is visible on the timeline.
    if (attempt > 0)
      charge_read_retry(*services.env);
    // Round part 1: the data and its nonce from S3.
    auto got = services.s3.get(kDataBucket, object);
    if (!got) continue;  // propagation race
    auto nonce_it = got->metadata.find(kNonceMetaKey);
    if (nonce_it == got->metadata.end()) continue;
    const std::string nonce = nonce_it->second;
    std::uint32_t version = 0;
    try {
      version = static_cast<std::uint32_t>(std::stoul(nonce));
    } catch (...) {
      continue;
    }

    // Round part 2: the provenance item named by the nonce.
    const std::string item = item_name(object, version);
    auto attrs =
        services.sdb.get_attributes(topology.domain_for_object(object), item);
    if (!attrs || attrs->empty()) continue;

    // Round part 3: the MD5(data || nonce) comparison.
    auto md5_it = attrs->find(kMd5Attribute);
    if (md5_it == attrs->end() || md5_it->second.empty()) continue;
    const std::string expected = *md5_it->second.begin();
    const std::string actual = util::md5_with_nonce(*got->data, nonce);

    best.data = got->data;
    best.records = decode_attributes(*attrs);
    best.version = version;
    best.retries = attempt;
    have_any = true;
    if (actual == expected) {
      best.verified = true;
      // Spill pointers resolve through the slower path.
      auto resolved = fetch_sdb_provenance(services, topology, object, version,
                                           max_retries);
      if (resolved) best.records = std::move(*resolved);
      return best;
    }
  }
  if (!have_any)
    return backend_error(BackendErrorCode::kNotFound,
                         "object never became readable: " + object);
  best.verified = false;  // retries exhausted: the pair may be mismatched
  return best;
}

// ---------------------------------------------------------------------------
// SdbBackend
// ---------------------------------------------------------------------------

SdbBackend::SdbBackend(CloudServices& services, SdbBackendConfig config)
    : services_(&services),
      config_(config),
      topology_(DomainTopology::make(
          TopologyConfig{.shard_count = config.shard_count,
                         .parallelism = config.parallelism,
                         .ledger = &services.env->latency_ledger()})) {
  topology_->ensure_domains(services_->sdb);
}

std::unique_ptr<Session> SdbBackend::do_open_session(SessionConfig config) {
  return std::make_unique<Session>(
      *this, std::move(config), &services_->env->latency_ledger(),
      &services_->env->clock(), &services_->env->tracer(),
      &services_->env->metrics());
}

void SdbBackend::commit_group(const std::vector<TicketState*>& group,
                              sim::LatencyLedger* ledger) {
  aws::CloudEnv& env = *services_->env;

  // Sessions may narrow the SimpleDB batch width: the smallest nonzero
  // per-ticket override wins for the whole group (every rider's constraint
  // is honored); no override inherits the backend's configured width.
  std::size_t batch_size = 0;
  for (const TicketState* ticket : group)
    if (ticket->batch_size > 0)
      batch_size = batch_size == 0 ? ticket->batch_size
                                   : std::min(batch_size, ticket->batch_size);
  if (batch_size == 0) batch_size = config_.batch_size;

  struct PreparedUnit {
    TicketState* ticket = nullptr;
    std::string item;
    const std::string* domain = nullptr;
    std::vector<aws::SdbReplaceableAttribute> attributes;
    /// Causal wave within the group: a batch call may only carry items
    /// whose intra-group ancestors were written by an earlier call, so a
    /// crash between calls can never leave a stored item referencing an
    /// unstored one (the claim Table 1 scores for this architecture).
    std::size_t level = 0;
  };
  std::vector<PreparedUnit> prepared;
  prepared.reserve(group.size());
  std::map<std::string, std::size_t> item_of;  // item name -> prepared index

  // Phase 1, per close in submit order: spill oversized values to S3 and
  // encode the provenance attributes. No SimpleDB traffic yet.
  for (TicketState* ticket : group) {
    const pass::FlushUnit& unit = ticket->unit;
    env.failures().crash_point("sdb.store.begin");
    SdbEncoding enc = encode_unit_as_attributes(unit);
    {
      // Spill PUTs are exclusive to this close: in-flight closes overlap
      // them, so they land on the ticket's own timeline.
      std::optional<sim::LatencyLedger::ScopedTimeline> bind;
      if (ledger != nullptr) bind.emplace(*ledger, ticket->timeline);
      for (std::size_t index : enc.spilled_indexes) {
        const pass::ProvenanceRecord& r = unit.records[index];
        const std::string key = overflow_key(unit.object, unit.version, index);
        auto put = services_->s3.put(kDataBucket, key, r.value_string());
        PROVCLOUD_REQUIRE_MSG(put.has_value(),
                              "overflow PUT failed: " + put.error().message);
        env.failures().crash_point("sdb.store.after_overflow_put");
      }
    }
    const std::string nonce = nonce_for_version(unit.version);
    const util::SharedBytes data =
        unit.data != nullptr ? unit.data : kEmptyBytes;
    enc.attributes.push_back(aws::SdbReplaceableAttribute{
        kMd5Attribute, util::md5_with_nonce(*data, nonce), true});

    PreparedUnit p;
    p.ticket = ticket;
    p.item = item_name(unit.object, unit.version);
    p.domain = &topology_->domain_for_object(unit.object);
    p.attributes = std::move(enc.attributes);
    for (const pass::ProvenanceRecord& r : unit.records) {
      if (!r.is_xref()) continue;
      auto dep = item_of.find(item_name(r.xref().object, r.xref().version));
      if (dep != item_of.end())
        p.level = std::max(p.level, prepared[dep->second].level + 1);
    }
    auto [slot, inserted] = item_of.emplace(p.item, prepared.size());
    if (!inserted) {
      // The same (object, version) submitted twice in one group: the
      // writes must not share a batch call (duplicate item names are
      // rejected) and the later submit must win, so it rides a later wave.
      p.level = std::max(p.level, prepared[slot->second].level + 1);
      slot->second = prepared.size();
    }
    prepared.push_back(std::move(p));
  }

  // Phase 2: provenance into the shard domains. Batched path: the whole
  // group coalesces into BatchPutAttributes calls of up to batch_size
  // (<= 25) items per shard domain, wave by wave -- the cross-close group
  // commit. Legacy path (batch_size == 1): the paper's PutAttributes
  // chunking, one item at a time in submit (causal) order.
  if (batch_size <= 1) {
    for (PreparedUnit& p : prepared) {
      for (std::size_t start = 0; start < p.attributes.size();
           start += aws::kSdbMaxAttrsPerCall) {
        const std::size_t end = std::min(start + aws::kSdbMaxAttrsPerCall,
                                         p.attributes.size());
        std::vector<aws::SdbReplaceableAttribute> chunk(
            p.attributes.begin() + static_cast<std::ptrdiff_t>(start),
            p.attributes.begin() + static_cast<std::ptrdiff_t>(end));
        auto put = services_->sdb.put_attributes(*p.domain, p.item, chunk);
        PROVCLOUD_REQUIRE_MSG(put.has_value(),
                              "PutAttributes failed: " + put.error().message);
        env.failures().crash_point("sdb.store.mid_putattrs");
      }
    }
  } else {
    const std::size_t batch_limit =
        std::min(batch_size, aws::kSdbMaxItemsPerBatch);
    std::size_t max_level = 0;
    for (const PreparedUnit& p : prepared)
      max_level = std::max(max_level, p.level);
    env.metrics().histogram("sdb.causal_waves").record(max_level + 1);
    for (std::size_t level = 0; level <= max_level; ++level) {
      std::map<std::string, std::vector<PreparedUnit*>> by_domain;
      std::size_t wave_items = 0;
      for (PreparedUnit& p : prepared)
        if (p.level == level) {
          by_domain[*p.domain].push_back(&p);
          ++wave_items;
        }
      obs::Span wave_span(&env.tracer(), "sdb.wave", "sdb");
      wave_span.arg("level", static_cast<std::uint64_t>(level));
      wave_span.arg("items", static_cast<std::uint64_t>(wave_items));
      wave_span.arg("domains", static_cast<std::uint64_t>(by_domain.size()));
      for (auto& [domain, items] : by_domain) {
        for (std::size_t start = 0; start < items.size();
             start += batch_limit) {
          const std::size_t end =
              std::min(start + batch_limit, items.size());
          std::vector<aws::SdbBatchEntry> entries;
          entries.reserve(end - start);
          for (std::size_t i = start; i < end; ++i)
            entries.push_back(aws::SdbBatchEntry{
                items[i]->item, std::move(items[i]->attributes)});
          auto put = services_->sdb.batch_put_attributes(domain, entries);
          PROVCLOUD_REQUIRE_MSG(
              put.has_value(),
              "BatchPutAttributes failed: " + put.error().message);
          PROVCLOUD_REQUIRE_MSG(put->ok(),
                                "BatchPutAttributes rejected item: " +
                                    put->failed.front().error.message);
          env.failures().crash_point("sdb.store.mid_putattrs");
        }
      }
    }
  }

  // *** The atomicity hole, now group-wide: a crash here leaves one orphan
  // provenance item per close in the group. ***
  env.failures().crash_point("sdb.store.between_prov_and_data");

  // Phase 3: data to S3 in submit order, the nonce riding as metadata.
  // Transient pnodes (processes, pipes) have no data: their provenance
  // lives only in SimpleDB, exactly as in the paper (its Raw column counts
  // file PUTs while its item count includes every transient version).
  for (PreparedUnit& p : prepared) {
    const pass::FlushUnit& unit = p.ticket->unit;
    if (unit.kind == pass::PnodeKind::kFile) {
      const util::SharedBytes data =
          unit.data != nullptr ? unit.data : kEmptyBytes;
      aws::S3Metadata meta;
      meta[kNonceMetaKey] = nonce_for_version(unit.version);
      meta[kVersionMetaKey] = std::to_string(unit.version);
      std::optional<sim::LatencyLedger::ScopedTimeline> bind;
      if (ledger != nullptr) bind.emplace(*ledger, p.ticket->timeline);
      auto put = services_->s3.put_shared(kDataBucket, unit.object, data, meta);
      PROVCLOUD_REQUIRE_MSG(put.has_value(),
                            "data PUT failed: " + put.error().message);
    }
    p.ticket->done = true;
    env.failures().crash_point("sdb.store.after_data");
  }
}

BackendResult<ReadResult> SdbBackend::read(const std::string& object,
                                           std::uint32_t max_retries) {
  return consistency_checked_read(*services_, *topology_, object, max_retries);
}

BackendResult<std::vector<pass::ProvenanceRecord>> SdbBackend::get_provenance(
    const std::string& object, std::uint32_t version) {
  return fetch_sdb_provenance(*services_, *topology_, object, version, 64);
}

void SdbBackend::recover() {
  // "On restart, the client could recover by scanning SimpleDB for 'orphan
  // provenance' and remove provenance of objects that do not exist. However,
  // this is an inelegant solution as it involves a scan of the entire
  // SimpleDB domain" -- which is exactly what this is.
  last_orphans_ = 0;
  for (const std::string& domain : topology_->domains()) {
    std::string token;
    for (;;) {
      auto page =
          services_->sdb.query(domain, "", aws::kSdbMaxQueryResults, token);
      if (!page) break;
      for (const std::string& item : page->item_names) {
        std::string object;
        std::uint32_t version = 0;
        if (!parse_item_name(item, object, version)) continue;

        // Transient pnodes have no data object by design: never orphans.
        auto attrs = services_->sdb.get_attributes(domain, item, {"x-kind"});
        if (attrs && !attrs->empty()) {
          auto kind_it = attrs->find("x-kind");
          if (kind_it != attrs->end() && !kind_it->second.empty() &&
              *kind_it->second.begin() != "file")
            continue;
        }

        // Retry HEAD a few times so a propagation race is not mistaken for
        // a missing object.
        bool data_present = false;
        std::uint32_t data_version = 0;
        for (int attempt = 0; attempt < 8; ++attempt) {
          auto head = services_->s3.head(kDataBucket, object);
          if (!head) continue;
          auto v = head->metadata.find(kVersionMetaKey);
          std::uint32_t seen = 0;
          if (v != head->metadata.end()) {
            try {
              seen = static_cast<std::uint32_t>(std::stoul(v->second));
            } catch (...) {
            }
          }
          data_version = std::max(data_version, seen);
          if (seen >= version) {
            data_present = true;
            break;
          }
        }
        if (!data_present) {
          // Provenance for a version whose data never arrived: orphan.
          auto del = services_->sdb.delete_attributes(domain, item, {});
          if (del) ++last_orphans_;
        }
      }
      if (!page->next_token) break;
      token = *page->next_token;
    }
  }
}

std::unique_ptr<ProvenanceBackend> make_sdb_backend(CloudServices& services) {
  return std::make_unique<SdbBackend>(services);
}

std::unique_ptr<ProvenanceBackend> make_sdb_backend(
    CloudServices& services, const SdbBackendConfig& config) {
  return std::make_unique<SdbBackend>(services, config);
}

}  // namespace provcloud::cloudprov
