#include "cloudprov/sdb_backend.hpp"

#include <cstring>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/serialize.hpp"
#include "util/md5.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

namespace {
const util::SharedBytes kEmptyBytes = util::make_shared_bytes(util::Bytes{});
}

// ---------------------------------------------------------------------------
// Shared consistency machinery (consistency_read.hpp)
// ---------------------------------------------------------------------------

std::string nonce_for_version(std::uint32_t version) {
  return std::to_string(version);
}

BackendResult<std::vector<pass::ProvenanceRecord>> fetch_sdb_provenance(
    CloudServices& services, const DomainTopology& topology,
    const std::string& object, std::uint32_t version,
    std::uint32_t max_retries) {
  const std::string item = item_name(object, version);
  const std::string& domain = topology.domain_for_object(object);
  aws::SdbItem attrs;
  for (std::uint32_t attempt = 0;; ++attempt) {
    auto got = services.sdb.get_attributes(domain, item);
    if (got && !got->empty()) {
      attrs = std::move(*got);
      break;
    }
    if (attempt >= max_retries)
      return backend_error("provenance item never became visible: " + item);
  }
  std::vector<pass::ProvenanceRecord> records = decode_attributes(attrs);
  // Resolve spill pointers ("@s3:<key>").
  for (pass::ProvenanceRecord& r : records) {
    if (r.is_xref()) continue;
    if (r.text().rfind(kSpillMarker, 0) != 0) continue;
    const std::string key = r.text().substr(std::strlen(kSpillMarker));
    bool resolved = false;
    for (std::uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
      auto got = services.s3.get(kDataBucket, key);
      if (!got) continue;
      if (is_xref_attribute(r.attribute)) {
        std::string ref_object;
        std::uint32_t ref_version = 0;
        if (parse_item_name(*got->data, ref_object, ref_version)) {
          r = pass::make_xref_record(
              r.attribute, pass::ObjectVersion{ref_object, ref_version});
          resolved = true;
          break;
        }
      }
      r = pass::ProvenanceRecord{r.attribute, *got->data};
      resolved = true;
      break;
    }
    if (!resolved)
      return backend_error("unresolvable provenance overflow object: " + key);
  }
  return records;
}

BackendResult<ReadResult> consistency_checked_read(
    CloudServices& services, const DomainTopology& topology,
    const std::string& object, std::uint32_t max_retries) {
  ReadResult best;
  bool have_any = false;
  for (std::uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    // Round part 1: the data and its nonce from S3.
    auto got = services.s3.get(kDataBucket, object);
    if (!got) continue;  // propagation race
    auto nonce_it = got->metadata.find(kNonceMetaKey);
    if (nonce_it == got->metadata.end()) continue;
    const std::string nonce = nonce_it->second;
    std::uint32_t version = 0;
    try {
      version = static_cast<std::uint32_t>(std::stoul(nonce));
    } catch (...) {
      continue;
    }

    // Round part 2: the provenance item named by the nonce.
    const std::string item = item_name(object, version);
    auto attrs =
        services.sdb.get_attributes(topology.domain_for_object(object), item);
    if (!attrs || attrs->empty()) continue;

    // Round part 3: the MD5(data || nonce) comparison.
    auto md5_it = attrs->find(kMd5Attribute);
    if (md5_it == attrs->end() || md5_it->second.empty()) continue;
    const std::string expected = *md5_it->second.begin();
    const std::string actual = util::md5_with_nonce(*got->data, nonce);

    best.data = got->data;
    best.records = decode_attributes(*attrs);
    best.version = version;
    best.retries = attempt;
    have_any = true;
    if (actual == expected) {
      best.verified = true;
      // Spill pointers resolve through the slower path.
      auto resolved = fetch_sdb_provenance(services, topology, object, version,
                                           max_retries);
      if (resolved) best.records = std::move(*resolved);
      return best;
    }
  }
  if (!have_any)
    return backend_error("object never became readable: " + object);
  best.verified = false;  // retries exhausted: the pair may be mismatched
  return best;
}

std::vector<BackendResult<ReadResult>> consistency_checked_read_many(
    CloudServices& services, const DomainTopology& topology,
    const std::vector<std::string>& objects, std::uint32_t max_retries) {
  std::vector<BackendResult<ReadResult>> out(
      objects.size(), backend_error("read_many: not attempted"));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i) {
    tasks.push_back([&services, &topology, &objects, &out, i, max_retries] {
      out[i] = consistency_checked_read(services, topology, objects[i],
                                        max_retries);
    });
  }
  topology.run_tasks(std::move(tasks));
  return out;
}

// ---------------------------------------------------------------------------
// SdbBackend
// ---------------------------------------------------------------------------

SdbBackend::SdbBackend(CloudServices& services, SdbBackendConfig config)
    : services_(&services),
      config_(config),
      topology_(DomainTopology::make(
          TopologyConfig{.shard_count = config.shard_count,
                         .parallelism = config.parallelism,
                         .ledger = &services.env->latency_ledger()})) {
  topology_->ensure_domains(services_->sdb);
}

void SdbBackend::store(const pass::FlushUnit& unit) {
  aws::CloudEnv& env = *services_->env;
  env.failures().crash_point("sdb.store.begin");

  // Step 2: one big provenance record; oversized values spill to S3.
  SdbEncoding enc = encode_unit_as_attributes(unit);
  for (std::size_t index : enc.spilled_indexes) {
    const pass::ProvenanceRecord& r = unit.records[index];
    const std::string key = overflow_key(unit.object, unit.version, index);
    auto put = services_->s3.put(kDataBucket, key, r.value_string());
    PROVCLOUD_REQUIRE_MSG(put.has_value(),
                          "overflow PUT failed: " + put.error().message);
    env.failures().crash_point("sdb.store.after_overflow_put");
  }
  const std::string nonce = nonce_for_version(unit.version);
  const util::SharedBytes data = unit.data != nullptr ? unit.data : kEmptyBytes;
  enc.attributes.push_back(aws::SdbReplaceableAttribute{
      kMd5Attribute, util::md5_with_nonce(*data, nonce), true});

  // Step 3: the record into the object's shard domain. Batched path: one
  // BatchPutAttributes round trip carries all attributes (batch entries
  // admit the full 256-pair item limit); legacy path (batch_size == 1):
  // PutAttributes chunked at the 100-attribute call limit.
  const std::string item = item_name(unit.object, unit.version);
  const std::string& domain = topology_->domain_for_object(unit.object);
  if (config_.batch_size <= 1) {
    for (std::size_t start = 0; start < enc.attributes.size();
         start += aws::kSdbMaxAttrsPerCall) {
      const std::size_t end = std::min(start + aws::kSdbMaxAttrsPerCall,
                                       enc.attributes.size());
      std::vector<aws::SdbReplaceableAttribute> chunk(
          enc.attributes.begin() + static_cast<std::ptrdiff_t>(start),
          enc.attributes.begin() + static_cast<std::ptrdiff_t>(end));
      auto put = services_->sdb.put_attributes(domain, item, chunk);
      PROVCLOUD_REQUIRE_MSG(put.has_value(),
                            "PutAttributes failed: " + put.error().message);
      env.failures().crash_point("sdb.store.mid_putattrs");
    }
  } else {
    auto put = services_->sdb.batch_put_attributes(
        domain, {aws::SdbBatchEntry{item, enc.attributes}});
    PROVCLOUD_REQUIRE_MSG(put.has_value(),
                          "BatchPutAttributes failed: " + put.error().message);
    PROVCLOUD_REQUIRE_MSG(put->ok(),
                          "BatchPutAttributes rejected item: " +
                              put->failed.front().error.message);
    env.failures().crash_point("sdb.store.mid_putattrs");
  }

  // *** The atomicity hole: a crash here leaves orphan provenance. ***
  env.failures().crash_point("sdb.store.between_prov_and_data");

  // Step 4: data to S3, the nonce rides as metadata. Transient pnodes
  // (processes, pipes) have no data: their provenance lives only in
  // SimpleDB, exactly as in the paper (its Raw column counts file PUTs
  // while its item count includes every transient version).
  if (unit.kind == pass::PnodeKind::kFile) {
    aws::S3Metadata meta;
    meta[kNonceMetaKey] = nonce;
    meta[kVersionMetaKey] = std::to_string(unit.version);
    auto put = services_->s3.put_shared(kDataBucket, unit.object, data, meta);
    PROVCLOUD_REQUIRE_MSG(put.has_value(),
                          "data PUT failed: " + put.error().message);
  }
  env.failures().crash_point("sdb.store.after_data");
}

BackendResult<ReadResult> SdbBackend::read(const std::string& object,
                                           std::uint32_t max_retries) {
  return consistency_checked_read(*services_, *topology_, object, max_retries);
}

std::vector<BackendResult<ReadResult>> SdbBackend::read_many(
    const std::vector<std::string>& objects, std::uint32_t max_retries) {
  return consistency_checked_read_many(*services_, *topology_, objects,
                                       max_retries);
}

BackendResult<std::vector<pass::ProvenanceRecord>> SdbBackend::get_provenance(
    const std::string& object, std::uint32_t version) {
  return fetch_sdb_provenance(*services_, *topology_, object, version, 64);
}

void SdbBackend::recover() {
  // "On restart, the client could recover by scanning SimpleDB for 'orphan
  // provenance' and remove provenance of objects that do not exist. However,
  // this is an inelegant solution as it involves a scan of the entire
  // SimpleDB domain" -- which is exactly what this is.
  last_orphans_ = 0;
  for (const std::string& domain : topology_->domains()) {
    std::string token;
    for (;;) {
      auto page =
          services_->sdb.query(domain, "", aws::kSdbMaxQueryResults, token);
      if (!page) break;
      for (const std::string& item : page->item_names) {
        std::string object;
        std::uint32_t version = 0;
        if (!parse_item_name(item, object, version)) continue;

        // Transient pnodes have no data object by design: never orphans.
        auto attrs = services_->sdb.get_attributes(domain, item, {"x-kind"});
        if (attrs && !attrs->empty()) {
          auto kind_it = attrs->find("x-kind");
          if (kind_it != attrs->end() && !kind_it->second.empty() &&
              *kind_it->second.begin() != "file")
            continue;
        }

        // Retry HEAD a few times so a propagation race is not mistaken for
        // a missing object.
        bool data_present = false;
        std::uint32_t data_version = 0;
        for (int attempt = 0; attempt < 8; ++attempt) {
          auto head = services_->s3.head(kDataBucket, object);
          if (!head) continue;
          auto v = head->metadata.find(kVersionMetaKey);
          std::uint32_t seen = 0;
          if (v != head->metadata.end()) {
            try {
              seen = static_cast<std::uint32_t>(std::stoul(v->second));
            } catch (...) {
            }
          }
          data_version = std::max(data_version, seen);
          if (seen >= version) {
            data_present = true;
            break;
          }
        }
        if (!data_present) {
          // Provenance for a version whose data never arrived: orphan.
          auto del = services_->sdb.delete_attributes(domain, item, {});
          if (del) ++last_orphans_;
        }
      }
      if (!page->next_token) break;
      token = *page->next_token;
    }
  }
}

std::unique_ptr<ProvenanceBackend> make_sdb_backend(CloudServices& services) {
  return std::make_unique<SdbBackend>(services);
}

std::unique_ptr<ProvenanceBackend> make_sdb_backend(
    CloudServices& services, const SdbBackendConfig& config) {
  return std::make_unique<SdbBackend>(services, config);
}

}  // namespace provcloud::cloudprov
