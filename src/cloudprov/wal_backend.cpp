#include "cloudprov/wal_backend.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <set>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/serialize.hpp"
#include "cloudprov/session.hpp"
#include "util/md5.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

namespace {
const util::SharedBytes kEmptyBytes = util::make_shared_bytes(util::Bytes{});
constexpr const char* kTempCreatedMetaKey = "x-temp-created";
}  // namespace

WalBackend::WalBackend(CloudServices& services, WalBackendConfig config)
    : services_(&services),
      config_(std::move(config)),
      topology_(DomainTopology::make(
          TopologyConfig{.shard_count = config_.shard_count,
                         .parallelism = config_.parallelism,
                         .ledger = &services.env->latency_ledger()})) {
  topology_->ensure_domains(services_->sdb);
  auto queue =
      services_->sqs.create_queue(config_.queue_name, config_.visibility_timeout);
  PROVCLOUD_REQUIRE(queue.has_value());
  queue_url_ = *queue;
}

std::unique_ptr<Session> WalBackend::do_open_session(SessionConfig config) {
  return std::make_unique<Session>(
      *this, std::move(config), &services_->env->latency_ledger(),
      &services_->env->clock(), &services_->env->tracer(),
      &services_->env->metrics());
}

void WalBackend::log_transaction(const pass::FlushUnit& unit,
                                 TicketState* ticket,
                                 sim::LatencyLedger* ledger) {
  aws::CloudEnv& env = *services_->env;
  env.failures().crash_point("wal.store.begin");

  const std::string txid = "tx-" + std::to_string(next_txid_++);
  const std::string nonce = nonce_for_version(unit.version);
  const util::SharedBytes data = unit.data != nullptr ? unit.data : kEmptyBytes;
  const std::string md5 = util::md5_with_nonce(*data, nonce);
  // Transient pnodes carry no data: no temp object, and the commit daemon
  // skips the COPY (their provenance lives only in SimpleDB).
  // The temp name is namespaced by the client's queue: txids count per
  // client, so two clients closing concurrently would otherwise write the
  // same ".tmp/tx-n" object and one commit daemon would promote the other
  // client's data.
  const bool has_data = unit.kind == pass::PnodeKind::kFile;
  const std::string temp_key =
      has_data ? std::string(kTempPrefix) + config_.queue_name + "/" + txid
               : std::string();

  const std::vector<WalRecord> records =
      build_transaction(txid, unit, temp_key, nonce, md5);

  // (b) begin record first: it carries the record count the commit daemon
  // needs to know a transaction is fully present.
  auto sent = services_->sqs.send_message(queue_url_,
                                          encode_wal_record(records.front()));
  PROVCLOUD_REQUIRE_MSG(sent.has_value(),
                        "WAL send failed: " + sent.error().message);
  env.failures().crash_point("wal.store.after_begin");

  // (c) the data goes to a temporary S3 object -- it cannot ride the queue
  // (8 KB limit) -- and a pointer record is logged. The temp PUT is
  // exclusive to this close: charged to the ticket's timeline so in-flight
  // closes overlap it.
  if (has_data) {
    aws::S3Metadata temp_meta;
    temp_meta[kTempCreatedMetaKey] = std::to_string(env.clock().now());
    std::optional<sim::LatencyLedger::ScopedTimeline> bind;
    if (ledger != nullptr && ticket != nullptr)
      bind.emplace(*ledger, ticket->timeline);
    auto temp_put =
        services_->s3.put_shared(kDataBucket, temp_key, data, temp_meta);
    PROVCLOUD_REQUIRE_MSG(temp_put.has_value(),
                          "temp PUT failed: " + temp_put.error().message);
  }
  env.failures().crash_point("wal.store.after_temp_put");

  // (c continued), (d): pointer record, provenance chunks, md5 record.
  for (std::size_t i = 1; i + 1 < records.size(); ++i) {
    auto s = services_->sqs.send_message(queue_url_,
                                         encode_wal_record(records[i]));
    PROVCLOUD_REQUIRE_MSG(s.has_value(),
                          "WAL send failed: " + s.error().message);
    env.failures().crash_point("wal.store.mid_records");
  }
  env.failures().crash_point("wal.store.before_commit");

  // (e) the commit record seals the transaction.
  auto commit = services_->sqs.send_message(queue_url_,
                                            encode_wal_record(records.back()));
  PROVCLOUD_REQUIRE_MSG(commit.has_value(),
                        "WAL send failed: " + commit.error().message);
  if (ticket != nullptr) ticket->done = true;  // the log is durable
  env.failures().crash_point("wal.store.after_commit");
}

void WalBackend::commit_group(const std::vector<TicketState*>& group,
                              sim::LatencyLedger* ledger) {
  if (group.size() <= 1) {
    // A single-close group is the per-close protocol, message for message.
    for (TicketState* ticket : group)
      log_transaction(ticket->unit, ticket, ledger);
    pump();
    return;
  }

  aws::CloudEnv& env = *services_->env;
  struct LoggedTxn {
    TicketState* ticket = nullptr;
    std::vector<WalRecord> records;
    std::string temp_key;
    bool has_data = false;
  };
  std::vector<LoggedTxn> txns;
  txns.reserve(group.size());
  for (TicketState* ticket : group) {
    env.failures().crash_point("wal.store.begin");
    const pass::FlushUnit& unit = ticket->unit;
    const std::string txid = "tx-" + std::to_string(next_txid_++);
    const std::string nonce = nonce_for_version(unit.version);
    const util::SharedBytes data =
        unit.data != nullptr ? unit.data : kEmptyBytes;
    const std::string md5 = util::md5_with_nonce(*data, nonce);
    const bool has_data = unit.kind == pass::PnodeKind::kFile;
    const std::string temp_key =
        has_data ? std::string(kTempPrefix) + config_.queue_name + "/" + txid
                 : std::string();
    LoggedTxn txn;
    txn.ticket = ticket;
    txn.records = build_transaction(txid, unit, temp_key, nonce, md5);
    txn.temp_key = temp_key;
    txn.has_data = has_data;
    txns.push_back(std::move(txn));
  }

  // Up to 10 log records per SQS round trip. `mark` runs after each batch
  // call lands (before its crash point), so commit sends can retire their
  // tickets exactly when the log becomes durable.
  const auto send_batched =
      [&](std::vector<util::Bytes> bodies, const char* point,
          const std::function<void(std::size_t, std::size_t)>& mark) {
        obs::Span span(&env.tracer(), "wal.send_batch", "wal");
        span.arg("records", static_cast<std::uint64_t>(bodies.size()));
        span.arg("phase", point);
        for (std::size_t start = 0; start < bodies.size();
             start += aws::kSqsMaxSendBatch) {
          const std::size_t end =
              std::min(start + aws::kSqsMaxSendBatch, bodies.size());
          std::vector<util::Bytes> chunk(
              bodies.begin() + static_cast<std::ptrdiff_t>(start),
              bodies.begin() + static_cast<std::ptrdiff_t>(end));
          auto sent = services_->sqs.send_message_batch(queue_url_, chunk);
          PROVCLOUD_REQUIRE_MSG(sent.has_value(),
                                "WAL batch send failed: " +
                                    sent.error().message);
          PROVCLOUD_REQUIRE_MSG(sent->ok(),
                                "WAL batch send rejected entry: " +
                                    sent->failed.front().error.message);
          if (mark) mark(start, end);
          env.failures().crash_point(point);
        }
      };

  // (b) every begin record first: each carries the record count the commit
  // daemon needs to know its transaction is fully present.
  std::vector<util::Bytes> begins;
  begins.reserve(txns.size());
  for (const LoggedTxn& txn : txns)
    begins.push_back(encode_wal_record(txn.records.front()));
  send_batched(std::move(begins), "wal.store.after_begin", nullptr);

  // (c) temp objects, one PUT per data-bearing close (exclusive to the
  // close: charged to its ticket's timeline).
  for (const LoggedTxn& txn : txns) {
    if (txn.has_data) {
      aws::S3Metadata temp_meta;
      temp_meta[kTempCreatedMetaKey] = std::to_string(env.clock().now());
      const pass::FlushUnit& unit = txn.ticket->unit;
      const util::SharedBytes data =
          unit.data != nullptr ? unit.data : kEmptyBytes;
      std::optional<sim::LatencyLedger::ScopedTimeline> bind;
      if (ledger != nullptr) bind.emplace(*ledger, txn.ticket->timeline);
      auto temp_put =
          services_->s3.put_shared(kDataBucket, txn.temp_key, data, temp_meta);
      PROVCLOUD_REQUIRE_MSG(temp_put.has_value(),
                            "temp PUT failed: " + temp_put.error().message);
    }
    env.failures().crash_point("wal.store.after_temp_put");
  }

  // (c continued), (d): pointer records, provenance chunks and md5 records
  // of the whole group, submit order.
  std::vector<util::Bytes> middles;
  for (const LoggedTxn& txn : txns)
    for (std::size_t i = 1; i + 1 < txn.records.size(); ++i)
      middles.push_back(encode_wal_record(txn.records[i]));
  send_batched(std::move(middles), "wal.store.mid_records", nullptr);
  env.failures().crash_point("wal.store.before_commit");

  // (e) the commit records seal the transactions, in submit order: a crash
  // between batch calls leaves a committed prefix (those closes are
  // durable) and incomplete suffix transactions the retention reaps.
  std::vector<util::Bytes> commits;
  commits.reserve(txns.size());
  for (const LoggedTxn& txn : txns)
    commits.push_back(encode_wal_record(txn.records.back()));
  send_batched(std::move(commits), "wal.store.after_commit",
               [&](std::size_t start, std::size_t end) {
                 for (std::size_t i = start; i < end; ++i)
                   txns[i].ticket->done = true;
               });

  // One commit-daemon poke per group instead of per close.
  pump();
}

void WalBackend::pump() {
  auto approx = services_->sqs.approximate_number_of_messages(queue_url_);
  if (!approx) return;
  if (*approx < config_.commit_threshold) return;
  commit_phase(/*forced=*/false);
}

void WalBackend::commit_phase(bool forced) {
  aws::CloudEnv& env = *services_->env;
  obs::Span span(&env.tracer(), "wal.commit_phase", "wal");
  span.arg("forced", forced ? "true" : "false");
  env.failures().crash_point("commitd.begin");

  // (a) receive as many messages as possible; SQS sampling means repeated
  // calls are required to see everything.
  std::map<std::string, WalTransaction> txns;
  std::uint32_t quiet_rounds = 0;
  for (std::uint32_t round = 0; round < config_.receive_rounds; ++round) {
    auto batch =
        services_->sqs.receive_message(queue_url_, aws::kSqsMaxReceiveBatch);
    if (!batch) break;
    if (batch->empty()) {
      if (++quiet_rounds >= 4 && !forced) break;
      continue;
    }
    quiet_rounds = 0;
    for (const aws::SqsMessage& m : *batch) {
      auto rec = decode_wal_record(m.body);
      if (!rec) continue;  // corrupt message: leave for retention to reap
      WalTransaction& txn = txns[rec->txid];
      txn.txid = rec->txid;
      txn.receipt_handles.push_back(m.receipt_handle);
      switch (rec->kind) {
        case WalRecord::Kind::kBegin: txn.begin = *rec; break;
        case WalRecord::Kind::kData: txn.data = *rec; break;
        case WalRecord::Kind::kProv: txn.prov_chunks.push_back(*rec); break;
        case WalRecord::Kind::kMd5: txn.md5 = *rec; break;
        case WalRecord::Kind::kCommit: txn.committed = true; break;
      }
    }
  }
  env.failures().crash_point("commitd.after_receive");

  // Process complete transactions in txid order (single client: monotonic),
  // so replayed old transactions cannot clobber newer data.
  std::vector<const WalTransaction*> ready;
  for (const auto& [txid, txn] : txns)
    if (txn.complete()) ready.push_back(&txn);
  std::sort(ready.begin(), ready.end(),
            [](const WalTransaction* a, const WalTransaction* b) {
              // txids are "tx-<n>": compare numerically.
              const auto num = [](const std::string& t) {
                return std::stoull(t.substr(3));
              };
              return num(a->txid) < num(b->txid);
            });
  // The batched pipeline: promote every transaction's data first, coalesce
  // all their SimpleDB writes into per-shard batch calls, then delete log
  // messages and temp objects only for transactions whose writes landed.
  // Every step stays idempotent, so a crash between phases replays safely.
  span.arg("txns_seen", static_cast<std::uint64_t>(txns.size()));
  span.arg("ready", static_cast<std::uint64_t>(ready.size()));
  env.metrics().histogram("wal.ready_txns").record(ready.size());
  std::vector<StagedTxn> staged;
  staged.reserve(ready.size());
  for (const WalTransaction* txn : ready) {
    auto prepared = prepare_transaction(*txn);
    if (prepared) staged.push_back(std::move(*prepared));
  }
  flush_staged(staged);
  env.failures().crash_point("commitd.after_sdb");
  for (const StagedTxn& s : staged) {
    if (!s.flushed) continue;  // deferred: a later pump retries
    finish_transaction(s);
    ++committed_count_;
  }
  // Transactions that were incomplete (commit record not yet visible, or
  // sampling missed pieces) keep their messages; the visibility timeout
  // re-exposes them for the next pump. Uncommitted transactions eventually
  // vanish via the 4-day retention.
}

std::optional<WalBackend::StagedTxn> WalBackend::prepare_transaction(
    const WalTransaction& txn) {
  aws::CloudEnv& env = *services_->env;
  PROVCLOUD_REQUIRE(txn.data && txn.md5 && txn.begin);
  const WalRecord& data = *txn.data;

  // (b) promote the temp object to its real name; the COPY stamps the nonce
  // and version metadata. COPY (not rename) keeps replay possible.
  // Transient pnodes logged no data: skip the promotion entirely.
  const bool has_data = data.pnode_kind == pass::PnodeKind::kFile;

  // Ordering guard: a transaction can be delayed past a *newer* version of
  // the same object (its messages hidden by a visibility timeout while a
  // later pump committed the successor). Its COPY must then be suppressed
  // or it would clobber newer data; its provenance item is still valid and
  // still stored below.
  bool superseded = false;
  for (int attempt = 0; has_data && attempt < 4 && !superseded; ++attempt) {
    auto head = services_->s3.head(kDataBucket, data.object);
    if (!head) continue;
    auto v = head->metadata.find(kVersionMetaKey);
    if (v == head->metadata.end()) continue;
    try {
      superseded = std::stoul(v->second) >= data.version;
    } catch (...) {
    }
  }

  aws::S3Metadata meta;
  meta[kNonceMetaKey] = data.nonce;
  meta[kVersionMetaKey] = std::to_string(data.version);
  bool copied = false;
  for (std::uint32_t attempt = 0;
       has_data && !superseded && attempt <= config_.copy_retries; ++attempt) {
    auto copy = services_->s3.copy(kDataBucket, data.temp_key, kDataBucket,
                                   data.object, aws::MetadataDirective::kReplace,
                                   meta);
    if (copy) {
      copied = true;
      break;
    }
  }
  if (has_data && !superseded && !copied) {
    // The temp object is gone: either propagation is badly behind (defer to
    // the next pump) or this is a replay whose final DELETE already ran.
    // Distinguish via the destination: if the real object already carries
    // this version (or newer), the transaction was already applied and only
    // the message deletes remain.
    auto head = services_->s3.head(kDataBucket, data.object);
    bool already_applied = false;
    if (head) {
      auto v = head->metadata.find(kVersionMetaKey);
      if (v != head->metadata.end()) {
        try {
          already_applied = std::stoul(v->second) >= data.version;
        } catch (...) {
        }
      }
    }
    if (!already_applied) return std::nullopt;  // defer to a later pump
  }
  env.failures().crash_point("commitd.after_copy");

  // (c) provenance toward SimpleDB. Rebuild the flush unit from the chunks
  // and spill > 1 KB values to S3 now; the attribute writes themselves are
  // coalesced across transactions and flushed by flush_staged.
  pass::FlushUnit unit;
  unit.object = data.object;
  unit.version = data.version;
  unit.kind = data.pnode_kind;
  // Chunks may arrive out of order; restore it.
  std::vector<WalRecord> chunks = txn.prov_chunks;
  std::sort(chunks.begin(), chunks.end(),
            [](const WalRecord& a, const WalRecord& b) {
              return a.chunk_index < b.chunk_index;
            });
  for (const WalRecord& c : chunks)
    for (const pass::ProvenanceRecord& r : c.records)
      unit.records.push_back(r);

  SdbEncoding enc = encode_unit_as_attributes(unit);
  for (std::size_t index : enc.spilled_indexes) {
    const pass::ProvenanceRecord& r = unit.records[index];
    const std::string key = overflow_key(unit.object, unit.version, index);
    auto put = services_->s3.put(kDataBucket, key, r.value_string());
    PROVCLOUD_REQUIRE_MSG(put.has_value(),
                          "overflow PUT failed: " + put.error().message);
  }
  enc.attributes.push_back(
      aws::SdbReplaceableAttribute{kMd5Attribute, txn.md5->md5, true});

  StagedTxn out;
  out.txn = &txn;
  out.has_data = has_data;
  out.domain = topology_->domain_for_object(unit.object);
  out.item = item_name(unit.object, unit.version);
  out.attributes = std::move(enc.attributes);
  return out;
}

void WalBackend::flush_staged(std::vector<StagedTxn>& staged) {
  if (config_.batch_size <= 1) {
    // Legacy path: one PutAttributes per 100-attribute chunk per item.
    for (StagedTxn& s : staged) {
      for (std::size_t start = 0; start < s.attributes.size();
           start += aws::kSdbMaxAttrsPerCall) {
        const std::size_t end =
            std::min(start + aws::kSdbMaxAttrsPerCall, s.attributes.size());
        std::vector<aws::SdbReplaceableAttribute> chunk(
            s.attributes.begin() + static_cast<std::ptrdiff_t>(start),
            s.attributes.begin() + static_cast<std::ptrdiff_t>(end));
        auto put = services_->sdb.put_attributes(s.domain, s.item, chunk);
        PROVCLOUD_REQUIRE_MSG(put.has_value(),
                              "PutAttributes failed: " + put.error().message);
      }
      s.flushed = true;
    }
    return;
  }

  // Batched path: group the staged items per shard domain and write them
  // batch_size (<= 25) at a time, the domains flushed concurrently through
  // the topology (SimpleDB throttles per domain, so independent domains'
  // round trips overlap; parallelism == 1 walks the groups in domain order
  // exactly as before). A replayed transaction can stage the same item
  // twice; duplicates split into the next call because a single
  // BatchPutAttributes rejects repeated item names.
  std::map<std::string, std::vector<StagedTxn*>> by_domain;
  for (StagedTxn& s : staged) by_domain[s.domain].push_back(&s);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(by_domain.size());
  for (auto& [domain, group] : by_domain) {
    const std::string* d = &domain;
    std::vector<StagedTxn*>* g = &group;
    tasks.push_back([this, d, g] { flush_domain_batches(*d, *g); });
  }
  topology_->run_tasks(std::move(tasks));
}

void WalBackend::flush_domain_batches(const std::string& domain,
                                      std::vector<StagedTxn*>& group) {
  const std::size_t batch_limit =
      std::min(config_.batch_size, aws::kSdbMaxItemsPerBatch);
  std::vector<StagedTxn*> pending(group.begin(), group.end());
  while (!pending.empty()) {
    std::vector<StagedTxn*> call;
    std::vector<StagedTxn*> rest;
    std::set<std::string> names;
    for (StagedTxn* s : pending) {
      if (call.size() < batch_limit && names.insert(s->item).second)
        call.push_back(s);
      else
        rest.push_back(s);
    }
    std::vector<aws::SdbBatchEntry> entries;
    entries.reserve(call.size());
    for (StagedTxn* s : call)
      // Moving is safe: a deferred transaction is re-prepared from its WAL
      // records on the next pump, never re-flushed from this staging.
      entries.push_back(aws::SdbBatchEntry{s->item, std::move(s->attributes)});
    auto put = services_->sdb.batch_put_attributes(domain, entries);
    PROVCLOUD_REQUIRE_MSG(put.has_value(), "BatchPutAttributes failed: " +
                                               put.error().message);
    // Per-item rejections are deterministic validation failures (size and
    // pair limits): retrying cannot succeed, so fail as loudly as the
    // legacy PutAttributes path instead of deferring forever.
    PROVCLOUD_REQUIRE_MSG(put->ok(), "BatchPutAttributes rejected item: " +
                                         put->failed.front().error.message);
    for (StagedTxn* s : call) s->flushed = true;
    pending = std::move(rest);
  }
}

void WalBackend::finish_transaction(const StagedTxn& staged) {
  aws::CloudEnv& env = *services_->env;
  const WalTransaction& txn = *staged.txn;
  // (d) delete the WAL messages first, then the temp object: a crash in
  // between leaks only a temp object (the cleaner reaps it); the reverse
  // order would strand undeletable log records that replay against a
  // missing temp.
  for (const std::string& handle : txn.receipt_handles) {
    auto del = services_->sqs.delete_message(queue_url_, handle);
    PROVCLOUD_REQUIRE(del.has_value());
    env.failures().crash_point("commitd.mid_message_delete");
  }
  env.failures().crash_point("commitd.before_temp_delete");
  if (staged.has_data) {
    auto del_temp = services_->s3.del(kDataBucket, txn.data->temp_key);
    PROVCLOUD_REQUIRE(del_temp.has_value());
  }
  env.failures().crash_point("commitd.after_txn");
}

void WalBackend::recover() {
  commit_phase(/*forced=*/true);
  clean_temp_objects();
}

void WalBackend::quiesce() {
  aws::CloudEnv& env = *services_->env;
  obs::Span span(&env.tracer(), "wal.quiesce", "wal");
  std::uint64_t rounds = 0;
  for (int i = 0; i < 64; ++i) {
    commit_phase(/*forced=*/true);
    if (services_->sqs.exact_message_count(queue_url_) == 0) break;
    // In-flight (invisible) messages need the visibility timeout to lapse;
    // propagation needs the consistency window. The client is parked while
    // that virtual time passes, so the wait lands on its ledger timeline as
    // "idle" -- leaving it uncharged flattered Arch 3's elapsed numbers
    // (the daemon's wakeup cadence looked free).
    const sim::SimTime visibility = config_.visibility_timeout;
    const sim::SimTime wakeup =
        env.consistency().propagation_max + sim::kSecond;
    env.latency_ledger().charge(visibility + wakeup, "idle");
    env.metrics().counter("idle.visibility_wait_us").add(visibility);
    env.metrics().counter("idle.daemon_wakeup_us").add(wakeup);
    env.clock().advance_by(visibility + wakeup);
    ++rounds;
  }
  span.arg("wait_rounds", rounds);
}

void WalBackend::clean_temp_objects() {
  aws::CloudEnv& env = *services_->env;
  const sim::SimTime now = env.clock().now();
  std::string marker;
  for (;;) {
    auto page = services_->s3.list(kDataBucket, kTempPrefix, marker);
    if (!page || page->keys.empty()) return;
    for (const std::string& key : page->keys) {
      auto head = services_->s3.head(kDataBucket, key);
      if (!head) continue;
      auto created_it = head->metadata.find(kTempCreatedMetaKey);
      if (created_it == head->metadata.end()) continue;
      sim::SimTime created = 0;
      try {
        created = std::stoull(created_it->second);
      } catch (...) {
        continue;
      }
      if (now >= created && now - created >= config_.temp_object_ttl) {
        auto del = services_->s3.del(kDataBucket, key);
        (void)del;
      }
    }
    if (!page->truncated) return;
    marker = page->keys.back();
  }
}

BackendResult<ReadResult> WalBackend::read(const std::string& object,
                                           std::uint32_t max_retries) {
  return consistency_checked_read(*services_, *topology_, object, max_retries);
}

BackendResult<std::vector<pass::ProvenanceRecord>> WalBackend::get_provenance(
    const std::string& object, std::uint32_t version) {
  return fetch_sdb_provenance(*services_, *topology_, object, version, 64);
}

std::unique_ptr<ProvenanceBackend> make_wal_backend(CloudServices& services) {
  return std::make_unique<WalBackend>(services, WalBackendConfig{});
}

std::unique_ptr<ProvenanceBackend> make_wal_backend(
    CloudServices& services, const WalBackendConfig& config) {
  return std::make_unique<WalBackend>(services, config);
}

}  // namespace provcloud::cloudprov
