#include "cloudprov/session.hpp"

#include <algorithm>
#include <limits>

#include "cloudprov/domain_topology.hpp"
#include "sim/failure.hpp"
#include "util/logging.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

const char* to_string(FlushTrigger trigger) {
  switch (trigger) {
    case FlushTrigger::kGroupFull: return "group_full";
    case FlushTrigger::kDeadline: return "deadline";
    case FlushTrigger::kSync: return "sync";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// ProvenanceBackend members that need Session / CommitDaemon / DomainTopology
// complete.
// ---------------------------------------------------------------------------

std::unique_ptr<Session> ProvenanceBackend::open_session(
    SessionConfig config) {
  return do_open_session(std::move(config));
}

void ProvenanceBackend::store(const pass::FlushUnit& unit) {
  // store() IS a one-shot session: open at group size 1, submit (which
  // flushes inline), sync. Backends implement only commit_group, so the
  // paper's blocking per-close protocol and the batched session path are
  // one code path -- same requests, same billing, same elapsed time.
  const std::unique_ptr<Session> session = open_session();
  session->submit(unit);
  const BackendResult<void> result = session->sync();
  PROVCLOUD_REQUIRE_MSG(result.has_value(),
                        "store failed: " + result.error().message);
}

std::vector<BackendResult<ReadResult>> ProvenanceBackend::read_many(
    const std::vector<std::string>& objects, std::uint32_t max_retries) {
  std::vector<BackendResult<ReadResult>> out(
      objects.size(),
      backend_error(BackendErrorCode::kUnknown, "read_many: not attempted"));
  const std::shared_ptr<const DomainTopology> topo = topology();
  if (topo == nullptr) {
    for (std::size_t i = 0; i < objects.size(); ++i)
      out[i] = read(objects[i], max_retries);
    return out;
  }
  // Route the fan-out through the backend's topology: parallelism > 1
  // overlaps the per-object consistency rounds (critical-path merged);
  // parallelism == 1 runs inline in input order, exactly the loop above.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(objects.size());
  for (std::size_t i = 0; i < objects.size(); ++i)
    tasks.push_back([this, &objects, &out, i, max_retries] {
      out[i] = read(objects[i], max_retries);
    });
  topo->run_tasks(std::move(tasks));
  return out;
}

std::shared_ptr<CommitDaemon> ProvenanceBackend::commit_daemon(
    sim::LatencyLedger* ledger, sim::SimClock* clock, obs::Tracer* tracer,
    obs::MetricsRegistry* metrics) {
  std::lock_guard<std::mutex> lock(daemon_mu_);
  if (daemon_ == nullptr)
    daemon_ =
        std::make_shared<CommitDaemon>(*this, ledger, clock, tracer, metrics);
  return daemon_;
}

// ---------------------------------------------------------------------------
// CommitDaemon
// ---------------------------------------------------------------------------

std::uint64_t CommitDaemon::register_session() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_session_serial_++;
}

void CommitDaemon::submit(const std::shared_ptr<TicketState>& ticket) {
  sim::SimTime wake_at = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket->enqueue_time = clock_ != nullptr ? clock_->now() : 0;
    if (ticket->flush_deadline > 0 && clock_ != nullptr) {
      ticket->deadline_at = ticket->enqueue_time + ticket->flush_deadline;
      wake_at = ticket->deadline_at;
    }
    queue_.push_back(ticket);
  }
  if (wake_at > 0) {
    // The wake holds no strong reference: a pending clock event must not
    // keep a dead backend's daemon alive. A stale wake no-ops in poll().
    std::weak_ptr<CommitDaemon> weak = weak_from_this();
    clock_->schedule_at(wake_at, [weak] {
      if (const std::shared_ptr<CommitDaemon> self = weak.lock()) self->poll();
    });
  }
  std::unique_lock<std::mutex> lk(mu_);
  while (!flushing_) {
    const std::optional<FlushTrigger> trigger = trigger_locked();
    if (!trigger.has_value()) break;
    flush_group(lk, *trigger);
  }
}

void CommitDaemon::poll() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!flushing_) {
    const std::optional<FlushTrigger> trigger = trigger_locked();
    if (!trigger.has_value()) break;
    flush_group(lk, *trigger);
  }
}

void CommitDaemon::barrier(
    const std::vector<std::shared_ptr<TicketState>>& tickets) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    bool all_retired = true;
    for (const std::shared_ptr<TicketState>& t : tickets) {
      if (!t->retired.load(std::memory_order_acquire)) {
        all_retired = false;
        break;
      }
    }
    if (all_retired) return;
    if (flushing_) {
      // Another session (or a clock wake) is mid-flush; it re-checks the
      // trigger and notifies when it finishes.
      cv_.wait(lk);
      continue;
    }
    PROVCLOUD_REQUIRE_MSG(!queue_.empty(),
                          "commit daemon lost a submitted close");
    flush_group(lk, trigger_locked().value_or(FlushTrigger::kSync));
  }
}

void CommitDaemon::forget(std::uint64_t session_serial) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end();) {
    TicketState& t = **it;
    if (t.session_serial == session_serial) {
      t.done = true;
      t.result = backend_error(BackendErrorCode::kCrashed,
                               "session closed before sync");
      t.retired.store(true, std::memory_order_release);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t CommitDaemon::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::optional<FlushTrigger> CommitDaemon::trigger_locked() const {
  if (queue_.empty()) return std::nullopt;
  std::size_t min_group = std::numeric_limits<std::size_t>::max();
  for (const std::shared_ptr<TicketState>& t : queue_)
    min_group = std::min(min_group, std::max<std::size_t>(t->max_group, 1));
  if (queue_.size() >= min_group) return FlushTrigger::kGroupFull;
  if (clock_ != nullptr) {
    const sim::SimTime now = clock_->now();
    for (const std::shared_ptr<TicketState>& t : queue_)
      if (t->deadline_at > 0 && now >= t->deadline_at)
        return FlushTrigger::kDeadline;
  }
  return std::nullopt;
}

void CommitDaemon::flush_group(std::unique_lock<std::mutex>& lk,
                               FlushTrigger trigger) {
  flushing_ = true;
  const std::uint64_t seq = ++next_group_seq_;
  if (queue_depth_hist_ != nullptr) queue_depth_hist_->record(queue_.size());
  std::vector<std::shared_ptr<TicketState>> owned(queue_.begin(),
                                                  queue_.end());
  queue_.clear();
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  const sim::SimTime now = clock_ != nullptr ? clock_->now() : 0;
  for (const std::shared_ptr<TicketState>& t : owned) {
    t->group_seq = seq;
    // Deadline batching is not free: the queued wait becomes part of the
    // close's elapsed time, itemized as "idle". (Zero waits are skipped so
    // immediate flushes keep byte-identical per-service maps.)
    const sim::SimTime wait =
        now > t->enqueue_time ? now - t->enqueue_time : 0;
    if (wait > 0) {
      // The wait ran from enqueue to the flush claim in *clock* time; on
      // the ticket's track it starts at the elapsed total the ticket had
      // when it was enqueued.
      if (tracing)
        tracer_->complete(&t->timeline, "queue_wait", "idle",
                          t->enqueue_time + t->timeline.elapsed, wait);
      t->timeline.elapsed += wait;
      t->timeline.by_service["idle"] += wait;
      if (queue_wait_us_ != nullptr) queue_wait_us_->add(wait);
    }
  }
  if (group_size_hist_ != nullptr) group_size_hist_->record(owned.size());
  switch (trigger) {
    case FlushTrigger::kGroupFull:
      if (flush_group_full_ != nullptr) flush_group_full_->add(1);
      break;
    case FlushTrigger::kDeadline:
      if (flush_deadline_ != nullptr) flush_deadline_->add(1);
      break;
    case FlushTrigger::kSync:
      if (flush_sync_ != nullptr) flush_sync_->add(1);
      break;
  }
  lk.unlock();

  std::vector<TicketState*> group;
  group.reserve(owned.size());
  for (const std::shared_ptr<TicketState>& t : owned) group.push_back(t.get());

  // Calls shared by the whole group (the batched provenance writes, which
  // commit_group charges outside any per-ticket scope) land here, then get
  // absorbed into every rider: each owner waited for the group's shared
  // round trips on top of its close's exclusive ones.
  sim::LatencyLedger::Timeline shared;

  const auto settle = [&owned](BackendErrorCode code, const char* what) {
    for (const std::shared_ptr<TicketState>& t : owned) {
      if (t->done) continue;
      t->done = true;
      t->result = backend_error(code, what);
    }
  };
  const auto publish = [&owned, &shared] {
    for (const std::shared_ptr<TicketState>& t : owned) {
      t->timeline.elapsed += shared.elapsed;
      for (const auto& [service, time] : shared.by_service)
        t->timeline.by_service[service] += time;
      t->retired.store(true, std::memory_order_release);
    }
  };
  const auto finish = [this, &lk] {
    lk.lock();
    flushing_ = false;
    // Wake barrier waiters AND would-be flushers: submits that arrived
    // mid-flush joined the next group; whoever wakes first drains it.
    cv_.notify_all();
  };

  try {
    if (ledger_ != nullptr) {
      // The shared timeline is a stack object whose address recurs across
      // flushes: force it onto a fresh trace track per group.
      if (tracing)
        tracer_->begin_track(&shared, "group-" + std::to_string(seq));
      sim::LatencyLedger::ScopedTimeline bind(*ledger_, shared);
      obs::Span span(tracer_, "flush", "daemon");
      span.arg("group", static_cast<std::uint64_t>(group.size()));
      span.arg("trigger", to_string(trigger));
      span.arg("group_seq", seq);
      PROVCLOUD_DEBUG("daemon") << "flush group=" << group.size()
                                << " trigger=" << to_string(trigger);
      backend_->commit_group(group, ledger_);
    } else {
      backend_->commit_group(group, nullptr);
    }
  } catch (const sim::CrashError&) {
    // The client died mid-group: whatever the backend marked done stays
    // durable; the rest never was.
    settle(BackendErrorCode::kCrashed, "client crashed before this close");
    publish();
    finish();
    throw;
  } catch (...) {
    settle(BackendErrorCode::kServiceError,
           "backend failed while committing this group");
    publish();
    finish();
    throw;
  }
  settle(BackendErrorCode::kServiceError,
         "backend returned without completing this close");
  publish();
  finish();
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(ProvenanceBackend& backend, SessionConfig config,
                 sim::LatencyLedger* ledger, sim::SimClock* clock,
                 obs::Tracer* tracer, obs::MetricsRegistry* metrics)
    : backend_(&backend),
      config_(std::move(config)),
      ledger_(ledger),
      tracer_(tracer) {
  max_group_ =
      backend_->supports_group_commit() ? config_.resolved_group() : 1;
  if (metrics != nullptr)
    close_latency_ = &metrics->histogram("close.latency_us");
  daemon_ = backend_->commit_daemon(ledger_, clock, tracer, metrics);
  serial_ = daemon_->register_session();
}

Session::~Session() {
  // Closing a session with submits that never reached a barrier is the
  // client dying before its data was durable: its still-queued closes are
  // dropped and marked kCrashed (in-flight ones are settled by their
  // flush), so a Ticket holder does not read "pending" forever.
  daemon_->forget(serial_);
}

Ticket Session::submit(const pass::FlushUnit& unit) {
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  if (tracing && ledger_ != nullptr && !named_client_track_) {
    tracer_->name_track(ledger_->active_timeline_id(), config_.client_id);
    named_client_track_ = true;
  }
  obs::Span span(tracer_, "session.submit", "session");
  auto state = std::make_shared<TicketState>();
  state->id = next_ticket_id_++;
  state->unit = unit;
  state->session_serial = serial_;
  state->max_group = max_group_;
  state->batch_size = config_.batch_size;
  // A flush deadline is only meaningful when submits may wait for a group.
  if (max_group_ > 1) state->flush_deadline = config_.flush_deadline;
  if (tracing)
    tracer_->name_track(&state->timeline, config_.client_id + "/ticket-" +
                                              std::to_string(state->id));
  span.arg("ticket", state->id);
  span.arg("object", unit.object);
  outstanding_.push_back(state);
  writes_[unit.object] = state;
  Ticket ticket(state);
  try {
    daemon_->submit(state);
  } catch (...) {
    reap();
    throw;
  }
  reap();
  return ticket;
}

BackendResult<void> Session::sync() {
  obs::Span span(tracer_, "session.sync", "session");
  span.arg("outstanding", static_cast<std::uint64_t>(outstanding_.size()));
  try {
    daemon_->barrier(outstanding_);
  } catch (...) {
    reap();
    throw;
  }
  reap();
  if (!first_error_.has_value()) return {};
  BackendError error = std::move(*first_error_);
  first_error_.reset();
  return util::Unexpected(std::move(error));
}

BackendResult<ReadResult> Session::read(const std::string& object,
                                        std::uint32_t max_retries) {
  const auto it = writes_.find(object);
  if (it == writes_.end()) return backend_->read(object, max_retries);
  const std::shared_ptr<TicketState>& own = it->second;
  const auto own_write = [&own] {
    // Served from the session's own submit, exactly as it will become (or
    // became) durable. No cloud calls, no retries.
    ReadResult out;
    out.data = own->unit.data;
    out.records = own->unit.records;
    out.version = own->unit.version;
    return out;
  };
  if (!own->retired.load(std::memory_order_acquire)) return own_write();
  if (!own->result.has_value())
    // The own write failed; only the backend's view is real.
    return backend_->read(object, max_retries);
  BackendResult<ReadResult> got = backend_->read(object, max_retries);
  // Floor the backend's answer at the session's own durable write: a stale
  // replica (NoSuchKey or an older version) cannot roll the session's view
  // of its own writes backwards.
  if (!got.has_value() || got->version < own->unit.version) return own_write();
  return got;
}

std::size_t Session::pending() const {
  std::size_t count = 0;
  for (const std::shared_ptr<TicketState>& t : outstanding_)
    if (!t->retired.load(std::memory_order_acquire)) ++count;
  return count;
}

void Session::reap() {
  std::size_t retired = 0;
  while (retired < outstanding_.size() &&
         outstanding_[retired]->retired.load(std::memory_order_acquire))
    ++retired;
  if (retired == 0) return;
  if (close_latency_ != nullptr) {
    // Every retired close's end-to-end virtual latency (exclusive service
    // time + queued idle + the group's shared round trips) feeds the
    // percentile view the benches report.
    for (std::size_t i = 0; i < retired; ++i)
      close_latency_->record(outstanding_[i]->timeline.elapsed);
  }
  if (ledger_ != nullptr) {
    // One critical-path merge per flush group: this session's closes that
    // rode one group were in flight together, so the caller waited for the
    // slowest of them (each carrying the group's shared time), not the sum.
    std::size_t start = 0;
    while (start < retired) {
      std::size_t end = start + 1;
      while (end < retired &&
             outstanding_[end]->group_seq == outstanding_[start]->group_seq)
        ++end;
      std::vector<const sim::LatencyLedger::Timeline*> timelines;
      timelines.reserve(end - start);
      for (std::size_t i = start; i < end; ++i)
        timelines.push_back(&outstanding_[i]->timeline);
      ledger_->merge_critical_path(timelines);
      start = end;
    }
  }
  if (!first_error_.has_value()) {
    for (std::size_t i = 0; i < retired; ++i) {
      if (!outstanding_[i]->result.has_value()) {
        first_error_ = outstanding_[i]->result.error();
        break;
      }
    }
  }
  outstanding_.erase(
      outstanding_.begin(),
      outstanding_.begin() + static_cast<std::ptrdiff_t>(retired));
}

}  // namespace provcloud::cloudprov
