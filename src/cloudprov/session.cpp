#include "cloudprov/session.hpp"

#include "sim/failure.hpp"

namespace provcloud::cloudprov {

std::unique_ptr<Session> ProvenanceBackend::open_session(
    SessionConfig config) {
  return do_open_session(std::move(config));
}

void ProvenanceBackend::commit_group(const std::vector<TicketState*>& group,
                                     sim::LatencyLedger* ledger) {
  // Degenerate group commit: one blocking store per close, in submit
  // order. Arch 1 keeps this (submit == store is what its single-PUT
  // atomicity claim rests on); Arch 2/3 override with real group commits.
  (void)ledger;
  for (TicketState* ticket : group) {
    store(ticket->unit);
    ticket->done = true;  // result defaults to success
  }
}

Session::Session(ProvenanceBackend& backend, SessionConfig config,
                 sim::LatencyLedger* ledger)
    : backend_(&backend), config_(std::move(config)), ledger_(ledger) {
  if (config_.group_size == 0) config_.group_size = 1;
}

Session::~Session() {
  // Closing a session with submits that never reached a barrier is the
  // client dying before its data was durable: the units were never handed
  // to the backend. Mark the tickets so a holder does not read "pending"
  // forever.
  for (std::shared_ptr<TicketState>& ticket : group_) {
    ticket->done = true;
    ticket->result = backend_error(BackendErrorCode::kCrashed,
                                   "session closed before sync");
  }
}

Ticket Session::submit(const pass::FlushUnit& unit) {
  auto state = std::make_shared<TicketState>();
  state->id = next_ticket_id_++;
  state->unit = unit;
  group_.push_back(state);
  Ticket ticket(state);
  const std::size_t effective_group =
      backend_->supports_group_commit() ? config_.group_size : 1;
  if (group_.size() >= effective_group) flush();
  return ticket;
}

BackendResult<void> Session::sync() {
  flush();
  if (!first_error_.has_value()) return {};
  BackendError error = std::move(*first_error_);
  first_error_.reset();
  return util::Unexpected(std::move(error));
}

void Session::flush() {
  if (group_.empty()) return;
  std::vector<std::shared_ptr<TicketState>> owned = std::move(group_);
  group_.clear();
  std::vector<TicketState*> group;
  group.reserve(owned.size());
  for (const std::shared_ptr<TicketState>& t : owned) group.push_back(t.get());

  const auto settle = [&](BackendErrorCode code, const char* what) {
    for (TicketState* ticket : group) {
      if (ticket->done) continue;
      ticket->done = true;
      ticket->result = backend_error(code, what);
    }
  };
  const auto merge_timelines = [&] {
    if (ledger_ == nullptr) return;
    std::vector<const sim::LatencyLedger::Timeline*> timelines;
    timelines.reserve(group.size());
    for (const TicketState* ticket : group)
      timelines.push_back(&ticket->timeline);
    ledger_->merge_critical_path(timelines);
  };

  try {
    backend_->commit_group(group, ledger_);
  } catch (const sim::CrashError&) {
    // The client died mid-group: whatever the backend marked done stays;
    // the rest was never made durable.
    settle(BackendErrorCode::kCrashed, "client crashed before this close");
    merge_timelines();
    record_errors(group);
    throw;
  } catch (...) {
    settle(BackendErrorCode::kServiceError,
           "backend failed while committing this group");
    merge_timelines();
    record_errors(group);
    throw;
  }
  settle(BackendErrorCode::kServiceError,
         "backend returned without completing this close");
  merge_timelines();
  record_errors(group);
}

void Session::record_errors(const std::vector<TicketState*>& group) {
  if (first_error_.has_value()) return;
  for (const TicketState* ticket : group) {
    if (ticket->done && !ticket->result.has_value()) {
      first_error_ = ticket->result.error();
      return;
    }
  }
}

}  // namespace provcloud::cloudprov
