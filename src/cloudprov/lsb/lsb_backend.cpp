#include "cloudprov/lsb/lsb_backend.hpp"

#include <algorithm>
#include <set>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/session.hpp"
#include "util/require.hpp"

namespace provcloud::cloudprov {

namespace {

const util::SharedBytes kEmptyBytes = util::make_shared_bytes(util::Bytes{});

/// Packed posting values per index chunk item ("p0" .. "p7"): ~12 postings
/// per value, so one BatchPutAttributes call (25 items) checkpoints ~2400
/// closes -- the SimpleDB side of the amortization.
constexpr std::size_t kValuesPerChunkItem = 8;

std::uint64_t parse_meta(const aws::SdbItem& item, const char* attr,
                         std::uint64_t fallback) {
  auto it = item.find(attr);
  if (it == item.end() || it->second.empty()) return fallback;
  try {
    return std::stoull(*it->second.begin());
  } catch (...) {
    return fallback;
  }
}

}  // namespace

LsbBackend::LsbBackend(CloudServices& services, LsbBackendConfig config)
    : services_(&services), config_(config) {
  config_.segment_cap_bytes = std::max<std::size_t>(config_.segment_cap_bytes,
                                                    util::kKiB);
  config_.index_publish_entries =
      std::max<std::size_t>(config_.index_publish_entries, 1);
  config_.batch_size = std::clamp<std::size_t>(config_.batch_size, 1,
                                               aws::kSdbMaxItemsPerBatch);
  config_.compact_max_segments =
      std::max<std::size_t>(config_.compact_max_segments, 1);
  topology_ = DomainTopology::make(
      TopologyConfig{.shard_count = config_.shard_count,
                     .base_domain = lsb::kIndexDomainBase,
                     .parallelism = config_.parallelism,
                     .ledger = &services.env->latency_ledger()});
  topology_->ensure_domains(services_->sdb);

  obs::MetricsRegistry& metrics = services_->env->metrics();
  seal_count_ = &metrics.counter("lsb.seals");
  seal_bytes_ = &metrics.counter("lsb.seal.bytes");
  publish_count_ = &metrics.counter("lsb.index.publishes");
  publish_postings_ = &metrics.counter("lsb.index.postings");
  compact_count_ = &metrics.counter("lsb.compactions");
  compact_reclaimed_bytes_ = &metrics.counter("lsb.compact.reclaimed_bytes");
  compact_rewritten_bytes_ = &metrics.counter("lsb.compact.rewritten_bytes");
  seal_entries_ = &metrics.histogram("lsb.seal.closes");
}

std::unique_ptr<Session> LsbBackend::do_open_session(SessionConfig config) {
  return std::make_unique<Session>(
      *this, std::move(config), &services_->env->latency_ledger(),
      &services_->env->clock(), &services_->env->tracer(),
      &services_->env->metrics());
}

// ---------------------------------------------------------------------------
// Write path: seal the group as immutable segments
// ---------------------------------------------------------------------------

void LsbBackend::commit_group(const std::vector<TicketState*>& group,
                              sim::LatencyLedger* /*ledger*/) {
  // Every call the group shares (the segment PUTs, a due index checkpoint,
  // a due cleaner pass) stays on the daemon's group timeline: amortized
  // cost lands on every rider, critical-path-merged at retire.
  aws::CloudEnv& env = *services_->env;
  if (group.empty()) return;
  env.failures().crash_point("lsb.seal.begin");

  // Encode each close up front; submit order is causal order, and the log
  // preserves it, so a crash can only ever lose a suffix of the group.
  struct Encoded {
    TicketState* ticket = nullptr;
    lsb::SegmentEntry entry;
    std::string bytes;
  };
  std::vector<Encoded> closes;
  closes.reserve(group.size());
  for (TicketState* ticket : group) {
    const pass::FlushUnit& unit = ticket->unit;
    Encoded e;
    e.ticket = ticket;
    e.entry.id = pass::ObjectVersion{unit.object, unit.version};
    e.entry.kind = unit.kind;
    if (unit.kind == pass::PnodeKind::kFile)
      e.entry.data = unit.data != nullptr ? unit.data : kEmptyBytes;
    e.entry.records = unit.records;
    e.bytes = lsb::encode_entry(e.entry);
    closes.push_back(std::move(e));
  }

  // Seal cap-sized runs, one S3 PUT each. Each run's tickets are done the
  // moment their segment object lands: data and provenance of every close
  // in it became durable in that single call.
  std::size_t start = 0;
  while (start < closes.size()) {
    std::size_t end = start;
    std::size_t run_bytes = 0;
    while (end < closes.size() &&
           (end == start ||
            run_bytes + closes[end].bytes.size() <= config_.segment_cap_bytes)) {
      run_bytes += closes[end].bytes.size();
      ++end;
    }

    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      id = next_segment_id_++;
    }
    std::string blob = lsb::segment_header(id);
    std::vector<lsb::Posting> postings;
    postings.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      const Encoded& e = closes[i];
      lsb::EntryLocation loc;
      loc.segment = id;
      loc.offset = blob.size();
      loc.length = e.bytes.size();
      loc.data_bytes = e.entry.data != nullptr ? e.entry.data->size() : 0;
      blob += e.bytes;
      postings.emplace_back(e.entry.id, loc);
    }

    obs::Span span(&env.tracer(), "lsb.seal", "lsb");
    span.arg("segment", id);
    span.arg("closes", static_cast<std::uint64_t>(end - start));
    span.arg("bytes", static_cast<std::uint64_t>(blob.size()));
    auto put = services_->s3.put(lsb::kSegmentBucket, lsb::segment_key(id),
                                 blob);
    PROVCLOUD_REQUIRE_MSG(put.has_value(),
                          "segment PUT failed: " + put.error().message);
    env.failures().crash_point("lsb.seal.after_put");

    for (std::size_t i = start; i < end; ++i) closes[i].ticket->done = true;
    {
      std::lock_guard<std::mutex> lk(mu_);
      SegmentInfo& info = segments_[id];
      info.bytes = blob.size();
      info.entries = end - start;
      for (const lsb::Posting& p : postings) index_entry_locked(p.first,
                                                                p.second);
      std::vector<lsb::Posting>& pending = pending_postings_[id];
      pending.insert(pending.end(), postings.begin(), postings.end());
      pending_posting_count_ += postings.size();
      hydrated_ = true;
    }
    seal_count_->add(1);
    seal_bytes_->add(blob.size());
    seal_entries_->record(end - start);
    start = end;
  }

  // Daemon-role maintenance, amortized across the group: checkpoint the
  // index when enough postings accumulated, clean when enough segments did.
  bool publish = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    publish = pending_posting_count_ >= config_.index_publish_entries;
  }
  if (publish) publish_index();
  bool clean = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    clean = compact_due_locked();
  }
  if (clean) compact();
}

void LsbBackend::index_entry_locked(const pass::ObjectVersion& id,
                                    const lsb::EntryLocation& loc) {
  auto [it, inserted] = index_.try_emplace(id, loc);
  if (!inserted) {
    lsb::EntryLocation& cur = it->second;
    if (loc == cur) return;  // idempotent replay
    // The same (object, version) written twice -- a duplicate submit in one
    // group, or out-of-order replay. The later copy in the log wins; the
    // loser's whole entry is garbage.
    const bool newer =
        loc.segment > cur.segment ||
        (loc.segment == cur.segment && loc.offset > cur.offset);
    const lsb::EntryLocation& dead = newer ? cur : loc;
    segments_[dead.segment].garbage_bytes += dead.length;
    if (newer) cur = loc;
    return;
  }
  auto [latest, first] = latest_.try_emplace(id.object, id.version);
  if (first) return;
  if (id.version > latest->second) {
    // The data bytes of the previous latest version just became garbage
    // (only the newest version's data is retrievable, as in Arch 1-3; its
    // provenance records stay live forever).
    auto old = index_.find(pass::ObjectVersion{id.object, latest->second});
    if (old != index_.end() && old->second.data_bytes > 0)
      segments_[old->second.segment].garbage_bytes += old->second.data_bytes;
    latest->second = id.version;
  } else if (id.version < latest->second && loc.data_bytes > 0) {
    // Indexed behind an already-known newer version (rebuild order).
    segments_[loc.segment].garbage_bytes += loc.data_bytes;
  }
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

BackendResult<ReadResult> LsbBackend::fetch_entry(const pass::ObjectVersion& id,
                                                  std::uint32_t max_retries) {
  for (std::uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0) charge_read_retry(*services_->env);
    // Re-resolve the location every round: the cleaner may have moved the
    // entry (and deleted its old segment) since the previous attempt.
    lsb::EntryLocation loc;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = index_.find(id);
      if (it == index_.end())
        return backend_error(BackendErrorCode::kNotFound,
                             "no such version in the segment index: " +
                                 id.object + "@" + std::to_string(id.version));
      loc = it->second;
    }
    auto got = services_->s3.get_range(lsb::kSegmentBucket,
                                       lsb::segment_key(loc.segment),
                                       loc.offset, loc.length);
    if (!got) continue;  // propagation race or mid-compaction delete
    if (got->data == nullptr || got->data->size() != loc.length) continue;
    auto entry = lsb::decode_entry(*got->data);
    if (!entry) continue;
    ReadResult out;
    out.data = entry->data != nullptr ? entry->data : kEmptyBytes;
    out.records = std::move(entry->records);
    out.version = id.version;
    out.retries = attempt;
    out.verified = true;  // entries are immutable and self-contained
    return out;
  }
  return backend_error(BackendErrorCode::kConsistencyExhausted,
                       "segment entry never became readable: " + id.object +
                           "@" + std::to_string(id.version));
}

BackendResult<ReadResult> LsbBackend::read(const std::string& object,
                                           std::uint32_t max_retries) {
  std::uint32_t version = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = latest_.find(object);
    if (it == latest_.end())
      return backend_error(BackendErrorCode::kNotFound,
                           "object never stored: " + object);
    version = it->second;
  }
  return fetch_entry(pass::ObjectVersion{object, version}, max_retries);
}

BackendResult<std::vector<pass::ProvenanceRecord>> LsbBackend::get_provenance(
    const std::string& object, std::uint32_t version) {
  auto got = fetch_entry(pass::ObjectVersion{object, version}, 64);
  if (!got) return util::Unexpected(got.error());
  return std::move(got->records);
}

// ---------------------------------------------------------------------------
// Index checkpointing
// ---------------------------------------------------------------------------

void LsbBackend::publish_index() {
  aws::CloudEnv& env = *services_->env;
  std::map<std::uint64_t, std::vector<lsb::Posting>> batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (pending_postings_.empty()) return;
    batch.swap(pending_postings_);
    pending_posting_count_ = 0;
  }
  // A crash from here on loses only the in-memory buffer: the segments are
  // durable and above indexed-to, so recover() replays and republishes
  // them. The checkpoint can lag; it can never tear.
  env.failures().crash_point("lsb.index.begin");
  std::uint64_t postings = 0;
  for (const auto& [id, ps] : batch) postings += ps.size();
  obs::Span span(&env.tracer(), "lsb.index.publish", "lsb");
  span.arg("segments", static_cast<std::uint64_t>(batch.size()));
  span.arg("postings", postings);

  publish_postings(batch, "lsb.index.mid_publish");
  env.failures().crash_point("lsb.index.after_publish");

  // Advance the durable watermark only after every chunk item landed.
  std::uint64_t mark = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    mark = std::max(indexed_to_, batch.rbegin()->first);
  }
  write_meta(lsb::kIndexedToAttr, mark);
  env.failures().crash_point("lsb.index.after_mark");
  {
    std::lock_guard<std::mutex> lk(mu_);
    indexed_to_ = std::max(indexed_to_, mark);
  }
  publish_count_->add(1);
  publish_postings_->add(postings);
}

void LsbBackend::publish_postings(
    const std::map<std::uint64_t, std::vector<lsb::Posting>>& by_segment,
    const char* crash_name) {
  aws::CloudEnv& env = *services_->env;
  // Pack each segment's postings into chunk items; identical input always
  // repacks identically, so a post-crash republish overwrites the surviving
  // chunk items with the same bytes (replace semantics).
  std::map<std::string, std::vector<aws::SdbBatchEntry>> by_domain;
  std::map<std::uint64_t, std::uint64_t> chunk_counts;
  for (const auto& [segment, postings] : by_segment) {
    const std::vector<std::string> values = lsb::pack_postings(postings);
    std::uint64_t chunks = 0;
    for (std::size_t v = 0; v < values.size(); v += kValuesPerChunkItem) {
      const std::string item = lsb::index_item_name(segment, chunks++);
      aws::SdbBatchEntry entry;
      entry.item = item;
      const std::size_t end =
          std::min(v + kValuesPerChunkItem, values.size());
      for (std::size_t j = v; j < end; ++j)
        entry.attrs.push_back(aws::SdbReplaceableAttribute{
            "p" + std::to_string(j - v), values[j], true});
      by_domain[topology_->domain_for_item(item)].push_back(std::move(entry));
    }
    chunk_counts[segment] = chunks;
  }

  topology_->for_each_domain([&](std::size_t, const std::string& domain) {
    auto it = by_domain.find(domain);
    if (it == by_domain.end()) return;
    const std::vector<aws::SdbBatchEntry>& entries = it->second;
    for (std::size_t start = 0; start < entries.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(start + config_.batch_size, entries.size());
      std::vector<aws::SdbBatchEntry> call(
          entries.begin() + static_cast<std::ptrdiff_t>(start),
          entries.begin() + static_cast<std::ptrdiff_t>(end));
      auto put = services_->sdb.batch_put_attributes(domain, call);
      PROVCLOUD_REQUIRE_MSG(
          put.has_value(),
          "index BatchPutAttributes failed: " + put.error().message);
      PROVCLOUD_REQUIRE_MSG(put->ok(),
                            "index BatchPutAttributes rejected item: " +
                                put->failed.front().error.message);
      env.failures().crash_point(crash_name);
    }
  });

  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [segment, chunks] : chunk_counts) {
    SegmentInfo& info = segments_[segment];
    info.chunk_items = std::max(info.chunk_items, chunks);
  }
}

void LsbBackend::write_meta(const char* attr, std::uint64_t value) {
  auto put = services_->sdb.put_attributes(
      topology_->domains().front(), lsb::kMetaItem,
      {aws::SdbReplaceableAttribute{attr, std::to_string(value), true}});
  PROVCLOUD_REQUIRE_MSG(put.has_value(),
                        "meta PutAttributes failed: " + put.error().message);
}

// ---------------------------------------------------------------------------
// Cleaner
// ---------------------------------------------------------------------------

bool LsbBackend::compact_due_locked() const {
  return config_.compact_trigger_segments > 0 &&
         segments_.size() >= config_.compact_trigger_segments;
}

const char* to_string(CleanerPolicy policy) {
  switch (policy) {
    case CleanerPolicy::kGarbageRatio: return "garbage-ratio";
    case CleanerPolicy::kOldestFirst: return "oldest-first";
  }
  return "?";
}

std::size_t LsbBackend::compact() {
  aws::CloudEnv& env = *services_->env;
  // Cleaner precondition: every sealed segment checkpointed, so candidates
  // are exactly the indexed (never the open or unpublished) segments.
  publish_index();

  std::vector<std::uint64_t> victims;
  {
    std::lock_guard<std::mutex> lk(mu_);
    struct Candidate {
      std::uint64_t id;
      double ratio;
    };
    std::vector<Candidate> candidates;
    for (const auto& [id, info] : segments_) {
      if (id < delete_to_) continue;  // crash debris, purged by recover()
      if (id > indexed_to_) break;
      candidates.push_back(
          {id, info.bytes == 0 ? 0.0
                               : static_cast<double>(info.garbage_bytes) /
                                     static_cast<double>(info.bytes)});
    }
    const bool any_garbage =
        std::any_of(candidates.begin(), candidates.end(),
                    [](const Candidate& c) { return c.ratio > 0.0; });
    if (config_.cleaner_policy == CleanerPolicy::kGarbageRatio &&
        any_garbage) {
      // Cost/benefit selection: garbage-richest first (ties older-first via
      // stable sort), and zero-garbage segments are not worth a rewrite
      // while richer victims exist.
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.ratio > b.ratio;
                       });
      while (!candidates.empty() && candidates.back().ratio <= 0.0)
        candidates.pop_back();
    }
    for (const Candidate& c : candidates) {
      victims.push_back(c.id);
      if (victims.size() >= config_.compact_max_segments) break;
    }
    std::sort(victims.begin(), victims.end());
  }
  if (victims.empty()) return 0;
  env.failures().crash_point("lsb.compact.begin");
  obs::Span span(&env.tracer(), "lsb.compact", "lsb");
  span.arg("victims", static_cast<std::uint64_t>(victims.size()));
  span.arg("from", victims.front());
  span.arg("to", victims.back());

  // Collect the victims' live entries, dropping data bytes of superseded
  // file versions. Records are copied verbatim: ancestry walks are
  // bit-identical across a cleaner pass.
  std::vector<lsb::SegmentEntry> live;
  std::uint64_t victim_bytes = 0;
  for (std::uint64_t id : victims) {
    aws::AwsResult<aws::S3GetResult> got =
        services_->s3.get(lsb::kSegmentBucket, lsb::segment_key(id));
    for (std::uint32_t attempt = 0; !got && attempt < 64; ++attempt) {
      charge_read_retry(env);
      got = services_->s3.get(lsb::kSegmentBucket, lsb::segment_key(id));
    }
    PROVCLOUD_REQUIRE_MSG(got.has_value(),
                          "cleaner GET failed: " + lsb::segment_key(id));
    auto seg = lsb::decode_segment(*got->data);
    PROVCLOUD_REQUIRE_MSG(seg.has_value() && seg->id == id,
                          "undecodable segment: " + lsb::segment_key(id));
    std::lock_guard<std::mutex> lk(mu_);
    victim_bytes += got->data->size();
    for (lsb::PlacedEntry& placed : seg->entries) {
      auto it = index_.find(placed.entry.id);
      if (it == index_.end() || it->second.segment != id ||
          it->second.offset != placed.offset)
        continue;  // superseded by a later copy: dead, not rewritten
      auto latest = latest_.find(placed.entry.id.object);
      const bool is_latest = latest != latest_.end() &&
                             latest->second == placed.entry.id.version;
      if (!is_latest) placed.entry.data = nullptr;
      live.push_back(std::move(placed.entry));
    }
  }

  // Rewrite the survivors into fresh segments (higher ids), exactly like a
  // seal, and update the in-memory index only once each new object is
  // durable. Until the watermark advances, both copies exist: a crash
  // anywhere in between recovers to a consistent (if untrimmed) log.
  std::map<std::uint64_t, std::vector<lsb::Posting>> new_postings;
  std::uint64_t new_max = 0;
  std::uint64_t new_bytes = 0;
  std::size_t start = 0;
  while (start < live.size()) {
    std::vector<std::string> encoded;
    std::size_t end = start;
    std::size_t run_bytes = 0;
    while (end < live.size()) {
      std::string bytes = lsb::encode_entry(live[end]);
      if (end != start && run_bytes + bytes.size() > config_.segment_cap_bytes)
        break;
      run_bytes += bytes.size();
      encoded.push_back(std::move(bytes));
      ++end;
    }
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      id = next_segment_id_++;
    }
    std::string blob = lsb::segment_header(id);
    std::vector<lsb::Posting> postings;
    for (std::size_t i = start; i < end; ++i) {
      lsb::EntryLocation loc;
      loc.segment = id;
      loc.offset = blob.size();
      loc.length = encoded[i - start].size();
      loc.data_bytes =
          live[i].data != nullptr ? live[i].data->size() : 0;
      blob += encoded[i - start];
      postings.emplace_back(live[i].id, loc);
    }
    auto put = services_->s3.put(lsb::kSegmentBucket, lsb::segment_key(id),
                                 blob);
    PROVCLOUD_REQUIRE_MSG(put.has_value(),
                          "cleaner PUT failed: " + put.error().message);
    env.failures().crash_point("lsb.compact.after_put");
    {
      std::lock_guard<std::mutex> lk(mu_);
      SegmentInfo& info = segments_[id];
      info.bytes = blob.size();
      info.entries = end - start;
      for (const lsb::Posting& p : postings) index_[p.first] = p.second;
    }
    new_postings[id] = std::move(postings);
    new_max = id;
    new_bytes += blob.size();
    seal_count_->add(1);
    seal_bytes_->add(blob.size());
    start = end;
  }
  if (!new_postings.empty())
    publish_postings(new_postings, "lsb.compact.mid_republish");

  // One durable watermark write retires the victims. (indexed-to may only
  // advance when no concurrent seal left unpublished postings in between.)
  // delete-to may only cover the contiguous dead prefix of the log:
  // garbage-ratio selection can pick mid-log victims, and a watermark past
  // a surviving segment would let recover() purge live data. Mid-log
  // victims are still trimmed below -- a crashed trim leaves at worst an
  // orphan segment whose entries replay as already-superseded duplicates.
  std::uint64_t mark_indexed = 0;
  std::uint64_t mark_delete = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    mark_indexed = (pending_postings_.empty() && new_max > 0)
                       ? std::max(indexed_to_, new_max)
                       : indexed_to_;
    mark_delete = delete_to_;
    for (const auto& [id, info] : segments_) {
      if (id < mark_delete) continue;
      if (std::binary_search(victims.begin(), victims.end(), id))
        mark_delete = id + 1;
      else
        break;
    }
  }
  auto put = services_->sdb.put_attributes(
      topology_->domains().front(), lsb::kMetaItem,
      {aws::SdbReplaceableAttribute{lsb::kIndexedToAttr,
                                    std::to_string(mark_indexed), true},
       aws::SdbReplaceableAttribute{lsb::kDeleteToAttr,
                                    std::to_string(mark_delete), true}});
  PROVCLOUD_REQUIRE_MSG(put.has_value(),
                        "watermark PutAttributes failed: " +
                            put.error().message);
  env.failures().crash_point("lsb.compact.after_watermark");

  // Trim: the victims' chunk items and objects. All dead already; deletes
  // are idempotent and recover() finishes a crashed trim.
  std::map<std::uint64_t, std::uint64_t> victim_chunks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    indexed_to_ = std::max(indexed_to_, mark_indexed);
    delete_to_ = std::max(delete_to_, mark_delete);
    for (std::uint64_t id : victims) {
      auto it = segments_.find(id);
      if (it != segments_.end()) victim_chunks[id] = it->second.chunk_items;
    }
  }
  for (std::uint64_t id : victims) {
    for (std::uint64_t c = 0; c < victim_chunks[id]; ++c) {
      const std::string item = lsb::index_item_name(id, c);
      auto del = services_->sdb.delete_attributes(
          topology_->domain_for_item(item), item, {});
      PROVCLOUD_REQUIRE_MSG(del.has_value(),
                            "chunk delete failed: " + del.error().message);
      env.failures().crash_point("lsb.compact.mid_delete");
    }
    auto del = services_->s3.del(lsb::kSegmentBucket, lsb::segment_key(id));
    PROVCLOUD_REQUIRE_MSG(del.has_value(),
                          "segment delete failed: " + del.error().message);
    env.failures().crash_point("lsb.compact.mid_delete");
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::uint64_t id : victims) segments_.erase(id);
  }
  env.failures().crash_point("lsb.compact.end");
  compact_count_->add(1);
  compact_rewritten_bytes_->add(new_bytes);
  if (victim_bytes > new_bytes)
    compact_reclaimed_bytes_->add(victim_bytes - new_bytes);
  span.arg("rewritten_bytes", new_bytes);
  span.arg("reclaimed_bytes",
           victim_bytes > new_bytes ? victim_bytes - new_bytes : 0);
  return victims.size();
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

void LsbBackend::recover() {
  bool fresh = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fresh = !hydrated_;
  }
  if (fresh) rebuild_from_index();
  replay_orphans();
  std::lock_guard<std::mutex> lk(mu_);
  hydrated_ = true;
}

void LsbBackend::rebuild_from_index() {
  // Durable watermarks first (a missing meta item is a store no checkpoint
  // ever reached: everything is an orphan replay).
  auto meta = services_->sdb.get_attributes(topology_->domains().front(),
                                            lsb::kMetaItem);
  std::uint64_t indexed_to = 0;
  std::uint64_t delete_to = 1;
  if (meta) {
    indexed_to = parse_meta(*meta, lsb::kIndexedToAttr, 0);
    delete_to = parse_meta(*meta, lsb::kDeleteToAttr, 1);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    indexed_to_ = std::max(indexed_to_, indexed_to);
    delete_to_ = std::max(delete_to_, delete_to);
    next_segment_id_ = std::max({next_segment_id_, indexed_to + 1, delete_to});
  }

  // Checkpointed postings from every shard domain. Segments above the
  // indexed-to watermark are skipped even when some of their chunks landed
  // (crashed mid-publish): the log is their truth, replay_orphans re-reads
  // and republishes them whole. Chunks below delete-to are crash debris
  // from a trim; finish the delete.
  topology_->for_each_domain([&](std::size_t, const std::string& domain) {
    std::string token;
    for (;;) {
      auto page = services_->sdb.query(domain, "", aws::kSdbMaxQueryResults,
                                       token);
      if (!page) break;
      for (const std::string& item : page->item_names) {
        std::uint64_t segment = 0;
        std::uint64_t chunk = 0;
        if (!lsb::parse_index_item_name(item, segment, chunk)) continue;
        if (segment < delete_to) {
          services_->sdb.delete_attributes(domain, item, {});
          continue;
        }
        if (segment > indexed_to) continue;
        auto attrs = services_->sdb.get_attributes(domain, item);
        if (!attrs) continue;
        std::vector<lsb::Posting> postings;
        for (const auto& [name, values] : *attrs)
          for (const std::string& value : values)
            PROVCLOUD_REQUIRE_MSG(
                lsb::unpack_postings(value, segment, postings),
                "corrupt index chunk: " + item);
        std::lock_guard<std::mutex> lk(mu_);
        SegmentInfo& info = segments_[segment];
        info.chunk_items = std::max(info.chunk_items, chunk + 1);
        info.entries += postings.size();
        for (const lsb::Posting& p : postings) {
          info.bytes += p.second.length;
          index_entry_locked(p.first, p.second);
        }
      }
      if (!page->next_token) break;
      token = *page->next_token;
    }
  });
}

void LsbBackend::replay_orphans() {
  aws::CloudEnv& env = *services_->env;
  std::uint64_t delete_to = 1;
  std::set<std::uint64_t> known;
  {
    std::lock_guard<std::mutex> lk(mu_);
    delete_to = delete_to_;
    for (const auto& [id, info] : segments_) known.insert(id);
  }

  std::vector<std::uint64_t> replay;
  std::vector<std::uint64_t> purge;
  std::string marker;
  for (;;) {
    auto page = services_->s3.list(lsb::kSegmentBucket, lsb::kSegmentPrefix,
                                   marker, 1000);
    if (!page || page->keys.empty()) break;
    for (const std::string& key : page->keys) {
      std::uint64_t id = 0;
      if (!lsb::parse_segment_key(key, id)) continue;
      if (id < delete_to)
        purge.push_back(id);
      else if (!known.contains(id))
        replay.push_back(id);
    }
    if (!page->truncated) break;
    marker = page->keys.back();
  }

  // Finish any crashed trim: everything below the watermark is dead.
  for (std::uint64_t id : purge)
    services_->s3.del(lsb::kSegmentBucket, lsb::segment_key(id));

  // Replay unindexed segments oldest first (list order is id order). Their
  // closes become indexed again and their postings re-enter the publish
  // buffer; a duplicated replay is a no-op on both.
  for (std::uint64_t id : replay) {
    aws::AwsResult<aws::S3GetResult> got =
        services_->s3.get(lsb::kSegmentBucket, lsb::segment_key(id));
    for (std::uint32_t attempt = 0; !got && attempt < 64; ++attempt) {
      charge_read_retry(env);
      got = services_->s3.get(lsb::kSegmentBucket, lsb::segment_key(id));
    }
    if (!got) continue;  // listed but gone: a concurrent trim won the race
    auto seg = lsb::decode_segment(*got->data);
    PROVCLOUD_REQUIRE_MSG(seg.has_value() && seg->id == id,
                          "undecodable segment: " + lsb::segment_key(id));
    std::lock_guard<std::mutex> lk(mu_);
    SegmentInfo& info = segments_[id];
    info.bytes = got->data->size();
    info.entries = seg->entries.size();
    std::vector<lsb::Posting>& pending = pending_postings_[id];
    pending_posting_count_ -= std::min<std::uint64_t>(pending_posting_count_,
                                                      pending.size());
    pending.clear();
    for (lsb::PlacedEntry& placed : seg->entries) {
      lsb::EntryLocation loc;
      loc.segment = id;
      loc.offset = placed.offset;
      loc.length = placed.length;
      loc.data_bytes =
          placed.entry.data != nullptr ? placed.entry.data->size() : 0;
      index_entry_locked(placed.entry.id, loc);
      pending.emplace_back(placed.entry.id, loc);
      ++pending_posting_count_;
    }
    next_segment_id_ = std::max(next_segment_id_, id + 1);
  }
}

// ---------------------------------------------------------------------------
// Daemon hooks and stats
// ---------------------------------------------------------------------------

void LsbBackend::pump() {
  bool publish = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    publish = pending_posting_count_ >= config_.index_publish_entries;
  }
  if (publish) publish_index();
  bool clean = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    clean = compact_due_locked();
  }
  if (clean) compact();
}

void LsbBackend::quiesce() {
  publish_index();
  for (;;) {
    bool clean = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      clean = compact_due_locked();
    }
    if (!clean || compact() == 0) break;
  }
}

LsbBackend::SegmentStats LsbBackend::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  SegmentStats out;
  out.segment_count = segments_.size();
  for (const auto& [id, info] : segments_) {
    out.total_bytes += info.bytes;
    out.live_bytes += info.bytes - std::min(info.garbage_bytes, info.bytes);
  }
  out.garbage_ratio =
      out.total_bytes == 0
          ? 0.0
          : 1.0 - static_cast<double>(out.live_bytes) /
                      static_cast<double>(out.total_bytes);
  out.delete_to = delete_to_;
  out.indexed_to = indexed_to_;
  out.pending_postings = pending_posting_count_;
  return out;
}

std::unique_ptr<ProvenanceBackend> make_lsb_backend(CloudServices& services) {
  return std::make_unique<LsbBackend>(services);
}

std::unique_ptr<ProvenanceBackend> make_lsb_backend(
    CloudServices& services, const LsbBackendConfig& config) {
  return std::make_unique<LsbBackend>(services, config);
}

}  // namespace provcloud::cloudprov
