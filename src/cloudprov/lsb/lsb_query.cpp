// Architecture 4 query engine: linear scan over the segment log.
//
// Queries GET every live segment object and evaluate locally -- the log is
// the whole store, so one pass holds everything (the LFS trade: cheap
// writes, scan-based search). Duplicate (object, version) entries (a
// republished posting's entry plus its compacted copy) resolve by
// later-(segment, offset)-wins, matching the backend's index semantics.
// Unlike Arch 1, every version's provenance survives in the log, so
// ancestry walks resolve old ancestor versions instead of reporting them
// missing.
#include <map>
#include <set>

#include "cloudprov/lsb/format.hpp"
#include "cloudprov/query.hpp"
#include "pass/record.hpp"

namespace provcloud::cloudprov {

namespace {

struct ScannedEntry {
  std::string kind;
  std::vector<pass::ProvenanceRecord> records;
  std::pair<std::uint64_t, std::uint64_t> place{0, 0};  // (segment, offset)
};

class LsbQueryEngine final : public QueryEngine {
 public:
  explicit LsbQueryEngine(CloudServices& services) : services_(&services) {}
  std::string name() const override { return "S3-segments"; }

  Q1Result q1_all_provenance() override {
    const auto all = scan_all();
    Q1Result out;
    out.object_versions = all.size();
    for (const auto& [id, e] : all) out.records += e.records.size();
    return out;
  }

  std::set<std::string> q2_outputs_of(const std::string& program) override {
    const auto all = scan_all();
    return outputs_from(all, program);
  }

  std::set<std::string> q3_descendants_of(const std::string& program) override {
    const auto all = scan_all();
    const std::set<std::string> outputs = outputs_from(all, program);

    // Reverse data-flow edges at object granularity (the Arch-1 shape).
    std::multimap<std::string, std::string> reverse;
    std::map<std::string, std::string> kind_of;
    for (const auto& [id, e] : all) {
      kind_of[id.object] = e.kind;
      for (const pass::ProvenanceRecord& r : e.records)
        if (r.is_xref() && r.attribute != pass::attr::kPrev)
          reverse.emplace(r.xref().object, id.object);
    }
    std::set<std::string> visited = outputs;
    std::vector<std::string> frontier(outputs.begin(), outputs.end());
    while (!frontier.empty()) {
      std::vector<std::string> next;
      for (const std::string& object : frontier) {
        auto [lo, hi] = reverse.equal_range(object);
        for (auto it = lo; it != hi; ++it)
          if (visited.insert(it->second).second) next.push_back(it->second);
      }
      frontier = std::move(next);
    }
    std::set<std::string> files;
    for (const std::string& object : visited)
      if (kind_of[object] == "file") files.insert(object);
    return files;
  }

  AncestryResult ancestry(const std::string& object, std::uint32_t version,
                          std::size_t max_nodes) override {
    const auto all = scan_all();
    return walk_ancestry(
        [&all](const std::vector<pass::ObjectVersion>& ids) {
          std::vector<BackendResult<std::vector<pass::ProvenanceRecord>>> out;
          out.reserve(ids.size());
          for (const pass::ObjectVersion& id : ids) {
            auto it = all.find(id);
            if (it == all.end())
              out.push_back(backend_error(BackendErrorCode::kNotFound,
                                          "not in log: " + id.to_string()));
            else
              out.push_back(it->second.records);
          }
          return out;
        },
        object, version, max_nodes);
  }

 private:
  /// LIST the segment bucket, GET and decode every segment: the whole
  /// store in one pass, later-(segment, offset)-wins per (object, version).
  std::map<pass::ObjectVersion, ScannedEntry> scan_all() {
    std::map<pass::ObjectVersion, ScannedEntry> out;
    std::string marker;
    for (;;) {
      auto page =
          services_->s3.list(lsb::kSegmentBucket, lsb::kSegmentPrefix, marker);
      if (!page || page->keys.empty()) break;
      for (const std::string& key : page->keys) {
        std::uint64_t id = 0;
        if (!lsb::parse_segment_key(key, id)) continue;
        auto got = services_->s3.get(lsb::kSegmentBucket, key);
        if (!got || got->data == nullptr) continue;  // propagation race
        auto seg = lsb::decode_segment(*got->data);
        if (!seg) continue;
        for (lsb::PlacedEntry& placed : seg->entries) {
          const std::pair<std::uint64_t, std::uint64_t> place{seg->id,
                                                              placed.offset};
          auto it = out.find(placed.entry.id);
          if (it != out.end() && it->second.place >= place) continue;
          out[placed.entry.id] =
              ScannedEntry{pass::to_string(placed.entry.kind),
                           std::move(placed.entry.records), place};
        }
      }
      if (!page->truncated) break;
      marker = page->keys.back();
    }
    return out;
  }

  static std::set<std::string> outputs_from(
      const std::map<pass::ObjectVersion, ScannedEntry>& all,
      const std::string& program) {
    std::set<std::string> producers;
    for (const auto& [id, e] : all) {
      if (e.kind != "process") continue;
      for (const pass::ProvenanceRecord& r : e.records)
        if (r.attribute == pass::attr::kName && !r.is_xref() &&
            r.text() == program)
          producers.insert(id.object);
    }
    std::set<std::string> outputs;
    for (const auto& [id, e] : all) {
      if (e.kind != "file") continue;
      for (const pass::ProvenanceRecord& r : e.records)
        if (r.is_xref() && r.attribute == pass::attr::kInput &&
            producers.count(r.xref().object) > 0)
          outputs.insert(id.object);
    }
    return outputs;
  }

  CloudServices* services_;
};

}  // namespace

std::unique_ptr<QueryEngine> make_lsb_query_engine(CloudServices& services) {
  return std::make_unique<LsbQueryEngine>(services);
}

}  // namespace provcloud::cloudprov
