// Log-structured segment wire format (Architecture 4).
//
// A segment is one immutable S3 object holding many closes. Each entry is a
// self-contained, length-prefixed encoding of one FlushUnit -- object, kind,
// version, data bytes and provenance records travel together, so data and
// provenance of a close are atomic by construction (the LFS answer to the
// Arch-2 atomicity hole). The SimpleDB index stores only postings:
// (object, version) -> (segment id, offset, length), packed many per
// attribute value, kivaloo lbs-dynamodb style, so hundreds of closes cost
// one segment PUT plus a fraction of one BatchPutAttributes call.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "pass/local_cache.hpp"
#include "pass/pnode.hpp"
#include "pass/record.hpp"
#include "util/bytes.hpp"

namespace provcloud::cloudprov::lsb {

/// Bucket all segment objects live in (separate from kDataBucket: segments
/// are write-once log objects, not per-object latest-data keys).
inline constexpr const char* kSegmentBucket = "pass-segments";
/// Key prefix of segment objects; ids are zero-padded so LIST order is id
/// order and the delete-to watermark is a key-range cutoff.
inline constexpr const char* kSegmentPrefix = "seg/";
/// Base name of the sharded SimpleDB index domains.
inline constexpr const char* kIndexDomainBase = "lsb-index";
/// Item (in the first shard domain) holding the durable watermarks.
inline constexpr const char* kMetaItem = "lsb-meta";
/// Every segment with id < delete-to is dead: its live entries were
/// rewritten into a younger segment (kivaloo deleteto.c semantics).
inline constexpr const char* kDeleteToAttr = "delete-to";
/// Every segment with id <= indexed-to has its postings published; younger
/// segments are durable but pending publication (recover() replays them).
inline constexpr const char* kIndexedToAttr = "indexed-to";
/// Index items are named "idx-<segment id>-<chunk>".
inline constexpr const char* kIndexItemPrefix = "idx-";

std::string segment_key(std::uint64_t id);
bool parse_segment_key(const std::string& key, std::uint64_t& id);

std::string index_item_name(std::uint64_t segment_id, std::size_t chunk);
bool parse_index_item_name(const std::string& item, std::uint64_t& segment_id,
                           std::uint64_t& chunk);

/// One decoded close inside a segment.
struct SegmentEntry {
  pass::ObjectVersion id;
  pass::PnodeKind kind = pass::PnodeKind::kFile;
  /// Null for transient objects (processes, pipes) and for superseded file
  /// versions whose data the cleaner dropped (provenance is kept forever;
  /// only the latest version's data is retrievable, as in Arch 1-3).
  util::SharedBytes data;
  std::vector<pass::ProvenanceRecord> records;
};

/// Where one close lives in the log.
struct EntryLocation {
  std::uint64_t segment = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  /// Data bytes inside the entry: what becomes garbage when a newer version
  /// of the object supersedes this one.
  std::uint64_t data_bytes = 0;

  bool operator==(const EntryLocation&) const = default;
};

/// Self-contained encoding of one close: the blob an index posting's
/// (offset, length) range delimits inside a segment object, decodable from
/// a byte-range GET without the rest of the segment.
std::string encode_entry(const SegmentEntry& entry);
std::optional<SegmentEntry> decode_entry(const std::string& blob);

/// Segment object header; entries follow back to back.
std::string segment_header(std::uint64_t id);

/// One entry with its placement, as decoded from a whole segment object.
struct PlacedEntry {
  SegmentEntry entry;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};
struct DecodedSegment {
  std::uint64_t id = 0;
  std::vector<PlacedEntry> entries;
};
std::optional<DecodedSegment> decode_segment(const std::string& blob);

/// One index posting.
using Posting = std::pair<pass::ObjectVersion, EntryLocation>;

/// Pack postings of ONE segment into <= 1 KB SimpleDB attribute values
/// (the segment id rides in the item name, not the values). Order is
/// preserved across the returned values.
std::vector<std::string> pack_postings(const std::vector<Posting>& postings);

/// Unpack one attribute value; `segment_id` (from the item name) fills each
/// location's segment. Returns false on framing violations.
bool unpack_postings(const std::string& value, std::uint64_t segment_id,
                     std::vector<Posting>& out);

}  // namespace provcloud::cloudprov::lsb
