#include "cloudprov/lsb/format.hpp"

#include <cstring>

#include "cloudprov/serialize.hpp"

namespace provcloud::cloudprov::lsb {

namespace {

constexpr const char* kSegmentMagic = "PSG1\n";
constexpr const char* kEntryMagic = "E1 ";
/// Stay under SimpleDB's 1 KB attribute-value limit with margin.
constexpr std::size_t kPostingValueCap = 960;

void append_u64(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

/// Cursor over a length-prefixed buffer (the manifest PMB1 idiom).
struct Cursor {
  const std::string& buf;
  std::size_t pos = 0;

  bool expect(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (buf.compare(pos, n, literal) != 0) return false;
    pos += n;
    return true;
  }

  bool read_u64(std::uint64_t& out) {
    if (pos >= buf.size() || buf[pos] < '0' || buf[pos] > '9') return false;
    std::uint64_t v = 0;
    while (pos < buf.size() && buf[pos] >= '0' && buf[pos] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(buf[pos] - '0');
      ++pos;
    }
    out = v;
    return true;
  }

  bool read_sep() {
    if (pos >= buf.size() || buf[pos] != ' ') return false;
    ++pos;
    return true;
  }

  bool read_nl() {
    if (pos >= buf.size() || buf[pos] != '\n') return false;
    ++pos;
    return true;
  }

  bool read_bytes(std::size_t n, std::string& out) {
    if (pos + n > buf.size()) return false;
    out.assign(buf, pos, n);
    pos += n;
    return true;
  }
};

std::uint64_t kind_code(pass::PnodeKind kind) {
  switch (kind) {
    case pass::PnodeKind::kFile: return 0;
    case pass::PnodeKind::kProcess: return 1;
    case pass::PnodeKind::kPipe: return 2;
  }
  return 0;
}

bool kind_from_code(std::uint64_t code, pass::PnodeKind& out) {
  switch (code) {
    case 0: out = pass::PnodeKind::kFile; return true;
    case 1: out = pass::PnodeKind::kProcess; return true;
    case 2: out = pass::PnodeKind::kPipe; return true;
  }
  return false;
}

void encode_record(std::string& out, const pass::ProvenanceRecord& r) {
  const std::string value = r.value_string();
  append_u64(out, r.attribute.size());
  out += ' ';
  append_u64(out, value.size());
  out += ' ';
  out += r.is_xref() ? '1' : '0';
  out += '\n';
  out += r.attribute;
  out += value;
}

bool decode_record(Cursor& c, pass::ProvenanceRecord& out) {
  std::uint64_t attr_len = 0, value_len = 0, xref = 0;
  if (!c.read_u64(attr_len) || !c.read_sep() || !c.read_u64(value_len) ||
      !c.read_sep() || !c.read_u64(xref) || !c.read_nl())
    return false;
  std::string attribute, value;
  if (!c.read_bytes(attr_len, attribute) || !c.read_bytes(value_len, value))
    return false;
  if (xref == 1) {
    std::string object;
    std::uint32_t version = 0;
    if (!parse_item_name(value, object, version)) return false;
    out = pass::make_xref_record(std::move(attribute),
                                 pass::ObjectVersion{object, version});
  } else {
    out = pass::make_text_record(std::move(attribute), std::move(value));
  }
  return true;
}

bool decode_entry_at(Cursor& c, SegmentEntry& out) {
  if (!c.expect(kEntryMagic)) return false;
  std::uint64_t object_len = 0, version = 0, kind = 0, has_data = 0,
                data_len = 0, record_count = 0;
  if (!c.read_u64(object_len) || !c.read_sep() || !c.read_u64(version) ||
      !c.read_sep() || !c.read_u64(kind) || !c.read_sep() ||
      !c.read_u64(has_data) || !c.read_sep() || !c.read_u64(data_len) ||
      !c.read_sep() || !c.read_u64(record_count) || !c.read_nl())
    return false;
  std::string object;
  if (!c.read_bytes(object_len, object)) return false;
  out.id = pass::ObjectVersion{std::move(object),
                               static_cast<std::uint32_t>(version)};
  if (!kind_from_code(kind, out.kind)) return false;
  out.data = nullptr;
  if (has_data == 1) {
    std::string data;
    if (!c.read_bytes(data_len, data)) return false;
    out.data = util::make_shared_bytes(std::move(data));
  } else if (data_len != 0) {
    return false;
  }
  out.records.clear();
  out.records.reserve(record_count);
  for (std::uint64_t i = 0; i < record_count; ++i) {
    pass::ProvenanceRecord r;
    if (!decode_record(c, r)) return false;
    out.records.push_back(std::move(r));
  }
  return true;
}

}  // namespace

std::string segment_key(std::uint64_t id) {
  std::string digits = std::to_string(id);
  std::string out = kSegmentPrefix;
  if (digits.size() < 20) out.append(20 - digits.size(), '0');
  out += digits;
  return out;
}

bool parse_segment_key(const std::string& key, std::uint64_t& id) {
  const std::size_t prefix_len = std::strlen(kSegmentPrefix);
  if (key.rfind(kSegmentPrefix, 0) != 0 || key.size() <= prefix_len)
    return false;
  std::uint64_t v = 0;
  for (std::size_t i = prefix_len; i < key.size(); ++i) {
    if (key[i] < '0' || key[i] > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(key[i] - '0');
  }
  id = v;
  return true;
}

std::string index_item_name(std::uint64_t segment_id, std::size_t chunk) {
  return std::string(kIndexItemPrefix) + std::to_string(segment_id) + "-" +
         std::to_string(chunk);
}

bool parse_index_item_name(const std::string& item, std::uint64_t& segment_id,
                           std::uint64_t& chunk) {
  const std::size_t prefix_len = std::strlen(kIndexItemPrefix);
  if (item.rfind(kIndexItemPrefix, 0) != 0) return false;
  std::uint64_t v = 0;
  std::size_t i = prefix_len;
  if (i >= item.size() || item[i] < '0' || item[i] > '9') return false;
  for (; i < item.size() && item[i] >= '0' && item[i] <= '9'; ++i)
    v = v * 10 + static_cast<std::uint64_t>(item[i] - '0');
  if (i >= item.size() || item[i] != '-') return false;
  ++i;
  std::uint64_t c = 0;
  if (i >= item.size() || item[i] < '0' || item[i] > '9') return false;
  for (; i < item.size() && item[i] >= '0' && item[i] <= '9'; ++i)
    c = c * 10 + static_cast<std::uint64_t>(item[i] - '0');
  if (i != item.size()) return false;
  segment_id = v;
  chunk = c;
  return true;
}

std::string encode_entry(const SegmentEntry& entry) {
  std::string out = kEntryMagic;
  append_u64(out, entry.id.object.size());
  out += ' ';
  append_u64(out, entry.id.version);
  out += ' ';
  append_u64(out, kind_code(entry.kind));
  out += ' ';
  out += entry.data != nullptr ? '1' : '0';
  out += ' ';
  append_u64(out, entry.data != nullptr ? entry.data->size() : 0);
  out += ' ';
  append_u64(out, entry.records.size());
  out += '\n';
  out += entry.id.object;
  if (entry.data != nullptr) out += *entry.data;
  for (const pass::ProvenanceRecord& r : entry.records) encode_record(out, r);
  return out;
}

std::optional<SegmentEntry> decode_entry(const std::string& blob) {
  Cursor c{blob};
  SegmentEntry out;
  if (!decode_entry_at(c, out) || c.pos != blob.size()) return std::nullopt;
  return out;
}

std::string segment_header(std::uint64_t id) {
  std::string out = kSegmentMagic;
  append_u64(out, id);
  out += '\n';
  return out;
}

std::optional<DecodedSegment> decode_segment(const std::string& blob) {
  Cursor c{blob};
  DecodedSegment out;
  if (!c.expect(kSegmentMagic) || !c.read_u64(out.id) || !c.read_nl())
    return std::nullopt;
  while (c.pos < blob.size()) {
    PlacedEntry placed;
    placed.offset = c.pos;
    if (!decode_entry_at(c, placed.entry)) return std::nullopt;
    placed.length = c.pos - placed.offset;
    out.entries.push_back(std::move(placed));
  }
  return out;
}

std::vector<std::string> pack_postings(const std::vector<Posting>& postings) {
  std::vector<std::string> values;
  std::string current;
  for (const auto& [id, loc] : postings) {
    std::string line;
    append_u64(line, id.object.size());
    line += ' ';
    append_u64(line, id.version);
    line += ' ';
    append_u64(line, loc.offset);
    line += ' ';
    append_u64(line, loc.length);
    line += ' ';
    append_u64(line, loc.data_bytes);
    line += '\n';
    line += id.object;
    line += '\n';
    if (!current.empty() && current.size() + line.size() > kPostingValueCap) {
      values.push_back(std::move(current));
      current.clear();
    }
    current += line;
  }
  if (!current.empty()) values.push_back(std::move(current));
  return values;
}

bool unpack_postings(const std::string& value, std::uint64_t segment_id,
                     std::vector<Posting>& out) {
  Cursor c{value};
  while (c.pos < value.size()) {
    std::uint64_t object_len = 0, version = 0, offset = 0, length = 0,
                  data_bytes = 0;
    if (!c.read_u64(object_len) || !c.read_sep() || !c.read_u64(version) ||
        !c.read_sep() || !c.read_u64(offset) || !c.read_sep() ||
        !c.read_u64(length) || !c.read_sep() || !c.read_u64(data_bytes) ||
        !c.read_nl())
      return false;
    std::string object;
    if (!c.read_bytes(object_len, object) || !c.read_nl()) return false;
    out.emplace_back(
        pass::ObjectVersion{std::move(object),
                            static_cast<std::uint32_t>(version)},
        EntryLocation{segment_id, offset, length, data_bytes});
  }
  return true;
}

}  // namespace provcloud::cloudprov::lsb
