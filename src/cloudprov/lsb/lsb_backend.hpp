// Architecture 4: log-structured segments on S3, compact index in SimpleDB.
//
// Every group commit is sealed into one immutable S3 segment object (one
// PUT amortized over the whole group; an oversized group splits at the
// segment size cap), so a close's data and provenance are durable -- and
// atomic -- the moment its segment lands. The SimpleDB side stores only
// postings, (object, version) -> (segment, offset, length), packed many per
// attribute value and published lazily in batched, sharded writes over the
// DomainTopology once enough accumulate: the log is the truth, the index is
// a rebuildable checkpoint (classic LFS). recover() replays any segment
// above the indexed-to watermark, so a crashed publication can never tear
// the index, and a crashed seal leaves only an ignorable orphan object.
//
// A background cleaner runs in the commit-daemon role (inside commit_group
// / pump, never a thread of its own): it rewrites the live entries of its
// victim segments (garbage-richest first by default, see CleanerPolicy)
// into one consolidated segment -- dropping data bytes of
// superseded file versions, whose records alone stay retrievable, exactly
// the retention Arch 1-3 offer -- republishes their postings, advances the
// durable delete-to watermark (kivaloo deleteto.c style) and deletes the
// dead objects. Ancestry walks are bit-identical before and after.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cloudprov/backend.hpp"
#include "cloudprov/domain_topology.hpp"
#include "cloudprov/lsb/format.hpp"

namespace provcloud::cloudprov {

/// How the cleaner picks its victims.
enum class CleanerPolicy {
  /// Cost/benefit: rewrite the indexed segments with the highest garbage
  /// fraction first (fewest live bytes copied per byte reclaimed); ties
  /// break older-first. Falls back to age order when no segment holds
  /// garbage (consolidation still relieves segment-count pressure).
  kGarbageRatio,
  /// Legacy: the oldest contiguous indexed prefix, garbage or not.
  kOldestFirst,
};

const char* to_string(CleanerPolicy policy);

/// Storage-path knobs of the log-structured backend.
struct LsbBackendConfig {
  /// Seal the open segment early once its encoding would exceed this.
  std::size_t segment_cap_bytes = 4 * util::kMiB;
  /// Postings buffered in memory before a SimpleDB index publication (the
  /// LFS checkpoint interval, in closes). quiesce() always drains.
  std::size_t index_publish_entries = 512;
  /// Live sealed segments before the cleaner consolidates on the write
  /// path; 0 disables automatic cleaning (compact() still works).
  std::size_t compact_trigger_segments = 64;
  /// Most segments one cleaner pass rewrites.
  std::size_t compact_max_segments = 32;
  /// Victim selection (see CleanerPolicy).
  CleanerPolicy cleaner_policy = CleanerPolicy::kGarbageRatio;
  /// SimpleDB domains the index postings are hashed across.
  std::size_t shard_count = 1;
  /// Items per BatchPutAttributes publication call.
  std::size_t batch_size = aws::kSdbMaxItemsPerBatch;
  /// Concurrent shard requests (index publication, read_many fan-out).
  std::size_t parallelism = 1;
};

class LsbBackend final : public ProvenanceBackend {
 public:
  explicit LsbBackend(CloudServices& services, LsbBackendConfig config = {});

  Architecture architecture() const override {
    return Architecture::kS3SegmentLog;
  }
  std::string name() const override { return "S3-segments+SimpleDB"; }

  std::unique_ptr<Session> do_open_session(SessionConfig config) override;
  bool supports_group_commit() const override { return true; }

  /// Seal the group into segment objects (one PUT per cap-sized run; each
  /// ticket is done once its segment is durable), buffer the postings, and
  /// publish the index / run the cleaner when their thresholds trip.
  void commit_group(const std::vector<TicketState*>& group,
                    sim::LatencyLedger* ledger) override;

  /// Latest data + provenance of `object`, served by one byte-range GET
  /// into its segment (immutable, so only propagation visibility can race;
  /// retries are charged like every consistency loop).
  BackendResult<ReadResult> read(const std::string& object,
                                 std::uint32_t max_retries = 64) override;
  BackendResult<std::vector<pass::ProvenanceRecord>> get_provenance(
      const std::string& object, std::uint32_t version) override;

  /// Client-restart recovery: rebuild the in-memory index from the durable
  /// postings, replay unindexed (orphan) segments, and delete segments
  /// below the delete-to watermark. Idempotent; cheap on a live backend.
  void recover() override;

  /// Publish a due index checkpoint and run the cleaner if it is due.
  void pump() override;
  /// Drain: publish every buffered posting.
  void quiesce() override;

  PropertyClaims claims() const override {
    // Efficient query is the LFS trade-off: postings index *locations*,
    // not attribute values, so Q2-style searches scan the log (linear,
    // like Arch 1). Roll a manifest snapshot for indexed deep queries.
    return PropertyClaims{.atomicity = true,
                          .consistency = true,
                          .causal_ordering = true,
                          .efficient_query = false};
  }

  std::shared_ptr<const DomainTopology> topology() const override {
    return topology_;
  }
  const LsbBackendConfig& config() const { return config_; }

  /// Force an index publication now (bench/test hook).
  void publish_index();

  /// One cleaner pass over up to `compact_max_segments` victims picked by
  /// `cleaner_policy`. Returns the number of segments reclaimed (0 =
  /// nothing eligible).
  std::size_t compact();

  /// Cleaner-effectiveness counters (in-memory view; exact after quiesce).
  struct SegmentStats {
    std::uint64_t segment_count = 0;  // live segment objects
    std::uint64_t total_bytes = 0;    // bytes stored in them
    std::uint64_t live_bytes = 0;     // total - superseded data bytes
    double garbage_ratio = 0.0;       // 1 - live/total
    std::uint64_t delete_to = 0;
    std::uint64_t indexed_to = 0;
    std::uint64_t pending_postings = 0;
  };
  SegmentStats stats() const;

 private:
  /// In-memory image of one live segment (accounting only; entry payloads
  /// stay in S3).
  struct SegmentInfo {
    std::uint64_t bytes = 0;
    std::uint64_t garbage_bytes = 0;
    std::uint64_t entries = 0;
    /// Published index chunk items ("idx-<seg>-0" .. "-<chunks-1>"), so the
    /// cleaner can delete them when the segment dies.
    std::uint64_t chunk_items = 0;
  };

  /// Record a durable entry in the in-memory index + latest/garbage
  /// bookkeeping. Later copies of the same (object, version) win.
  void index_entry_locked(const pass::ObjectVersion& id,
                          const lsb::EntryLocation& loc);
  /// Fetch one close by identity: per-attempt index lookup (compaction may
  /// move it) plus a byte-range GET, retrying propagation races.
  BackendResult<ReadResult> fetch_entry(const pass::ObjectVersion& id,
                                        std::uint32_t max_retries);
  /// Publish packed postings as chunk items (batched per shard domain),
  /// hitting `crash_name` between calls. Records chunk_items per segment.
  void publish_postings(
      const std::map<std::uint64_t, std::vector<lsb::Posting>>& by_segment,
      const char* crash_name);
  void write_meta(const char* attr, std::uint64_t value);
  /// Full index rebuild from SimpleDB (fresh instance over a used store).
  void rebuild_from_index();
  /// Replay segments the index does not know / purge below delete-to.
  void replay_orphans();
  bool compact_due_locked() const;

  CloudServices* services_;
  LsbBackendConfig config_;
  std::shared_ptr<const DomainTopology> topology_;

  /// Guards every in-memory structure below. Cloud calls happen outside.
  mutable std::mutex mu_;
  /// (object, version) -> location, the authoritative live index.
  std::map<pass::ObjectVersion, lsb::EntryLocation> index_;
  /// object -> latest indexed version (read path entry point).
  std::map<std::string, std::uint32_t, std::less<>> latest_;
  std::map<std::uint64_t, SegmentInfo> segments_;
  /// Durable-but-unpublished postings, grouped by segment.
  std::map<std::uint64_t, std::vector<lsb::Posting>> pending_postings_;
  std::uint64_t pending_posting_count_ = 0;
  std::uint64_t next_segment_id_ = 1;
  std::uint64_t indexed_to_ = 0;
  std::uint64_t delete_to_ = 1;
  bool hydrated_ = false;

  obs::Counter* seal_count_ = nullptr;
  obs::Counter* seal_bytes_ = nullptr;
  obs::Counter* publish_count_ = nullptr;
  obs::Counter* publish_postings_ = nullptr;
  obs::Counter* compact_count_ = nullptr;
  obs::Counter* compact_reclaimed_bytes_ = nullptr;
  obs::Counter* compact_rewritten_bytes_ = nullptr;
  obs::Histogram* seal_entries_ = nullptr;
};

}  // namespace provcloud::cloudprov
