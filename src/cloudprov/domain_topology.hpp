// DomainTopology: the one place that knows how the provenance store is laid
// out across SimpleDB domains -- and how hard it may be hit in parallel.
//
// PR 1's ShardRouter gave every consumer a hash function but left each of
// them to copy its own router, name domains ad hoc, or (hints, properties)
// keep assuming the single "provenance" domain. The topology owns the
// router, the domain list, domain creation, and a bounded executor for
// scatter/gather fan-out, so backends, query engines, the prefetch cache
// and the property checker all address the same layout through one object.
//
// Kivaloo-style lesson applied here: per-request round trips become
// throughput once requests to independent partitions overlap. SimpleDB
// throttles per domain, so the unit of parallelism is the shard domain;
// with shard_count == 1 and parallelism == 1 everything collapses to the
// paper's exact single-domain sequential protocol, bit-for-bit (billing
// included).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cloudprov/shard_router.hpp"
#include "util/executor.hpp"

namespace provcloud::aws {
class SimpleDbService;
}
namespace provcloud::sim {
class LatencyLedger;
}

namespace provcloud::cloudprov {

struct TopologyConfig {
  /// SimpleDB domains provenance items are hashed across. 1 keeps the
  /// original single-"provenance"-domain layout bit-identically.
  std::size_t shard_count = 1;
  /// Base domain name; empty selects kProvenanceDomain.
  std::string base_domain;
  /// Concurrent shard requests the topology's executor allows. 1 runs every
  /// fan-out inline and in order (the deterministic test/reference mode).
  std::size_t parallelism = 1;
  /// Elapsed-time ledger of the environment the topology fans out against
  /// (CloudEnv::latency_ledger()). When set, parallel fan-outs open one
  /// ledger branch per task and merge the branch timelines by critical path
  /// at the gather barrier; null skips elapsed-time bookkeeping.
  sim::LatencyLedger* ledger = nullptr;
};

class DomainTopology {
 public:
  explicit DomainTopology(TopologyConfig config = {});

  DomainTopology(const DomainTopology&) = delete;
  DomainTopology& operator=(const DomainTopology&) = delete;

  /// Backends and query engines share one topology (and its executor), so
  /// the shard layout cannot drift between writer and reader.
  static std::shared_ptr<const DomainTopology> make(TopologyConfig config = {});

  std::size_t shard_count() const { return router_.shard_count(); }
  std::size_t parallelism() const { return executor_->parallelism(); }
  const ShardRouter& router() const { return router_; }

  /// Every shard domain, in shard-index order.
  const std::vector<std::string>& domains() const { return router_.domains(); }

  std::size_t shard_of(std::string_view object) const {
    return router_.shard_of(object);
  }
  const std::string& domain_for_object(std::string_view object) const {
    return router_.domain_for_object(object);
  }
  const std::string& domain_for_item(const std::string& item) const {
    return router_.domain_for_item(item);
  }

  /// Create every shard domain (idempotent; backends call this once).
  void ensure_domains(aws::SimpleDbService& sdb) const;

  /// The fan-out executor. Mutable by design: issuing requests through it
  /// does not change the layout.
  util::Executor& executor() const { return *executor_; }

  /// Run a batch of independent tasks. parallelism == 1 (or a single task)
  /// executes inline, in order, on the caller's thread: charges land on the
  /// caller's timeline sequentially (sum merge) -- exactly the loops this
  /// replaced, bit-for-bit. Otherwise the tasks overlap on the executor,
  /// each on its own ledger branch, and the caller's timeline advances by
  /// the longest branch (critical-path merge). Tasks must not touch shared
  /// state without their own locking.
  void run_tasks(std::vector<std::function<void()>> tasks) const;

  /// Run fn(shard_index, domain) once per shard domain (see run_tasks for
  /// the execution and elapsed-time contract).
  template <typename Fn>
  void for_each_domain(Fn&& fn) const {
    const std::vector<std::string>& ds = domains();
    if (parallelism() <= 1 || ds.size() <= 1) {
      for (std::size_t i = 0; i < ds.size(); ++i) fn(i, ds[i]);
      return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(ds.size());
    for (std::size_t i = 0; i < ds.size(); ++i)
      tasks.push_back([&fn, &ds, i] { fn(i, ds[i]); });
    run_tasks(std::move(tasks));
  }

  /// Scatter fn over the shard domains and gather the per-domain results in
  /// shard-index order: identical values at any parallelism.
  template <typename T, typename Fn>
  std::vector<T> scatter(Fn&& fn) const {
    std::vector<T> out(domains().size());
    for_each_domain([&out, &fn](std::size_t i, const std::string& d) {
      out[i] = fn(i, d);
    });
    return out;
  }

 private:
  ShardRouter router_;
  std::unique_ptr<util::Executor> executor_;
  sim::LatencyLedger* ledger_;
};

}  // namespace provcloud::cloudprov
