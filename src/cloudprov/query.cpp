#include "cloudprov/query.hpp"

#include <cstring>
#include <map>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/domain_topology.hpp"
#include "cloudprov/serialize.hpp"
#include "util/require.hpp"
#include "util/string_utils.hpp"

namespace provcloud::cloudprov {

namespace {

bool is_internal_key(const std::string& key) {
  return util::starts_with(key, kOverflowPrefix) ||
         util::starts_with(key, kTempPrefix);
}

// ---------------------------------------------------------------------------
// Architecture 1: scan-based queries over S3 metadata.
// ---------------------------------------------------------------------------

class S3QueryEngine final : public QueryEngine {
 public:
  explicit S3QueryEngine(CloudServices& services) : services_(&services) {}
  std::string name() const override { return "S3"; }

  Q1Result q1_all_provenance() override {
    const std::vector<DecodedMetadata> all = scan_all();
    Q1Result out;
    out.object_versions = all.size();
    for (const DecodedMetadata& m : all) out.records += m.records.size();
    return out;
  }

  std::set<std::string> q2_outputs_of(const std::string& program) override {
    // One full scan; both phases evaluate on the scanned copy ("the second
    // phase can, of course, be executed from a cache").
    const std::vector<DecodedMetadata> all = scan_all();
    return outputs_from(all, program);
  }

  std::set<std::string> q3_descendants_of(const std::string& program) override {
    const std::vector<DecodedMetadata> all = scan_all();
    const std::set<std::string> outputs = outputs_from(all, program);

    // Reverse data-flow edges: ancestor object -> descendant objects.
    std::multimap<std::string, std::string> reverse;
    std::map<std::string, std::string> kind_of;
    for (const DecodedMetadata& m : all) {
      kind_of[m.object] = m.kind;
      for (const pass::ProvenanceRecord& r : m.records)
        if (r.is_xref() && r.attribute != pass::attr::kPrev)
          reverse.emplace(r.xref().object, m.object);
    }
    std::set<std::string> visited = outputs;
    std::vector<std::string> frontier(outputs.begin(), outputs.end());
    while (!frontier.empty()) {
      std::vector<std::string> next;
      for (const std::string& object : frontier) {
        auto [lo, hi] = reverse.equal_range(object);
        for (auto it = lo; it != hi; ++it)
          if (visited.insert(it->second).second) next.push_back(it->second);
      }
      frontier = std::move(next);
    }
    std::set<std::string> files;
    for (const std::string& object : visited)
      if (kind_of[object] == "file") files.insert(object);
    return files;
  }

 private:
  /// LIST the bucket, HEAD every object, GET every spilled record: "S3 has
  /// to effectively retrieve the metadata of all objects in the store."
  std::vector<DecodedMetadata> scan_all() {
    std::vector<DecodedMetadata> out;
    std::string marker;
    for (;;) {
      auto page = services_->s3.list(kDataBucket, "", marker);
      if (!page || page->keys.empty()) break;
      for (const std::string& key : page->keys) {
        if (is_internal_key(key)) continue;
        auto head = services_->s3.head(kDataBucket, key);
        if (!head) continue;  // propagation race; scans are best-effort
        DecodedMetadata decoded = decode_metadata(head->metadata);
        if (decoded.object.empty()) decoded.object = key;
        // Spilled records must be fetched separately.
        for (pass::ProvenanceRecord& r : decoded.records) {
          if (r.is_xref() || r.text().rfind(kSpillMarker, 0) != 0) continue;
          const std::string spill_key =
              r.text().substr(std::strlen(kSpillMarker));
          auto got = services_->s3.get(kDataBucket, spill_key);
          if (got) r = pass::ProvenanceRecord{r.attribute, *got->data};
        }
        out.push_back(std::move(decoded));
      }
      if (!page->truncated) break;
      marker = page->keys.back();
    }
    return out;
  }

  static std::set<std::string> outputs_from(
      const std::vector<DecodedMetadata>& all, const std::string& program) {
    // Phase 1: processes named `program`.
    std::set<std::string> producers;
    for (const DecodedMetadata& m : all) {
      if (m.kind != "process") continue;
      for (const pass::ProvenanceRecord& r : m.records)
        if (r.attribute == pass::attr::kName && !r.is_xref() &&
            r.text() == program)
          producers.insert(m.object);
    }
    // Phase 2: files with an INPUT edge to any of those processes.
    std::set<std::string> outputs;
    for (const DecodedMetadata& m : all) {
      if (m.kind != "file") continue;
      for (const pass::ProvenanceRecord& r : m.records)
        if (r.is_xref() && r.attribute == pass::attr::kInput &&
            producers.count(r.xref().object) > 0)
          outputs.insert(m.object);
    }
    return outputs;
  }

  CloudServices* services_;
};

// ---------------------------------------------------------------------------
// Architectures 2/3: indexed SimpleDB queries.
// ---------------------------------------------------------------------------

class SdbQueryEngine final : public QueryEngine {
 public:
  SdbQueryEngine(CloudServices& services,
                 std::shared_ptr<const DomainTopology> topology,
                 SdbQueryConfig config)
      : services_(&services), config_(config), topology_(std::move(topology)) {}
  std::string name() const override {
    if (topology_->shard_count() == 1) return "SimpleDB";
    return "SimpleDB[x" + std::to_string(topology_->shard_count()) + "]";
  }

  Q1Result q1_all_provenance() override {
    // "There is no way for SimpleDB to generalize the query and [it] needs
    // to issue one query per item": enumerate items, then GetAttributes
    // each -- per shard domain; the union covers every item exactly once,
    // and the per-domain sweeps overlap on the topology's executor.
    const std::vector<Q1Result> parts = topology_->scatter<Q1Result>(
        [this](std::size_t, const std::string& domain) {
          Q1Result part;
          std::string token;
          for (;;) {
            auto page = services_->sdb.query(domain, "",
                                             aws::kSdbMaxQueryResults, token);
            if (!page) break;
            for (const std::string& item : page->item_names) {
              auto attrs = services_->sdb.get_attributes(domain, item);
              if (!attrs) continue;
              ++part.object_versions;
              for (const auto& [name, values] : *attrs)
                part.records += values.size();
            }
            if (!page->next_token) break;
            token = *page->next_token;
          }
          return part;
        });
    Q1Result out;
    for (const Q1Result& part : parts) {
      out.object_versions += part.object_versions;
      out.records += part.records;
    }
    return out;
  }

  std::set<std::string> q2_outputs_of(const std::string& program) override {
    const std::set<std::string> producers = producer_versions(program);
    std::set<std::string> outputs;
    for (const auto& [item, attrs] : items_with_input_in(producers))
      if (kind_of(attrs) == "file") outputs.insert(object_of(item));
    return outputs;
  }

  std::set<std::string> q3_descendants_of(const std::string& program) override {
    // Level-by-level expansion: "for ancestry queries, it has to retrieve
    // each item ..., then examine each item for its ancestors and then look
    // up further" -- here in the descendant direction.
    const std::set<std::string> producers = producer_versions(program);
    std::set<std::string> visited_versions = producers;
    std::set<std::string> frontier = producers;
    std::set<std::string> files;
    while (!frontier.empty()) {
      std::set<std::string> next;
      for (const auto& [item, attrs] : items_with_input_in(frontier)) {
        if (visited_versions.insert(item).second) {
          next.insert(item);
          if (kind_of(attrs) == "file") files.insert(object_of(item));
        }
      }
      frontier = std::move(next);
    }
    return files;
  }

 private:
  static std::string object_of(const std::string& item) {
    std::string object;
    std::uint32_t version = 0;
    if (parse_item_name(item, object, version)) return object;
    return item;
  }

  static std::string kind_of(const aws::SdbItem& attrs) {
    auto it = attrs.find("x-kind");
    if (it == attrs.end() || it->second.empty()) return "";
    return *it->second.begin();
  }

  /// Phase 1 of Q2/Q3: item names of process versions whose NAME matches.
  /// Scatter the indexed query to every shard domain, gather the union.
  std::set<std::string> producer_versions(const std::string& program) {
    const std::string expr = "['NAME' = '" + program + "']";
    const std::vector<std::set<std::string>> parts =
        topology_->scatter<std::set<std::string>>(
            [this, &expr](std::size_t, const std::string& domain) {
              std::set<std::string> part;
              std::string token;
              for (;;) {
                auto page = services_->sdb.query_with_attributes(
                    domain, expr, {"x-kind"}, aws::kSdbMaxQueryResults, token);
                if (!page) break;
                for (const auto& item : page->items)
                  if (kind_of(item.attributes) == "process")
                    part.insert(item.name);
                if (!page->next_token) break;
                token = *page->next_token;
              }
              return part;
            });
    std::set<std::string> out;
    for (const std::set<std::string>& part : parts)
      out.insert(part.begin(), part.end());
    return out;
  }

  /// Items whose INPUT attribute points at any member of `ancestors`
  /// (item-name strings "object:version"). Chunked into OR-predicates; a
  /// descendant can live in any shard, so each chunk scatters to every
  /// domain concurrently and the pages are gathered in shard order.
  std::vector<std::pair<std::string, aws::SdbItem>> items_with_input_in(
      const std::set<std::string>& ancestors) {
    using ItemPage = std::vector<std::pair<std::string, aws::SdbItem>>;
    ItemPage out;
    std::vector<std::string> list(ancestors.begin(), ancestors.end());
    for (std::size_t start = 0; start < list.size();
         start += config_.or_terms_per_query) {
      const std::size_t end =
          std::min(start + config_.or_terms_per_query, list.size());
      std::string expr = "[";
      for (std::size_t i = start; i < end; ++i) {
        if (i > start) expr += " or ";
        expr += "'INPUT' = '" + list[i] + "'";
      }
      expr += "]";
      const std::vector<ItemPage> parts = topology_->scatter<ItemPage>(
          [this, &expr](std::size_t, const std::string& domain) {
            ItemPage part;
            std::string token;
            for (;;) {
              auto page = services_->sdb.query_with_attributes(
                  domain, expr, {"x-kind"}, aws::kSdbMaxQueryResults, token);
              if (!page) break;
              for (auto& item : page->items)
                part.emplace_back(item.name, std::move(item.attributes));
              if (!page->next_token) break;
              token = *page->next_token;
            }
            return part;
          });
      for (const ItemPage& part : parts)
        out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  CloudServices* services_;
  SdbQueryConfig config_;
  std::shared_ptr<const DomainTopology> topology_;
};

}  // namespace

std::unique_ptr<QueryEngine> make_s3_query_engine(CloudServices& services) {
  return std::make_unique<S3QueryEngine>(services);
}

std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services) {
  return make_sdb_query_engine(services, SdbQueryConfig{});
}

std::unique_ptr<QueryEngine> make_sdb_query_engine(
    CloudServices& services, const SdbQueryConfig& config) {
  auto topology = DomainTopology::make(
      TopologyConfig{.shard_count = config.shard_count,
                     .parallelism = config.parallelism,
                     .ledger = &services.env->latency_ledger()});
  return std::make_unique<SdbQueryEngine>(services, std::move(topology),
                                          config);
}

std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services,
                                                   const ShardRouter& router) {
  SdbQueryConfig config;
  config.shard_count = router.shard_count();
  return make_sdb_query_engine(services, config);
}

std::unique_ptr<QueryEngine> make_sdb_query_engine(
    CloudServices& services, std::shared_ptr<const DomainTopology> topology) {
  SdbQueryConfig config;
  config.shard_count = topology->shard_count();
  config.parallelism = topology->parallelism();
  return std::make_unique<SdbQueryEngine>(services, std::move(topology),
                                          config);
}

}  // namespace provcloud::cloudprov
