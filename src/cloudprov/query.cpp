#include "cloudprov/query.hpp"

#include <cstring>
#include <map>

#include "cloudprov/consistency_read.hpp"
#include "cloudprov/domain_topology.hpp"
#include "cloudprov/manifest/reader.hpp"
#include "cloudprov/serialize.hpp"
#include "util/require.hpp"
#include "util/string_utils.hpp"

namespace provcloud::cloudprov {

namespace {

bool is_internal_key(const std::string& key) {
  return util::starts_with(key, kOverflowPrefix) ||
         util::starts_with(key, kTempPrefix);
}

// ---------------------------------------------------------------------------
// Architecture 1: scan-based queries over S3 metadata.
// ---------------------------------------------------------------------------

class S3QueryEngine final : public QueryEngine {
 public:
  explicit S3QueryEngine(CloudServices& services) : services_(&services) {}
  std::string name() const override { return "S3"; }

  Q1Result q1_all_provenance() override {
    const std::vector<DecodedMetadata> all = scan_all();
    Q1Result out;
    out.object_versions = all.size();
    for (const DecodedMetadata& m : all) out.records += m.records.size();
    return out;
  }

  std::set<std::string> q2_outputs_of(const std::string& program) override {
    // One full scan; both phases evaluate on the scanned copy ("the second
    // phase can, of course, be executed from a cache").
    const std::vector<DecodedMetadata> all = scan_all();
    return outputs_from(all, program);
  }

  AncestryResult ancestry(const std::string& object, std::uint32_t version,
                          std::size_t max_nodes) override {
    // One scan, then walk locally: S3 retains only the latest version's
    // metadata, so any older ancestor version lands in `missing` -- the
    // Arch-1 limitation fetch_ancestry has always surfaced.
    const std::vector<DecodedMetadata> all = scan_all();
    std::map<pass::ObjectVersion, const DecodedMetadata*> by_id;
    for (const DecodedMetadata& m : all)
      by_id[pass::ObjectVersion{m.object, m.version}] = &m;
    return walk_ancestry(
        [&by_id](const std::vector<pass::ObjectVersion>& ids) {
          std::vector<BackendResult<std::vector<pass::ProvenanceRecord>>> out;
          out.reserve(ids.size());
          for (const pass::ObjectVersion& id : ids) {
            auto it = by_id.find(id);
            if (it == by_id.end())
              out.push_back(backend_error(BackendErrorCode::kNotFound,
                                          "not in scan: " + id.to_string()));
            else
              out.push_back(it->second->records);
          }
          return out;
        },
        object, version, max_nodes);
  }

  std::set<std::string> q3_descendants_of(const std::string& program) override {
    const std::vector<DecodedMetadata> all = scan_all();
    const std::set<std::string> outputs = outputs_from(all, program);

    // Reverse data-flow edges: ancestor object -> descendant objects.
    std::multimap<std::string, std::string> reverse;
    std::map<std::string, std::string> kind_of;
    for (const DecodedMetadata& m : all) {
      kind_of[m.object] = m.kind;
      for (const pass::ProvenanceRecord& r : m.records)
        if (r.is_xref() && r.attribute != pass::attr::kPrev)
          reverse.emplace(r.xref().object, m.object);
    }
    std::set<std::string> visited = outputs;
    std::vector<std::string> frontier(outputs.begin(), outputs.end());
    while (!frontier.empty()) {
      std::vector<std::string> next;
      for (const std::string& object : frontier) {
        auto [lo, hi] = reverse.equal_range(object);
        for (auto it = lo; it != hi; ++it)
          if (visited.insert(it->second).second) next.push_back(it->second);
      }
      frontier = std::move(next);
    }
    std::set<std::string> files;
    for (const std::string& object : visited)
      if (kind_of[object] == "file") files.insert(object);
    return files;
  }

 private:
  /// LIST the bucket, HEAD every object, GET every spilled record: "S3 has
  /// to effectively retrieve the metadata of all objects in the store."
  std::vector<DecodedMetadata> scan_all() {
    std::vector<DecodedMetadata> out;
    std::string marker;
    for (;;) {
      auto page = services_->s3.list(kDataBucket, "", marker);
      if (!page || page->keys.empty()) break;
      for (const std::string& key : page->keys) {
        if (is_internal_key(key)) continue;
        auto head = services_->s3.head(kDataBucket, key);
        if (!head) continue;  // propagation race; scans are best-effort
        DecodedMetadata decoded = decode_metadata(head->metadata);
        if (decoded.object.empty()) decoded.object = key;
        // Spilled records must be fetched separately.
        for (pass::ProvenanceRecord& r : decoded.records) {
          if (r.is_xref() || r.text().rfind(kSpillMarker, 0) != 0) continue;
          const std::string spill_key =
              r.text().substr(std::strlen(kSpillMarker));
          auto got = services_->s3.get(kDataBucket, spill_key);
          if (got) r = pass::ProvenanceRecord{r.attribute, *got->data};
        }
        out.push_back(std::move(decoded));
      }
      if (!page->truncated) break;
      marker = page->keys.back();
    }
    return out;
  }

  static std::set<std::string> outputs_from(
      const std::vector<DecodedMetadata>& all, const std::string& program) {
    // Phase 1: processes named `program`.
    std::set<std::string> producers;
    for (const DecodedMetadata& m : all) {
      if (m.kind != "process") continue;
      for (const pass::ProvenanceRecord& r : m.records)
        if (r.attribute == pass::attr::kName && !r.is_xref() &&
            r.text() == program)
          producers.insert(m.object);
    }
    // Phase 2: files with an INPUT edge to any of those processes.
    std::set<std::string> outputs;
    for (const DecodedMetadata& m : all) {
      if (m.kind != "file") continue;
      for (const pass::ProvenanceRecord& r : m.records)
        if (r.is_xref() && r.attribute == pass::attr::kInput &&
            producers.count(r.xref().object) > 0)
          outputs.insert(m.object);
    }
    return outputs;
  }

  CloudServices* services_;
};

// ---------------------------------------------------------------------------
// Architectures 2/3: indexed SimpleDB queries.
// ---------------------------------------------------------------------------

class SdbQueryEngine final : public QueryEngine {
 public:
  SdbQueryEngine(CloudServices& services,
                 std::shared_ptr<const DomainTopology> topology,
                 SdbQueryConfig config)
      : services_(&services), config_(config), topology_(std::move(topology)) {}
  std::string name() const override {
    if (topology_->shard_count() == 1) return "SimpleDB";
    return "SimpleDB[x" + std::to_string(topology_->shard_count()) + "]";
  }

  Q1Result q1_all_provenance() override {
    // "There is no way for SimpleDB to generalize the query and [it] needs
    // to issue one query per item": enumerate items, then GetAttributes
    // each -- per shard domain; the union covers every item exactly once,
    // and the per-domain sweeps overlap on the topology's executor.
    const std::vector<Q1Result> parts = topology_->scatter<Q1Result>(
        [this](std::size_t, const std::string& domain) {
          Q1Result part;
          std::string token;
          for (;;) {
            auto page = services_->sdb.query(domain, "",
                                             aws::kSdbMaxQueryResults, token);
            if (!page) break;
            for (const std::string& item : page->item_names) {
              auto attrs = services_->sdb.get_attributes(domain, item);
              if (!attrs) continue;
              ++part.object_versions;
              for (const auto& [name, values] : *attrs)
                part.records += values.size();
            }
            if (!page->next_token) break;
            token = *page->next_token;
          }
          return part;
        });
    Q1Result out;
    for (const Q1Result& part : parts) {
      out.object_versions += part.object_versions;
      out.records += part.records;
    }
    return out;
  }

  std::set<std::string> q2_outputs_of(const std::string& program) override {
    const std::set<std::string> producers = producer_versions(program);
    std::set<std::string> outputs;
    for (const auto& [item, attrs] : items_with_input_in(producers))
      if (kind_of(attrs) == "file") outputs.insert(object_of(item));
    return outputs;
  }

  AncestryResult ancestry(const std::string& object, std::uint32_t version,
                          std::size_t max_nodes) override {
    // The scatter baseline: one per-shard GetAttributes round trip per
    // node of the walk (plus spill GETs), billed exactly like
    // SdbBackend::get_provenance.
    return walk_ancestry(
        [this](const std::vector<pass::ObjectVersion>& ids) {
          std::vector<BackendResult<std::vector<pass::ProvenanceRecord>>> out;
          out.reserve(ids.size());
          for (const pass::ObjectVersion& id : ids)
            out.push_back(fetch_sdb_provenance(*services_, *topology_,
                                               id.object, id.version, 64));
          return out;
        },
        object, version, max_nodes);
  }

  std::set<std::string> q3_descendants_of(const std::string& program) override {
    // Level-by-level expansion: "for ancestry queries, it has to retrieve
    // each item ..., then examine each item for its ancestors and then look
    // up further" -- here in the descendant direction.
    const std::set<std::string> producers = producer_versions(program);
    std::set<std::string> visited_versions = producers;
    std::set<std::string> frontier = producers;
    std::set<std::string> files;
    while (!frontier.empty()) {
      std::set<std::string> next;
      for (const auto& [item, attrs] : items_with_input_in(frontier)) {
        if (visited_versions.insert(item).second) {
          next.insert(item);
          if (kind_of(attrs) == "file") files.insert(object_of(item));
        }
      }
      frontier = std::move(next);
    }
    return files;
  }

 private:
  static std::string object_of(const std::string& item) {
    std::string object;
    std::uint32_t version = 0;
    if (parse_item_name(item, object, version)) return object;
    return item;
  }

  static std::string kind_of(const aws::SdbItem& attrs) {
    auto it = attrs.find("x-kind");
    if (it == attrs.end() || it->second.empty()) return "";
    return *it->second.begin();
  }

  /// Phase 1 of Q2/Q3: item names of process versions whose NAME matches.
  /// Scatter the indexed query to every shard domain, gather the union.
  std::set<std::string> producer_versions(const std::string& program) {
    const std::string expr = "['NAME' = '" + program + "']";
    const std::vector<std::set<std::string>> parts =
        topology_->scatter<std::set<std::string>>(
            [this, &expr](std::size_t, const std::string& domain) {
              std::set<std::string> part;
              std::string token;
              for (;;) {
                auto page = services_->sdb.query_with_attributes(
                    domain, expr, {"x-kind"}, aws::kSdbMaxQueryResults, token);
                if (!page) break;
                for (const auto& item : page->items)
                  if (kind_of(item.attributes) == "process")
                    part.insert(item.name);
                if (!page->next_token) break;
                token = *page->next_token;
              }
              return part;
            });
    std::set<std::string> out;
    for (const std::set<std::string>& part : parts)
      out.insert(part.begin(), part.end());
    return out;
  }

  /// Items whose INPUT attribute points at any member of `ancestors`
  /// (item-name strings "object:version"). Chunked into OR-predicates; a
  /// descendant can live in any shard, so each chunk scatters to every
  /// domain concurrently and the pages are gathered in shard order.
  std::vector<std::pair<std::string, aws::SdbItem>> items_with_input_in(
      const std::set<std::string>& ancestors) {
    using ItemPage = std::vector<std::pair<std::string, aws::SdbItem>>;
    ItemPage out;
    std::vector<std::string> list(ancestors.begin(), ancestors.end());
    for (std::size_t start = 0; start < list.size();
         start += config_.or_terms_per_query) {
      const std::size_t end =
          std::min(start + config_.or_terms_per_query, list.size());
      std::string expr = "[";
      for (std::size_t i = start; i < end; ++i) {
        if (i > start) expr += " or ";
        expr += "'INPUT' = '" + list[i] + "'";
      }
      expr += "]";
      const std::vector<ItemPage> parts = topology_->scatter<ItemPage>(
          [this, &expr](std::size_t, const std::string& domain) {
            ItemPage part;
            std::string token;
            for (;;) {
              auto page = services_->sdb.query_with_attributes(
                  domain, expr, {"x-kind"}, aws::kSdbMaxQueryResults, token);
              if (!page) break;
              for (auto& item : page->items)
                part.emplace_back(item.name, std::move(item.attributes));
              if (!page->next_token) break;
              token = *page->next_token;
            }
            return part;
          });
      for (const ItemPage& part : parts)
        out.insert(out.end(), part.begin(), part.end());
    }
    return out;
  }

  CloudServices* services_;
  SdbQueryConfig config_;
  std::shared_ptr<const DomainTopology> topology_;
};

// ---------------------------------------------------------------------------
// Manifest-backed read path: snapshots + AncestorCache, SimpleDB tail.
// ---------------------------------------------------------------------------

class ManifestQueryEngine final : public QueryEngine {
 public:
  ManifestQueryEngine(CloudServices& services,
                      std::shared_ptr<manifest::ManifestReader> reader,
                      std::shared_ptr<const DomainTopology> topology,
                      ManifestQueryConfig config)
      : services_(&services),
        config_(config),
        topology_(std::move(topology)),
        reader_(std::move(reader)),
        inner_(std::make_unique<SdbQueryEngine>(services, topology_,
                                                config.base)) {}

  std::string name() const override { return inner_->name() + "+manifest"; }

  Q1Result q1_all_provenance() override { return inner_->q1_all_provenance(); }
  std::set<std::string> q2_outputs_of(const std::string& program) override {
    return inner_->q2_outputs_of(program);
  }
  std::set<std::string> q3_descendants_of(const std::string& program) override {
    return inner_->q3_descendants_of(program);
  }

  AncestryResult ancestry(const std::string& object, std::uint32_t version,
                          std::size_t max_nodes) override {
    // Rebind to the current snapshot each walk: one catalog read; the list
    // GET and cache invalidation only happen when a newer snapshot landed.
    const auto opened = reader_->open_current();
    if (!opened) {
      // Nothing ever rolled: serve the walk from the scatter path outright.
      return inner_->ancestry(object, version, max_nodes);
    }
    return walk_ancestry(
        [this](const std::vector<pass::ObjectVersion>& ids) {
          return reader_->get_provenance_many(ids);
        },
        object, version, max_nodes);
  }

  bool supports_time_travel() const override { return true; }

  AncestryResult ancestry_as_of(std::uint64_t snapshot_id,
                                const std::string& object,
                                std::uint32_t version,
                                std::size_t max_nodes) override {
    // A pinned reader with its own cache: binding the shared reader to an
    // old snapshot would invalidate the hot current-snapshot cache.
    manifest::ManifestReader pinned(
        *services_, topology_,
        manifest::ManifestReaderConfig{.cache_capacity = config_.cache_capacity,
                                       .max_retries = config_.max_retries});
    const auto opened = pinned.open(snapshot_id);
    if (!opened) {
      AncestryResult result;
      result.missing.push_back(pass::ObjectVersion{object, version});
      return result;
    }
    return walk_ancestry(
        [&pinned](const std::vector<pass::ObjectVersion>& ids) {
          return pinned.get_provenance_many(ids);
        },
        object, version, max_nodes);
  }

 private:
  CloudServices* services_;
  ManifestQueryConfig config_;
  std::shared_ptr<const DomainTopology> topology_;
  std::shared_ptr<manifest::ManifestReader> reader_;
  std::unique_ptr<SdbQueryEngine> inner_;
};

}  // namespace

AncestryResult QueryEngine::ancestry_as_of(std::uint64_t, const std::string&,
                                           std::uint32_t, std::size_t) {
  util::require_failed("supports_time_travel()", __FILE__, __LINE__,
                       "this query engine has no snapshots");
}

std::unique_ptr<QueryEngine> make_s3_query_engine(CloudServices& services) {
  return std::make_unique<S3QueryEngine>(services);
}

std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services) {
  return make_sdb_query_engine(services, SdbQueryConfig{});
}

std::unique_ptr<QueryEngine> make_sdb_query_engine(
    CloudServices& services, const SdbQueryConfig& config) {
  auto topology = DomainTopology::make(
      TopologyConfig{.shard_count = config.shard_count,
                     .parallelism = config.parallelism,
                     .ledger = &services.env->latency_ledger()});
  return std::make_unique<SdbQueryEngine>(services, std::move(topology),
                                          config);
}

std::unique_ptr<QueryEngine> make_sdb_query_engine(CloudServices& services,
                                                   const ShardRouter& router) {
  SdbQueryConfig config;
  config.shard_count = router.shard_count();
  return make_sdb_query_engine(services, config);
}

std::unique_ptr<QueryEngine> make_sdb_query_engine(
    CloudServices& services, std::shared_ptr<const DomainTopology> topology) {
  SdbQueryConfig config;
  config.shard_count = topology->shard_count();
  config.parallelism = topology->parallelism();
  return std::make_unique<SdbQueryEngine>(services, std::move(topology),
                                          config);
}

std::unique_ptr<QueryEngine> make_manifest_query_engine(
    CloudServices& services, std::shared_ptr<const DomainTopology> topology,
    const ManifestQueryConfig& config) {
  ManifestQueryConfig cfg = config;
  cfg.base.shard_count = topology->shard_count();
  cfg.base.parallelism = topology->parallelism();
  auto reader = std::make_shared<manifest::ManifestReader>(
      services, topology,
      manifest::ManifestReaderConfig{.cache_capacity = cfg.cache_capacity,
                                     .max_retries = cfg.max_retries});
  return std::make_unique<ManifestQueryEngine>(services, std::move(reader),
                                               std::move(topology), cfg);
}

std::unique_ptr<QueryEngine> make_manifest_query_engine(
    CloudServices& services, std::shared_ptr<manifest::ManifestReader> reader,
    const ManifestQueryConfig& config) {
  ManifestQueryConfig cfg = config;
  std::shared_ptr<const DomainTopology> topology = reader->topology();
  cfg.base.shard_count = topology->shard_count();
  cfg.base.parallelism = topology->parallelism();
  return std::make_unique<ManifestQueryEngine>(services, std::move(reader),
                                               std::move(topology), cfg);
}

}  // namespace provcloud::cloudprov
