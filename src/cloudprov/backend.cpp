#include "cloudprov/backend.hpp"

#include "util/require.hpp"

namespace provcloud::cloudprov {

std::unique_ptr<ProvenanceBackend> make_backend(Architecture arch,
                                                CloudServices& services) {
  switch (arch) {
    case Architecture::kS3Only:
      return make_s3_backend(services);
    case Architecture::kS3SimpleDb:
      return make_sdb_backend(services);
    case Architecture::kS3SimpleDbSqs:
      return make_wal_backend(services);
    case Architecture::kS3SegmentLog:
      return make_lsb_backend(services);
  }
  PROVCLOUD_REQUIRE_MSG(false, "unknown architecture");
  return nullptr;
}

}  // namespace provcloud::cloudprov
